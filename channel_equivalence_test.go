// Randomized equivalence between channel counts: a ledger sharded across
// N channels must hold exactly the same canonical per-record state, the
// same secondary-index contents and the same per-source provenance chains
// and trust state as the single-channel deployment, once the per-channel
// views are merged routing-aware (records and index entries concatenated
// across channels; provenance and trust read from each source's home
// channel). The cross-channel query engine must also return the same
// record set through cursor pagination and point lookups regardless of
// how many channels hold it.
package socialchain

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"socialchain/internal/contracts"
	"socialchain/internal/core"
	"socialchain/internal/fabric"
	"socialchain/internal/ingest"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/query"
	"socialchain/internal/storage"
)

// mergedCanonicalRecords reads every data record from peer 0 of every
// channel and strips the nondeterministic fields — the routing-aware
// counterpart of canonicalRecords.
func mergedCanonicalRecords(t *testing.T, fw *core.Framework) []contracts.DataRecord {
	t.Helper()
	var out []contracts.DataRecord
	for _, ch := range fw.Net.Channels() {
		kvs := ch.Peer(0).State().GetStateByPrefix(contracts.DataCC, "rec/")
		for _, kv := range kvs {
			var rec contracts.DataRecord
			if err := json.Unmarshal(kv.Value, &rec); err != nil {
				t.Fatalf("decode record %s on %s: %v", kv.Key, ch.Name(), err)
			}
			rec.TxID, rec.PrevTxID, rec.Seq = "", "", 0
			rec.Submitted = time.Time{}
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CID < out[j].CID })
	return out
}

// mergedCanonicalIndex maps every entry of a statedb secondary index on
// every channel to (indexed value, CID), sorted.
func mergedCanonicalIndex(t *testing.T, fw *core.Framework, index string) []string {
	t.Helper()
	var out []string
	for _, ch := range fw.Net.Channels() {
		db := ch.Peer(0).State()
		token := ""
		for {
			page, err := db.IterIndex(index, "", 200, 0, token)
			if err != nil {
				t.Fatalf("IterIndex %s on %s: %v", index, ch.Name(), err)
			}
			for _, e := range page.Entries {
				vv, ok := db.GetState(contracts.DataCC, e.Key)
				if !ok {
					t.Fatalf("index %s entry %q on %s points at missing key %q", index, e.Value, ch.Name(), e.Key)
				}
				var rec contracts.DataRecord
				if err := json.Unmarshal(vv.Value, &rec); err != nil {
					t.Fatalf("decode indexed record: %v", err)
				}
				out = append(out, e.Value+"\x00"+rec.CID)
			}
			if page.Next == "" {
				break
			}
			token = page.Next
		}
	}
	sort.Strings(out)
	return out
}

// checkProvenanceChainOn is checkProvenanceChain against a specific
// channel — the source's home channel on sharded deployments.
func checkProvenanceChainOn(t *testing.T, ch *fabric.Channel, gw *fabric.Gateway, source string, want int) {
	t.Helper()
	db := ch.Peer(0).State()
	headRaw, ok := db.GetState(contracts.DataCC, "head/"+source)
	if !ok {
		t.Fatalf("no provenance head for %s on %s", source, ch.Name())
	}
	var head struct {
		TxID string `json:"tx_id"`
		Seq  int    `json:"seq"`
	}
	if err := json.Unmarshal(headRaw.Value, &head); err != nil {
		t.Fatal(err)
	}
	if head.Seq != want {
		t.Fatalf("head seq for %s = %d, want %d", source, head.Seq, want)
	}
	raw, err := gw.Evaluate(contracts.DataCC, "getProvenance", []byte(head.TxID))
	if err != nil {
		t.Fatalf("getProvenance: %v", err)
	}
	var chain []contracts.DataRecord
	if err := json.Unmarshal(raw, &chain); err != nil {
		t.Fatal(err)
	}
	if len(chain) != want {
		t.Fatalf("provenance chain for %s length %d, want %d", source, len(chain), want)
	}
	for i, rec := range chain {
		if rec.Seq != want-i {
			t.Fatalf("chain position %d has seq %d, want %d", i, rec.Seq, want-i)
		}
	}
}

// TestIntegrationChannelEquivalence is the randomized multi-channel
// equivalence gate: the same multi-source workload ingested into a
// 1-channel and a 4-channel deployment must converge to identical
// canonical records, identical merged secondary indexes, identical
// per-source provenance chains and trust state, and the cross-channel
// query engine must page out the same record set either way.
func TestIntegrationChannelEquivalence(t *testing.T) {
	seed := equivalenceSeed(t)
	t.Logf("channel equivalence seed %d (pin with SOCIALCHAIN_EQUIV_SEED)", seed)
	const nSources = 3
	const perSource = 8
	const total = nSources * perSource

	// One shared frame pool, sliced per source so both runs ingest the
	// exact same payloads from the same identities.
	frames, metas := equivFrames(t, seed, total)

	type runResult struct {
		records []byte
		index   []byte
		paged   []string
		trust   []byte
	}
	run := func(t *testing.T, nch int, transport string) runResult {
		fw, err := core.New(core.Config{
			Fabric: fabric.Config{
				NumPeers: 4,
				Cutter:   ordering.CutterConfig{MaxMessages: 2, BatchTimeout: 2 * time.Millisecond},
			},
			NumChannels:   nch,
			IPFSNodes:     2,
			StorageEngine: storage.EngineSharded,
			Transport:     transport,
		})
		if err != nil {
			t.Fatalf("core.New(%d channels): %v", nch, err)
		}
		t.Cleanup(fw.Close)

		cams := make([]*msp.Signer, nSources)
		clients := make([]*core.Client, nSources)
		for s := 0; s < nSources; s++ {
			cam, err := msp.NewSigner("city", fmt.Sprintf("chan-equiv-cam-%d", s), msp.RoleTrustedSource)
			if err != nil {
				t.Fatal(err)
			}
			if err := fw.RegisterSource(cam.Identity, true); err != nil {
				t.Fatal(err)
			}
			cams[s] = cam
			clients[s] = fw.Client(cam, s%2)
		}

		// All sources ingest concurrently through the pipelined path, so
		// commit interleaving is nondeterministic — exactly what the
		// canonicalisation must absorb.
		var wg sync.WaitGroup
		errs := make([]error, nSources)
		for s := 0; s < nSources; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				results, err := clients[s].StoreFrames(
					frames[s*perSource:(s+1)*perSource], metas[s*perSource:(s+1)*perSource],
					ingest.Config{Mode: ingest.ModePipelined, BatchSize: 3, AddWorkers: 2, MaxInFlight: 2})
				if err != nil {
					errs[s] = err
					return
				}
				for _, r := range results {
					if r.Err != nil {
						errs[s] = fmt.Errorf("source %d record %d: %w", s, r.Index, r.Err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}

		// Converge every channel's peers before inspecting peer 0.
		for _, ch := range fw.Net.Channels() {
			var tip uint64
			for _, p := range ch.Peers() {
				if h := p.Ledger().Height(); h > tip {
					tip = h
				}
			}
			if !ch.WaitHeight(tip, 10*time.Second) {
				t.Fatalf("%s peers did not converge to height %d", ch.Name(), tip)
			}
			if err := ch.Peer(0).Ledger().VerifyChain(); err != nil {
				t.Fatalf("chain verification on %s: %v", ch.Name(), err)
			}
		}

		recs := mergedCanonicalRecords(t, fw)
		if len(recs) != total {
			t.Fatalf("%d canonical records across channels, want %d", len(recs), total)
		}
		recJSON, err := json.Marshal(recs)
		if err != nil {
			t.Fatal(err)
		}
		idxJSON, err := json.Marshal(mergedCanonicalIndex(t, fw, contracts.IndexLabel))
		if err != nil {
			t.Fatal(err)
		}

		// Per-source provenance and trust live wholly on the home channel.
		for s, cam := range cams {
			home := fw.Net.ChannelFor(cam.Identity.ID())
			checkProvenanceChainOn(t, home, clients[s].Gateway(), cam.Identity.ID(), perSource)
			st, err := fw.TrustScore(cam.Identity.ID())
			if err != nil {
				t.Fatal(err)
			}
			if st.Accepted != perSource {
				t.Fatalf("source %d trust accepted = %d, want %d", s, st.Accepted, perSource)
			}
		}

		// Cross-channel cursor pagination must walk every record exactly
		// once, channel boundaries included (limit 5 forces several pages
		// per channel and pages that straddle the hand-off).
		qe := fw.QueryEngine(0)
		var paged []string
		cursor := ""
		for pages := 0; ; pages++ {
			if pages > total+fw.Net.NumChannels()+1 {
				t.Fatal("cursor pagination did not terminate")
			}
			page, err := qe.Page(contracts.IndexSubmitted, "", 5, cursor)
			if err != nil {
				t.Fatalf("Page: %v", err)
			}
			for _, rec := range page.Records {
				paged = append(paged, rec.CID)
			}
			if page.Next == "" {
				break
			}
			cursor = page.Next
		}
		if len(paged) != total {
			t.Fatalf("cursor pagination returned %d records, want %d", len(paged), total)
		}
		sort.Strings(paged)

		// Point lookups scatter to the owning channel; verify a metadata
		// fetch and a full verified retrieval for one record per source.
		for s := 0; s < nSources; s++ {
			rec := recs[(s*len(recs))/nSources]
			res, err := qe.Execute(query.Request{Kind: query.BySource, Value: cams[s].Identity.ID()})
			if err != nil {
				t.Fatalf("BySource %d: %v", s, err)
			}
			if len(res.Records) != perSource {
				t.Fatalf("BySource %d returned %d records, want %d", s, len(res.Records), perSource)
			}
			got, err := qe.Execute(query.Request{Kind: query.ByTxID, Value: res.Records[0].TxID, FetchPayload: true})
			if err != nil {
				t.Fatalf("ByTxID: %v", err)
			}
			if !got.Verified {
				t.Fatalf("retrieved payload for %s not verified", rec.CID)
			}
		}

		// The global trust view must see every source once, whichever
		// channel scored it.
		view, err := fw.RollupTrust()
		if err != nil {
			t.Fatal(err)
		}
		if view.Sources != nSources {
			t.Fatalf("trust roll-up saw %d sources, want %d", view.Sources, nSources)
		}
		type trustRow struct {
			ID       string `json:"id"`
			Accepted int    `json:"accepted"`
			Rejected int    `json:"rejected"`
		}
		rows := make([]trustRow, 0, len(view.States))
		for _, st := range view.States {
			rows = append(rows, trustRow{ID: st.SourceID, Accepted: st.Accepted, Rejected: st.Rejected})
		}
		trustJSON, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return runResult{records: recJSON, index: idxJSON, paged: paged, trust: trustJSON}
	}

	// The tcp leg reruns the sharded deployment with all consensus and
	// fabric traffic over real localhost sockets: the wire must not
	// change a single canonical byte.
	var base runResult
	legs := []struct {
		name      string
		nch       int
		transport string
	}{
		{"1-channel", 1, ""},
		{"4-channel", 4, ""},
		{"4-channel-tcp", 4, "tcp"},
	}
	for _, leg := range legs {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			got := run(t, leg.nch, leg.transport)
			if leg.name == "1-channel" {
				base = got
				return
			}
			if !bytes.Equal(base.records, got.records) {
				t.Fatalf("canonical records diverged between 1-channel and %s:\n1ch: %s\nnow: %s", leg.name, base.records, got.records)
			}
			if !bytes.Equal(base.index, got.index) {
				t.Fatalf("canonical label index diverged between 1-channel and %s:\n1ch: %s\nnow: %s", leg.name, base.index, got.index)
			}
			if strings := fmt.Sprint(got.paged); fmt.Sprint(base.paged) != strings {
				t.Fatalf("paged record set diverged between 1-channel and %s", leg.name)
			}
			if !bytes.Equal(base.trust, got.trust) {
				t.Fatalf("trust roll-up diverged between 1-channel and %s:\n1ch: %s\nnow: %s", leg.name, base.trust, got.trust)
			}
		})
	}
}
