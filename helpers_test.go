package socialchain

import (
	"errors"
	"testing"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/cid"
	"socialchain/internal/msp"
	"socialchain/internal/peer"
)

// kvChaincode is a tiny contract for integration tests that need raw
// chaincode behaviour without the framework's validation stack.
type kvChaincode struct{}

func (kvChaincode) Name() string { return "kv" }

func (kvChaincode) Invoke(stub chaincode.Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case "put":
		if len(args) != 2 {
			return nil, errors.New("put needs key and value")
		}
		return []byte("ok"), stub.PutState(string(args[0]), args[1])
	case "get":
		if len(args) != 1 {
			return nil, errors.New("get needs key")
		}
		return stub.GetState(string(args[0]))
	default:
		return nil, errors.New("unknown fn")
	}
}

func newProposal(client *msp.Signer, channel, cc, fn string, args [][]byte) (*peer.Proposal, error) {
	return peer.NewProposal(client, channel, cc, fn, args, time.Now())
}

func mustParseCid(t *testing.T, s string) cid.Cid {
	t.Helper()
	c, err := cid.Parse(s)
	if err != nil {
		t.Fatalf("parse cid %q: %v", s, err)
	}
	return c
}
