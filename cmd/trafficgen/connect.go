package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"socialchain/internal/cid"
	"socialchain/internal/contracts"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/ledger"
	"socialchain/internal/metrics"
	"socialchain/internal/msp"
	"socialchain/internal/obs"
	"socialchain/internal/sim"
	"socialchain/internal/trust"
)

// connectConfig drives an out-of-process deployment (socialchaind -role
// processes) over the wire instead of booting an in-process framework.
type connectConfig struct {
	peers        string // id=addr book of the peer processes
	orderer      string // orderer dial address
	numPeers     int
	channels     int
	records      int
	readFrac     float64 // fraction of operations that are reads (0 = write-only)
	seed         int64
	identitySeed string // deterministic client identities, stable across reruns
	statsOut     string // JSON run-summary output file ("" = off)
	adminBook    string // id=addr book of admin surfaces to scrape into statsOut
}

// readResults tallies the -read-frac mixed-workload outcome: probes of
// stored records (hits), probes of never-written keys (misses, the bloom
// negative path), and wrong answers (a stored record unreadable or an
// absent key answered) — any of which fails the run.
type readResults struct {
	total  int
	hits   int
	misses int
	wrong  int
	lat    *metrics.Stats
}

// submitIdempotent submits a bootstrap transaction, treating the given
// "already done" chaincode rejection as success whether it surfaces at
// endorsement time (Submit error) or validation time (result flag).
func submitIdempotent(gw *fabric.Gateway, cc, fn, tolerate string, args ...[]byte) error {
	tolerated := func(err error) bool {
		return err != nil && tolerate != "" && strings.Contains(err.Error(), tolerate)
	}
	res, err := gw.Submit(cc, fn, args...)
	if err != nil {
		if tolerated(err) {
			return nil
		}
		return err
	}
	if res.Err() != nil && !tolerated(res.Err()) {
		return res.Err()
	}
	return nil
}

func parsePeerBook(s string) (map[string]string, error) {
	book := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -connect entry %q (want id=host:port)", part)
		}
		book[id] = addr
	}
	return book, nil
}

// runConnect dials a networked deployment, bootstraps it (admin
// enrollment, trust parameters, camera registration) exactly as the
// in-process framework does, then submits -records metadata transactions
// through remote gateways and verifies every peer's hash chain over RPC.
func runConnect(cfg connectConfig) error {
	book, err := parsePeerBook(cfg.peers)
	if err != nil {
		return err
	}
	obsReg := obs.NewRegistry()
	remote, err := fabric.Dial(fabric.RemoteConfig{
		Net: fabric.Config{
			NumPeers:      cfg.numPeers,
			NumChannels:   cfg.channels,
			CommitTimeout: 30 * time.Second,
		},
		Peers:   book,
		Orderer: cfg.orderer,
		Obs:     obsReg,
	})
	if err != nil {
		return err
	}
	defer remote.Close()

	// Seed-derived signers: a rerun against an already bootstrapped
	// deployment (second traffic wave, post-restart verification pass)
	// must present the SAME admin and camera keys it registered the
	// first time, or validation rejects the new wave's signatures.
	admin := msp.NewSignerFromSeed(cfg.identitySeed, "gov", "admin", msp.RoleAdmin)
	cam := msp.NewSignerFromSeed(cfg.identitySeed, "city", "wire-cam", msp.RoleTrustedSource)
	camUser, err := json.Marshal(contracts.UserRecord{
		UserID: cam.Identity.ID(),
		Role:   "trusted-source",
		PubKey: cam.Identity.PubKey,
	})
	if err != nil {
		return err
	}
	params, err := json.Marshal(trust.DefaultParams())
	if err != nil {
		return err
	}
	// Bootstrap every channel: first-admin enrollment, default trust
	// parameters, camera registration. Re-running against an already
	// bootstrapped deployment tolerates the duplicate enrollments —
	// those surface at endorsement time (the chaincode rejects the
	// proposal, so Submit itself errors), not as committed invalid txs.
	for i := 0; i < remote.NumChannels(); i++ {
		agw := remote.ChannelAt(i).Gateway(admin)
		if err := submitIdempotent(agw, contracts.AdminCC, "enrollAdmin", "already exists", []byte(admin.Identity.ID())); err != nil {
			return fmt.Errorf("enroll admin on channel %d: %w", i, err)
		}
		if err := submitIdempotent(agw, contracts.TrustCC, "initParams", "", params); err != nil {
			return fmt.Errorf("init trust params on channel %d: %w", i, err)
		}
		if err := submitIdempotent(agw, contracts.UsersCC, "registerUser", "already", camUser); err != nil {
			return fmt.Errorf("register camera on channel %d: %w", i, err)
		}
	}
	fmt.Printf("connected: %d peer processes, %d channel(s); deployment bootstrapped\n",
		cfg.numPeers, remote.NumChannels())

	// The camera writes through its home channel, like in-process clients.
	gw := remote.ChannelFor(cam.Identity.ID()).Gateway(cam)

	rng := sim.NewRNG(cfg.seed)
	det := detect.NewDetector(cfg.seed)
	lat := metrics.NewStats()
	failed := 0
	// -read-frac interleaves reads with the writes: for every write,
	// readFrac/(1-readFrac) reads on average (debt accumulator, so any
	// fraction works without a scheduler). Half the reads probe records
	// this run stored (must succeed); half probe keys nothing ever wrote —
	// the LSM bloom-filter negative path, whose skip counters the
	// -admin-book /metrics scrape picks up.
	var storedIDs []string
	var readDebt float64
	reads := readResults{lat: metrics.NewStats()}
	doReads := func() {
		if cfg.readFrac <= 0 {
			return
		}
		for readDebt += cfg.readFrac / (1 - cfg.readFrac); readDebt >= 1; readDebt-- {
			reads.total++
			t0 := time.Now()
			if rng.Intn(2) == 0 && len(storedIDs) > 0 {
				id := storedIDs[rng.Intn(len(storedIDs))]
				if _, err := gw.Evaluate(contracts.DataCC, "getData", []byte(id)); err != nil {
					fmt.Printf("read of stored record %s failed: %v\n", id, err)
					reads.wrong++
				} else {
					reads.hits++
				}
			} else {
				// Hex-shaped so the probe lands inside the SSTable key
				// fences of real (hex) transaction IDs and the bloom
				// filter — not the fence check — has to reject it.
				id := fmt.Sprintf("%016x%048x", rng.Intn(1<<62), reads.total)
				if _, err := gw.Evaluate(contracts.DataCC, "getData", []byte(id)); err == nil {
					fmt.Printf("read of absent key %s returned a record\n", id)
					reads.wrong++
				} else {
					reads.misses++
				}
			}
			reads.lat.AddDuration(time.Since(t0))
		}
	}
	start := time.Now()
	for i := 0; i < cfg.records; i++ {
		f := &detect.Frame{
			ID:         detect.FrameIDFor(fmt.Sprintf("wire-%d", i), i),
			VideoID:    fmt.Sprintf("wire-%d", i),
			CameraID:   "wire-cam",
			Index:      i,
			Platform:   detect.PlatformStatic,
			Encoding:   detect.EncodingJPEG,
			Width:      1280,
			Height:     720,
			Data:       rng.Bytes(4 * 1024),
			Timestamp:  time.Now(),
			Location:   detect.GeoPoint{Latitude: 12.97, Longitude: 77.59},
			LightLevel: 1,
		}
		meta, _ := det.ExtractMetadata(f)
		metaJSON, err := json.Marshal(meta)
		if err != nil {
			return err
		}
		root := cid.SumRaw(f.Data)
		t0 := time.Now()
		res, err := gw.Submit(contracts.DataCC, "addData", []byte(root.String()), metaJSON)
		if err != nil {
			fmt.Printf("record %d: %v\n", i, err)
			failed++
			continue
		}
		if res.Flag != ledger.Valid {
			fmt.Printf("record %d flagged %s\n", i, res.Flag)
			failed++
			continue
		}
		lat.AddDuration(time.Since(t0))
		storedIDs = append(storedIDs, res.TxID)
		doReads()
	}
	elapsed := time.Since(start)
	stored := cfg.records - failed
	fmt.Printf("\nstored %d/%d records over the wire in %.3fs (%.1f records/s, %d failed)\n",
		stored, cfg.records, elapsed.Seconds(), float64(stored)/elapsed.Seconds(), failed)
	fmt.Printf("commit latency: %s\n", lat.Summary())
	if reads.total > 0 {
		fmt.Printf("reads: %d (%d hits, %d negative, %d wrong), latency: %s\n",
			reads.total, reads.hits, reads.misses, reads.wrong, reads.lat.Summary())
	}

	// Verify every peer process's hash chain on every channel over RPC.
	for i := 0; i < remote.NumChannels(); i++ {
		name := remote.ChannelAt(i).Name()
		for id := range book {
			h, err := remote.VerifyChain(name, id)
			if err != nil {
				return fmt.Errorf("chain verification failed on %s/%s: %w", name, id, err)
			}
			fmt.Printf("%s/%s: chain verified to height %d\n", name, id, h)
		}
	}
	// Replicas converge through anti-entropy, which is asynchronous: a
	// peer that just restarted (or lagged the last commit) may still be
	// pulling blocks. Retry the byte-identity check within a window
	// instead of failing on the first transient height skew.
	deadline := time.Now().Add(15 * time.Second)
	for i := 0; i < remote.NumChannels(); i++ {
		name := remote.ChannelAt(i).Name()
		for {
			err := chainsIdentical(remote, book, name)
			if err == nil {
				fmt.Printf("%s: %d peer chains byte-identical\n", name, len(book))
				break
			}
			if time.Now().After(deadline) {
				return err
			}
			time.Sleep(250 * time.Millisecond)
		}
	}
	if cfg.statsOut != "" {
		if err := writeRunSummary(cfg, obsReg, remote, stored, failed, elapsed, reads); err != nil {
			return fmt.Errorf("write -stats-out: %w", err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d records failed", failed)
	}
	if reads.wrong > 0 {
		return fmt.Errorf("%d reads returned wrong results", reads.wrong)
	}
	return nil
}

// chainsIdentical fetches every peer's full chain on one channel and
// demands the canonical encodings match byte for byte — the strongest
// form of the equivalence gate, run over the real wire. Deterministic
// block assembly (batch-derived timestamps, canonical tx order from the
// ordering service) is what makes this hold across OS processes.
func chainsIdentical(remote *fabric.Remote, book map[string]string, channel string) error {
	var refID string
	var ref []byte
	for id := range book {
		blocks, err := remote.Blocks(channel, id, 0)
		if err != nil {
			return fmt.Errorf("fetch blocks on %s/%s: %w", channel, id, err)
		}
		enc, err := json.Marshal(blocks)
		if err != nil {
			return err
		}
		if ref == nil {
			refID, ref = id, enc
			continue
		}
		if !bytes.Equal(ref, enc) {
			return fmt.Errorf("chain divergence on %s: %s and %s hold different blocks", channel, refID, id)
		}
	}
	return nil
}
