package main

import (
	"fmt"
	"time"

	"socialchain/internal/core"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/ingest"
	"socialchain/internal/metrics"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/sim"
	"socialchain/internal/storage"
)

type ingestConfig struct {
	mode        string
	records     int
	rate        float64 // records/s; 0 = closed loop
	concurrency int
	batch       int
	inflight    int
	peers       int
	channels    int
	engine      string
	durability  string
	dataDir     string
	seed        int64
}

// runIngest boots a framework and drives the ingest pipeline, printing a
// throughput/latency report. Closed loop submits as fast as the pipeline
// accepts (its bounded input queue is the only throttle); open loop
// offers records on a fixed schedule and reports how far the achieved
// rate fell behind the offered one.
func runIngest(cfg ingestConfig) error {
	mode := ingest.Mode(cfg.mode)
	if !mode.Valid() {
		return fmt.Errorf("unknown -ingest mode %q (valid: serial, batched, pipelined)", cfg.mode)
	}
	durability, err := storage.ParseDurability(cfg.durability)
	if err != nil {
		return err
	}
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers: cfg.peers,
			Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
		},
		NumChannels:       cfg.channels,
		IPFSNodes:         2,
		StorageEngine:     storage.Engine(cfg.engine),
		StorageDurability: durability,
		DataDir:           cfg.dataDir,
	})
	if err != nil {
		return err
	}
	defer fw.Close()
	cam, err := msp.NewSigner("city", "ingest-cam", msp.RoleTrustedSource)
	if err != nil {
		return err
	}
	if err := fw.RegisterSource(cam.Identity, true); err != nil {
		return err
	}
	client := fw.Client(cam, 0)
	fmt.Printf("network up: %d channel(s) x %d peers, 2 IPFS nodes; ingest mode=%s records=%d batch=%d workers=%d inflight=%d\n",
		fw.Net.NumChannels(), cfg.peers, mode, cfg.records, cfg.batch, cfg.concurrency, cfg.inflight)
	if cfg.dataDir != "" {
		boot := fw.LedgerStats()
		fmt.Printf("durable deployment at %s: recovered chain height %d (%d txs)\n", cfg.dataDir, boot.Height, boot.TotalTxs)
	}

	// Pre-generate the records so generation cost stays out of the
	// measured window.
	rng := sim.NewRNG(cfg.seed)
	det := detect.NewDetector(cfg.seed)
	recs := make([]ingest.Record, cfg.records)
	for i := range recs {
		f := &detect.Frame{
			ID:         detect.FrameIDFor(fmt.Sprintf("gen-%d", i), i),
			VideoID:    fmt.Sprintf("gen-%d", i),
			CameraID:   "ingest-cam",
			Index:      i,
			Platform:   detect.PlatformStatic,
			Encoding:   detect.EncodingJPEG,
			Width:      1280,
			Height:     720,
			Data:       rng.Bytes(4 * 1024),
			Timestamp:  time.Now(),
			Location:   detect.GeoPoint{Latitude: 12.97, Longitude: 77.59},
			LightLevel: 1,
		}
		meta, _ := det.ExtractMetadata(f)
		recs[i] = ingest.Record{Signed: msp.NewSignedMessage(cam, f.Data), Meta: meta}
	}

	pipe := client.Pipeline(ingest.Config{
		Mode:        mode,
		AddWorkers:  cfg.concurrency,
		BatchSize:   cfg.batch,
		MaxInFlight: cfg.inflight,
	})
	pipe.Start()
	start := time.Now()
	if cfg.rate > 0 {
		interval := time.Duration(float64(time.Second) / cfg.rate)
		next := start
		for _, r := range recs {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			if err := pipe.Submit(r); err != nil {
				return err
			}
			next = next.Add(interval)
		}
	} else {
		for _, r := range recs {
			if err := pipe.Submit(r); err != nil {
				return err
			}
		}
	}
	offered := time.Since(start)
	results := pipe.Drain()
	stats := pipe.Stats()

	lat := metrics.NewStats()
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Printf("record %d failed: %v\n", r.Index, r.Err)
			continue
		}
		lat.AddDuration(r.Latency)
	}
	fmt.Printf("\ningested %d/%d records in %.3fs (%d batches, %d failed)\n",
		stats.Stored, stats.Submitted, stats.Elapsed.Seconds(), stats.Batches, failed)
	fmt.Printf("throughput: %.1f records/s", stats.Throughput())
	if cfg.rate > 0 {
		fmt.Printf(" (offered %.1f records/s over %.3fs)", cfg.rate, offered.Seconds())
	}
	fmt.Println()
	fmt.Printf("commit latency: %s\n", lat.Summary())

	ledgerStats := fw.LedgerStats()
	fmt.Printf("chain: height=%d txs=%d valid=%d\n", ledgerStats.Height, ledgerStats.TotalTxs, ledgerStats.ValidTxs)
	for _, ch := range fw.Net.Channels() {
		if err := ch.Peer(0).Ledger().VerifyChain(); err != nil {
			return fmt.Errorf("chain verification failed on %s: %w", ch.Name(), err)
		}
	}
	fmt.Println("hash chain verified on peer 0 of every channel")
	if failed > 0 {
		return fmt.Errorf("%d records failed", failed)
	}
	return nil
}
