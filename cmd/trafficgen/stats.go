package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"socialchain/internal/fabric"
	"socialchain/internal/obs"
)

// stageSummary is one client-side lifecycle stage's latency digest.
type stageSummary struct {
	Count int64   `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

// runSummary is the -stats-out document: what this run achieved, where the
// client-side time went per lifecycle stage, and (when -admin-book is
// given) every node's /statusz snapshot at exit.
type runSummary struct {
	Records        int                                `json:"records"`
	Stored         int                                `json:"stored"`
	Failed         int                                `json:"failed"`
	ElapsedSeconds float64                            `json:"elapsed_seconds"`
	RecordsPerSec  float64                            `json:"records_per_sec"`
	Stages         map[string]map[string]stageSummary `json:"stages"` // channel -> stage -> digest
	Reads          *readSummary                       `json:"reads,omitempty"`
	Bloom          map[string]bloomSummary            `json:"bloom,omitempty"` // node -> LSM bloom counters
	Statusz        map[string]json.RawMessage         `json:"statusz,omitempty"`
}

// readSummary is the -read-frac mixed-workload digest.
type readSummary struct {
	Total  int     `json:"total"`
	Hits   int     `json:"hits"`
	Misses int     `json:"misses"` // absent-key probes correctly answered "not found"
	Wrong  int     `json:"wrong"`
	P50ms  float64 `json:"p50_ms"`
	P95ms  float64 `json:"p95_ms"`
}

// bloomSummary is one node's LSM bloom-filter counters, scraped from its
// /metrics surface after the workload (summed across stores/channels).
type bloomSummary struct {
	Checks   float64 `json:"checks"`
	Skips    float64 `json:"skips"`
	SkipRate float64 `json:"skip_rate"`
}

// clientStages reads the gateway-side stage histograms back out of the
// client registry (same name+labels returns the same instrument).
func clientStages(reg *obs.Registry, remote *fabric.Remote) map[string]map[string]stageSummary {
	out := make(map[string]map[string]stageSummary)
	for i := 0; i < remote.NumChannels(); i++ {
		name := remote.ChannelAt(i).Name()
		chReg := reg.With(obs.L("channel", name))
		stages := make(map[string]stageSummary)
		for _, stage := range []string{"endorse", "order", "commit_wait"} {
			h := chReg.Histogram("tx_stage_seconds", "", nil, obs.L("stage", stage))
			if h.Count() == 0 {
				continue
			}
			stages[stage] = stageSummary{
				Count: h.Count(),
				P50ms: h.Quantile(0.5) * 1000,
				P95ms: h.Quantile(0.95) * 1000,
				P99ms: h.Quantile(0.99) * 1000,
			}
		}
		out[name] = stages
	}
	return out
}

// scrapeStatusz GETs every admin surface's /statusz into raw JSON; an
// unreachable endpoint records an error object instead of failing the run.
func scrapeStatusz(adminBook string) (map[string]json.RawMessage, error) {
	if adminBook == "" {
		return nil, nil
	}
	book, err := parsePeerBook(adminBook)
	if err != nil {
		return nil, fmt.Errorf("bad -admin-book: %w", err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	out := make(map[string]json.RawMessage, len(book))
	for id, addr := range book {
		body, err := getJSON(client, "http://"+addr+"/statusz")
		if err != nil {
			msg, _ := json.Marshal(map[string]string{"error": err.Error()})
			out[id] = msg
			continue
		}
		out[id] = body
	}
	return out, nil
}

// scrapeBloom GETs every admin surface's /metrics and sums the LSM
// bloom-filter counters across that node's stores and channels. Nodes
// without LSM metrics (in-memory peers, unreachable surfaces) are simply
// absent from the result.
func scrapeBloom(adminBook string) (map[string]bloomSummary, error) {
	if adminBook == "" {
		return nil, nil
	}
	book, err := parsePeerBook(adminBook)
	if err != nil {
		return nil, fmt.Errorf("bad -admin-book: %w", err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	out := make(map[string]bloomSummary)
	for id, addr := range book {
		resp, err := client.Get("http://" + addr + "/metrics")
		if err != nil {
			continue
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		var bs bloomSummary
		for _, line := range strings.Split(string(body), "\n") {
			name, rest, ok := strings.Cut(line, " ")
			if !ok || strings.HasPrefix(name, "#") {
				continue
			}
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
				// Labeled series: the value follows the closing brace.
				if j := strings.LastIndexByte(line, ' '); j >= 0 {
					rest = line[j+1:]
				}
			}
			v, verr := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if verr != nil {
				continue
			}
			switch name {
			case "storage_bloom_checks_total":
				bs.Checks += v
			case "storage_bloom_skips_total":
				bs.Skips += v
			}
		}
		if bs.Checks > 0 {
			bs.SkipRate = bs.Skips / bs.Checks
			out[id] = bs
		}
	}
	return out, nil
}

func getJSON(client *http.Client, url string) (json.RawMessage, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	if !json.Valid(body) {
		return nil, fmt.Errorf("%s: invalid JSON", url)
	}
	return body, nil
}

// writeRunSummary assembles and writes the -stats-out document.
func writeRunSummary(cfg connectConfig, reg *obs.Registry, remote *fabric.Remote, stored, failed int, elapsed time.Duration, reads readResults) error {
	sum := runSummary{
		Records:        cfg.records,
		Stored:         stored,
		Failed:         failed,
		ElapsedSeconds: elapsed.Seconds(),
		Stages:         clientStages(reg, remote),
	}
	if elapsed > 0 {
		sum.RecordsPerSec = float64(stored) / elapsed.Seconds()
	}
	if reads.total > 0 {
		sum.Reads = &readSummary{
			Total:  reads.total,
			Hits:   reads.hits,
			Misses: reads.misses,
			Wrong:  reads.wrong,
			P50ms:  reads.lat.Percentile(50) * 1000,
			P95ms:  reads.lat.Percentile(95) * 1000,
		}
	}
	statusz, err := scrapeStatusz(cfg.adminBook)
	if err != nil {
		return err
	}
	sum.Statusz = statusz
	bloom, err := scrapeBloom(cfg.adminBook)
	if err != nil {
		return err
	}
	sum.Bloom = bloom
	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.statsOut, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("run summary written to %s\n", cfg.statsOut)
	return nil
}
