package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"socialchain/internal/fabric"
	"socialchain/internal/obs"
)

// stageSummary is one client-side lifecycle stage's latency digest.
type stageSummary struct {
	Count int64   `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

// runSummary is the -stats-out document: what this run achieved, where the
// client-side time went per lifecycle stage, and (when -admin-book is
// given) every node's /statusz snapshot at exit.
type runSummary struct {
	Records        int                                `json:"records"`
	Stored         int                                `json:"stored"`
	Failed         int                                `json:"failed"`
	ElapsedSeconds float64                            `json:"elapsed_seconds"`
	RecordsPerSec  float64                            `json:"records_per_sec"`
	Stages         map[string]map[string]stageSummary `json:"stages"` // channel -> stage -> digest
	Statusz        map[string]json.RawMessage         `json:"statusz,omitempty"`
}

// clientStages reads the gateway-side stage histograms back out of the
// client registry (same name+labels returns the same instrument).
func clientStages(reg *obs.Registry, remote *fabric.Remote) map[string]map[string]stageSummary {
	out := make(map[string]map[string]stageSummary)
	for i := 0; i < remote.NumChannels(); i++ {
		name := remote.ChannelAt(i).Name()
		chReg := reg.With(obs.L("channel", name))
		stages := make(map[string]stageSummary)
		for _, stage := range []string{"endorse", "order", "commit_wait"} {
			h := chReg.Histogram("tx_stage_seconds", "", nil, obs.L("stage", stage))
			if h.Count() == 0 {
				continue
			}
			stages[stage] = stageSummary{
				Count: h.Count(),
				P50ms: h.Quantile(0.5) * 1000,
				P95ms: h.Quantile(0.95) * 1000,
				P99ms: h.Quantile(0.99) * 1000,
			}
		}
		out[name] = stages
	}
	return out
}

// scrapeStatusz GETs every admin surface's /statusz into raw JSON; an
// unreachable endpoint records an error object instead of failing the run.
func scrapeStatusz(adminBook string) (map[string]json.RawMessage, error) {
	if adminBook == "" {
		return nil, nil
	}
	book, err := parsePeerBook(adminBook)
	if err != nil {
		return nil, fmt.Errorf("bad -admin-book: %w", err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	out := make(map[string]json.RawMessage, len(book))
	for id, addr := range book {
		body, err := getJSON(client, "http://"+addr+"/statusz")
		if err != nil {
			msg, _ := json.Marshal(map[string]string{"error": err.Error()})
			out[id] = msg
			continue
		}
		out[id] = body
	}
	return out, nil
}

func getJSON(client *http.Client, url string) (json.RawMessage, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	if !json.Valid(body) {
		return nil, fmt.Errorf("%s: invalid JSON", url)
	}
	return body, nil
}

// writeRunSummary assembles and writes the -stats-out document.
func writeRunSummary(cfg connectConfig, reg *obs.Registry, remote *fabric.Remote, stored, failed int, elapsed time.Duration) error {
	sum := runSummary{
		Records:        cfg.records,
		Stored:         stored,
		Failed:         failed,
		ElapsedSeconds: elapsed.Seconds(),
		Stages:         clientStages(reg, remote),
	}
	if elapsed > 0 {
		sum.RecordsPerSec = float64(stored) / elapsed.Seconds()
	}
	statusz, err := scrapeStatusz(cfg.adminBook)
	if err != nil {
		return err
	}
	sum.Statusz = statusz
	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.statsOut, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("run summary written to %s\n", cfg.statsOut)
	return nil
}
