// Command trafficgen generates the synthetic IUDX-style traffic corpus the
// evaluation uses (52 static-camera videos + drone flights) and reports its
// statistics, optionally dumping extracted metadata records as JSON lines.
//
// With -ingest it becomes the end-to-end ingest driver: it boots a full
// in-process framework (peers + BFT ordering + IPFS), registers a trusted
// camera and pushes -records frames through the internal/ingest pipeline
// in the selected mode (serial, batched, pipelined). -rate 0 runs closed
// loop (submit as fast as pipeline backpressure allows); -rate N runs open
// loop at N records/s, reporting offered vs achieved throughput. This is
// the e2e smoke CI runs on every PR.
//
// With -connect it instead drives an OUT-OF-PROCESS deployment
// (socialchaind -role peer/orderer processes) over transport.TCP: it
// bootstraps the chain (admin, trust parameters, camera), submits
// -records metadata transactions through remote gateways, and verifies
// every peer process's hash chain over RPC. -peers/-channels must match
// the deployment's flags. -stats-out FILE writes a JSON run summary on
// exit: counts, throughput, per-channel client-side stage latency
// percentiles (endorse / order / commit_wait, read from the gateway
// histograms) and — with -admin-book id=host:port,... — every listed
// node's /statusz snapshot.
//
// Usage: trafficgen [-videos 52] [-frames 20] [-drones 12] [-seed 1]
// [-dump-metadata] [-limit 5]
// [-ingest serial|batched|pipelined] [-records 200] [-rate 0]
// [-concurrency 8] [-batch 32] [-inflight 2] [-peers 4] [-channels 1]
// [-engine single|sharded|persist] [-data-dir DIR]
// [-connect id=host:port,... -orderer host:port]
// [-stats-out FILE] [-admin-book id=host:port,...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"socialchain/internal/dataset"
	"socialchain/internal/detect"
	"socialchain/internal/metrics"
)

func main() {
	videos := flag.Int("videos", 52, "static-camera videos")
	frames := flag.Int("frames", 20, "frames per video")
	drones := flag.Int("drones", 12, "drone flights")
	seed := flag.Int64("seed", 1, "corpus seed")
	dump := flag.Bool("dump-metadata", false, "emit extracted metadata records as JSON lines")
	limit := flag.Int("limit", 5, "max records to dump (0 = all)")
	ingestMode := flag.String("ingest", "", "drive the e2e ingest pipeline: serial, batched or pipelined")
	records := flag.Int("records", 200, "records to ingest (with -ingest)")
	rate := flag.Float64("rate", 0, "open-loop offered load in records/s (0 = closed loop)")
	concurrency := flag.Int("concurrency", 8, "ingest chunk+IPFS-add workers")
	batch := flag.Int("batch", 32, "records per batched envelope")
	// Default 1: trafficgen drives a single source, whose envelopes chain
	// through the provenance head — a wider window only burns consensus
	// rounds on MVCC conflicts (see DESIGN.md).
	inflight := flag.Int("inflight", 1, "batches in flight")
	peers := flag.Int("peers", 4, "blockchain peers per channel (with -ingest)")
	channels := flag.Int("channels", 1, "shard the ledger across this many channels (with -ingest)")
	engine := flag.String("engine", "", "world-state storage engine: single, sharded or persist")
	durability := flag.String("durability", "", "persist-engine fsync policy with -data-dir: none, batch or always")
	dataDir := flag.String("data-dir", "", "persist peers, block logs and IPFS stores under this directory; a restarted -ingest run resumes from it")
	readFrac := flag.Float64("read-frac", 0, "fraction of operations that are reads (with -connect): half probe stored records, half probe absent keys (the bloom-filter negative path); 0 = write-only")
	connect := flag.String("connect", "", "drive an out-of-process deployment: comma-separated id=host:port book of its peer processes")
	orderer := flag.String("orderer", "", "orderer process dial address (with -connect)")
	identitySeed := flag.String("identity-seed", "trafficgen", "derive client identities from this seed (with -connect); reruns against one deployment must reuse it")
	statsOut := flag.String("stats-out", "", "write a JSON run summary (client-side per-stage latency percentiles + scraped /statusz) to this file on exit (with -connect)")
	adminBook := flag.String("admin-book", "", "comma-separated id=host:port book of the deployment's admin surfaces, scraped into -stats-out")
	flag.Parse()

	if *readFrac < 0 || *readFrac >= 1 {
		log.Fatalf("-read-frac %v out of range [0, 1)", *readFrac)
	}

	if *connect != "" {
		if err := runConnect(connectConfig{
			peers:        *connect,
			orderer:      *orderer,
			numPeers:     *peers,
			channels:     *channels,
			records:      *records,
			readFrac:     *readFrac,
			seed:         *seed,
			identitySeed: *identitySeed,
			statsOut:     *statsOut,
			adminBook:    *adminBook,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *ingestMode != "" {
		if err := runIngest(ingestConfig{
			mode:        *ingestMode,
			records:     *records,
			rate:        *rate,
			concurrency: *concurrency,
			batch:       *batch,
			inflight:    *inflight,
			peers:       *peers,
			channels:    *channels,
			engine:      *engine,
			durability:  *durability,
			dataDir:     *dataDir,
			seed:        *seed,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	corpus := dataset.Generate(dataset.Config{
		Seed:            *seed,
		NumVideos:       *videos,
		FramesPerVideo:  *frames,
		NumDroneFlights: *drones,
		FramesPerFlight: *frames,
	})
	det := detect.NewDetector(*seed)

	sizeStats := metrics.NewStats()
	staticConf := metrics.NewStats()
	droneConf := metrics.NewStats()
	detections := 0
	dumped := 0
	var totalBytes uint64
	for _, f := range corpus.AllFrames() {
		sizeStats.Add(float64(f.SizeBytes()) / 1024)
		totalBytes += uint64(f.SizeBytes())
		rec, _ := det.ExtractMetadata(f)
		detections += len(rec.Detections)
		for _, d := range rec.Detections {
			if f.Platform == detect.PlatformDrone {
				droneConf.Add(d.Confidence)
			} else {
				staticConf.Add(d.Confidence)
			}
		}
		if *dump && (*limit == 0 || dumped < *limit) {
			b, err := json.Marshal(rec)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(string(b))
			dumped++
		}
	}
	if *dump {
		return
	}
	fmt.Printf("corpus: %d static videos, %d drone flights, %d frames, %.1f MiB total\n",
		len(corpus.Static), len(corpus.Drone), len(corpus.AllFrames()), float64(totalBytes)/(1<<20))
	fmt.Printf("frame size (KiB): %s\n", sizeStats.Summary())
	fmt.Printf("detections: %d\n", detections)
	fmt.Printf("static confidence: %s\n", staticConf.Summary())
	fmt.Printf("drone  confidence: %s\n", droneConf.Summary())

	tbl := metrics.NewTable("video", "camera", "platform", "frames", "first_frame_kb")
	max := 8
	for i, v := range corpus.Static {
		if i >= max {
			break
		}
		tbl.AddRow(v.ID, v.Camera.ID, "static", len(v.Frames), float64(v.Frames[0].SizeBytes())/1024)
	}
	for i, v := range corpus.Drone {
		if i >= 4 {
			break
		}
		tbl.AddRow(v.ID, v.Camera.ID, "drone", len(v.Frames), float64(v.Frames[0].SizeBytes())/1024)
	}
	fmt.Println()
	tbl.Render(os.Stdout)
}
