// Command benchharness regenerates the paper's evaluation figures as text
// tables and CSV series. Each -fig value reproduces one artefact:
//
//	2     sample metadata record (Figure 2)
//	3     detection confidence, static vs drone (Figure 3)
//	4     metadata extraction time vs frame size (Figure 4)
//	5     IPFS storage time vs file size, with/without blockchain (Figure 5)
//	6     retrieval time vs file size, with/without blockchain (Figure 6)
//	bft       BFT fault-tolerance ablation
//	trust     trust-score evolution ablation
//	scale     peer-count scalability ablation
//	storage   world-state engine ablation (single-lock vs sharded)
//	retrieval retrieval-pipeline ablation (indexed vs scan, concurrent vs
//	          serial fetch, payload cache on/off)
//	ingest    ingest-pipeline ablation (serial vs batched endorsement vs
//	          fully pipelined, -ingest-records records end to end)
//	durability persist-engine ablation (WAL-backed commits vs in-memory,
//	          recovery time, end-to-end durable-ingest overhead + a
//	          kill/reopen resume check)
//	lsm       LSM persist-engine ablation (memtable + SSTables + bloom
//	          filters vs the map-plus-WAL baseline: ingest rate, cold
//	          reopen at 10k/200k records, negative-read cost with
//	          blooms on/off)
//	consensus consensus/crypto hot-path ablation (serial vs batch vs
//	          cached signature verification, lockstep vs overlapped
//	          rounds, multi-source e2e ingest with overlap on/off)
//	channels  multi-channel sharding ablation (aggregate pipelined-ingest
//	          throughput at 1, 2 and 4 channels)
//	wire      consensus-transport ablation (the same ingest workload over
//	          in-process delivery vs framed localhost TCP sockets)
//	obs       observability-overhead ablation (the pipelined ingest workload
//	          with the obs metrics registry + tracing attached and a
//	          concurrent scraper, vs fully disabled)
//	all       everything above
//
// The -engine flag selects the world-state storage engine ("single",
// "sharded", "persist" or "mapwal") for every framework the harness
// builds, so any
// figure can be regenerated under any engine. The -transport flag
// likewise selects the consensus transport ("inproc" or "tcp") for every
// framework the harness builds, so any existing figure can be re-measured
// over the real wire. -out FILE writes the scalar
// metrics the figures record as a flat JSON map, the artefact the CI
// bench job diffs against its committed baseline.
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// figures, for digging into hot paths with `go tool pprof` (see
// DESIGN.md, "Consensus hot path").
//
// Usage: benchharness [-fig all] [-samples 20] [-csv] [-engine sharded] [-out BENCH.json] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"socialchain/internal/consensus"
	"socialchain/internal/contracts"
	"socialchain/internal/core"
	"socialchain/internal/dataset"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/ingest"
	"socialchain/internal/metrics"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/query"
	"socialchain/internal/sim"
	"socialchain/internal/statedb"
	"socialchain/internal/storage"
	"socialchain/internal/transport"
	"socialchain/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2,3,4,5,6,bft,trust,scale,storage,retrieval,ingest,durability,lsm,consensus,channels,wire,obs,all")
	samples := flag.Int("samples", 20, "measurements per point")
	csv := flag.Bool("csv", false, "emit CSV series instead of tables")
	seed := flag.Int64("seed", 1, "workload seed")
	engine := flag.String("engine", string(storage.EngineSharded), "world-state storage engine: single, sharded or persist")
	transportKind := flag.String("transport", "", "consensus transport for figure deployments: inproc (default) or tcp")
	out := flag.String("out", "", "write recorded scalar metrics as a JSON map to this file")
	ingestRecords := flag.Int("ingest-records", 10000, "records per mode in the ingest ablation")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the selected figures to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the selected figures to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("create cpu profile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("start cpu profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("create mem profile: %v", err)
			}
			defer f.Close()
			runtime.GC() // materialise the retained heap before sampling
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("write mem profile: %v", err)
			}
		}()
	}

	switch storage.Engine(*engine) {
	case storage.EngineSingle, storage.EngineSharded, storage.EnginePersist, storage.EngineMapWAL:
	default:
		log.Fatalf("unknown engine %q (valid: %s, %s, %s, %s)", *engine,
			storage.EngineSingle, storage.EngineSharded, storage.EnginePersist, storage.EngineMapWAL)
	}
	if _, err := transport.ParseKind(*transportKind); err != nil {
		log.Fatal(err)
	}
	h := &harness{samples: *samples, csv: *csv, seed: *seed, engine: storage.Engine(*engine), transport: *transportKind, ingestRecords: *ingestRecords, metrics: make(map[string]float64)}
	run := map[string]func() error{
		"2":          h.figure2,
		"3":          h.figure3,
		"4":          h.figure4,
		"5":          h.figure5,
		"6":          h.figure6,
		"bft":        h.bft,
		"trust":      h.trust,
		"scale":      h.scale,
		"storage":    h.storage,
		"retrieval":  h.retrieval,
		"ingest":     h.ingest,
		"durability": h.durability,
		"lsm":        h.lsm,
		"consensus":  h.consensus,
		"channels":   h.channels,
		"wire":       h.wire,
		"obs":        h.obs,
	}
	order := []string{"2", "3", "4", "5", "6", "bft", "trust", "scale", "storage", "retrieval", "ingest", "durability", "lsm", "consensus", "channels", "wire", "obs"}
	want := strings.Split(*fig, ",")
	if *fig == "all" {
		want = order
	}
	for _, f := range want {
		fn, ok := run[strings.TrimSpace(f)]
		if !ok {
			log.Fatalf("unknown figure %q (valid: %s, all)", f, strings.Join(order, ","))
		}
		if err := fn(); err != nil {
			log.Fatalf("figure %s: %v", f, err)
		}
	}
	if *out != "" {
		enc, err := json.MarshalIndent(h.metrics, "", "  ")
		if err != nil {
			log.Fatalf("marshal metrics: %v", err)
		}
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			log.Fatalf("write %s: %v", *out, err)
		}
	}
}

type harness struct {
	samples       int
	csv           bool
	seed          int64
	engine        storage.Engine
	transport     string
	ingestRecords int
	// metrics collects named scalars for -out (figure functions record
	// what CI tracks for regressions).
	metrics map[string]float64
}

// record stores one scalar for the -out artefact.
func (h *harness) record(name string, v float64) { h.metrics[name] = v }

func (h *harness) header(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

func (h *harness) emit(series ...*metrics.Series) {
	if h.csv {
		for _, s := range series {
			s.WriteCSV(os.Stdout)
		}
		return
	}
	tbl := metrics.NewTable(append([]string{"x"}, labelsOf(series)...)...)
	for i := range series[0].X {
		row := []any{series[0].X[i]}
		for _, s := range series {
			row = append(row, s.Y[i])
		}
		tbl.AddRow(row...)
	}
	tbl.Render(os.Stdout)
}

func labelsOf(series []*metrics.Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Label
	}
	return out
}

// figure2 prints one extracted metadata record in the paper's Figure 2
// shape.
func (h *harness) figure2() error {
	h.header("Figure 2 — sample metadata record")
	corpus := dataset.Generate(dataset.Config{Seed: h.seed, NumVideos: 1, FramesPerVideo: 1, NumDroneFlights: 1, FramesPerFlight: 1})
	det := detect.NewDetector(h.seed)
	rec, _ := det.ExtractMetadata(&corpus.Static[0].Frames[0])
	b, err := json.MarshalIndent(rec.Detections[0], "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("metadata %s\n", b)
	return nil
}

// figure3 prints the per-platform confidence distributions.
func (h *harness) figure3() error {
	h.header("Figure 3 — detection confidence: static vs drone")
	corpus := dataset.Generate(dataset.Config{Seed: h.seed, NumVideos: 52, FramesPerVideo: 10, NumDroneFlights: 12, FramesPerFlight: 10})
	det := detect.NewDetector(h.seed)

	collect := func(videos []dataset.Video) (*metrics.Stats, *metrics.Histogram) {
		stats := metrics.NewStats()
		hist := metrics.NewHistogram(0, 1, 20)
		for i := range videos {
			for j := range videos[i].Frames {
				for _, d := range det.Detect(&videos[i].Frames[j]) {
					stats.Add(d.Confidence)
					hist.Add(d.Confidence)
				}
			}
		}
		return stats, hist
	}
	staticStats, staticHist := collect(corpus.Static)
	droneStats, droneHist := collect(corpus.Drone)

	tbl := metrics.NewTable("platform", "detections", "conf-mean", "conf-std", "p5", "p95")
	tbl.AddRow("static", staticStats.N(), staticStats.Mean(), staticStats.Std(), staticStats.Percentile(5), staticStats.Percentile(95))
	tbl.AddRow("drone", droneStats.N(), droneStats.Mean(), droneStats.Std(), droneStats.Percentile(5), droneStats.Percentile(95))
	tbl.Render(os.Stdout)
	if !h.csv {
		fmt.Println("\nstatic confidence distribution:")
		fmt.Print(staticHist.Render(40))
		fmt.Println("drone confidence distribution:")
		fmt.Print(droneHist.Render(40))
	}
	return nil
}

// figure4 prints extraction time against frame size.
func (h *harness) figure4() error {
	h.header("Figure 4 — metadata extraction time vs frame size")
	det := detect.NewDetector(h.seed)
	rng := sim.NewRNG(h.seed)
	corpus := dataset.Generate(dataset.Config{Seed: h.seed, NumVideos: 20, FramesPerVideo: 5, NumDroneFlights: 5, FramesPerFlight: 5, MeanFrameKB: 32})
	_ = rng
	s := &metrics.Series{Label: "extract_s"}
	for _, f := range corpus.AllFrames() {
		_, dur := det.ExtractMetadata(f)
		s.Append(float64(f.SizeBytes())/1024, dur.Seconds())
	}
	if h.csv {
		s.WriteCSV(os.Stdout)
		return nil
	}
	tbl := metrics.NewTable("size_kb", "extract_s")
	for i := range s.X {
		tbl.AddRow(s.X[i], s.Y[i])
	}
	tbl.Render(os.Stdout)
	return nil
}

// storageFramework builds the default evaluation deployment: 4 peers
// (paper: 2 peers + orderer; we keep BFT-viable 4) and 2 IPFS nodes, with
// LAN-like latency so overheads resemble the Docker-on-one-host testbed.
func (h *harness) storageFramework() (*core.Framework, *core.Client, error) {
	rng := sim.NewRNG(h.seed)
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers: 4,
			Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
			Latency:  sim.LANLatency(rng),
		},
		IPFSNodes:     2,
		IPFSLatency:   sim.LANLatency(rng.Fork()),
		StorageEngine: h.engine,
		Transport:     h.transport,
	})
	if err != nil {
		return nil, nil, err
	}
	cam, err := msp.NewSigner("city", "harness-cam", msp.RoleTrustedSource)
	if err != nil {
		fw.Close()
		return nil, nil, err
	}
	if err := fw.RegisterSource(cam.Identity, true); err != nil {
		fw.Close()
		return nil, nil, err
	}
	return fw, fw.Client(cam, 0), nil
}

func frameOfSize(rng *sim.RNG, det *detect.Detector, size, idx int) (*detect.Frame, detect.MetadataRecord) {
	f := &detect.Frame{
		ID:         detect.FrameIDFor(fmt.Sprintf("harness-%d", idx), idx),
		VideoID:    fmt.Sprintf("harness-%d", idx),
		CameraID:   "harness-cam",
		Index:      idx,
		Platform:   detect.PlatformStatic,
		Encoding:   detect.EncodingJPEG,
		Width:      1280,
		Height:     720,
		Data:       rng.Bytes(size),
		Timestamp:  time.Now(),
		Location:   detect.GeoPoint{Latitude: 12.97, Longitude: 77.59},
		LightLevel: 1,
	}
	meta, _ := det.ExtractMetadata(f)
	return f, meta
}

// figure5 prints storage time vs size, with and without blockchain.
func (h *harness) figure5() error {
	h.header("Figure 5 — storage time vs file size (IPFS alone vs with blockchain)")
	fw, client, err := h.storageFramework()
	if err != nil {
		return err
	}
	defer fw.Close()
	rng := sim.NewRNG(h.seed)
	det := detect.NewDetector(h.seed)
	ipfsOnly := &metrics.Series{Label: "ipfs_only_s"}
	withBC := &metrics.Series{Label: "with_blockchain_s"}
	for _, size := range workload.DefaultStorageSweep() {
		ipfsStat := metrics.NewStats()
		totalStat := metrics.NewStats()
		for i := 0; i < h.samples; i++ {
			frame, meta := frameOfSize(rng, det, size, i)
			receipt, err := client.StoreFrame(frame, meta)
			if err != nil {
				return err
			}
			ipfsStat.AddDuration(receipt.Timing.IPFS)
			totalStat.AddDuration(receipt.Timing.Total())
		}
		kb := float64(size) / 1024
		ipfsOnly.Append(kb, ipfsStat.Mean())
		withBC.Append(kb, totalStat.Mean())
	}
	h.emit(ipfsOnly, withBC)
	return nil
}

// figure6 prints retrieval time vs size, with and without blockchain.
func (h *harness) figure6() error {
	h.header("Figure 6 — retrieval time vs file size (IPFS alone vs with blockchain)")
	fw, client, err := h.storageFramework()
	if err != nil {
		return err
	}
	defer fw.Close()
	rng := sim.NewRNG(h.seed)
	det := detect.NewDetector(h.seed)
	reader := fw.Client(fw.Admin, 1)
	ipfsOnly := &metrics.Series{Label: "ipfs_only_s"}
	withBC := &metrics.Series{Label: "with_blockchain_s"}
	for _, size := range workload.DefaultStorageSweep() {
		frame, meta := frameOfSize(rng, det, size, 0)
		receipt, err := client.StoreFrame(frame, meta)
		if err != nil {
			return err
		}
		ipfsStat := metrics.NewStats()
		totalStat := metrics.NewStats()
		for i := 0; i < h.samples; i++ {
			res, err := reader.RetrieveData(receipt.TxID)
			if err != nil {
				return err
			}
			ipfsStat.AddDuration(res.Timing.IPFS)
			totalStat.AddDuration(res.Timing.Total())
		}
		kb := float64(size) / 1024
		ipfsOnly.Append(kb, ipfsStat.Mean())
		withBC.Append(kb, totalStat.Mean())
	}
	h.emit(ipfsOnly, withBC)
	return nil
}

// bft sweeps byzantine validator counts on a 7-peer network.
func (h *harness) bft() error {
	h.header("Ablation — BFT fault tolerance (n=7, f=2)")
	tbl := metrics.NewTable("byzantine", "stores_ok", "stores_failed", "mean_latency_s")
	for _, byz := range []int{0, 1, 2} {
		behaviors := map[int]consensus.Behavior{}
		for i := 0; i < byz; i++ {
			behaviors[i+1] = consensus.Silent{}
		}
		fw, err := core.New(core.Config{
			Fabric: fabric.Config{
				NumPeers:         7,
				Cutter:           ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
				Behaviors:        behaviors,
				ConsensusTimeout: 500 * time.Millisecond,
			},
			IPFSNodes:     2,
			StorageEngine: h.engine,
			Transport:     h.transport,
		})
		if err != nil {
			return err
		}
		cam, err := msp.NewSigner("city", "bft-cam", msp.RoleTrustedSource)
		if err != nil {
			fw.Close()
			return err
		}
		if err := fw.RegisterSource(cam.Identity, true); err != nil {
			fw.Close()
			return err
		}
		client := fw.Client(cam, 0)
		rng := sim.NewRNG(h.seed)
		det := detect.NewDetector(h.seed)
		lat := metrics.NewStats()
		ok, failed := 0, 0
		for i := 0; i < h.samples; i++ {
			frame, meta := frameOfSize(rng, det, 8*1024, i)
			start := time.Now()
			if _, err := client.StoreFrame(frame, meta); err != nil {
				failed++
				continue
			}
			lat.AddDuration(time.Since(start))
			ok++
		}
		tbl.AddRow(byz, ok, failed, lat.Mean())
		fw.Close()
	}
	tbl.Render(os.Stdout)
	return nil
}

// trust shows score evolution for an honest and a dishonest source.
func (h *harness) trust() error {
	h.header("Ablation — trust score evolution (honest vs dishonest source)")
	fw, _, err := h.storageFramework()
	if err != nil {
		return err
	}
	defer fw.Close()
	honest, err := msp.NewSigner("crowd", "honest", msp.RoleUntrustedSource)
	if err != nil {
		return err
	}
	dishonest, err := msp.NewSigner("crowd", "dishonest", msp.RoleUntrustedSource)
	if err != nil {
		return err
	}
	for _, s := range []*msp.Signer{honest, dishonest} {
		if err := fw.RegisterSource(s.Identity, false); err != nil {
			return err
		}
	}
	honestClient := fw.Client(honest, 0)
	dishonestClient := fw.Client(dishonest, 0)
	rng := sim.NewRNG(h.seed)
	det := detect.NewDetector(h.seed)

	tbl := metrics.NewTable("round", "honest_score", "dishonest_score", "dishonest_gated")
	rounds := h.samples
	if rounds > 12 {
		rounds = 12
	}
	for round := 1; round <= rounds; round++ {
		frame, meta := frameOfSize(rng, det, 4*1024, round)
		if _, err := honestClient.StoreFrame(frame, meta); err != nil {
			return fmt.Errorf("honest store: %w", err)
		}
		badFrame, badMeta := frameOfSize(rng, det, 4*1024, 1000+round)
		badMeta.DataHash = strings.Repeat("0", 64) // fails hash integrity
		_, badErr := dishonestClient.StoreFrame(badFrame, badMeta)
		gated := badErr != nil

		hs, err := fw.TrustScore(honest.Identity.ID())
		if err != nil {
			return err
		}
		ds, err := fw.TrustScore(dishonest.Identity.ID())
		if err != nil {
			return err
		}
		tbl.AddRow(round, hs.Score, ds.Score, gated)
	}
	tbl.Render(os.Stdout)
	return nil
}

// scale sweeps the peer count against store latency.
func (h *harness) scale() error {
	h.header("Ablation — peer-count scalability")
	tbl := metrics.NewTable("peers", "mean_store_s", "p95_store_s")
	for _, peers := range []int{4, 7, 10, 13} {
		fw, err := core.New(core.Config{
			Fabric: fabric.Config{
				NumPeers: peers,
				Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
			},
			IPFSNodes:     2,
			StorageEngine: h.engine,
			Transport:     h.transport,
		})
		if err != nil {
			return err
		}
		cam, err := msp.NewSigner("city", "scale-cam", msp.RoleTrustedSource)
		if err != nil {
			fw.Close()
			return err
		}
		if err := fw.RegisterSource(cam.Identity, true); err != nil {
			fw.Close()
			return err
		}
		client := fw.Client(cam, 0)
		rng := sim.NewRNG(h.seed)
		det := detect.NewDetector(h.seed)
		lat := metrics.NewStats()
		for i := 0; i < h.samples; i++ {
			frame, meta := frameOfSize(rng, det, 8*1024, i)
			start := time.Now()
			if _, err := client.StoreFrame(frame, meta); err != nil {
				fw.Close()
				return err
			}
			lat.AddDuration(time.Since(start))
		}
		tbl.AddRow(peers, lat.Mean(), lat.Percentile(95))
		fw.Close()
	}
	tbl.Render(os.Stdout)
	return nil
}

// retrieval reproduces the retrieval-pipeline ablation in two parts.
//
// Part A seeds a 10k-record world state (production index set) and times
// one conditional metadata query three ways: the full namespace scan
// (ScanQuery, the pre-index behaviour), the indexed short-circuit
// (ExecuteQuery via the label index) and a raw 100-entry index page.
//
// Part B stores a batch of payloads through a LAN-latency framework and
// times GetMany over a remote IPFS node: serial (1 worker), concurrent
// (8 workers), and a cache-warm pass through the payload cache.
func (h *harness) retrieval() error {
	h.header("Ablation — retrieval pipeline (indexed vs scan, concurrent vs serial, cache)")

	// --- Part A: indexed vs scan conditional queries at 10k records.
	const (
		records   = 10000
		numLabels = 25
	)
	db, err := statedb.NewIndexedWith(storage.Config{Engine: h.engine}, contracts.DataIndexes()...)
	if err != nil {
		return err
	}
	const batchSize = 500
	for start := 0; start < records; start += batchSize {
		batch := statedb.NewUpdateBatch()
		for i := start; i < start+batchSize && i < records; i++ {
			doc := fmt.Sprintf(`{"tx_id":"tx-%06d","cid":"bafy%06d","label":"label-%02d","source":"org/src-%02d",`+
				`"metadata":{"camera_id":"cam-%d","frame_id":"f-%d"},"data_hash":"%064d",`+
				`"size_bytes":4096,"submitted":"2026-07-%02dT%02d:%02d:00Z","seq":%d}`,
				i, i, i%numLabels, i%50, i%10, i, i, 1+i%28, i/3600%24, i/60%60, i)
			batch.Put("data", fmt.Sprintf("rec/%06d", i), []byte(doc))
		}
		db.ApplyUpdates(batch, statedb.Version{BlockNum: uint64(start/batchSize + 1)})
	}
	queries := h.samples
	if queries < 5 {
		queries = 5
	}
	scanStat, idxStat, pageStat := metrics.NewStats(), metrics.NewStats(), metrics.NewStats()
	for q := 0; q < queries; q++ {
		sel := statedb.Selector{"label": fmt.Sprintf("label-%02d", q%numLabels)}
		start := time.Now()
		scanned, err := db.ScanQuery("data", sel)
		scanStat.AddDuration(time.Since(start))
		if err != nil {
			return err
		}
		start = time.Now()
		indexed, err := db.ExecuteQuery("data", sel)
		idxStat.AddDuration(time.Since(start))
		if err != nil {
			return err
		}
		if len(indexed) != len(scanned) || len(indexed) != records/numLabels {
			return fmt.Errorf("retrieval: indexed %d vs scanned %d results", len(indexed), len(scanned))
		}
		start = time.Now()
		page, err := db.IterIndex(contracts.IndexLabel, fmt.Sprintf("label-%02d", q%numLabels), 100, 0, "")
		pageStat.AddDuration(time.Since(start))
		if err != nil {
			return err
		}
		if len(page.Entries) != 100 {
			return fmt.Errorf("retrieval: index page returned %d entries", len(page.Entries))
		}
	}
	speedup := scanStat.Mean() / idxStat.Mean()
	h.record("scan_by_label_s", scanStat.Mean())
	h.record("indexed_by_label_s", idxStat.Mean())
	h.record("index_speedup_x", speedup)
	h.record("iter_index_page_s", pageStat.Mean())

	// --- Part B: serial vs concurrent vs cached batch retrieval.
	fw, client, err := h.storageFramework()
	if err != nil {
		return err
	}
	defer fw.Close()
	rng := sim.NewRNG(h.seed)
	det := detect.NewDetector(h.seed)
	batch := h.samples
	if batch < 8 {
		batch = 8
	}
	if batch > 24 {
		batch = 24
	}
	txIDs := make([]string, 0, batch)
	for i := 0; i < batch; i++ {
		frame, meta := frameOfSize(rng, det, 16*1024, i)
		receipt, err := client.StoreFrame(frame, meta)
		if err != nil {
			return err
		}
		txIDs = append(txIDs, receipt.TxID)
	}
	// Reads go to the second IPFS node so payloads are fetched over the
	// simulated network; its blockstore is wiped between passes so every
	// pass pays the full fetch.
	remote := fw.Cluster.Node(1)
	wipeRemote := func() error {
		for _, k := range remote.Blockstore().AllKeys() {
			if err := remote.Blockstore().Delete(k); err != nil {
				return err
			}
		}
		return nil
	}
	checkItems := func(mode string, items []query.BatchItem) error {
		for _, item := range items {
			if item.Err != nil {
				return fmt.Errorf("retrieval: %s fetch %s: %w", mode, item.TxID, item.Err)
			}
			if !item.Verified {
				return fmt.Errorf("retrieval: %s fetch %s: not verified", mode, item.TxID)
			}
		}
		return nil
	}
	runPass := func(mode string, eng *query.Engine, workers int) (float64, error) {
		start := time.Now()
		items := eng.GetMany(txIDs, workers)
		elapsed := time.Since(start).Seconds()
		if err := checkItems(mode, items); err != nil {
			return 0, err
		}
		return elapsed, nil
	}

	serialEng := query.NewEngine(fw.AdminGateway(), remote)
	serialS, err := runPass("serial", serialEng, 1)
	if err != nil {
		return err
	}
	if err := wipeRemote(); err != nil {
		return err
	}
	concEng := query.NewEngine(fw.AdminGateway(), remote)
	concS, err := runPass("concurrent", concEng, 8)
	if err != nil {
		return err
	}
	if err := wipeRemote(); err != nil {
		return err
	}
	cachedEng := query.NewEngine(fw.AdminGateway(), remote).WithPayloadCache(64 << 20).WithWorkers(8)
	if _, err := runPass("cache-warmup", cachedEng, 8); err != nil {
		return err
	}
	cachedS, err := runPass("cached", cachedEng, 8)
	if err != nil {
		return err
	}
	hitRate := cachedEng.CacheStats().HitRate()

	h.record("serial_getmany_s", serialS)
	h.record("concurrent_getmany_s", concS)
	h.record("fetch_speedup_x", serialS/concS)
	h.record("cached_getmany_s", cachedS)
	h.record("cache_hit_rate", hitRate)

	if h.csv {
		queryS := &metrics.Series{Label: "query_mode_s"} // x: 0=scan 1=indexed 2=index_page
		queryS.Append(0, scanStat.Mean())
		queryS.Append(1, idxStat.Mean())
		queryS.Append(2, pageStat.Mean())
		fetchS := &metrics.Series{Label: "getmany_mode_s"} // x: workers (0 = cached)
		fetchS.Append(1, serialS)
		fetchS.Append(8, concS)
		fetchS.Append(0, cachedS)
		queryS.WriteCSV(os.Stdout)
		fetchS.WriteCSV(os.Stdout)
		return nil
	}
	qt := metrics.NewTable("metadata_query (10k records)", "mean_s", "speedup_vs_scan")
	qt.AddRow("full scan (ScanQuery)", scanStat.Mean(), 1.0)
	qt.AddRow("indexed (ExecuteQuery)", idxStat.Mean(), speedup)
	qt.AddRow("index page (IterIndex, 100)", pageStat.Mean(), scanStat.Mean()/pageStat.Mean())
	qt.Render(os.Stdout)
	fmt.Println()
	ft := metrics.NewTable(fmt.Sprintf("payload_fetch (%d x 16KB)", batch), "total_s", "per_item_s")
	ft.AddRow("serial (1 worker)", serialS, serialS/float64(batch))
	ft.AddRow("concurrent (8 workers)", concS, concS/float64(batch))
	ft.AddRow(fmt.Sprintf("cached (hit rate %.2f)", hitRate), cachedS, cachedS/float64(batch))
	ft.Render(os.Stdout)
	return nil
}

// ingest reproduces the write-path ablation: -ingest-records records are
// pushed end to end (chunk + IPFS add + endorse + BFT order + commit)
// through the ingest pipeline in each mode, over the same LAN-latency
// deployment the storage figures use:
//
//	serial    one record per envelope, one add worker, one in flight —
//	          the paper's one-at-a-time store loop
//	batched   batched endorsement (one envelope per 100 records), still
//	          sequential stages
//	pipelined batched + concurrent IPFS adds + overlapped commit
//
// The recorded metrics (ingest_*_rps, ingest_pipelined_speedup_x) feed
// the CI regression gate.
func (h *harness) ingest() error {
	h.header(fmt.Sprintf("Ablation — ingest pipeline (serial vs batched vs pipelined, %d records)", h.ingestRecords))
	// A generous flush interval lets envelopes fill to BatchSize even
	// when the add stage (one worker, LAN-latency IPFS) trickles records
	// in; throughput mode trades batch dwell for fewer consensus rounds.
	const (
		batchSize = 100
		flush     = 250 * time.Millisecond
	)
	// MaxInFlight is 1: a single source's envelopes form a serial MVCC
	// dependency chain through the provenance head, so a second in-flight
	// envelope only burns consensus rounds on invalidations (see
	// DESIGN.md); the overlap that pays here is adds-vs-commit.
	configs := []ingest.Config{
		{Mode: ingest.ModeSerial},
		{Mode: ingest.ModeBatched, BatchSize: batchSize, FlushInterval: flush},
		{Mode: ingest.ModePipelined, BatchSize: batchSize, AddWorkers: 8, MaxInFlight: 1, FlushInterval: flush},
	}
	tbl := metrics.NewTable("mode", "records", "batches", "wall_s", "records_per_s", "p95_latency_s", "speedup_x")
	series := &metrics.Series{Label: "ingest_rps"} // x: 0=serial 1=batched 2=pipelined
	var serialRPS float64
	for mi, cfg := range configs {
		rng := sim.NewRNG(h.seed)
		fw, err := core.New(core.Config{
			Fabric: fabric.Config{
				NumPeers: 4,
				Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
				Latency:  sim.LANLatency(rng),
			},
			IPFSNodes:     2,
			IPFSLatency:   sim.LANLatency(rng.Fork()),
			StorageEngine: h.engine,
			Transport:     h.transport,
		})
		if err != nil {
			return err
		}
		cam, err := msp.NewSigner("city", "ingest-cam", msp.RoleTrustedSource)
		if err != nil {
			fw.Close()
			return err
		}
		if err := fw.RegisterSource(cam.Identity, true); err != nil {
			fw.Close()
			return err
		}
		client := fw.Client(cam, 0)
		det := detect.NewDetector(h.seed)
		frameRNG := sim.NewRNG(h.seed + 7)
		records := make([]ingest.Record, h.ingestRecords)
		for i := range records {
			frame, meta := frameOfSize(frameRNG, det, 4*1024, i)
			records[i] = ingest.Record{Signed: msp.NewSignedMessage(cam, frame.Data), Meta: meta}
		}
		pipe := client.Pipeline(cfg)
		results := pipe.Run(records)
		stats := pipe.Stats()
		lat := metrics.NewStats()
		for _, r := range results {
			if r.Err != nil {
				fw.Close()
				return fmt.Errorf("ingest %s: record %d: %w", cfg.Mode, r.Index, r.Err)
			}
			lat.AddDuration(r.Latency)
		}
		fw.Close()
		rps := stats.Throughput()
		if cfg.Mode == ingest.ModeSerial {
			serialRPS = rps
		}
		speedup := 1.0
		if serialRPS > 0 {
			speedup = rps / serialRPS
		}
		h.record(fmt.Sprintf("ingest_%s_rps", cfg.Mode), rps)
		if cfg.Mode != ingest.ModeSerial {
			h.record(fmt.Sprintf("ingest_%s_speedup_x", cfg.Mode), speedup)
		}
		tbl.AddRow(string(cfg.Mode), stats.Stored, stats.Batches, stats.Elapsed.Seconds(), rps, lat.Percentile(95), speedup)
		series.Append(float64(mi), rps)
	}
	if h.csv {
		series.WriteCSV(os.Stdout)
		return nil
	}
	tbl.Render(os.Stdout)
	return nil
}

// durability measures what the WAL-backed persist engine costs and buys.
//
// Part A (micro, statedb-level): 10k records committed in 20-write
// batches through the sharded engine and through persist; then the
// persist statedb is closed and reopened, timing WAL replay recovery.
//
// Part B (end to end): the pipelined ingest workload runs twice on
// identical frameworks — RAM-only vs fully durable (-data-dir: persist
// world state, block logs, IPFS blockstores) — and the durable deployment
// is then closed and reopened, verifying the chain resumes at the same
// height and timing the full recovery.
//
// Recorded metrics: commit/ingest efficiency ratios (persist as a
// fraction of in-memory, higher is better) and recovery latencies.
func (h *harness) durability() error {
	h.header("Ablation — durability (WAL-backed persist engine vs in-memory)")

	// --- Part A: statedb commit overhead + recovery.
	const (
		keys      = 10000
		batchKeys = 20
	)
	commitRate := func(cfg storage.Config) (float64, *statedb.DB, error) {
		db, err := statedb.NewWith(cfg)
		if err != nil {
			return 0, nil, err
		}
		start := time.Now()
		for base := 0; base < keys; base += batchKeys {
			batch := statedb.NewUpdateBatch()
			for i := base; i < base+batchKeys && i < keys; i++ {
				batch.Put("data", fmt.Sprintf("rec/%06d", i),
					[]byte(fmt.Sprintf(`{"label":"label-%02d","idx":%d}`, i%25, i)))
			}
			db.ApplyUpdates(batch, statedb.Version{BlockNum: uint64(base/batchKeys + 1)})
		}
		return float64(keys) / time.Since(start).Seconds(), db, nil
	}
	shardedRate, shardedDB, err := commitRate(storage.Config{Engine: storage.EngineSharded})
	if err != nil {
		return err
	}
	_ = shardedDB.Close()
	persistDir, err := os.MkdirTemp("", "benchharness-durability-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(persistDir)
	persistCfg := storage.Config{Engine: storage.EnginePersist, Dir: persistDir}
	persistRate, persistDB, err := commitRate(persistCfg)
	if err != nil {
		return err
	}
	if err := persistDB.Close(); err != nil {
		return err
	}
	start := time.Now()
	reopened, err := statedb.NewWith(persistCfg)
	if err != nil {
		return err
	}
	stateReopenS := time.Since(start).Seconds()
	if got := reopened.Keys("data"); got != keys {
		return fmt.Errorf("durability: recovered %d keys, want %d", got, keys)
	}
	if err := reopened.Close(); err != nil {
		return err
	}
	h.record("durability_commit_sharded_ops", shardedRate)
	h.record("durability_commit_persist_ops", persistRate)
	h.record("durability_commit_efficiency_x", persistRate/shardedRate)
	h.record("durability_state_reopen_s", stateReopenS)

	// --- Part B: end-to-end durable ingest + kill/reopen resume.
	records := h.ingestRecords / 4
	if records < 100 {
		records = 100
	}
	e2e := func(dataDir string) (float64, *core.Framework, error) {
		rng := sim.NewRNG(h.seed)
		fw, err := core.New(core.Config{
			Fabric: fabric.Config{
				NumPeers: 4,
				Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
				Latency:  sim.LANLatency(rng),
			},
			IPFSNodes:   2,
			IPFSLatency: sim.LANLatency(rng.Fork()),
			DataDir:     dataDir,
			Transport:   h.transport,
		})
		if err != nil {
			return 0, nil, err
		}
		cam, err := msp.NewSigner("city", "durability-cam", msp.RoleTrustedSource)
		if err != nil {
			fw.Close()
			return 0, nil, err
		}
		if err := fw.RegisterSource(cam.Identity, true); err != nil {
			fw.Close()
			return 0, nil, err
		}
		client := fw.Client(cam, 0)
		det := detect.NewDetector(h.seed)
		frameRNG := sim.NewRNG(h.seed + 7)
		recs := make([]ingest.Record, records)
		for i := range recs {
			frame, meta := frameOfSize(frameRNG, det, 4*1024, i)
			recs[i] = ingest.Record{Signed: msp.NewSignedMessage(cam, frame.Data), Meta: meta}
		}
		pipe := client.Pipeline(ingest.Config{
			Mode: ingest.ModePipelined, BatchSize: 100, AddWorkers: 8, MaxInFlight: 1,
			FlushInterval: 250 * time.Millisecond,
		})
		results := pipe.Run(recs)
		for _, r := range results {
			if r.Err != nil {
				fw.Close()
				return 0, nil, fmt.Errorf("durability ingest record %d: %w", r.Index, r.Err)
			}
		}
		return pipe.Stats().Throughput(), fw, nil
	}

	memRPS, memFW, err := e2e("")
	if err != nil {
		return err
	}
	memFW.Close()
	e2eDir, err := os.MkdirTemp("", "benchharness-durability-e2e-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(e2eDir)
	persistRPS, durableFW, err := e2e(e2eDir)
	if err != nil {
		return err
	}
	heightBefore := durableFW.LedgerStats().Height
	durableFW.Close()
	if err := durableFW.CloseErr(); err != nil {
		return fmt.Errorf("durability: close durable framework: %w", err)
	}
	start = time.Now()
	resumed, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers: 4,
			Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
		},
		IPFSNodes: 2,
		DataDir:   e2eDir,
		Transport: h.transport,
	})
	if err != nil {
		return fmt.Errorf("durability: reopen: %w", err)
	}
	e2eReopenS := time.Since(start).Seconds()
	resumedHeight := resumed.LedgerStats().Height
	resumed.Close()
	if resumedHeight < heightBefore {
		return fmt.Errorf("durability: resumed at height %d, had %d before the restart", resumedHeight, heightBefore)
	}
	h.record("durability_mem_ingest_rps", memRPS)
	h.record("durability_persist_ingest_rps", persistRPS)
	h.record("durability_ingest_efficiency_x", persistRPS/memRPS)
	h.record("durability_e2e_reopen_s", e2eReopenS)

	if h.csv {
		s := &metrics.Series{Label: "durability_rps"} // x: 0=mem 1=persist
		s.Append(0, memRPS)
		s.Append(1, persistRPS)
		s.WriteCSV(os.Stdout)
		return nil
	}
	ct := metrics.NewTable("statedb commit (10k records, 20-write batches)", "records_per_s", "vs_sharded")
	ct.AddRow("sharded (RAM)", shardedRate, 1.0)
	ct.AddRow("persist (WAL)", persistRate, persistRate/shardedRate)
	ct.Render(os.Stdout)
	fmt.Printf("\nstatedb recovery (WAL replay, 10k keys): %.4fs\n\n", stateReopenS)
	et := metrics.NewTable(fmt.Sprintf("e2e pipelined ingest (%d records)", records), "records_per_s", "vs_memory")
	et.AddRow("in-memory deployment", memRPS, 1.0)
	et.AddRow("durable deployment (-data-dir)", persistRPS, persistRPS/memRPS)
	et.Render(os.Stdout)
	fmt.Printf("\ne2e restart: closed at height %d, resumed at height %d in %.3fs\n",
		heightBefore, resumedHeight, e2eReopenS)
	return nil
}

// lsm is the storage-engine ablation behind the persist rewrite: the LSM
// engine (memtable + SSTables + bloom filters + manifest) against the
// map-plus-WAL baseline it replaced, measured at the engine level so
// nothing above storage.KV dilutes the numbers.
//
// Part A — ingest + cold reopen at two scales (10k and 200k records,
// 20-write batches mirroring block commits). The baseline's reopen
// replays every record ever written into a fresh map; the LSM replays
// only the WAL tail behind the last flushed memtable and opens SSTable
// indexes without touching data blocks, so its reopen cost is O(recent
// writes) instead of O(total state). lsm_reopen_speedup_x records the
// 200k-record ratio.
//
// Part B — point reads against the reopened 200k-record LSM: hits, and
// misses with bloom filters on vs off (same on-disk data, reopened with
// NoBloom). Blooms turn a negative lookup from a block fetch per level
// into an in-memory test; lsm_negread_bloom_speedup_x records the ratio.
func (h *harness) lsm() error {
	h.header("Ablation — LSM persist engine vs map-plus-WAL baseline")

	const batchKeys = 20
	// Bench-sized memtable so the 200k run flushes and compacts like a
	// long-lived node rather than fitting entirely in its first memtable.
	lsmCfg := func(dir string) storage.Config {
		return storage.Config{Engine: storage.EnginePersist, Dir: dir, MemtableBytes: 1 << 20}
	}
	mapCfg := func(dir string) storage.Config {
		return storage.Config{Engine: storage.EngineMapWAL, Dir: dir}
	}
	key := func(i int) string { return fmt.Sprintf("data\x00rec/%08d", i) }
	val := func(i int) []byte {
		return []byte(fmt.Sprintf(`{"label":"label-%02d","idx":%d,"cid":"bafy%032d"}`, i%25, i, i))
	}
	ingestKV := func(kv storage.KV, n int) float64 {
		start := time.Now()
		for base := 0; base < n; base += batchKeys {
			batch := make([]storage.Write, 0, batchKeys)
			for i := base; i < base+batchKeys && i < n; i++ {
				batch = append(batch, storage.Write{Key: key(i), Value: val(i)})
			}
			kv.ApplyBatch(batch)
		}
		return float64(n) / time.Since(start).Seconds()
	}

	type result struct {
		rps     float64
		reopenS float64
	}
	sizes := []int{10000, 200000}
	sizeName := []string{"10k", "200k"}
	var lsmRes, mapRes [2]result
	var lsmDirs [2]string
	for si, n := range sizes {
		for _, eng := range []string{"mapwal", "lsm"} {
			dir, err := os.MkdirTemp("", "benchharness-lsm-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			cfg := mapCfg(dir)
			if eng == "lsm" {
				cfg = lsmCfg(dir)
				lsmDirs[si] = dir
			}
			kv, err := storage.Open(cfg)
			if err != nil {
				return err
			}
			rps := ingestKV(kv, n)
			if err := kv.Close(); err != nil {
				return err
			}
			start := time.Now()
			kv, err = storage.Open(cfg)
			if err != nil {
				return fmt.Errorf("lsm: reopen %s at %d records: %w", eng, n, err)
			}
			reopenS := time.Since(start).Seconds()
			if got := kv.Len(); got != n {
				return fmt.Errorf("lsm: %s reopened with %d keys, want %d", eng, got, n)
			}
			if err := kv.Close(); err != nil {
				return err
			}
			r := result{rps: rps, reopenS: reopenS}
			if eng == "lsm" {
				lsmRes[si] = r
			} else {
				mapRes[si] = r
			}
		}
	}

	// Part B: point reads on the reopened 200k LSM, blooms on vs off.
	const probes = 2000
	bigN := sizes[1]
	readLat := func(cfg storage.Config, miss bool) (float64, error) {
		kv, err := storage.Open(cfg)
		if err != nil {
			return 0, err
		}
		defer kv.Close()
		rng := sim.NewRNG(h.seed + int64(bigN))
		start := time.Now()
		for i := 0; i < probes; i++ {
			if miss {
				// In-fence but never written: the bloom filter, not the
				// key-range check, has to reject it.
				if _, ok := kv.Get(fmt.Sprintf("data\x00rec/%08d-x", rng.Intn(bigN))); ok {
					return 0, fmt.Errorf("lsm: phantom key answered")
				}
			} else {
				if _, ok := kv.Get(key(rng.Intn(bigN))); !ok {
					return 0, fmt.Errorf("lsm: stored key missing")
				}
			}
		}
		return time.Since(start).Seconds() / probes * 1e6, nil // µs/op
	}
	bloomed := lsmCfg(lsmDirs[1])
	unbloomed := bloomed
	unbloomed.NoBloom = true
	hitUS, err := readLat(bloomed, false)
	if err != nil {
		return err
	}
	missBloomUS, err := readLat(bloomed, true)
	if err != nil {
		return err
	}
	missNoBloomUS, err := readLat(unbloomed, true)
	if err != nil {
		return err
	}

	for si, name := range sizeName {
		h.record("lsm_ingest_mapwal_rps_"+name, mapRes[si].rps)
		h.record("lsm_ingest_persist_rps_"+name, lsmRes[si].rps)
		h.record("lsm_reopen_mapwal_s_"+name, mapRes[si].reopenS)
		h.record("lsm_reopen_persist_s_"+name, lsmRes[si].reopenS)
	}
	reopenSpeedup := mapRes[1].reopenS / lsmRes[1].reopenS
	h.record("lsm_reopen_speedup_x", reopenSpeedup)
	h.record("lsm_read_hit_us", hitUS)
	h.record("lsm_read_miss_bloom_us", missBloomUS)
	h.record("lsm_read_miss_nobloom_us", missNoBloomUS)
	negSpeedup := missNoBloomUS / missBloomUS
	h.record("lsm_negread_bloom_speedup_x", negSpeedup)

	if h.csv {
		s := &metrics.Series{Label: "lsm_reopen_s"} // x: records; mapwal then lsm
		for si, n := range sizes {
			s.Append(float64(n), mapRes[si].reopenS)
		}
		for si, n := range sizes {
			s.Append(float64(n), lsmRes[si].reopenS)
		}
		s.WriteCSV(os.Stdout)
		return nil
	}
	it := metrics.NewTable("engine ingest (20-write batches)", "10k_rps", "200k_rps")
	it.AddRow("mapwal (map + WAL replay)", mapRes[0].rps, mapRes[1].rps)
	it.AddRow("lsm (memtable + SSTables)", lsmRes[0].rps, lsmRes[1].rps)
	it.Render(os.Stdout)
	rt := metrics.NewTable("cold reopen", "10k_s", "200k_s")
	rt.AddRow("mapwal (full replay)", mapRes[0].reopenS, mapRes[1].reopenS)
	rt.AddRow("lsm (WAL tail only)", lsmRes[0].reopenS, lsmRes[1].reopenS)
	rt.Render(os.Stdout)
	fmt.Printf("\nreopen speedup at 200k records: %.1fx\n\n", reopenSpeedup)
	pt := metrics.NewTable("LSM point reads (200k records)", "us_per_op")
	pt.AddRow("hit", hitUS)
	pt.AddRow("miss, blooms on", missBloomUS)
	pt.AddRow("miss, blooms off", missNoBloomUS)
	pt.Render(os.Stdout)
	fmt.Printf("\nbloom speedup on negative reads: %.1fx\n", negSpeedup)
	return nil
}

// consensus reproduces the consensus/crypto hot-path ablation in three
// parts.
//
// Part A (micro): the same batch of signed envelopes is verified three
// ways — one ed25519.Verify call at a time (the pre-overhaul behaviour),
// through msp.VerifyBatch (parallel fan-out with duplicate dedup) and
// through a warm msp.VerifyCache (the gossip/re-endorsement steady state
// where identical envelopes are re-checked).
//
// Part B (protocol): a 4-validator PBFT network with LAN-like latency
// decides a burst of payloads twice — in lockstep (execution blocks the
// event loop, the pre-overhaul behaviour) and with OverlapWindow=4 (the
// leader pre-prepares seq N+1 while N is in prepare/commit and execution
// runs on the async executor). Deliver carries a fixed per-decision cost
// emulating block validate+commit, which is what overlap hides.
//
// Part C (end to end): 4 concurrent sources — independent provenance
// chains, so consecutive envelopes are MVCC-independent — push pipelined
// ingest through one shared 4-peer LAN deployment, with consensus overlap
// off and on.
//
// Recorded metrics (consensus_verify_*_ops, consensus_round_*_rps,
// consensus_e2e_*_rps and the *_speedup_x ratios) feed the CI regression
// gate.
func (h *harness) consensus() error {
	h.header("Ablation — consensus/crypto hot path (batch verify, verify cache, overlapped rounds)")

	// --- Part A: serial vs batch vs cached signature verification.
	const envelopes = 256
	signers := make([]*msp.Signer, 8)
	for i := range signers {
		s, err := msp.NewSigner("org", fmt.Sprintf("verify-%d", i), msp.RoleMember)
		if err != nil {
			return err
		}
		signers[i] = s
	}
	rng := sim.NewRNG(h.seed)
	items := make([]msp.VerifyItem, envelopes)
	for i := range items {
		s := signers[i%len(signers)]
		msg := rng.Bytes(256)
		items[i] = msp.VerifyItem{Identity: s.Identity, Message: msg, Signature: s.Sign(msg)}
	}
	passes := h.samples
	if passes < 5 {
		passes = 5
	}
	opsPerSec := func(verify func() error) (float64, error) {
		start := time.Now()
		for p := 0; p < passes; p++ {
			if err := verify(); err != nil {
				return 0, err
			}
		}
		return float64(passes*envelopes) / time.Since(start).Seconds(), nil
	}
	serialOps, err := opsPerSec(func() error {
		for _, it := range items {
			if !it.Identity.Verify(it.Message, it.Signature) {
				return fmt.Errorf("consensus: serial verify failed")
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	batchOps, err := opsPerSec(func() error {
		if !msp.VerifyBatch(items) {
			return fmt.Errorf("consensus: batch verify failed")
		}
		return nil
	})
	if err != nil {
		return err
	}
	cache := msp.NewVerifyCache(0)
	if !cache.VerifyBatch(items) { // warm pass: every tuple becomes a cache entry
		return fmt.Errorf("consensus: cache warm-up failed")
	}
	cachedOps, err := opsPerSec(func() error {
		if !cache.VerifyBatch(items) {
			return fmt.Errorf("consensus: cached verify failed")
		}
		return nil
	})
	if err != nil {
		return err
	}
	h.record("consensus_verify_serial_ops", serialOps)
	h.record("consensus_verify_batch_ops", batchOps)
	h.record("consensus_verify_cached_ops", cachedOps)
	h.record("consensus_verify_batch_speedup_x", batchOps/serialOps)
	h.record("consensus_verify_cached_speedup_x", cachedOps/serialOps)

	// --- Part B: lockstep vs overlapped consensus rounds.
	const (
		roundTxs   = 48
		commitCost = 500 * time.Microsecond // stand-in for block validate+commit
	)
	roundRPS := func(overlap int) (float64, error) {
		const n = 4
		net := consensus.NewInProcNet(sim.LANLatency(sim.NewRNG(h.seed)), nil)
		ids := make([]string, n)
		vsigners := make([]*msp.Signer, n)
		idents := make(map[string]msp.Identity, n)
		for i := 0; i < n; i++ {
			ids[i] = fmt.Sprintf("v%d", i)
			s, err := msp.NewSigner("org", ids[i], msp.RoleMember)
			if err != nil {
				return 0, err
			}
			vsigners[i] = s
			idents[ids[i]] = s.Identity
		}
		var mu sync.Mutex
		counts := make(map[string]int, n)
		validators := make([]*consensus.Validator, n)
		for i := 0; i < n; i++ {
			id := ids[i]
			validators[i] = consensus.NewValidator(consensus.Config{
				ID:             id,
				Validators:     ids,
				Signer:         vsigners[i],
				Identities:     idents,
				Sender:         net,
				RequestTimeout: 2 * time.Second,
				OverlapWindow:  overlap,
				Deliver: func(seq uint64, payload []byte) {
					time.Sleep(commitCost)
					mu.Lock()
					counts[id]++
					mu.Unlock()
				},
			})
		}
		for _, v := range validators {
			v.Start()
		}
		defer func() {
			for _, v := range validators {
				v.Stop()
			}
		}()
		start := time.Now()
		for k := 0; k < roundTxs; k++ {
			validators[0].Propose([]byte(fmt.Sprintf("round-%03d", k)))
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			mu.Lock()
			done := true
			for _, id := range ids {
				if counts[id] < roundTxs {
					done = false
				}
			}
			mu.Unlock()
			if done {
				break
			}
			if time.Now().After(deadline) {
				return 0, fmt.Errorf("consensus: round burst did not finish (overlap=%d)", overlap)
			}
			time.Sleep(time.Millisecond)
		}
		return float64(roundTxs) / time.Since(start).Seconds(), nil
	}
	lockstepRPS, err := roundRPS(0)
	if err != nil {
		return err
	}
	overlapRPS, err := roundRPS(4)
	if err != nil {
		return err
	}
	h.record("consensus_round_lockstep_rps", lockstepRPS)
	h.record("consensus_round_overlap_rps", overlapRPS)
	h.record("consensus_round_overlap_speedup_x", overlapRPS/lockstepRPS)

	// --- Part C: multi-source e2e ingest, overlap off vs on.
	perSource := h.ingestRecords / 16
	if perSource < 100 {
		perSource = 100
	}
	const sources = 4
	e2e := func(overlap int) (float64, error) {
		frng := sim.NewRNG(h.seed)
		fw, err := core.New(core.Config{
			Fabric: fabric.Config{
				NumPeers: 4,
				Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
				Latency:  sim.LANLatency(frng),
			},
			IPFSNodes:        2,
			IPFSLatency:      sim.LANLatency(frng.Fork()),
			StorageEngine:    h.engine,
			Transport:        h.transport,
			ConsensusOverlap: overlap,
		})
		if err != nil {
			return 0, err
		}
		defer fw.Close()
		det := detect.NewDetector(h.seed)
		type job struct {
			pipe *ingest.Pipeline
			recs []ingest.Record
		}
		jobs := make([]job, sources)
		for s := 0; s < sources; s++ {
			cam, err := msp.NewSigner("city", fmt.Sprintf("consensus-cam-%d", s), msp.RoleTrustedSource)
			if err != nil {
				return 0, err
			}
			if err := fw.RegisterSource(cam.Identity, true); err != nil {
				return 0, err
			}
			client := fw.Client(cam, s%2) // spread sources over both IPFS nodes
			frameRNG := sim.NewRNG(h.seed + int64(100+s))
			recs := make([]ingest.Record, perSource)
			for i := range recs {
				frame, meta := frameOfSize(frameRNG, det, 4*1024, s*perSource+i)
				recs[i] = ingest.Record{Signed: msp.NewSignedMessage(cam, frame.Data), Meta: meta}
			}
			// BatchSize 10 (vs the ingest ablation's 100) shifts weight from
			// the add stage to consensus rounds — the stage overlap targets.
			jobs[s] = job{
				pipe: client.Pipeline(ingest.Config{
					Mode: ingest.ModePipelined, BatchSize: 10, AddWorkers: 4, MaxInFlight: 1,
					FlushInterval: 250 * time.Millisecond,
				}),
				recs: recs,
			}
		}
		var wg sync.WaitGroup
		errs := make([]error, sources)
		start := time.Now()
		for s := range jobs {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for _, r := range jobs[s].pipe.Run(jobs[s].recs) {
					if r.Err != nil {
						errs[s] = fmt.Errorf("consensus e2e source %d record %d: %w", s, r.Index, r.Err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return float64(sources*perSource) / elapsed, nil
	}
	e2eLockstepRPS, err := e2e(0)
	if err != nil {
		return err
	}
	e2eOverlapRPS, err := e2e(4)
	if err != nil {
		return err
	}
	h.record("consensus_e2e_lockstep_rps", e2eLockstepRPS)
	h.record("consensus_e2e_overlap_rps", e2eOverlapRPS)
	h.record("consensus_e2e_overlap_speedup_x", e2eOverlapRPS/e2eLockstepRPS)

	if h.csv {
		verifyS := &metrics.Series{Label: "verify_ops"} // x: 0=serial 1=batch 2=cached
		verifyS.Append(0, serialOps)
		verifyS.Append(1, batchOps)
		verifyS.Append(2, cachedOps)
		roundS := &metrics.Series{Label: "round_rps"} // x: overlap window
		roundS.Append(0, lockstepRPS)
		roundS.Append(4, overlapRPS)
		e2eS := &metrics.Series{Label: "e2e_rps"} // x: overlap window
		e2eS.Append(0, e2eLockstepRPS)
		e2eS.Append(4, e2eOverlapRPS)
		verifyS.WriteCSV(os.Stdout)
		roundS.WriteCSV(os.Stdout)
		e2eS.WriteCSV(os.Stdout)
		return nil
	}
	vt := metrics.NewTable(fmt.Sprintf("signature verification (%d envelopes)", envelopes), "ops_per_s", "speedup_vs_serial")
	vt.AddRow("serial (one ed25519.Verify at a time)", serialOps, 1.0)
	vt.AddRow("batch (msp.VerifyBatch)", batchOps, batchOps/serialOps)
	vt.AddRow("cached (warm msp.VerifyCache)", cachedOps, cachedOps/serialOps)
	vt.Render(os.Stdout)
	fmt.Println()
	rt := metrics.NewTable(fmt.Sprintf("consensus rounds (n=4, LAN, %d decisions, %s commit cost)", roundTxs, commitCost), "decisions_per_s", "speedup")
	rt.AddRow("lockstep (window 0)", lockstepRPS, 1.0)
	rt.AddRow("overlapped (window 4)", overlapRPS, overlapRPS/lockstepRPS)
	rt.Render(os.Stdout)
	fmt.Println()
	et := metrics.NewTable(fmt.Sprintf("e2e ingest (%d sources x %d records)", sources, perSource), "records_per_s", "speedup")
	et.AddRow("consensus lockstep", e2eLockstepRPS, 1.0)
	et.AddRow("consensus overlap (window 4)", e2eOverlapRPS, e2eOverlapRPS/e2eLockstepRPS)
	et.Render(os.Stdout)
	return nil
}

// channelSourceName finds a camera name whose identity ("city/<name>")
// routes to the target channel under nch channels, so the channels
// ablation spreads its sources evenly instead of leaving shards idle.
func channelSourceName(s, target, nch int) string {
	for j := 0; ; j++ {
		name := fmt.Sprintf("shard-cam-%d-%d", s, j)
		if fabric.RouteKey("city/"+name, nch) == target {
			return name
		}
	}
}

// channels measures aggregate pipelined-ingest throughput as the ledger
// shards across 1, 2 and 4 channels. Four sources ingest concurrently;
// with N channels their home channels are spread evenly, so N independent
// ordering/consensus groups run their rounds at once. The workload is
// consensus-bound (LAN latency, one-envelope batches, small ingest
// batches), which is exactly what sharding scales: channels overlap their
// rounds' wall-clock waits, so the aggregate rate grows with the channel
// count even on a single core.
func (h *harness) channels() error {
	h.header("Ablation — multi-channel sharded ledger (aggregate pipelined ingest)")
	perSource := h.ingestRecords / 16
	if perSource < 50 {
		perSource = 50
	}
	const sources = 4
	run := func(nch int) (float64, error) {
		frng := sim.NewRNG(h.seed)
		fw, err := core.New(core.Config{
			Fabric: fabric.Config{
				NumPeers: 4,
				Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
				Latency:  sim.LANLatency(frng),
			},
			NumChannels:   nch,
			IPFSNodes:     2,
			IPFSLatency:   sim.LANLatency(frng.Fork()),
			StorageEngine: h.engine,
			Transport:     h.transport,
		})
		if err != nil {
			return 0, err
		}
		defer fw.Close()
		det := detect.NewDetector(h.seed)
		type job struct {
			pipe *ingest.Pipeline
			recs []ingest.Record
		}
		jobs := make([]job, sources)
		for s := 0; s < sources; s++ {
			cam, err := msp.NewSigner("city", channelSourceName(s, s%nch, nch), msp.RoleTrustedSource)
			if err != nil {
				return 0, err
			}
			if err := fw.RegisterSource(cam.Identity, true); err != nil {
				return 0, err
			}
			client := fw.Client(cam, s%2)
			frameRNG := sim.NewRNG(h.seed + int64(200+s))
			recs := make([]ingest.Record, perSource)
			for i := range recs {
				frame, meta := frameOfSize(frameRNG, det, 4*1024, s*perSource+i)
				recs[i] = ingest.Record{Signed: msp.NewSignedMessage(cam, frame.Data), Meta: meta}
			}
			jobs[s] = job{
				pipe: client.Pipeline(ingest.Config{
					Mode: ingest.ModePipelined, BatchSize: 10, AddWorkers: 4, MaxInFlight: 1,
					FlushInterval: 250 * time.Millisecond,
				}),
				recs: recs,
			}
		}
		var wg sync.WaitGroup
		errs := make([]error, sources)
		start := time.Now()
		for s := range jobs {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for _, r := range jobs[s].pipe.Run(jobs[s].recs) {
					if r.Err != nil {
						errs[s] = fmt.Errorf("channels source %d record %d: %w", s, r.Index, r.Err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return float64(sources*perSource) / elapsed, nil
	}
	counts := []int{1, 2, 4}
	rps := make([]float64, len(counts))
	for i, nch := range counts {
		r, err := run(nch)
		if err != nil {
			return err
		}
		rps[i] = r
		h.record(fmt.Sprintf("channels_ingest_%dch_rps", nch), r)
	}
	h.record("channels_scaling_2ch_x", rps[1]/rps[0])
	h.record("channels_scaling_4ch_x", rps[2]/rps[0])

	if h.csv {
		s := &metrics.Series{Label: "channels_rps"} // x: channel count
		for i, nch := range counts {
			s.Append(float64(nch), rps[i])
		}
		s.WriteCSV(os.Stdout)
		return nil
	}
	tbl := metrics.NewTable(fmt.Sprintf("channel sharding (%d sources x %d records, LAN)", sources, perSource), "records_per_s", "speedup_vs_1ch")
	for i, nch := range counts {
		tbl.AddRow(fmt.Sprintf("%d channel(s)", nch), rps[i], rps[i]/rps[0])
	}
	tbl.Render(os.Stdout)
	return nil
}

// storage compares the world-state engines directly: sequential and
// parallel mixed read/commit throughput over a seeded statedb, the
// microbenchmark behind the internal/storage engine choice. Parallel rows
// only separate the engines on multi-core hosts; see EXPERIMENTS.md.
func (h *harness) storage() error {
	h.header("Ablation — world-state storage engine (single-lock vs sharded)")
	const (
		keys        = 10000
		commitEvery = 16
	)
	recKeys := make([]string, keys)
	for i := range recKeys {
		recKeys[i] = fmt.Sprintf("rec/%06d", i)
	}
	seedDB := func(cfg storage.Config) *statedb.DB {
		db, err := statedb.NewWith(cfg)
		if err != nil {
			log.Fatalf("open statedb: %v", err)
		}
		batch := statedb.NewUpdateBatch()
		for i, k := range recKeys {
			batch.Put("data", k, []byte(fmt.Sprintf(`{"label":"car","idx":%d}`, i)))
		}
		db.ApplyUpdates(batch, statedb.Version{BlockNum: 1})
		return db
	}
	mixed := func(db *statedb.DB, workers, opsPerWorker int) float64 {
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPerWorker; i++ {
					if i%commitEvery == commitEvery-1 {
						batch := statedb.NewUpdateBatch()
						for j := 0; j < 10; j++ {
							batch.Put("data", recKeys[(w*opsPerWorker+i*10+j)%keys], []byte(`{"label":"car"}`))
						}
						db.ApplyUpdates(batch, statedb.Version{BlockNum: uint64(i)})
					} else {
						db.GetState("data", recKeys[(w*31+i*17)%keys])
					}
				}
			}(w)
		}
		wg.Wait()
		total := float64(workers * opsPerWorker)
		return total / time.Since(start).Seconds()
	}
	ops := 40000 * h.samples / 20
	tbl := metrics.NewTable("engine", "workers", "mixed_ops_per_s")
	for _, eng := range []storage.Engine{storage.EngineSingle, storage.EngineSharded} {
		for _, workers := range []int{1, 4, 16} {
			db := seedDB(storage.Config{Engine: eng})
			tbl.AddRow(string(eng), workers, mixed(db, workers, ops/workers))
		}
	}
	tbl.Render(os.Stdout)
	return nil
}
