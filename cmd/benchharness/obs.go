package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"socialchain/internal/core"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/ingest"
	"socialchain/internal/metrics"
	"socialchain/internal/msp"
	"socialchain/internal/obs"
	"socialchain/internal/ordering"
	"socialchain/internal/sim"
)

// obs measures what the observability layer costs on the hot path: the
// same pipelined ingest workload runs once with fabric.Config.Obs nil
// (every instrument call hits the nil-receiver fast path) and once with a
// live registry, tx tracing ring and a concurrent scraper rendering the
// full Prometheus exposition every 250ms — still 20-60x harder than a
// production poll cadence. The recorded overhead percentage
// backs the EXPERIMENTS.md instrumentation-overhead row (bar: <=2%).
func (h *harness) obs() error {
	h.header("Ablation — observability overhead (metrics + tracing + scraper vs off)")
	records := h.ingestRecords / 8
	if records < 200 {
		records = 200
	}
	run := func(reg *obs.Registry, traces *obs.TraceRing) (float64, error) {
		fw, err := core.New(core.Config{
			Fabric: fabric.Config{
				NumPeers:   4,
				Cutter:     ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
				Obs:        reg,
				SlowTraces: traces,
			},
			IPFSNodes:     2,
			StorageEngine: h.engine,
			Transport:     h.transport,
		})
		if err != nil {
			return 0, err
		}
		defer fw.Close()
		// Concurrent scraper: render the full exposition on a tight loop,
		// like a metrics poller hammering /metrics during the burst.
		stopScrape := make(chan struct{})
		scrapeDone := make(chan struct{})
		go func() {
			defer close(scrapeDone)
			if reg == nil {
				return
			}
			tick := time.NewTicker(250 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopScrape:
					return
				case <-tick.C:
					reg.WritePrometheus(io.Discard)
				}
			}
		}()
		defer func() { close(stopScrape); <-scrapeDone }()
		cam, err := msp.NewSigner("city", "obs-cam", msp.RoleTrustedSource)
		if err != nil {
			return 0, err
		}
		if err := fw.RegisterSource(cam.Identity, true); err != nil {
			return 0, err
		}
		client := fw.Client(cam, 0)
		det := detect.NewDetector(h.seed)
		frameRNG := sim.NewRNG(h.seed + 500)
		recs := make([]ingest.Record, records)
		for i := range recs {
			frame, meta := frameOfSize(frameRNG, det, 4*1024, i)
			recs[i] = ingest.Record{Signed: msp.NewSignedMessage(cam, frame.Data), Meta: meta}
		}
		pipe := client.Pipeline(ingest.Config{
			Mode: ingest.ModePipelined, BatchSize: 100, AddWorkers: 8, MaxInFlight: 1,
			FlushInterval: 250 * time.Millisecond,
		})
		start := time.Now()
		for _, r := range pipe.Run(recs) {
			if r.Err != nil {
				return 0, fmt.Errorf("obs record %d: %w", r.Index, r.Err)
			}
		}
		elapsed := time.Since(start).Seconds()
		if reg != nil {
			// The run must actually have populated the pipeline histograms,
			// or the "on" leg silently measured nothing.
			var buf bytes.Buffer
			reg.WritePrometheus(&buf)
			if !strings.Contains(buf.String(), "tx_commit_e2e_seconds_count") {
				return 0, fmt.Errorf("obs: tx_commit_e2e_seconds never observed — instrumentation not wired")
			}
		}
		return float64(records) / elapsed, nil
	}

	// Single off-vs-on passes swing several percent from scheduler and
	// page-cache drift alone — far more than the effect being measured.
	// Alternate the legs over a few passes and keep each leg's best run:
	// best-of discards transient slowdowns, and alternation cancels any
	// monotonic warm-up favouring whichever leg runs later.
	const reps = 5
	var offRPS, onRPS float64
	for r := 0; r < reps; r++ {
		off, err := run(nil, nil)
		if err != nil {
			return err
		}
		on, err := run(obs.NewRegistry(), obs.NewTraceRing(128, 0))
		if err != nil {
			return err
		}
		if off > offRPS {
			offRPS = off
		}
		if on > onRPS {
			onRPS = on
		}
	}
	overheadPct := (offRPS - onRPS) / offRPS * 100
	h.record("obs_off_rps", offRPS)
	h.record("obs_on_rps", onRPS)
	// Recorded as a ratio (~1.0), not a percentage: the overhead hovers
	// around zero, and benchcompare's relative gate is meaningless against
	// a near-zero baseline.
	h.record("obs_efficiency_x", onRPS/offRPS)

	if h.csv {
		s := &metrics.Series{Label: "obs_rps"} // x: 0 = off, 1 = on
		s.Append(0, offRPS)
		s.Append(1, onRPS)
		s.WriteCSV(os.Stdout)
		return nil
	}
	tbl := metrics.NewTable(fmt.Sprintf("observability (%d records, pipelined ingest)", records), "records_per_s", "relative")
	tbl.AddRow("off (nil registry)", offRPS, 1.0)
	tbl.AddRow("on (registry + tracing + 250ms scraper)", onRPS, onRPS/offRPS)
	tbl.Render(os.Stdout)
	fmt.Printf("\ninstrumentation overhead: %.2f%% (bar: <=2%%)\n", overheadPct)
	return nil
}
