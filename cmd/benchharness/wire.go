package main

import (
	"fmt"
	"os"
	"time"

	"socialchain/internal/core"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/ingest"
	"socialchain/internal/metrics"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/sim"
)

// wire compares the consensus transports head to head: the same pipelined
// ingest workload over in-process message passing (zero-copy pointer
// delivery) and over transport.TCP (length-prefixed CRC-framed localhost
// sockets, JSON-encoded consensus messages). The gap is the real cost of
// the wire — serialisation, framing, kernel round trips — that every
// multi-machine deployment pays and the sim-latency figures never showed.
func (h *harness) wire() error {
	h.header("Ablation — consensus transport: in-process vs localhost TCP")
	records := h.ingestRecords / 16
	if records < 100 {
		records = 100
	}
	run := func(kind string) (float64, error) {
		fw, err := core.New(core.Config{
			Fabric: fabric.Config{
				NumPeers: 4,
				Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
			},
			IPFSNodes:     2,
			StorageEngine: h.engine,
			Transport:     kind,
		})
		if err != nil {
			return 0, err
		}
		defer fw.Close()
		cam, err := msp.NewSigner("city", "wire-cam-"+kind, msp.RoleTrustedSource)
		if err != nil {
			return 0, err
		}
		if err := fw.RegisterSource(cam.Identity, true); err != nil {
			return 0, err
		}
		client := fw.Client(cam, 0)
		det := detect.NewDetector(h.seed)
		frameRNG := sim.NewRNG(h.seed + 400)
		recs := make([]ingest.Record, records)
		for i := range recs {
			frame, meta := frameOfSize(frameRNG, det, 4*1024, i)
			recs[i] = ingest.Record{Signed: msp.NewSignedMessage(cam, frame.Data), Meta: meta}
		}
		pipe := client.Pipeline(ingest.Config{
			Mode: ingest.ModePipelined, BatchSize: 10, AddWorkers: 4, MaxInFlight: 1,
			FlushInterval: 250 * time.Millisecond,
		})
		start := time.Now()
		for _, r := range pipe.Run(recs) {
			if r.Err != nil {
				return 0, fmt.Errorf("wire %s record %d: %w", kind, r.Index, r.Err)
			}
		}
		return float64(records) / time.Since(start).Seconds(), nil
	}

	kinds := []string{"inproc", "tcp"}
	rps := make([]float64, len(kinds))
	for i, kind := range kinds {
		r, err := run(kind)
		if err != nil {
			return err
		}
		rps[i] = r
		h.record(fmt.Sprintf("wire_%s_rps", kind), r)
	}
	h.record("wire_tcp_cost_x", rps[0]/rps[1])

	if h.csv {
		s := &metrics.Series{Label: "wire_rps"} // x: 0 = inproc, 1 = tcp
		for i := range kinds {
			s.Append(float64(i), rps[i])
		}
		s.WriteCSV(os.Stdout)
		return nil
	}
	tbl := metrics.NewTable(fmt.Sprintf("consensus transport (%d records, pipelined ingest)", records), "records_per_s", "relative")
	for i, kind := range kinds {
		tbl.AddRow(kind, rps[i], rps[i]/rps[0])
	}
	tbl.Render(os.Stdout)
	return nil
}
