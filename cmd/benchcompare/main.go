// Command benchcompare diffs two benchmark-metric JSON files (flat maps of
// metric name to value, as cmd/benchharness -out writes) and emits a
// Markdown report, the regression gate of the CI bench job:
//
//	benchcompare -baseline .github/bench-baseline.json -current BENCH_2.json
//
// Direction is inferred from the metric name: names ending in "_s" are
// latencies (lower is better); names containing "speedup", "rate",
// "rps", "ops" or "_x" are throughput-like (higher is better). A metric
// worse than baseline by more than -threshold (default 0.20) is flagged.
//
// By default regressions only warn (exit 0) — shared-runner benchmark
// noise should not block merges; -strict exits 1 on any regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
)

func loadMetrics(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]float64
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// lowerIsBetter infers a metric's direction from its name. "rps" is in
// the list because the ingest/durability throughput metrics end in
// "_rps" — without it a throughput regression would render as an
// improvement and invert the gate.
func lowerIsBetter(name string) bool {
	for _, marker := range []string{"speedup", "rate", "rps", "ops", "_x"} {
		if strings.Contains(name, marker) {
			return false
		}
	}
	return true
}

func main() {
	baselinePath := flag.String("baseline", "", "committed baseline JSON")
	currentPath := flag.String("current", "", "freshly measured JSON")
	threshold := flag.Float64("threshold", 0.20, "relative regression tolerance")
	strict := flag.Bool("strict", false, "exit non-zero on regression")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		log.Fatal("benchcompare: -baseline and -current are required")
	}
	baseline, err := loadMetrics(*baselinePath)
	if err != nil {
		log.Fatalf("benchcompare: %v", err)
	}
	current, err := loadMetrics(*currentPath)
	if err != nil {
		log.Fatalf("benchcompare: %v", err)
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("### Benchmark comparison (threshold %.0f%%)\n\n", *threshold*100)
	fmt.Println("| metric | baseline | current | delta | status |")
	fmt.Println("|---|---|---|---|---|")
	regressions := 0
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			fmt.Printf("| %s | %.6g | _missing_ | — | ⚠️ missing |\n", name, base)
			regressions++
			continue
		}
		var rel float64 // positive = worse
		if base != 0 {
			if lowerIsBetter(name) {
				rel = (cur - base) / base
			} else {
				rel = (base - cur) / base
			}
		}
		status := "✅"
		if rel > *threshold {
			status = "⚠️ regression"
			regressions++
		}
		fmt.Printf("| %s | %.6g | %.6g | %+.1f%% | %s |\n", name, base, cur, rel*100, status)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Printf("| %s | _new_ | %.6g | — | ℹ️ new metric |\n", name, current[name])
		}
	}
	fmt.Println()
	if regressions > 0 {
		fmt.Printf("⚠️ **%d metric(s) regressed more than %.0f%% against the committed baseline.**\n", regressions, *threshold*100)
		fmt.Println("Benchmark noise on shared runners is expected; investigate before refreshing the baseline.")
		if *strict {
			os.Exit(1)
		}
		return
	}
	fmt.Println("All tracked metrics within tolerance of the committed baseline. ✅")
}
