// Command socialchaind runs a complete framework deployment — permissioned
// blockchain peers, BFT ordering, IPFS cluster, deployed chaincodes — and
// drives it with a simulated smart-city workload: trusted cameras and
// drones plus crowd-sourced mobile users submitting traffic observations.
// It prints live chain/trust/storage statistics, serving as the demo
// daemon for the framework.
//
// With -bulk N it appends a bulk-ingest phase: N additional camera frames
// stream through the internal/ingest pipeline (batched endorsement +
// overlapped commit) and the daemon reports the achieved write
// throughput beside the round-based statistics.
//
// With -data-dir DIR the deployment is durable: peers keep WAL-backed
// world state and a block log under DIR, and the IPFS cluster's
// blockstores persist beside them. Kill the process, run it again with
// the same -data-dir, and it resumes from the recovered chain instead of
// starting empty.
//
// With -channels N the ledger is sharded across N independent channels:
// each source's data and trust state live on its home channel (a stable
// hash of the source ID) and the printed statistics aggregate across
// channels. A durable multi-channel deployment recovers every channel
// independently on restart.
//
// With -role peer|orderer the binary instead runs ONE process of a
// networked deployment over transport.TCP: a peer process hosts every
// channel's endorsing peer and consensus validator, the orderer process
// runs the transaction cutters, and remote clients (trafficgen -connect)
// drive the deployment over framed localhost sockets. Every process must
// share the same -peers/-channels/-identity-seed so seed-derived
// identities line up. -join lists the other processes' addresses.
//
// With -admin HOST:PORT any role (demo, peer or orderer) additionally
// serves the admin/debug HTTP surface: /metrics (Prometheus text
// exposition), /healthz (per-channel liveness: stalled consensus,
// connectivity floor), /statusz (JSON snapshot: heights, backlogs,
// cache hit rates, transport queues, slow-trace ring) and /debug/pprof.
// Off when the flag is absent.
//
// Usage: socialchaind [-peers 4] [-channels 1] [-ipfs 2] [-cameras 3]
// [-crowd 3] [-rounds 10] [-byzantine 0] [-bad-crowd-fraction 0.3]
// [-bulk 0] [-bulk-mode pipelined] [-bulk-batch 32] [-bulk-workers 8]
// [-data-dir DIR] [-admin HOST:PORT]
// [-role peer|orderer -index N -listen HOST:PORT -join id=HOST:PORT,...
// -identity-seed SEED]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"socialchain/internal/consensus"
	"socialchain/internal/contracts"
	"socialchain/internal/core"
	"socialchain/internal/dataset"
	"socialchain/internal/detect"
	"socialchain/internal/explorer"
	"socialchain/internal/fabric"
	"socialchain/internal/ingest"
	"socialchain/internal/ledger"
	"socialchain/internal/metrics"
	"socialchain/internal/msp"
	"socialchain/internal/obs"
	"socialchain/internal/ordering"
	"socialchain/internal/sim"
	"socialchain/internal/storage"
)

func main() {
	peers := flag.Int("peers", 4, "number of blockchain peers (per channel)")
	channels := flag.Int("channels", 1, "shard the ledger across this many independent channels")
	ipfsNodes := flag.Int("ipfs", 2, "number of IPFS nodes")
	cameras := flag.Int("cameras", 3, "trusted camera sources")
	crowd := flag.Int("crowd", 3, "untrusted crowd sources")
	rounds := flag.Int("rounds", 10, "submission rounds")
	byzantine := flag.Int("byzantine", 0, "silent byzantine validators")
	badFraction := flag.Float64("bad-crowd-fraction", 0.3, "fraction of crowd submissions that are corrupt")
	seed := flag.Int64("seed", 1, "workload seed")
	bulk := flag.Int("bulk", 0, "bulk-ingest this many extra camera frames through the pipelined write path")
	bulkMode := flag.String("bulk-mode", "pipelined", "bulk ingest mode: serial, batched or pipelined")
	bulkBatch := flag.Int("bulk-batch", 32, "records per bulk-ingest envelope")
	bulkWorkers := flag.Int("bulk-workers", 8, "bulk-ingest IPFS-add workers")
	dataDir := flag.String("data-dir", "", "persist peers, block logs and IPFS stores under this directory; a restart resumes from it")
	durability := flag.String("durability", "", "persist-engine fsync policy with -data-dir: none (page cache), batch (background group fsync) or always (every commit waits for fsync)")
	role := flag.String("role", "", "run one process of a networked deployment: peer or orderer (empty = in-process demo)")
	index := flag.Int("index", 0, "peer index within the deployment (with -role peer)")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address (with -role)")
	join := flag.String("join", "", "comma-separated id=host:port book of the other processes (with -role)")
	identitySeed := flag.String("identity-seed", "", "deterministic identity seed shared by every process of one deployment (with -role)")
	batchTimeout := flag.Duration("batch-timeout", 10*time.Millisecond, "ordering batch timeout (with -role)")
	maxMessages := flag.Int("max-messages", 4, "ordering batch size cap (with -role)")
	admin := flag.String("admin", "", "serve the admin/debug HTTP surface (/metrics, /healthz, /statusz, /debug/pprof) on this address, e.g. :7190 (off when empty)")
	flag.Parse()

	dur, err := storage.ParseDurability(*durability)
	if err != nil {
		log.Fatal(err)
	}

	if *role != "" {
		if err := runDaemon(daemonConfig{
			role:         *role,
			index:        *index,
			listen:       *listen,
			join:         *join,
			peers:        *peers,
			channels:     *channels,
			identitySeed: *identitySeed,
			dataDir:      *dataDir,
			durability:   dur,
			batchTimeout: *batchTimeout,
			maxMessages:  *maxMessages,
			admin:        *admin,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	if err := run(*peers, *channels, *ipfsNodes, *cameras, *crowd, *rounds, *byzantine, *badFraction, *seed,
		bulkConfig{records: *bulk, mode: *bulkMode, batch: *bulkBatch, workers: *bulkWorkers}, *dataDir, dur, *admin); err != nil {
		log.Fatal(err)
	}
}

type bulkConfig struct {
	records int
	mode    string
	batch   int
	workers int
}

func run(peers, channels, ipfsNodes, cameras, crowd, rounds, byzantine int, badFraction float64, seed int64, bulk bulkConfig, dataDir string, durability storage.Durability, adminAddr string) error {
	behaviors := map[int]consensus.Behavior{}
	for i := 0; i < byzantine; i++ {
		behaviors[i+1] = consensus.Silent{}
	}
	reg := obs.NewRegistry()
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers:         peers,
			Cutter:           ordering.CutterConfig{MaxMessages: 4, BatchTimeout: 10 * time.Millisecond},
			Behaviors:        behaviors,
			ConsensusTimeout: time.Second,
			Obs:              reg,
		},
		NumChannels:       channels,
		IPFSNodes:         ipfsNodes,
		DataDir:           dataDir,
		StorageDurability: durability,
	})
	if err != nil {
		return err
	}
	defer fw.Close()

	if adminAddr != "" {
		health := obs.NewHealth(0, nil)
		for _, ch := range fw.Net.Channels() {
			health.Register(ch.Name(), obs.Probe{
				Height:  ch.Peer(0).Height,
				Backlog: ch.Validator(0).Backlog,
			})
		}
		statusz := func() any {
			return struct {
				Ledger ledger.Stats `json:"ledger"`
			}{fw.LedgerStats()}
		}
		adminSrv, err := obs.ServeAdmin(adminAddr, reg, health, statusz)
		if err != nil {
			return err
		}
		defer adminSrv.Close()
		fmt.Printf("admin surface on http://%s (/metrics /healthz /statusz /debug/pprof)\n", adminSrv.Addr())
	}
	fmt.Printf("network up: %d channel(s) x %d peers (%d byzantine), %d IPFS nodes, chaincodes deployed\n",
		fw.Net.NumChannels(), peers, byzantine, ipfsNodes)
	if dataDir != "" {
		boot := fw.LedgerStats()
		fmt.Printf("durable deployment at %s: recovered chain height %d (%d txs)\n",
			dataDir, boot.Height, boot.TotalTxs)
	}

	rng := sim.NewRNG(seed)
	det := detect.NewDetector(seed)
	corpus := dataset.Generate(dataset.Config{
		Seed: seed, NumVideos: cameras, FramesPerVideo: rounds,
		NumDroneFlights: 1, FramesPerFlight: rounds, MeanFrameKB: 24,
	})

	type source struct {
		client *core.Client
		signer *msp.Signer
		video  *dataset.Video
		bad    bool
	}
	var sources []source
	for i := 0; i < cameras; i++ {
		s, err := msp.NewSigner("city", fmt.Sprintf("cam-%03d", i), msp.RoleTrustedSource)
		if err != nil {
			return err
		}
		if err := fw.RegisterSource(s.Identity, true); err != nil {
			return err
		}
		sources = append(sources, source{client: fw.Client(s, i%ipfsNodes), signer: s, video: &corpus.Static[i]})
	}
	for i := 0; i < crowd; i++ {
		s, err := msp.NewSigner("crowd", fmt.Sprintf("mobile-%03d", i), msp.RoleUntrustedSource)
		if err != nil {
			return err
		}
		if err := fw.RegisterSource(s.Identity, false); err != nil {
			return err
		}
		sources = append(sources, source{client: fw.Client(s, i%ipfsNodes), signer: s, video: &corpus.Static[i%cameras]})
	}
	fmt.Printf("registered %d trusted + %d untrusted sources\n\n", cameras, crowd)
	if len(sources) > 0 {
		// The first client's retrieval cache joins the registry, so payload
		// cache hit rates show up at /metrics beside the write-path series.
		sources[0].client.Query().RegisterObs(reg)
	}

	storeLat := metrics.NewStats()
	stored, rejected := 0, 0
	for round := 0; round < rounds; round++ {
		for _, src := range sources {
			frame := src.video.Frames[round%len(src.video.Frames)]
			meta, _ := det.ExtractMetadata(&frame)
			isCrowd := src.signer.Identity.Role == msp.RoleUntrustedSource
			if isCrowd && rng.Float64() < badFraction {
				meta.DataHash = strings.Repeat("0", 64) // corrupt submission
			}
			start := time.Now()
			_, err := src.client.StoreFrame(&frame, meta)
			if err != nil {
				rejected++
				continue
			}
			storeLat.AddDuration(time.Since(start))
			stored++
		}
		stats := fw.LedgerStats()
		fmt.Printf("round %2d: height=%d txs=%d valid=%d stored=%d rejected=%d\n",
			round+1, stats.Height, stats.TotalTxs, stats.ValidTxs, stored, rejected)
	}

	if bulk.records > 0 {
		if !ingest.Mode(bulk.mode).Valid() {
			return fmt.Errorf("unknown -bulk-mode %q (valid: serial, batched, pipelined)", bulk.mode)
		}
		fmt.Printf("\n--- bulk ingest (%d records, %s) ---\n", bulk.records, bulk.mode)
		camSrc := sources[0]
		frames := make([]*detect.Frame, bulk.records)
		metas := make([]detect.MetadataRecord, bulk.records)
		for i := range frames {
			f := camSrc.video.Frames[i%len(camSrc.video.Frames)]
			frames[i] = &f
			metas[i], _ = det.ExtractMetadata(&f)
		}
		pipe := camSrc.client.Pipeline(ingest.Config{
			Mode:       ingest.Mode(bulk.mode),
			BatchSize:  bulk.batch,
			AddWorkers: bulk.workers,
		})
		records := make([]ingest.Record, len(frames))
		for i, f := range frames {
			records[i] = ingest.Record{Signed: msp.NewSignedMessage(camSrc.signer, f.Data), Meta: metas[i]}
		}
		results := pipe.Run(records)
		bulkStats := pipe.Stats()
		bulkFailed := 0
		for _, r := range results {
			if r.Err != nil {
				bulkFailed++
			}
		}
		fmt.Printf("bulk: %d/%d records in %.3fs (%.1f records/s, %d batches, %d conflict retries, %d failed)\n",
			bulkStats.Stored, bulkStats.Submitted, bulkStats.Elapsed.Seconds(),
			bulkStats.Throughput(), bulkStats.Batches, bulkStats.ConflictRetries, bulkFailed)
		stored += bulkStats.Stored
		rejected += bulkFailed
	}

	fmt.Println("\n--- final state ---")
	stats := fw.LedgerStats()
	fmt.Printf("chain height %d, %d txs (%d valid)\n", stats.Height, stats.TotalTxs, stats.ValidTxs)
	fmt.Printf("store latency: %s\n", storeLat.Summary())
	for _, ch := range fw.Net.Channels() {
		if err := ch.Peer(0).Ledger().VerifyChain(); err != nil {
			return fmt.Errorf("chain verification failed on %s: %w", ch.Name(), err)
		}
		if fw.Net.NumChannels() > 1 {
			s := ch.Peer(0).Ledger().Stats()
			fmt.Printf("  %s: height=%d txs=%d valid=%d\n", ch.Name(), s.Height, s.TotalTxs, s.ValidTxs)
		}
	}
	fmt.Println("hash chain verified on peer 0 of every channel")
	if fw.Net.NumChannels() > 1 {
		if view, err := fw.RollupTrust(); err == nil {
			fmt.Printf("global trust view: %d sources over %d channels, mean score %.3f, %d flagged\n",
				view.Sources, view.Channels, view.MeanScore, view.Flagged)
		}
	}

	tbl := metrics.NewTable("source", "role", "score", "accepted", "rejected", "flagged")
	for _, src := range sources {
		st, err := fw.TrustScore(src.signer.Identity.ID())
		if err != nil {
			continue
		}
		tbl.AddRow(st.SourceID, string(src.signer.Identity.Role), st.Score, st.Accepted, st.Rejected, st.Flagged)
	}
	fmt.Println()
	tbl.Render(os.Stdout)

	for i := 0; i < ipfsNodes; i++ {
		node := fw.Cluster.Node(i)
		fmt.Printf("ipfs node %d: %d blocks, %d bytes\n", i, node.Blockstore().Len(), node.Blockstore().SizeBytes())
	}

	// Explorer view of the chain (the paper's Hyperledger Explorer role).
	fmt.Println("\n--- explorer ---")
	exp := explorer.New(fw.Net.ChannelAt(0).Peer(0).Ledger()).WithState(fw.Net.ChannelAt(0).Peer(0).State())
	exp.RenderStats(os.Stdout)
	fmt.Println("\nlast blocks:")
	height := fw.Net.ChannelAt(0).Peer(0).Ledger().Height()
	from := uint64(0)
	if height > 6 {
		from = height - 6
	}
	if err := exp.RenderBlocks(os.Stdout, from, 0); err != nil {
		return err
	}
	// Newest records through the time-ordered secondary index, paged.
	fmt.Println("\nrecent records (submitted index):")
	if _, err := exp.RenderIndexPage(os.Stdout, contracts.IndexSubmitted, "", 8, ""); err != nil {
		return err
	}
	return nil
}
