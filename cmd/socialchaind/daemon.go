package main

import (
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"socialchain/internal/contracts"
	"socialchain/internal/fabric"
	"socialchain/internal/ordering"
	"socialchain/internal/storage"
)

// daemonConfig carries the -role flags: one socialchaind process hosting
// either one peer node (every channel's peer + validator) or the ordering
// service of a networked deployment.
type daemonConfig struct {
	role         string // "peer" or "orderer"
	index        int    // peer index (with -role peer)
	listen       string // TCP listen address
	join         string // comma-separated id=addr book of the other processes
	peers        int
	channels     int
	identitySeed string
	dataDir      string
	durability   storage.Durability
	batchTimeout time.Duration
	maxMessages  int
	admin        string // admin/debug HTTP listen address ("" = off)
}

// parseJoin parses "-join peer0=127.0.0.1:7001,orderer=127.0.0.1:7000"
// into a transport address book. Processes absent from the book are
// adopted when they dial in, so a partial book (or none) is legal.
func parseJoin(s string) (map[string]string, error) {
	book := make(map[string]string)
	if s == "" {
		return book, nil
	}
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -join entry %q (want id=host:port)", part)
		}
		book[id] = addr
	}
	return book, nil
}

// netConfig builds the deployment-wide fabric config every process of one
// deployment must agree on (same flags on every process).
func (d daemonConfig) netConfig() fabric.Config {
	return fabric.Config{
		NumPeers:        d.peers,
		NumChannels:     d.channels,
		IdentitySeed:    d.identitySeed,
		Cutter:          ordering.CutterConfig{MaxMessages: d.maxMessages, BatchTimeout: d.batchTimeout},
		DataDir:         d.dataDir,
		StateDurability: d.durability,
	}
}

// runDaemon runs one process of a networked deployment until SIGINT or
// SIGTERM, then shuts it down cleanly (flushing durable state).
func runDaemon(d daemonConfig) error {
	book, err := parseJoin(d.join)
	if err != nil {
		return err
	}
	if d.identitySeed == "" {
		return fmt.Errorf("-role %s requires -identity-seed (same value on every process)", d.role)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	switch d.role {
	case "peer":
		node, err := fabric.NewNode(fabric.NodeConfig{
			Index:  d.index,
			Listen: d.listen,
			Peers:  book,
			Net:    d.netConfig(),
		})
		if err != nil {
			return err
		}
		for _, cc := range contracts.All() {
			if err := node.Deploy(cc); err != nil {
				node.Close()
				return err
			}
		}
		if d.admin != "" {
			if err := node.ServeAdmin(d.admin); err != nil {
				node.Close()
				return err
			}
			fmt.Printf("%s admin surface on http://%s\n", node.ID(), node.AdminAddr())
		}
		node.Start()
		fmt.Printf("%s listening on %s (%d channels, %d peers, data-dir %q)\n",
			node.ID(), node.Addr(), d.channels, d.peers, d.dataDir)
		<-stop
		fmt.Printf("%s shutting down\n", node.ID())
		return node.Close()
	case "orderer":
		ord, err := fabric.NewOrderer(fabric.OrdererConfig{
			Listen: d.listen,
			Peers:  book,
			Net:    d.netConfig(),
		})
		if err != nil {
			return err
		}
		if d.admin != "" {
			if err := ord.ServeAdmin(d.admin); err != nil {
				ord.Close()
				return err
			}
			fmt.Printf("orderer admin surface on http://%s\n", ord.AdminAddr())
		}
		ord.Start()
		fmt.Printf("orderer listening on %s (%d channels, %d peers)\n", ord.Addr(), d.channels, d.peers)
		<-stop
		fmt.Println("orderer shutting down")
		return ord.Close()
	default:
		return fmt.Errorf("unknown -role %q (valid: peer, orderer)", d.role)
	}
}
