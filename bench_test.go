// Benchmarks regenerating the paper's evaluation (§IV). One benchmark per
// figure plus ablations; cmd/benchharness prints the same data as tables.
//
//	Figure 3 — detection confidence, static vs drone platforms
//	Figure 4 — metadata extraction time vs frame size
//	Figure 5 — IPFS storage time vs file size, with/without blockchain
//	Figure 6 — retrieval time vs file size, with/without blockchain
package socialchain

import (
	"fmt"
	"testing"
	"time"

	"socialchain/internal/consensus"
	"socialchain/internal/core"
	"socialchain/internal/dataset"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/ipfs"
	"socialchain/internal/metrics"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/query"
	"socialchain/internal/sim"
	"socialchain/internal/storage"
	"socialchain/internal/workload"
)

// benchFramework builds a small framework for storage benchmarks.
func benchFramework(b *testing.B, peers int, behaviors map[int]consensus.Behavior) (*core.Framework, *core.Client) {
	b.Helper()
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers:         peers,
			Cutter:           ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
			Behaviors:        behaviors,
			ConsensusTimeout: 500 * time.Millisecond,
		},
		IPFSNodes: 2,
	})
	if err != nil {
		b.Fatalf("core.New: %v", err)
	}
	b.Cleanup(fw.Close)
	cam, err := msp.NewSigner("city", "bench-cam", msp.RoleTrustedSource)
	if err != nil {
		b.Fatal(err)
	}
	if err := fw.RegisterSource(cam.Identity, true); err != nil {
		b.Fatal(err)
	}
	return fw, fw.Client(cam, 0)
}

// frameOfSize builds one frame with an exact payload size plus its
// extracted metadata.
func frameOfSize(rng *sim.RNG, det *detect.Detector, size int, idx int) (*detect.Frame, detect.MetadataRecord) {
	f := &detect.Frame{
		ID:         detect.FrameIDFor(fmt.Sprintf("bench-%d", idx), idx),
		VideoID:    fmt.Sprintf("bench-%d", idx),
		CameraID:   "bench-cam",
		Index:      idx,
		Platform:   detect.PlatformStatic,
		Encoding:   detect.EncodingJPEG,
		Width:      1280,
		Height:     720,
		Data:       rng.Bytes(size),
		Timestamp:  time.Now(),
		Location:   detect.GeoPoint{Latitude: 12.97, Longitude: 77.59},
		LightLevel: 1,
	}
	meta, _ := det.ExtractMetadata(f)
	return f, meta
}

// BenchmarkFigure3_DetectionConfidence measures detection over the two
// platforms and reports the confidence mean and spread the paper plots.
func BenchmarkFigure3_DetectionConfidence(b *testing.B) {
	for _, platform := range []detect.Platform{detect.PlatformStatic, detect.PlatformDrone} {
		b.Run(platform.String(), func(b *testing.B) {
			cfg := dataset.Config{Seed: 3, NumVideos: 4, FramesPerVideo: 8, NumDroneFlights: 4, FramesPerFlight: 8, MeanFrameKB: 16}
			corpus := dataset.Generate(cfg)
			videos := corpus.Static
			if platform == detect.PlatformDrone {
				videos = corpus.Drone
			}
			det := detect.NewDetector(3)
			stats := metrics.NewStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := videos[i%len(videos)]
				f := &v.Frames[i%len(v.Frames)]
				for _, d := range det.Detect(f) {
					stats.Add(d.Confidence)
				}
			}
			b.StopTimer()
			b.ReportMetric(stats.Mean(), "conf-mean")
			b.ReportMetric(stats.Std(), "conf-std")
		})
	}
}

// BenchmarkFigure4_MetadataExtraction measures extraction latency across
// frame sizes (the scatter of Figure 4).
func BenchmarkFigure4_MetadataExtraction(b *testing.B) {
	sizes := []int{256, 512, 1024, 4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024}
	for _, size := range sizes {
		b.Run(fmt.Sprintf("size=%dB", size), func(b *testing.B) {
			rng := sim.NewRNG(4)
			det := detect.NewDetector(4)
			frames := make([]*detect.Frame, 8)
			for i := range frames {
				frames[i], _ = frameOfSize(rng, det, size, i)
			}
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _ = det.ExtractMetadata(frames[i%len(frames)])
			}
		})
	}
}

// BenchmarkFigure5_Storage measures storage time across file sizes with
// and without blockchain overhead: ipfs-only is a raw IPFS add; the
// with-blockchain series runs the full store pipeline (validation,
// IPFS add, metadata+CID committed through BFT).
func BenchmarkFigure5_Storage(b *testing.B) {
	sizes := workload.SizeSweepKB(16, 4096, 5)

	b.Run("ipfs-only", func(b *testing.B) {
		for _, size := range sizes {
			b.Run(fmt.Sprintf("size=%dKB", size/1024), func(b *testing.B) {
				cluster, err := ipfs.NewCluster(ipfs.ClusterConfig{Nodes: 2})
				if err != nil {
					b.Fatal(err)
				}
				rng := sim.NewRNG(5)
				payloads := make([][]byte, 8)
				for i := range payloads {
					payloads[i] = rng.Bytes(size)
				}
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := cluster.Node(0).Add(payloads[i%len(payloads)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})

	b.Run("with-blockchain", func(b *testing.B) {
		for _, size := range sizes {
			b.Run(fmt.Sprintf("size=%dKB", size/1024), func(b *testing.B) {
				_, client := benchFramework(b, 4, nil)
				rng := sim.NewRNG(5)
				det := detect.NewDetector(5)
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					frame, meta := frameOfSize(rng, det, size, i)
					b.StartTimer()
					if _, err := client.StoreFrame(frame, meta); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
}

// BenchmarkFigure6_Retrieval measures retrieval across file sizes: the
// ipfs-only series fetches by CID from a cold second node; with-blockchain
// runs the full query-engine path (metadata from the chain, payload from
// IPFS, hash verification).
func BenchmarkFigure6_Retrieval(b *testing.B) {
	sizes := workload.SizeSweepKB(16, 4096, 5)

	b.Run("ipfs-only", func(b *testing.B) {
		for _, size := range sizes {
			b.Run(fmt.Sprintf("size=%dKB", size/1024), func(b *testing.B) {
				cluster, err := ipfs.NewCluster(ipfs.ClusterConfig{Nodes: 2})
				if err != nil {
					b.Fatal(err)
				}
				rng := sim.NewRNG(6)
				root, err := cluster.Node(0).Add(rng.Bytes(size))
				if err != nil {
					b.Fatal(err)
				}
				// Warm the reader so iterations measure steady-state reads,
				// as the paper's repeated retrievals do.
				if _, err := cluster.Node(1).Get(root); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := cluster.Node(1).Get(root); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})

	b.Run("with-blockchain", func(b *testing.B) {
		for _, size := range sizes {
			b.Run(fmt.Sprintf("size=%dKB", size/1024), func(b *testing.B) {
				fw, client := benchFramework(b, 4, nil)
				rng := sim.NewRNG(6)
				det := detect.NewDetector(6)
				frame, meta := frameOfSize(rng, det, size, 0)
				receipt, err := client.StoreFrame(frame, meta)
				if err != nil {
					b.Fatal(err)
				}
				reader := fw.Client(fw.Admin, 1) // reads via the second IPFS node
				if _, err := reader.RetrieveData(receipt.TxID); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := reader.RetrieveData(receipt.TxID)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Verified {
						b.Fatal("payload failed verification")
					}
				}
			})
		}
	})
}

// BenchmarkBFTFaultTolerance measures end-to-end submit latency as the
// number of byzantine (silent) validators grows: within f the system keeps
// committing; the bench shows the latency cost of faults.
func BenchmarkBFTFaultTolerance(b *testing.B) {
	for _, byz := range []int{0, 1, 2} { // n=7 tolerates f=2
		b.Run(fmt.Sprintf("byzantine=%d", byz), func(b *testing.B) {
			behaviors := map[int]consensus.Behavior{}
			// Faulty validators are non-leader followers so every iteration
			// measures quorum assembly, not view changes.
			for i := 0; i < byz; i++ {
				behaviors[i+1] = consensus.Silent{}
			}
			_, client := benchFramework(b, 7, behaviors)
			rng := sim.NewRNG(7)
			det := detect.NewDetector(7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				frame, meta := frameOfSize(rng, det, 4096, i)
				b.StartTimer()
				if _, err := client.StoreFrame(frame, meta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChunkSize ablates the IPFS chunk size against add+get cost.
func BenchmarkChunkSize(b *testing.B) {
	const payload = 2 << 20 // 2 MiB
	for _, chunkKB := range []int{32, 128, 256, 512} {
		b.Run(fmt.Sprintf("chunk=%dKB", chunkKB), func(b *testing.B) {
			cluster, err := ipfs.NewCluster(ipfs.ClusterConfig{
				Nodes:       2,
				NodeOptions: ipfs.Options{ChunkSize: chunkKB * 1024},
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := sim.NewRNG(8)
			data := rng.Bytes(payload)
			b.SetBytes(payload)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				root, err := cluster.Node(0).Add(data)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cluster.Node(1).Get(root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalabilityPeers sweeps the peer count, measuring full submit
// latency (endorsement fan-out + BFT quorum + commit).
func BenchmarkScalabilityPeers(b *testing.B) {
	for _, peers := range []int{4, 7, 10} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			_, client := benchFramework(b, peers, nil)
			rng := sim.NewRNG(9)
			det := detect.NewDetector(9)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				frame, meta := frameOfSize(rng, det, 4096, i)
				b.StartTimer()
				if _, err := client.StoreFrame(frame, meta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQuery measures the query engine's executor paths.
func BenchmarkQuery(b *testing.B) {
	fw, client := benchFramework(b, 4, nil)
	rng := sim.NewRNG(10)
	det := detect.NewDetector(10)
	var txIDs []string
	var labels []string
	for i := 0; i < 20; i++ {
		frame, meta := frameOfSize(rng, det, 2048, i)
		receipt, err := client.StoreFrame(frame, meta)
		if err != nil {
			b.Fatal(err)
		}
		txIDs = append(txIDs, receipt.TxID)
		labels = append(labels, meta.PrimaryLabel())
	}
	qe := fw.QueryEngine(0)

	b.Run("metadata-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qe.Metadata(txIDs[i%len(txIDs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("by-label-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qe.Execute(query.Request{Kind: query.ByLabel, Value: labels[i%len(labels)]}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rich-selector", func(b *testing.B) {
		sel := map[string]any{"source": client.Identity().ID()}
		for i := 0; i < b.N; i++ {
			if _, err := qe.Execute(query.Request{Kind: query.BySelector, Selector: sel}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("provenance-chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qe.Provenance(txIDs[len(txIDs)-1]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConsensusThroughput measures raw ordering throughput of the BFT
// core without chaincode work.
func BenchmarkConsensusThroughput(b *testing.B) {
	for _, n := range []int{4, 7} {
		b.Run(fmt.Sprintf("validators=%d", n), func(b *testing.B) {
			net := consensus.NewInProcNet(nil, nil)
			ids := make([]string, n)
			signers := make([]*msp.Signer, n)
			idents := make(map[string]msp.Identity)
			for i := 0; i < n; i++ {
				ids[i] = fmt.Sprintf("v%d", i)
				s, err := msp.NewSigner("org", ids[i], msp.RoleMember)
				if err != nil {
					b.Fatal(err)
				}
				signers[i] = s
				idents[ids[i]] = s.Identity
			}
			done := make(chan struct{}, 4096)
			var validators []*consensus.Validator
			for i := 0; i < n; i++ {
				first := i == 0
				v := consensus.NewValidator(consensus.Config{
					ID: ids[i], Validators: ids, Signer: signers[i], Identities: idents, Sender: net,
					Deliver: func(seq uint64, payload []byte) {
						if first {
							done <- struct{}{}
						}
					},
				})
				v.Start()
				validators = append(validators, v)
			}
			b.Cleanup(func() {
				for _, v := range validators {
					v.Stop()
				}
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				validators[0].Propose([]byte(fmt.Sprintf("payload-%d", i)))
				<-done
			}
		})
	}
}

// BenchmarkStorageEngine compares the pluggable world-state engines
// (internal/storage) end-to-end: the full store pipeline running over the
// seed's single-lock engine vs the sharded lock-striped engine, driven
// through the core.Config knob. The microbenchmark comparison lives in
// internal/storage and internal/statedb; this run proves the selection
// threads through core -> fabric -> peer.
func BenchmarkStorageEngine(b *testing.B) {
	for _, engine := range []storage.Engine{storage.EngineSingle, storage.EngineSharded} {
		b.Run(string(engine), func(b *testing.B) {
			fw, err := core.New(core.Config{
				Fabric: fabric.Config{
					NumPeers:         4,
					Cutter:           ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
					ConsensusTimeout: 500 * time.Millisecond,
				},
				IPFSNodes:     2,
				StorageEngine: engine,
			})
			if err != nil {
				b.Fatalf("core.New: %v", err)
			}
			b.Cleanup(fw.Close)
			cam, err := msp.NewSigner("city", "engine-cam", msp.RoleTrustedSource)
			if err != nil {
				b.Fatal(err)
			}
			if err := fw.RegisterSource(cam.Identity, true); err != nil {
				b.Fatal(err)
			}
			client := fw.Client(cam, 0)
			rng := sim.NewRNG(11)
			det := detect.NewDetector(11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				frame, meta := frameOfSize(rng, det, 4096, i)
				b.StartTimer()
				if _, err := client.StoreFrame(frame, meta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
