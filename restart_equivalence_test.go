// Restart equivalence: killing a durable deployment mid-run and resuming
// from its -data-dir must be indistinguishable — in canonical ledger
// state, secondary indexes, provenance chains and trust state — from a
// run that was never interrupted. This is the end-to-end gate on the
// persistence layer: WAL-backed world state, block logs and durable IPFS
// stores all have to recover exactly for the canonical bytes to match.
// Both restart-capable write paths are exercised: the serial StoreFrame
// loop and the pipelined ingest subsystem.
package socialchain

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"socialchain/internal/contracts"
	"socialchain/internal/core"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/ingest"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
)

// openDurableFramework boots (or reopens) a framework over dataDir. The
// caller owns the Close; reopening requires the previous instance closed.
// overlap sets the consensus overlap window (0 = lockstep); transport
// picks the consensus/fabric wire ("" = in-process).
func openDurableFramework(t *testing.T, dataDir string, overlap int, transport string) *core.Framework {
	t.Helper()
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers: 4,
			Cutter:   ordering.CutterConfig{MaxMessages: 2, BatchTimeout: 2 * time.Millisecond},
		},
		IPFSNodes:        2,
		DataDir:          dataDir,
		ConsensusOverlap: overlap,
		Transport:        transport,
	})
	if err != nil {
		t.Fatalf("core.New(DataDir=%s): %v", dataDir, err)
	}
	return fw
}

// restartCamera recreates the fixed camera identity a restarted process
// would construct and (re-)registers it — a no-op on a recovered chain.
func restartCamera(t *testing.T, fw *core.Framework) (*core.Client, *msp.Signer) {
	t.Helper()
	cam, err := msp.NewSigner("city", "equiv-cam", msp.RoleTrustedSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.RegisterSource(cam.Identity, true); err != nil {
		t.Fatal(err)
	}
	return fw.Client(cam, 0), cam
}

// convergePeers lets peer 0 catch up to the freshest peer before its
// state is read.
func convergePeers(t *testing.T, fw *core.Framework) {
	t.Helper()
	var tip uint64
	for _, p := range fw.Net.ChannelAt(0).Peers() {
		if h := p.Ledger().Height(); h > tip {
			tip = h
		}
	}
	if !fw.Net.ChannelAt(0).WaitHeight(tip, 10*time.Second) {
		t.Fatalf("peers did not converge to height %d", tip)
	}
}

// storeRange pushes frames[from:to] through the chosen write path.
func storeRange(t *testing.T, client *core.Client, mode string, frames []*detect.Frame, metas []detect.MetadataRecord, from, to int) {
	t.Helper()
	if mode == "pipelined" {
		results, err := client.StoreFrames(frames[from:to], metas[from:to], ingest.Config{
			Mode:       ingest.ModePipelined,
			BatchSize:  4,
			AddWorkers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("pipelined store %d: %v", from+r.Index, r.Err)
			}
		}
		return
	}
	for i := from; i < to; i++ {
		if _, err := client.StoreFrame(frames[i], metas[i]); err != nil {
			t.Fatalf("serial store %d: %v", i, err)
		}
	}
}

// TestIntegrationRestartEquivalence runs the fixed-seed scenario five
// ways over durable deployments — uninterrupted, stopped/reopened mid-run
// on the serial path, stopped/reopened mid-run on the pipelined path,
// stopped/reopened mid-run with overlapped consensus rounds, and
// stopped/reopened mid-run over the TCP transport — and
// requires byte-identical canonical records, identical label-index
// content, an intact provenance chain and identical trust state. The
// overlap leg proves async execution survives a kill/reopen with no
// decided-but-unexecuted payload lost or duplicated.
func TestIntegrationRestartEquivalence(t *testing.T) {
	seed := equivalenceSeed(t)
	t.Logf("restart equivalence seed %d (pin with SOCIALCHAIN_EQUIV_SEED)", seed)
	const n = 18
	frames, metas := equivFrames(t, seed, n)

	runs := []struct {
		name      string
		mode      string
		split     int // restart after this many records (n = never)
		overlap   int // consensus overlap window (0 = lockstep)
		transport string
	}{
		{"uninterrupted", "serial", n, 0, ""},
		{"restart-serial", "serial", n / 2, 0, ""},
		{"restart-pipelined", "pipelined", n / 2, 0, ""},
		{"restart-overlap", "pipelined", n / 2, 4, ""},
		// The tcp leg kills and reopens a deployment whose consensus and
		// fabric traffic crosses real sockets; recovery must still be
		// byte-identical to the in-process uninterrupted run.
		{"restart-tcp", "pipelined", n / 2, 0, "tcp"},
	}

	var canonical [][]byte
	var indexCanon []string
	for _, run := range runs {
		t.Run(run.name, func(t *testing.T) {
			dataDir := t.TempDir()
			fw := openDurableFramework(t, dataDir, run.overlap, run.transport)
			closed := false
			defer func() {
				if !closed {
					fw.Close()
				}
			}()
			client, cam := restartCamera(t, fw)
			storeRange(t, client, run.mode, frames, metas, 0, run.split)

			if run.split < n {
				// "Kill" the process: flush, close every durable store,
				// drop the whole in-memory deployment...
				convergePeers(t, fw)
				fw.Close()
				if err := fw.CloseErr(); err != nil {
					t.Fatalf("close before restart: %v", err)
				}
				// ...and resume from disk alone.
				fw = openDurableFramework(t, dataDir, run.overlap, run.transport)
				reHeight := fw.Net.ChannelAt(0).Peer(0).Ledger().Height()
				if reHeight < 2 {
					t.Fatalf("recovered chain height %d — nothing was resumed", reHeight)
				}
				client, cam = restartCamera(t, fw)
				storeRange(t, client, run.mode, frames, metas, run.split, n)
			}

			convergePeers(t, fw)
			recs := canonicalRecords(t, fw)
			if len(recs) != n {
				t.Fatalf("%d canonical records, want %d", len(recs), n)
			}
			recJSON, err := json.Marshal(recs)
			if err != nil {
				t.Fatal(err)
			}
			idx := canonicalIndex(t, fw, contracts.IndexLabel)
			idxJSON, _ := json.Marshal(idx)
			canonical = append(canonical, recJSON)
			indexCanon = append(indexCanon, string(idxJSON))
			if len(canonical) > 1 {
				if !bytes.Equal(canonical[0], recJSON) {
					t.Fatalf("canonical state diverged from uninterrupted run:\nfirst: %s\n  now: %s", canonical[0], recJSON)
				}
				if indexCanon[0] != string(idxJSON) {
					t.Fatalf("canonical label index diverged:\nfirst: %s\n  now: %s", indexCanon[0], idxJSON)
				}
			}

			checkProvenanceChain(t, fw, client.Gateway(), cam.Identity.ID(), n)

			st, err := fw.TrustScore(cam.Identity.ID())
			if err != nil {
				t.Fatal(err)
			}
			if st.Accepted != n {
				t.Fatalf("trust accepted = %d, want %d", st.Accepted, n)
			}
			if err := fw.Net.ChannelAt(0).Peer(0).Ledger().VerifyChain(); err != nil {
				t.Fatalf("chain verification: %v", err)
			}

			// One final reopen proves the finished run is itself durable.
			convergePeers(t, fw)
			height := fw.Net.ChannelAt(0).Peer(0).Ledger().Height()
			fw.Close()
			if err := fw.CloseErr(); err != nil {
				t.Fatalf("final close: %v", err)
			}
			closed = true
			re := openDurableFramework(t, dataDir, run.overlap, run.transport)
			defer re.Close()
			if got := re.Net.ChannelAt(0).Peer(0).Ledger().Height(); got < height {
				t.Fatalf("final reopen at height %d, had %d", got, height)
			}
			reRecs := canonicalRecords(t, re)
			reJSON, _ := json.Marshal(reRecs)
			if !bytes.Equal(reJSON, recJSON) {
				t.Fatal("state changed across final close/reopen")
			}
		})
	}
}
