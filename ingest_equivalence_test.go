// Randomized equivalence between the write paths: the pipelined, batched
// ingest subsystem must produce the same canonical ledger state and the
// same statedb secondary indexes as the serial one-record-at-a-time
// StoreData loop, across both storage engines. Transaction IDs, commit
// timestamps and provenance sequence assignments are nondeterministic by
// construction (random nonces; batches may commit out of submit order),
// so records are canonicalised — TxID/PrevTxID/Submitted/Seq cleared,
// sorted by CID — before the byte comparison, and the provenance chain
// and per-record index membership are checked structurally per run.
package socialchain

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"testing"
	"time"

	"socialchain/internal/contracts"
	"socialchain/internal/core"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/ingest"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/sim"
	"socialchain/internal/statedb"
	"socialchain/internal/storage"
)

// equivalenceSeed is time-randomized per run (logged for reproduction);
// set SOCIALCHAIN_EQUIV_SEED to pin it.
func equivalenceSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("SOCIALCHAIN_EQUIV_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SOCIALCHAIN_EQUIV_SEED %q: %v", s, err)
		}
		return v
	}
	return time.Now().UnixNano()
}

func newEquivFramework(t *testing.T, engine storage.Engine, overlap int, transport string) (*core.Framework, *core.Client, *msp.Signer) {
	t.Helper()
	// The persist engine runs as a fully durable deployment over a fresh
	// scratch directory, so the cross-engine comparison also proves the
	// WAL-backed write path changes nothing observable.
	dataDir := ""
	if engine == storage.EnginePersist {
		dataDir = t.TempDir()
	}
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers: 4,
			Cutter:   ordering.CutterConfig{MaxMessages: 2, BatchTimeout: 2 * time.Millisecond},
		},
		IPFSNodes:        2,
		StorageEngine:    engine,
		DataDir:          dataDir,
		ConsensusOverlap: overlap,
		Transport:        transport,
	})
	if err != nil {
		t.Fatalf("core.New(%s): %v", engine, err)
	}
	t.Cleanup(fw.Close)
	cam, err := msp.NewSigner("city", "equiv-cam", msp.RoleTrustedSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.RegisterSource(cam.Identity, true); err != nil {
		t.Fatal(err)
	}
	return fw, fw.Client(cam, 0), cam
}

// equivFrames generates n random-sized frames (and their metadata) from
// one seed, shared verbatim by every run under comparison.
func equivFrames(t *testing.T, seed int64, n int) ([]*detect.Frame, []detect.MetadataRecord) {
	t.Helper()
	rng := sim.NewRNG(seed)
	r := rand.New(rand.NewSource(seed))
	det := detect.NewDetector(seed)
	now := time.Now()
	frames := make([]*detect.Frame, n)
	metas := make([]detect.MetadataRecord, n)
	for i := range frames {
		frames[i] = &detect.Frame{
			ID:         detect.FrameIDFor(fmt.Sprintf("equiv-%d", i), i),
			VideoID:    fmt.Sprintf("equiv-%d", i),
			CameraID:   fmt.Sprintf("equiv-cam-%d", r.Intn(3)),
			Index:      i,
			Platform:   detect.PlatformStatic,
			Encoding:   detect.EncodingJPEG,
			Width:      1280,
			Height:     720,
			Data:       rng.Bytes(512 + r.Intn(4096)),
			Timestamp:  now.Add(time.Duration(i) * time.Second),
			Location:   detect.GeoPoint{Latitude: 12.97, Longitude: 77.59},
			LightLevel: 1,
		}
		metas[i], _ = det.ExtractMetadata(frames[i])
	}
	return frames, metas
}

// canonicalRecords reads every on-chain data record from peer 0's world
// state and strips the nondeterministic fields.
func canonicalRecords(t *testing.T, fw *core.Framework) []contracts.DataRecord {
	t.Helper()
	kvs := fw.Net.ChannelAt(0).Peer(0).State().GetStateByPrefix(contracts.DataCC, "rec/")
	out := make([]contracts.DataRecord, 0, len(kvs))
	for _, kv := range kvs {
		var rec contracts.DataRecord
		if err := json.Unmarshal(kv.Value, &rec); err != nil {
			t.Fatalf("decode record %s: %v", kv.Key, err)
		}
		rec.TxID, rec.PrevTxID, rec.Seq = "", "", 0
		rec.Submitted = time.Time{}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CID < out[j].CID })
	return out
}

// canonicalIndex maps every entry of a statedb secondary index to
// (indexed value, CID of the record the entry points at), sorted — the
// record-ID-free view of the index.
func canonicalIndex(t *testing.T, fw *core.Framework, index string) []string {
	t.Helper()
	db := fw.Net.ChannelAt(0).Peer(0).State()
	var out []string
	token := ""
	for {
		page, err := db.IterIndex(index, "", 200, 0, token)
		if err != nil {
			t.Fatalf("IterIndex %s: %v", index, err)
		}
		for _, e := range page.Entries {
			vv, ok := db.GetState(contracts.DataCC, e.Key)
			if !ok {
				t.Fatalf("index %s entry %q points at missing key %q", index, e.Value, e.Key)
			}
			var rec contracts.DataRecord
			if err := json.Unmarshal(vv.Value, &rec); err != nil {
				t.Fatalf("decode indexed record: %v", err)
			}
			out = append(out, e.Value+"\x00"+rec.CID)
		}
		if page.Next == "" {
			break
		}
		token = page.Next
	}
	sort.Strings(out)
	return out
}

// checkProvenanceChain walks the source's head chain and checks it visits
// every record exactly once with contiguous sequence numbers.
func checkProvenanceChain(t *testing.T, fw *core.Framework, gw *fabric.Gateway, source string, want int) {
	t.Helper()
	db := fw.Net.ChannelAt(0).Peer(0).State()
	headRaw, ok := db.GetState(contracts.DataCC, "head/"+source)
	if !ok {
		t.Fatalf("no provenance head for %s", source)
	}
	var head struct {
		TxID string `json:"tx_id"`
		Seq  int    `json:"seq"`
	}
	if err := json.Unmarshal(headRaw.Value, &head); err != nil {
		t.Fatal(err)
	}
	if head.Seq != want {
		t.Fatalf("head seq = %d, want %d", head.Seq, want)
	}
	raw, err := gw.Evaluate(contracts.DataCC, "getProvenance", []byte(head.TxID))
	if err != nil {
		t.Fatalf("getProvenance: %v", err)
	}
	var chain []contracts.DataRecord
	if err := json.Unmarshal(raw, &chain); err != nil {
		t.Fatal(err)
	}
	if len(chain) != want {
		t.Fatalf("provenance chain length %d, want %d", len(chain), want)
	}
	for i, rec := range chain {
		if rec.Seq != want-i {
			t.Fatalf("chain position %d has seq %d, want %d", i, rec.Seq, want-i)
		}
	}
}

// TestIntegrationIngestEquivalence is the randomized serial-vs-pipelined
// equivalence gate, run under all three storage engines (the persist legs
// as a durable deployment); a third, overlap-enabled mode proves the
// overlapped consensus rounds (ConsensusOverlap=4) leave the canonical
// bytes untouched, and a tcp mode (sharded engine only) reruns the
// pipelined workload with every consensus and fabric message crossing
// real localhost sockets. All ten runs must agree on canonical state.
func TestIntegrationIngestEquivalence(t *testing.T) {
	seed := equivalenceSeed(t)
	t.Logf("equivalence seed %d (pin with SOCIALCHAIN_EQUIV_SEED)", seed)
	const n = 23
	frames, metas := equivFrames(t, seed, n)

	var canonical [][]byte
	var indexCanon []string
	for _, engine := range []storage.Engine{storage.EngineSingle, storage.EngineSharded, storage.EnginePersist} {
		modes := []string{"serial-loop", "pipelined", "pipelined-overlap"}
		if engine == storage.EngineSharded {
			modes = append(modes, "pipelined-tcp")
		}
		for _, mode := range modes {
			t.Run(string(engine)+"/"+mode, func(t *testing.T) {
				overlap := 0
				if mode == "pipelined-overlap" {
					overlap = 4
				}
				kind := "inproc"
				if mode == "pipelined-tcp" {
					kind = "tcp"
				}
				fw, client, cam := newEquivFramework(t, engine, overlap, kind)
				if mode == "serial-loop" {
					for i, f := range frames {
						if _, err := client.StoreFrame(f, metas[i]); err != nil {
							t.Fatalf("serial store %d: %v", i, err)
						}
					}
				} else {
					results, err := client.StoreFrames(frames, metas, ingest.Config{
						Mode:        ingest.ModePipelined,
						BatchSize:   5,
						AddWorkers:  4,
						MaxInFlight: 2,
					})
					if err != nil {
						t.Fatal(err)
					}
					for _, r := range results {
						if r.Err != nil {
							t.Fatalf("pipelined store %d: %v", r.Index, r.Err)
						}
					}
				}

				// Commits are confirmed on round-robin entry peers; let
				// peer 0 (whose state we inspect) catch up to the
				// freshest peer before reading.
				var tip uint64
				for _, p := range fw.Net.ChannelAt(0).Peers() {
					if h := p.Ledger().Height(); h > tip {
						tip = h
					}
				}
				if !fw.Net.ChannelAt(0).WaitHeight(tip, 10*time.Second) {
					t.Fatalf("peers did not converge to height %d", tip)
				}

				recs := canonicalRecords(t, fw)
				if len(recs) != n {
					t.Fatalf("%d canonical records, want %d", len(recs), n)
				}
				recJSON, err := json.Marshal(recs)
				if err != nil {
					t.Fatal(err)
				}
				idx := canonicalIndex(t, fw, contracts.IndexLabel)
				idxJSON, _ := json.Marshal(idx)
				canonical = append(canonical, recJSON)
				indexCanon = append(indexCanon, string(idxJSON))
				if len(canonical) > 1 {
					if !bytes.Equal(canonical[0], recJSON) {
						t.Fatalf("canonical state diverged from first run:\nfirst: %s\n  now: %s", canonical[0], recJSON)
					}
					if indexCanon[0] != string(idxJSON) {
						t.Fatalf("canonical label index diverged:\nfirst: %s\n  now: %s", indexCanon[0], idxJSON)
					}
				}

				checkProvenanceChain(t, fw, client.Gateway(), cam.Identity.ID(), n)

				// Index integrity within the run: the statedb index page
				// count per label must match a full selector scan.
				db := fw.Net.ChannelAt(0).Peer(0).State()
				labels := map[string]int{}
				for _, r := range recs {
					labels[r.Label]++
				}
				for label, count := range labels {
					kvs, err := db.ExecuteQuery(contracts.DataCC, statedb.Selector{"label": label})
					if err != nil {
						t.Fatal(err)
					}
					got := 0
					for _, kv := range kvs {
						if len(kv.Key) >= 4 && kv.Key[:4] == "rec/" {
							got++
						}
					}
					if got != count {
						t.Fatalf("label %q: indexed query found %d records, want %d", label, got, count)
					}
				}

				// Trust state must match the serial path: n accepted
				// observations.
				st, err := fw.TrustScore(cam.Identity.ID())
				if err != nil {
					t.Fatal(err)
				}
				if st.Accepted != n {
					t.Fatalf("trust accepted = %d, want %d", st.Accepted, n)
				}

				if err := fw.Net.ChannelAt(0).Peer(0).Ledger().VerifyChain(); err != nil {
					t.Fatalf("chain verification: %v", err)
				}
			})
		}
	}
}
