// Quickstart: bring up the framework, register a camera, store one traffic
// frame (payload to IPFS, metadata + CID on-chain through BFT consensus),
// and retrieve it back with integrity verification — the minimal end-to-end
// tour of the paper's Figure 1 pipeline.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"socialchain/internal/core"
	"socialchain/internal/dataset"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Start the framework: 4 blockchain peers + 2 IPFS nodes, the five
	// chaincodes deployed, a bootstrap admin enrolled.
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers: 4,
			Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 5 * time.Millisecond},
		},
		IPFSNodes: 2,
	})
	if err != nil {
		return err
	}
	defer fw.Close()
	fmt.Println("framework up: 4 peers, 2 IPFS nodes")

	// 2. Register a trusted source (a traffic camera).
	cam, err := msp.NewSigner("city", "cam-001", msp.RoleTrustedSource)
	if err != nil {
		return err
	}
	if err := fw.RegisterSource(cam.Identity, true); err != nil {
		return err
	}
	fmt.Printf("registered trusted source %s\n", cam.Identity.ID())

	// 3. Capture a frame and extract its metadata (the YOLO stage).
	corpus := dataset.Generate(dataset.Config{Seed: 42, NumVideos: 1, FramesPerVideo: 1, NumDroneFlights: 1, FramesPerFlight: 1})
	frame := &corpus.Static[0].Frames[0]
	det := detect.NewDetector(42)
	meta, extractTime := det.ExtractMetadata(frame)
	fmt.Printf("extracted %d detections from a %d-byte frame in %v (primary: %s)\n",
		len(meta.Detections), frame.SizeBytes(), extractTime, meta.PrimaryLabel())

	// 4. Store: payload -> IPFS, metadata + CID -> blockchain.
	client := fw.Client(cam, 0)
	receipt, err := client.StoreFrame(frame, meta)
	if err != nil {
		return err
	}
	fmt.Printf("stored: tx=%s\n        cid=%s\n        block=%d\n", receipt.TxID[:16], receipt.CID, receipt.BlockNum)
	fmt.Printf("timing: validate=%v ipfs=%v blockchain=%v\n",
		receipt.Timing.Validate, receipt.Timing.IPFS, receipt.Timing.Blockchain)

	// 5. Retrieve through the other IPFS node and verify integrity.
	reader := fw.Client(cam, 1)
	res, err := reader.RetrieveData(receipt.TxID)
	if err != nil {
		return err
	}
	fmt.Printf("retrieved %d bytes, verified=%v (blockchain=%v ipfs=%v verify=%v)\n",
		len(res.Payload), res.Verified, res.Timing.Blockchain, res.Timing.IPFS, res.Timing.Verify)

	var gotMeta detect.MetadataRecord
	if err := json.Unmarshal(res.Record.Metadata, &gotMeta); err != nil {
		return err
	}
	fmt.Printf("on-chain metadata: frame=%s camera=%s platform=%s hash=%s...\n",
		gotMeta.FrameID, gotMeta.CameraID, gotMeta.Platform, gotMeta.DataHash[:12])

	stats := fw.LedgerStats()
	fmt.Printf("chain: height=%d txs=%d valid=%d\n", stats.Height, stats.TotalTxs, stats.ValidTxs)
	return nil
}
