// Chain audit: an external auditor's workflow. After a mixed workload
// (valid and invalid submissions), the auditor inspects the chain with the
// explorer, exports the ledger to a portable dump, re-imports and
// re-verifies it offline, compares world-state snapshots across peers, and
// catches a peer up via state transfer.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"socialchain/internal/core"
	"socialchain/internal/dataset"
	"socialchain/internal/detect"
	"socialchain/internal/explorer"
	"socialchain/internal/fabric"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers: 4,
			Cutter:   ordering.CutterConfig{MaxMessages: 2, BatchTimeout: 5 * time.Millisecond},
		},
		IPFSNodes: 2,
	})
	if err != nil {
		return err
	}
	defer fw.Close()

	// Workload: one camera, one honest citizen, one dishonest source.
	cam, _ := msp.NewSigner("city", "audit-cam", msp.RoleTrustedSource)
	crowd, _ := msp.NewSigner("crowd", "audit-crowd", msp.RoleUntrustedSource)
	bad, _ := msp.NewSigner("crowd", "audit-bad", msp.RoleUntrustedSource)
	for _, s := range []*msp.Signer{cam, crowd, bad} {
		trusted := s.Identity.Role == msp.RoleTrustedSource
		if err := fw.RegisterSource(s.Identity, trusted); err != nil {
			return err
		}
	}
	det := detect.NewDetector(31)
	corpus := dataset.Generate(dataset.Config{Seed: 31, NumVideos: 1, FramesPerVideo: 9, NumDroneFlights: 1, FramesPerFlight: 1, MeanFrameKB: 6})
	frames := corpus.Static[0].Frames
	for i := 0; i < 3; i++ {
		f := frames[i*3]
		m, _ := det.ExtractMetadata(&f)
		if _, err := fw.Client(cam, 0).StoreFrame(&f, m); err != nil {
			return err
		}
		f2 := frames[i*3+1]
		m2, _ := det.ExtractMetadata(&f2)
		m2.CameraID = "crowd-phone"
		if _, err := fw.Client(crowd, 0).StoreFrame(&f2, m2); err != nil {
			return err
		}
		f3 := frames[i*3+2]
		m3, _ := det.ExtractMetadata(&f3)
		m3.DataHash = strings.Repeat("e", 64)
		_, _ = fw.Client(bad, 1).StoreFrame(&f3, m3) // rejected, reported
	}

	// Let all peers converge before auditing.
	var max uint64
	for i := 0; i < 4; i++ {
		if h := fw.Net.ChannelAt(0).Peer(i).Ledger().Height(); h > max {
			max = h
		}
	}
	fw.Net.ChannelAt(0).WaitHeight(max, 10*time.Second)

	// 1. Explorer overview.
	fmt.Println("=== explorer overview (peer 0) ===")
	exp := explorer.New(fw.Net.ChannelAt(0).Peer(0).Ledger())
	exp.RenderStats(os.Stdout)

	fmt.Println("\n=== invalid transactions ===")
	invalid := exp.Search("", "", true)
	for _, tx := range invalid {
		fmt.Printf("  block %d: %s.%s by %s -> %s\n", tx.Block, tx.Chaincode, tx.Fn, tx.Creator, tx.Flag)
	}
	if len(invalid) == 0 {
		fmt.Println("  (none)")
	}

	// 2. Export the ledger and re-verify offline.
	var dump bytes.Buffer
	if err := fw.Net.ChannelAt(0).Peer(0).Ledger().Export(&dump); err != nil {
		return err
	}
	fmt.Printf("\nexported ledger: %d bytes\n", dump.Len())
	offline := ledger.New()
	blocks, err := offline.Import(bytes.NewReader(dump.Bytes()))
	if err != nil {
		return fmt.Errorf("offline import: %w", err)
	}
	if err := offline.VerifyChain(); err != nil {
		return fmt.Errorf("offline verification: %w", err)
	}
	fmt.Printf("offline re-import verified %d blocks, tip matches: %v\n",
		blocks, offline.TipHash() == fw.Net.ChannelAt(0).Peer(0).Ledger().TipHash())

	// 3. World-state snapshots must be byte-identical across peers.
	var s0, s1 bytes.Buffer
	if err := fw.Net.ChannelAt(0).Peer(0).State().Snapshot(&s0); err != nil {
		return err
	}
	if err := fw.Net.ChannelAt(0).Peer(1).State().Snapshot(&s1); err != nil {
		return err
	}
	fmt.Printf("world-state snapshots: peer0=%d bytes, identical across peers: %v\n",
		s0.Len(), bytes.Equal(s0.Bytes(), s1.Bytes()))

	// 4. State transfer: a brand-new network's peer bootstraps from our
	// freshest peer and lands on the same tip.
	aux, err := fabric.NewNetwork(fabric.Config{NumPeers: 4})
	if err != nil {
		return err
	}
	for _, cc := range contractsAll() {
		if err := aux.Deploy(cc); err != nil {
			return err
		}
	}
	applied, err := aux.ChannelAt(0).Peer(0).SyncFrom(fw.Net.ChannelAt(0).Peer(0))
	if err != nil {
		return fmt.Errorf("state transfer: %w", err)
	}
	fmt.Printf("state transfer: fresh peer applied %d blocks, tip matches: %v\n",
		applied, aux.ChannelAt(0).Peer(0).Ledger().TipHash() == fw.Net.ChannelAt(0).Peer(0).Ledger().TipHash())
	return nil
}
