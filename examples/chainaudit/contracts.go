package main

import (
	"socialchain/internal/chaincode"
	"socialchain/internal/contracts"
)

// contractsAll exposes the framework chaincode set so the auxiliary
// network re-validates synced blocks with the same code.
func contractsAll() []chaincode.Chaincode { return contracts.All() }
