// Untrusted crowd: the paper's trust-management story. Crowd-sourced mobile
// users submit observations alongside trusted cameras; an honest citizen's
// trust score climbs through cross-validation with camera data, a dishonest
// troll's score collapses until the trust gate locks them out, and a
// byzantine validator inside the blockchain is tolerated throughout.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"socialchain/internal/consensus"
	"socialchain/internal/core"
	"socialchain/internal/dataset"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One silent byzantine validator out of four: below the BFT threshold,
	// so the network keeps committing.
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers:         4,
			Behaviors:        map[int]consensus.Behavior{2: consensus.Silent{}},
			Cutter:           ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 5 * time.Millisecond},
			ConsensusTimeout: time.Second,
		},
		IPFSNodes: 2,
	})
	if err != nil {
		return err
	}
	defer fw.Close()
	fmt.Println("network up with 1 silent byzantine validator out of 4 (tolerated: f=1)")

	// Sources: a trusted camera, an honest citizen, a dishonest troll.
	camera, err := msp.NewSigner("city", "cam-42", msp.RoleTrustedSource)
	if err != nil {
		return err
	}
	citizen, err := msp.NewSigner("crowd", "citizen", msp.RoleUntrustedSource)
	if err != nil {
		return err
	}
	troll, err := msp.NewSigner("crowd", "troll", msp.RoleUntrustedSource)
	if err != nil {
		return err
	}
	if err := fw.RegisterSource(camera.Identity, true); err != nil {
		return err
	}
	if err := fw.RegisterSource(citizen.Identity, false); err != nil {
		return err
	}
	if err := fw.RegisterSource(troll.Identity, false); err != nil {
		return err
	}
	camClient := fw.Client(camera, 0)
	citizenClient := fw.Client(citizen, 0)
	trollClient := fw.Client(troll, 1)

	det := detect.NewDetector(11)
	corpus := dataset.Generate(dataset.Config{Seed: 11, NumVideos: 1, FramesPerVideo: 24, NumDroneFlights: 1, FramesPerFlight: 1, MeanFrameKB: 8})
	frames := corpus.Static[0].Frames

	fmt.Println("\nround | citizen score | troll score | troll accepted?")
	fmt.Println("------+---------------+-------------+----------------")
	for round := 0; round < 8; round++ {
		// The camera reports the scene (seeds cross-validation references).
		camFrame := frames[round*3]
		camMeta, _ := det.ExtractMetadata(&camFrame)
		if _, err := camClient.StoreFrame(&camFrame, camMeta); err != nil {
			return fmt.Errorf("camera store: %w", err)
		}

		// The citizen reports the same scene truthfully from their phone.
		citizenFrame := frames[round*3+1]
		citizenMeta, _ := det.ExtractMetadata(&citizenFrame)
		citizenMeta.CameraID = "citizen-phone"
		citizenMeta.FrameID = fmt.Sprintf("citizen/frame-%05d", round)
		if _, err := citizenClient.StoreFrame(&citizenFrame, citizenMeta); err != nil {
			return fmt.Errorf("citizen store: %w", err)
		}

		// The troll submits records whose hash never matches the payload.
		trollFrame := frames[round*3+2]
		trollMeta, _ := det.ExtractMetadata(&trollFrame)
		trollMeta.CameraID = "troll-phone"
		trollMeta.FrameID = fmt.Sprintf("troll/frame-%05d", round)
		trollMeta.DataHash = strings.Repeat("d", 64)
		_, trollErr := trollClient.StoreFrame(&trollFrame, trollMeta)

		cs, err := fw.TrustScore(citizen.Identity.ID())
		if err != nil {
			return err
		}
		ts, err := fw.TrustScore(troll.Identity.ID())
		if err != nil {
			return err
		}
		fmt.Printf("%5d | %13.3f | %11.3f | %v\n", round+1, cs.Score, ts.Score, trollErr == nil)
	}

	cs, _ := fw.TrustScore(citizen.Identity.ID())
	ts, _ := fw.TrustScore(troll.Identity.ID())
	fmt.Printf("\ncitizen: %d accepted, %d rejected, score %.3f (trusted)\n", cs.Accepted, cs.Rejected, cs.Score)
	fmt.Printf("troll:   %d accepted, %d rejected, score %.3f, flagged=%v\n", ts.Accepted, ts.Rejected, ts.Score, ts.Flagged)

	// Even a now-honest submission from the troll is gated.
	f := frames[0]
	m, _ := det.ExtractMetadata(&f)
	m.CameraID = "troll-phone"
	if _, err := trollClient.StoreFrame(&f, m); err != nil {
		fmt.Println("troll's well-formed submission rejected by the trust gate, as designed")
	} else {
		fmt.Println("WARNING: troll regained access unexpectedly")
	}

	stats := fw.LedgerStats()
	fmt.Printf("\nledger: height=%d txs=%d valid=%d (byzantine validator never blocked commits)\n",
		stats.Height, stats.TotalTxs, stats.ValidTxs)
	return nil
}
