// Traffic monitoring: the paper's motivating ITS scenario. Several static
// cameras and a drone feed observations into the framework; a law
// enforcement analyst then runs the query engine — by label, by camera, by
// rich selector — and verifies every retrieved payload against its
// on-chain hash.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"socialchain/internal/core"
	"socialchain/internal/dataset"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/query"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers: 4,
			Cutter:   ordering.CutterConfig{MaxMessages: 2, BatchTimeout: 5 * time.Millisecond},
		},
		IPFSNodes: 2,
	})
	if err != nil {
		return err
	}
	defer fw.Close()

	const numCameras = 3
	corpus := dataset.Generate(dataset.Config{
		Seed: 7, NumVideos: numCameras, FramesPerVideo: 4,
		NumDroneFlights: 1, FramesPerFlight: 4, MeanFrameKB: 16,
	})
	det := detect.NewDetector(7)

	// Register the camera fleet and the drone, then feed observations.
	type feed struct {
		client *core.Client
		video  dataset.Video
	}
	var feeds []feed
	for i, v := range corpus.Static {
		s, err := msp.NewSigner("city", fmt.Sprintf("cam-%02d", i), msp.RoleTrustedSource)
		if err != nil {
			return err
		}
		if err := fw.RegisterSource(s.Identity, true); err != nil {
			return err
		}
		feeds = append(feeds, feed{client: fw.Client(s, i%2), video: v})
	}
	droneSigner, err := msp.NewSigner("city", "drone-01", msp.RoleTrustedSource)
	if err != nil {
		return err
	}
	if err := fw.RegisterSource(droneSigner.Identity, true); err != nil {
		return err
	}
	feeds = append(feeds, feed{client: fw.Client(droneSigner, 0), video: corpus.Drone[0]})

	stored := 0
	labelCount := map[string]int{}
	for _, f := range feeds {
		for i := range f.video.Frames {
			frame := &f.video.Frames[i]
			meta, _ := det.ExtractMetadata(frame)
			if _, err := f.client.StoreFrame(frame, meta); err != nil {
				return fmt.Errorf("store %s: %w", frame.ID, err)
			}
			stored++
			labelCount[meta.PrimaryLabel()]++
		}
	}
	fmt.Printf("ingested %d observations from %d cameras + 1 drone\n\n", stored, numCameras)

	// The analyst queries the chain.
	analyst := fw.QueryEngine(1)

	fmt.Println("-- query: all truck sightings --")
	res, err := analyst.Execute(query.Request{Kind: query.ByLabel, Value: "truck"})
	if err != nil {
		return err
	}
	fmt.Printf("%d records (expected %d)\n", len(res.Records), labelCount["truck"])
	for _, rec := range res.Records {
		var meta detect.MetadataRecord
		if err := json.Unmarshal(rec.Metadata, &meta); err != nil {
			return err
		}
		fmt.Printf("  tx=%s camera=%s at=%s conf=%.2f\n",
			rec.TxID[:12], meta.CameraID, meta.CapturedAt.Format("15:04:05"), meta.Detections[0].Confidence)
	}

	fmt.Println("\n-- query: everything camera cam-000 captured --")
	byCam, err := analyst.Execute(query.Request{Kind: query.ByCamera, Value: corpus.Static[0].Camera.ID})
	if err != nil {
		return err
	}
	fmt.Printf("%d records from %s\n", len(byCam.Records), corpus.Static[0].Camera.ID)

	fmt.Println("\n-- rich selector: large payloads (> 8 KiB) --")
	sel, err := analyst.Execute(query.Request{
		Kind:     query.BySelector,
		Selector: map[string]any{"size_bytes": map[string]any{"$gt": 8 * 1024}},
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d records match\n", len(sel.Records))

	// Verify one payload end-to-end: fetch from IPFS and check the hash.
	if len(res.Records) > 0 {
		target := res.Records[0].TxID
		full, err := analyst.Data(target)
		if err != nil {
			return err
		}
		fmt.Printf("\nverified payload of tx %s: %d bytes, verified=%v\n",
			target[:12], len(full.Payload), full.Verified)
	}

	stats := fw.LedgerStats()
	fmt.Printf("\nledger: height=%d txs=%d valid=%d\n", stats.Height, stats.TotalTxs, stats.ValidTxs)
	return nil
}
