// Provenance audit: the paper's traceability story. A camera streams
// observations that form a hash-linked per-source provenance chain
// on-chain; an auditor then walks the chain, proves Merkle inclusion of a
// record in its block, verifies payload integrity against the on-chain
// hash, and demonstrates that tampering is detected.
package main

import (
	"fmt"
	"log"
	"time"

	"socialchain/internal/core"
	"socialchain/internal/dataset"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/provenance"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers: 4,
			Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 5 * time.Millisecond},
		},
		IPFSNodes: 2,
	})
	if err != nil {
		return err
	}
	defer fw.Close()

	cam, err := msp.NewSigner("city", "cam-7", msp.RoleTrustedSource)
	if err != nil {
		return err
	}
	if err := fw.RegisterSource(cam.Identity, true); err != nil {
		return err
	}
	client := fw.Client(cam, 0)

	det := detect.NewDetector(23)
	corpus := dataset.Generate(dataset.Config{Seed: 23, NumVideos: 1, FramesPerVideo: 5, NumDroneFlights: 1, FramesPerFlight: 1, MeanFrameKB: 8})

	var lastTx string
	fmt.Println("storing 5 observations from cam-7...")
	for i := range corpus.Static[0].Frames {
		frame := &corpus.Static[0].Frames[i]
		meta, _ := det.ExtractMetadata(frame)
		receipt, err := client.StoreFrame(frame, meta)
		if err != nil {
			return err
		}
		lastTx = receipt.TxID
		fmt.Printf("  seq %d: tx=%s block=%d\n", i+1, receipt.TxID[:12], receipt.BlockNum)
	}

	// Walk the provenance chain from the newest record to the origin.
	fmt.Println("\nwalking provenance chain from the newest record:")
	chain, err := client.Query().Provenance(lastTx)
	if err != nil {
		return err
	}
	for _, rec := range chain {
		fmt.Printf("  seq=%d tx=%s prev=%-12s hash=%s...\n",
			rec.Seq, rec.TxID[:12], short(rec.PrevTxID), rec.DataHash[:12])
	}
	summary := provenance.Summarise(chain)
	fmt.Printf("chain verified: source=%s length=%d origin=%s valid=%v\n",
		summary.Source, summary.Length, summary.Origin[:12], summary.Valid)

	// Prove the newest record is committed in the ledger (Merkle proof
	// against the block's data hash).
	lgr := fw.Net.ChannelAt(0).Peer(0).Ledger()
	waitForTx(lgr.HasTx, lastTx)
	if err := provenance.VerifyInclusion(lgr, lastTx); err != nil {
		return fmt.Errorf("inclusion proof: %w", err)
	}
	fmt.Println("merkle inclusion proof for the newest record: OK")

	// Verify payload integrity end-to-end.
	res, err := client.RetrieveData(lastTx)
	if err != nil {
		return err
	}
	fmt.Printf("payload integrity: %d bytes, verified=%v\n", len(res.Payload), res.Verified)

	// Tampering demo: alter the retrieved payload and re-verify.
	tampered := append([]byte(nil), res.Payload...)
	tampered[0] ^= 0xFF
	if err := provenance.VerifyPayload(&res.Record, tampered); err != nil {
		fmt.Printf("tampered payload correctly rejected: %v\n", err)
	} else {
		fmt.Println("WARNING: tampered payload passed verification")
	}

	// Whole-chain integrity: every block's hash chain and data hash.
	if err := lgr.VerifyChain(); err != nil {
		return err
	}
	fmt.Printf("full ledger hash chain verified (%d blocks)\n", lgr.Height())
	return nil
}

func short(s string) string {
	if len(s) > 12 {
		return s[:12]
	}
	if s == "" {
		return "(origin)"
	}
	return s
}

// waitForTx polls until the peer's ledger has the transaction (commits
// propagate asynchronously between peers).
func waitForTx(has func(string) bool, txID string) {
	deadline := time.Now().Add(5 * time.Second)
	for !has(txID) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}
