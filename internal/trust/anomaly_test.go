package trust

import (
	"fmt"
	"testing"
	"time"
)

func cleanSubmission(i int) Submission {
	return Submission{
		At:         time.Unix(int64(1000+i*60), 0),
		Label:      "car",
		Confidence: 0.8 + 0.01*float64(i%5),
		Latitude:   12.97 + 0.0001*float64(i),
		Longitude:  77.59,
		DataHash:   fmt.Sprintf("hash-%04d", i),
		SizeBytes:  4096,
	}
}

func TestCleanStreamNoAnomalies(t *testing.T) {
	d := NewAnomalyDetector(AnomalyDetectorConfig{})
	for i := 0; i < 40; i++ {
		if found := d.Observe(cleanSubmission(i)); len(found) != 0 {
			t.Fatalf("submission %d flagged: %+v", i, found)
		}
	}
}

func TestDuplicatePayloadDetected(t *testing.T) {
	d := NewAnomalyDetector(AnomalyDetectorConfig{})
	s := cleanSubmission(0)
	if found := d.Observe(s); len(found) != 0 {
		t.Fatalf("first submission flagged: %+v", found)
	}
	s2 := cleanSubmission(1)
	s2.DataHash = s.DataHash
	found := d.Observe(s2)
	if !hasKind(found, "duplicate-payload") {
		t.Fatalf("duplicate not flagged: %+v", found)
	}
	// Severity grows with repetition.
	s3 := cleanSubmission(2)
	s3.DataHash = s.DataHash
	found3 := d.Observe(s3)
	if PenaltyOf(found3) <= PenaltyOf(found) {
		t.Fatal("severity did not grow with repetition")
	}
}

func TestDuplicateExpiresOutOfWindow(t *testing.T) {
	d := NewAnomalyDetector(AnomalyDetectorConfig{Window: 4})
	first := cleanSubmission(0)
	d.Observe(first)
	for i := 1; i <= 4; i++ {
		d.Observe(cleanSubmission(i))
	}
	replay := cleanSubmission(9)
	replay.DataHash = first.DataHash
	if found := d.Observe(replay); hasKind(found, "duplicate-payload") {
		t.Fatalf("expired hash still flagged: %+v", found)
	}
}

func TestBurstDetected(t *testing.T) {
	d := NewAnomalyDetector(AnomalyDetectorConfig{BurstWindow: 10 * time.Second, BurstLimit: 5})
	base := time.Unix(5000, 0)
	var lastFound []Anomaly
	for i := 0; i < 8; i++ {
		s := cleanSubmission(i)
		s.At = base.Add(time.Duration(i) * time.Second)
		lastFound = d.Observe(s)
	}
	if !hasKind(lastFound, "burst") {
		t.Fatalf("burst not flagged: %+v", lastFound)
	}
	// Spread-out submissions are fine.
	d2 := NewAnomalyDetector(AnomalyDetectorConfig{BurstWindow: 10 * time.Second, BurstLimit: 5})
	for i := 0; i < 8; i++ {
		s := cleanSubmission(i)
		s.At = base.Add(time.Duration(i) * time.Minute)
		if found := d2.Observe(s); hasKind(found, "burst") {
			t.Fatalf("spread stream flagged: %+v", found)
		}
	}
}

func TestConfidenceOutlierDetected(t *testing.T) {
	d := NewAnomalyDetector(AnomalyDetectorConfig{})
	for i := 0; i < 20; i++ {
		d.Observe(cleanSubmission(i))
	}
	odd := cleanSubmission(21)
	odd.Confidence = 0.05
	found := d.Observe(odd)
	if !hasKind(found, "confidence-outlier") {
		t.Fatalf("outlier not flagged: %+v", found)
	}
}

func TestOutlierNeedsHistory(t *testing.T) {
	d := NewAnomalyDetector(AnomalyDetectorConfig{})
	odd := cleanSubmission(0)
	odd.Confidence = 0.01
	if found := d.Observe(odd); hasKind(found, "confidence-outlier") {
		t.Fatal("outlier flagged without history")
	}
}

func TestTeleportDetected(t *testing.T) {
	d := NewAnomalyDetector(AnomalyDetectorConfig{})
	d.Observe(cleanSubmission(0))
	jump := cleanSubmission(1)
	jump.Latitude = 40.71 // Bangalore -> New York
	jump.Longitude = -74.00
	found := d.Observe(jump)
	if !hasKind(found, "teleport") {
		t.Fatalf("teleport not flagged: %+v", found)
	}
}

func TestPenaltyOfEmpty(t *testing.T) {
	if PenaltyOf(nil) != 0 {
		t.Fatal("empty penalty not zero")
	}
}

func TestPenaltyBounds(t *testing.T) {
	d := NewAnomalyDetector(AnomalyDetectorConfig{})
	for i := 0; i < 30; i++ {
		d.Observe(cleanSubmission(i))
	}
	// Stack every detector at once.
	evil := cleanSubmission(31)
	evil.DataHash = cleanSubmission(29).DataHash
	evil.Confidence = 0.01
	evil.Latitude = 0
	evil.Longitude = 0
	found := d.Observe(evil)
	p := PenaltyOf(found)
	if p <= 0 || p > 1 {
		t.Fatalf("penalty %f out of (0,1]", p)
	}
	SortAnomalies(found)
	for i := 1; i < len(found); i++ {
		if found[i].Severity > found[i-1].Severity {
			t.Fatal("not sorted by severity")
		}
	}
}

func hasKind(found []Anomaly, kind string) bool {
	for _, a := range found {
		if a.Kind == kind {
			return true
		}
	}
	return false
}
