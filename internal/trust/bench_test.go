package trust

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkUpdate(b *testing.B) {
	p := DefaultParams()
	s := NewState("src", p, time.Unix(0, 0))
	obs := Observation{Valid: true, CrossValidation: 0.8, At: time.Unix(1, 0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = Update(s, obs, p)
	}
}

func BenchmarkCrossValidate(b *testing.B) {
	at := time.Unix(1000, 0)
	cand := Comparable{Label: "car", Latitude: 12.97, Longitude: 77.59, At: at}
	refs := make([]Comparable, 32)
	for i := range refs {
		refs[i] = Comparable{Label: "car", Latitude: 12.9 + float64(i)*0.001, Longitude: 77.6, At: at.Add(time.Duration(i) * time.Minute)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CrossValidate(cand, refs)
	}
}

func BenchmarkAnomalyObserve(b *testing.B) {
	d := NewAnomalyDetector(AnomalyDetectorConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(Submission{
			At:         time.Unix(int64(i*60), 0),
			Label:      "car",
			Confidence: 0.8,
			Latitude:   12.97,
			Longitude:  77.59,
			DataHash:   fmt.Sprintf("hash-%d", i),
			SizeBytes:  4096,
		})
	}
}
