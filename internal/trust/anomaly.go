package trust

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// The paper lists "enhancing trust scoring with advanced techniques like
// multi-source consensus and anomaly detection" as future work; this file
// implements that extension: statistical detectors over a source's
// submission stream that flag behaviour a plain outcome-EWMA misses.

// Submission is the feature vector the detectors inspect.
type Submission struct {
	At         time.Time
	Label      string
	Confidence float64
	Latitude   float64
	Longitude  float64
	DataHash   string
	SizeBytes  int
}

// Anomaly is one detector finding.
type Anomaly struct {
	Kind   string
	Detail string
	// Severity in (0, 1]; the trust engine can subtract it from the
	// cross-validation input.
	Severity float64
}

// AnomalyDetectorConfig tunes the detectors.
type AnomalyDetectorConfig struct {
	// Window is how many recent submissions are kept (default 64).
	Window int
	// BurstWindow and BurstLimit flag more than BurstLimit submissions
	// within BurstWindow (defaults: 10 s, 20).
	BurstWindow time.Duration
	BurstLimit  int
	// ZThreshold flags confidence values this many standard deviations
	// from the source's own history (default 3).
	ZThreshold float64
	// TeleportDegrees flags location jumps larger than this between
	// consecutive submissions (default 0.5 ≈ 55 km).
	TeleportDegrees float64
}

func (c *AnomalyDetectorConfig) fill() {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.BurstWindow <= 0 {
		c.BurstWindow = 10 * time.Second
	}
	if c.BurstLimit <= 0 {
		c.BurstLimit = 20
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = 3
	}
	if c.TeleportDegrees <= 0 {
		c.TeleportDegrees = 0.5
	}
}

// AnomalyDetector accumulates one source's submission history and scores
// each new submission. It is not safe for concurrent use; callers hold one
// detector per source.
type AnomalyDetector struct {
	cfg    AnomalyDetectorConfig
	recent []Submission
	hashes map[string]int
}

// NewAnomalyDetector builds a detector.
func NewAnomalyDetector(cfg AnomalyDetectorConfig) *AnomalyDetector {
	cfg.fill()
	return &AnomalyDetector{cfg: cfg, hashes: make(map[string]int)}
}

// Observe scores a submission against the source's history, then folds it
// into the history. It returns all anomalies found (empty = clean).
func (d *AnomalyDetector) Observe(s Submission) []Anomaly {
	var out []Anomaly
	if a, ok := d.checkDuplicateHash(s); ok {
		out = append(out, a)
	}
	if a, ok := d.checkBurst(s); ok {
		out = append(out, a)
	}
	if a, ok := d.checkConfidenceOutlier(s); ok {
		out = append(out, a)
	}
	if a, ok := d.checkTeleport(s); ok {
		out = append(out, a)
	}
	d.push(s)
	return out
}

func (d *AnomalyDetector) push(s Submission) {
	d.recent = append(d.recent, s)
	d.hashes[s.DataHash]++
	if len(d.recent) > d.cfg.Window {
		evicted := d.recent[0]
		d.recent = d.recent[1:]
		if n := d.hashes[evicted.DataHash]; n <= 1 {
			delete(d.hashes, evicted.DataHash)
		} else {
			d.hashes[evicted.DataHash] = n - 1
		}
	}
}

// checkDuplicateHash flags replayed payloads: the same content hash
// submitted repeatedly (a cheap way to farm trust).
func (d *AnomalyDetector) checkDuplicateHash(s Submission) (Anomaly, bool) {
	if n := d.hashes[s.DataHash]; n > 0 {
		return Anomaly{
			Kind:     "duplicate-payload",
			Detail:   fmt.Sprintf("hash %.12s already submitted %d time(s) in window", s.DataHash, n),
			Severity: math.Min(1, 0.3+0.2*float64(n)),
		}, true
	}
	return Anomaly{}, false
}

// checkBurst flags submission floods.
func (d *AnomalyDetector) checkBurst(s Submission) (Anomaly, bool) {
	cutoff := s.At.Add(-d.cfg.BurstWindow)
	count := 0
	for i := len(d.recent) - 1; i >= 0; i-- {
		if d.recent[i].At.Before(cutoff) {
			break
		}
		count++
	}
	if count >= d.cfg.BurstLimit {
		return Anomaly{
			Kind:     "burst",
			Detail:   fmt.Sprintf("%d submissions within %v", count+1, d.cfg.BurstWindow),
			Severity: 0.5,
		}, true
	}
	return Anomaly{}, false
}

// checkConfidenceOutlier flags confidence values wildly inconsistent with
// the source's own history (fabricated detections tend to cluster at
// implausible extremes).
func (d *AnomalyDetector) checkConfidenceOutlier(s Submission) (Anomaly, bool) {
	if len(d.recent) < 8 {
		return Anomaly{}, false
	}
	var sum, sumSq float64
	for _, r := range d.recent {
		sum += r.Confidence
		sumSq += r.Confidence * r.Confidence
	}
	n := float64(len(d.recent))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 1e-6 {
		variance = 1e-6
	}
	z := math.Abs(s.Confidence-mean) / math.Sqrt(variance)
	if z > d.cfg.ZThreshold {
		return Anomaly{
			Kind:     "confidence-outlier",
			Detail:   fmt.Sprintf("confidence %.3f is %.1fσ from source mean %.3f", s.Confidence, z, mean),
			Severity: math.Min(1, z/(4*d.cfg.ZThreshold)+0.25),
		}, true
	}
	return Anomaly{}, false
}

// checkTeleport flags physically impossible location jumps between
// consecutive submissions.
func (d *AnomalyDetector) checkTeleport(s Submission) (Anomaly, bool) {
	if len(d.recent) == 0 {
		return Anomaly{}, false
	}
	last := d.recent[len(d.recent)-1]
	dlat := s.Latitude - last.Latitude
	dlon := s.Longitude - last.Longitude
	dist := math.Sqrt(dlat*dlat + dlon*dlon)
	if dist > d.cfg.TeleportDegrees {
		return Anomaly{
			Kind:     "teleport",
			Detail:   fmt.Sprintf("moved %.2f° since previous submission", dist),
			Severity: 0.6,
		}, true
	}
	return Anomaly{}, false
}

// PenaltyOf collapses a finding set into a single cross-validation penalty
// in [0, 1]: the maximum severity (anomalies do not stack linearly; one
// conclusive finding is enough).
func PenaltyOf(found []Anomaly) float64 {
	p := 0.0
	for _, a := range found {
		if a.Severity > p {
			p = a.Severity
		}
	}
	return p
}

// SortAnomalies orders findings by descending severity for reporting.
func SortAnomalies(found []Anomaly) {
	sort.Slice(found, func(i, j int) bool { return found[i].Severity > found[j].Severity })
}
