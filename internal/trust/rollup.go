package trust

import (
	"sort"
	"time"
)

// GlobalView is a point-in-time roll-up of per-channel trust state into one
// deployment-wide picture. On a sharded ledger each source's score lives
// only on its home channel; administrators still want a single answer to
// "who is flagged?" and "what does the population look like?", so the
// framework periodically lists every channel's scores and merges them here.
type GlobalView struct {
	// States holds every source's freshest state, sorted by SourceID. A
	// source appearing on several channels (possible only through
	// deprecated non-routed writes) keeps the newest UpdatedAt.
	States []State
	// Sources is len(States).
	Sources int
	// Flagged counts sources currently below the flag threshold.
	Flagged int
	// MeanScore averages the combined score over all sources (0 when none).
	MeanScore float64
	// Channels is how many per-channel score lists were merged.
	Channels int
	// RolledAt stamps when the roll-up was taken.
	RolledAt time.Time
}

// Rollup merges per-channel score lists (one slice per channel, as returned
// by the trust chaincode's listScores) into a GlobalView taken at now.
func Rollup(perChannel [][]State, now time.Time) GlobalView {
	freshest := make(map[string]State)
	for _, states := range perChannel {
		for _, st := range states {
			if prev, ok := freshest[st.SourceID]; !ok || st.UpdatedAt.After(prev.UpdatedAt) {
				freshest[st.SourceID] = st
			}
		}
	}
	view := GlobalView{Channels: len(perChannel), RolledAt: now}
	view.States = make([]State, 0, len(freshest))
	for _, st := range freshest {
		view.States = append(view.States, st)
	}
	sort.Slice(view.States, func(i, j int) bool { return view.States[i].SourceID < view.States[j].SourceID })
	view.Sources = len(view.States)
	var sum float64
	for _, st := range view.States {
		sum += st.Score
		if st.Flagged {
			view.Flagged++
		}
	}
	if view.Sources > 0 {
		view.MeanScore = sum / float64(view.Sources)
	}
	return view
}

// Lookup returns the rolled-up state of one source.
func (v *GlobalView) Lookup(sourceID string) (State, bool) {
	i := sort.Search(len(v.States), func(i int) bool { return v.States[i].SourceID >= sourceID })
	if i < len(v.States) && v.States[i].SourceID == sourceID {
		return v.States[i], true
	}
	return State{}, false
}
