package trust

import (
	"testing"
	"time"
)

func rollupState(id string, score float64, flagged bool, updated time.Time) State {
	return State{SourceID: id, Score: score, Flagged: flagged, UpdatedAt: updated}
}

func TestRollupMergesChannelsSorted(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	view := Rollup([][]State{
		{rollupState("city/cam-002", 0.9, false, now), rollupState("city/cam-000", 0.2, true, now)},
		{rollupState("city/cam-001", 0.7, false, now)},
		{}, // idle channel
	}, now)

	if view.Channels != 3 {
		t.Fatalf("Channels = %d, want 3", view.Channels)
	}
	if view.Sources != 3 || len(view.States) != 3 {
		t.Fatalf("Sources = %d (len %d), want 3", view.Sources, len(view.States))
	}
	for i, want := range []string{"city/cam-000", "city/cam-001", "city/cam-002"} {
		if view.States[i].SourceID != want {
			t.Fatalf("States[%d] = %q, want %q (sorted by SourceID)", i, view.States[i].SourceID, want)
		}
	}
	if view.Flagged != 1 {
		t.Fatalf("Flagged = %d, want 1", view.Flagged)
	}
	if want := (0.9 + 0.2 + 0.7) / 3; view.MeanScore != want {
		t.Fatalf("MeanScore = %v, want %v", view.MeanScore, want)
	}
	if !view.RolledAt.Equal(now) {
		t.Fatalf("RolledAt = %v, want %v", view.RolledAt, now)
	}
}

// TestRollupFreshestWins pins the merge rule for a source appearing on
// several channels (possible only through deprecated non-routed writes):
// the state with the newest UpdatedAt is kept, regardless of channel order.
func TestRollupFreshestWins(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	stale := rollupState("gov/admin", 0.3, true, now.Add(-time.Hour))
	fresh := rollupState("gov/admin", 0.8, false, now)

	for _, perChannel := range [][][]State{
		{{stale}, {fresh}},
		{{fresh}, {stale}},
	} {
		view := Rollup(perChannel, now)
		if view.Sources != 1 {
			t.Fatalf("Sources = %d, want 1 (duplicate source merged)", view.Sources)
		}
		got, ok := view.Lookup("gov/admin")
		if !ok {
			t.Fatal("Lookup missed the merged source")
		}
		if got.Score != fresh.Score || got.Flagged != fresh.Flagged {
			t.Fatalf("merged state = %+v, want the freshest %+v", got, fresh)
		}
		if view.Flagged != 0 {
			t.Fatalf("Flagged = %d, want 0 (stale flag must not survive)", view.Flagged)
		}
	}
}

func TestRollupEmpty(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	view := Rollup(nil, now)
	if view.Sources != 0 || view.Flagged != 0 || view.MeanScore != 0 {
		t.Fatalf("empty rollup = %+v, want zero aggregates", view)
	}
	if _, ok := view.Lookup("anyone"); ok {
		t.Fatal("Lookup on empty view returned a state")
	}
}

func TestGlobalViewLookup(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	view := Rollup([][]State{{
		rollupState("a/1", 0.5, false, now),
		rollupState("b/2", 0.6, false, now),
		rollupState("c/3", 0.7, false, now),
	}}, now)
	for _, id := range []string{"a/1", "b/2", "c/3"} {
		st, ok := view.Lookup(id)
		if !ok || st.SourceID != id {
			t.Fatalf("Lookup(%q) = %+v, %v", id, st, ok)
		}
	}
	if _, ok := view.Lookup("b/0"); ok {
		t.Fatal("Lookup matched a missing source")
	}
}
