// Package trust implements the paper's trust-score mechanism for untrusted
// sources (§III-A): historical reliability tracked as an exponentially
// weighted moving average of submission outcomes, combined with
// cross-validation against trusted data. Scores live on-chain (the trust
// chaincode persists State values); this package provides the pure,
// deterministic score arithmetic so every endorser computes identical
// updates.
package trust

import (
	"encoding/json"
	"fmt"
	"time"
)

// Params tune the scoring model.
type Params struct {
	// InitialScore is assigned to a source on first contact (default 0.5).
	InitialScore float64 `json:"initial_score"`
	// HistoryWeight is the EWMA weight of the newest outcome (default 0.2):
	// higher reacts faster, lower remembers longer.
	HistoryWeight float64 `json:"history_weight"`
	// CrossWeight balances cross-validation against historical reliability
	// in the combined score (default 0.4).
	CrossWeight float64 `json:"cross_weight"`
	// MinTrusted is the score gate for accepting untrusted-source data
	// (default 0.3).
	MinTrusted float64 `json:"min_trusted"`
	// FlagThreshold marks a source as flagged below this score
	// (default 0.15).
	FlagThreshold float64 `json:"flag_threshold"`
}

// DefaultParams returns the model defaults.
func DefaultParams() Params {
	return Params{
		InitialScore:  0.5,
		HistoryWeight: 0.2,
		CrossWeight:   0.4,
		MinTrusted:    0.3,
		FlagThreshold: 0.15,
	}
}

// State is one source's on-chain trust record.
type State struct {
	SourceID string `json:"source_id"`
	// Historical is the EWMA of outcome history (1 = always valid).
	Historical float64 `json:"historical"`
	// Cross is the EWMA of cross-validation agreement with trusted data.
	Cross float64 `json:"cross"`
	// Score is the combined score used for gating.
	Score       float64   `json:"score"`
	Submissions int       `json:"submissions"`
	Accepted    int       `json:"accepted"`
	Rejected    int       `json:"rejected"`
	Flagged     bool      `json:"flagged"`
	UpdatedAt   time.Time `json:"updated_at"`
}

// NewState initialises a source's record.
func NewState(sourceID string, p Params, now time.Time) State {
	return State{
		SourceID:   sourceID,
		Historical: p.InitialScore,
		Cross:      p.InitialScore,
		Score:      p.InitialScore,
		UpdatedAt:  now,
	}
}

// Observation is one scored submission.
type Observation struct {
	// Valid is whether the submission passed validation (schema + source
	// authentication + hash integrity).
	Valid bool `json:"valid"`
	// CrossValidation in [0,1] measures agreement with trusted sources
	// covering the same scene/time; 0.5 means "no corroboration available".
	CrossValidation float64   `json:"cross_validation"`
	At              time.Time `json:"at"`
}

// Update folds an observation into a state, returning the new state. It is
// a pure function: identical inputs yield identical outputs on every
// endorser.
func Update(s State, obs Observation, p Params) State {
	outcome := 0.0
	if obs.Valid {
		outcome = 1.0
	}
	cv := clamp01(obs.CrossValidation)

	s.Historical = (1-p.HistoryWeight)*s.Historical + p.HistoryWeight*outcome
	s.Cross = (1-p.HistoryWeight)*s.Cross + p.HistoryWeight*cv
	s.Score = (1-p.CrossWeight)*s.Historical + p.CrossWeight*s.Cross
	s.Submissions++
	if obs.Valid {
		s.Accepted++
	} else {
		s.Rejected++
	}
	s.Flagged = s.Score < p.FlagThreshold
	s.UpdatedAt = obs.At
	return s
}

// Trusted reports whether the source's score passes the acceptance gate.
func Trusted(s State, p Params) bool { return s.Score >= p.MinTrusted }

// Marshal serialises a state for on-chain storage.
func (s State) Marshal() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic("trust: state marshal: " + err.Error())
	}
	return b
}

// UnmarshalState parses an on-chain trust record.
func UnmarshalState(b []byte) (State, error) {
	var s State
	if err := json.Unmarshal(b, &s); err != nil {
		return State{}, fmt.Errorf("trust: unmarshal state: %w", err)
	}
	return s, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// CrossValidate scores how well a submission agrees with trusted
// observations of the same scene: label agreement plus temporal and spatial
// proximity. Each trusted record contributes a similarity in [0,1]; the
// result is the best match, or 0.5 (neutral) when nothing is comparable.
type Comparable struct {
	Label     string
	Latitude  float64
	Longitude float64
	At        time.Time
}

// CrossValidate compares a candidate against trusted references.
func CrossValidate(candidate Comparable, trusted []Comparable) float64 {
	if len(trusted) == 0 {
		return 0.5
	}
	best := 0.0
	for _, ref := range trusted {
		s := similarity(candidate, ref)
		if s > best {
			best = s
		}
	}
	return best
}

func similarity(a, b Comparable) float64 {
	s := 0.0
	if a.Label == b.Label {
		s += 0.5
	}
	// Temporal proximity: full credit within 1 minute, fading to zero at 10.
	dt := a.At.Sub(b.At)
	if dt < 0 {
		dt = -dt
	}
	switch {
	case dt <= time.Minute:
		s += 0.25
	case dt <= 10*time.Minute:
		s += 0.25 * (1 - float64(dt-time.Minute)/float64(9*time.Minute))
	}
	// Spatial proximity: ~0.01 degrees (~1.1 km) for full credit.
	dlat := a.Latitude - b.Latitude
	dlon := a.Longitude - b.Longitude
	d2 := dlat*dlat + dlon*dlon
	switch {
	case d2 <= 0.0001*0.0001:
		s += 0.25
	case d2 <= 0.01*0.01:
		s += 0.25 * (1 - d2/(0.01*0.01))
	}
	return clamp01(s)
}
