package trust

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewStateDefaults(t *testing.T) {
	p := DefaultParams()
	s := NewState("crowd/bob", p, time.Unix(0, 0))
	if s.Score != p.InitialScore || s.Historical != p.InitialScore {
		t.Fatalf("initial state %+v", s)
	}
	if !Trusted(s, p) {
		t.Fatal("initial score should pass the gate")
	}
}

func TestValidObservationsRaiseScore(t *testing.T) {
	p := DefaultParams()
	s := NewState("src", p, time.Unix(0, 0))
	for i := 0; i < 10; i++ {
		s = Update(s, Observation{Valid: true, CrossValidation: 0.9, At: time.Unix(int64(i), 0)}, p)
	}
	if s.Score <= p.InitialScore {
		t.Fatalf("score %f did not rise", s.Score)
	}
	if s.Accepted != 10 || s.Rejected != 0 || s.Submissions != 10 {
		t.Fatalf("counters %+v", s)
	}
}

func TestInvalidObservationsLowerScoreAndFlag(t *testing.T) {
	p := DefaultParams()
	s := NewState("src", p, time.Unix(0, 0))
	for i := 0; i < 20; i++ {
		s = Update(s, Observation{Valid: false, CrossValidation: 0, At: time.Unix(int64(i), 0)}, p)
	}
	if s.Score >= p.MinTrusted {
		t.Fatalf("score %f still above gate", s.Score)
	}
	if !s.Flagged {
		t.Fatal("persistently dishonest source not flagged")
	}
	if Trusted(s, p) {
		t.Fatal("flagged source passes gate")
	}
}

func TestRecoveryAfterViolations(t *testing.T) {
	p := DefaultParams()
	s := NewState("src", p, time.Unix(0, 0))
	for i := 0; i < 5; i++ {
		s = Update(s, Observation{Valid: false, CrossValidation: 0}, p)
	}
	low := s.Score
	for i := 0; i < 30; i++ {
		s = Update(s, Observation{Valid: true, CrossValidation: 1}, p)
	}
	if s.Score <= low {
		t.Fatal("honest behaviour does not recover the score")
	}
	if !Trusted(s, p) {
		t.Fatal("recovered source still gated")
	}
}

func TestScoreBoundsProperty(t *testing.T) {
	p := DefaultParams()
	err := quick.Check(func(outcomes []bool, cvs []float64) bool {
		s := NewState("src", p, time.Unix(0, 0))
		for i, valid := range outcomes {
			cv := 0.5
			if i < len(cvs) {
				cv = cvs[i]
			}
			s = Update(s, Observation{Valid: valid, CrossValidation: cv}, p)
			if s.Score < 0 || s.Score > 1 || s.Historical < 0 || s.Historical > 1 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUpdatePure(t *testing.T) {
	p := DefaultParams()
	s := NewState("src", p, time.Unix(0, 0))
	obs := Observation{Valid: true, CrossValidation: 0.7, At: time.Unix(9, 0)}
	a := Update(s, obs, p)
	b := Update(s, obs, p)
	if a != b {
		t.Fatal("Update is not deterministic")
	}
	if s.Submissions != 0 {
		t.Fatal("Update mutated its input")
	}
}

func TestStateMarshalRoundTrip(t *testing.T) {
	p := DefaultParams()
	s := NewState("org/cam", p, time.Unix(42, 0).UTC())
	s = Update(s, Observation{Valid: true, CrossValidation: 0.8, At: time.Unix(43, 0).UTC()}, p)
	got, err := UnmarshalState(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, s)
	}
}

func TestUnmarshalStateRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalState([]byte("not-json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCrossValidateNeutralWithoutRefs(t *testing.T) {
	got := CrossValidate(Comparable{Label: "car"}, nil)
	if got != 0.5 {
		t.Fatalf("no-refs cross validation = %f, want 0.5", got)
	}
}

func TestCrossValidatePerfectMatch(t *testing.T) {
	at := time.Unix(1000, 0)
	cand := Comparable{Label: "truck", Latitude: 12.97, Longitude: 77.59, At: at}
	refs := []Comparable{{Label: "truck", Latitude: 12.97, Longitude: 77.59, At: at}}
	if got := CrossValidate(cand, refs); got != 1.0 {
		t.Fatalf("perfect match = %f", got)
	}
}

func TestCrossValidateDisagreement(t *testing.T) {
	at := time.Unix(1000, 0)
	cand := Comparable{Label: "truck", Latitude: 12.97, Longitude: 77.59, At: at}
	refs := []Comparable{{Label: "bus", Latitude: 40.7, Longitude: -74.0, At: at.Add(2 * time.Hour)}}
	if got := CrossValidate(cand, refs); got != 0 {
		t.Fatalf("total disagreement = %f, want 0", got)
	}
}

func TestCrossValidatePicksBestReference(t *testing.T) {
	at := time.Unix(1000, 0)
	cand := Comparable{Label: "car", Latitude: 12.97, Longitude: 77.59, At: at}
	refs := []Comparable{
		{Label: "bus", Latitude: 0, Longitude: 0, At: at.Add(time.Hour)},               // bad
		{Label: "car", Latitude: 12.97, Longitude: 77.59, At: at},                      // perfect
		{Label: "car", Latitude: 12.99, Longitude: 77.61, At: at.Add(5 * time.Minute)}, // partial
	}
	if got := CrossValidate(cand, refs); got != 1.0 {
		t.Fatalf("best-of = %f", got)
	}
}

func TestCrossValidateMonotoneInTime(t *testing.T) {
	at := time.Unix(10000, 0)
	ref := []Comparable{{Label: "car", Latitude: 1, Longitude: 1, At: at}}
	prev := 2.0
	for _, dt := range []time.Duration{0, time.Minute, 3 * time.Minute, 8 * time.Minute, 20 * time.Minute} {
		cand := Comparable{Label: "car", Latitude: 1, Longitude: 1, At: at.Add(dt)}
		got := CrossValidate(cand, ref)
		if got > prev {
			t.Fatalf("similarity rose with temporal distance at %v", dt)
		}
		prev = got
	}
}

func TestObservationClampsCrossValidation(t *testing.T) {
	p := DefaultParams()
	s := NewState("src", p, time.Unix(0, 0))
	s = Update(s, Observation{Valid: true, CrossValidation: 99}, p)
	if s.Cross > 1 {
		t.Fatalf("cross EWMA %f exceeded 1", s.Cross)
	}
	s = Update(s, Observation{Valid: true, CrossValidation: -7}, p)
	if s.Cross < 0 {
		t.Fatalf("cross EWMA %f below 0", s.Cross)
	}
}
