package storage

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// benchEngines pairs each engine constructor with its label so every
// benchmark compares single-lock vs sharded vs the LSM persist engine vs
// the map-plus-WAL baseline under identical workloads.
var benchEngines = []struct {
	name string
	open func(tb testing.TB) KV
}{
	{"single", func(testing.TB) KV { return NewSingle() }},
	{"sharded", func(testing.TB) KV { return NewSharded(0) }},
	{"persist", func(tb testing.TB) KV {
		p, err := OpenPersist(Config{Dir: tb.TempDir()})
		if err != nil {
			tb.Fatalf("open persist: %v", err)
		}
		return p
	}},
	{"mapwal", func(tb testing.TB) KV {
		p, err := OpenMapWAL(Config{Dir: tb.TempDir()})
		if err != nil {
			tb.Fatalf("open mapwal: %v", err)
		}
		return p
	}},
}

// benchKeys precomputes the key space so key formatting never pollutes the
// measured engine cost.
func benchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("data\x00rec/%06d", i)
	}
	return keys
}

func seedKV(kv KV, keys []string) {
	batch := make([]Write, 0, len(keys))
	for i, k := range keys {
		batch = append(batch, Write{Key: k, Value: []byte(fmt.Sprintf(`{"label":"car","idx":%d}`, i))})
	}
	kv.ApplyBatch(batch)
}

// BenchmarkGet measures uncontended point reads per engine.
func BenchmarkGet(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			kv := e.open(b)
			keys := benchKeys(10000)
			seedKV(kv, keys)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kv.Get(keys[(i*31)%len(keys)])
			}
		})
	}
}

// BenchmarkApplyBatch measures block-style batched commits per engine.
func BenchmarkApplyBatch(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			kv := e.open(b)
			keys := benchKeys(10000)
			val := []byte("value")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := make([]Write, 0, 10)
				for j := 0; j < 10; j++ {
					batch = append(batch, Write{Key: keys[(i*10+j)%len(keys)], Value: val})
				}
				kv.ApplyBatch(batch)
			}
		})
	}
}

// BenchmarkIterPrefix measures sorted prefix scans per engine.
func BenchmarkIterPrefix(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			kv := e.open(b)
			keys := benchKeys(10000)
			seedKV(kv, keys)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				kv.IterPrefix("data\x00rec/001", func(string, []byte) bool {
					n++
					return true
				})
				if n != 1000 {
					b.Fatalf("scan saw %d keys", n)
				}
			}
		})
	}
}

// BenchmarkParallelGet measures contended point reads: every goroutine
// reads a shared hot key space. The sharded engine stripes the RLock
// traffic across independent cache lines; the single engine serialises
// ownership of one lock word. (On a single-CPU host the engines tie —
// there is no parallelism for striping to reclaim.)
func BenchmarkParallelGet(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			kv := e.open(b)
			keys := benchKeys(10000)
			seedKV(kv, keys)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					kv.Get(keys[(i*31)%len(keys)])
					i++
				}
			})
		})
	}
}

// BenchmarkParallelMixedReadCommit is the engine-comparison workload the
// storage refactor targets: concurrent clients read the world state while
// block commits land underneath them — the regime of the paper's
// multi-client store/retrieve evaluation. One in every 16 operations is a
// 10-write block commit; the rest are point reads. On a multi-core host
// the sharded engine's ops/sec pulls well clear of the single lock, whose
// every commit stalls every reader; on a single-CPU host the run only
// measures per-op overhead (see EXPERIMENTS.md).
func BenchmarkParallelMixedReadCommit(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			kv := e.open(b)
			keys := benchKeys(10000)
			seedKV(kv, keys)
			val := []byte(`{"label":"car","block":1}`)
			var blockNum atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if i%16 == 15 {
						n := int(blockNum.Add(1))
						batch := make([]Write, 0, 10)
						for j := 0; j < 10; j++ {
							batch = append(batch, Write{Key: keys[(n*10+j)%len(keys)], Value: val})
						}
						kv.ApplyBatch(batch)
					} else {
						kv.Get(keys[(i*31)%len(keys)])
					}
					i++
				}
			})
		})
	}
}
