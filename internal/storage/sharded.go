package storage

// The sharded engine stripes the key space over N independently locked
// maps. Point reads and writes touch exactly one stripe, so reads from
// concurrent clients no longer serialise behind a committing block — the
// contention profile the paper's concurrent store/retrieve evaluation
// stresses. Batched commits group writes by stripe and take each stripe
// lock exactly once per block.

import "sync"

// shard is one lock stripe. The pad keeps neighbouring stripes off one
// cache line so uncontended locks do not false-share.
type shard struct {
	mu   sync.RWMutex
	data map[string][]byte
	_    [24]byte
}

// Sharded is the lock-striped engine.
type Sharded struct {
	shards []shard
	mask   uint64
}

// maxShards caps the stripe count; it bounds the stack bitmap ApplyBatch
// uses to visit each touched stripe exactly once.
const maxShards = 1024

// NewSharded returns an empty sharded engine with n stripes, rounded up to
// a power of two (n <= 0 selects DefaultShards; n > 1024 is clamped).
func NewSharded(n int) *Sharded {
	if n <= 0 {
		n = DefaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Sharded{shards: make([]shard, size), mask: uint64(size - 1)}
	for i := range s.shards {
		s.shards[i].data = make(map[string][]byte)
	}
	return s
}

// fnv1a64 hashes a key (FNV-1a, inlined to avoid a hash.Hash allocation on
// every access).
func fnv1a64(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

func (s *Sharded) shardFor(key string) *shard {
	return &s.shards[fnv1a64(key)&s.mask]
}

// Get implements KV.
func (s *Sharded) Get(key string) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, ok := sh.data[key]
	return v, ok
}

// Put implements KV.
func (s *Sharded) Put(key string, value []byte) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, existed := sh.data[key]
	sh.data[key] = value
	return !existed
}

// Delete implements KV.
func (s *Sharded) Delete(key string) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.data[key]
	if ok {
		delete(sh.data, key)
	}
	return v, ok
}

// IterPrefix implements KV: each stripe is read-locked in turn while its
// matches are collected, the union is sorted, and fn runs lock-free. The
// view is per-stripe consistent but NOT a cross-stripe point-in-time
// snapshot: a batch committing concurrently may appear in the stripes
// collected after it touched them and be absent from those collected
// before — weaker than the seed's global lock, which excluded scans for
// whole commits. The layers above tolerate this by construction: the
// world state records every read's version and MVCC validation at commit
// rejects transactions whose reads a concurrent block invalidated, and
// peers snapshot for state-equality only at quiesced heights.
func (s *Sharded) IterPrefix(prefix string, fn func(key string, value []byte) bool) {
	var entries []entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		entries = collectPrefix(sh.data, prefix, entries)
		sh.mu.RUnlock()
	}
	sortEntries(entries)
	for _, e := range entries {
		if !fn(e.key, e.value) {
			return
		}
	}
}

// ApplyBatch implements KV: writes are grouped by stripe, then each
// touched stripe is locked exactly once and its group applied in batch
// order, so a block commit costs at most one lock acquisition per stripe
// regardless of how many transactions it carries. Stripe indices live in a
// stack buffer for block-sized batches, keeping the commit path
// allocation-free.
func (s *Sharded) ApplyBatch(writes []Write) {
	if len(writes) == 0 {
		return
	}
	var idxBuf [128]uint16
	idxs := idxBuf[:0]
	if len(writes) > len(idxBuf) {
		idxs = make([]uint16, 0, len(writes))
	}
	for i := range writes {
		idxs = append(idxs, uint16(fnv1a64(writes[i].Key)&s.mask))
	}
	var done [maxShards / 64]uint64 // stripes already applied
	for i, idx := range idxs {
		if done[idx>>6]&(1<<(idx&63)) != 0 {
			continue
		}
		done[idx>>6] |= 1 << (idx & 63)
		sh := &s.shards[idx]
		sh.mu.Lock()
		for j := i; j < len(writes); j++ {
			if idxs[j] != idx {
				continue
			}
			if writes[j].Delete {
				delete(sh.data, writes[j].Key)
				continue
			}
			sh.data[writes[j].Key] = writes[j].Value
		}
		sh.mu.Unlock()
	}
}

// Sync implements KV; the in-memory engine has nothing to flush.
func (s *Sharded) Sync() error { return nil }

// Close implements KV; the in-memory engine holds no resources.
func (s *Sharded) Close() error { return nil }

// Len implements KV.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.data)
		sh.mu.RUnlock()
	}
	return n
}
