package storage

// The manifest is the LSM engine's root pointer: a single walframe-framed
// file naming the live SSTables level by level, the lowest WAL file whose
// writes are not yet covered by a table, the next file number, and the
// persisted live-key count. It is rewritten atomically (temp file, fsync,
// rename, directory fsync) on every flush and compaction, so a crash at
// any instant leaves either the old manifest or the new one — never a
// torn root. Files on disk that the manifest does not reference are
// orphans of an interrupted flush/compaction and are deleted at open;
// files it references but that are missing or corrupt are a hard error.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"socialchain/internal/walframe"
)

const (
	manifestName  = "MANIFEST"
	manifestMagic = "LSM1"
)

// manifestData is the decoded manifest.
type manifestData struct {
	// nextFile is the next SSTable file number (WAL files number
	// contiguously on their own counter).
	nextFile uint64
	// walMin is the lowest WAL file index whose records are NOT covered by
	// the tables below; recovery replays wal files with idx >= walMin.
	walMin uint64
	// base is the live-key count of the state the tables represent, so
	// Len() is exact after reopen without merging every run.
	base uint64
	// levels lists table file numbers per level, newest first within a
	// level — the search order.
	levels [][]uint64
}

func manifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// writeManifest atomically replaces dir's manifest.
func writeManifest(dir string, m manifestData) error {
	payload := make([]byte, 0, 64)
	payload = append(payload, manifestMagic...)
	payload = binary.AppendUvarint(payload, m.nextFile)
	payload = binary.AppendUvarint(payload, m.walMin)
	payload = binary.AppendUvarint(payload, m.base)
	payload = binary.AppendUvarint(payload, uint64(len(m.levels)))
	for _, lvl := range m.levels {
		payload = binary.AppendUvarint(payload, uint64(len(lvl)))
		for _, fileNo := range lvl {
			payload = binary.AppendUvarint(payload, fileNo)
		}
	}
	frame := make([]byte, walframe.HeaderLen, walframe.HeaderLen+len(payload))
	frame = append(frame, payload...)
	walframe.Seal(frame)

	tmp := manifestPath(dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: manifest tmp: %w", err)
	}
	_, err = f.Write(frame)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("storage: manifest write: %w", err)
	}
	if err := os.Rename(tmp, manifestPath(dir)); err != nil {
		return fmt.Errorf("storage: manifest rename: %w", err)
	}
	// fsync the directory so the rename itself survives power loss.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// readManifest loads dir's manifest; ok is false when none exists.
// Because the manifest is always replaced atomically, any framing or
// decode failure is real corruption and a hard error.
func readManifest(dir string) (m manifestData, ok bool, err error) {
	data, rerr := os.ReadFile(manifestPath(dir))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return manifestData{}, false, nil
		}
		return manifestData{}, false, fmt.Errorf("storage: manifest read: %w", rerr)
	}
	payload, next, perr := walframe.Next(data, 0)
	if perr != nil || next != len(data) {
		return manifestData{}, false, fmt.Errorf("storage: manifest %s corrupt: %v", manifestPath(dir), perr)
	}
	bad := func(what string) error {
		return fmt.Errorf("storage: manifest %s corrupt: %s", manifestPath(dir), what)
	}
	if len(payload) < 4 || string(payload[:4]) != manifestMagic {
		return manifestData{}, false, bad("bad magic")
	}
	payload = payload[4:]
	read := func() (uint64, bool) {
		v, w := binary.Uvarint(payload)
		if w <= 0 {
			return 0, false
		}
		payload = payload[w:]
		return v, true
	}
	var v uint64
	if m.nextFile, ok = read(); !ok {
		return manifestData{}, false, bad("next file")
	}
	if m.walMin, ok = read(); !ok {
		return manifestData{}, false, bad("wal min")
	}
	if m.base, ok = read(); !ok {
		return manifestData{}, false, bad("base count")
	}
	nlevels, ok := read()
	if !ok {
		return manifestData{}, false, bad("level count")
	}
	m.levels = make([][]uint64, nlevels)
	for i := range m.levels {
		ntables, ok := read()
		if !ok {
			return manifestData{}, false, bad("table count")
		}
		m.levels[i] = make([]uint64, 0, ntables)
		for j := uint64(0); j < ntables; j++ {
			if v, ok = read(); !ok {
				return manifestData{}, false, bad("table file number")
			}
			m.levels[i] = append(m.levels[i], v)
		}
	}
	if len(payload) != 0 {
		return manifestData{}, false, bad("trailing bytes")
	}
	return m, true, nil
}
