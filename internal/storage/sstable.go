package storage

// SSTables are the LSM engine's immutable sorted runs. One file is a
// sequence of walframe-framed blocks — the same [len][CRC][payload]
// framing as the WAL, so every byte read back from disk is checksummed:
//
//	[data block]...[data block][index block][bloom block][footer]
//
// Data block payload: entries in ascending key order, each an op byte
// (0 put, 1 tombstone), uvarint key length, key bytes and, for puts,
// uvarint value length plus value bytes. Blocks are cut at ~4 KiB so a
// point lookup reads one block, not the file.
//
// Index block payload: uvarint block count, then per block uvarint file
// offset, uvarint framed length and uvarint first-key length + key; then
// the table's key-range fences (uvarint min-key length + bytes, uvarint
// max-key length + bytes) and uvarint total entry count. The index is
// small and loaded eagerly at open; data blocks are read lazily.
//
// Bloom block payload: the serialised filter over every key in the table
// (see bloom.go), or empty when filters are disabled.
//
// Footer: a fixed-size frame closing the file — magic "SST1", a version
// byte, and the index and bloom block offsets as 8-byte big-endian —
// read first at open to locate everything else.
//
// Readers never trust unchecked bytes: the footer, index, bloom and
// every data block must pass CRC validation, and the engine turns a
// failed check on the read path into a loud panic rather than serving a
// possibly-wrong value.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"socialchain/internal/walframe"
)

const (
	sstPrefix = "sst-"
	sstSuffix = ".sst"

	sstMagic   = "SST1"
	sstVersion = 1

	// sstFooterLen is the framed footer's total size: HeaderLen + magic(4)
	// + version(1) + indexOff(8) + bloomOff(8).
	sstFooterLen = walframe.HeaderLen + 4 + 1 + 8 + 8

	// blockTargetBytes cuts data blocks once their payload crosses this
	// size; a point lookup then reads ~one block from disk.
	blockTargetBytes = 4 << 10
)

func sstPath(dir string, fileNo uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", sstPrefix, fileNo, sstSuffix))
}

// blockMeta locates one data block inside a table file.
type blockMeta struct {
	off      int64
	length   int // framed length, header included
	firstKey string
}

// table is an open SSTable reader. All fields but the refcount are
// immutable after open; block reads go through pread (ReadAt), so a
// table is safe for concurrent lookups.
//
// Lifetime: refs counts the versions holding the table (see lsm.go). A
// compaction that drops the table from the live version marks it dead;
// when the last version referencing it is released the file is closed
// and, if dead, deleted from disk.
type table struct {
	path   string
	f      *os.File
	fileNo uint64
	blocks []blockMeta
	filter bloomFilter
	minKey string
	maxKey string
	count  int
	size   int64

	refs atomic.Int64
	dead atomic.Bool
}

func (t *table) ref() { t.refs.Add(1) }

func (t *table) unref() {
	if t.refs.Add(-1) == 0 {
		_ = t.f.Close()
		if t.dead.Load() {
			_ = os.Remove(t.path)
		}
	}
}

// openTable opens the table file and eagerly loads footer, index and
// bloom filter (all CRC-validated); data blocks stay on disk.
func openTable(dir string, fileNo uint64) (*table, error) {
	path := sstPath(dir, fileNo)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: sstable %s: %w", path, err)
	}
	t := &table{path: path, f: f, fileNo: fileNo}
	if err := t.load(); err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

func (t *table) load() error {
	st, err := t.f.Stat()
	if err != nil {
		return fmt.Errorf("storage: sstable %s: %w", t.path, err)
	}
	t.size = st.Size()
	if t.size < sstFooterLen {
		return fmt.Errorf("storage: sstable %s: truncated (%d bytes)", t.path, t.size)
	}
	foot := make([]byte, sstFooterLen)
	if _, err := t.f.ReadAt(foot, t.size-sstFooterLen); err != nil {
		return fmt.Errorf("storage: sstable %s footer: %w", t.path, err)
	}
	payload, _, err := walframe.Next(foot, 0)
	if err != nil || len(payload) != sstFooterLen-walframe.HeaderLen {
		return fmt.Errorf("storage: sstable %s footer corrupt: %v", t.path, err)
	}
	if string(payload[:4]) != sstMagic || payload[4] != sstVersion {
		return fmt.Errorf("storage: sstable %s: bad magic/version", t.path)
	}
	indexOff := int64(binary.BigEndian.Uint64(payload[5:13]))
	bloomOff := int64(binary.BigEndian.Uint64(payload[13:21]))
	if indexOff < 0 || bloomOff < indexOff || bloomOff > t.size-sstFooterLen {
		return fmt.Errorf("storage: sstable %s: bad footer offsets", t.path)
	}
	index, err := t.readFrame(indexOff, int(bloomOff-indexOff))
	if err != nil {
		return fmt.Errorf("storage: sstable %s index: %w", t.path, err)
	}
	if err := t.parseIndex(index); err != nil {
		return fmt.Errorf("storage: sstable %s index corrupt: %w", t.path, err)
	}
	bloom, err := t.readFrame(bloomOff, int(t.size-sstFooterLen-bloomOff))
	if err != nil {
		return fmt.Errorf("storage: sstable %s bloom: %w", t.path, err)
	}
	if t.filter, err = decodeBloom(bloom); err != nil {
		return fmt.Errorf("storage: sstable %s bloom corrupt: %w", t.path, err)
	}
	return nil
}

// readFrame preads a framed block spanning [off, off+length) and returns
// its CRC-validated payload.
func (t *table) readFrame(off int64, length int) ([]byte, error) {
	if length < walframe.HeaderLen || off < 0 || off+int64(length) > t.size {
		return nil, fmt.Errorf("bad block bounds [%d,+%d)", off, length)
	}
	buf := make([]byte, length)
	if _, err := t.f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	payload, next, err := walframe.Next(buf, 0)
	if err != nil {
		return nil, err
	}
	if next != length {
		return nil, fmt.Errorf("block at %d: %d trailing bytes", off, length-next)
	}
	return payload, nil
}

func (t *table) parseIndex(data []byte) error {
	readStr := func() (string, bool) {
		n, w := binary.Uvarint(data)
		if w <= 0 || uint64(len(data)-w) < n {
			return "", false
		}
		s := string(data[w : w+int(n)])
		data = data[w+int(n):]
		return s, true
	}
	nblocks, w := binary.Uvarint(data)
	if w <= 0 {
		return fmt.Errorf("block count")
	}
	data = data[w:]
	t.blocks = make([]blockMeta, 0, nblocks)
	for i := uint64(0); i < nblocks; i++ {
		off, w := binary.Uvarint(data)
		if w <= 0 {
			return fmt.Errorf("block %d offset", i)
		}
		data = data[w:]
		length, w := binary.Uvarint(data)
		if w <= 0 {
			return fmt.Errorf("block %d length", i)
		}
		data = data[w:]
		first, ok := readStr()
		if !ok {
			return fmt.Errorf("block %d first key", i)
		}
		t.blocks = append(t.blocks, blockMeta{off: int64(off), length: int(length), firstKey: first})
	}
	var ok bool
	if t.minKey, ok = readStr(); !ok {
		return fmt.Errorf("min key")
	}
	if t.maxKey, ok = readStr(); !ok {
		return fmt.Errorf("max key")
	}
	count, w := binary.Uvarint(data)
	if w <= 0 {
		return fmt.Errorf("entry count")
	}
	if len(data[w:]) != 0 {
		return fmt.Errorf("%d trailing bytes", len(data[w:]))
	}
	t.count = int(count)
	return nil
}

// get looks key up in the table. A bloom-filter miss (useBloom) answers
// without touching disk. The returned value aliases a freshly read block
// buffer. A CRC or decode failure is returned as err — the engine
// escalates it, never serving data past a failed check.
func (t *table) get(key string, useBloom bool, st *lsmStats) (val []byte, tomb, found bool, err error) {
	if len(t.blocks) == 0 || key < t.minKey || key > t.maxKey {
		return nil, false, false, nil
	}
	if useBloom {
		if st != nil {
			st.bloomChecks.Add(1)
		}
		if !t.filter.mayContain(bloomHash(key)) {
			if st != nil {
				st.bloomSkips.Add(1)
			}
			return nil, false, false, nil
		}
	}
	// Last block whose first key <= key.
	i := sort.Search(len(t.blocks), func(i int) bool { return t.blocks[i].firstKey > key }) - 1
	if i < 0 {
		return nil, false, false, nil
	}
	if st != nil {
		st.blockReads.Add(1)
	}
	payload, err := t.readFrame(t.blocks[i].off, t.blocks[i].length)
	if err != nil {
		return nil, false, false, fmt.Errorf("sstable %s block %d: %w", t.path, i, err)
	}
	for pos := 0; pos < len(payload); {
		e, next, derr := decodeBlockEntry(payload, pos)
		if derr != nil {
			return nil, false, false, fmt.Errorf("sstable %s block %d: %w", t.path, i, derr)
		}
		if e.key == key {
			return e.value, e.tomb, true, nil
		}
		if e.key > key {
			break
		}
		pos = next
	}
	return nil, false, false, nil
}

// decodeBlockEntry parses the entry at payload[pos:]. The value aliases
// payload.
func decodeBlockEntry(payload []byte, pos int) (lsmEntry, int, error) {
	if pos >= len(payload) {
		return lsmEntry{}, 0, fmt.Errorf("entry at %d: out of bounds", pos)
	}
	op := payload[pos]
	rest := payload[pos+1:]
	klen, w := binary.Uvarint(rest)
	if w <= 0 || uint64(len(rest)-w) < klen {
		return lsmEntry{}, 0, fmt.Errorf("entry at %d: key length", pos)
	}
	key := string(rest[w : w+int(klen)])
	rest = rest[w+int(klen):]
	consumed := 1 + w + int(klen)
	switch op {
	case opDelete:
		return lsmEntry{key: key, tomb: true}, pos + consumed, nil
	case opPut:
		vlen, w := binary.Uvarint(rest)
		if w <= 0 || uint64(len(rest)-w) < vlen {
			return lsmEntry{}, 0, fmt.Errorf("entry at %d: value length", pos)
		}
		val := rest[w : w+int(vlen) : w+int(vlen)]
		return lsmEntry{key: key, value: val}, pos + consumed + w + int(vlen), nil
	default:
		return lsmEntry{}, 0, fmt.Errorf("entry at %d: op %d", pos, op)
	}
}

// sstWriter streams sorted entries into a new table file.
type sstWriter struct {
	f      *os.File
	path   string
	block  []byte // current data block, header placeholder included
	first  string // first key of the current block
	blocks []blockMeta
	off    int64
	hashes []uint64
	minKey string
	maxKey string
	count  int
}

// newSSTWriter creates sst-<fileNo>.sst (truncating any orphan of a
// crashed earlier run).
func newSSTWriter(dir string, fileNo uint64) (*sstWriter, error) {
	path := sstPath(dir, fileNo)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: sstable create %s: %w", path, err)
	}
	return &sstWriter{f: f, path: path}, nil
}

// add appends one entry; keys must arrive in strictly ascending order.
func (w *sstWriter) add(e lsmEntry, collectHash bool) error {
	if w.count == 0 {
		w.minKey = e.key
	}
	w.maxKey = e.key
	w.count++
	if collectHash {
		w.hashes = append(w.hashes, bloomHash(e.key))
	}
	if len(w.block) == 0 {
		w.block = append(w.block, make([]byte, walframe.HeaderLen)...)
		w.first = e.key
	}
	if e.tomb {
		w.block = append(w.block, opDelete)
		w.block = binary.AppendUvarint(w.block, uint64(len(e.key)))
		w.block = append(w.block, e.key...)
	} else {
		w.block = append(w.block, opPut)
		w.block = binary.AppendUvarint(w.block, uint64(len(e.key)))
		w.block = append(w.block, e.key...)
		w.block = binary.AppendUvarint(w.block, uint64(len(e.value)))
		w.block = append(w.block, e.value...)
	}
	if len(w.block) >= blockTargetBytes {
		return w.cutBlock()
	}
	return nil
}

func (w *sstWriter) cutBlock() error {
	if len(w.block) == 0 {
		return nil
	}
	walframe.Seal(w.block)
	if _, err := w.f.Write(w.block); err != nil {
		return fmt.Errorf("storage: sstable write %s: %w", w.path, err)
	}
	w.blocks = append(w.blocks, blockMeta{off: w.off, length: len(w.block), firstKey: w.first})
	w.off += int64(len(w.block))
	w.block = w.block[:0]
	return nil
}

// writeFrame frames and writes an index/bloom/footer payload.
func (w *sstWriter) writeFrame(payload []byte) error {
	frame := make([]byte, walframe.HeaderLen, walframe.HeaderLen+len(payload))
	frame = append(frame, payload...)
	walframe.Seal(frame)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("storage: sstable write %s: %w", w.path, err)
	}
	w.off += int64(len(frame))
	return nil
}

// finish writes index, bloom and footer, fsyncs and closes the file. The
// caller opens the result with openTable (re-validating everything) or
// deletes it. withBloom selects whether a filter is emitted.
func (w *sstWriter) finish(withBloom bool) error {
	if err := w.cutBlock(); err != nil {
		w.abort()
		return err
	}
	indexOff := w.off
	index := binary.AppendUvarint(nil, uint64(len(w.blocks)))
	for _, b := range w.blocks {
		index = binary.AppendUvarint(index, uint64(b.off))
		index = binary.AppendUvarint(index, uint64(b.length))
		index = binary.AppendUvarint(index, uint64(len(b.firstKey)))
		index = append(index, b.firstKey...)
	}
	index = binary.AppendUvarint(index, uint64(len(w.minKey)))
	index = append(index, w.minKey...)
	index = binary.AppendUvarint(index, uint64(len(w.maxKey)))
	index = append(index, w.maxKey...)
	index = binary.AppendUvarint(index, uint64(w.count))
	if err := w.writeFrame(index); err != nil {
		w.abort()
		return err
	}
	bloomOff := w.off
	var bloom []byte
	if withBloom {
		bloom = buildBloom(w.hashes).encode(nil)
	}
	if err := w.writeFrame(bloom); err != nil {
		w.abort()
		return err
	}
	footer := make([]byte, 0, sstFooterLen-walframe.HeaderLen)
	footer = append(footer, sstMagic...)
	footer = append(footer, sstVersion)
	footer = binary.BigEndian.AppendUint64(footer, uint64(indexOff))
	footer = binary.BigEndian.AppendUint64(footer, uint64(bloomOff))
	if err := w.writeFrame(footer); err != nil {
		w.abort()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.abort()
		return fmt.Errorf("storage: sstable sync %s: %w", w.path, err)
	}
	return w.f.Close()
}

// abort closes and removes a partially written file.
func (w *sstWriter) abort() {
	_ = w.f.Close()
	_ = os.Remove(w.path)
}

// tableIter iterates a table's entries in ascending key order starting
// at the first key >= start, loading blocks lazily. It implements
// lsmSource for merged iteration; tombstones are yielded.
type tableIter struct {
	t        *table
	blockIdx int
	payload  []byte
	pos      int
	cur      lsmEntry
	ok       bool
	prefix   string
	err      error
}

// newTableIter positions an iterator at the first key >= start. prefix,
// when non-empty, ends the iteration at the first key without it.
func newTableIter(t *table, start, prefix string) *tableIter {
	it := &tableIter{t: t, prefix: prefix}
	// First candidate block: the last one whose first key <= start (an
	// earlier key could live mid-block); fall back to block 0.
	idx := sort.Search(len(t.blocks), func(i int) bool { return t.blocks[i].firstKey > start }) - 1
	if idx < 0 {
		idx = 0
	}
	it.blockIdx = idx
	if len(t.blocks) == 0 {
		return it
	}
	if it.loadBlock() {
		it.advance()
		for it.ok && it.cur.key < start {
			it.advance()
		}
	}
	it.checkPrefix()
	return it
}

func (it *tableIter) loadBlock() bool {
	if it.blockIdx >= len(it.t.blocks) {
		it.ok = false
		return false
	}
	b := it.t.blocks[it.blockIdx]
	payload, err := it.t.readFrame(b.off, b.length)
	if err != nil {
		it.err = fmt.Errorf("sstable %s block %d: %w", it.t.path, it.blockIdx, err)
		it.ok = false
		return false
	}
	it.payload, it.pos = payload, 0
	return true
}

// advance steps to the next entry, crossing block boundaries.
func (it *tableIter) advance() {
	for it.pos >= len(it.payload) {
		it.blockIdx++
		if it.blockIdx >= len(it.t.blocks) {
			it.ok = false
			return
		}
		if !it.loadBlock() {
			return
		}
	}
	e, next, err := decodeBlockEntry(it.payload, it.pos)
	if err != nil {
		it.err = fmt.Errorf("sstable %s block %d: %w", it.t.path, it.blockIdx, err)
		it.ok = false
		return
	}
	it.cur, it.pos, it.ok = e, next, true
}

func (it *tableIter) checkPrefix() {
	if it.ok && it.prefix != "" && !strings.HasPrefix(it.cur.key, it.prefix) {
		it.ok = false
	}
}

func (it *tableIter) valid() bool     { return it.ok }
func (it *tableIter) entry() lsmEntry { return it.cur }
func (it *tableIter) next() {
	it.advance()
	it.checkPrefix()
}
