package storage

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadCommitStress hammers every engine with parallel point
// reads, prefix scans and batched commits. Run under -race it proves the
// locking discipline; the invariant checks prove readers always observe
// sorted, well-formed views while blocks commit underneath them.
func TestConcurrentReadCommitStress(t *testing.T) {
	for name, kv := range engines(t) {
		t.Run(name, func(t *testing.T) {
			const (
				writers = 4
				readers = 4
				blocks  = 150
				keys    = 64
			)
			stop := make(chan struct{})
			var writerWG, readerWG sync.WaitGroup

			for w := 0; w < writers; w++ {
				writerWG.Add(1)
				go func(w int) {
					defer writerWG.Done()
					for b := 0; b < blocks; b++ {
						batch := make([]Write, 0, keys/4)
						for k := 0; k < keys/4; k++ {
							key := fmt.Sprintf("w%d/key%02d", w, (b+k)%keys)
							if (b+k)%7 == 0 {
								batch = append(batch, Write{Key: key, Delete: true})
							} else {
								batch = append(batch, Write{Key: key, Value: []byte(fmt.Sprintf("w%d-b%d", w, b))})
							}
						}
						kv.ApplyBatch(batch)
					}
				}(w)
			}

			for r := 0; r < readers; r++ {
				readerWG.Add(1)
				go func(r int) {
					defer readerWG.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						key := fmt.Sprintf("w%d/key%02d", r%writers, i%keys)
						if v, ok := kv.Get(key); ok && len(v) == 0 {
							t.Error("observed empty committed value")
							return
						}
						prev := ""
						kv.IterPrefix(fmt.Sprintf("w%d/", i%writers), func(k string, v []byte) bool {
							if k <= prev {
								t.Errorf("iteration out of order: %q after %q", k, prev)
								return false
							}
							if len(v) == 0 {
								t.Errorf("iteration yielded empty value for %q", k)
								return false
							}
							prev = k
							return true
						})
						kv.Len()
					}
				}(r)
			}

			writerWG.Wait()
			close(stop)
			readerWG.Wait()

			// Quiesced: every surviving key must hold a committed value.
			kv.IterPrefix("", func(k string, v []byte) bool {
				if len(v) == 0 {
					t.Errorf("key %q has empty value after stress", k)
				}
				return true
			})
		})
	}
}
