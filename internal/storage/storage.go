// Package storage provides the pluggable key-value engine beneath the
// repo's stateful layers: the world-state database, the history database
// and the CID-addressed blockstore all sit on the KV interface instead of
// owning a map and a global lock. Four engines implement it: a
// single-lock map (the seed's behaviour, kept as the determinism
// baseline), a lock-striped sharded engine whose per-shard locks let
// concurrent reads and batched commits proceed in parallel — the hot path
// of the paper's store/retrieve evaluation — an LSM-tree disk engine
// whose contents survive process restarts with reopen cost proportional
// to the WAL tail (see lsm.go), and the previous map-plus-WAL disk
// engine, retained as the ablation baseline for the LSM (see mapwal.go).
package storage

import (
	"fmt"
	"os"
	"time"
)

// Write is one staged mutation inside an ApplyBatch call.
type Write struct {
	Key    string
	Value  []byte
	Delete bool
}

// KV is the engine contract. Keys are ordered byte strings; layered stores
// encode structure (namespaces, versions, sequence numbers) into keys and
// values. Engines neither copy values on Put nor on Get: callers own the
// aliasing discipline, exactly as the seed's map-based stores did.
//
// All methods are safe for concurrent use.
type KV interface {
	// Get returns the stored value for key.
	Get(key string) ([]byte, bool)
	// Put stores value under key, reporting whether the key was newly
	// inserted (false means an existing value was replaced).
	Put(key string, value []byte) bool
	// Delete removes key, returning the removed value. Deleting an absent
	// key is a no-op returning (nil, false).
	Delete(key string) ([]byte, bool)
	// IterPrefix invokes fn for every key beginning with prefix, in
	// ascending key order, over a point-in-time collection of matching
	// entries; fn returning false stops the iteration. fn runs without any
	// engine lock held, so it may call back into the KV.
	IterPrefix(prefix string, fn func(key string, value []byte) bool)
	// ApplyBatch applies a block's writes, acquiring each internal lock at
	// most once; within the batch, later writes to a key win. Durable
	// engines persist the whole batch as one atomic log record: after a
	// crash either every write of the batch is recovered or none is.
	ApplyBatch(writes []Write)
	// Len returns the number of stored keys.
	Len() int
	// Sync flushes buffered writes to stable storage. A no-op for the
	// in-memory engines.
	Sync() error
	// Close releases the engine's resources after a final Sync. Operations
	// after Close are undefined; Close is idempotent.
	Close() error
}

// Engine names a KV implementation.
type Engine string

const (
	// EngineSingle is the seed's one-map, one-RWMutex engine. Every commit
	// excludes every read; kept for determinism baselines and as the
	// reference in cross-engine equivalence tests.
	EngineSingle Engine = "single"
	// EngineSharded is the lock-striped engine: N shards by key hash, a
	// RWMutex per shard, batched commits grouped by shard. The production
	// default.
	EngineSharded Engine = "sharded"
	// EnginePersist is the durable disk engine: an LSM tree — WAL-fronted
	// sorted memtable, immutable block-structured SSTables with bloom
	// filters, a crash-safe manifest and background compaction. Contents
	// survive restarts; reopen replays only the WAL tail, so recovery cost
	// is proportional to recent writes, not total state.
	EnginePersist Engine = "persist"
	// EngineMapWAL is the previous durable engine: one in-memory map
	// behind a segmented write-ahead log with periodic full snapshots.
	// RAM and reopen cost grow with total state; retained as the ablation
	// baseline the `benchharness -fig lsm` comparison measures against.
	EngineMapWAL Engine = "mapwal"
)

// Durability selects the persist engine's fsync policy — the window of
// acknowledged writes a power failure (not a mere process kill: appends
// always reach the OS page cache synchronously) can lose.
type Durability string

const (
	// DurabilityNone never fsyncs on the write path (flush, compaction and
	// rotation still fsync the artefacts they produce before deleting what
	// those replace). Loss window on power failure: everything since the
	// last flush/Sync. Survives kill -9. The default.
	DurabilityNone Durability = "none"
	// DurabilityBatch runs a background group-commit loop that fsyncs the
	// WAL at most every FsyncInterval; writers never wait. Loss window on
	// power failure: about one FsyncInterval of acknowledged writes.
	// Because writers never wait, an fsync failure surfaces
	// asynchronously: the error is sticky and reported at the next
	// Sync/Close, and background syncing stops.
	DurabilityBatch Durability = "batch"
	// DurabilityAlways makes every mutation wait until the WAL is fsynced
	// past it before returning; concurrent waiters coalesce onto one fsync
	// (group commit). Loss window: none for acknowledged writes — which is
	// why an fsync failure panics the waiting writer: with no error return
	// in the KV contract, a write that cannot be made durable must not
	// return at all.
	DurabilityAlways Durability = "always"
)

// DefaultShards is the sharded engine's default stripe count.
const DefaultShards = 16

// Config selects and sizes an engine. The zero value opens the sharded
// engine with DefaultShards stripes.
type Config struct {
	// Engine picks the implementation (default EngineSharded).
	Engine Engine
	// Shards sets the sharded engine's stripe count, rounded up to a power
	// of two (default DefaultShards). Ignored by the other engines.
	Shards int
	// Dir is the disk engines' data directory (created if absent). When
	// empty, they materialise a fresh temporary directory — durable for
	// the life of the process, discarded by the OS afterwards — so the CI
	// engine matrix can force EnginePersist through EngineEnvVar without
	// threading paths into every constructor. Ignored by the in-memory
	// engines.
	Dir string
	// Durability picks the persist engine's fsync policy (default
	// DurabilityNone; see the Durability constants for the loss windows).
	// DurabilityEnvVar overrides an empty value. Ignored by the other
	// engines — mapwal keeps its page-cache-only behaviour.
	Durability Durability
	// MemtableBytes is the persist engine's memtable flush threshold: once
	// the active memtable holds this many bytes it is flushed to an
	// SSTable (default DefaultMemtableBytes, or SegmentBytes when that is
	// set — tests sized for the old engine's rotation keep forcing
	// flushes).
	MemtableBytes int64
	// CompactFanout is the persist engine's per-level run budget: once a
	// level accumulates this many SSTables they are merged into one run on
	// the next level (default DefaultCompactFanout, or CompactSegments
	// when that is set).
	CompactFanout int
	// FsyncInterval bounds DurabilityBatch's loss window (default
	// DefaultFsyncInterval). Ignored by the other durability modes.
	FsyncInterval time.Duration
	// NoBloom disables the persist engine's bloom filters so negative
	// lookups always touch table blocks. A benchmarking knob for the
	// `-fig lsm` ablation; leave unset in production.
	NoBloom bool
	// SegmentBytes rotates the mapwal engine's active log segment once it
	// exceeds this size (default DefaultSegmentBytes). For the persist
	// engine it is a compatibility alias for MemtableBytes.
	SegmentBytes int64
	// CompactSegments triggers the mapwal engine's snapshot compaction
	// once this many sealed segments accumulate (default
	// DefaultCompactSegments). For the persist engine it is a
	// compatibility alias for CompactFanout.
	CompactSegments int
}

// Sub returns a copy of cfg whose Dir is the named sub-directory of
// cfg.Dir, so layered stores opening several engines from one config
// (world state, history, indexes) each get a distinct on-disk home. A
// no-op for configs without a directory.
func (c Config) Sub(name string) Config {
	if c.Dir != "" {
		c.Dir = c.Dir + string(os.PathSeparator) + name
	}
	return c
}

// EngineEnvVar overrides the engine an empty Config.Engine selects, so a
// full test run can be pinned to one engine without threading a flag
// through every constructor (the CI matrix runs the suite under all of
// them).
const EngineEnvVar = "SOCIALCHAIN_STORAGE_ENGINE"

// DurabilityEnvVar overrides the fsync policy an empty Config.Durability
// selects, so the CI persist leg can run the whole suite under
// Durability=always without threading a flag through every constructor.
const DurabilityEnvVar = "SOCIALCHAIN_STORAGE_DURABILITY"

// envEngine reads EngineEnvVar; empty means "no override", unknown values
// are an error (a typo in the CI matrix must not silently change the
// engine under test). Read per call, not cached, so tests can flip it
// with t.Setenv.
func envEngine() (Engine, error) {
	v := os.Getenv(EngineEnvVar)
	switch e := Engine(v); e {
	case "", EngineSingle, EngineSharded, EnginePersist, EngineMapWAL:
		return e, nil
	default:
		return "", fmt.Errorf("storage: unknown %s value %q (valid: %s, %s, %s, %s)",
			EngineEnvVar, v, EngineSingle, EngineSharded, EnginePersist, EngineMapWAL)
	}
}

// envDurability reads DurabilityEnvVar with the same contract as
// envEngine: empty means "no override", unknown values are an error.
func envDurability() (Durability, error) {
	v := os.Getenv(DurabilityEnvVar)
	switch d := Durability(v); d {
	case "", DurabilityNone, DurabilityBatch, DurabilityAlways:
		return d, nil
	default:
		return "", fmt.Errorf("storage: unknown %s value %q (valid: %s, %s, %s)",
			DurabilityEnvVar, v, DurabilityNone, DurabilityBatch, DurabilityAlways)
	}
}

// ParseDurability validates a durability name from a flag or config file.
// Empty selects the engine default (DurabilityNone).
func ParseDurability(v string) (Durability, error) {
	switch d := Durability(v); d {
	case "", DurabilityNone, DurabilityBatch, DurabilityAlways:
		return d, nil
	default:
		return "", fmt.Errorf("storage: unknown durability %q (valid: %s, %s, %s)",
			v, DurabilityNone, DurabilityBatch, DurabilityAlways)
	}
}

// DefaultEngine returns the engine an empty Config selects: the
// EngineEnvVar override when set, otherwise sharded. A malformed override
// is an error — the same error Open reports — so callers that size data
// structures off the default engine cannot disagree with the engine Open
// actually refuses to construct.
func DefaultEngine() (Engine, error) {
	e, err := envEngine()
	if err != nil {
		return "", err
	}
	if e == "" {
		e = EngineSharded
	}
	return e, nil
}

// Open constructs the engine described by cfg. Unknown engine names — in
// the config or in the EngineEnvVar override — are an error: silently
// falling back to a default engine would lose data behind a peer that
// thought it was durable.
func Open(cfg Config) (KV, error) {
	engine := cfg.Engine
	if engine == "" {
		e, err := DefaultEngine()
		if err != nil {
			return nil, err
		}
		engine = e
	}
	switch engine {
	case EngineSingle:
		return NewSingle(), nil
	case EngineSharded:
		return NewSharded(cfg.Shards), nil
	case EnginePersist:
		return OpenPersist(cfg)
	case EngineMapWAL:
		return OpenMapWAL(cfg)
	default:
		return nil, fmt.Errorf("storage: unknown engine %q (valid: %s, %s, %s, %s)",
			engine, EngineSingle, EngineSharded, EnginePersist, EngineMapWAL)
	}
}

// MustOpen is Open for zero-or-known configs whose failure is a
// programming or environment error the caller cannot meaningfully handle
// (the in-memory default constructors). It panics on error.
func MustOpen(cfg Config) KV {
	kv, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return kv
}
