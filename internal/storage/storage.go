// Package storage provides the pluggable key-value engine beneath the
// repo's stateful layers: the world-state database, the history database
// and the CID-addressed blockstore all sit on the KV interface instead of
// owning a map and a global lock. Two engines implement it: a single-lock
// map (the seed's behaviour, kept as the determinism baseline) and a
// lock-striped sharded engine whose per-shard locks let concurrent reads
// and batched commits proceed in parallel — the hot path of the paper's
// store/retrieve evaluation.
package storage

import (
	"os"
	"sync"
)

// Write is one staged mutation inside an ApplyBatch call.
type Write struct {
	Key    string
	Value  []byte
	Delete bool
}

// KV is the engine contract. Keys are ordered byte strings; layered stores
// encode structure (namespaces, versions, sequence numbers) into keys and
// values. Engines neither copy values on Put nor on Get: callers own the
// aliasing discipline, exactly as the seed's map-based stores did.
//
// All methods are safe for concurrent use.
type KV interface {
	// Get returns the stored value for key.
	Get(key string) ([]byte, bool)
	// Put stores value under key, reporting whether the key was newly
	// inserted (false means an existing value was replaced).
	Put(key string, value []byte) bool
	// Delete removes key, returning the removed value. Deleting an absent
	// key is a no-op returning (nil, false).
	Delete(key string) ([]byte, bool)
	// IterPrefix invokes fn for every key beginning with prefix, in
	// ascending key order, over a point-in-time collection of matching
	// entries; fn returning false stops the iteration. fn runs without any
	// engine lock held, so it may call back into the KV.
	IterPrefix(prefix string, fn func(key string, value []byte) bool)
	// ApplyBatch applies a block's writes, acquiring each internal lock at
	// most once; within the batch, later writes to a key win.
	ApplyBatch(writes []Write)
	// Len returns the number of stored keys.
	Len() int
}

// Engine names a KV implementation.
type Engine string

const (
	// EngineSingle is the seed's one-map, one-RWMutex engine. Every commit
	// excludes every read; kept for determinism baselines and as the
	// reference in cross-engine equivalence tests.
	EngineSingle Engine = "single"
	// EngineSharded is the lock-striped engine: N shards by key hash, a
	// RWMutex per shard, batched commits grouped by shard. The production
	// default.
	EngineSharded Engine = "sharded"
)

// DefaultShards is the sharded engine's default stripe count.
const DefaultShards = 16

// Config selects and sizes an engine. The zero value opens the sharded
// engine with DefaultShards stripes.
type Config struct {
	// Engine picks the implementation (default EngineSharded).
	Engine Engine
	// Shards sets the sharded engine's stripe count, rounded up to a power
	// of two (default DefaultShards). Ignored by EngineSingle.
	Shards int
}

// EngineEnvVar overrides the engine an empty Config.Engine selects, so a
// full test run can be pinned to one engine without threading a flag
// through every constructor (the CI matrix runs the suite under both).
const EngineEnvVar = "SOCIALCHAIN_STORAGE_ENGINE"

// envEngine reads EngineEnvVar once; unknown or empty values mean "no
// override".
var envEngine = sync.OnceValue(func() Engine {
	switch e := Engine(os.Getenv(EngineEnvVar)); e {
	case EngineSingle, EngineSharded:
		return e
	default:
		return ""
	}
})

// DefaultEngine returns the engine an empty Config selects: the
// EngineEnvVar override when set to a known engine, otherwise sharded.
func DefaultEngine() Engine {
	if e := envEngine(); e != "" {
		return e
	}
	return EngineSharded
}

// Open constructs the engine described by cfg. Unknown engine names fall
// back to the default so a zero or stale config never loses data behind a
// nil store.
func Open(cfg Config) KV {
	engine := cfg.Engine
	if engine == "" {
		engine = DefaultEngine()
	}
	switch engine {
	case EngineSingle:
		return NewSingle()
	default:
		return NewSharded(cfg.Shards)
	}
}
