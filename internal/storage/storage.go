// Package storage provides the pluggable key-value engine beneath the
// repo's stateful layers: the world-state database, the history database
// and the CID-addressed blockstore all sit on the KV interface instead of
// owning a map and a global lock. Three engines implement it: a
// single-lock map (the seed's behaviour, kept as the determinism
// baseline), a lock-striped sharded engine whose per-shard locks let
// concurrent reads and batched commits proceed in parallel — the hot path
// of the paper's store/retrieve evaluation — and a write-ahead-logged
// persist engine whose contents survive process restarts (see persist.go).
package storage

import (
	"fmt"
	"os"
)

// Write is one staged mutation inside an ApplyBatch call.
type Write struct {
	Key    string
	Value  []byte
	Delete bool
}

// KV is the engine contract. Keys are ordered byte strings; layered stores
// encode structure (namespaces, versions, sequence numbers) into keys and
// values. Engines neither copy values on Put nor on Get: callers own the
// aliasing discipline, exactly as the seed's map-based stores did.
//
// All methods are safe for concurrent use.
type KV interface {
	// Get returns the stored value for key.
	Get(key string) ([]byte, bool)
	// Put stores value under key, reporting whether the key was newly
	// inserted (false means an existing value was replaced).
	Put(key string, value []byte) bool
	// Delete removes key, returning the removed value. Deleting an absent
	// key is a no-op returning (nil, false).
	Delete(key string) ([]byte, bool)
	// IterPrefix invokes fn for every key beginning with prefix, in
	// ascending key order, over a point-in-time collection of matching
	// entries; fn returning false stops the iteration. fn runs without any
	// engine lock held, so it may call back into the KV.
	IterPrefix(prefix string, fn func(key string, value []byte) bool)
	// ApplyBatch applies a block's writes, acquiring each internal lock at
	// most once; within the batch, later writes to a key win. Durable
	// engines persist the whole batch as one atomic log record: after a
	// crash either every write of the batch is recovered or none is.
	ApplyBatch(writes []Write)
	// Len returns the number of stored keys.
	Len() int
	// Sync flushes buffered writes to stable storage. A no-op for the
	// in-memory engines.
	Sync() error
	// Close releases the engine's resources after a final Sync. Operations
	// after Close are undefined; Close is idempotent.
	Close() error
}

// Engine names a KV implementation.
type Engine string

const (
	// EngineSingle is the seed's one-map, one-RWMutex engine. Every commit
	// excludes every read; kept for determinism baselines and as the
	// reference in cross-engine equivalence tests.
	EngineSingle Engine = "single"
	// EngineSharded is the lock-striped engine: N shards by key hash, a
	// RWMutex per shard, batched commits grouped by shard. The production
	// default.
	EngineSharded Engine = "sharded"
	// EnginePersist is the write-ahead-logged disk engine: a segmented
	// append-only log with CRC-framed records behind an in-memory map,
	// periodically compacted into snapshots. Contents survive restarts;
	// replay on open tolerates a torn tail from a crash mid-append.
	EnginePersist Engine = "persist"
)

// DefaultShards is the sharded engine's default stripe count.
const DefaultShards = 16

// Config selects and sizes an engine. The zero value opens the sharded
// engine with DefaultShards stripes.
type Config struct {
	// Engine picks the implementation (default EngineSharded).
	Engine Engine
	// Shards sets the sharded engine's stripe count, rounded up to a power
	// of two (default DefaultShards). Ignored by the other engines.
	Shards int
	// Dir is the persist engine's data directory (created if absent). When
	// empty, the persist engine materialises a fresh temporary directory —
	// durable for the life of the process, discarded by the OS afterwards —
	// so the CI engine matrix can force EnginePersist through EngineEnvVar
	// without threading paths into every constructor. Ignored by the
	// in-memory engines.
	Dir string
	// SegmentBytes rotates the persist engine's active log segment once it
	// exceeds this size (default DefaultSegmentBytes). Ignored by the
	// in-memory engines.
	SegmentBytes int64
	// CompactSegments triggers snapshot compaction once this many sealed
	// segments accumulate (default DefaultCompactSegments). Ignored by the
	// in-memory engines.
	CompactSegments int
}

// Sub returns a copy of cfg whose Dir is the named sub-directory of
// cfg.Dir, so layered stores opening several engines from one config
// (world state, history, indexes) each get a distinct on-disk home. A
// no-op for configs without a directory.
func (c Config) Sub(name string) Config {
	if c.Dir != "" {
		c.Dir = c.Dir + string(os.PathSeparator) + name
	}
	return c
}

// EngineEnvVar overrides the engine an empty Config.Engine selects, so a
// full test run can be pinned to one engine without threading a flag
// through every constructor (the CI matrix runs the suite under all
// three).
const EngineEnvVar = "SOCIALCHAIN_STORAGE_ENGINE"

// envEngine reads EngineEnvVar; empty means "no override", unknown values
// are an error (a typo in the CI matrix must not silently change the
// engine under test). Read per call, not cached, so tests can flip it
// with t.Setenv.
func envEngine() (Engine, error) {
	v := os.Getenv(EngineEnvVar)
	switch e := Engine(v); e {
	case "", EngineSingle, EngineSharded, EnginePersist:
		return e, nil
	default:
		return "", fmt.Errorf("storage: unknown %s value %q (valid: %s, %s, %s)",
			EngineEnvVar, v, EngineSingle, EngineSharded, EnginePersist)
	}
}

// DefaultEngine returns the engine an empty Config selects: the
// EngineEnvVar override when set to a known engine, otherwise sharded.
// (Open reports unknown env values as errors; this accessor ignores them.)
func DefaultEngine() Engine {
	if e, err := envEngine(); err == nil && e != "" {
		return e
	}
	return EngineSharded
}

// Open constructs the engine described by cfg. Unknown engine names — in
// the config or in the EngineEnvVar override — are an error: silently
// falling back to a default engine would lose data behind a peer that
// thought it was durable.
func Open(cfg Config) (KV, error) {
	engine := cfg.Engine
	if engine == "" {
		e, err := envEngine()
		if err != nil {
			return nil, err
		}
		if e == "" {
			e = EngineSharded
		}
		engine = e
	}
	switch engine {
	case EngineSingle:
		return NewSingle(), nil
	case EngineSharded:
		return NewSharded(cfg.Shards), nil
	case EnginePersist:
		return OpenPersist(cfg)
	default:
		return nil, fmt.Errorf("storage: unknown engine %q (valid: %s, %s, %s)",
			engine, EngineSingle, EngineSharded, EnginePersist)
	}
}

// MustOpen is Open for zero-or-known configs whose failure is a
// programming or environment error the caller cannot meaningfully handle
// (the in-memory default constructors). It panics on error.
func MustOpen(cfg Config) KV {
	kv, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return kv
}
