package storage

import (
	"sort"
	"strings"
	"sync"
)

// Single is the single-lock engine: one map guarded by one RWMutex, the
// exact concurrency profile of the seed's stores. Reads share the lock;
// any write excludes everything.
type Single struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// NewSingle returns an empty single-lock engine.
func NewSingle() *Single {
	return &Single{data: make(map[string][]byte)}
}

// Get implements KV.
func (s *Single) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Put implements KV.
func (s *Single) Put(key string, value []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, existed := s.data[key]
	s.data[key] = value
	return !existed
}

// Delete implements KV.
func (s *Single) Delete(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	if ok {
		delete(s.data, key)
	}
	return v, ok
}

// IterPrefix implements KV: entries are collected under the read lock,
// sorted, and fn runs lock-free on the collected view.
func (s *Single) IterPrefix(prefix string, fn func(key string, value []byte) bool) {
	s.mu.RLock()
	entries := collectPrefix(s.data, prefix, nil)
	s.mu.RUnlock()
	sortEntries(entries)
	for _, e := range entries {
		if !fn(e.key, e.value) {
			return
		}
	}
}

// ApplyBatch implements KV: one lock acquisition for the whole batch.
func (s *Single) ApplyBatch(writes []Write) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range writes {
		if w.Delete {
			delete(s.data, w.Key)
			continue
		}
		s.data[w.Key] = w.Value
	}
}

// Len implements KV.
func (s *Single) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Sync implements KV; the in-memory engine has nothing to flush.
func (s *Single) Sync() error { return nil }

// Close implements KV; the in-memory engine holds no resources.
func (s *Single) Close() error { return nil }

// entry is one collected (key, value) pair of an iteration.
type entry struct {
	key   string
	value []byte
}

// collectPrefix appends all prefix-matching pairs of data to dst. Caller
// holds the lock guarding data.
func collectPrefix(data map[string][]byte, prefix string, dst []entry) []entry {
	for k, v := range data {
		if strings.HasPrefix(k, prefix) {
			dst = append(dst, entry{key: k, value: v})
		}
	}
	return dst
}

func sortEntries(entries []entry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
}
