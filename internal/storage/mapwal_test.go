package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"socialchain/internal/walframe"
)

// openMapWAL opens a mapwal engine over dir with small segments so tests
// exercise rotation and compaction.
func openMapWAL(t *testing.T, dir string) *MapWAL {
	t.Helper()
	p, err := OpenMapWAL(Config{Dir: dir, SegmentBytes: 2 << 10, CompactSegments: 3})
	if err != nil {
		t.Fatalf("open mapwal %s: %v", dir, err)
	}
	return p
}

// TestMapWALReopenRecoversState writes through rotations and compactions,
// closes, reopens and requires identical contents.
func TestMapWALReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	p := openMapWAL(t, dir)
	want := make(map[string]string)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("ns\x00key/%03d", i%120)
		v := fmt.Sprintf("value-%d-%s", i, strings.Repeat("x", 64))
		p.Put(k, []byte(v))
		want[k] = v
	}
	for i := 0; i < 120; i += 3 {
		k := fmt.Sprintf("ns\x00key/%03d", i)
		p.Delete(k)
		delete(want, k)
	}
	p.ApplyBatch([]Write{
		{Key: "batch/a", Value: []byte("1")},
		{Key: "batch/b", Value: []byte("2")},
		{Key: "batch/a", Delete: true},
	})
	want["batch/b"] = "2"
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	re := openMapWAL(t, dir)
	defer re.Close()
	if re.Len() != len(want) {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), len(want))
	}
	for k, v := range want {
		got, ok := re.Get(k)
		if !ok || string(got) != v {
			t.Fatalf("reopened Get(%q) = %q/%v, want %q", k, got, ok, v)
		}
	}
}

// TestMapWALCompactionDropsOldSegments forces enough rotations that a
// snapshot is cut, and checks the directory holds the snapshot plus the
// recent segments only — the log must not grow without bound.
func TestMapWALCompactionDropsOldSegments(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenMapWAL(Config{Dir: dir, SegmentBytes: 1 << 10, CompactSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("v", 256)
	for i := 0; i < 200; i++ {
		p.Put(fmt.Sprintf("k%03d", i%40), []byte(big))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs, snaps := 0, 0
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name(), segPrefix):
			segs++
		case strings.HasPrefix(e.Name(), snapPrefix):
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshots on disk, want 1", snaps)
	}
	if segs > 3 {
		t.Fatalf("%d segments survived compaction (threshold 2)", segs)
	}
	// And the compacted state still recovers.
	re := openMapWAL(t, dir)
	defer re.Close()
	if re.Len() != 40 {
		t.Fatalf("recovered %d keys, want 40", re.Len())
	}
}

// lastSegment returns the path of the highest-numbered log segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), segPrefix) && e.Name() > last {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatal("no log segments on disk")
	}
	return filepath.Join(dir, last)
}

// TestMapWALTornTailRecovery is the crash-injection gate: a log whose
// final record is cut off (or corrupted) at EVERY byte offset must recover
// exactly the state up to the last fully-committed record — never an
// error, never a partial batch.
func TestMapWALTornTailRecovery(t *testing.T) {
	// Build a reference log: a few committed writes, then one final batch
	// record whose truncation we sweep.
	build := func(dir string) {
		t.Helper()
		p, err := OpenMapWAL(Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		p.Put("a", []byte("alpha"))
		p.Put("b", []byte("beta"))
		p.ApplyBatch([]Write{
			{Key: "c", Value: []byte("gamma")},
			{Key: "a", Delete: true},
			{Key: "d", Value: []byte("delta-" + strings.Repeat("z", 40))},
		})
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}

	refDir := t.TempDir()
	build(refDir)
	refSeg, err := os.ReadFile(lastSegment(t, refDir))
	if err != nil {
		t.Fatal(err)
	}
	// State after only the first two records (the final batch torn away).
	wantWithoutBatch := map[string]string{"a": "alpha", "b": "beta"}
	// State with the batch fully committed.
	wantWithBatch := map[string]string{"b": "beta", "c": "gamma", "d": "delta-" + strings.Repeat("z", 40)}

	recs, _, err := parseRecords(refSeg)
	if err != nil || len(recs) != 3 {
		t.Fatalf("reference log has %d records (err %v), want 3", len(recs), err)
	}
	batchStart := len(refSeg) - walframe.HeaderLen - len(recs[2])

	check := func(t *testing.T, dir string, want map[string]string) {
		t.Helper()
		p, err := OpenMapWAL(Config{Dir: dir})
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		defer p.Close()
		got := map[string]string{}
		p.IterPrefix("", func(k string, v []byte) bool {
			got[k] = string(v)
			return true
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("recovered state %v, want %v", got, want)
		}
	}

	// Sweep every truncation point inside the final record (batchStart =
	// the batch fully gone; len(refSeg)-1 = one byte short of committed).
	for cut := batchStart; cut < len(refSeg); cut++ {
		t.Run(fmt.Sprintf("truncate@%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			build(dir)
			seg := lastSegment(t, dir)
			if err := os.Truncate(seg, int64(cut)); err != nil {
				t.Fatal(err)
			}
			check(t, dir, wantWithoutBatch)
			// The torn tail must have been truncated away so the next
			// append produces a clean log; reopen once more to prove it.
			check(t, dir, wantWithoutBatch)
		})
	}

	// Corrupt (rather than cut) every byte of the final record: the CRC
	// must reject it and recovery lands on the last committed record.
	for off := batchStart; off < len(refSeg); off++ {
		t.Run(fmt.Sprintf("corrupt@%d", off), func(t *testing.T) {
			dir := t.TempDir()
			build(dir)
			seg := lastSegment(t, dir)
			data := append([]byte(nil), refSeg...)
			data[off] ^= 0xff
			if err := os.WriteFile(seg, data, 0o644); err != nil {
				t.Fatal(err)
			}
			check(t, dir, wantWithoutBatch)
		})
	}

	// An untouched log recovers the full state.
	t.Run("intact", func(t *testing.T) {
		dir := t.TempDir()
		build(dir)
		check(t, dir, wantWithBatch)
	})
}

// TestMapWALAppendAfterTornTail proves writes continue cleanly after a
// torn-tail recovery: the truncated segment accepts new records and a
// further reopen sees both old and new state.
func TestMapWALAppendAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	p := openMapWAL(t, dir)
	p.Put("keep", []byte("v1"))
	p.ApplyBatch([]Write{{Key: "torn", Value: []byte("lost")}})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	re := openMapWAL(t, dir)
	if _, ok := re.Get("torn"); ok {
		t.Fatal("torn batch survived")
	}
	re.Put("after", []byte("v2"))
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	final := openMapWAL(t, dir)
	defer final.Close()
	if v, ok := final.Get("keep"); !ok || string(v) != "v1" {
		t.Fatalf("keep = %q/%v", v, ok)
	}
	if v, ok := final.Get("after"); !ok || string(v) != "v2" {
		t.Fatalf("after = %q/%v", v, ok)
	}
}

// TestMapWALMidSegmentCorruptionIsFatal flips a byte in an EARLY record
// of the ACTIVE (last) segment while committed records follow: recovery
// must refuse — and leave the file untruncated — instead of silently
// dropping the committed suffix. Only a genuine tail (nothing valid
// after the damage) may be cut.
func TestMapWALMidSegmentCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenMapWAL(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p.Put("first", []byte(strings.Repeat("a", 40)))
	p.Put("second", []byte(strings.Repeat("b", 40)))
	p.Put("third", []byte(strings.Repeat("c", 40)))
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), data...)
	corrupted[walframe.HeaderLen+4] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(seg, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapWAL(Config{Dir: dir}); err == nil {
		t.Fatal("mid-segment corruption recovered silently")
	}
	after, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Fatalf("failed open truncated the segment: %d -> %d bytes", len(data), len(after))
	}
}

// TestMapWALSealedSegmentCorruptionIsFatal distinguishes the tolerable
// failure (torn tail of the last segment) from real corruption: a damaged
// sealed segment must fail recovery loudly instead of silently dropping
// committed writes.
func TestMapWALSealedSegmentCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenMapWAL(Config{Dir: dir, SegmentBytes: 512, CompactSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		p.Put(fmt.Sprintf("k%02d", i), []byte(strings.Repeat("v", 64)))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Find the FIRST segment (sealed) and flip a byte in its middle.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := ""
	nsegs := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), segPrefix) {
			nsegs++
			if first == "" || e.Name() < first {
				first = e.Name()
			}
		}
	}
	if nsegs < 2 {
		t.Fatalf("workload produced %d segments, need >= 2", nsegs)
	}
	path := filepath.Join(dir, first)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapWAL(Config{Dir: dir}); err == nil {
		t.Fatal("corrupt sealed segment recovered silently")
	}
}
