package storage

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"
)

// engines returns one fresh instance of every engine under a stable label.
func engines(tb testing.TB) map[string]KV {
	persist, err := OpenPersist(Config{Dir: tb.TempDir()})
	if err != nil {
		tb.Fatalf("open persist: %v", err)
	}
	// A tiny memtable and fanout force flushes and compactions even under
	// small workloads, so the SSTable read path is exercised everywhere.
	persistSmall, err := OpenPersist(Config{Dir: tb.TempDir(), MemtableBytes: 256, CompactFanout: 2})
	if err != nil {
		tb.Fatalf("open persist-small: %v", err)
	}
	mapwal, err := OpenMapWAL(Config{Dir: tb.TempDir()})
	if err != nil {
		tb.Fatalf("open mapwal: %v", err)
	}
	return map[string]KV{
		"single":        NewSingle(),
		"sharded":       NewSharded(0),
		"sharded-1":     NewSharded(1), // degenerate stripe count must still behave
		"persist":       persist,
		"persist-small": persistSmall,
		"mapwal":        mapwal,
	}
}

func TestOpenSelectsEngine(t *testing.T) {
	kv, err := Open(Config{Engine: EngineSingle})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := kv.(*Single); !ok {
		t.Fatal("EngineSingle did not open a Single")
	}
	if kv, err = Open(Config{Engine: EngineSharded}); err != nil {
		t.Fatal(err)
	}
	if _, ok := kv.(*Sharded); !ok {
		t.Fatal("EngineSharded did not open a Sharded")
	}
	if kv, err = Open(Config{Engine: EnginePersist, Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if _, ok := kv.(*Persist); !ok {
		t.Fatal("EnginePersist did not open a Persist")
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsUnknownEngine(t *testing.T) {
	// An explicitly-unknown engine must be an error, never a silent
	// fallback: a peer configured for a durable engine must not quietly run
	// on RAM.
	kv, err := Open(Config{Engine: "no-such-engine"})
	if err == nil {
		t.Fatalf("unknown engine opened %T, want error", kv)
	}
	if !strings.Contains(err.Error(), "no-such-engine") {
		t.Fatalf("error %q does not name the offending engine", err)
	}
}

func TestOpenRejectsUnknownEnvEngine(t *testing.T) {
	t.Setenv(EngineEnvVar, "no-such-engine")
	kv, err := Open(Config{})
	if err == nil {
		t.Fatalf("unknown %s opened %T, want error", EngineEnvVar, kv)
	}
	if !strings.Contains(err.Error(), EngineEnvVar) {
		t.Fatalf("error %q does not name the env var", err)
	}
	// Explicit configs are never affected by the override.
	if _, err := Open(Config{Engine: EngineSingle}); err != nil {
		t.Fatalf("explicit engine rejected under bad env override: %v", err)
	}
}

func TestDefaultEngineAgreesWithOpenOnBadEnv(t *testing.T) {
	// DefaultEngine used to swallow EngineEnvVar errors and silently fall
	// back to sharded, so a caller sizing itself off the default engine
	// could disagree with the engine Open refused to construct. Both must
	// now report the same typo'd override.
	t.Setenv(EngineEnvVar, "shraded")
	def, derr := DefaultEngine()
	if derr == nil {
		t.Fatalf("DefaultEngine() = %q under bad env, want error", def)
	}
	_, oerr := Open(Config{})
	if oerr == nil {
		t.Fatal("Open(Config{}) succeeded under bad env")
	}
	if derr.Error() != oerr.Error() {
		t.Fatalf("DefaultEngine and Open disagree:\n %v\n %v", derr, oerr)
	}
	if !strings.Contains(derr.Error(), "shraded") {
		t.Fatalf("error %q does not name the offending value", derr)
	}
}

func TestOpenRejectsUnknownEnvDurability(t *testing.T) {
	t.Setenv(DurabilityEnvVar, "sometimes")
	if p, err := OpenPersist(Config{Dir: t.TempDir()}); err == nil {
		p.Close()
		t.Fatalf("unknown %s opened the persist engine, want error", DurabilityEnvVar)
	}
	// An explicit durability is never affected by the override.
	p, err := OpenPersist(Config{Dir: t.TempDir(), Durability: DurabilityBatch})
	if err != nil {
		t.Fatalf("explicit durability rejected under bad env override: %v", err)
	}
	p.Close()
}

func TestEnvOverrideSelectsPersist(t *testing.T) {
	t.Setenv(EngineEnvVar, string(EnginePersist))
	kv, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := kv.(*Persist)
	if !ok {
		t.Fatalf("env override opened %T, want *Persist", kv)
	}
	// No Dir was configured: the engine must have materialised its own.
	if p.Dir() == "" {
		t.Fatal("persist engine without a directory")
	}
	defer os.RemoveAll(p.Dir())
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestShardCountRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, DefaultShards}, {1, 1}, {3, 4}, {16, 16}, {17, 32}} {
		if got := len(NewSharded(c.in).shards); got != c.want {
			t.Errorf("NewSharded(%d) = %d shards, want %d", c.in, got, c.want)
		}
	}
}

func TestBasicOps(t *testing.T) {
	for name, kv := range engines(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok := kv.Get("missing"); ok {
				t.Fatal("phantom key")
			}
			if !kv.Put("a", []byte("1")) {
				t.Fatal("first Put must report an insert")
			}
			if kv.Put("a", []byte("2")) {
				t.Fatal("overwrite must not report an insert")
			}
			if v, ok := kv.Get("a"); !ok || string(v) != "2" {
				t.Fatalf("Get = %q %v", v, ok)
			}
			if kv.Len() != 1 {
				t.Fatalf("Len = %d", kv.Len())
			}
			if prev, ok := kv.Delete("a"); !ok || string(prev) != "2" {
				t.Fatalf("Delete = %q %v", prev, ok)
			}
			if prev, ok := kv.Delete("a"); ok || prev != nil {
				t.Fatalf("double Delete = %q %v", prev, ok)
			}
			if kv.Len() != 0 {
				t.Fatalf("Len after delete = %d", kv.Len())
			}
		})
	}
}

func TestApplyBatchLastWriteWins(t *testing.T) {
	for name, kv := range engines(t) {
		t.Run(name, func(t *testing.T) {
			kv.ApplyBatch([]Write{
				{Key: "k", Value: []byte("first")},
				{Key: "k", Value: []byte("second")},
				{Key: "gone", Value: []byte("x")},
				{Key: "gone", Delete: true},
			})
			if v, ok := kv.Get("k"); !ok || string(v) != "second" {
				t.Fatalf("k = %q %v", v, ok)
			}
			if _, ok := kv.Get("gone"); ok {
				t.Fatal("delete staged after put must win")
			}
		})
	}
}

func TestIterPrefixSortedAndStoppable(t *testing.T) {
	for name, kv := range engines(t) {
		t.Run(name, func(t *testing.T) {
			for _, k := range []string{"b/2", "a/1", "b/1", "c/9", "b/3"} {
				kv.Put(k, []byte(k))
			}
			var got []string
			kv.IterPrefix("b/", func(k string, v []byte) bool {
				if string(v) != k {
					t.Fatalf("value mismatch for %s: %q", k, v)
				}
				got = append(got, k)
				return true
			})
			want := []string{"b/1", "b/2", "b/3"}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("IterPrefix = %v, want %v", got, want)
			}
			var first []string
			kv.IterPrefix("", func(k string, _ []byte) bool {
				first = append(first, k)
				return len(first) < 2
			})
			if !reflect.DeepEqual(first, []string{"a/1", "b/1"}) {
				t.Fatalf("early stop walked %v", first)
			}
		})
	}
}

func TestIterPrefixAllowsReentrancy(t *testing.T) {
	for name, kv := range engines(t) {
		t.Run(name, func(t *testing.T) {
			kv.Put("a", []byte("1"))
			kv.Put("b", []byte("2"))
			kv.IterPrefix("", func(k string, _ []byte) bool {
				kv.Put("nested/"+k, []byte("x")) // must not deadlock
				return true
			})
			if kv.Len() != 4 {
				t.Fatalf("Len = %d after reentrant puts", kv.Len())
			}
		})
	}
}

// op is one step of a generated workload for the equivalence test.
type op struct {
	kind  int // 0 put, 1 delete, 2 batch
	key   string
	value []byte
	batch []Write
}

// randomOps generates a deterministic mixed workload over a small hot key
// space so puts, overwrites, deletes and batches all collide.
func randomOps(seed int64, n int) []op {
	rng := rand.New(rand.NewSource(seed))
	key := func() string {
		return fmt.Sprintf("ns%d\x00key/%03d", rng.Intn(3), rng.Intn(120))
	}
	ops := make([]op, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			ops = append(ops, op{kind: 0, key: key(), value: []byte(fmt.Sprintf("v%d", i))})
		case 2:
			ops = append(ops, op{kind: 1, key: key()})
		default:
			batch := make([]Write, 0, 8)
			for j := rng.Intn(8); j >= 0; j-- {
				w := Write{Key: key()}
				if rng.Intn(4) == 0 {
					w.Delete = true
				} else {
					w.Value = []byte(fmt.Sprintf("b%d-%d", i, j))
				}
				batch = append(batch, w)
			}
			ops = append(ops, op{kind: 2, batch: batch})
		}
	}
	return ops
}

func apply(kv KV, o op) {
	switch o.kind {
	case 0:
		kv.Put(o.key, o.value)
	case 1:
		kv.Delete(o.key)
	default:
		kv.ApplyBatch(o.batch)
	}
}

// dump captures the full sorted contents of an engine.
func dump(kv KV) []entry {
	var out []entry
	kv.IterPrefix("", func(k string, v []byte) bool {
		out = append(out, entry{key: k, value: append([]byte(nil), v...)})
		return true
	})
	return out
}

// TestEngineEquivalence drives every engine through identical op sequences
// and requires identical final state, iteration order, lengths and point
// reads — the contract that lets the sharded (and now persist) engine
// replace the single-lock one under every store. The persist engine is
// additionally closed and reopened from its directory after the workload:
// the recovered state must match too.
func TestEngineEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		dir := t.TempDir()
		mapwalDir := t.TempDir()
		single := NewSingle()
		sharded := NewSharded(8)
		persist, err := OpenPersist(Config{Dir: dir, SegmentBytes: 4 << 10})
		if err != nil {
			t.Fatal(err)
		}
		// A 1 KiB memtable with fanout 2 flushes and compacts constantly,
		// so the reopened state crosses memtable, L0 and deeper levels.
		smallDir := t.TempDir()
		small, err := OpenPersist(Config{Dir: smallDir, MemtableBytes: 1 << 10, CompactFanout: 2})
		if err != nil {
			t.Fatal(err)
		}
		mapwal, err := OpenMapWAL(Config{Dir: mapwalDir, SegmentBytes: 4 << 10})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range randomOps(seed, 600) {
			apply(single, o)
			apply(sharded, o)
			apply(persist, o)
			apply(small, o)
			apply(mapwal, o)
		}
		if err := persist.Close(); err != nil {
			t.Fatalf("seed %d: close persist: %v", seed, err)
		}
		if err := small.Close(); err != nil {
			t.Fatalf("seed %d: close persist-small: %v", seed, err)
		}
		if err := mapwal.Close(); err != nil {
			t.Fatalf("seed %d: close mapwal: %v", seed, err)
		}
		reopened, err := OpenPersist(Config{Dir: dir, SegmentBytes: 4 << 10})
		if err != nil {
			t.Fatalf("seed %d: reopen persist: %v", seed, err)
		}
		reopenedSmall, err := OpenPersist(Config{Dir: smallDir, MemtableBytes: 1 << 10, CompactFanout: 2})
		if err != nil {
			t.Fatalf("seed %d: reopen persist-small: %v", seed, err)
		}
		reopenedMapwal, err := OpenMapWAL(Config{Dir: mapwalDir, SegmentBytes: 4 << 10})
		if err != nil {
			t.Fatalf("seed %d: reopen mapwal: %v", seed, err)
		}
		others := map[string]KV{
			"sharded":       sharded,
			"persist":       reopened,
			"persist-small": reopenedSmall,
			"mapwal":        reopenedMapwal,
		}
		for name, kv := range others {
			if single.Len() != kv.Len() {
				t.Fatalf("seed %d: Len single=%d %s=%d", seed, single.Len(), name, kv.Len())
			}
		}
		ds := dump(single)
		for name, kv := range others {
			dh := dump(kv)
			if !reflect.DeepEqual(ds, dh) {
				t.Fatalf("seed %d: state diverged:\nsingle: %v\n%s: %v", seed, ds, name, dh)
			}
			for _, e := range ds {
				sv, sok := single.Get(e.key)
				hv, hok := kv.Get(e.key)
				if sok != hok || string(sv) != string(hv) {
					t.Fatalf("seed %d: Get(%q) single=%q/%v %s=%q/%v", seed, e.key, sv, sok, name, hv, hok)
				}
			}
			// Prefix iteration must agree too, not just the full dump.
			for _, prefix := range []string{"ns0\x00", "ns1\x00key/0", "ns2\x00key/11"} {
				var ks, kh []string
				single.IterPrefix(prefix, func(k string, _ []byte) bool { ks = append(ks, k); return true })
				kv.IterPrefix(prefix, func(k string, _ []byte) bool { kh = append(kh, k); return true })
				if !reflect.DeepEqual(ks, kh) {
					t.Fatalf("seed %d: IterPrefix(%q) single=%v %s=%v", seed, prefix, ks, name, kh)
				}
			}
		}
		for name, kv := range others {
			if name == "sharded" {
				continue
			}
			if err := kv.Close(); err != nil {
				t.Fatalf("seed %d: close reopened %s: %v", seed, name, err)
			}
		}
	}
}

func TestOpenDefaultEngine(t *testing.T) {
	// The empty config resolves through DefaultEngine (env-overridable for
	// the CI engine matrix) and must name a real engine.
	def, err := DefaultEngine()
	if err != nil {
		t.Fatalf("DefaultEngine(): %v", err)
	}
	if def != EngineSingle && def != EngineSharded && def != EnginePersist && def != EngineMapWAL {
		t.Fatalf("DefaultEngine() = %q", def)
	}
	kv, err := Open(Config{})
	if err != nil {
		t.Fatalf("Open(Config{}): %v", err)
	}
	defer kv.Close()
	switch def {
	case EngineSingle:
		if _, ok := kv.(*Single); !ok {
			t.Fatalf("default engine %q opened %T", def, kv)
		}
	case EnginePersist:
		p, ok := kv.(*Persist)
		if !ok {
			t.Fatalf("default engine %q opened %T", def, kv)
		}
		defer os.RemoveAll(p.Dir())
	case EngineMapWAL:
		p, ok := kv.(*MapWAL)
		if !ok {
			t.Fatalf("default engine %q opened %T", def, kv)
		}
		defer os.RemoveAll(p.Dir())
	default:
		if _, ok := kv.(*Sharded); !ok {
			t.Fatalf("default engine %q opened %T", def, kv)
		}
	}
}
