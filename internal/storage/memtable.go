package storage

// The memtable is the LSM engine's mutable head: a plain map absorbing
// writes at in-memory speed, dumped in sorted order when it is flushed
// into an SSTable. Tombstones live in the same map — a deletion must
// shadow older table versions of the key until compaction reclaims both.

import "sort"

// lsmEntry is one key's state in a memtable dump, a table block or a
// merged iteration: either a value (tomb false) or a tombstone.
type lsmEntry struct {
	key   string
	value []byte
	tomb  bool
}

// memtable buffers writes between flushes.
type memtable struct {
	data map[string]lsmEntry
	// bytes approximates the heap held by data; crossing the flush
	// threshold is a heuristic, so over-counting updates is fine.
	bytes int64
	// delta is the live-key count change this memtable represents against
	// the state beneath it (imm + tables at the time of each write); the
	// engine folds it into its persistent base count at flush.
	delta int
}

func newMemtable() *memtable {
	return &memtable{data: make(map[string]lsmEntry)}
}

// get returns the memtable's entry for key (which may be a tombstone).
func (m *memtable) get(key string) (lsmEntry, bool) {
	e, ok := m.data[key]
	return e, ok
}

// setPut records a put. existed reports whether the key was live in the
// full logical state before this write.
func (m *memtable) setPut(key string, value []byte, existed bool) {
	if _, had := m.data[key]; !had {
		m.bytes += int64(len(key)) + 48
	}
	m.data[key] = lsmEntry{key: key, value: value}
	m.bytes += int64(len(value))
	if !existed {
		m.delta++
	}
}

// setDelete records a tombstone for a key that was live before this
// write (no-op deletes never reach the memtable).
func (m *memtable) setDelete(key string) {
	if _, had := m.data[key]; !had {
		m.bytes += int64(len(key)) + 48
	}
	m.data[key] = lsmEntry{key: key, tomb: true}
	m.delta--
}

// sortedPrefix returns the memtable's entries with the given prefix
// (tombstones included — they must shadow older runs during a merge) in
// ascending key order. An empty prefix dumps the whole table, which is
// exactly the flush path.
func (m *memtable) sortedPrefix(prefix string) []lsmEntry {
	out := make([]lsmEntry, 0, len(m.data))
	for k, e := range m.data {
		if len(prefix) > 0 && (len(k) < len(prefix) || k[:len(prefix)] != prefix) {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}
