package storage

// The mapwal engine is the repo's first durable KV and is retained as the
// ablation baseline for the LSM persist engine (see lsm.go): one
// in-memory map holding the full key space (reads are as cheap as the
// single-lock engine) behind a segmented, append-only log of CRC-framed
// records, so the map can be rebuilt after a crash or restart. An
// ApplyBatch lands as ONE log record — after a crash either the whole
// block of writes is recovered or none of it, which is what lets the
// layers above treat "state batch + savepoint" as atomic. Its structural
// limits — RAM and reopen/replay cost grow with TOTAL state, not recent
// writes — are what the LSM removes; `benchharness -fig lsm` measures the
// two against each other.
//
// On-disk layout inside Config.Dir:
//
//	wal-<idx>.log   log segments, ascending contiguous indices
//	snap-<idx>.db   snapshot of the state after all segments with index
//	                < idx (written at a rotation boundary, so the active
//	                segment is empty when the snapshot is cut)
//	*.tmp           in-progress snapshot writes (cleaned on open)
//
// Record framing (shared by segments, snapshots and the ledger's block
// log — see internal/walframe):
//
//	[4B big-endian payload length][4B IEEE CRC32 of payload][payload]
//
// Payload: uvarint write-count, then per write an op byte (0 put,
// 1 delete), uvarint key length, key bytes and, for puts, uvarint value
// length plus value bytes.
//
// Recovery: load the newest snapshot, then replay segments with index >=
// the snapshot's in order. A torn tail — a partially-written record where
// the process died mid-append — is detected by the length/CRC framing and
// truncated; everything up to the last fully-committed record is
// recovered. Corruption in a *sealed* segment (not at the tail of the
// last one) is a hard error: data before a valid suffix cannot be skipped
// without silently losing writes.
//
// Compaction: when the active segment exceeds Config.SegmentBytes it is
// sealed and a fresh one started; once Config.CompactSegments sealed
// segments accumulate, the map is written out as a snapshot (to a temp
// file, fsynced, renamed) and the sealed segments deleted. Snapshots are
// therefore always complete: a crash mid-compaction leaves either the old
// segments or the new snapshot, never a half state.
//
// Durability model: appends reach the OS page cache synchronously (one
// write syscall per record), so state survives process death (kill -9)
// without any fsync. Sync() flushes to stable storage for power-loss
// durability; rotation and compaction fsync their artefacts before
// deleting what they replace.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"socialchain/internal/walframe"
)

const (
	// DefaultSegmentBytes is the rotation threshold for the active log
	// segment.
	DefaultSegmentBytes int64 = 4 << 20
	// DefaultCompactSegments is how many sealed segments accumulate before
	// snapshot compaction.
	DefaultCompactSegments = 4

	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".db"

	opPut    = 0
	opDelete = 1
)

// MapWAL is the map-plus-WAL disk engine.
type MapWAL struct {
	mu   sync.RWMutex
	data map[string][]byte

	dir             string
	seg             *os.File // active segment (nil after Close)
	segIdx          uint64
	segBytes        int64
	segmentBytes    int64
	compactSegments int
	sealed          int // sealed segments not yet compacted away
	buf             []byte
	err             error // sticky I/O error, reported by Sync/Close
	closed          bool
}

// OpenMapWAL opens (or creates) a mapwal engine in cfg.Dir, replaying
// any existing log. An empty Dir materialises a fresh temporary directory
// (see Config.Dir).
func OpenMapWAL(cfg Config) (*MapWAL, error) {
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "socialchain-mapwal-"); err != nil {
			return nil, fmt.Errorf("storage: mapwal temp dir: %w", err)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mapwal dir %s: %w", dir, err)
	}
	p := &MapWAL{
		data:            make(map[string][]byte),
		dir:             dir,
		segmentBytes:    cfg.SegmentBytes,
		compactSegments: cfg.CompactSegments,
	}
	if p.segmentBytes <= 0 {
		p.segmentBytes = DefaultSegmentBytes
	}
	if p.compactSegments <= 0 {
		p.compactSegments = DefaultCompactSegments
	}
	if err := p.recover(); err != nil {
		return nil, err
	}
	return p, nil
}

// Dir returns the engine's data directory.
func (p *MapWAL) Dir() string { return p.dir }

// listFiles scans the data directory for segments and snapshots, deleting
// leftover temp files.
func (p *MapWAL) listFiles() (segs, snaps []uint64, err error) {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: mapwal scan %s: %w", p.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			_ = os.Remove(filepath.Join(p.dir, name))
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			if idx, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64); perr == nil {
				segs = append(segs, idx)
			}
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			if idx, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 16, 64); perr == nil {
				snaps = append(snaps, idx)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return segs, snaps, nil
}

func (p *MapWAL) segPath(idx uint64) string {
	return filepath.Join(p.dir, fmt.Sprintf("%s%016x%s", segPrefix, idx, segSuffix))
}

func (p *MapWAL) snapPath(idx uint64) string {
	return filepath.Join(p.dir, fmt.Sprintf("%s%016x%s", snapPrefix, idx, snapSuffix))
}

// recover rebuilds the map from the newest snapshot plus the segments
// after it, truncates any torn tail off the last segment, and reopens it
// as the active segment.
func (p *MapWAL) recover() error {
	segs, snaps, err := p.listFiles()
	if err != nil {
		return err
	}
	base := uint64(0) // replay segments with idx >= base
	if len(snaps) > 0 {
		base = snaps[len(snaps)-1]
		if err := p.loadSnapshot(base); err != nil {
			return err
		}
		// Older snapshots and pre-snapshot segments are stale leftovers of
		// an interrupted compaction; drop them.
		for _, idx := range snaps[:len(snaps)-1] {
			_ = os.Remove(p.snapPath(idx))
		}
	}
	live := segs[:0]
	for _, idx := range segs {
		if idx < base {
			_ = os.Remove(p.segPath(idx))
			continue
		}
		live = append(live, idx)
	}
	if len(live) > 0 {
		// The first live segment must be the one the snapshot hands over
		// to (or segment 1 in a snapshot-free directory): a missing
		// leading segment means committed writes are gone, which must be
		// refused, not silently skipped.
		want := base
		if want == 0 {
			want = 1
		}
		if live[0] != want {
			return fmt.Errorf("storage: mapwal %s: first segment is %x, want %x (leading segment lost)", p.dir, live[0], want)
		}
	}
	for i, idx := range live {
		if i > 0 && idx != live[i-1]+1 {
			return fmt.Errorf("storage: mapwal %s: segment gap between %x and %x", p.dir, live[i-1], idx)
		}
		if err := p.replaySegment(idx, i == len(live)-1); err != nil {
			return err
		}
	}
	// Continue appending into the last segment, or start segment max(1,
	// base) in a fresh/compacted directory.
	p.segIdx = base
	if p.segIdx == 0 {
		p.segIdx = 1
	}
	if len(live) > 0 {
		p.segIdx = live[len(live)-1]
		p.sealed = len(live) - 1
	}
	f, err := os.OpenFile(p.segPath(p.segIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: mapwal open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("storage: mapwal stat segment: %w", err)
	}
	p.seg, p.segBytes = f, st.Size()
	return nil
}

// loadSnapshot loads snap-<idx> into the map.
func (p *MapWAL) loadSnapshot(idx uint64) error {
	data, err := os.ReadFile(p.snapPath(idx))
	if err != nil {
		return fmt.Errorf("storage: mapwal snapshot: %w", err)
	}
	recs, _, err := parseRecords(data)
	if err != nil {
		// Snapshots are written to a temp file and renamed into place, so a
		// framing error is real corruption, not a torn write.
		return fmt.Errorf("storage: mapwal snapshot %s corrupt: %w", p.snapPath(idx), err)
	}
	for _, rec := range recs {
		if err := p.applyRecord(rec); err != nil {
			return fmt.Errorf("storage: mapwal snapshot %s: %w", p.snapPath(idx), err)
		}
	}
	return nil
}

// replaySegment applies segment idx to the map. For the last segment a
// trailing partial record (torn tail) is truncated away; anywhere else it
// is corruption.
func (p *MapWAL) replaySegment(idx uint64, last bool) error {
	path := p.segPath(idx)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("storage: mapwal segment: %w", err)
	}
	recs, good, err := parseRecords(data)
	if err != nil && !last {
		return fmt.Errorf("storage: mapwal segment %s corrupt: %w", path, err)
	}
	for _, rec := range recs {
		if aerr := p.applyRecord(rec); aerr != nil {
			return fmt.Errorf("storage: mapwal segment %s: %w", path, aerr)
		}
	}
	if err != nil {
		// Torn tail vs mid-segment corruption: truncate the former, fail
		// on the latter (shared decision logic — see walframe.RecoverTail).
		if terr := walframe.RecoverTail(path, data, good); terr != nil {
			return fmt.Errorf("storage: mapwal segment: %w", terr)
		}
	}
	return nil
}

// parseRecords splits a log/snapshot image into its CRC-validated record
// payloads. good is the byte offset just past the last valid record; err
// is non-nil when framing or CRC validation failed there.
func parseRecords(data []byte) (recs [][]byte, good int, err error) {
	off := 0
	for off < len(data) {
		payload, next, perr := walframe.Next(data, off)
		if perr != nil {
			return recs, off, perr
		}
		recs = append(recs, payload)
		off = next
	}
	return recs, off, nil
}

// applyRecord replays one record's writes into the map.
func (p *MapWAL) applyRecord(rec []byte) error {
	return decodeRecord(rec, func(key string, val []byte, del bool) {
		if del {
			delete(p.data, key)
			return
		}
		p.data[key] = val
	})
}

// decodeRecord walks one log record's writes, invoking apply per write
// (value bytes are copied out of rec). Shared by the mapwal replay path
// and the LSM WAL replay path — the two engines share the record format.
func decodeRecord(rec []byte, apply func(key string, val []byte, del bool)) error {
	count, n := binary.Uvarint(rec)
	if n <= 0 {
		return fmt.Errorf("bad record: write count")
	}
	rec = rec[n:]
	for i := uint64(0); i < count; i++ {
		if len(rec) == 0 {
			return fmt.Errorf("bad record: short write %d", i)
		}
		op := rec[0]
		rec = rec[1:]
		klen, n := binary.Uvarint(rec)
		if n <= 0 || uint64(len(rec)-n) < klen {
			return fmt.Errorf("bad record: key length")
		}
		key := string(rec[n : n+int(klen)])
		rec = rec[n+int(klen):]
		switch op {
		case opDelete:
			apply(key, nil, true)
		case opPut:
			vlen, n := binary.Uvarint(rec)
			if n <= 0 || uint64(len(rec)-n) < vlen {
				return fmt.Errorf("bad record: value length")
			}
			val := make([]byte, vlen)
			copy(val, rec[n:n+int(vlen)])
			rec = rec[n+int(vlen):]
			apply(key, val, false)
		default:
			return fmt.Errorf("bad record: op %d", op)
		}
	}
	if len(rec) != 0 {
		return fmt.Errorf("bad record: %d trailing bytes", len(rec))
	}
	return nil
}

// appendRecordFrame appends one framed record holding writes to buf and
// returns the extended slice. Shared by both durable engines.
func appendRecordFrame(buf []byte, writes []Write) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, walframe.HeaderLen)...) // header placeholder
	buf = binary.AppendUvarint(buf, uint64(len(writes)))
	for i := range writes {
		w := &writes[i]
		if w.Delete {
			buf = append(buf, opDelete)
			buf = binary.AppendUvarint(buf, uint64(len(w.Key)))
			buf = append(buf, w.Key...)
			continue
		}
		buf = append(buf, opPut)
		buf = binary.AppendUvarint(buf, uint64(len(w.Key)))
		buf = append(buf, w.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(w.Value)))
		buf = append(buf, w.Value...)
	}
	walframe.Seal(buf[start:])
	return buf
}

// encodeFrame appends a framed record holding writes to p.buf and returns
// the full frame. Caller holds p.mu.
func (p *MapWAL) encodeFrame(writes []Write) []byte {
	p.buf = appendRecordFrame(p.buf[:0], writes)
	return p.buf
}

// appendLocked writes one framed record for writes and handles rotation.
// Caller holds p.mu. I/O errors are sticky: the in-memory state stays
// authoritative for the life of the process and Sync/Close report the
// failure.
func (p *MapWAL) appendLocked(writes []Write) {
	if p.err != nil || p.seg == nil {
		return
	}
	frame := p.encodeFrame(writes)
	if _, err := p.seg.Write(frame); err != nil {
		p.err = fmt.Errorf("storage: mapwal append: %w", err)
		return
	}
	p.segBytes += int64(len(frame))
	if p.segBytes >= p.segmentBytes {
		p.rotateLocked()
	}
}

// rotateLocked seals the active segment and starts the next one,
// compacting into a snapshot when enough sealed segments accumulated.
// Caller holds p.mu.
func (p *MapWAL) rotateLocked() {
	if err := p.seg.Sync(); err != nil {
		p.err = fmt.Errorf("storage: mapwal seal sync: %w", err)
		return
	}
	if err := p.seg.Close(); err != nil {
		p.err = fmt.Errorf("storage: mapwal seal close: %w", err)
		return
	}
	p.sealed++
	p.segIdx++
	f, err := os.OpenFile(p.segPath(p.segIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		p.err = fmt.Errorf("storage: mapwal rotate: %w", err)
		p.seg = nil
		return
	}
	p.seg, p.segBytes = f, 0
	if p.sealed >= p.compactSegments {
		p.compactLocked()
	}
}

// compactLocked writes the current map as snapshot snap-<segIdx> (the
// active segment is empty, so the snapshot exactly covers the sealed
// segments) and deletes the segments it subsumes. Caller holds p.mu, at a
// rotation boundary.
func (p *MapWAL) compactLocked() {
	tmp := p.snapPath(p.segIdx) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		p.err = fmt.Errorf("storage: mapwal compact: %w", err)
		return
	}
	// One record per key keeps peak encode memory at one entry; the
	// buffered writer keeps the syscall count O(bytes/64K) rather than
	// O(keys) — this all happens under the engine lock.
	bw := bufio.NewWriterSize(f, 1<<16)
	for k, v := range p.data {
		frame := p.encodeFrame([]Write{{Key: k, Value: v}})
		if _, err := bw.Write(frame); err != nil {
			f.Close()
			_ = os.Remove(tmp)
			p.err = fmt.Errorf("storage: mapwal compact write: %w", err)
			return
		}
	}
	err = bw.Flush()
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		p.err = fmt.Errorf("storage: mapwal compact sync: %w", err)
		return
	}
	if err := os.Rename(tmp, p.snapPath(p.segIdx)); err != nil {
		p.err = fmt.Errorf("storage: mapwal compact rename: %w", err)
		return
	}
	// The snapshot is durable; everything it covers can go.
	for idx := p.segIdx - uint64(p.sealed); idx < p.segIdx; idx++ {
		_ = os.Remove(p.segPath(idx))
	}
	for idx := range p.listStaleSnapsLocked() {
		_ = os.Remove(p.snapPath(idx))
	}
	p.sealed = 0
}

// listStaleSnapsLocked returns snapshot indices older than the current one.
func (p *MapWAL) listStaleSnapsLocked() map[uint64]struct{} {
	out := make(map[uint64]struct{})
	if _, snaps, err := p.listFiles(); err == nil {
		for _, idx := range snaps {
			if idx != p.segIdx {
				out[idx] = struct{}{}
			}
		}
	}
	return out
}

// Get implements KV.
func (p *MapWAL) Get(key string) ([]byte, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	v, ok := p.data[key]
	return v, ok
}

// Put implements KV.
func (p *MapWAL) Put(key string, value []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, existed := p.data[key]
	p.data[key] = value
	p.appendLocked([]Write{{Key: key, Value: value}})
	return !existed
}

// Delete implements KV.
func (p *MapWAL) Delete(key string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.data[key]
	if ok {
		delete(p.data, key)
		p.appendLocked([]Write{{Key: key, Delete: true}})
	}
	return v, ok
}

// IterPrefix implements KV: entries are collected under the read lock,
// sorted, and fn runs lock-free on the collected view.
func (p *MapWAL) IterPrefix(prefix string, fn func(key string, value []byte) bool) {
	p.mu.RLock()
	entries := collectPrefix(p.data, prefix, nil)
	p.mu.RUnlock()
	sortEntries(entries)
	for _, e := range entries {
		if !fn(e.key, e.value) {
			return
		}
	}
}

// ApplyBatch implements KV: the whole batch lands as one atomic log
// record under one lock acquisition.
func (p *MapWAL) ApplyBatch(writes []Write) {
	if len(writes) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range writes {
		if w.Delete {
			delete(p.data, w.Key)
			continue
		}
		p.data[w.Key] = w.Value
	}
	p.appendLocked(writes)
}

// Len implements KV.
func (p *MapWAL) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.data)
}

// Sync implements KV: flush the active segment to stable storage.
func (p *MapWAL) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	if p.seg == nil {
		return nil
	}
	if err := p.seg.Sync(); err != nil {
		p.err = fmt.Errorf("storage: mapwal sync: %w", err)
	}
	return p.err
}

// Close implements KV: sync and close the active segment. Idempotent.
func (p *MapWAL) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return p.err
	}
	p.closed = true
	if p.seg != nil {
		if err := p.seg.Sync(); err != nil && p.err == nil {
			p.err = fmt.Errorf("storage: mapwal close sync: %w", err)
		}
		if err := p.seg.Close(); err != nil && p.err == nil {
			p.err = fmt.Errorf("storage: mapwal close: %w", err)
		}
		p.seg = nil
	}
	return p.err
}
