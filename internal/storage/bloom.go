package storage

// Bloom filters let the LSM engine answer most negative Gets without a
// disk read: each SSTable carries one filter over its key set, and a
// lookup probes the filter before touching any block. A filter miss is
// definitive ("key not in this table"); a hit means "maybe", and the
// block read settles it. Sizing is the classic ~10 bits per key with 7
// probes, giving a false-positive rate under 1%.
//
// Probes use the Kirsch–Mitzenmacher double-hashing scheme over a single
// 64-bit FNV-1a key hash: probe i tests bit (h1 + i*h2) mod nbits. The
// construction is fully deterministic — filters written by one process
// validate in any other — which the multiprocess deployment relies on.

import (
	"encoding/binary"
	"errors"
)

var errBadBloom = errors.New("bad bloom filter block")

const (
	bloomBitsPerKey = 10
	bloomProbes     = 7
)

// bloomHash is the 64-bit key hash every filter operation derives its
// probe sequence from (computed once per lookup, shared across tables).
func bloomHash(key string) uint64 { return fnv1a64(key) }

// bloomFilter is an immutable bit set over a table's key hashes.
type bloomFilter struct {
	bits  []byte
	nbits uint64
}

// buildBloom constructs a filter containing every hash in hashes.
func buildBloom(hashes []uint64) bloomFilter {
	nbits := uint64(len(hashes)) * bloomBitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	b := bloomFilter{bits: make([]byte, (nbits+7)/8), nbits: nbits}
	for _, h := range hashes {
		h1, h2 := h, (h>>17)|1
		for i := uint64(0); i < bloomProbes; i++ {
			bit := (h1 + i*h2) % b.nbits
			b.bits[bit/8] |= 1 << (bit % 8)
		}
	}
	return b
}

// mayContain reports whether the filter could contain the key behind h.
// False is definitive; true requires a block read to confirm.
func (b bloomFilter) mayContain(h uint64) bool {
	if b.nbits == 0 {
		return true // absent/disabled filter: cannot rule anything out
	}
	h1, h2 := h, (h>>17)|1
	for i := uint64(0); i < bloomProbes; i++ {
		bit := (h1 + i*h2) % b.nbits
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// encode serialises the filter for the SSTable's bloom block.
func (b bloomFilter) encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, b.nbits)
	return append(dst, b.bits...)
}

// decodeBloom parses a filter from a bloom block payload. An empty
// payload decodes to the zero filter (mayContain always true).
func decodeBloom(data []byte) (bloomFilter, error) {
	if len(data) == 0 {
		return bloomFilter{}, nil
	}
	nbits, n := binary.Uvarint(data)
	if n <= 0 {
		return bloomFilter{}, errBadBloom
	}
	bits := data[n:]
	if uint64(len(bits)) != (nbits+7)/8 {
		return bloomFilter{}, errBadBloom
	}
	return bloomFilter{bits: bits, nbits: nbits}, nil
}
