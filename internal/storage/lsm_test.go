package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"socialchain/internal/walframe"
)

// openLSM opens a persist engine over dir with a tiny memtable and fanout
// so tests exercise flushes and compactions.
func openLSM(t *testing.T, dir string) *Persist {
	t.Helper()
	p, err := OpenPersist(Config{Dir: dir, MemtableBytes: 1 << 10, CompactFanout: 2})
	if err != nil {
		t.Fatalf("open persist %s: %v", dir, err)
	}
	return p
}

// dirFiles returns the names in dir matching prefix/suffix.
func dirFiles(t *testing.T, dir, prefix, suffix string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) && strings.HasSuffix(e.Name(), suffix) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// TestLSMReopenRecoversState drives writes through flushes and
// compactions, closes, reopens, and requires identical contents — with the
// reopened state actually spread across SSTables, not just the WAL.
func TestLSMReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	p := openLSM(t, dir)
	want := make(map[string]string)
	for i := 0; i < 600; i++ {
		k := fmt.Sprintf("ns\x00key/%03d", i%150)
		v := fmt.Sprintf("value-%d-%s", i, strings.Repeat("x", 64))
		p.Put(k, []byte(v))
		want[k] = v
	}
	for i := 0; i < 150; i += 3 {
		k := fmt.Sprintf("ns\x00key/%03d", i)
		p.Delete(k)
		delete(want, k)
	}
	p.ApplyBatch([]Write{
		{Key: "batch/a", Value: []byte("1")},
		{Key: "batch/b", Value: []byte("2")},
		{Key: "batch/a", Delete: true},
	})
	want["batch/b"] = "2"
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if len(dirFiles(t, dir, sstPrefix, sstSuffix)) == 0 {
		t.Fatal("workload produced no SSTables; the test is not exercising the table path")
	}

	re := openLSM(t, dir)
	defer re.Close()
	if re.Len() != len(want) {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), len(want))
	}
	for k, v := range want {
		got, ok := re.Get(k)
		if !ok || string(got) != v {
			t.Fatalf("reopened Get(%q) = %q/%v, want %q", k, got, ok, v)
		}
	}
	got := map[string]string{}
	re.IterPrefix("", func(k string, v []byte) bool {
		got[k] = string(v)
		return true
	})
	wantLen := len(want)
	if len(got) != wantLen {
		t.Fatalf("iterated %d keys, want %d", len(got), wantLen)
	}
}

// TestLSMCompactionBoundsTables checks the level invariant: after a heavy
// overwrite workload and a drained compactor, no level holds fanout or
// more tables, and shadowed garbage has been dropped (total table bytes
// stay bounded instead of growing with every overwrite).
func TestLSMCompactionBoundsTables(t *testing.T) {
	dir := t.TempDir()
	p := openLSM(t, dir)
	big := strings.Repeat("v", 256)
	for i := 0; i < 400; i++ {
		p.Put(fmt.Sprintf("k%03d", i%40), []byte(big))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	re := openLSM(t, dir)
	defer re.Close()
	st := re.Stats()
	if st.SSTables == 0 {
		t.Fatal("no SSTables after 400 writes with a 1 KiB memtable")
	}
	// 40 live keys * ~300 bytes is ~12 KiB of live data; tables holding
	// 100x that would mean compaction never reclaimed shadowed versions.
	var total int64
	for _, name := range dirFiles(t, dir, sstPrefix, sstSuffix) {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	if total > 1<<20 {
		t.Fatalf("tables hold %d bytes for ~12 KiB of live data; compaction is not reclaiming", total)
	}
	if re.Len() != 40 {
		t.Fatalf("recovered %d keys, want 40", re.Len())
	}
}

// TestLSMIterPrefixPointInTime starts an iteration, then mutates the
// engine from inside fn — overwrites, deletes, new keys, enough bytes to
// force a memtable flush and compactions mid-iteration. The iteration
// must deliver exactly the state it started from.
func TestLSMIterPrefixPointInTime(t *testing.T) {
	dir := t.TempDir()
	p := openLSM(t, dir)
	defer p.Close()
	want := make([]string, 0, 120)
	for i := 0; i < 120; i++ {
		k := fmt.Sprintf("pit/%03d", i)
		p.Put(k, []byte("v-"+k))
		want = append(want, k)
	}
	filler := strings.Repeat("f", 128)
	var got []string
	p.IterPrefix("pit/", func(k string, v []byte) bool {
		if string(v) != "v-"+k {
			t.Fatalf("key %s carries %q mid-iteration", k, v)
		}
		got = append(got, k)
		// Mutate everything ahead of the cursor: delete some, overwrite
		// others, insert keys that sort inside the remaining range, and
		// push enough bytes through to force flushes (1 KiB memtable) and
		// compactions while the iteration is live.
		i := len(got) - 1
		p.Delete(fmt.Sprintf("pit/%03d", (i+7)%120))
		p.Put(fmt.Sprintf("pit/%03d-new", (i+3)%120), []byte(filler))
		p.Put(fmt.Sprintf("churn/%03d", i), []byte(filler))
		// fn may re-enter the KV for reads too.
		p.Get(fmt.Sprintf("pit/%03d", (i+1)%120))
		return true
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("iteration saw %d keys (want %d): point-in-time snapshot violated\ngot  %v\nwant %v",
			len(got), len(want), got, want)
	}
}

// TestLSMIterPrefixUnderConcurrentFlushAndCompaction runs iterations
// against a fixed "stable/" key set while a writer hammers a "hot/"
// space hard enough to flush and compact continuously. Every iteration
// must see exactly the stable set, in order — tables vanishing under a
// pinned version must never drop or duplicate entries.
func TestLSMIterPrefixUnderConcurrentFlushAndCompaction(t *testing.T) {
	dir := t.TempDir()
	p := openLSM(t, dir)
	defer p.Close()
	want := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("stable/%02d", i)
		p.Put(k, []byte(k))
		want = append(want, k)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		filler := strings.Repeat("w", 200)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.Put(fmt.Sprintf("hot/%03d", i%50), []byte(filler))
			if i%7 == 0 {
				p.Delete(fmt.Sprintf("hot/%03d", (i+3)%50))
			}
		}
	}()
	for round := 0; round < 200; round++ {
		var got []string
		p.IterPrefix("stable/", func(k string, v []byte) bool {
			got = append(got, k)
			return true
		})
		if !reflect.DeepEqual(got, want) {
			close(stop)
			wg.Wait()
			t.Fatalf("round %d: stable prefix saw %v, want %v", round, got, want)
		}
	}
	close(stop)
	wg.Wait()
	if st := p.Stats(); st.Flushes == 0 {
		t.Fatal("workload never flushed; the test exercised only the memtable")
	}
}

// buildWALOnly creates an LSM dir whose state lives purely in the WAL: two
// committed puts, then one final batch record.
func buildWALOnly(t *testing.T, dir string) {
	t.Helper()
	p, err := OpenPersist(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p.Put("a", []byte("alpha"))
	p.Put("b", []byte("beta"))
	p.ApplyBatch([]Write{
		{Key: "c", Value: []byte("gamma")},
		{Key: "a", Delete: true},
		{Key: "d", Value: []byte("delta-" + strings.Repeat("z", 40))},
	})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// lsmState opens dir and dumps its full contents (recovery must succeed).
func lsmState(t *testing.T, dir string) map[string]string {
	t.Helper()
	p, err := OpenPersist(Config{Dir: dir})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer p.Close()
	got := map[string]string{}
	p.IterPrefix("", func(k string, v []byte) bool {
		got[k] = string(v)
		return true
	})
	return got
}

// TestLSMWALTornTailRecovery sweeps every truncation point and every
// corrupted byte of the WAL's final record: recovery must land exactly on
// the last fully-committed record — never an error, never a partial batch.
func TestLSMWALTornTailRecovery(t *testing.T) {
	refDir := t.TempDir()
	buildWALOnly(t, refDir)
	walName := dirFiles(t, refDir, segPrefix, segSuffix)
	if len(walName) != 1 {
		t.Fatalf("reference dir holds %d wal files, want 1", len(walName))
	}
	refWAL, err := os.ReadFile(filepath.Join(refDir, walName[0]))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := parseRecords(refWAL)
	if err != nil || len(recs) != 3 {
		t.Fatalf("reference wal has %d records (err %v), want 3", len(recs), err)
	}
	batchStart := len(refWAL) - walframe.HeaderLen - len(recs[2])
	wantWithoutBatch := map[string]string{"a": "alpha", "b": "beta"}
	wantWithBatch := map[string]string{"b": "beta", "c": "gamma", "d": "delta-" + strings.Repeat("z", 40)}

	for cut := batchStart; cut < len(refWAL); cut++ {
		t.Run(fmt.Sprintf("truncate@%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			buildWALOnly(t, dir)
			wal := filepath.Join(dir, walName[0])
			if err := os.Truncate(wal, int64(cut)); err != nil {
				t.Fatal(err)
			}
			if got := lsmState(t, dir); !reflect.DeepEqual(got, wantWithoutBatch) {
				t.Fatalf("recovered %v, want %v", got, wantWithoutBatch)
			}
			// The torn tail must have been truncated so the next append
			// produces a clean log; reopen once more to prove it.
			if got := lsmState(t, dir); !reflect.DeepEqual(got, wantWithoutBatch) {
				t.Fatalf("second reopen diverged")
			}
		})
	}
	for off := batchStart; off < len(refWAL); off++ {
		t.Run(fmt.Sprintf("corrupt@%d", off), func(t *testing.T) {
			dir := t.TempDir()
			buildWALOnly(t, dir)
			wal := filepath.Join(dir, walName[0])
			data := append([]byte(nil), refWAL...)
			data[off] ^= 0xff
			if err := os.WriteFile(wal, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if got := lsmState(t, dir); !reflect.DeepEqual(got, wantWithoutBatch) {
				t.Fatalf("recovered %v, want %v", got, wantWithoutBatch)
			}
		})
	}
	t.Run("intact", func(t *testing.T) {
		dir := t.TempDir()
		buildWALOnly(t, dir)
		if got := lsmState(t, dir); !reflect.DeepEqual(got, wantWithBatch) {
			t.Fatalf("recovered %v, want %v", got, wantWithBatch)
		}
	})
}

// TestLSMWALMidLogCorruptionIsFatal flips a byte in an early record while
// committed records follow: recovery must refuse — and leave the file
// untruncated — instead of silently dropping the committed suffix.
func TestLSMWALMidLogCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPersist(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p.Put("first", []byte(strings.Repeat("a", 40)))
	p.Put("second", []byte(strings.Repeat("b", 40)))
	p.Put("third", []byte(strings.Repeat("c", 40)))
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	walName := dirFiles(t, dir, segPrefix, segSuffix)[0]
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), data...)
	corrupted[walframe.HeaderLen+4] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(wal, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPersist(Config{Dir: dir}); err == nil {
		t.Fatal("mid-log corruption recovered silently")
	}
	after, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Fatalf("failed open truncated the wal: %d -> %d bytes", len(data), len(after))
	}
}

// buildTabled creates an LSM dir whose state is spread across SSTables
// (tiny memtable) and returns the expected contents.
func buildTabled(t *testing.T, dir string) map[string]string {
	t.Helper()
	p, err := OpenPersist(Config{Dir: dir, MemtableBytes: 1 << 10, CompactFanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string)
	for i := 0; i < 120; i++ {
		k := fmt.Sprintf("key/%03d", i)
		v := fmt.Sprintf("val-%d-%s", i, strings.Repeat("s", 24))
		p.Put(k, []byte(v))
		want[k] = v
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if len(dirFiles(t, dir, sstPrefix, sstSuffix)) == 0 {
		t.Fatal("workload produced no SSTables")
	}
	return want
}

// checkNeverWrong opens dir after a fault injection and requires one of
// three honest outcomes for every key: open refuses, the read panics, or
// the read returns the exact committed value. Returning a WRONG value (or
// silently losing a key) fails the test.
func checkNeverWrong(t *testing.T, dir string, want map[string]string) {
	t.Helper()
	p, err := OpenPersist(Config{Dir: dir, MemtableBytes: 1 << 10, CompactFanout: 2})
	if err != nil {
		return // refused loudly at open: acceptable
	}
	defer func() {
		recover() // a panicking Close after a read panic is fine
	}()
	defer p.Close()
	for k, v := range want {
		func() {
			defer func() {
				recover() // integrity panic: loud failure, acceptable
			}()
			got, ok := p.Get(k)
			if !ok {
				t.Errorf("Get(%q) lost a committed key without failing loudly", k)
			} else if string(got) != v {
				t.Errorf("Get(%q) = %q, want %q: served a wrong value", k, got, v)
			}
		}()
		if t.Failed() {
			return
		}
	}
	// Iteration must be equally honest.
	func() {
		defer func() {
			recover()
		}()
		got := map[string]string{}
		p.IterPrefix("", func(k string, v []byte) bool {
			got[k] = string(v)
			return true
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("iteration diverged without failing loudly: %d keys, want %d", len(got), len(want))
		}
	}()
}

// TestLSMSSTableCorruptionSweep flips every byte of an SSTable file in
// turn: each faulted copy must either refuse to open, fail reads loudly,
// or serve exactly the committed values — never wrong data. This is the
// block/index/bloom/footer CRC gate.
func TestLSMSSTableCorruptionSweep(t *testing.T) {
	refDir := t.TempDir()
	want := buildTabled(t, refDir)
	step := 1
	if testing.Short() {
		step = 37
	}
	// Background flush/compaction timing makes the exact file set vary
	// between builds, so each iteration corrupts ITS OWN dir's mid-stack
	// table; the loop ends when the offset runs past that table's size.
	for off := 0; ; off += step {
		dir := t.TempDir()
		buildTabled(t, dir)
		names := dirFiles(t, dir, sstPrefix, sstSuffix)
		name := names[len(names)/2]
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if off >= len(data) {
			break
		}
		data[off] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
		checkNeverWrong(t, dir, want)
		if t.Failed() {
			t.Fatalf("corrupting %s at offset %d served wrong data", name, off)
		}
	}
}

// TestLSMSSTableTruncationSweep truncates an SSTable at every offset:
// recovery must refuse (footer/index unreadable) or reads must fail
// loudly — never a silently shrunken state.
func TestLSMSSTableTruncationSweep(t *testing.T) {
	refDir := t.TempDir()
	want := buildTabled(t, refDir)
	step := 1
	if testing.Short() {
		step = 37
	}
	for cut := 0; ; cut += step {
		dir := t.TempDir()
		buildTabled(t, dir)
		names := dirFiles(t, dir, sstPrefix, sstSuffix)
		name := names[len(names)/2]
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if int64(cut) >= fi.Size() {
			break
		}
		if err := os.Truncate(filepath.Join(dir, name), int64(cut)); err != nil {
			t.Fatal(err)
		}
		checkNeverWrong(t, dir, want)
		if t.Failed() {
			t.Fatalf("truncating %s at %d served wrong data", name, cut)
		}
	}
}

// TestLSMManifestDamageIsFatal flips every byte of the manifest and
// truncates it at every offset: the manifest is written atomically, so
// ANY damage is real corruption and open must refuse (an empty/absent
// manifest with live sst files must also refuse, not resurrect orphans).
func TestLSMManifestDamageIsFatal(t *testing.T) {
	for off := 0; ; off++ {
		dir := t.TempDir()
		buildTabled(t, dir)
		data, err := os.ReadFile(manifestPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		if off >= len(data) {
			break
		}
		data[off] ^= 0xff
		if err := os.WriteFile(manifestPath(dir), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if p, err := OpenPersist(Config{Dir: dir}); err == nil {
			p.Close()
			t.Fatalf("manifest with byte %d flipped opened silently", off)
		}
	}
	for cut := 1; ; cut++ {
		dir := t.TempDir()
		buildTabled(t, dir)
		fi, err := os.Stat(manifestPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		if int64(cut) >= fi.Size() {
			break
		}
		if err := os.Truncate(manifestPath(dir), int64(cut)); err != nil {
			t.Fatal(err)
		}
		if p, err := OpenPersist(Config{Dir: dir}); err == nil {
			p.Close()
			t.Fatalf("manifest truncated at %d opened silently", cut)
		}
	}
}

// TestLSMMissingFilesAreFatal removes a live SSTable and, separately, the
// WAL file the manifest names: both must refuse recovery rather than
// silently lose committed writes.
func TestLSMMissingFilesAreFatal(t *testing.T) {
	t.Run("sstable", func(t *testing.T) {
		dir := t.TempDir()
		buildTabled(t, dir)
		names := dirFiles(t, dir, sstPrefix, sstSuffix)
		if err := os.Remove(filepath.Join(dir, names[0])); err != nil {
			t.Fatal(err)
		}
		if p, err := OpenPersist(Config{Dir: dir}); err == nil {
			p.Close()
			t.Fatal("missing live SSTable recovered silently")
		}
	})
	t.Run("wal", func(t *testing.T) {
		dir := t.TempDir()
		buildTabled(t, dir)
		for _, name := range dirFiles(t, dir, segPrefix, segSuffix) {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				t.Fatal(err)
			}
		}
		if p, err := OpenPersist(Config{Dir: dir}); err == nil {
			p.Close()
			t.Fatal("missing manifest-named WAL recovered silently")
		}
	})
}

// TestLSMAppendAfterTornTail proves writes continue cleanly after a
// torn-tail recovery.
func TestLSMAppendAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPersist(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p.Put("keep", []byte("v1"))
	p.ApplyBatch([]Write{{Key: "torn", Value: []byte("lost")}})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	walName := dirFiles(t, dir, segPrefix, segSuffix)[0]
	wal := filepath.Join(dir, walName)
	st, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	re, err := OpenPersist(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Get("torn"); ok {
		t.Fatal("torn batch survived")
	}
	re.Put("after", []byte("v2"))
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := OpenPersist(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if v, ok := final.Get("keep"); !ok || string(v) != "v1" {
		t.Fatalf("keep = %q/%v", v, ok)
	}
	if v, ok := final.Get("after"); !ok || string(v) != "v2" {
		t.Fatalf("after = %q/%v", v, ok)
	}
}

// TestLSMRefusesMapwalDirectory: pointing the LSM at a directory holding
// mapwal snapshots must be a descriptive error, not a silent partial
// recovery of the shared-format WAL without the snapshot's contents.
func TestLSMRefusesMapwalDirectory(t *testing.T) {
	dir := t.TempDir()
	mw, err := OpenMapWAL(Config{Dir: dir, SegmentBytes: 512, CompactSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		mw.Put(fmt.Sprintf("k%02d", i), []byte(strings.Repeat("v", 64)))
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	if len(dirFiles(t, dir, snapPrefix, snapSuffix)) == 0 {
		t.Fatal("mapwal workload cut no snapshot")
	}
	_, err = OpenPersist(Config{Dir: dir})
	if err == nil {
		t.Fatal("LSM opened a mapwal directory silently")
	}
	if !strings.Contains(err.Error(), string(EngineMapWAL)) {
		t.Fatalf("error %q does not point at the mapwal engine", err)
	}
}

// TestLSMDurabilityModes runs the same workload under every durability
// mode and requires identical recovered state — the modes differ in loss
// windows under power failure, never in logical behaviour.
func TestLSMDurabilityModes(t *testing.T) {
	for _, d := range []Durability{DurabilityNone, DurabilityBatch, DurabilityAlways} {
		t.Run(string(d), func(t *testing.T) {
			dir := t.TempDir()
			p, err := OpenPersist(Config{Dir: dir, Durability: d, MemtableBytes: 1 << 10})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				p.Put(fmt.Sprintf("k%03d", i), []byte(strings.Repeat("v", 32)))
			}
			p.ApplyBatch([]Write{{Key: "k000", Delete: true}, {Key: "extra", Value: []byte("e")}})
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := OpenPersist(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if re.Len() != 100 {
				t.Fatalf("Len = %d, want 100", re.Len())
			}
			if _, ok := re.Get("k000"); ok {
				t.Fatal("deleted key survived")
			}
			if v, ok := re.Get("extra"); !ok || string(v) != "e" {
				t.Fatalf("extra = %q/%v", v, ok)
			}
		})
	}
}

// TestLSMBloomSkipsNegativeLookups checks the bloom fast path: misses on
// never-written keys should overwhelmingly skip disk, and disabling the
// filter (NoBloom) must force block reads instead.
func TestLSMBloomSkipsNegativeLookups(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPersist(Config{Dir: dir, MemtableBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p.Put(fmt.Sprintf("present/%04d", i), []byte(strings.Repeat("v", 32)))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenPersist(Config{Dir: dir, MemtableBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 500; i++ {
		// Keys inside the tables' fence range so only the filter can skip.
		if _, ok := re.Get(fmt.Sprintf("present/%04d-missing", i)); ok {
			t.Fatal("phantom key")
		}
	}
	st := re.Stats()
	if st.BloomChecks == 0 {
		t.Fatal("negative lookups never consulted the bloom filter")
	}
	if st.BloomSkips*10 < st.BloomChecks*9 {
		t.Fatalf("bloom skipped only %d of %d probes (<90%%)", st.BloomSkips, st.BloomChecks)
	}
	if st.BlockReads > st.BloomChecks-st.BloomSkips+10 {
		t.Fatalf("%d block reads for %d unfiltered probes", st.BlockReads, st.BloomChecks-st.BloomSkips)
	}
}

// copyFlatDir copies every regular file in src into dst (the LSM data
// directory is flat), simulating the on-disk state a kill -9 would leave
// while the source engine is still running.
func copyFlatDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLSMCompactionPreservesInFlightFlushWAL pins crash-safety invariant
// 5: a compaction manifest never advances walMin. While a flush is in
// flight the sealed WAL is the only durable copy of the flushing
// memtable's records, so if the compaction manifest becomes the durable
// root in that window it must keep that WAL alive for recovery.
func TestLSMCompactionPreservesInFlightFlushWAL(t *testing.T) {
	dir := t.TempDir()
	// Oversized thresholds: nothing flushes or compacts except by the
	// test's explicit synchronous calls, so the background workers idle.
	p, err := OpenPersist(Config{Dir: dir, MemtableBytes: 1 << 30, CompactFanout: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	seal := func() {
		t.Helper()
		p.mu.Lock()
		p.imm = p.mem
		p.mem = newMemtable()
		p.rotateWALLocked()
		p.mu.Unlock()
	}

	// Two flushed L0 tables.
	p.Put("t1", []byte("one"))
	seal()
	p.doFlush()
	p.Put("t2", []byte("two"))
	seal()
	p.doFlush()

	// A third memtable sealed but NOT yet flushed: its records exist only
	// in the sealed WAL.
	p.ApplyBatch([]Write{{Key: "inflight", Value: []byte("only-in-wal")}})
	seal()

	// Compact L0 while that flush is in flight (p.imm != nil).
	p.mu.Lock()
	p.fanout = 2
	sealed := p.walIdx - 1 // the in-flight memtable's WAL
	p.mu.Unlock()
	if !p.compactOnce() {
		t.Fatal("compaction did no work")
	}
	p.mu.Lock()
	inFlight := p.imm != nil
	p.mu.Unlock()
	if !inFlight {
		t.Fatal("test setup: no flush in flight during compaction")
	}

	m, ok, err := readManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest after compaction: ok=%v err=%v", ok, err)
	}
	if m.walMin > sealed {
		t.Fatalf("compaction manifest walMin %x dooms sealed WAL %x holding un-flushed records", m.walMin, sealed)
	}

	// kill -9 in that window: recovery must still see the record.
	crash := t.TempDir()
	copyFlatDir(t, dir, crash)
	if got := lsmState(t, crash); got["inflight"] != "only-in-wal" {
		t.Fatalf("recovery lost the in-flight flush's records: %v", got)
	}
}

// TestLSMSealFsyncFailureNotAcknowledged: a DurabilityAlways writer whose
// WAL record cannot be fsynced (here: the seal fsync at rotation fails)
// must not be released as success — it observes the commit error and
// panics, and the failure stays sticky through Close.
func TestLSMSealFsyncFailureNotAcknowledged(t *testing.T) {
	p, err := OpenPersist(Config{Dir: t.TempDir(), Durability: DurabilityAlways})
	if err != nil {
		t.Fatal(err)
	}
	p.Put("a", []byte("durable")) // healthy group commit first

	// Append a record without waking the syncer, then fail the seal fsync
	// by closing the WAL file under the rotation.
	c := &p.commit
	p.mu.Lock()
	c.mu.Lock()
	c.appended++
	seq := c.appended
	c.mu.Unlock()
	_ = p.wal.Close()
	p.imm = p.mem
	p.mem = newMemtable()
	p.rotateWALLocked() // seal fsync fails on the closed file
	sealErr := p.err
	p.mu.Unlock()
	if sealErr == nil {
		t.Fatal("seal fsync on a closed file did not error")
	}

	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		p.waitDurable(seq)
	}()
	if pv := <-done; pv == nil {
		t.Fatal("waitDurable acknowledged a write whose seal fsync failed")
	}
	if p.Close() == nil {
		t.Fatal("Close returned nil after a seal fsync failure")
	}
}
