package storage

// The persist engine is an LSM tree — the structure beneath the
// world-state database of the paper's Fabric deployment (LevelDB), built
// here from the repo's own primitives. Writes land in a WAL-fronted
// sorted memtable; full memtables flush into immutable SSTables (see
// sstable.go); a crash-safe manifest (manifest.go) names the live tables;
// a background compactor merges runs level by level, dropping shadowed
// versions and tombstones. The previous persist engine (now mapwal.go)
// kept the whole key space in RAM and replayed the entire history at
// open; here RAM holds one memtable and reopen replays only the WAL tail
// over the manifest — O(recent writes), not O(total state).
//
// On-disk layout inside Config.Dir:
//
//	MANIFEST        root pointer: live tables per level, lowest live WAL,
//	                next file number, live-key count (atomic rewrite)
//	wal-<n>.log     write-ahead log, one file per memtable generation
//	sst-<n>.sst     immutable sorted runs (see sstable.go)
//	*.tmp           in-progress manifest writes (cleaned on open)
//
// WAL files are numbered contiguously (1, 2, 3, ...) so recovery can
// detect a lost file in the replay range; SSTables draw from a separate
// monotonic counter persisted in the manifest. The WAL record format is
// byte-identical to mapwal's (walframe framing, the uvarint op encoding
// of mapwal.go), including the torn-tail-vs-corrupt recovery
// discriminator — walframe.RecoverTail.
//
// Reads merge newest-to-oldest: active memtable, flushing memtable, then
// level 0 downwards, newest table first within a level; the first
// version of a key wins, and a tombstone at any layer hides older
// values. Correctness of that order rests on data only moving DOWN the
// levels, and always via whole-level merges, so within and across levels
// "earlier in search order" always means "written later".
//
// Crash safety invariants, in write order:
//
//  1. A record is in the WAL before it is applied to the memtable.
//  2. A flushed/compacted table is fsynced before the manifest names it.
//  3. The manifest rename is atomic (tmp + fsync + rename + dir fsync).
//  4. WAL files and replaced tables are deleted only AFTER the manifest
//     that obsoletes them is durable. Orphans (tables the manifest does
//     not name, WALs below walMin) are deleted at open.
//  5. Only a flush advances the manifest's walMin (to the WAL left
//     active by its memtable's seal). Compaction re-writes the walMin of
//     the last durable flush/recovery: a sealed WAL whose flush is still
//     in flight is the only durable copy of those records, and a higher
//     walMin would let recovery delete it.
//
// Durability modes (Config.Durability): "none" acknowledges at the page
// cache (kill -9 safe; power loss can lose the tail since the last
// flush). "batch" adds a background group fsync every FsyncInterval —
// writers never wait, loss window is one interval. "always" makes every
// mutation wait for an fsync covering it; concurrent waiters coalesce
// onto one fsync (group commit), so the cost amortises under load.
//
// Integrity: every byte read back — WAL, manifest, table blocks — is CRC
// validated. On the read path a failed check panics rather than serving
// a possibly-wrong value; at open it is a refusal to start.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"socialchain/internal/obs"
	"socialchain/internal/walframe"
)

const (
	// DefaultMemtableBytes is the memtable flush threshold.
	DefaultMemtableBytes int64 = 4 << 20
	// DefaultCompactFanout is how many tables a level accumulates before
	// they merge into the next level.
	DefaultCompactFanout = 4
	// DefaultFsyncInterval is DurabilityBatch's group-commit period.
	DefaultFsyncInterval = 5 * time.Millisecond
)

// lsmStats aggregates the engine's observability counters (plain
// atomics; bumped on hot paths, read at scrape time).
type lsmStats struct {
	flushes        atomic.Int64
	flushedBytes   atomic.Int64
	compactions    atomic.Int64
	compactedBytes atomic.Int64
	stallWaits     atomic.Int64
	bloomChecks    atomic.Int64
	bloomSkips     atomic.Int64
	blockReads     atomic.Int64
	fsyncs         atomic.Int64
}

// PersistStats is a point-in-time snapshot of the engine's shape and
// counters, surfaced through Stats()/Register and the node /statusz.
type PersistStats struct {
	SSTables          int        `json:"sstables"`
	Levels            int        `json:"levels"`
	MemtableBytes     int64      `json:"memtable_bytes"`
	WALBytes          int64      `json:"wal_bytes"`
	LiveKeys          int64      `json:"live_keys"`
	CompactionBacklog int        `json:"compaction_backlog"`
	Flushes           int64      `json:"flushes"`
	FlushedBytes      int64      `json:"flushed_bytes"`
	Compactions       int64      `json:"compactions"`
	CompactedBytes    int64      `json:"compacted_bytes"`
	StallWaits        int64      `json:"stall_waits"`
	BloomChecks       int64      `json:"bloom_checks"`
	BloomSkips        int64      `json:"bloom_skips"`
	BlockReads        int64      `json:"block_reads"`
	WALFsyncs         int64      `json:"wal_fsyncs"`
	Durability        Durability `json:"durability"`
}

// lsmVersion is an immutable snapshot of the table set. Readers pin a
// version (acquire/release) and search it lock-free; flush and
// compaction install a fresh version under the engine lock. A version
// holds one reference on each of its tables; when the last version
// naming a table is released, the table's file is closed and — if a
// compaction marked it dead — deleted.
type lsmVersion struct {
	levels [][]*table
	refs   atomic.Int64
}

func newVersion(levels [][]*table) *lsmVersion {
	v := &lsmVersion{levels: levels}
	v.refs.Store(1)
	for _, lvl := range levels {
		for _, t := range lvl {
			t.ref()
		}
	}
	return v
}

func (v *lsmVersion) acquire() { v.refs.Add(1) }

func (v *lsmVersion) release() {
	if v.refs.Add(-1) == 0 {
		for _, lvl := range v.levels {
			for _, t := range lvl {
				t.unref()
			}
		}
	}
}

func (v *lsmVersion) fileNos() [][]uint64 {
	out := make([][]uint64, len(v.levels))
	for i, lvl := range v.levels {
		out[i] = make([]uint64, len(lvl))
		for j, t := range lvl {
			out[i][j] = t.fileNo
		}
	}
	return out
}

func cloneLevels(levels [][]*table) [][]*table {
	out := make([][]*table, len(levels))
	for i, lvl := range levels {
		out[i] = append([]*table(nil), lvl...)
	}
	return out
}

// searchVersion looks key up newest-to-oldest across the version's
// tables. found covers tombstones (tomb true means "deleted, stop").
func searchVersion(v *lsmVersion, key string, useBloom bool, st *lsmStats) (val []byte, tomb, found bool, err error) {
	for _, lvl := range v.levels {
		for _, t := range lvl {
			val, tomb, found, err = t.get(key, useBloom, st)
			if err != nil || found {
				return val, tomb, found, err
			}
		}
	}
	return nil, false, false, nil
}

// Persist is the LSM disk engine.
type Persist struct {
	mu        sync.RWMutex
	mem       *memtable
	imm       *memtable // flushing memtable (nil when none)
	version   *lsmVersion
	wal       *os.File
	walIdx    uint64 // active WAL index; WAL numbering is contiguous
	walBytes  int64
	nextFile  uint64 // next SSTable file number (persisted in the manifest)
	base      int64  // live keys in the table-covered state
	buf       []byte
	err       error // sticky I/O error, reported by Sync/Close
	closed    bool
	flushCond *sync.Cond // signalled when imm drains (or on error/close)

	// manifestWALMin is the walMin recorded by the last durable manifest
	// (set in recover and advanced only by doFlush). Compaction writes
	// THIS value, never the live walIdx: while a flush is in flight the
	// sealed WAL is the only durable copy of the imm's records, and a
	// compaction manifest naming a higher walMin would doom it. Guarded
	// by p.mu.
	manifestWALMin uint64

	// manifestMu serializes manifest writes so they happen outside p.mu
	// (readers never stall on manifest disk I/O) while each manifest
	// still reflects every previously written one. Lock order:
	// manifestMu before p.mu, never reversed.
	manifestMu sync.Mutex

	dir           string
	memLimit      int64
	fanout        int
	durability    Durability
	fsyncInterval time.Duration
	useBloom      bool

	flushC   chan struct{}
	compactC chan struct{}
	quit     chan struct{}
	wg       sync.WaitGroup

	// commit is the group-commit state: appended counts WAL records
	// written, synced the highest record known fsynced. Writers bump
	// appended (nested inside mu); the syncer goroutine fsyncs and
	// advances synced; DurabilityAlways writers wait for synced to cover
	// their record. Rotation fsyncs the sealed file and jumps synced
	// forward itself. Lock order: p.mu before commit.mu, never reversed.
	commit struct {
		mu               sync.Mutex
		cond             *sync.Cond
		appended, synced uint64
		file             *os.File
		gen              uint64
		closed           bool
		// err is a sticky fsync failure. synced never advances past the
		// failed records, so DurabilityAlways waiters observe the error
		// instead of a false durability acknowledgement (see waitDurable).
		err error
	}

	stats lsmStats
}

// OpenPersist opens (or creates) an LSM persist engine in cfg.Dir,
// replaying the WAL tail over the manifest. An empty Dir materialises a
// fresh temporary directory (see Config.Dir).
func OpenPersist(cfg Config) (*Persist, error) {
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "socialchain-persist-"); err != nil {
			return nil, fmt.Errorf("storage: persist temp dir: %w", err)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: persist dir %s: %w", dir, err)
	}
	durability, err := ParseDurability(string(cfg.Durability))
	if err != nil {
		return nil, err
	}
	if durability == "" {
		if durability, err = envDurability(); err != nil {
			return nil, err
		}
	}
	if durability == "" {
		durability = DurabilityNone
	}
	p := &Persist{
		mem:           newMemtable(),
		dir:           dir,
		memLimit:      cfg.MemtableBytes,
		fanout:        cfg.CompactFanout,
		durability:    durability,
		fsyncInterval: cfg.FsyncInterval,
		useBloom:      !cfg.NoBloom,
		flushC:        make(chan struct{}, 1),
		compactC:      make(chan struct{}, 1),
		quit:          make(chan struct{}),
	}
	p.flushCond = sync.NewCond(&p.mu)
	p.commit.cond = sync.NewCond(&p.commit.mu)
	if p.memLimit <= 0 {
		p.memLimit = cfg.SegmentBytes // old-engine knob, same meaning here
	}
	if p.memLimit <= 0 {
		p.memLimit = DefaultMemtableBytes
	}
	if p.fanout <= 0 {
		p.fanout = cfg.CompactSegments
	}
	if p.fanout <= 0 {
		p.fanout = DefaultCompactFanout
	}
	if p.fsyncInterval <= 0 {
		p.fsyncInterval = DefaultFsyncInterval
	}
	if err := p.recover(); err != nil {
		return nil, err
	}
	p.wg.Add(2)
	go p.flusher()
	go p.compactor()
	if p.durability != DurabilityNone {
		p.wg.Add(1)
		go p.syncer()
	}
	// A small memLimit can leave the replayed memtable already over
	// threshold; flush it now rather than on the first write.
	p.mu.Lock()
	p.maybeFlushLocked()
	p.mu.Unlock()
	return p, nil
}

// Dir returns the engine's data directory.
func (p *Persist) Dir() string { return p.dir }

func (p *Persist) walPath(idx uint64) string {
	return filepath.Join(p.dir, fmt.Sprintf("%s%016x%s", segPrefix, idx, segSuffix))
}

// scanDir inventories the data directory: WAL indices (sorted), table
// file numbers, whether mapwal snapshots are present; temp files are
// deleted.
func (p *Persist) scanDir() (wals []uint64, ssts map[uint64]bool, hasSnaps bool, err error) {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, nil, false, fmt.Errorf("storage: persist scan %s: %w", p.dir, err)
	}
	ssts = make(map[uint64]bool)
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			_ = os.Remove(filepath.Join(p.dir, name))
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			if idx, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64); perr == nil {
				wals = append(wals, idx)
			}
		case strings.HasPrefix(name, sstPrefix) && strings.HasSuffix(name, sstSuffix):
			if no, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, sstPrefix), sstSuffix), 16, 64); perr == nil {
				ssts[no] = true
			}
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			hasSnaps = true
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return wals, ssts, hasSnaps, nil
}

// recover loads the manifest, opens the live tables, deletes orphans of
// interrupted flushes/compactions, and replays the WAL tail into the
// memtable. Reopen cost is O(tables + WAL tail), not O(total state).
func (p *Persist) recover() error {
	wals, ssts, hasSnaps, err := p.scanDir()
	if err != nil {
		return err
	}
	m, haveManifest, err := readManifest(p.dir)
	if err != nil {
		return err
	}
	var levels [][]*table
	if !haveManifest {
		if hasSnaps {
			return fmt.Errorf("storage: persist %s holds %s-format data (%s* snapshots); open it with engine %q",
				p.dir, EngineMapWAL, snapPrefix, EngineMapWAL)
		}
		// Fresh directory, or a snapshot-free mapwal directory (same WAL
		// format): every sst file is an orphan; replay all WALs below.
		for no := range ssts {
			_ = os.Remove(sstPath(p.dir, no))
		}
		m = manifestData{nextFile: 1, walMin: 1}
		if len(wals) > 0 {
			m.walMin = wals[0]
		}
	} else {
		referenced := make(map[uint64]bool)
		levels = make([][]*table, len(m.levels))
		for i, lvl := range m.levels {
			for _, no := range lvl {
				referenced[no] = true
				t, terr := openTable(p.dir, no)
				if terr != nil {
					for _, l := range levels {
						for _, ot := range l {
							_ = ot.f.Close()
						}
					}
					return terr
				}
				levels[i] = append(levels[i], t)
			}
		}
		for no := range ssts {
			if !referenced[no] {
				_ = os.Remove(sstPath(p.dir, no))
			}
		}
	}
	p.base = int64(m.base)
	p.nextFile = m.nextFile
	if p.nextFile == 0 {
		p.nextFile = 1
	}
	p.manifestWALMin = m.walMin
	p.version = newVersion(levels)

	// WAL tail: files below walMin are covered by tables (stale leftovers
	// of a crash between manifest write and deletion); files at/after it
	// replay in order, contiguously, torn tail permitted only on the last.
	live := wals[:0]
	for _, idx := range wals {
		if idx < m.walMin {
			_ = os.Remove(p.walPath(idx))
			continue
		}
		live = append(live, idx)
	}
	if len(live) > 0 && live[0] != m.walMin {
		return fmt.Errorf("storage: persist %s: wal file %x missing (first live is %x): committed writes lost",
			p.dir, m.walMin, live[0])
	}
	if haveManifest && len(live) == 0 {
		return fmt.Errorf("storage: persist %s: wal file %x named by manifest is missing", p.dir, m.walMin)
	}
	for i, idx := range live {
		if i > 0 && idx != live[i-1]+1 {
			return fmt.Errorf("storage: persist %s: wal gap between %x and %x", p.dir, live[i-1], idx)
		}
		if err := p.replayWAL(idx, i == len(live)-1); err != nil {
			return err
		}
	}
	p.walIdx = m.walMin
	if len(live) > 0 {
		p.walIdx = live[len(live)-1]
	}
	f, err := os.OpenFile(p.walPath(p.walIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: persist open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("storage: persist stat wal: %w", err)
	}
	p.wal, p.walBytes = f, st.Size()
	p.commit.file = f
	return nil
}

// replayWAL applies wal-<idx> to the memtable. For the last file a torn
// tail is truncated; anywhere else corruption is fatal.
func (p *Persist) replayWAL(idx uint64, last bool) error {
	path := p.walPath(idx)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("storage: persist wal: %w", err)
	}
	recs, good, err := parseRecords(data)
	if err != nil && !last {
		return fmt.Errorf("storage: persist wal %s corrupt: %w", path, err)
	}
	for _, rec := range recs {
		var aerr error
		derr := decodeRecord(rec, func(key string, val []byte, del bool) {
			if aerr != nil {
				return
			}
			aerr = p.applyReplay(key, val, del)
		})
		if derr == nil {
			derr = aerr
		}
		if derr != nil {
			return fmt.Errorf("storage: persist wal %s: %w", path, derr)
		}
	}
	if err != nil {
		if terr := walframe.RecoverTail(path, data, good); terr != nil {
			return fmt.Errorf("storage: persist wal: %w", terr)
		}
	}
	return nil
}

// applyReplay re-applies one recovered write through the same
// existence-checked path live writes take, so the live-key delta and
// no-op-delete elision replay deterministically.
func (p *Persist) applyReplay(key string, val []byte, del bool) error {
	_, existed, err := p.lookupLocked(key)
	if err != nil {
		return err
	}
	if del {
		if existed {
			p.mem.setDelete(key)
		}
		return nil
	}
	p.mem.setPut(key, val, existed)
	return nil
}

// lookupLocked resolves key against the full logical state (memtables
// then tables). Caller holds p.mu (read or write — tables are immutable
// and the version cannot be swapped while any mu is held).
func (p *Persist) lookupLocked(key string) (val []byte, existed bool, err error) {
	if e, ok := p.mem.get(key); ok {
		if e.tomb {
			return nil, false, nil
		}
		return e.value, true, nil
	}
	if p.imm != nil {
		if e, ok := p.imm.get(key); ok {
			if e.tomb {
				return nil, false, nil
			}
			return e.value, true, nil
		}
	}
	val, tomb, found, err := searchVersion(p.version, key, p.useBloom, &p.stats)
	if err != nil || !found || tomb {
		return nil, false, err
	}
	return val, true, nil
}

// corrupt escalates a CRC/decode failure on the read path: with no error
// return in the KV contract, the only honest answers are the right value
// or no answer at all.
func (p *Persist) corrupt(err error) {
	panic(fmt.Sprintf("storage: persist %s: %v (data integrity failure; refusing to serve possibly-wrong state)", p.dir, err))
}

func (p *Persist) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// appendLocked writes one framed WAL record and returns its group-commit
// sequence (0 when no fsync pipeline runs). Caller holds p.mu. I/O
// errors are sticky: in-memory state stays authoritative for the life of
// the process and Sync/Close report the failure.
func (p *Persist) appendLocked(writes []Write) uint64 {
	if p.err != nil || p.wal == nil {
		return 0
	}
	p.buf = appendRecordFrame(p.buf[:0], writes)
	if _, err := p.wal.Write(p.buf); err != nil {
		p.err = fmt.Errorf("storage: persist wal append: %w", err)
		return 0
	}
	p.walBytes += int64(len(p.buf))
	if p.durability == DurabilityNone {
		return 0
	}
	c := &p.commit
	c.mu.Lock()
	c.appended++
	seq := c.appended
	c.cond.Broadcast()
	c.mu.Unlock()
	return seq
}

// waitDurable blocks a DurabilityAlways writer until the syncer's fsync
// covers its record. Called WITHOUT p.mu held, so appends from other
// writers proceed during the fsync — that overlap is the group commit.
//
// On an fsync failure the wait ends with commit.err set and synced
// still behind the record; DurabilityAlways promises no loss window for
// acknowledged writes, and with no error return in the KV contract a
// write that cannot be made durable must not return at all — so this
// panics, mirroring corrupt().
func (p *Persist) waitDurable(seq uint64) {
	if seq == 0 || p.durability != DurabilityAlways {
		return
	}
	c := &p.commit
	c.mu.Lock()
	for c.synced < seq && c.err == nil && !c.closed {
		c.cond.Wait()
	}
	err, synced := c.err, c.synced
	c.mu.Unlock()
	if err != nil && synced < seq {
		panic(fmt.Sprintf("storage: persist %s: wal fsync failed under Durability=always: %v (refusing to acknowledge a non-durable write)", p.dir, err))
	}
}

// syncer is the group-commit loop: whenever records are appended past
// the synced mark it fsyncs the WAL once for all of them (after a short
// coalescing sleep in batch mode) and releases every waiter.
func (p *Persist) syncer() {
	defer p.wg.Done()
	c := &p.commit
	for {
		c.mu.Lock()
		for c.appended == c.synced && !c.closed && c.err == nil {
			c.cond.Wait()
		}
		if c.closed || c.err != nil {
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		if p.durability == DurabilityBatch {
			time.Sleep(p.fsyncInterval)
		}
		c.mu.Lock()
		target, f, gen := c.appended, c.file, c.gen
		c.mu.Unlock()
		var err error
		if f != nil {
			err = f.Sync()
			p.stats.fsyncs.Add(1)
		}
		c.mu.Lock()
		stale := gen != c.gen // rotation sealed+fsynced that file itself
		if err == nil || stale {
			if c.synced < target {
				c.synced = target
			}
		} else if c.err == nil {
			// synced stays behind the failed records; waiters are woken to
			// observe the error, never released as success.
			c.err = err
		}
		c.cond.Broadcast()
		c.mu.Unlock()
		if err != nil && !stale {
			p.setErr(fmt.Errorf("storage: persist wal fsync: %w", err))
		}
	}
}

// maybeFlushLocked hands a full memtable to the flusher, stalling (with
// a counted wait) when the previous flush is still in flight. Caller
// holds p.mu.
func (p *Persist) maybeFlushLocked() {
	for p.err == nil && !p.closed && p.mem.bytes >= p.memLimit && len(p.mem.data) > 0 {
		if p.imm != nil {
			p.stats.stallWaits.Add(1)
			p.flushCond.Wait()
			continue
		}
		p.imm = p.mem
		p.mem = newMemtable()
		p.rotateWALLocked()
		select {
		case p.flushC <- struct{}{}:
		default:
		}
	}
}

// rotateWALLocked seals the active WAL (fsync — it must be durable
// before the flush that subsumes it can delete it) and starts wal-<next>.
// Caller holds p.mu.
func (p *Persist) rotateWALLocked() {
	if p.err != nil || p.wal == nil {
		return
	}
	idx := p.walIdx + 1
	newF, err := os.OpenFile(p.walPath(idx), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		p.err = fmt.Errorf("storage: persist wal rotate: %w", err)
		return
	}
	old := p.wal
	serr := old.Sync()
	if serr != nil {
		p.err = fmt.Errorf("storage: persist wal seal sync: %w", serr)
	}
	p.stats.fsyncs.Add(1)
	c := &p.commit
	c.mu.Lock()
	c.gen++
	if serr == nil {
		c.synced = c.appended // sealed file covers everything appended so far
	} else if c.err == nil {
		// The sealed file may not be durable: synced must not jump over
		// its records, or DurabilityAlways waiters would be released as
		// success for writes that can still be lost. They observe the
		// error instead (see waitDurable).
		c.err = serr
	}
	c.file = newF
	c.cond.Broadcast()
	c.mu.Unlock()
	_ = old.Close()
	p.wal = newF
	p.walIdx = idx
	p.walBytes = 0
}

func (p *Persist) flusher() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case <-p.flushC:
			p.doFlush()
		}
	}
}

// doFlush writes the immutable memtable out as a level-0 table, installs
// it in a fresh version, persists the manifest, and deletes the WAL
// files the table now covers.
func (p *Persist) doFlush() {
	p.mu.Lock()
	imm := p.imm
	if imm == nil || p.err != nil || p.closed {
		p.flushCond.Broadcast()
		p.mu.Unlock()
		return
	}
	fileNo := p.nextFile
	p.nextFile++
	walMin := p.walIdx // active WAL; everything older is inside imm
	p.mu.Unlock()

	entries := imm.sortedPrefix("")
	w, err := newSSTWriter(p.dir, fileNo)
	var t *table
	if err == nil {
		for i := range entries {
			if err = w.add(entries[i], p.useBloom); err != nil {
				w.abort()
				break
			}
		}
		if err == nil {
			if err = w.finish(p.useBloom); err == nil {
				t, err = openTable(p.dir, fileNo)
			}
		}
	}
	if err != nil {
		// The imm stays readable in memory and its WAL stays on disk: no
		// data is lost in-process, the engine just stops flushing and the
		// error surfaces at Sync/Close.
		p.setErr(err)
		p.mu.Lock()
		p.flushCond.Broadcast()
		p.mu.Unlock()
		return
	}

	p.manifestMu.Lock()
	p.mu.Lock()
	newLevels := cloneLevels(p.version.levels)
	if len(newLevels) == 0 {
		newLevels = append(newLevels, nil)
	}
	newLevels[0] = append([]*table{t}, newLevels[0]...)
	newV := newVersion(newLevels)
	data := manifestData{
		nextFile: p.nextFile,
		walMin:   walMin,
		base:     uint64(p.base + int64(imm.delta)),
		levels:   newV.fileNos(),
	}
	old := p.version
	p.version = newV
	p.base += int64(imm.delta)
	p.imm = nil
	p.flushCond.Broadcast()
	needCompact := len(newLevels[0]) >= p.fanout
	p.mu.Unlock()
	// Manifest disk I/O happens under manifestMu only, so readers and
	// writers on p.mu never stall behind the fsync+rename.
	merr := writeManifest(p.dir, data)
	if merr == nil {
		p.mu.Lock()
		p.manifestWALMin = walMin
		p.mu.Unlock()
	} else {
		p.setErr(merr)
	}
	p.manifestMu.Unlock()
	old.release()
	p.stats.flushes.Add(1)
	p.stats.flushedBytes.Add(t.size)
	// Without a durable manifest the old WALs are still the truth.
	if merr == nil {
		p.removeWALsBelow(walMin)
	}
	if needCompact {
		select {
		case p.compactC <- struct{}{}:
		default:
		}
	}
}

// removeWALsBelow deletes wal files with index < min (subsumed by a
// durable flush).
func (p *Persist) removeWALsBelow(min uint64) {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		idx, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64)
		if perr == nil && idx < min {
			_ = os.Remove(filepath.Join(p.dir, name))
		}
	}
}

func (p *Persist) compactor() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case <-p.compactC:
			for p.compactOnce() {
			}
		}
	}
}

// compactOnce merges the shallowest over-fanout level into one run on
// the next level, returning whether it did any work. Tombstones are
// dropped only when no deeper level holds tables (the shadowed versions
// are then inside this very merge, so both sides vanish together).
func (p *Persist) compactOnce() bool {
	p.mu.RLock()
	if p.closed || p.err != nil {
		p.mu.RUnlock()
		return false
	}
	v := p.version
	level := -1
	for i, lvl := range v.levels {
		if len(lvl) >= p.fanout {
			level = i
			break
		}
	}
	if level < 0 {
		p.mu.RUnlock()
		return false
	}
	inputs := append([]*table(nil), v.levels[level]...)
	dropTombs := true
	for j := level + 1; j < len(v.levels); j++ {
		if len(v.levels[j]) > 0 {
			dropTombs = false
			break
		}
	}
	for _, t := range inputs {
		t.ref() // pin across the merge, beyond this version's lifetime
	}
	p.mu.RUnlock()
	unpin := func() {
		for _, t := range inputs {
			t.unref()
		}
	}

	p.mu.Lock()
	fileNo := p.nextFile
	p.nextFile++
	p.mu.Unlock()

	w, err := newSSTWriter(p.dir, fileNo)
	if err != nil {
		unpin()
		p.setErr(err)
		return false
	}
	sources := make([]lsmSource, len(inputs))
	for i, t := range inputs {
		sources[i] = newTableIter(t, "", "")
	}
	added := 0
	var addErr error
	merr := mergeSources(sources, !dropTombs, func(e lsmEntry) bool {
		if addErr = w.add(e, p.useBloom); addErr != nil {
			return false
		}
		added++
		return true
	})
	if merr == nil {
		merr = addErr
	}
	if merr != nil {
		w.abort()
		unpin()
		p.setErr(fmt.Errorf("storage: persist compaction: %w", merr))
		return false
	}
	var out *table
	if added == 0 {
		w.abort() // everything annihilated; no output table
	} else {
		if err := w.finish(p.useBloom); err != nil {
			unpin()
			p.setErr(err)
			return false
		}
		if out, err = openTable(p.dir, fileNo); err != nil {
			unpin()
			p.setErr(err)
			return false
		}
	}

	p.manifestMu.Lock()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.manifestMu.Unlock()
		unpin()
		if out != nil {
			_ = out.f.Close()
			_ = os.Remove(out.path)
		}
		return false
	}
	drop := make(map[*table]bool, len(inputs))
	for _, t := range inputs {
		drop[t] = true
	}
	newLevels := cloneLevels(p.version.levels)
	kept := newLevels[level][:0]
	for _, t := range newLevels[level] {
		if !drop[t] {
			kept = append(kept, t)
		}
	}
	newLevels[level] = kept
	for len(newLevels) <= level+1 {
		newLevels = append(newLevels, nil)
	}
	if out != nil {
		// The merged run is newer than everything already on level+1.
		newLevels[level+1] = append([]*table{out}, newLevels[level+1]...)
	}
	newV := newVersion(newLevels)
	data := manifestData{
		nextFile: p.nextFile,
		// Compaction rewrites tables only — it must not advance walMin.
		// A sealed WAL whose flush is still in flight (p.imm != nil) is
		// the only durable copy of those records; naming the live walIdx
		// here would let recovery delete it and lose acknowledged writes.
		walMin: p.manifestWALMin,
		base:   uint64(p.base), // compaction preserves logical content
		levels: newV.fileNos(),
	}
	old := p.version
	p.version = newV
	p.mu.Unlock()
	merr = writeManifest(p.dir, data)
	if merr == nil {
		// Only a durable manifest may doom the inputs' files; otherwise
		// the old manifest still names them for recovery.
		for _, t := range inputs {
			t.dead.Store(true)
		}
	} else {
		p.setErr(merr)
	}
	p.manifestMu.Unlock()
	old.release()
	unpin()
	p.stats.compactions.Add(1)
	if out != nil {
		p.stats.compactedBytes.Add(out.size)
	}
	return merr == nil
}

// lsmSource is one ascending stream in a k-way merge. Sources are
// ordered newest-first; mergeSources resolves ties by source index.
type lsmSource interface {
	valid() bool
	entry() lsmEntry
	next()
	srcErr() error
}

func (it *tableIter) srcErr() error { return it.err }

// sliceSource adapts a sorted []lsmEntry (a memtable dump).
type sliceSource struct {
	entries []lsmEntry
	pos     int
}

func (s *sliceSource) valid() bool     { return s.pos < len(s.entries) }
func (s *sliceSource) entry() lsmEntry { return s.entries[s.pos] }
func (s *sliceSource) next()           { s.pos++ }
func (s *sliceSource) srcErr() error   { return nil }

// mergeSources emits the newest version of each key in ascending key
// order. Tombstones are emitted only when keepTombs (compactions that
// are not the deepest level must keep them to shadow older runs); emit
// returning false stops the merge.
func mergeSources(sources []lsmSource, keepTombs bool, emit func(lsmEntry) bool) error {
	for {
		best := -1
		for i, s := range sources {
			if err := s.srcErr(); err != nil {
				return err
			}
			if !s.valid() {
				continue
			}
			if best < 0 || s.entry().key < sources[best].entry().key {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		win := sources[best].entry()
		for i := best; i < len(sources); i++ {
			s := sources[i]
			if s.valid() && s.entry().key == win.key {
				s.next()
				if err := s.srcErr(); err != nil {
					return err
				}
			}
		}
		if win.tomb && !keepTombs {
			continue
		}
		if !emit(win) {
			return nil
		}
	}
}

// Get implements KV: memtables first, then a pinned version searched
// newest-to-oldest, lock-free.
func (p *Persist) Get(key string) ([]byte, bool) {
	p.mu.RLock()
	if e, ok := p.mem.get(key); ok {
		p.mu.RUnlock()
		if e.tomb {
			return nil, false
		}
		return e.value, true
	}
	if p.imm != nil {
		if e, ok := p.imm.get(key); ok {
			p.mu.RUnlock()
			if e.tomb {
				return nil, false
			}
			return e.value, true
		}
	}
	v := p.version
	v.acquire()
	p.mu.RUnlock()
	val, tomb, found, err := searchVersion(v, key, p.useBloom, &p.stats)
	v.release()
	if err != nil {
		p.corrupt(err)
	}
	if !found || tomb {
		return nil, false
	}
	return val, true
}

// Put implements KV.
func (p *Persist) Put(key string, value []byte) bool {
	p.mu.Lock()
	_, existed, err := p.lookupLocked(key)
	if err != nil {
		p.mu.Unlock()
		p.corrupt(err)
	}
	seq := p.appendLocked([]Write{{Key: key, Value: value}})
	p.mem.setPut(key, value, existed)
	p.maybeFlushLocked()
	p.mu.Unlock()
	p.waitDurable(seq)
	return !existed
}

// Delete implements KV. Deleting an absent key writes nothing — not even
// a tombstone: the existence check is authoritative, so there is no
// older version left to shadow.
func (p *Persist) Delete(key string) ([]byte, bool) {
	p.mu.Lock()
	val, existed, err := p.lookupLocked(key)
	if err != nil {
		p.mu.Unlock()
		p.corrupt(err)
	}
	if !existed {
		p.mu.Unlock()
		return nil, false
	}
	seq := p.appendLocked([]Write{{Key: key, Delete: true}})
	p.mem.setDelete(key)
	p.maybeFlushLocked()
	p.mu.Unlock()
	p.waitDurable(seq)
	return val, true
}

// ApplyBatch implements KV: one atomic WAL record, then every write
// applied through the existence-checked path (bloom filters keep the
// fresh-key common case off disk).
func (p *Persist) ApplyBatch(writes []Write) {
	if len(writes) == 0 {
		return
	}
	p.mu.Lock()
	seq := p.appendLocked(writes)
	for i := range writes {
		w := &writes[i]
		_, existed, err := p.lookupLocked(w.Key)
		if err != nil {
			p.mu.Unlock()
			p.corrupt(err)
		}
		if w.Delete {
			if existed {
				p.mem.setDelete(w.Key)
			}
			continue
		}
		p.mem.setPut(w.Key, w.Value, existed)
	}
	p.maybeFlushLocked()
	p.mu.Unlock()
	p.waitDurable(seq)
}

// IterPrefix implements KV: a k-way merge over point-in-time copies of
// the memtables and a pinned version — concurrent flushes, compactions
// and writes never change what an in-flight iteration sees — with fn
// running lock-free, so it may re-enter the KV.
func (p *Persist) IterPrefix(prefix string, fn func(key string, value []byte) bool) {
	p.mu.RLock()
	memEntries := p.mem.sortedPrefix(prefix)
	var immEntries []lsmEntry
	if p.imm != nil {
		immEntries = p.imm.sortedPrefix(prefix)
	}
	v := p.version
	v.acquire()
	p.mu.RUnlock()
	defer v.release()
	sources := []lsmSource{
		&sliceSource{entries: memEntries},
		&sliceSource{entries: immEntries},
	}
	for _, lvl := range v.levels {
		for _, t := range lvl {
			if len(t.blocks) == 0 || t.maxKey < prefix {
				continue
			}
			sources = append(sources, newTableIter(t, prefix, prefix))
		}
	}
	err := mergeSources(sources, false, func(e lsmEntry) bool {
		return fn(e.key, e.value)
	})
	if err != nil {
		p.corrupt(err)
	}
}

// Len implements KV: the persisted base count plus the memtables' live
// deltas — exact, without merging runs.
func (p *Persist) Len() int {
	p.mu.RLock()
	n := p.base + int64(p.mem.delta)
	if p.imm != nil {
		n += int64(p.imm.delta)
	}
	p.mu.RUnlock()
	return int(n)
}

// Sync implements KV: flush the active WAL to stable storage.
func (p *Persist) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	if p.wal == nil {
		return nil
	}
	if err := p.wal.Sync(); err != nil {
		p.err = fmt.Errorf("storage: persist sync: %w", err)
	}
	return p.err
}

// Close implements KV: stop the background workers, seal the WAL and
// release the table set. Idempotent.
func (p *Persist) Close() error {
	p.mu.Lock()
	if p.closed {
		err := p.err
		p.mu.Unlock()
		return err
	}
	p.closed = true
	p.flushCond.Broadcast()
	p.mu.Unlock()
	close(p.quit)
	c := &p.commit
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	p.wg.Wait()
	p.mu.Lock()
	if p.wal != nil {
		if err := p.wal.Sync(); err != nil && p.err == nil {
			p.err = fmt.Errorf("storage: persist close sync: %w", err)
		}
		if err := p.wal.Close(); err != nil && p.err == nil {
			p.err = fmt.Errorf("storage: persist close: %w", err)
		}
		p.wal = nil
	}
	v := p.version
	p.version = nil
	err := p.err
	p.mu.Unlock()
	if v != nil {
		v.release()
	}
	return err
}

// Stats snapshots the engine's shape and counters.
func (p *Persist) Stats() PersistStats {
	st := PersistStats{Durability: p.durability}
	p.mu.RLock()
	if p.version != nil {
		for i, lvl := range p.version.levels {
			st.SSTables += len(lvl)
			if len(lvl) > 0 {
				st.Levels = i + 1
			}
			if len(lvl) >= p.fanout {
				st.CompactionBacklog++
			}
		}
	}
	if p.mem != nil {
		st.MemtableBytes = p.mem.bytes
		st.LiveKeys = p.base + int64(p.mem.delta)
	}
	if p.imm != nil {
		st.MemtableBytes += p.imm.bytes
		st.LiveKeys += int64(p.imm.delta)
	}
	st.WALBytes = p.walBytes
	p.mu.RUnlock()
	st.Flushes = p.stats.flushes.Load()
	st.FlushedBytes = p.stats.flushedBytes.Load()
	st.Compactions = p.stats.compactions.Load()
	st.CompactedBytes = p.stats.compactedBytes.Load()
	st.StallWaits = p.stats.stallWaits.Load()
	st.BloomChecks = p.stats.bloomChecks.Load()
	st.BloomSkips = p.stats.bloomSkips.Load()
	st.BlockReads = p.stats.blockReads.Load()
	st.WALFsyncs = p.stats.fsyncs.Load()
	return st
}

// Register exposes the engine's gauges and counters on a metrics
// registry (typically pre-scoped with peer/store labels — see
// Registry.With). Safe on a nil registry.
func (p *Persist) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("storage_sstables", "Live SSTables in the LSM persist engine.",
		func() float64 { return float64(p.Stats().SSTables) })
	reg.GaugeFunc("storage_lsm_levels", "Occupied LSM levels.",
		func() float64 { return float64(p.Stats().Levels) })
	reg.GaugeFunc("storage_memtable_bytes", "Bytes buffered in the active+flushing memtables.",
		func() float64 { return float64(p.Stats().MemtableBytes) })
	reg.GaugeFunc("storage_wal_bytes", "Bytes in the active WAL file.",
		func() float64 { return float64(p.Stats().WALBytes) })
	reg.GaugeFunc("storage_compaction_backlog", "Levels at or over the compaction fanout.",
		func() float64 { return float64(p.Stats().CompactionBacklog) })
	reg.CounterFunc("storage_flush_total", "Memtable flushes into SSTables.",
		p.stats.flushes.Load)
	reg.CounterFunc("storage_compaction_total", "Background compaction merges.",
		p.stats.compactions.Load)
	reg.CounterFunc("storage_compaction_bytes_total", "Bytes rewritten by compaction.",
		p.stats.compactedBytes.Load)
	reg.CounterFunc("storage_stall_waits_total", "Writer stalls waiting for a flush slot.",
		p.stats.stallWaits.Load)
	reg.CounterFunc("storage_bloom_checks_total", "Bloom filter probes on table lookups.",
		p.stats.bloomChecks.Load)
	reg.CounterFunc("storage_bloom_skips_total", "Table lookups answered negative by the bloom filter without a disk read.",
		p.stats.bloomSkips.Load)
	reg.CounterFunc("storage_block_reads_total", "SSTable data block reads.",
		p.stats.blockReads.Load)
	reg.CounterFunc("storage_wal_fsync_total", "WAL fsyncs (group commits, rotations).",
		p.stats.fsyncs.Load)
}
