// Package ordering implements the ordering service of the permissioned
// blockchain: a block cutter that batches endorsed transactions by count,
// size and timeout, and a BFT-backed service that achieves total order on
// batches through the consensus validators, delivering identical batch
// sequences to every peer's committer.
package ordering

import (
	"encoding/json"
	"errors"
	"sync"
	"time"

	"socialchain/internal/ledger"
	"socialchain/internal/obs"
	"socialchain/internal/sim"
)

// Proposer receives cut batches for total ordering. A local
// *consensus.Validator satisfies it directly; an out-of-process orderer
// daemon plugs in a remote proposer that ships the batch to a validator
// over the wire.
type Proposer interface {
	Propose(payload []byte)
}

// ErrStopped is returned by Submit after Stop: a stopped service would
// silently drop the transaction (its loop no longer cuts batches).
var ErrStopped = errors.New("ordering: service stopped")

// ErrBacklog is returned by Submit when the pending queue is at its
// MaxPendingTxs bound — the backpressure signal ingest clients react to
// (back off and resubmit) instead of growing the queue without limit.
var ErrBacklog = errors.New("ordering: pending queue full")

// CutterConfig tunes batching, analogous to Fabric's BatchSize/BatchTimeout.
type CutterConfig struct {
	// MaxMessages cuts a batch at this many transactions (default 10).
	MaxMessages int
	// MaxBytes cuts a batch when its encoded size would exceed this
	// (default 2 MiB).
	MaxBytes int
	// BatchTimeout cuts a non-empty batch after this delay (default 50ms).
	BatchTimeout time.Duration
	// MaxPendingTxs bounds the transactions buffered awaiting a cut.
	// Submissions arriving while a slow consensus proposal holds the
	// cutter back pile up here; at the bound Submit rejects with
	// ErrBacklog instead of growing the slice unboundedly (default 4096).
	MaxPendingTxs int
}

func (c *CutterConfig) fill() {
	if c.MaxMessages <= 0 {
		c.MaxMessages = 10
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 2 << 20
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 50 * time.Millisecond
	}
	if c.MaxPendingTxs <= 0 {
		c.MaxPendingTxs = 4096
	}
}

// Batch is the unit of ordering: a slice of endorsed transactions.
type Batch struct {
	Txs []ledger.Transaction `json:"txs"`
}

// Encode serialises a batch for consensus.
func (b Batch) Encode() []byte {
	enc, err := json.Marshal(b)
	if err != nil {
		panic("ordering: batch marshal: " + err.Error())
	}
	return enc
}

// DecodeBatch parses a batch payload.
func DecodeBatch(p []byte) (Batch, error) {
	var b Batch
	err := json.Unmarshal(p, &b)
	return b, err
}

// Service accepts transactions, cuts batches and proposes them through the
// local consensus validator. Decided batches arrive at the validator's
// Deliver callback (wired by the network assembly), not here.
type Service struct {
	cfg       CutterConfig
	validator Proposer
	clock     sim.Clock

	mu       sync.Mutex
	pending  []ledger.Transaction
	bytes    int
	oldest   time.Time
	stopped  bool
	stopCh   chan struct{}
	doneCh   chan struct{}
	proposed int
}

// NewService creates an ordering front-end over a batch proposer
// (normally a consensus validator).
func NewService(cfg CutterConfig, v Proposer, clock sim.Clock) *Service {
	cfg.fill()
	if clock == nil {
		clock = sim.RealClock{}
	}
	return &Service{
		cfg:       cfg,
		validator: v,
		clock:     clock,
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
	}
}

// Start launches the batch-timeout loop.
func (s *Service) Start() { go s.loop() }

// Stop flushes nothing and stops the loop. Stopping twice is a no-op;
// subsequent Submits are rejected with ErrStopped.
func (s *Service) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stopCh)
	<-s.doneCh
}

// Submit enqueues one endorsed transaction for ordering. It rejects
// transactions after Stop (ErrStopped) and applies the MaxPendingTxs
// backpressure bound (ErrBacklog) so the pending queue cannot grow
// without limit while consensus is slow.
func (s *Service) Submit(tx ledger.Transaction) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrStopped
	}
	if len(s.pending) >= s.cfg.MaxPendingTxs {
		s.mu.Unlock()
		return ErrBacklog
	}
	size := len(tx.Bytes())
	if len(s.pending) == 0 {
		s.oldest = s.clock.Now()
	}
	// Cut on byte overflow before appending.
	if s.bytes+size > s.cfg.MaxBytes && len(s.pending) > 0 {
		s.cutLocked()
	}
	s.pending = append(s.pending, tx)
	s.bytes += size
	var cut Batch
	doCut := false
	if len(s.pending) >= s.cfg.MaxMessages {
		cut, doCut = s.takeLocked()
	}
	s.mu.Unlock()
	if doCut {
		s.propose(cut)
	}
	return nil
}

// cutLocked proposes the current pending batch; caller holds mu.
func (s *Service) cutLocked() {
	batch, ok := s.takeLocked()
	if !ok {
		return
	}
	s.mu.Unlock()
	s.propose(batch)
	s.mu.Lock()
}

func (s *Service) takeLocked() (Batch, bool) {
	if len(s.pending) == 0 {
		return Batch{}, false
	}
	batch := Batch{Txs: s.pending}
	s.pending = nil
	s.bytes = 0
	return batch, true
}

func (s *Service) propose(b Batch) {
	s.mu.Lock()
	s.proposed++
	s.mu.Unlock()
	s.validator.Propose(b.Encode())
}

// Observe publishes the service's cutter instrumentation into an obs
// registry: queue depth (the backpressure picture) and batches proposed.
func (s *Service) Observe(reg *obs.Registry) {
	reg.GaugeFunc("ordering_pending_txs", "Transactions buffered awaiting a batch cut.", func() float64 {
		return float64(s.PendingTxs())
	})
	reg.CounterFunc("ordering_batches_proposed_total", "Batches proposed to consensus.", func() int64 {
		return int64(s.Proposed())
	})
}

// Proposed reports how many batches this service has proposed.
func (s *Service) Proposed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.proposed
}

// PendingTxs reports the number of transactions awaiting a cut.
func (s *Service) PendingTxs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

func (s *Service) loop() {
	defer close(s.doneCh)
	tick := s.cfg.BatchTimeout / 2
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.clock.After(tick):
			s.mu.Lock()
			if len(s.pending) > 0 && s.clock.Now().Sub(s.oldest) >= s.cfg.BatchTimeout {
				s.cutLocked()
			}
			s.mu.Unlock()
		}
	}
}
