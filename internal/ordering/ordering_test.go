package ordering

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"socialchain/internal/consensus"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
)

// orderingHarness runs n validators, each with an ordering service, and
// records batches delivered at validator 0.
type orderingHarness struct {
	services []*Service
	mu       sync.Mutex
	batches  [][]ledger.Transaction
}

func newOrderingHarness(t *testing.T, n int, cfg CutterConfig) *orderingHarness {
	t.Helper()
	h := &orderingHarness{}
	net := consensus.NewInProcNet(nil, nil)
	ids := make([]string, n)
	signers := make([]*msp.Signer, n)
	idents := make(map[string]msp.Identity)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("o%d", i)
		s, err := msp.NewSigner("org", ids[i], msp.RoleMember)
		if err != nil {
			t.Fatal(err)
		}
		signers[i] = s
		idents[ids[i]] = s.Identity
	}
	var validators []*consensus.Validator
	for i := 0; i < n; i++ {
		first := i == 0
		v := consensus.NewValidator(consensus.Config{
			ID:         ids[i],
			Validators: ids,
			Signer:     signers[i],
			Identities: idents,
			Sender:     net,
			Deliver: func(seq uint64, payload []byte) {
				if !first {
					return
				}
				batch, err := DecodeBatch(payload)
				if err != nil {
					t.Errorf("decode batch: %v", err)
					return
				}
				h.mu.Lock()
				h.batches = append(h.batches, batch.Txs)
				h.mu.Unlock()
			},
		})
		v.Start()
		validators = append(validators, v)
		svc := NewService(cfg, v, nil)
		svc.Start()
		h.services = append(h.services, svc)
	}
	t.Cleanup(func() {
		for _, s := range h.services {
			s.Stop()
		}
		for _, v := range validators {
			v.Stop()
		}
	})
	return h
}

func (h *orderingHarness) batchCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.batches)
}

func (h *orderingHarness) totalTxs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, b := range h.batches {
		n += len(b)
	}
	return n
}

func testTx(t *testing.T, id string) ledger.Transaction {
	t.Helper()
	s, err := msp.NewSigner("org", "client", msp.RoleMember)
	if err != nil {
		t.Fatal(err)
	}
	return ledger.Transaction{ID: id, ChannelID: "ch", Creator: s.Identity, Timestamp: time.Now()}
}

func waitFor(t *testing.T, cond func() bool, timeout time.Duration, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestCutOnMaxMessages(t *testing.T) {
	h := newOrderingHarness(t, 4, CutterConfig{MaxMessages: 3, BatchTimeout: time.Hour})
	for i := 0; i < 6; i++ {
		h.services[0].Submit(testTx(t, fmt.Sprintf("tx%d", i)))
	}
	waitFor(t, func() bool { return h.batchCount() >= 2 }, 5*time.Second, "2 batches")
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, b := range h.batches {
		if len(b) != 3 {
			t.Fatalf("batch %d has %d txs, want 3", i, len(b))
		}
	}
}

func TestCutOnTimeout(t *testing.T) {
	h := newOrderingHarness(t, 4, CutterConfig{MaxMessages: 100, BatchTimeout: 30 * time.Millisecond})
	h.services[0].Submit(testTx(t, "lonely"))
	waitFor(t, func() bool { return h.batchCount() == 1 }, 5*time.Second, "timeout cut")
	if h.totalTxs() != 1 {
		t.Fatalf("total txs %d", h.totalTxs())
	}
}

func TestCutOnBytes(t *testing.T) {
	h := newOrderingHarness(t, 4, CutterConfig{MaxMessages: 100, MaxBytes: 700, BatchTimeout: 50 * time.Millisecond})
	// Each tx is a few hundred bytes once encoded; six must overflow 700 B
	// repeatedly.
	for i := 0; i < 6; i++ {
		h.services[0].Submit(testTx(t, fmt.Sprintf("bytes-%d", i)))
	}
	waitFor(t, func() bool { return h.totalTxs() == 6 }, 5*time.Second, "all txs ordered")
	if h.batchCount() < 2 {
		t.Fatalf("byte limit never cut: %d batches", h.batchCount())
	}
}

func TestMultipleEntryPoints(t *testing.T) {
	h := newOrderingHarness(t, 4, CutterConfig{MaxMessages: 1, BatchTimeout: 20 * time.Millisecond})
	for i := 0; i < 8; i++ {
		h.services[i%4].Submit(testTx(t, fmt.Sprintf("multi-%d", i)))
	}
	waitFor(t, func() bool { return h.totalTxs() == 8 }, 10*time.Second, "8 txs ordered")
	// No duplicates.
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := map[string]bool{}
	for _, b := range h.batches {
		for _, tx := range b {
			if seen[tx.ID] {
				t.Fatalf("tx %s ordered twice", tx.ID)
			}
			seen[tx.ID] = true
		}
	}
}

func TestBatchEncodeDecodeRoundTrip(t *testing.T) {
	b := Batch{Txs: []ledger.Transaction{testTx(t, "a"), testTx(t, "b")}}
	got, err := DecodeBatch(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Txs) != 2 || got.Txs[0].ID != "a" || got.Txs[1].ID != "b" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestDecodeBatchRejectsGarbage(t *testing.T) {
	if _, err := DecodeBatch([]byte("not-json")); err == nil {
		t.Fatal("garbage batch accepted")
	}
}

func TestPendingAndProposedCounters(t *testing.T) {
	h := newOrderingHarness(t, 4, CutterConfig{MaxMessages: 2, BatchTimeout: time.Hour})
	h.services[0].Submit(testTx(t, "p1"))
	if h.services[0].PendingTxs() != 1 {
		t.Fatalf("pending = %d", h.services[0].PendingTxs())
	}
	h.services[0].Submit(testTx(t, "p2"))
	waitFor(t, func() bool { return h.services[0].Proposed() == 1 }, 5*time.Second, "proposal")
	if h.services[0].PendingTxs() != 0 {
		t.Fatalf("pending after cut = %d", h.services[0].PendingTxs())
	}
}

// TestSubmitAfterStopRejected checks the post-Stop typed error: a stopped
// service must reject rather than silently drop transactions, and Stop
// must be idempotent.
func TestSubmitAfterStopRejected(t *testing.T) {
	h := newOrderingHarness(t, 4, CutterConfig{MaxMessages: 2, BatchTimeout: 20 * time.Millisecond})
	if err := h.services[0].Submit(testTx(t, "before")); err != nil {
		t.Fatalf("submit before stop: %v", err)
	}
	h.services[0].Stop()
	h.services[0].Stop() // idempotent
	if err := h.services[0].Submit(testTx(t, "after")); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after stop: err = %v, want ErrStopped", err)
	}
	if got := h.services[0].PendingTxs(); got > 1 {
		t.Fatalf("pending after rejected submit = %d", got)
	}
}

// TestSubmitBacklogBound checks the MaxPendingTxs backpressure bound. The
// service is built over a stopped-clock-free but unstarted consensus pair
// so nothing drains pending; the bound must convert unbounded growth into
// ErrBacklog.
func TestSubmitBacklogBound(t *testing.T) {
	// A service whose loop is never started and whose MaxMessages is huge
	// never cuts, so pending only grows via Submit.
	svc := NewService(CutterConfig{MaxMessages: 1 << 30, BatchTimeout: time.Hour, MaxPendingTxs: 8}, nil, nil)
	for i := 0; i < 8; i++ {
		if err := svc.Submit(testTx(t, fmt.Sprintf("fill-%d", i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := svc.Submit(testTx(t, "overflow")); !errors.Is(err, ErrBacklog) {
		t.Fatalf("submit at bound: err = %v, want ErrBacklog", err)
	}
	if got := svc.PendingTxs(); got != 8 {
		t.Fatalf("pending = %d, want 8", got)
	}
}
