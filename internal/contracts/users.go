package contracts

import (
	"encoding/json"
	"fmt"

	"socialchain/internal/chaincode"
)

// Users is the User Registration chaincode: it validates and records the
// credentials of data sources for audits and accountability.
type Users struct{}

// Name implements chaincode.Chaincode.
func (Users) Name() string { return UsersCC }

// Invoke implements chaincode.Chaincode.
func (Users) Invoke(stub chaincode.Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case "registerUser":
		return registerUser(stub, args)
	case "getUser":
		return getUser(stub, args)
	case "userExists":
		return userExists(stub, args)
	case "deactivateUser":
		return setUserActive(stub, args, false)
	case "reactivateUser":
		return setUserActive(stub, args, true)
	case "listUsers":
		return listUsers(stub)
	default:
		return nil, fmt.Errorf("users: unknown function %q", fn)
	}
}

// requireAdmin verifies the transaction creator is an enrolled admin.
func requireAdmin(stub chaincode.Stub) error {
	resp, err := stub.InvokeChaincode(AdminCC, "adminExists", [][]byte{[]byte(stub.GetCreator().ID())})
	if err != nil {
		return err
	}
	if string(resp) != "true" {
		return fmt.Errorf("users: creator %s is not an enrolled admin", stub.GetCreator().ID())
	}
	return nil
}

func registerUser(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("users: registerUser expects one JSON record")
	}
	if err := requireAdmin(stub); err != nil {
		return nil, err
	}
	var rec UserRecord
	if err := json.Unmarshal(args[0], &rec); err != nil {
		return nil, fmt.Errorf("users: bad record: %w", err)
	}
	if rec.UserID == "" {
		return nil, fmt.Errorf("users: empty user id")
	}
	if len(rec.PubKey) == 0 {
		return nil, fmt.Errorf("users: user %s lacks a public key", rec.UserID)
	}
	if rec.Role != "trusted-source" && rec.Role != "untrusted-source" {
		return nil, fmt.Errorf("users: role %q must be trusted-source or untrusted-source", rec.Role)
	}
	existing, err := stub.GetState(userKeyPrefix + rec.UserID)
	if err != nil {
		return nil, err
	}
	if existing != nil {
		return nil, fmt.Errorf("users: user %s already registered", rec.UserID)
	}
	rec.Active = true
	rec.RegisteredAt = stub.GetTxTimestamp()
	rec.RegisteredBy = stub.GetCreator().ID()
	rec.Trusted = rec.Role == "trusted-source"
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if err := stub.PutState(userKeyPrefix+rec.UserID, b); err != nil {
		return nil, err
	}
	if err := stub.SetEvent("user.registered", []byte(rec.UserID)); err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf("user %s registered", rec.UserID)), nil
}

func getUser(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("users: getUser expects userId")
	}
	rec, err := stub.GetState(userKeyPrefix + string(args[0]))
	if err != nil {
		return nil, err
	}
	if rec == nil {
		return nil, fmt.Errorf("users: user %s not registered", args[0])
	}
	return rec, nil
}

func userExists(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("users: userExists expects userId")
	}
	rec, err := stub.GetState(userKeyPrefix + string(args[0]))
	if err != nil {
		return nil, err
	}
	if rec == nil {
		return []byte("false"), nil
	}
	return []byte("true"), nil
}

func setUserActive(stub chaincode.Stub, args [][]byte, active bool) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("users: expects userId")
	}
	if err := requireAdmin(stub); err != nil {
		return nil, err
	}
	key := userKeyPrefix + string(args[0])
	raw, err := stub.GetState(key)
	if err != nil {
		return nil, err
	}
	if raw == nil {
		return nil, fmt.Errorf("users: user %s not registered", args[0])
	}
	var rec UserRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, err
	}
	rec.Active = active
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if err := stub.PutState(key, b); err != nil {
		return nil, err
	}
	return []byte("ok"), nil
}

func listUsers(stub chaincode.Stub) ([]byte, error) {
	kvs, err := stub.GetStateByRange(userKeyPrefix, userKeyPrefix+"\xff")
	if err != nil {
		return nil, err
	}
	out := make([]UserRecord, 0, len(kvs))
	for _, kv := range kvs {
		var rec UserRecord
		if err := json.Unmarshal(kv.Value, &rec); err != nil {
			return nil, fmt.Errorf("users: corrupt record at %s: %w", kv.Key, err)
		}
		out = append(out, rec)
	}
	return json.Marshal(out)
}
