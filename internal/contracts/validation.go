package contracts

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"socialchain/internal/chaincode"
	"socialchain/internal/detect"
)

// Validation is the validation chaincode of §III-A. Mirroring the paper's
// validateTransaction, every endorsing peer independently performs:
//
//  1. Source authentication — the submitting identity must be a registered,
//     active user, and untrusted sources must clear the trust-score gate;
//  2. Schema verification — completeness, correct data types and
//     cryptographic hash integrity of the metadata record.
type Validation struct{}

// Name implements chaincode.Chaincode.
func (Validation) Name() string { return ValidationCC }

// Invoke implements chaincode.Chaincode.
func (Validation) Invoke(stub chaincode.Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case "validateTransaction":
		return validateTransaction(stub, args, true)
	case "checkTransaction":
		// Read-only variant used by clients to pre-validate before paying
		// for IPFS storage; writes no audit record.
		return validateTransaction(stub, args, false)
	default:
		return nil, fmt.Errorf("validation: unknown function %q", fn)
	}
}

// AuditRecord is the persisted outcome of a validation.
type AuditRecord struct {
	TxID     string `json:"tx_id"`
	Source   string `json:"source"`
	Outcome  string `json:"outcome"`
	DataHash string `json:"data_hash"`
}

// validateTransaction checks (metadataJSON, payloadHashHex) for the calling
// transaction.
func validateTransaction(stub chaincode.Stub, args [][]byte, writeAudit bool) ([]byte, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("validation: expects metadata JSON and payload hash")
	}
	metadataJSON, payloadHash := args[0], string(args[1])
	txID := stub.GetTxID()
	source := stub.GetCreator().ID()

	// --- Source authentication ---
	userRaw, err := stub.InvokeChaincode(UsersCC, "getUser", [][]byte{[]byte(source)})
	if err != nil {
		return nil, fmt.Errorf("validation: Invalid source for transaction %s: %w", txID, err)
	}
	var user UserRecord
	if err := json.Unmarshal(userRaw, &user); err != nil {
		return nil, fmt.Errorf("validation: corrupt user record: %w", err)
	}
	if !user.Active {
		return nil, fmt.Errorf("validation: Invalid source for transaction %s: user %s deactivated", txID, source)
	}
	if !user.Trusted {
		// Untrusted sources must clear the on-chain trust gate.
		ok, err := stub.InvokeChaincode(TrustCC, "isTrusted", [][]byte{[]byte(source)})
		if err != nil {
			return nil, err
		}
		if string(ok) != "true" {
			return nil, fmt.Errorf("validation: Invalid source for transaction %s: trust score below threshold", txID)
		}
	}

	// --- Schema verification ---
	if err := VerifySchema(metadataJSON, payloadHash); err != nil {
		return nil, fmt.Errorf("validation: Invalid schema for transaction %s: %w", txID, err)
	}

	if writeAudit {
		audit := AuditRecord{TxID: txID, Source: source, Outcome: "valid", DataHash: payloadHash}
		b, err := json.Marshal(audit)
		if err != nil {
			return nil, err
		}
		if err := stub.PutState(auditKeyPrefix+txID, b); err != nil {
			return nil, err
		}
	}
	return []byte("valid"), nil
}

// VerifySchema performs the paper's schema check over a metadata record:
// required fields, type sanity and hash integrity. Exported so the client
// SDK (core) can pre-validate before shipping payloads to IPFS.
func VerifySchema(metadataJSON []byte, payloadHash string) error {
	var rec detect.MetadataRecord
	if err := json.Unmarshal(metadataJSON, &rec); err != nil {
		return fmt.Errorf("metadata is not valid JSON: %w", err)
	}
	if rec.FrameID == "" {
		return fmt.Errorf("missing frame_id")
	}
	if rec.CameraID == "" {
		return fmt.Errorf("missing camera_id")
	}
	if rec.Platform != "static" && rec.Platform != "drone" {
		return fmt.Errorf("platform %q must be static or drone", rec.Platform)
	}
	if rec.CapturedAt.IsZero() {
		return fmt.Errorf("missing captured_at timestamp")
	}
	if rec.SizeBytes <= 0 {
		return fmt.Errorf("size_bytes must be positive")
	}
	if rec.Location.Latitude < -90 || rec.Location.Latitude > 90 {
		return fmt.Errorf("latitude %f out of range", rec.Location.Latitude)
	}
	if rec.Location.Longitude < -180 || rec.Location.Longitude > 180 {
		return fmt.Errorf("longitude %f out of range", rec.Location.Longitude)
	}
	if len(rec.Detections) == 0 {
		return fmt.Errorf("record has no detections")
	}
	for i, d := range rec.Detections {
		if d.Label == "" {
			return fmt.Errorf("detection %d missing label", i)
		}
		if d.Confidence < 0 || d.Confidence > 1 {
			return fmt.Errorf("detection %d confidence %f out of [0,1]", i, d.Confidence)
		}
		if d.BoundingBox.X1 < 0 || d.BoundingBox.Y1 < 0 ||
			d.BoundingBox.X2 <= d.BoundingBox.X1 || d.BoundingBox.Y2 <= d.BoundingBox.Y1 {
			return fmt.Errorf("detection %d bounding box malformed", i)
		}
		if d.Timestamp.IsZero() {
			return fmt.Errorf("detection %d missing timestamp", i)
		}
	}
	// Cryptographic hash integrity: the metadata's data_hash must be a
	// well-formed SHA-256 and match the payload hash presented.
	if len(rec.DataHash) != 64 {
		return fmt.Errorf("data_hash must be 64 hex chars, got %d", len(rec.DataHash))
	}
	if _, err := hex.DecodeString(rec.DataHash); err != nil {
		return fmt.Errorf("data_hash is not hex: %w", err)
	}
	if payloadHash != "" && rec.DataHash != payloadHash {
		return fmt.Errorf("data_hash %s does not match payload hash %s", rec.DataHash, payloadHash)
	}
	return nil
}
