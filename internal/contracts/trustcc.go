package contracts

import (
	"encoding/json"
	"fmt"
	"strconv"

	"socialchain/internal/chaincode"
	"socialchain/internal/trust"
)

// Trust is the trust-scoring chaincode: it persists per-source trust states
// on-chain and folds in observations using the pure update rule from the
// trust package, so all endorsers agree on every score.
type Trust struct{}

// Name implements chaincode.Chaincode.
func (Trust) Name() string { return TrustCC }

// Invoke implements chaincode.Chaincode.
func (Trust) Invoke(stub chaincode.Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case "initParams":
		return initTrustParams(stub, args)
	case "observe":
		return observeTrust(stub, args)
	case "getTrust":
		return getTrust(stub, args)
	case "isTrusted":
		return isTrusted(stub, args)
	case "listScores":
		return listScores(stub)
	default:
		return nil, fmt.Errorf("trust: unknown function %q", fn)
	}
}

// loadParams returns the channel's trust parameters (defaults when unset).
func loadParams(stub chaincode.Stub) (trust.Params, error) {
	raw, err := stub.GetState(paramsKey)
	if err != nil {
		return trust.Params{}, err
	}
	if raw == nil {
		return trust.DefaultParams(), nil
	}
	var p trust.Params
	if err := json.Unmarshal(raw, &p); err != nil {
		return trust.Params{}, fmt.Errorf("trust: corrupt params: %w", err)
	}
	return p, nil
}

func initTrustParams(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("trust: initParams expects params JSON")
	}
	var p trust.Params
	if err := json.Unmarshal(args[0], &p); err != nil {
		return nil, fmt.Errorf("trust: bad params: %w", err)
	}
	if err := stub.PutState(paramsKey, args[0]); err != nil {
		return nil, err
	}
	return []byte("ok"), nil
}

// observeTrust folds one observation: args are (sourceId, valid "0"/"1",
// crossValidation float).
func observeTrust(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("trust: observe expects sourceId, valid, crossVal")
	}
	sourceID := string(args[0])
	valid := string(args[1]) == "1" || string(args[1]) == "true"
	cv, err := strconv.ParseFloat(string(args[2]), 64)
	if err != nil {
		return nil, fmt.Errorf("trust: bad crossVal %q: %w", args[2], err)
	}
	p, err := loadParams(stub)
	if err != nil {
		return nil, err
	}
	key := scoreKeyPrefix + sourceID
	raw, err := stub.GetState(key)
	if err != nil {
		return nil, err
	}
	var st trust.State
	if raw == nil {
		st = trust.NewState(sourceID, p, stub.GetTxTimestamp())
	} else if st, err = trust.UnmarshalState(raw); err != nil {
		return nil, err
	}
	st = trust.Update(st, trust.Observation{Valid: valid, CrossValidation: cv, At: stub.GetTxTimestamp()}, p)
	if err := stub.PutState(key, st.Marshal()); err != nil {
		return nil, err
	}
	if st.Flagged {
		if err := stub.SetEvent("trust.flagged", []byte(sourceID)); err != nil {
			return nil, err
		}
	}
	return st.Marshal(), nil
}

func getTrust(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("trust: getTrust expects sourceId")
	}
	p, err := loadParams(stub)
	if err != nil {
		return nil, err
	}
	raw, err := stub.GetState(scoreKeyPrefix + string(args[0]))
	if err != nil {
		return nil, err
	}
	if raw == nil {
		// Unknown sources start at the initial score.
		st := trust.NewState(string(args[0]), p, stub.GetTxTimestamp())
		return st.Marshal(), nil
	}
	return raw, nil
}

func isTrusted(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	raw, err := getTrust(stub, args)
	if err != nil {
		return nil, err
	}
	st, err := trust.UnmarshalState(raw)
	if err != nil {
		return nil, err
	}
	p, err := loadParams(stub)
	if err != nil {
		return nil, err
	}
	if trust.Trusted(st, p) {
		return []byte("true"), nil
	}
	return []byte("false"), nil
}

func listScores(stub chaincode.Stub) ([]byte, error) {
	kvs, err := stub.GetStateByRange(scoreKeyPrefix, scoreKeyPrefix+"\xff")
	if err != nil {
		return nil, err
	}
	out := make([]trust.State, 0, len(kvs))
	for _, kv := range kvs {
		st, err := trust.UnmarshalState(kv.Value)
		if err != nil {
			return nil, fmt.Errorf("trust: corrupt score at %s: %w", kv.Key, err)
		}
		out = append(out, st)
	}
	return json.Marshal(out)
}
