package contracts

import (
	"encoding/json"
	"fmt"
	"strconv"

	"socialchain/internal/chaincode"
	"socialchain/internal/detect"
	"socialchain/internal/statedb"
	"socialchain/internal/trust"
)

// Data is the Data Upload / Data Retrieval chaincode: it records the IPFS
// CID and extracted metadata on-chain (the paper's addDataToIPFS /
// getDataFromIPFS pair), maintains secondary indexes for conditional
// queries, links records into per-source provenance chains, and feeds the
// trust engine with validation outcomes and cross-validation scores.
type Data struct{}

// Name implements chaincode.Chaincode.
func (Data) Name() string { return DataCC }

// Invoke implements chaincode.Chaincode.
func (Data) Invoke(stub chaincode.Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case "addData":
		return addData(stub, args)
	case "getData":
		return getData(stub, args)
	case "queryByLabel":
		return queryByIndex(stub, idxLabel, args)
	case "queryBySource":
		return queryByIndex(stub, idxSource, args)
	case "queryByCamera":
		return queryByIndex(stub, idxCamera, args)
	case "querySelector":
		return querySelector(stub, args)
	case "queryPage":
		return queryPage(stub, args)
	case "getProvenance":
		return getProvenance(stub, args)
	case "getHistory":
		return getHistory(stub, args)
	case "count":
		return countRecords(stub)
	default:
		return nil, fmt.Errorf("data: unknown function %q", fn)
	}
}

// addData stores a validated record: args are (cid, metadataJSON). The
// payload itself is already in IPFS; only the CID and metadata go on-chain.
func addData(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("data: addData expects cid and metadata JSON")
	}
	cidStr := string(args[0])
	metadataJSON := args[1]
	if cidStr == "" {
		return nil, fmt.Errorf("data: empty cid")
	}
	var meta detect.MetadataRecord
	if err := json.Unmarshal(metadataJSON, &meta); err != nil {
		return nil, fmt.Errorf("data: bad metadata: %w", err)
	}

	// Run the validation chaincode inside this transaction so every
	// endorser re-checks source authentication and schema (§III-A).
	if _, err := stub.InvokeChaincode(ValidationCC, "validateTransaction",
		[][]byte{metadataJSON, []byte(meta.DataHash)}); err != nil {
		return nil, err
	}

	txID := stub.GetTxID()
	source := stub.GetCreator().ID()

	if existing, err := stub.GetState(recKeyPrefix + txID); err != nil {
		return nil, err
	} else if existing != nil {
		return nil, fmt.Errorf("data: record %s already exists", txID)
	}

	// Provenance: link to this source's previous record.
	prevTxID := ""
	seq := 1
	headRaw, err := stub.GetState(headKeyPrefix + source)
	if err != nil {
		return nil, err
	}
	if headRaw != nil {
		var head struct {
			TxID string `json:"tx_id"`
			Seq  int    `json:"seq"`
		}
		if err := json.Unmarshal(headRaw, &head); err != nil {
			return nil, fmt.Errorf("data: corrupt head for %s: %w", source, err)
		}
		prevTxID = head.TxID
		seq = head.Seq + 1
	}

	userRaw, err := stub.InvokeChaincode(UsersCC, "getUser", [][]byte{[]byte(source)})
	if err != nil {
		return nil, err
	}
	var user UserRecord
	if err := json.Unmarshal(userRaw, &user); err != nil {
		return nil, err
	}

	label := meta.PrimaryLabel()
	rec := DataRecord{
		TxID:       txID,
		CID:        cidStr,
		Label:      label,
		Source:     source,
		SourceRole: user.Role,
		Metadata:   metadataJSON,
		DataHash:   meta.DataHash,
		SizeBytes:  meta.SizeBytes,
		Submitted:  stub.GetTxTimestamp(),
		PrevTxID:   prevTxID,
		Seq:        seq,
	}
	recJSON, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if err := stub.PutState(recKeyPrefix+txID, recJSON); err != nil {
		return nil, err
	}
	headJSON, err := json.Marshal(map[string]any{"tx_id": txID, "seq": seq})
	if err != nil {
		return nil, err
	}
	if err := stub.PutState(headKeyPrefix+source, headJSON); err != nil {
		return nil, err
	}

	// Composite-key secondary indexes for conditional retrieval.
	for _, idx := range []struct{ objType, attr string }{
		{idxLabel, label},
		{idxSource, source},
		{idxCamera, meta.CameraID},
	} {
		if idx.attr == "" {
			continue
		}
		key, err := stub.CreateCompositeKey(idx.objType, []string{idx.attr, txID})
		if err != nil {
			return nil, err
		}
		if err := stub.PutState(key, []byte{0}); err != nil {
			return nil, err
		}
	}

	// Cross-validation and trust feedback.
	cv := 0.5
	refs, err := loadTrustedRefs(stub)
	if err != nil {
		return nil, err
	}
	candidate := trust.Comparable{
		Label:     label,
		Latitude:  meta.Location.Latitude,
		Longitude: meta.Location.Longitude,
		At:        meta.CapturedAt,
	}
	if user.Trusted {
		// Trusted observations join the reference ring for future
		// cross-validation of crowd-sourced data.
		refs = append(refs, TrustedRef{
			Label:     label,
			Latitude:  meta.Location.Latitude,
			Longitude: meta.Location.Longitude,
			At:        meta.CapturedAt,
			Source:    source,
		})
		if len(refs) > maxTrustedRefs {
			refs = refs[len(refs)-maxTrustedRefs:]
		}
		if err := storeTrustedRefs(stub, refs); err != nil {
			return nil, err
		}
	} else {
		comparables := make([]trust.Comparable, len(refs))
		for i, r := range refs {
			comparables[i] = trust.Comparable{Label: r.Label, Latitude: r.Latitude, Longitude: r.Longitude, At: r.At}
		}
		cv = trust.CrossValidate(candidate, comparables)
	}
	cvStr := strconv.FormatFloat(cv, 'f', 6, 64)
	if _, err := stub.InvokeChaincode(TrustCC, "observe",
		[][]byte{[]byte(source), []byte("1"), []byte(cvStr)}); err != nil {
		return nil, err
	}

	if err := stub.SetEvent("data.added", []byte(txID)); err != nil {
		return nil, err
	}
	return []byte(cidStr), nil
}

func loadTrustedRefs(stub chaincode.Stub) ([]TrustedRef, error) {
	raw, err := stub.GetState(refsKey)
	if err != nil {
		return nil, err
	}
	if raw == nil {
		return nil, nil
	}
	var refs []TrustedRef
	if err := json.Unmarshal(raw, &refs); err != nil {
		return nil, fmt.Errorf("data: corrupt trusted refs: %w", err)
	}
	return refs, nil
}

func storeTrustedRefs(stub chaincode.Stub, refs []TrustedRef) error {
	b, err := json.Marshal(refs)
	if err != nil {
		return err
	}
	return stub.PutState(refsKey, b)
}

// getData returns the on-chain record for a transaction ID — the paper's
// getDataFromIPFS metadata lookup (the raw bytes come from IPFS via the
// query engine).
func getData(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("data: getData expects txId")
	}
	rec, err := stub.GetState(recKeyPrefix + string(args[0]))
	if err != nil {
		return nil, err
	}
	if rec == nil {
		return nil, fmt.Errorf("data: No metadata found for transaction ID %s", args[0])
	}
	return rec, nil
}

// queryByIndex resolves a composite index into full records.
func queryByIndex(stub chaincode.Stub, objType string, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("data: index query expects one attribute")
	}
	kvs, err := stub.GetStateByPartialCompositeKey(objType, []string{string(args[0])})
	if err != nil {
		return nil, err
	}
	out := make([]json.RawMessage, 0, len(kvs))
	for _, kv := range kvs {
		_, attrs, err := stub.SplitCompositeKey(kv.Key)
		if err != nil || len(attrs) != 2 {
			continue
		}
		rec, err := stub.GetState(recKeyPrefix + attrs[1])
		if err != nil {
			return nil, err
		}
		if rec != nil {
			out = append(out, rec)
		}
	}
	return json.Marshal(out)
}

// querySelector runs a CouchDB-style rich query over the data namespace.
func querySelector(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("data: querySelector expects selector JSON")
	}
	var sel statedb.Selector
	if err := json.Unmarshal(args[0], &sel); err != nil {
		return nil, fmt.Errorf("data: bad selector: %w", err)
	}
	kvs, err := stub.GetQueryResult(sel)
	if err != nil {
		return nil, err
	}
	out := make([]json.RawMessage, 0, len(kvs))
	for _, kv := range kvs {
		if len(kv.Key) > len(recKeyPrefix) && kv.Key[:len(recKeyPrefix)] == recKeyPrefix {
			out = append(out, append(json.RawMessage(nil), kv.Value...))
		}
	}
	return json.Marshal(out)
}

// RecordPage is one page of a paged index query: the matching records in
// (indexed value, key) order and the token resuming the next page.
type RecordPage struct {
	Records []json.RawMessage `json:"records"`
	// Next is empty when the page exhausted the index.
	Next string `json:"next,omitempty"`
}

// queryPage resolves one page of a statedb secondary index into full
// records: args are (index, value, limitStr, token). index is one of
// IndexLabel/IndexSource/IndexCamera/IndexSubmitted; value narrows by
// indexed-value prefix (empty pages the whole index, which for the
// submitted index yields records in time order); limit bounds the page
// (default 100); token resumes where the previous page stopped.
func queryPage(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 4 {
		return nil, fmt.Errorf("data: queryPage expects index, value, limit and token")
	}
	index, value, token := string(args[0]), string(args[1]), string(args[3])
	limit := 100
	if s := string(args[2]); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("data: queryPage limit %q must be a positive integer", s)
		}
		limit = n
	}
	page, err := stub.GetIndexPage(index, value, limit, token)
	if err != nil {
		return nil, err
	}
	out := RecordPage{Records: make([]json.RawMessage, 0, len(page.Entries)), Next: page.Next}
	for _, e := range page.Entries {
		rec, err := stub.GetState(e.Key)
		if err != nil {
			return nil, err
		}
		if rec != nil {
			out.Records = append(out.Records, rec)
		}
	}
	return json.Marshal(out)
}

// getProvenance walks a record's per-source chain back to its origin,
// returning records newest-first.
func getProvenance(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("data: getProvenance expects txId")
	}
	var chain []json.RawMessage
	txID := string(args[0])
	for txID != "" {
		raw, err := stub.GetState(recKeyPrefix + txID)
		if err != nil {
			return nil, err
		}
		if raw == nil {
			return nil, fmt.Errorf("data: provenance chain broken at %s", txID)
		}
		chain = append(chain, append(json.RawMessage(nil), raw...))
		var rec DataRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, err
		}
		txID = rec.PrevTxID
	}
	return json.Marshal(chain)
}

// getHistory returns the committed update history of a record key.
func getHistory(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("data: getHistory expects txId")
	}
	hist, err := stub.GetHistoryForKey(recKeyPrefix + string(args[0]))
	if err != nil {
		return nil, err
	}
	return json.Marshal(hist)
}

func countRecords(stub chaincode.Stub) ([]byte, error) {
	kvs, err := stub.GetStateByRange(recKeyPrefix, recKeyPrefix+"\xff")
	if err != nil {
		return nil, err
	}
	return []byte(strconv.Itoa(len(kvs))), nil
}

// All returns every deployed framework chaincode, in deployment order.
func All() []chaincode.Chaincode {
	return []chaincode.Chaincode{Admin{}, Users{}, Trust{}, Validation{}, Data{}}
}
