package contracts

import (
	"encoding/json"
	"fmt"

	"socialchain/internal/chaincode"
)

// Admin is the Admin Enrollment chaincode: it assigns admin IDs, prevents
// duplicates, and stores admin metadata for verification and auditing —
// the paper's enrollAdmin contract.
type Admin struct{}

// Name implements chaincode.Chaincode.
func (Admin) Name() string { return AdminCC }

// Invoke implements chaincode.Chaincode.
func (Admin) Invoke(stub chaincode.Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case "enrollAdmin":
		return enrollAdmin(stub, args)
	case "adminExists":
		return adminExists(stub, args)
	case "listAdmins":
		return listAdmins(stub)
	default:
		return nil, fmt.Errorf("admin: unknown function %q", fn)
	}
}

// enrollAdmin enrolls a new administrator. The first admin bootstraps the
// channel; afterwards only existing admins may enroll others.
func enrollAdmin(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("admin: enrollAdmin expects adminId, got %d args", len(args))
	}
	adminID := string(args[0])
	if adminID == "" {
		return nil, fmt.Errorf("admin: empty adminId")
	}
	existing, err := stub.GetState(adminKeyPrefix + adminID)
	if err != nil {
		return nil, err
	}
	if existing != nil {
		return nil, fmt.Errorf("admin: Admin %s already exists", adminID)
	}
	// Bootstrap rule: if any admin exists, the creator must be one.
	admins, err := stub.GetStateByRange(adminKeyPrefix, adminKeyPrefix+"\xff")
	if err != nil {
		return nil, err
	}
	creator := stub.GetCreator().ID()
	enrolledBy := ""
	if len(admins) > 0 {
		creatorRec, err := stub.GetState(adminKeyPrefix + creator)
		if err != nil {
			return nil, err
		}
		if creatorRec == nil {
			return nil, fmt.Errorf("admin: creator %s is not an admin", creator)
		}
		enrolledBy = creator
	}
	rec := AdminRecord{
		AdminID:    adminID,
		Role:       "admin",
		CreatedAt:  stub.GetTxTimestamp(),
		EnrolledBy: enrolledBy,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if err := stub.PutState(adminKeyPrefix+adminID, b); err != nil {
		return nil, err
	}
	if err := stub.SetEvent("admin.enrolled", []byte(adminID)); err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf("Admin %s enrolled successfully", adminID)), nil
}

func adminExists(stub chaincode.Stub, args [][]byte) ([]byte, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("admin: adminExists expects adminId")
	}
	rec, err := stub.GetState(adminKeyPrefix + string(args[0]))
	if err != nil {
		return nil, err
	}
	if rec == nil {
		return []byte("false"), nil
	}
	return []byte("true"), nil
}

func listAdmins(stub chaincode.Stub) ([]byte, error) {
	kvs, err := stub.GetStateByRange(adminKeyPrefix, adminKeyPrefix+"\xff")
	if err != nil {
		return nil, err
	}
	out := make([]AdminRecord, 0, len(kvs))
	for _, kv := range kvs {
		var rec AdminRecord
		if err := json.Unmarshal(kv.Value, &rec); err != nil {
			return nil, fmt.Errorf("admin: corrupt record at %s: %w", kv.Key, err)
		}
		out = append(out, rec)
	}
	return json.Marshal(out)
}
