package contracts

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/dataset"
	"socialchain/internal/detect"
	"socialchain/internal/msp"
	"socialchain/internal/statedb"
	"socialchain/internal/storage"
	"socialchain/internal/trust"
)

// world is a direct-execution test harness: it runs chaincodes through
// simulators against a shared state, committing writes immediately —
// endorsement and consensus are exercised elsewhere.
type world struct {
	t       *testing.T
	db      *statedb.DB
	history *statedb.HistoryDB
	reg     *chaincode.Registry
	height  uint64
}

func newWorld(t *testing.T) *world {
	t.Helper()
	// The world state runs with the production secondary-index set, as
	// peers do, so contract-level index queries are exercised here.
	db, err := statedb.NewIndexedWith(storage.Config{}, DataIndexes()...)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{t: t, db: db, history: statedb.NewHistoryDB(), reg: chaincode.NewRegistry(), height: 1}
	for _, cc := range All() {
		if err := w.reg.Register(cc); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// invoke runs fn as creator and commits the writes on success.
func (w *world) invoke(creator msp.Identity, ccName, fn string, args ...string) ([]byte, error) {
	byteArgs := make([][]byte, len(args))
	for i, a := range args {
		byteArgs[i] = []byte(a)
	}
	txID := ccName + "-" + fn + "-" + time.Now().Format("150405.000000000")
	sim := chaincode.NewSimulator(chaincode.TxContext{
		TxID: txID, ChannelID: "ch", Creator: creator, Timestamp: time.Now(),
	}, ccName, w.db, w.history).WithRegistry(w.reg)
	cc, ok := w.reg.Get(ccName)
	if !ok {
		w.t.Fatalf("unknown chaincode %s", ccName)
	}
	resp, err := cc.Invoke(sim, fn, byteArgs)
	if err != nil {
		return nil, err
	}
	batch := statedb.NewUpdateBatch()
	batch.AddRWSetWrites(sim.RWSet())
	w.height++
	v := statedb.Version{BlockNum: w.height}
	w.db.ApplyUpdates(batch, v)
	w.history.RecordBatch(batch, txID, v, time.Now())
	return resp, nil
}

func (w *world) admin() msp.Identity {
	id, err := msp.NewSigner("gov", "root", msp.RoleAdmin)
	if err != nil {
		w.t.Fatal(err)
	}
	// Bootstrap enrollment (first admin).
	if _, err := w.invoke(id.Identity, AdminCC, "enrollAdmin", id.Identity.ID()); err != nil {
		w.t.Fatalf("bootstrap admin: %v", err)
	}
	return id.Identity
}

func (w *world) user(admin msp.Identity, org, name string, trusted bool) msp.Identity {
	s, err := msp.NewSigner(org, name, msp.RoleUntrustedSource)
	if err != nil {
		w.t.Fatal(err)
	}
	role := "untrusted-source"
	if trusted {
		role = "trusted-source"
	}
	rec, _ := json.Marshal(UserRecord{UserID: s.Identity.ID(), Role: role, PubKey: s.Identity.PubKey})
	if _, err := w.invoke(admin, UsersCC, "registerUser", string(rec)); err != nil {
		w.t.Fatalf("register %s: %v", name, err)
	}
	return s.Identity
}

func sampleMeta(t *testing.T, seed int64) (detect.MetadataRecord, string) {
	t.Helper()
	corpus := dataset.Generate(dataset.Config{Seed: seed, NumVideos: 1, FramesPerVideo: 1, NumDroneFlights: 1, FramesPerFlight: 1, MeanFrameKB: 2})
	frame := &corpus.Static[0].Frames[0]
	det := detect.NewDetector(seed)
	meta, _ := det.ExtractMetadata(frame)
	b, _ := json.Marshal(meta)
	return meta, string(b)
}

func TestAdminBootstrapAndDuplicate(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	if _, err := w.invoke(admin, AdminCC, "enrollAdmin", admin.ID()); err == nil {
		t.Fatal("duplicate admin enrolled")
	}
	out, err := w.invoke(admin, AdminCC, "adminExists", admin.ID())
	if err != nil || string(out) != "true" {
		t.Fatalf("adminExists = %q, %v", out, err)
	}
	out, err = w.invoke(admin, AdminCC, "adminExists", "ghost")
	if err != nil || string(out) != "false" {
		t.Fatalf("ghost adminExists = %q, %v", out, err)
	}
}

func TestSecondAdminRequiresExistingAdmin(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	outsider, _ := msp.NewSigner("x", "outsider", msp.RoleMember)
	if _, err := w.invoke(outsider.Identity, AdminCC, "enrollAdmin", "x/outsider"); err == nil {
		t.Fatal("non-admin enrolled a second admin")
	}
	if _, err := w.invoke(admin, AdminCC, "enrollAdmin", "gov/second"); err != nil {
		t.Fatalf("admin could not enroll second admin: %v", err)
	}
	out, _ := w.invoke(admin, AdminCC, "listAdmins")
	var admins []AdminRecord
	if err := json.Unmarshal(out, &admins); err != nil {
		t.Fatal(err)
	}
	if len(admins) != 2 {
		t.Fatalf("listAdmins = %d", len(admins))
	}
}

func TestUserRegistrationFlow(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	user := w.user(admin, "crowd", "bob", false)

	out, err := w.invoke(admin, UsersCC, "getUser", user.ID())
	if err != nil {
		t.Fatal(err)
	}
	var rec UserRecord
	if err := json.Unmarshal(out, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.UserID != user.ID() || rec.Trusted || !rec.Active {
		t.Fatalf("record = %+v", rec)
	}
	// Duplicate rejected.
	raw, _ := json.Marshal(UserRecord{UserID: user.ID(), Role: "untrusted-source", PubKey: user.PubKey})
	if _, err := w.invoke(admin, UsersCC, "registerUser", string(raw)); err == nil {
		t.Fatal("duplicate user registered")
	}
}

func TestUserRegistrationValidation(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	cases := []UserRecord{
		{UserID: "", Role: "untrusted-source", PubKey: []byte{1}},
		{UserID: "a/b", Role: "superuser", PubKey: []byte{1}},
		{UserID: "a/b", Role: "untrusted-source"},
	}
	for i, rec := range cases {
		raw, _ := json.Marshal(rec)
		if _, err := w.invoke(admin, UsersCC, "registerUser", string(raw)); err == nil {
			t.Errorf("case %d accepted: %+v", i, rec)
		}
	}
}

func TestDeactivateUser(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	user := w.user(admin, "crowd", "carol", true)
	if _, err := w.invoke(admin, UsersCC, "deactivateUser", user.ID()); err != nil {
		t.Fatal(err)
	}
	out, _ := w.invoke(admin, UsersCC, "getUser", user.ID())
	var rec UserRecord
	_ = json.Unmarshal(out, &rec)
	if rec.Active {
		t.Fatal("user still active")
	}
	// Deactivated users fail validation.
	_, metaJSON := sampleMeta(t, 21)
	var meta detect.MetadataRecord
	_ = json.Unmarshal([]byte(metaJSON), &meta)
	if _, err := w.invoke(user, ValidationCC, "checkTransaction", metaJSON, meta.DataHash); err == nil {
		t.Fatal("deactivated user validated")
	}
	if _, err := w.invoke(admin, UsersCC, "reactivateUser", user.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.invoke(user, ValidationCC, "checkTransaction", metaJSON, meta.DataHash); err != nil {
		t.Fatalf("reactivated user rejected: %v", err)
	}
}

func TestValidationSchemaChecks(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	user := w.user(admin, "city", "cam", true)

	meta, metaJSON := sampleMeta(t, 31)
	// Well-formed passes.
	if _, err := w.invoke(user, ValidationCC, "checkTransaction", metaJSON, meta.DataHash); err != nil {
		t.Fatalf("valid metadata rejected: %v", err)
	}

	corrupt := func(mutate func(*detect.MetadataRecord)) string {
		var m detect.MetadataRecord
		if err := json.Unmarshal([]byte(metaJSON), &m); err != nil {
			t.Fatal(err)
		}
		mutate(&m)
		b, _ := json.Marshal(m)
		return string(b)
	}
	cases := []struct {
		name string
		json string
		hash string
	}{
		{"not json", "{", meta.DataHash},
		{"missing frame id", corrupt(func(m *detect.MetadataRecord) { m.FrameID = "" }), meta.DataHash},
		{"bad platform", corrupt(func(m *detect.MetadataRecord) { m.Platform = "satellite" }), meta.DataHash},
		{"no detections", corrupt(func(m *detect.MetadataRecord) { m.Detections = nil }), meta.DataHash},
		{"confidence > 1", corrupt(func(m *detect.MetadataRecord) { m.Detections[0].Confidence = 1.5 }), meta.DataHash},
		{"bad bbox", corrupt(func(m *detect.MetadataRecord) { m.Detections[0].BoundingBox.X2 = -1 }), meta.DataHash},
		{"bad latitude", corrupt(func(m *detect.MetadataRecord) { m.Location.Latitude = 123 }), meta.DataHash},
		{"short hash", corrupt(func(m *detect.MetadataRecord) { m.DataHash = "abcd" }), meta.DataHash},
		{"non-hex hash", corrupt(func(m *detect.MetadataRecord) { m.DataHash = strings.Repeat("z", 64) }), meta.DataHash},
		{"hash mismatch", metaJSON, strings.Repeat("0", 64)},
		{"zero size", corrupt(func(m *detect.MetadataRecord) { m.SizeBytes = 0 }), meta.DataHash},
	}
	for _, c := range cases {
		if _, err := w.invoke(user, ValidationCC, "checkTransaction", c.json, c.hash); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestAddDataAndRetrieval(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	cam := w.user(admin, "city", "cam9", true)
	meta, metaJSON := sampleMeta(t, 41)

	out, err := w.invoke(cam, DataCC, "addData", "bafycid123", metaJSON)
	if err != nil {
		t.Fatalf("addData: %v", err)
	}
	if string(out) != "bafycid123" {
		t.Fatalf("addData returned %q", out)
	}
	// Find the record by source index.
	recsRaw, err := w.invoke(cam, DataCC, "queryBySource", cam.ID())
	if err != nil {
		t.Fatal(err)
	}
	var recs []DataRecord
	if err := json.Unmarshal(recsRaw, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("source query = %d records", len(recs))
	}
	rec := recs[0]
	if rec.CID != "bafycid123" || rec.Source != cam.ID() || rec.DataHash != meta.DataHash || rec.Seq != 1 {
		t.Fatalf("record = %+v", rec)
	}
	// Point lookup by tx id.
	got, err := w.invoke(cam, DataCC, "getData", rec.TxID)
	if err != nil {
		t.Fatal(err)
	}
	var again DataRecord
	_ = json.Unmarshal(got, &again)
	if again.TxID != rec.TxID {
		t.Fatal("getData mismatch")
	}
	// Label and camera indexes resolve the same record.
	byLabel, err := w.invoke(cam, DataCC, "queryByLabel", meta.PrimaryLabel())
	if err != nil {
		t.Fatal(err)
	}
	var labelRecs []DataRecord
	_ = json.Unmarshal(byLabel, &labelRecs)
	if len(labelRecs) != 1 {
		t.Fatalf("label query = %d", len(labelRecs))
	}
	byCam, err := w.invoke(cam, DataCC, "queryByCamera", meta.CameraID)
	if err != nil {
		t.Fatal(err)
	}
	var camRecs []DataRecord
	_ = json.Unmarshal(byCam, &camRecs)
	if len(camRecs) != 1 {
		t.Fatalf("camera query = %d", len(camRecs))
	}
	// Unknown tx id errors with the paper's message shape.
	if _, err := w.invoke(cam, DataCC, "getData", "nope"); err == nil || !strings.Contains(err.Error(), "No metadata found") {
		t.Fatalf("getData(nope) = %v", err)
	}
}

func TestAddDataRejectsUnregistered(t *testing.T) {
	w := newWorld(t)
	w.admin()
	rogue, _ := msp.NewSigner("x", "rogue", msp.RoleUntrustedSource)
	_, metaJSON := sampleMeta(t, 51)
	if _, err := w.invoke(rogue.Identity, DataCC, "addData", "cid", metaJSON); err == nil {
		t.Fatal("unregistered source stored data")
	}
}

func TestProvenanceChainLinks(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	cam := w.user(admin, "city", "chain-cam", true)
	var lastTx string
	for i := 0; i < 3; i++ {
		_, metaJSON := sampleMeta(t, int64(60+i))
		if _, err := w.invoke(cam, DataCC, "addData", "cid", metaJSON); err != nil {
			t.Fatal(err)
		}
	}
	recsRaw, _ := w.invoke(cam, DataCC, "queryBySource", cam.ID())
	var recs []DataRecord
	_ = json.Unmarshal(recsRaw, &recs)
	if len(recs) != 3 {
		t.Fatalf("stored %d", len(recs))
	}
	for _, r := range recs {
		if r.Seq == 3 {
			lastTx = r.TxID
		}
	}
	chainRaw, err := w.invoke(cam, DataCC, "getProvenance", lastTx)
	if err != nil {
		t.Fatal(err)
	}
	var chain []DataRecord
	if err := json.Unmarshal(chainRaw, &chain); err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain length %d", len(chain))
	}
	if chain[0].Seq != 3 || chain[2].Seq != 1 || chain[2].PrevTxID != "" {
		t.Fatalf("chain = %+v", chain)
	}
}

func TestTrustObserveAndGate(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	crowd := w.user(admin, "crowd", "noisy", false)

	// Defaults present without init.
	out, err := w.invoke(admin, TrustCC, "getTrust", crowd.ID())
	if err != nil {
		t.Fatal(err)
	}
	st, err := trust.UnmarshalState(out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Score != trust.DefaultParams().InitialScore {
		t.Fatalf("initial score %f", st.Score)
	}
	// Drive the score down.
	for i := 0; i < 15; i++ {
		if _, err := w.invoke(admin, TrustCC, "observe", crowd.ID(), "0", "0.0"); err != nil {
			t.Fatal(err)
		}
	}
	out, _ = w.invoke(admin, TrustCC, "isTrusted", crowd.ID())
	if string(out) != "false" {
		t.Fatal("dishonest source still trusted")
	}
	// The validation contract enforces the gate for untrusted users.
	meta, metaJSON := sampleMeta(t, 71)
	if _, err := w.invoke(crowd, ValidationCC, "checkTransaction", metaJSON, meta.DataHash); err == nil {
		t.Fatal("gated source validated")
	}
	// Scores listing includes the source.
	out, _ = w.invoke(admin, TrustCC, "listScores")
	var scores []trust.State
	_ = json.Unmarshal(out, &scores)
	if len(scores) != 1 || scores[0].SourceID != crowd.ID() {
		t.Fatalf("scores = %+v", scores)
	}
}

func TestTrustInitParams(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	params := trust.Params{InitialScore: 0.9, HistoryWeight: 0.5, CrossWeight: 0.1, MinTrusted: 0.2, FlagThreshold: 0.05}
	raw, _ := json.Marshal(params)
	if _, err := w.invoke(admin, TrustCC, "initParams", string(raw)); err != nil {
		t.Fatal(err)
	}
	out, _ := w.invoke(admin, TrustCC, "getTrust", "someone/new")
	st, _ := trust.UnmarshalState(out)
	if st.Score != 0.9 {
		t.Fatalf("custom initial score not applied: %f", st.Score)
	}
}

func TestCrossValidationFeedsFromTrustedRefs(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	cam := w.user(admin, "city", "ref-cam", true)
	crowd := w.user(admin, "crowd", "alice", false)

	// A trusted camera submits an observation.
	meta, metaJSON := sampleMeta(t, 81)
	if _, err := w.invoke(cam, DataCC, "addData", "cid-cam", metaJSON); err != nil {
		t.Fatal(err)
	}
	// The crowd source reports the same scene: high cross validation.
	var crowdMeta detect.MetadataRecord
	_ = json.Unmarshal([]byte(metaJSON), &crowdMeta)
	crowdMeta.CameraID = "mobile-1"
	crowdMeta.FrameID = "mobile-1/frame-00001"
	b, _ := json.Marshal(crowdMeta)
	if _, err := w.invoke(crowd, DataCC, "addData", "cid-crowd", string(b)); err != nil {
		t.Fatal(err)
	}
	out, _ := w.invoke(admin, TrustCC, "getTrust", crowd.ID())
	st, _ := trust.UnmarshalState(out)
	if st.Submissions != 1 || st.Accepted != 1 {
		t.Fatalf("trust state %+v", st)
	}
	// Cross EWMA must have moved toward 1 (agreeing with the trusted ref),
	// i.e. above the no-corroboration baseline.
	if st.Cross <= 0.5 {
		t.Fatalf("cross validation did not credit agreement: %f", st.Cross)
	}
	_ = meta
}

func TestQuerySelectorOverRecords(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	cam := w.user(admin, "city", "sel-cam", true)
	for i := 0; i < 3; i++ {
		_, metaJSON := sampleMeta(t, int64(90+i))
		if _, err := w.invoke(cam, DataCC, "addData", "cid", metaJSON); err != nil {
			t.Fatal(err)
		}
	}
	sel, _ := json.Marshal(map[string]any{"source": cam.ID()})
	out, err := w.invoke(cam, DataCC, "querySelector", string(sel))
	if err != nil {
		t.Fatal(err)
	}
	var recs []DataRecord
	if err := json.Unmarshal(out, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("selector matched %d", len(recs))
	}
	// count agrees.
	out, _ = w.invoke(cam, DataCC, "count")
	if string(out) != "3" {
		t.Fatalf("count = %s", out)
	}
}

func TestGetHistoryThroughContract(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	cam := w.user(admin, "city", "hist-cam", true)
	_, metaJSON := sampleMeta(t, 99)
	if _, err := w.invoke(cam, DataCC, "addData", "cid", metaJSON); err != nil {
		t.Fatal(err)
	}
	recsRaw, _ := w.invoke(cam, DataCC, "queryBySource", cam.ID())
	var recs []DataRecord
	_ = json.Unmarshal(recsRaw, &recs)
	out, err := w.invoke(cam, DataCC, "getHistory", recs[0].TxID)
	if err != nil {
		t.Fatal(err)
	}
	var hist []statedb.HistEntry
	if err := json.Unmarshal(out, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 {
		t.Fatalf("history = %d entries", len(hist))
	}
}

func TestUnknownFunctions(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	for _, cc := range []string{AdminCC, UsersCC, TrustCC, DataCC, ValidationCC} {
		if _, err := w.invoke(admin, cc, "noSuchFunction"); err == nil {
			t.Errorf("%s accepted unknown function", cc)
		}
	}
}

func TestQueryPagePagination(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	cam := w.user(admin, "city", "page-cam", true)
	want := 5
	for i := 0; i < want; i++ {
		_, metaJSON := sampleMeta(t, int64(60+i))
		if _, err := w.invoke(cam, DataCC, "addData", fmt.Sprintf("bafypage%d", i), metaJSON); err != nil {
			t.Fatalf("addData %d: %v", i, err)
		}
	}
	// Page by source, two records at a time, following tokens.
	var got []string
	token := ""
	for {
		out, err := w.invoke(cam, DataCC, "queryPage", IndexSource, cam.ID(), "2", token)
		if err != nil {
			t.Fatal(err)
		}
		var page RecordPage
		if err := json.Unmarshal(out, &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Records) > 2 {
			t.Fatalf("page carries %d records", len(page.Records))
		}
		for _, raw := range page.Records {
			var rec DataRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				t.Fatal(err)
			}
			if rec.Source != cam.ID() {
				t.Fatalf("foreign record %+v in source page", rec)
			}
			got = append(got, rec.TxID)
		}
		if page.Next == "" {
			break
		}
		token = page.Next
	}
	if len(got) != want {
		t.Fatalf("paged %d records, want %d", len(got), want)
	}
	seen := map[string]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("record %s repeated across pages", id)
		}
		seen[id] = true
	}
	// The submitted index pages every record in time order with an empty
	// value prefix.
	out, err := w.invoke(cam, DataCC, "queryPage", IndexSubmitted, "", "100", "")
	if err != nil {
		t.Fatal(err)
	}
	var all RecordPage
	if err := json.Unmarshal(out, &all); err != nil {
		t.Fatal(err)
	}
	if len(all.Records) != want || all.Next != "" {
		t.Fatalf("submitted page = %d records, next %q", len(all.Records), all.Next)
	}
	var prev DataRecord
	for i, raw := range all.Records {
		var rec DataRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatal(err)
		}
		if i > 0 && rec.Submitted.Before(prev.Submitted) {
			t.Fatal("submitted page out of time order")
		}
		prev = rec
	}
	// Bad arguments error.
	if _, err := w.invoke(cam, DataCC, "queryPage", "bogus-index", "", "10", ""); err == nil {
		t.Fatal("unknown index accepted")
	}
	if _, err := w.invoke(cam, DataCC, "queryPage", IndexSource, "", "-3", ""); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestAddDataDenormalisesLabel(t *testing.T) {
	w := newWorld(t)
	admin := w.admin()
	cam := w.user(admin, "city", "label-cam", true)
	meta, metaJSON := sampleMeta(t, 77)
	if _, err := w.invoke(cam, DataCC, "addData", "bafylabel", metaJSON); err != nil {
		t.Fatal(err)
	}
	out, err := w.invoke(cam, DataCC, "queryPage", IndexLabel, meta.PrimaryLabel(), "10", "")
	if err != nil {
		t.Fatal(err)
	}
	var page RecordPage
	if err := json.Unmarshal(out, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Records) != 1 {
		t.Fatalf("label page = %d records", len(page.Records))
	}
	var rec DataRecord
	if err := json.Unmarshal(page.Records[0], &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Label != meta.PrimaryLabel() {
		t.Fatalf("record label %q, want %q", rec.Label, meta.PrimaryLabel())
	}
}
