// Package contracts implements the paper's chaincodes (§III-B) against the
// chaincode runtime: admin enrollment, user registration, transaction
// validation (source authentication + schema verification), data upload and
// retrieval (CID + metadata on-chain), and trust scoring. Each contract is
// stateless Go code; all state flows through the stub into the world state,
// so every endorser computes identical read/write sets.
package contracts

import (
	"encoding/json"
	"time"

	"socialchain/internal/statedb"
)

// Chaincode names (world-state namespaces).
const (
	AdminCC      = "admin"
	UsersCC      = "users"
	TrustCC      = "trust"
	DataCC       = "data"
	ValidationCC = "validation"
)

// AdminRecord is the on-chain record of an enrolled administrator,
// mirroring the paper's enrollAdmin chaincode.
type AdminRecord struct {
	AdminID    string    `json:"admin_id"`
	Role       string    `json:"role"` // always "admin"
	CreatedAt  time.Time `json:"created_at"`
	EnrolledBy string    `json:"enrolled_by,omitempty"`
}

// UserRecord is the on-chain registration of a data source.
type UserRecord struct {
	// UserID is the msp identity id ("org/name") of the source.
	UserID string `json:"user_id"`
	// Role is trusted-source or untrusted-source.
	Role string `json:"role"`
	// PubKey is the source's verification key (base64 via JSON []byte).
	PubKey []byte `json:"pub_key"`
	// Trusted marks institution-grade sources (cameras, drones) whose
	// submissions bypass the trust-score gate.
	Trusted      bool      `json:"trusted"`
	Active       bool      `json:"active"`
	RegisteredAt time.Time `json:"registered_at"`
	RegisteredBy string    `json:"registered_by"`
}

// DataRecord is the on-chain metadata entry for one stored payload: the
// CID pointing into IPFS plus the extracted metadata and provenance links.
type DataRecord struct {
	TxID string `json:"tx_id"`
	// CID is the IPFS content identifier of the raw payload.
	CID string `json:"cid"`
	// Label is the primary (most confident) detection label, denormalised
	// to the top level so selector queries and the statedb label index see
	// it without digging through the metadata blob.
	Label string `json:"label,omitempty"`
	// Source is the submitting identity id.
	Source string `json:"source"`
	// SourceRole captures the source's role at submission time.
	SourceRole string `json:"source_role"`
	// Metadata is the detect.MetadataRecord JSON (kept raw so the contract
	// does not depend on the vision pipeline's types).
	Metadata json.RawMessage `json:"metadata"`
	// DataHash is the SHA-256 of the raw payload (hex), the integrity
	// anchor checked at retrieval.
	DataHash  string    `json:"data_hash"`
	SizeBytes int       `json:"size_bytes"`
	Submitted time.Time `json:"submitted"`
	// PrevTxID links to this source's previous record, forming the
	// per-source provenance chain.
	PrevTxID string `json:"prev_tx_id,omitempty"`
	// Seq is the per-source submission counter.
	Seq int `json:"seq"`
}

// TrustedRef is a compact reference observation kept in the cross-
// validation ring buffer.
type TrustedRef struct {
	Label     string    `json:"label"`
	Latitude  float64   `json:"latitude"`
	Longitude float64   `json:"longitude"`
	At        time.Time `json:"at"`
	Source    string    `json:"source"`
}

// Well-known state keys.
const (
	adminKeyPrefix = "admin/"
	userKeyPrefix  = "user/"
	scoreKeyPrefix = "score/"
	recKeyPrefix   = "rec/"
	headKeyPrefix  = "head/"
	refsKey        = "refs/recent"
	paramsKey      = "params"
	auditKeyPrefix = "audit/"
)

// Composite index object types in the data namespace.
const (
	idxLabel  = "label~txid"
	idxSource = "source~txid"
	idxCamera = "camera~txid"
)

// Statedb secondary-index names over the data namespace (the paged
// retrieval path; the composite keys above are the in-band Fabric idiom).
const (
	IndexLabel     = "label"
	IndexSource    = "source"
	IndexCamera    = "camera"
	IndexSubmitted = "submitted"
)

// DataIndexes declares the secondary indexes every peer maintains over
// the data namespace: the conditional-retrieval dimensions of the paper
// (label, source, camera) plus a time-ordered index on submission time.
// Peers must all run the same spec list — index reads feed endorsement
// results, so a divergent index set would split endorsement digests.
func DataIndexes() []statedb.IndexSpec {
	return []statedb.IndexSpec{
		{Name: IndexLabel, Namespace: DataCC, Field: "label"},
		{Name: IndexSource, Namespace: DataCC, Field: "source"},
		{Name: IndexCamera, Namespace: DataCC, Field: "metadata.camera_id"},
		{Name: IndexSubmitted, Namespace: DataCC, Field: "submitted"},
	}
}

// maxTrustedRefs bounds the cross-validation ring buffer.
const maxTrustedRefs = 32
