package cid

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
)

// Codec identifies how the addressed bytes should be interpreted.
const (
	// CodecRaw addresses an opaque byte block (a leaf chunk).
	CodecRaw uint64 = 0x55
	// CodecDagNode addresses an interior Merkle-DAG node in this module's
	// deterministic node encoding (analogous to dag-pb).
	CodecDagNode uint64 = 0x70
)

// Cid is an immutable content identifier: version, codec, multihash.
// The zero value is the "undefined" CID.
type Cid struct {
	version uint64
	codec   uint64
	mh      string // multihash bytes; string so Cid is comparable/map-key safe
}

// Undef is the zero, undefined CID.
var Undef = Cid{}

// New assembles a CIDv1 from a codec and multihash.
func New(codec uint64, mh Multihash) Cid {
	return Cid{version: 1, codec: codec, mh: string(mh)}
}

// SumRaw returns the CIDv1 (raw codec) of a leaf data block.
func SumRaw(data []byte) Cid { return New(CodecRaw, SumSha256(data)) }

// SumDagNode returns the CIDv1 (dag codec) of an encoded DAG node.
func SumDagNode(encoded []byte) Cid { return New(CodecDagNode, SumSha256(encoded)) }

// Defined reports whether the CID carries a hash.
func (c Cid) Defined() bool { return c.mh != "" }

// Version returns the CID version (always 1 for defined CIDs here).
func (c Cid) Version() uint64 { return c.version }

// Codec returns the content codec.
func (c Cid) Codec() uint64 { return c.codec }

// Multihash returns the embedded multihash.
func (c Cid) Multihash() Multihash { return Multihash(c.mh) }

// Digest returns the raw SHA-256 digest addressed by this CID.
func (c Cid) Digest() []byte { return Multihash(c.mh).Digest() }

// Bytes returns the binary form: varint version, varint codec, multihash.
func (c Cid) Bytes() []byte {
	if !c.Defined() {
		return nil
	}
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+len(c.mh))
	buf = binary.AppendUvarint(buf, c.version)
	buf = binary.AppendUvarint(buf, c.codec)
	return append(buf, c.mh...)
}

// Cast parses the binary form produced by Bytes.
func Cast(b []byte) (Cid, error) {
	version, n := binary.Uvarint(b)
	if n <= 0 {
		return Undef, errors.New("cid: bad version varint")
	}
	rest := b[n:]
	codec, n := binary.Uvarint(rest)
	if n <= 0 {
		return Undef, errors.New("cid: bad codec varint")
	}
	mh := Multihash(rest[n:])
	if err := mh.Validate(); err != nil {
		return Undef, err
	}
	if version != 1 {
		return Undef, fmt.Errorf("cid: unsupported version %d", version)
	}
	return Cid{version: version, codec: codec, mh: string(mh)}, nil
}

// String renders the CID in base32 with the "b" multibase prefix, the
// canonical CIDv1 text form.
func (c Cid) String() string {
	if !c.Defined() {
		return "<undef>"
	}
	return "b" + base32Encode(c.Bytes())
}

// StringV0 renders the multihash in base58btc (the Qm... CIDv0 style), for
// display parity with IPFS tooling.
func (c Cid) StringV0() string {
	if !c.Defined() {
		return "<undef>"
	}
	return base58Encode([]byte(c.mh))
}

// Parse decodes the canonical base32 text form produced by String.
func Parse(s string) (Cid, error) {
	if len(s) < 2 || s[0] != 'b' {
		return Undef, fmt.Errorf("cid: %q lacks base32 multibase prefix", s)
	}
	raw, err := base32Decode(s[1:])
	if err != nil {
		return Undef, fmt.Errorf("cid: parse %q: %w", s, err)
	}
	return Cast(raw)
}

// Equals reports CID equality.
func (c Cid) Equals(o Cid) bool { return c == o }

// Less orders CIDs by binary form; used for deterministic iteration.
func (c Cid) Less(o Cid) bool { return bytes.Compare(c.Bytes(), o.Bytes()) < 0 }

// MarshalJSON encodes the CID as its canonical string.
func (c Cid) MarshalJSON() ([]byte, error) {
	if !c.Defined() {
		return []byte(`""`), nil
	}
	return json.Marshal(c.String())
}

// UnmarshalJSON decodes a CID from its canonical string; "" yields Undef.
func (c *Cid) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	if s == "" {
		*c = Undef
		return nil
	}
	parsed, err := Parse(s)
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}
