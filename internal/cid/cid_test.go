package cid

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestSumRawDeterministic(t *testing.T) {
	a := SumRaw([]byte("hello"))
	b := SumRaw([]byte("hello"))
	if !a.Equals(b) {
		t.Fatal("same content produced different CIDs")
	}
	c := SumRaw([]byte("hello!"))
	if a.Equals(c) {
		t.Fatal("different content produced equal CIDs")
	}
}

func TestCidStringRoundTrip(t *testing.T) {
	c := SumRaw([]byte("payload"))
	s := c.String()
	if !strings.HasPrefix(s, "b") {
		t.Fatalf("canonical form %q lacks multibase prefix", s)
	}
	got, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !got.Equals(c) {
		t.Fatal("string round trip lost identity")
	}
}

func TestCidBytesRoundTrip(t *testing.T) {
	c := SumDagNode([]byte("node-bytes"))
	got, err := Cast(c.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equals(c) {
		t.Fatal("bytes round trip lost identity")
	}
	if got.Codec() != CodecDagNode {
		t.Fatalf("codec = %#x", got.Codec())
	}
}

func TestCidPropertyRoundTrip(t *testing.T) {
	err := quick.Check(func(data []byte) bool {
		c := SumRaw(data)
		viaString, err1 := Parse(c.String())
		viaBytes, err2 := Cast(c.Bytes())
		return err1 == nil && err2 == nil && viaString.Equals(c) && viaBytes.Equals(c)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUndefCid(t *testing.T) {
	if Undef.Defined() {
		t.Fatal("zero CID is defined")
	}
	if Undef.String() != "<undef>" {
		t.Fatalf("undef string %q", Undef.String())
	}
	if Undef.Bytes() != nil {
		t.Fatal("undef has bytes")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "b", "zzz", "bAAAA!", "b0189"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestCastRejectsGarbage(t *testing.T) {
	if _, err := Cast(nil); err == nil {
		t.Fatal("Cast(nil) accepted")
	}
	if _, err := Cast([]byte{0xff}); err == nil {
		t.Fatal("truncated varint accepted")
	}
	// Wrong version.
	valid := SumRaw([]byte("x")).Bytes()
	valid[0] = 9
	if _, err := Cast(valid); err == nil {
		t.Fatal("version 9 accepted")
	}
}

func TestCidJSONRoundTrip(t *testing.T) {
	c := SumRaw([]byte("json"))
	b, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var got Cid
	if err := got.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if !got.Equals(c) {
		t.Fatal("json round trip lost identity")
	}
	var und Cid
	if err := und.UnmarshalJSON([]byte(`""`)); err != nil {
		t.Fatal(err)
	}
	if und.Defined() {
		t.Fatal("empty string should decode to Undef")
	}
}

func TestCidOrdering(t *testing.T) {
	a := SumRaw([]byte("a"))
	b := SumRaw([]byte("b"))
	if a.Less(b) == b.Less(a) {
		t.Fatal("Less is not a strict order")
	}
	if a.Less(a) {
		t.Fatal("Less is not irreflexive")
	}
}

func TestDigestLength(t *testing.T) {
	c := SumRaw([]byte("digest me"))
	if len(c.Digest()) != Sha256Len {
		t.Fatalf("digest length %d", len(c.Digest()))
	}
}

func TestStringV0Style(t *testing.T) {
	s := SumRaw([]byte("v0")).StringV0()
	if len(s) == 0 {
		t.Fatal("empty v0 string")
	}
	for _, r := range s {
		if !strings.ContainsRune(base58Alphabet, r) {
			t.Fatalf("v0 string contains %q outside base58 alphabet", r)
		}
	}
}

func TestMultihashRoundTrip(t *testing.T) {
	mh := SumSha256([]byte("data"))
	code, digest, err := DecodeMultihash(mh)
	if err != nil {
		t.Fatal(err)
	}
	if code != MhSha256 {
		t.Fatalf("code = %#x", code)
	}
	if len(digest) != Sha256Len {
		t.Fatalf("digest len = %d", len(digest))
	}
	if err := mh.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMultihashRejectsTruncated(t *testing.T) {
	mh := SumSha256([]byte("data"))
	if err := Multihash(mh[:10]).Validate(); err == nil {
		t.Fatal("truncated multihash accepted")
	}
}

func TestBase32RoundTripProperty(t *testing.T) {
	err := quick.Check(func(data []byte) bool {
		enc := base32Encode(data)
		dec, err := base32Decode(enc)
		return err == nil && bytes.Equal(dec, data)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBase58RoundTripProperty(t *testing.T) {
	err := quick.Check(func(data []byte) bool {
		enc := base58Encode(data)
		dec, err := base58Decode(enc)
		return err == nil && bytes.Equal(dec, data)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBase58LeadingZeros(t *testing.T) {
	data := []byte{0, 0, 1, 2}
	enc := base58Encode(data)
	if !strings.HasPrefix(enc, "11") {
		t.Fatalf("leading zeros not preserved: %q", enc)
	}
	dec, err := base58Decode(enc)
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("round trip %v -> %q -> %v", data, enc, dec)
	}
}

func TestBase32RejectsInvalidChars(t *testing.T) {
	if _, err := base32Decode("ABC!"); err == nil {
		t.Fatal("invalid base32 accepted")
	}
}

func TestBase58RejectsInvalidChars(t *testing.T) {
	if _, err := base58Decode("0OIl"); err == nil {
		t.Fatal("invalid base58 accepted")
	}
}
