package cid

import (
	"testing"
)

func BenchmarkSumRaw(b *testing.B) {
	data := make([]byte, 256*1024)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumRaw(data)
	}
}

func BenchmarkStringEncode(b *testing.B) {
	c := SumRaw([]byte("benchmark payload"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.String()
	}
}

func BenchmarkParse(b *testing.B) {
	s := SumRaw([]byte("benchmark payload")).String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(s); err != nil {
			b.Fatal(err)
		}
	}
}
