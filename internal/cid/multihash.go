// Package cid implements content identifiers for the off-chain store: a
// SHA-256 multihash wrapped in a CIDv1-style (version, codec, multihash)
// tuple with base32 text encoding, plus base58btc for CIDv0 compatibility.
// Every payload stored in IPFS is addressed by the CID of its root DAG node,
// exactly as the paper stores "Hashes (CID value)" on-chain.
package cid

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Multihash codes (a tiny subset of the multiformats table).
const (
	// MhSha256 identifies a SHA2-256 digest.
	MhSha256 = 0x12
	// Sha256Len is the digest length for SHA2-256.
	Sha256Len = 32
)

// Multihash is a self-describing hash: varint code, varint length, digest.
type Multihash []byte

// SumSha256 returns the SHA2-256 multihash of data.
func SumSha256(data []byte) Multihash {
	digest := sha256.Sum256(data)
	return EncodeMultihash(MhSha256, digest[:])
}

// EncodeMultihash wraps a raw digest with its code and length.
func EncodeMultihash(code uint64, digest []byte) Multihash {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+len(digest))
	buf = binary.AppendUvarint(buf, code)
	buf = binary.AppendUvarint(buf, uint64(len(digest)))
	return append(buf, digest...)
}

// DecodeMultihash splits a multihash into code and digest.
func DecodeMultihash(mh Multihash) (code uint64, digest []byte, err error) {
	code, n := binary.Uvarint(mh)
	if n <= 0 {
		return 0, nil, errors.New("cid: multihash: bad code varint")
	}
	rest := mh[n:]
	length, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, errors.New("cid: multihash: bad length varint")
	}
	rest = rest[n:]
	if uint64(len(rest)) != length {
		return 0, nil, fmt.Errorf("cid: multihash: digest length %d != declared %d", len(rest), length)
	}
	return code, rest, nil
}

// Validate checks structural well-formedness.
func (mh Multihash) Validate() error {
	_, _, err := DecodeMultihash(mh)
	return err
}

// Digest returns the raw digest bytes, or nil if malformed.
func (mh Multihash) Digest() []byte {
	_, d, err := DecodeMultihash(mh)
	if err != nil {
		return nil
	}
	return d
}
