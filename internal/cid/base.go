package cid

import (
	"errors"
	"math/big"
	"strings"
)

// base32 (RFC 4648 lowercase, no padding) — the multibase "b" alphabet.
const base32Alphabet = "abcdefghijklmnopqrstuvwxyz234567"

func base32Encode(src []byte) string {
	var b strings.Builder
	b.Grow((len(src)*8 + 4) / 5)
	var acc uint64
	var bits uint
	for _, c := range src {
		acc = acc<<8 | uint64(c)
		bits += 8
		for bits >= 5 {
			bits -= 5
			b.WriteByte(base32Alphabet[(acc>>bits)&31])
		}
	}
	if bits > 0 {
		b.WriteByte(base32Alphabet[(acc<<(5-bits))&31])
	}
	return b.String()
}

func base32Decode(s string) ([]byte, error) {
	var out []byte
	var acc uint64
	var bits uint
	for i := 0; i < len(s); i++ {
		idx := strings.IndexByte(base32Alphabet, s[i])
		if idx < 0 {
			return nil, errors.New("invalid base32 character")
		}
		acc = acc<<5 | uint64(idx)
		bits += 5
		if bits >= 8 {
			bits -= 8
			out = append(out, byte(acc>>bits))
		}
	}
	// Trailing bits must be zero padding.
	if bits > 0 && acc&((1<<bits)-1) != 0 {
		return nil, errors.New("invalid base32 trailing bits")
	}
	return out, nil
}

// base58btc — the Bitcoin/IPFS alphabet, used for CIDv0-style display.
const base58Alphabet = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"

func base58Encode(src []byte) string {
	zeros := 0
	for zeros < len(src) && src[zeros] == 0 {
		zeros++
	}
	n := new(big.Int).SetBytes(src)
	radix := big.NewInt(58)
	mod := new(big.Int)
	var digits []byte
	for n.Sign() > 0 {
		n.DivMod(n, radix, mod)
		digits = append(digits, base58Alphabet[mod.Int64()])
	}
	var b strings.Builder
	b.Grow(zeros + len(digits))
	for i := 0; i < zeros; i++ {
		b.WriteByte('1')
	}
	for i := len(digits) - 1; i >= 0; i-- {
		b.WriteByte(digits[i])
	}
	return b.String()
}

func base58Decode(s string) ([]byte, error) {
	zeros := 0
	for zeros < len(s) && s[zeros] == '1' {
		zeros++
	}
	n := new(big.Int)
	radix := big.NewInt(58)
	for i := zeros; i < len(s); i++ {
		idx := strings.IndexByte(base58Alphabet, s[i])
		if idx < 0 {
			return nil, errors.New("invalid base58 character")
		}
		n.Mul(n, radix)
		n.Add(n, big.NewInt(int64(idx)))
	}
	body := n.Bytes()
	out := make([]byte, zeros+len(body))
	copy(out[zeros:], body)
	return out, nil
}
