package dataset

import (
	"testing"

	"socialchain/internal/detect"
)

func TestDefaultsMatchPaper(t *testing.T) {
	c := Generate(Config{Seed: 1, FramesPerVideo: 2, FramesPerFlight: 2})
	if len(c.Static) != 52 {
		t.Fatalf("static videos = %d, want the paper's 52", len(c.Static))
	}
	if len(c.Drone) == 0 {
		t.Fatal("no drone corpus")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	cfg := Config{Seed: 7, NumVideos: 3, FramesPerVideo: 4, NumDroneFlights: 1, FramesPerFlight: 2}
	a := Generate(cfg)
	b := Generate(cfg)
	fa := a.AllFrames()
	fb := b.AllFrames()
	if len(fa) != len(fb) {
		t.Fatalf("frame counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i].ID != fb[i].ID || fa[i].Hash() != fb[i].Hash() {
			t.Fatalf("frame %d differs between runs", i)
		}
	}
	other := Generate(Config{Seed: 8, NumVideos: 3, FramesPerVideo: 4, NumDroneFlights: 1, FramesPerFlight: 2})
	if other.AllFrames()[0].Hash() == fa[0].Hash() {
		t.Fatal("different seeds produced identical payloads")
	}
}

func TestFrameWellFormed(t *testing.T) {
	c := Generate(Config{Seed: 3, NumVideos: 4, FramesPerVideo: 3, NumDroneFlights: 2, FramesPerFlight: 3})
	for _, f := range c.AllFrames() {
		if f.SizeBytes() < 512 {
			t.Fatalf("frame %s too small: %d", f.ID, f.SizeBytes())
		}
		if f.Width <= 0 || f.Height <= 0 {
			t.Fatalf("frame %s has no dimensions", f.ID)
		}
		if f.Timestamp.IsZero() {
			t.Fatalf("frame %s has zero timestamp", f.ID)
		}
		if f.Location.Latitude < 12 || f.Location.Latitude > 14 {
			t.Fatalf("frame %s latitude %f not near Bangalore", f.ID, f.Location.Latitude)
		}
		if f.Location.Longitude < 76.5 || f.Location.Longitude > 78.5 {
			t.Fatalf("frame %s longitude %f not near Bangalore", f.ID, f.Location.Longitude)
		}
	}
}

func TestDroneFramesCarryCaptureConditions(t *testing.T) {
	c := Generate(Config{Seed: 5, NumVideos: 1, FramesPerVideo: 1, NumDroneFlights: 3, FramesPerFlight: 5})
	for _, v := range c.Drone {
		for _, f := range v.Frames {
			if f.Platform != detect.PlatformDrone {
				t.Fatal("drone video carries non-drone frame")
			}
			if f.Altitude < 10 {
				t.Fatalf("altitude %f too low", f.Altitude)
			}
			if f.MotionBlur < 0 || f.MotionBlur > 1 {
				t.Fatalf("blur %f out of range", f.MotionBlur)
			}
		}
	}
	for _, v := range c.Static {
		for _, f := range v.Frames {
			if f.MotionBlur != 0 || f.Altitude != 0 {
				t.Fatal("static frame has drone capture conditions")
			}
			if f.LightLevel != 1 {
				t.Fatal("static frame not at full light")
			}
		}
	}
}

func TestDroneFramesSkewLarger(t *testing.T) {
	c := Generate(Config{Seed: 9, NumVideos: 20, FramesPerVideo: 10, NumDroneFlights: 20, FramesPerFlight: 10})
	var staticSum, droneSum float64
	var staticN, droneN int
	for _, v := range c.Static {
		for i := range v.Frames {
			staticSum += float64(v.Frames[i].SizeBytes())
			staticN++
		}
	}
	for _, v := range c.Drone {
		for i := range v.Frames {
			droneSum += float64(v.Frames[i].SizeBytes())
			droneN++
		}
	}
	if droneSum/float64(droneN) <= staticSum/float64(staticN) {
		t.Fatal("drone frames not larger on average")
	}
}

func TestFrameIDsUnique(t *testing.T) {
	c := Generate(Config{Seed: 11, NumVideos: 5, FramesPerVideo: 5, NumDroneFlights: 2, FramesPerFlight: 5})
	seen := map[string]bool{}
	for _, f := range c.AllFrames() {
		if seen[f.ID] {
			t.Fatalf("duplicate frame id %s", f.ID)
		}
		seen[f.ID] = true
	}
}

func TestTimestampsMonotonicWithinVideo(t *testing.T) {
	c := Generate(Config{Seed: 13, NumVideos: 2, FramesPerVideo: 10, NumDroneFlights: 1, FramesPerFlight: 2})
	for _, v := range c.Static {
		for i := 1; i < len(v.Frames); i++ {
			if !v.Frames[i].Timestamp.After(v.Frames[i-1].Timestamp) {
				t.Fatalf("video %s timestamps not increasing", v.ID)
			}
		}
	}
}
