// Package dataset generates the evaluation corpus: a stand-in for the
// paper's 52 traffic videos from static cameras across Bangalore (sourced
// from the India Urban Data Exchange) plus drone-captured footage. Frames
// carry synthetic payloads whose size distribution, encodings and capture
// conditions drive Figures 3-6. Generation is fully deterministic per seed.
package dataset

import (
	"fmt"
	"math"
	"time"

	"socialchain/internal/detect"
	"socialchain/internal/sim"
)

// Bangalore city-centre anchor for camera placement.
const (
	bangaloreLat = 12.9716
	bangaloreLon = 77.5946
)

// Config controls corpus generation.
type Config struct {
	// Seed fixes the corpus (default 1).
	Seed int64
	// NumVideos is the static-camera video count (default 52, as in §IV).
	NumVideos int
	// FramesPerVideo is the sampled frame count per video (default 20).
	FramesPerVideo int
	// NumDroneFlights is the drone corpus size (default 12 flights).
	NumDroneFlights int
	// FramesPerFlight is frames per drone flight (default 20).
	FramesPerFlight int
	// MeanFrameKB centres the payload size distribution (default 48 KiB).
	MeanFrameKB float64
	// Start anchors frame timestamps (default 2024-07-10T05:00:00Z, the
	// capture day of the paper's Figure 2 sample).
	Start time.Time
}

func (c *Config) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NumVideos <= 0 {
		c.NumVideos = 52
	}
	if c.FramesPerVideo <= 0 {
		c.FramesPerVideo = 20
	}
	if c.NumDroneFlights <= 0 {
		c.NumDroneFlights = 12
	}
	if c.FramesPerFlight <= 0 {
		c.FramesPerFlight = 20
	}
	if c.MeanFrameKB <= 0 {
		c.MeanFrameKB = 48
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2024, 7, 10, 5, 0, 0, 0, time.UTC)
	}
}

// Camera is a capture source.
type Camera struct {
	ID       string
	Platform detect.Platform
	Location detect.GeoPoint
}

// Video is one recorded sequence.
type Video struct {
	ID     string
	Camera Camera
	Frames []detect.Frame
}

// Corpus is the full evaluation dataset.
type Corpus struct {
	Static []Video
	Drone  []Video
}

// AllFrames returns every frame, static first.
func (c *Corpus) AllFrames() []*detect.Frame {
	var out []*detect.Frame
	for i := range c.Static {
		for j := range c.Static[i].Frames {
			out = append(out, &c.Static[i].Frames[j])
		}
	}
	for i := range c.Drone {
		for j := range c.Drone[i].Frames {
			out = append(out, &c.Drone[i].Frames[j])
		}
	}
	return out
}

// Generate builds the corpus for cfg.
func Generate(cfg Config) *Corpus {
	cfg.fill()
	rng := sim.NewRNG(cfg.Seed)
	corpus := &Corpus{}
	for v := 0; v < cfg.NumVideos; v++ {
		corpus.Static = append(corpus.Static, generateVideo(rng, cfg, v, detect.PlatformStatic))
	}
	for v := 0; v < cfg.NumDroneFlights; v++ {
		corpus.Drone = append(corpus.Drone, generateVideo(rng, cfg, v, detect.PlatformDrone))
	}
	return corpus
}

var encodings = []detect.Encoding{
	detect.EncodingJPEG, detect.EncodingJPEG, detect.EncodingJPEG, // JPEG dominates
	detect.EncodingPNG, detect.EncodingRaw, detect.EncodingH264,
}

func generateVideo(rng *sim.RNG, cfg Config, index int, platform detect.Platform) Video {
	kind := "cam"
	vidPrefix := "iudx-blr"
	if platform == detect.PlatformDrone {
		kind = "drone"
		vidPrefix = "drone-blr"
	}
	cam := Camera{
		ID:       fmt.Sprintf("%s-%03d", kind, index),
		Platform: platform,
		Location: detect.GeoPoint{
			// Cameras scatter ~0.1 degrees (~11 km) around the city centre.
			Latitude:  bangaloreLat + rng.Normal(0, 0.05),
			Longitude: bangaloreLon + rng.Normal(0, 0.05),
		},
	}
	video := Video{ID: fmt.Sprintf("%s-%03d", vidPrefix, index), Camera: cam}
	start := cfg.Start.Add(time.Duration(index) * 3 * time.Minute)
	enc := sim.Pick(rng, encodings)

	// Drone flights vary altitude and blur through the flight.
	baseAltitude := 40 + rng.Float64()*80
	light := 0.55 + rng.Float64()*0.45

	for i := 0; i < framesFor(cfg, platform); i++ {
		size := frameSize(rng, cfg, platform)
		f := detect.Frame{
			ID:        detect.FrameIDFor(video.ID, i),
			VideoID:   video.ID,
			CameraID:  cam.ID,
			Index:     i,
			Platform:  platform,
			Encoding:  enc,
			Width:     1280,
			Height:    720,
			Data:      rng.Bytes(size),
			Timestamp: start.Add(time.Duration(i) * 2 * time.Second),
			Location:  cam.Location,
		}
		if platform == detect.PlatformDrone {
			f.MotionBlur = clamp01(rng.NormalClamped(0.35, 0.2, 0, 1))
			f.Altitude = baseAltitude + rng.Normal(0, 15)
			if f.Altitude < 10 {
				f.Altitude = 10
			}
			f.LightLevel = light
			// The drone drifts.
			f.Location.Latitude += rng.Normal(0, 0.001)
			f.Location.Longitude += rng.Normal(0, 0.001)
		} else {
			f.LightLevel = 1
		}
		video.Frames = append(video.Frames, f)
	}
	return video
}

func framesFor(cfg Config, p detect.Platform) int {
	if p == detect.PlatformDrone {
		return cfg.FramesPerFlight
	}
	return cfg.FramesPerVideo
}

// frameSize draws a payload size: log-normal-ish around the configured
// mean, with drones skewing larger and more variable (higher resolution,
// raw-er captures).
func frameSize(rng *sim.RNG, cfg Config, p detect.Platform) int {
	mean := cfg.MeanFrameKB * 1024
	mult := 1.0
	if p == detect.PlatformDrone {
		mult = 1.6
	}
	// exp(N(0, 0.5)) gives a right-skewed multiplier near 1.
	skew := rng.Normal(0, 0.5)
	if skew > 2 {
		skew = 2
	}
	size := mean * mult * math.Exp(skew)
	if size < 512 {
		size = 512
	}
	return int(size)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
