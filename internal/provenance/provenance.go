// Package provenance implements the paper's data-provenance feature: every
// stored record carries its origin, timestamp, source and payload hash, and
// records from one source form a hash-linked chain. This package verifies
// those artefacts against the ledger (Merkle inclusion) and against the
// retrieved payload (hash integrity), providing the trustworthiness,
// traceability and integrity guarantees of §III-B(c).
package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"socialchain/internal/contracts"
	"socialchain/internal/ledger"
)

// ErrTampered indicates the retrieved payload does not match the on-chain
// hash.
var ErrTampered = errors.New("provenance: payload does not match on-chain hash")

// VerifyPayload checks the retrieved payload against the record's
// cryptographic anchors: SHA-256 hash and size.
func VerifyPayload(rec *contracts.DataRecord, payload []byte) error {
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != rec.DataHash {
		return fmt.Errorf("%w: record %s", ErrTampered, rec.TxID)
	}
	if rec.SizeBytes != 0 && rec.SizeBytes != len(payload) {
		return fmt.Errorf("provenance: record %s size %d != payload %d", rec.TxID, rec.SizeBytes, len(payload))
	}
	return nil
}

// VerifyInclusion proves that txID is part of the given ledger: the
// transaction must exist, be flagged valid, and verify against its block's
// Merkle data hash.
func VerifyInclusion(l *ledger.Ledger, txID string) error {
	tx, flag, blockNum, err := l.GetTx(txID)
	if err != nil {
		return err
	}
	if flag != ledger.Valid {
		return fmt.Errorf("provenance: tx %s committed invalid: %s", txID, flag)
	}
	block, err := l.GetBlock(blockNum)
	if err != nil {
		return err
	}
	idx := -1
	for i := range block.Txs {
		if block.Txs[i].ID == txID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("provenance: tx %s not in block %d", txID, blockNum)
	}
	proof, err := block.TxProof(idx)
	if err != nil {
		return err
	}
	if !block.VerifyTxInclusion(tx, proof) {
		return fmt.Errorf("provenance: merkle proof failed for tx %s", txID)
	}
	return nil
}

// VerifyChain checks a per-source provenance chain (newest first, as
// returned by the data contract's getProvenance): links must connect,
// sequence numbers must descend to 1, and all records must share a source.
func VerifyChain(chain []contracts.DataRecord) error {
	if len(chain) == 0 {
		return errors.New("provenance: empty chain")
	}
	source := chain[0].Source
	for i := range chain {
		rec := &chain[i]
		if rec.Source != source {
			return fmt.Errorf("provenance: chain mixes sources %s and %s", source, rec.Source)
		}
		wantSeq := chain[0].Seq - i
		if rec.Seq != wantSeq {
			return fmt.Errorf("provenance: record %s has seq %d, want %d", rec.TxID, rec.Seq, wantSeq)
		}
		if i+1 < len(chain) {
			if rec.PrevTxID != chain[i+1].TxID {
				return fmt.Errorf("provenance: link broken at %s", rec.TxID)
			}
		} else if rec.PrevTxID != "" {
			return fmt.Errorf("provenance: chain tail %s has dangling prev %s", rec.TxID, rec.PrevTxID)
		}
	}
	if chain[len(chain)-1].Seq != 1 {
		return fmt.Errorf("provenance: chain does not reach origin (tail seq %d)", chain[len(chain)-1].Seq)
	}
	return nil
}

// Summary describes a verified provenance chain for reporting.
type Summary struct {
	Source  string
	Length  int
	Origin  string // first tx id
	Newest  string // latest tx id
	Valid   bool
	Problem string
}

// Summarise verifies a chain and produces a report.
func Summarise(chain []contracts.DataRecord) Summary {
	s := Summary{Length: len(chain)}
	if len(chain) > 0 {
		s.Source = chain[0].Source
		s.Newest = chain[0].TxID
		s.Origin = chain[len(chain)-1].TxID
	}
	if err := VerifyChain(chain); err != nil {
		s.Problem = err.Error()
		return s
	}
	s.Valid = true
	return s
}
