package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"testing"
	"time"

	"socialchain/internal/contracts"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
)

func record(txID, prev, source string, seq int, payload []byte) contracts.DataRecord {
	sum := sha256.Sum256(payload)
	return contracts.DataRecord{
		TxID:      txID,
		CID:       "cid-" + txID,
		Source:    source,
		DataHash:  hex.EncodeToString(sum[:]),
		SizeBytes: len(payload),
		PrevTxID:  prev,
		Seq:       seq,
	}
}

func TestVerifyPayloadMatch(t *testing.T) {
	payload := []byte("the raw frame bytes")
	rec := record("tx1", "", "city/cam", 1, payload)
	if err := VerifyPayload(&rec, payload); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyPayloadTampered(t *testing.T) {
	payload := []byte("original")
	rec := record("tx1", "", "city/cam", 1, payload)
	err := VerifyPayload(&rec, []byte("tampered"))
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("want ErrTampered, got %v", err)
	}
}

func TestVerifyPayloadSizeMismatch(t *testing.T) {
	payload := []byte("sized")
	rec := record("tx1", "", "city/cam", 1, payload)
	rec.SizeBytes = 999
	if err := VerifyPayload(&rec, payload); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestVerifyChainValid(t *testing.T) {
	chain := []contracts.DataRecord{
		record("tx3", "tx2", "s", 3, []byte("c")),
		record("tx2", "tx1", "s", 2, []byte("b")),
		record("tx1", "", "s", 1, []byte("a")),
	}
	if err := VerifyChain(chain); err != nil {
		t.Fatal(err)
	}
	sum := Summarise(chain)
	if !sum.Valid || sum.Length != 3 || sum.Origin != "tx1" || sum.Newest != "tx3" {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestVerifyChainBrokenLink(t *testing.T) {
	chain := []contracts.DataRecord{
		record("tx3", "WRONG", "s", 3, []byte("c")),
		record("tx2", "tx1", "s", 2, []byte("b")),
		record("tx1", "", "s", 1, []byte("a")),
	}
	if err := VerifyChain(chain); err == nil {
		t.Fatal("broken link accepted")
	}
}

func TestVerifyChainMixedSources(t *testing.T) {
	chain := []contracts.DataRecord{
		record("tx2", "tx1", "s1", 2, []byte("b")),
		record("tx1", "", "s2", 1, []byte("a")),
	}
	if err := VerifyChain(chain); err == nil {
		t.Fatal("mixed sources accepted")
	}
}

func TestVerifyChainBadSeq(t *testing.T) {
	chain := []contracts.DataRecord{
		record("tx2", "tx1", "s", 5, []byte("b")),
		record("tx1", "", "s", 1, []byte("a")),
	}
	if err := VerifyChain(chain); err == nil {
		t.Fatal("bad sequence accepted")
	}
}

func TestVerifyChainDanglingTail(t *testing.T) {
	chain := []contracts.DataRecord{
		record("tx2", "tx1", "s", 2, []byte("b")),
		record("tx1", "tx0", "s", 1, []byte("a")), // seq 1 with a prev
	}
	if err := VerifyChain(chain); err == nil {
		t.Fatal("dangling tail accepted")
	}
}

func TestVerifyChainEmpty(t *testing.T) {
	if err := VerifyChain(nil); err == nil {
		t.Fatal("empty chain accepted")
	}
	if s := Summarise(nil); s.Valid {
		t.Fatal("empty summary valid")
	}
}

func buildLedger(t *testing.T, flag ledger.ValidationCode) (*ledger.Ledger, string) {
	t.Helper()
	s, err := msp.NewSigner("org", "client", msp.RoleMember)
	if err != nil {
		t.Fatal(err)
	}
	tx := ledger.Transaction{ID: "target-tx", ChannelID: "ch", Creator: s.Identity, Timestamp: time.Now()}
	tx.Signature = s.Sign(tx.SigningBytes())
	other := ledger.Transaction{ID: "other-tx", ChannelID: "ch", Creator: s.Identity, Timestamp: time.Now()}
	other.Signature = s.Sign(other.SigningBytes())

	l := ledger.New()
	blk := ledger.NewBlock(0, l.TipHash(), []ledger.Transaction{other, tx}, time.Now())
	blk.Metadata.Flags[1] = flag
	if err := l.Append(blk); err != nil {
		t.Fatal(err)
	}
	return l, "target-tx"
}

func TestVerifyInclusionValid(t *testing.T) {
	l, txID := buildLedger(t, ledger.Valid)
	if err := VerifyInclusion(l, txID); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyInclusionInvalidFlag(t *testing.T) {
	l, txID := buildLedger(t, ledger.MVCCConflict)
	if err := VerifyInclusion(l, txID); err == nil {
		t.Fatal("invalid tx passed inclusion check")
	}
}

func TestVerifyInclusionUnknownTx(t *testing.T) {
	l, _ := buildLedger(t, ledger.Valid)
	if err := VerifyInclusion(l, "ghost"); err == nil {
		t.Fatal("unknown tx passed")
	}
}
