package sim

import "time"

// LatencyModel yields the one-way message delay between two named endpoints.
// The in-process transports consult it before delivering a message, letting
// benchmarks approximate LAN or WAN deployments of the blockchain and IPFS
// networks.
type LatencyModel interface {
	Delay(from, to string) time.Duration
}

// ZeroLatency delivers every message immediately. It is the default for unit
// tests.
type ZeroLatency struct{}

// Delay implements LatencyModel.
func (ZeroLatency) Delay(from, to string) time.Duration { return 0 }

// FixedLatency applies the same delay to every message.
type FixedLatency struct{ D time.Duration }

// Delay implements LatencyModel.
func (f FixedLatency) Delay(from, to string) time.Duration { return f.D }

// UniformLatency draws delays uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
	Rng      *RNG
}

// Delay implements LatencyModel.
func (u UniformLatency) Delay(from, to string) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	span := int64(u.Max - u.Min)
	return u.Min + time.Duration(u.Rng.Int63n(span+1))
}

// LANLatency returns a latency model typical of a single-site deployment,
// matching the paper's Docker-on-one-host testbed (sub-millisecond hops).
func LANLatency(rng *RNG) LatencyModel {
	return UniformLatency{Min: 50 * time.Microsecond, Max: 300 * time.Microsecond, Rng: rng}
}

// WANLatency returns a latency model for a geo-distributed deployment; used
// by the scalability ablation.
func WANLatency(rng *RNG) LatencyModel {
	return UniformLatency{Min: 5 * time.Millisecond, Max: 40 * time.Millisecond, Rng: rng}
}
