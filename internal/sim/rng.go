package sim

import (
	"math/rand"
	"sync"
)

// RNG is a seeded, goroutine-safe random source used by dataset generators,
// detectors and latency models so experiments are reproducible.
type RNG struct {
	mu sync.Mutex
	r  *rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Int63n returns a uniform int64 in [0, n).
func (g *RNG) Int63n(n int64) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Int63n(n)
}

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Intn(n)
}

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Float64()
}

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.NormFloat64()
}

// Normal returns a sample from N(mean, stddev).
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.NormFloat64()
}

// NormalClamped returns a sample from N(mean, stddev) clamped to [lo, hi].
func (g *RNG) NormalClamped(mean, stddev, lo, hi float64) float64 {
	v := g.Normal(mean, stddev)
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// ExpFloat64 returns an exponentially distributed sample with rate 1.
func (g *RNG) ExpFloat64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.ExpFloat64()
}

// Bytes fills a new slice of length n with pseudo-random bytes.
func (g *RNG) Bytes(n int) []byte {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := make([]byte, n)
	// rand.Rand.Read never returns an error.
	g.r.Read(b)
	return b
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Perm(n)
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.r.Shuffle(n, swap)
}

// Pick returns a uniformly chosen element of choices.
func Pick[T any](g *RNG, choices []T) T {
	return choices[g.Intn(len(choices))]
}

// Fork derives a new independent RNG from this one. Forked generators let
// subsystems consume randomness without perturbing each other's streams.
func (g *RNG) Fork() *RNG {
	g.mu.Lock()
	defer g.mu.Unlock()
	return NewRNG(g.r.Int63())
}
