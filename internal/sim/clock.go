// Package sim provides deterministic substrates for the rest of the system:
// clocks that can be real or simulated, seeded random sources, and network
// latency models. Components accept these as dependencies so that unit tests
// and benchmarks are reproducible.
package sim

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time so components can run against wall-clock time in
// production and against a controllable fake in tests.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for the given duration.
	Sleep(d time.Duration)
	// After returns a channel that receives the time after duration d.
	After(d time.Duration) <-chan time.Time
}

// RealClock is a Clock backed by the time package.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually advanced Clock for deterministic tests. The zero
// value is not usable; construct with NewFakeClock.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewFakeClock returns a FakeClock starting at the given time.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock. It blocks until Advance moves the clock past the
// deadline.
func (c *FakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-c.After(d)
}

// After implements Clock.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, &fakeWaiter{deadline: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward, firing any timers whose deadline passes.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due, rest []*fakeWaiter
	for _, w := range c.waiters {
		if !w.deadline.After(now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	c.mu.Unlock()

	sort.Slice(due, func(i, j int) bool { return due[i].deadline.Before(due[j].deadline) })
	for _, w := range due {
		w.ch <- now
	}
}

// PendingTimers reports how many timers are waiting to fire. Useful for
// test synchronization.
func (c *FakeClock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
