package sim

import (
	"testing"
	"time"
)

func TestRealClockMonotonic(t *testing.T) {
	c := RealClock{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatal("real clock went backwards")
	}
}

func TestFakeClockAdvanceFiresTimers(t *testing.T) {
	start := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewFakeClock(start)
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before advance")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	c.Advance(2 * time.Second)
	select {
	case got := <-ch:
		want := start.Add(11 * time.Second)
		if !got.Equal(want) {
			t.Fatalf("fired at %v, want %v", got, want)
		}
	case <-time.After(time.Second):
		t.Fatal("timer did not fire after advance")
	}
}

func TestFakeClockSleepUnblocksOnAdvance(t *testing.T) {
	c := NewFakeClock(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		c.Sleep(5 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to register.
	for c.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not return")
	}
}

func TestFakeClockZeroAfterFiresImmediately(t *testing.T) {
	c := NewFakeClock(time.Unix(100, 0))
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Fatal("zero-duration After must fire immediately")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Intn(1000) == NewRNG(2).Intn(1000) &&
		NewRNG(1).Intn(1000) == NewRNG(3).Intn(1000) {
		t.Fatal("different seeds suspiciously identical")
	}
}

func TestRNGNormalClamped(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := g.NormalClamped(0.5, 10, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("clamped value %f out of range", v)
		}
	}
}

func TestRNGBytesLen(t *testing.T) {
	g := NewRNG(9)
	for _, n := range []int{0, 1, 17, 4096} {
		if got := len(g.Bytes(n)); got != n {
			t.Fatalf("Bytes(%d) returned %d bytes", n, got)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(5)
	f1 := g.Fork()
	// Consuming from the parent must not affect the fork's stream once
	// forked.
	seq1 := []float64{f1.Float64(), f1.Float64()}

	g2 := NewRNG(5)
	f2 := g2.Fork()
	seq2 := []float64{f2.Float64(), f2.Float64()}
	if seq1[0] != seq2[0] || seq1[1] != seq2[1] {
		t.Fatal("forked RNG not reproducible")
	}
}

func TestPick(t *testing.T) {
	g := NewRNG(11)
	choices := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(g, choices)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick over 100 draws hit %d of 3 choices", len(seen))
	}
}

func TestZeroLatency(t *testing.T) {
	if (ZeroLatency{}).Delay("a", "b") != 0 {
		t.Fatal("zero latency must be zero")
	}
}

func TestFixedLatency(t *testing.T) {
	m := FixedLatency{D: 5 * time.Millisecond}
	if m.Delay("x", "y") != 5*time.Millisecond {
		t.Fatal("fixed latency mismatch")
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	m := UniformLatency{Min: time.Millisecond, Max: 3 * time.Millisecond, Rng: NewRNG(3)}
	for i := 0; i < 1000; i++ {
		d := m.Delay("a", "b")
		if d < time.Millisecond || d > 3*time.Millisecond {
			t.Fatalf("delay %v out of [1ms,3ms]", d)
		}
	}
}

func TestUniformLatencyDegenerateRange(t *testing.T) {
	m := UniformLatency{Min: 2 * time.Millisecond, Max: 2 * time.Millisecond, Rng: NewRNG(3)}
	if d := m.Delay("a", "b"); d != 2*time.Millisecond {
		t.Fatalf("degenerate range returned %v", d)
	}
}

func TestLANWANProfiles(t *testing.T) {
	rng := NewRNG(1)
	lan := LANLatency(rng)
	wan := WANLatency(rng)
	for i := 0; i < 100; i++ {
		if d := lan.Delay("a", "b"); d < 50*time.Microsecond || d > 300*time.Microsecond {
			t.Fatalf("LAN delay %v out of profile", d)
		}
		if d := wan.Delay("a", "b"); d < 5*time.Millisecond || d > 40*time.Millisecond {
			t.Fatalf("WAN delay %v out of profile", d)
		}
	}
}
