package ipfs

import (
	"fmt"
	"testing"

	"socialchain/internal/sim"
)

func BenchmarkAddLocal(b *testing.B) {
	for _, size := range []int{64 * 1024, 1 << 20} {
		b.Run(fmt.Sprintf("size=%dKB", size/1024), func(b *testing.B) {
			c, err := NewCluster(ClusterConfig{Nodes: 1})
			if err != nil {
				b.Fatal(err)
			}
			rng := sim.NewRNG(1)
			payloads := make([][]byte, 8)
			for i := range payloads {
				payloads[i] = rng.Bytes(size)
			}
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Node(0).Add(payloads[i%len(payloads)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGetCrossNodeCold(b *testing.B) {
	// Every iteration adds fresh content on node 0 and fetches it cold on
	// node 1, measuring DHT lookup + bitswap transfer.
	c, err := NewCluster(ClusterConfig{Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(2)
	const size = 256 * 1024
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		root, err := c.Node(0).Add(rng.Bytes(size))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := c.Node(1).Get(root); err != nil {
			b.Fatal(err)
		}
	}
}
