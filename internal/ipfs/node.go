// Package ipfs assembles the off-chain content-addressed store from its
// substrates: chunking, Merkle-DAG construction, block storage, DHT provider
// routing and bitswap block exchange. A Node exposes the familiar
// Add/Get/Pin/GC surface; a Cluster wires several nodes into one network,
// standing in for the paper's two-node IPFS deployment.
package ipfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"socialchain/internal/bitswap"
	"socialchain/internal/blockstore"
	"socialchain/internal/chunker"
	"socialchain/internal/cid"
	"socialchain/internal/dag"
	"socialchain/internal/dht"
)

// ChunkStrategy selects how payloads are split into blocks.
type ChunkStrategy int

const (
	// ChunkFixed uses fixed-size chunks (IPFS default).
	ChunkFixed ChunkStrategy = iota
	// ChunkBuzhash uses content-defined chunking.
	ChunkBuzhash
)

// Options configure a Node.
type Options struct {
	// ChunkSize for ChunkFixed; 0 means chunker.DefaultChunkSize.
	ChunkSize int
	// Strategy selects the chunker.
	Strategy ChunkStrategy
	// Fanout is the DAG interior-node width; 0 means dag.DefaultFanout.
	Fanout int
}

// Node is one IPFS peer.
type Node struct {
	name string
	opts Options

	bs  blockstore.Blockstore
	pin *blockstore.Pinner
	dht *dht.Node
	bw  *bitswap.Engine
}

// blockOf encodes a DAG node into its stored block form.
func blockOf(n *dag.Node) blockstore.Block {
	if len(n.Links) == 0 {
		return blockstore.Block{Cid: cid.SumRaw(n.Data), Data: n.Data}
	}
	enc := n.Encode()
	return blockstore.Block{Cid: cid.SumDagNode(enc), Data: enc}
}

// decodeBlock reverses blockOf based on the CID codec.
func decodeBlock(b blockstore.Block) (*dag.Node, error) {
	switch b.Cid.Codec() {
	case cid.CodecRaw:
		return &dag.Node{Data: b.Data}, nil
	case cid.CodecDagNode:
		return dag.Decode(b.Data)
	default:
		return nil, fmt.Errorf("ipfs: unknown codec %#x", b.Cid.Codec())
	}
}

// localStore adapts the blockstore to the dag builder/walker interfaces.
type localStore struct{ bs blockstore.Blockstore }

func (s localStore) PutNode(n *dag.Node) (cid.Cid, error) {
	b := blockOf(n)
	if err := s.bs.Put(b); err != nil {
		return cid.Undef, err
	}
	return b.Cid, nil
}

func (s localStore) GetNode(c cid.Cid) (*dag.Node, error) {
	b, err := s.bs.Get(c)
	if err != nil {
		return nil, err
	}
	return decodeBlock(b)
}

// Name returns the node's peer name.
func (n *Node) Name() string { return n.name }

// Blockstore exposes the underlying store (stats, tests).
func (n *Node) Blockstore() blockstore.Blockstore { return n.bs }

// DHT exposes the routing node (tests, stats).
func (n *Node) DHT() *dht.Node { return n.dht }

// Bitswap exposes the exchange engine (stats).
func (n *Node) Bitswap() *bitswap.Engine { return n.bw }

// newChunker builds the configured chunker over r.
func (n *Node) newChunker(r io.Reader) chunker.Chunker {
	switch n.opts.Strategy {
	case ChunkBuzhash:
		return chunker.NewBuzhash(r)
	default:
		return chunker.NewFixed(r, n.opts.ChunkSize)
	}
}

// Add imports data: chunk, build the Merkle DAG, store blocks, pin the root
// and announce this node as a provider. It returns the root CID.
func (n *Node) Add(data []byte) (cid.Cid, error) {
	return n.AddReader(bytes.NewReader(data))
}

// AddReader is Add over a stream.
func (n *Node) AddReader(r io.Reader) (cid.Cid, error) {
	chunks, err := chunker.ChunkAll(n.newChunker(r))
	if err != nil {
		return cid.Undef, fmt.Errorf("ipfs: chunk: %w", err)
	}
	fanout := n.opts.Fanout
	if fanout == 0 {
		fanout = dag.DefaultFanout
	}
	root, _, err := dag.BuildFileFanout(localStore{n.bs}, chunks, fanout)
	if err != nil {
		return cid.Undef, fmt.Errorf("ipfs: build dag: %w", err)
	}
	n.pin.Pin(root)
	if err := n.dht.Provide(root); err != nil {
		return cid.Undef, fmt.Errorf("ipfs: provide: %w", err)
	}
	return root, nil
}

// ErrNotFound signals unreachable content.
var ErrNotFound = errors.New("ipfs: content not found")

// Get retrieves the full payload addressed by root. Missing blocks are
// located via the DHT and fetched over bitswap; every fetched block is
// hash-verified before use. Reassembly reuses the node set the fetch
// already decoded, so the DAG is walked (and each block decoded) once,
// not once to fetch and again to concatenate.
func (n *Node) Get(root cid.Cid) ([]byte, error) {
	if !root.Defined() {
		return nil, errors.New("ipfs: undefined cid")
	}
	nodes, err := n.fetchDAG(root)
	if err != nil {
		return nil, err
	}
	return dag.Reassemble(fetchedNodes{nodes: nodes, fallback: localStore{n.bs}}, root)
}

// fetchedNodes serves reassembly from the node set fetchDAG decoded,
// falling back to the blockstore for anything evicted in between.
type fetchedNodes struct {
	nodes    map[cid.Cid]*dag.Node
	fallback localStore
}

func (f fetchedNodes) GetNode(c cid.Cid) (*dag.Node, error) {
	if node, ok := f.nodes[c]; ok {
		return node, nil
	}
	return f.fallback.GetNode(c)
}

// Has reports whether the complete DAG under root is present locally. The
// traversal stops cleanly at the first missing or undecodable block — no
// sentinel error threading through the generic walker — and, unlike a
// presence check on the root alone, a gap anywhere in the DAG reports
// false.
func (n *Node) Has(root cid.Cid) bool {
	seen := map[cid.Cid]bool{root: true}
	stack := []cid.Cid{root}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b, err := n.bs.Get(c)
		if err != nil {
			return false
		}
		node, err := decodeBlock(b)
		if err != nil {
			return false
		}
		for _, l := range node.Links {
			// Shared chunks repeat a CID; check each block once.
			if !seen[l.Cid] {
				seen[l.Cid] = true
				stack = append(stack, l.Cid)
			}
		}
	}
	return true
}

// fetchDAG ensures every block of the DAG under root is in the local
// store, fetching missing blocks level by level with parallel bitswap
// requests, and returns the decoded node set so callers reuse it instead
// of re-walking the DAG.
func (n *Node) fetchDAG(root cid.Cid) (map[cid.Cid]*dag.Node, error) {
	var providers []string
	ensure := func(cids []cid.Cid) error {
		var missing []cid.Cid
		for _, c := range cids {
			if !n.bs.Has(c) {
				missing = append(missing, c)
			}
		}
		if len(missing) == 0 {
			return nil
		}
		if providers == nil {
			providers = n.dht.FindProviders(root, 8)
			if len(providers) == 0 {
				return fmt.Errorf("%w: no providers for %s", ErrNotFound, root)
			}
		}
		if err := n.bw.FetchMany(missing, providers); err != nil {
			return fmt.Errorf("%w: %v", ErrNotFound, err)
		}
		return nil
	}

	nodes := make(map[cid.Cid]*dag.Node)
	enqueued := map[cid.Cid]bool{root: true}
	frontier := []cid.Cid{root}
	for len(frontier) > 0 {
		if err := ensure(frontier); err != nil {
			return nil, err
		}
		var next []cid.Cid
		for _, c := range frontier {
			node, err := localStore{n.bs}.GetNode(c)
			if err != nil {
				return nil, err
			}
			nodes[c] = node
			for _, l := range node.Links {
				// Identical chunks share a CID (including among siblings):
				// fetch and decode each distinct block once.
				if !enqueued[l.Cid] {
					enqueued[l.Cid] = true
					next = append(next, l.Cid)
				}
			}
		}
		frontier = next
	}
	return nodes, nil
}

// Reprovide announces every pinned root to the DHT — the recovery step
// after reopening a durable blockstore, whose provider records (in-memory
// network state) died with the previous process.
func (n *Node) Reprovide() error {
	for _, root := range n.pin.Roots() {
		if err := n.dht.Provide(root); err != nil {
			return fmt.Errorf("ipfs: provide %s: %w", root, err)
		}
	}
	return nil
}

// Close flushes and closes the node's blockstore and pin set.
func (n *Node) Close() error {
	err := n.bs.Close()
	if perr := n.pin.Close(); err == nil {
		err = perr
	}
	return err
}

// Pin marks root as protected from GC.
func (n *Node) Pin(root cid.Cid) { n.pin.Pin(root) }

// Unpin releases one pin reference on root.
func (n *Node) Unpin(root cid.Cid) { n.pin.Unpin(root) }

// GC removes all blocks not reachable from a pinned root, returning the
// number of blocks deleted.
func (n *Node) GC() (int, error) {
	return blockstore.GC(n.bs, n.pin, func(root cid.Cid) ([]cid.Cid, error) {
		return dag.AllCids(localStore{n.bs}, root)
	})
}

// Stat describes a stored object.
type Stat struct {
	Cid       cid.Cid
	Blocks    int
	TotalSize uint64
}

// Stat walks a local DAG and reports its block count and payload size.
func (n *Node) Stat(root cid.Cid) (Stat, error) {
	s := Stat{Cid: root}
	var payload uint64
	err := dag.Walk(localStore{n.bs}, root, func(c cid.Cid, node *dag.Node) error {
		s.Blocks++
		if len(node.Links) == 0 {
			payload += uint64(len(node.Data))
		}
		return nil
	})
	if err != nil {
		return Stat{}, err
	}
	s.TotalSize = payload
	return s, nil
}
