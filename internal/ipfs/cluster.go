package ipfs

import (
	"fmt"
	"path/filepath"

	"socialchain/internal/bitswap"
	"socialchain/internal/blockstore"
	"socialchain/internal/dht"
	"socialchain/internal/sim"
	"socialchain/internal/storage"
)

// Cluster is a set of IPFS nodes sharing one DHT and bitswap network. The
// paper's testbed ran two IPFS nodes; benchmarks construct clusters of
// configurable size.
type Cluster struct {
	nodes   []*Node
	dhtNet  *dht.Network
	swapNet *bitswap.Network
}

// ClusterConfig configures cluster construction.
type ClusterConfig struct {
	// Nodes is the number of peers (>= 1).
	Nodes int
	// Latency applies to both DHT and bitswap traffic (nil = zero).
	Latency sim.LatencyModel
	// Clock defaults to the real clock.
	Clock sim.Clock
	// NodeOptions apply to every node.
	NodeOptions Options
	// DataDir, when non-empty, makes every node's blockstore and pin set
	// durable: node i persists under DataDir/ipfs-<i> (blocks + pins
	// sub-directories). Reopening the same directory recovers the stored
	// blocks, and each node re-announces its pinned roots to the DHT so
	// recovered content is discoverable again (provider records are
	// in-memory network state, not storage).
	DataDir string
}

// NewCluster builds and bootstraps a connected cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("ipfs: cluster needs at least one node, got %d", cfg.Nodes)
	}
	c := &Cluster{
		dhtNet:  dht.NewNetwork(cfg.Latency, cfg.Clock),
		swapNet: bitswap.NewNetwork(cfg.Latency, cfg.Clock),
	}
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("ipfs-%d", i)
		blockCfg, pinCfg := storage.Config{}, storage.Config{}
		if cfg.DataDir != "" {
			nodeDir := filepath.Join(cfg.DataDir, name)
			blockCfg = storage.Config{Engine: storage.EnginePersist, Dir: filepath.Join(nodeDir, "blocks")}
			pinCfg = storage.Config{Engine: storage.EnginePersist, Dir: filepath.Join(nodeDir, "pins")}
		}
		bs, err := blockstore.NewMemWith(blockCfg)
		if err != nil {
			c.Close() // release the nodes already constructed
			return nil, fmt.Errorf("ipfs: node %s: %w", name, err)
		}
		pin, err := blockstore.NewPinnerWith(pinCfg)
		if err != nil {
			bs.Close()
			c.Close()
			return nil, fmt.Errorf("ipfs: node %s: %w", name, err)
		}
		node := &Node{
			name: name,
			opts: cfg.NodeOptions,
			bs:   bs,
			pin:  pin,
			dht:  c.dhtNet.NewNode(name),
			bw:   c.swapNet.NewEngine(name, bs),
		}
		c.nodes = append(c.nodes, node)
	}
	// Bootstrap everyone off node 0.
	seed := c.nodes[0].dht.Info()
	for _, n := range c.nodes[1:] {
		n.dht.Bootstrap(seed)
	}
	// A second pass back-fills routing tables now that all peers exist.
	for _, n := range c.nodes {
		n.dht.IterativeFindNode(n.dht.ID())
	}
	if cfg.DataDir != "" {
		// Recovered nodes re-announce what they already hold.
		for _, n := range c.nodes {
			if err := n.Reprovide(); err != nil {
				c.Close()
				return nil, fmt.Errorf("ipfs: %s reprovide: %w", n.name, err)
			}
		}
	}
	return c, nil
}

// Node returns the i-th node.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns all nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Close flushes and closes every node's stores (no-ops for in-memory
// clusters), returning the first error.
func (c *Cluster) Close() error {
	var first error
	for _, n := range c.nodes {
		if err := n.Close(); first == nil {
			first = err
		}
	}
	return first
}
