package ipfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"socialchain/internal/sim"
)

func newTestCluster(t *testing.T, n int, opts Options) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{Nodes: n, NodeOptions: opts})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestAddGetLocal(t *testing.T) {
	c := newTestCluster(t, 1, Options{ChunkSize: 1024})
	rng := sim.NewRNG(1)
	data := rng.Bytes(10 * 1024)
	root, err := c.Node(0).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Node(0).Get(root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("local round trip mismatch")
	}
}

func TestAddDeterministicCID(t *testing.T) {
	c := newTestCluster(t, 2, Options{ChunkSize: 2048})
	data := sim.NewRNG(2).Bytes(100 * 1024)
	r1, err := c.Node(0).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Node(1).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equals(r2) {
		t.Fatal("same content, different CIDs on different nodes")
	}
}

func TestCrossNodeFetch(t *testing.T) {
	c := newTestCluster(t, 2, Options{ChunkSize: 4096})
	data := sim.NewRNG(3).Bytes(64 * 1024)
	root, err := c.Node(0).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	if c.Node(1).Has(root) {
		t.Fatal("node 1 should not have the content yet")
	}
	got, err := c.Node(1).Get(root)
	if err != nil {
		t.Fatalf("cross-node get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-node data mismatch")
	}
	if !c.Node(1).Has(root) {
		t.Fatal("node 1 did not cache fetched content")
	}
	// Bitswap must have moved blocks.
	if c.Node(1).Bitswap().Stats().BlocksReceived.Load() == 0 {
		t.Fatal("no bitswap transfer recorded")
	}
}

func TestFetchFromThirdNodeAfterPropagation(t *testing.T) {
	c := newTestCluster(t, 4, Options{ChunkSize: 4096})
	data := sim.NewRNG(4).Bytes(32 * 1024)
	root, err := c.Node(0).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		got, err := c.Node(i).Get(root)
		if err != nil {
			t.Fatalf("node %d get: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("node %d data mismatch", i)
		}
	}
}

func TestGetMissingContent(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	data := sim.NewRNG(5).Bytes(1024)
	// Build a CID that nothing provides by hashing directly.
	phantomRoot, err := c.Node(0).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	// Wipe node 0's store and provider records are stale; node 1 may still
	// reach node 0 but the block is gone.
	for _, k := range c.Node(0).Blockstore().AllKeys() {
		if err := c.Node(0).Blockstore().Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Node(1).Get(phantomRoot); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	c := newTestCluster(t, 1, Options{})
	root, err := c.Node(0).Add(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Node(0).Get(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty payload round-tripped to %d bytes", len(got))
	}
}

func TestStat(t *testing.T) {
	c := newTestCluster(t, 1, Options{ChunkSize: 1024, Fanout: 4})
	data := sim.NewRNG(6).Bytes(10 * 1024) // 10 chunks + interior nodes
	root, err := c.Node(0).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Node(0).Stat(root)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalSize != uint64(len(data)) {
		t.Fatalf("TotalSize = %d", st.TotalSize)
	}
	if st.Blocks < 10 {
		t.Fatalf("Blocks = %d, want >= 10", st.Blocks)
	}
}

func TestGCPreservesPinnedContent(t *testing.T) {
	c := newTestCluster(t, 1, Options{ChunkSize: 1024})
	node := c.Node(0)
	keep := sim.NewRNG(7).Bytes(8 * 1024)
	drop := sim.NewRNG(8).Bytes(8 * 1024)
	keepRoot, err := node.Add(keep)
	if err != nil {
		t.Fatal(err)
	}
	dropRoot, err := node.Add(drop)
	if err != nil {
		t.Fatal(err)
	}
	node.Unpin(dropRoot)
	removed, err := node.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("GC removed nothing")
	}
	if got, err := node.Get(keepRoot); err != nil || !bytes.Equal(got, keep) {
		t.Fatalf("pinned content lost: %v", err)
	}
	if node.Has(dropRoot) {
		t.Fatal("unpinned content survived GC")
	}
}

func TestBuzhashStrategyRoundTrip(t *testing.T) {
	c := newTestCluster(t, 2, Options{Strategy: ChunkBuzhash})
	data := sim.NewRNG(9).Bytes(2 << 20)
	root, err := c.Node(0).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Node(1).Get(root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("buzhash cross-node mismatch")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Nodes: 0}); err == nil {
		t.Fatal("zero-node cluster accepted")
	}
}

func TestPropertyAddGetRoundTrip(t *testing.T) {
	c := newTestCluster(t, 2, Options{ChunkSize: 1024})
	cfg := &quick.Config{MaxCount: 15}
	err := quick.Check(func(seed int64, sizeSeed uint32) bool {
		size := int(sizeSeed % (256 * 1024))
		data := sim.NewRNG(seed).Bytes(size)
		root, err := c.Node(0).Add(data)
		if err != nil {
			return false
		}
		got, err := c.Node(1).Get(root)
		return err == nil && bytes.Equal(got, data)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// TestHasDetectsMissingChildBlock is the regression test for the old
// walker-based Has: when an interior block was present but a child was
// missing, the walk aborted with a lookup error before the presence check
// ran and Has wrongly reported true.
func TestHasDetectsMissingChildBlock(t *testing.T) {
	c := newTestCluster(t, 1, Options{ChunkSize: 1024})
	node := c.Node(0)
	data := sim.NewRNG(11).Bytes(16 * 1024) // 16 leaf chunks + interior root
	root, err := node.Add(data)
	if err != nil {
		t.Fatal(err)
	}
	if !node.Has(root) {
		t.Fatal("complete DAG reported missing")
	}
	// Delete one non-root block: the root is still present, the DAG is not.
	for _, k := range node.Blockstore().AllKeys() {
		if k.Equals(root) {
			continue
		}
		if err := node.Blockstore().Delete(k); err != nil {
			t.Fatal(err)
		}
		break
	}
	if node.Has(root) {
		t.Fatal("Has reported a gapped DAG as complete")
	}
}

// TestGetReassemblesFromFetchedNodes pins down the single-walk Get: the
// payload must round-trip across nodes (fetch path) and locally (cache
// path) through the node set the fetch decoded.
func TestGetReassemblesFromFetchedNodes(t *testing.T) {
	c := newTestCluster(t, 2, Options{ChunkSize: 512})
	data := bytes.Repeat([]byte("abcd"), 4096) // repeated chunks share CIDs
	root, err := c.Node(0).Add(data)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ { // remote fetch, then fully local
		got, err := c.Node(1).Get(root)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pass %d: payload mismatch", pass)
		}
	}
}
