package explorer

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/statedb"
	"socialchain/internal/storage"
)

func buildChain(t *testing.T) (*ledger.Ledger, []string) {
	t.Helper()
	alice, err := msp.NewSigner("org1", "alice", msp.RoleMember)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := msp.NewSigner("org2", "bob", msp.RoleMember)
	if err != nil {
		t.Fatal(err)
	}
	l := ledger.New()
	mk := func(id, cc, fn string, s *msp.Signer) ledger.Transaction {
		tx := ledger.Transaction{
			ID: id, ChannelID: "ch", Creator: s.Identity,
			Payload:   ledger.TxPayload{Chaincode: cc, Fn: fn},
			Timestamp: time.Now(),
		}
		tx.Signature = s.Sign(tx.SigningBytes())
		return tx
	}
	var ids []string
	// Block 0: two valid data txs.
	b0txs := []ledger.Transaction{mk("tx-a", "data", "addData", alice), mk("tx-b", "data", "addData", bob)}
	b0 := ledger.NewBlock(0, l.TipHash(), b0txs, time.Now())
	if err := l.Append(b0); err != nil {
		t.Fatal(err)
	}
	// Block 1: one valid trust tx, one MVCC-invalid data tx.
	b1txs := []ledger.Transaction{mk("tx-c", "trust", "observe", alice), mk("tx-d", "data", "addData", alice)}
	b1 := ledger.NewBlock(1, l.TipHash(), b1txs, time.Now())
	b1.Metadata.Flags[1] = ledger.MVCCConflict
	if err := l.Append(b1); err != nil {
		t.Fatal(err)
	}
	for _, tx := range append(b0txs, b1txs...) {
		ids = append(ids, tx.ID)
	}
	return l, ids
}

func TestBlocksListing(t *testing.T) {
	l, _ := buildChain(t)
	e := New(l)
	blocks, err := e.Blocks(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	if blocks[0].Txs != 2 || blocks[0].ValidTxs != 2 {
		t.Fatalf("block 0 = %+v", blocks[0])
	}
	if blocks[1].ValidTxs != 1 {
		t.Fatalf("block 1 = %+v", blocks[1])
	}
	// Hash linkage is surfaced.
	if blocks[1].PrevHash == blocks[0].PrevHash {
		t.Fatal("prev hashes identical")
	}
	if _, err := e.Blocks(5, 2); err == nil {
		t.Fatal("invalid range accepted")
	}
}

func TestTxLookup(t *testing.T) {
	l, ids := buildChain(t)
	e := New(l)
	got, err := e.Tx(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if got.Chaincode != "trust" || got.Fn != "observe" || got.Block != 1 || got.Flag != ledger.Valid {
		t.Fatalf("tx = %+v", got)
	}
	if _, err := e.Tx("missing"); err == nil {
		t.Fatal("missing tx found")
	}
}

func TestSearchFilters(t *testing.T) {
	l, _ := buildChain(t)
	e := New(l)
	if got := e.Search("data", "", false); len(got) != 3 {
		t.Fatalf("by chaincode = %d", len(got))
	}
	if got := e.Search("", "org1/alice", false); len(got) != 3 {
		t.Fatalf("by creator = %d", len(got))
	}
	if got := e.Search("", "", true); len(got) != 1 || got[0].Flag != ledger.MVCCConflict {
		t.Fatalf("invalid filter = %+v", got)
	}
	if got := e.Search("data", "org2/bob", false); len(got) != 1 {
		t.Fatalf("combined filter = %d", len(got))
	}
}

func TestStatsAggregation(t *testing.T) {
	l, _ := buildChain(t)
	e := New(l)
	s := e.Stats()
	if s.Height != 2 || s.TotalTxs != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.FlagBreakdown[ledger.Valid] != 3 || s.FlagBreakdown[ledger.MVCCConflict] != 1 {
		t.Fatalf("flags = %+v", s.FlagBreakdown)
	}
	if s.ByChaincode["data"] != 3 || s.ByChaincode["trust"] != 1 {
		t.Fatalf("by chaincode = %+v", s.ByChaincode)
	}
	if s.BytesOnChain == 0 {
		t.Fatal("no bytes accounted")
	}
}

func TestRendering(t *testing.T) {
	l, _ := buildChain(t)
	e := New(l)
	var b strings.Builder
	if err := e.RenderBlocks(&b, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "block") {
		t.Fatal("block table missing header")
	}
	b.Reset()
	e.RenderStats(&b)
	out := b.String()
	if !strings.Contains(out, "VALID") || !strings.Contains(out, "MVCC_READ_CONFLICT") {
		t.Fatalf("stats output missing flags:\n%s", out)
	}
	if !strings.Contains(out, "data") {
		t.Fatal("stats output missing chaincode table")
	}
}

func TestVerifyIntegrity(t *testing.T) {
	l, _ := buildChain(t)
	e := New(l)
	if err := e.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	blk, _ := l.GetBlock(0)
	blk.Txs[0].Response = []byte("tampered")
	if err := e.VerifyIntegrity(); err == nil {
		t.Fatal("tamper not detected")
	}
}

func TestIndexPageThroughExplorer(t *testing.T) {
	l, _ := buildChain(t)
	db, err := statedb.NewIndexedWith(storage.Config{},
		statedb.IndexSpec{Name: "label", Namespace: "data", Field: "label"})
	if err != nil {
		t.Fatal(err)
	}
	batch := statedb.NewUpdateBatch()
	for i := 0; i < 5; i++ {
		batch.Put("data", fmt.Sprintf("rec/%d", i), []byte(fmt.Sprintf(`{"label":"car","i":%d}`, i)))
	}
	db.ApplyUpdates(batch, statedb.Version{BlockNum: 1})

	e := New(l)
	if _, err := e.IndexPage("label", "car", 10, ""); err == nil {
		t.Fatal("index page served without state attached")
	}
	e = e.WithState(db)
	page, err := e.IndexPage("label", "car", 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 3 || page.Next == "" {
		t.Fatalf("page = %+v", page)
	}
	var buf strings.Builder
	next, err := e.RenderIndexPage(&buf, "label", "car", 3, page.Next)
	if err != nil {
		t.Fatal(err)
	}
	if next != "" {
		t.Fatalf("expected final page, got token %q", next)
	}
	out := buf.String()
	if !strings.Contains(out, "rec/3") || !strings.Contains(out, "rec/4") {
		t.Fatalf("rendered page missing entries:\n%s", out)
	}
}
