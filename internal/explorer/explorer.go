// Package explorer provides chain inspection over a peer's ledger — the
// role Hyperledger Explorer and Grafana played in the paper's testbed:
// block browsing, transaction search, validation-flag breakdowns,
// per-chaincode activity and storage accounting, rendered as text tables.
package explorer

import (
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"time"

	"socialchain/internal/ledger"
	"socialchain/internal/metrics"
	"socialchain/internal/statedb"
)

// Explorer reads one peer's ledger and (optionally) its world state. It
// holds no state of its own; every call reflects the chain at call time.
type Explorer struct {
	ledger *ledger.Ledger
	state  *statedb.DB
}

// New builds an explorer over a ledger.
func New(l *ledger.Ledger) *Explorer {
	return &Explorer{ledger: l}
}

// WithState attaches a peer's world state, enabling the paged
// secondary-index views (IndexPage, RenderIndexPage). Returns the
// explorer for chaining.
func (e *Explorer) WithState(db *statedb.DB) *Explorer {
	e.state = db
	return e
}

// BlockSummary describes one block for listings.
type BlockSummary struct {
	Number    uint64
	Hash      string
	PrevHash  string
	Txs       int
	ValidTxs  int
	Timestamp time.Time
}

// Blocks returns summaries for block numbers [from, to); to==0 means the
// current height.
func (e *Explorer) Blocks(from, to uint64) ([]BlockSummary, error) {
	height := e.ledger.Height()
	if to == 0 || to > height {
		to = height
	}
	if from > to {
		return nil, fmt.Errorf("explorer: invalid range [%d, %d)", from, to)
	}
	out := make([]BlockSummary, 0, to-from)
	for n := from; n < to; n++ {
		b, err := e.ledger.GetBlock(n)
		if err != nil {
			return nil, err
		}
		s := BlockSummary{
			Number:    b.Header.Number,
			Hash:      shortHash(b.Header.Hash()),
			PrevHash:  shortHash(b.Header.PrevHash),
			Txs:       len(b.Txs),
			Timestamp: b.Header.Timestamp,
		}
		for _, f := range b.Metadata.Flags {
			if f == ledger.Valid {
				s.ValidTxs++
			}
		}
		out = append(out, s)
	}
	return out, nil
}

func shortHash(h [32]byte) string { return hex.EncodeToString(h[:6]) }

// TxSummary describes one transaction for listings and search results.
type TxSummary struct {
	ID        string
	Block     uint64
	Chaincode string
	Fn        string
	Creator   string
	Flag      ledger.ValidationCode
	Timestamp time.Time
}

// Tx looks up one transaction by ID.
func (e *Explorer) Tx(txID string) (TxSummary, error) {
	tx, flag, blockNum, err := e.ledger.GetTx(txID)
	if err != nil {
		return TxSummary{}, err
	}
	return TxSummary{
		ID:        tx.ID,
		Block:     blockNum,
		Chaincode: tx.Payload.Chaincode,
		Fn:        tx.Payload.Fn,
		Creator:   tx.Creator.ID(),
		Flag:      flag,
		Timestamp: tx.Timestamp,
	}, nil
}

// Search returns all transactions matching the (optional) filters.
func (e *Explorer) Search(chaincode, creator string, onlyInvalid bool) []TxSummary {
	var out []TxSummary
	e.ledger.Iterate(func(b *ledger.Block) bool {
		for i := range b.Txs {
			tx := &b.Txs[i]
			flag := b.Metadata.Flags[i]
			if chaincode != "" && tx.Payload.Chaincode != chaincode {
				continue
			}
			if creator != "" && tx.Creator.ID() != creator {
				continue
			}
			if onlyInvalid && flag == ledger.Valid {
				continue
			}
			out = append(out, TxSummary{
				ID:        tx.ID,
				Block:     b.Header.Number,
				Chaincode: tx.Payload.Chaincode,
				Fn:        tx.Payload.Fn,
				Creator:   tx.Creator.ID(),
				Flag:      flag,
				Timestamp: tx.Timestamp,
			})
		}
		return true
	})
	return out
}

// ChannelStats aggregates chain-wide counters.
type ChannelStats struct {
	Height        uint64
	TotalTxs      int
	FlagBreakdown map[ledger.ValidationCode]int
	ByChaincode   map[string]int
	ByCreator     map[string]int
	BytesOnChain  int
}

// Stats walks the chain and aggregates.
func (e *Explorer) Stats() ChannelStats {
	s := ChannelStats{
		FlagBreakdown: make(map[ledger.ValidationCode]int),
		ByChaincode:   make(map[string]int),
		ByCreator:     make(map[string]int),
	}
	e.ledger.Iterate(func(b *ledger.Block) bool {
		s.Height = b.Header.Number + 1
		for i := range b.Txs {
			tx := &b.Txs[i]
			s.TotalTxs++
			s.FlagBreakdown[b.Metadata.Flags[i]]++
			s.ByChaincode[tx.Payload.Chaincode]++
			s.ByCreator[tx.Creator.ID()]++
			s.BytesOnChain += len(tx.Bytes())
		}
		return true
	})
	return s
}

// RenderBlocks writes a block listing table.
func (e *Explorer) RenderBlocks(w io.Writer, from, to uint64) error {
	blocks, err := e.Blocks(from, to)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable("block", "hash", "prev", "txs", "valid")
	for _, b := range blocks {
		tbl.AddRow(b.Number, b.Hash, b.PrevHash, b.Txs, b.ValidTxs)
	}
	tbl.Render(w)
	return nil
}

// RenderStats writes the channel statistics tables.
func (e *Explorer) RenderStats(w io.Writer) {
	s := e.Stats()
	fmt.Fprintf(w, "height %d, %d txs, %d bytes on-chain\n\n", s.Height, s.TotalTxs, s.BytesOnChain)

	flags := metrics.NewTable("validation_flag", "count")
	codes := make([]ledger.ValidationCode, 0, len(s.FlagBreakdown))
	for c := range s.FlagBreakdown {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	for _, c := range codes {
		flags.AddRow(c.String(), s.FlagBreakdown[c])
	}
	flags.Render(w)

	fmt.Fprintln(w)
	byCC := metrics.NewTable("chaincode", "txs")
	names := make([]string, 0, len(s.ByChaincode))
	for n := range s.ByChaincode {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		byCC.AddRow(n, s.ByChaincode[n])
	}
	byCC.Render(w)
}

// VerifyIntegrity re-checks the full hash chain, surfacing the explorer's
// tamper-evidence view.
func (e *Explorer) VerifyIntegrity() error { return e.ledger.VerifyChain() }

// IndexPage returns one page of a world-state secondary index — the
// explorer view of the retrieval pipeline's paged queries (records by
// label/source/camera, or the whole namespace in time order through the
// submitted index). Requires WithState.
func (e *Explorer) IndexPage(index, value string, limit int, token string) (statedb.IndexPage, error) {
	if e.state == nil {
		return statedb.IndexPage{}, fmt.Errorf("explorer: no world state attached (use WithState)")
	}
	return e.state.IterIndex(index, value, limit, 0, token)
}

// RenderIndexPage writes one page of a secondary index as a table and
// returns the token resuming the next page ("" when exhausted).
func (e *Explorer) RenderIndexPage(w io.Writer, index, value string, limit int, token string) (string, error) {
	page, err := e.IndexPage(index, value, limit, token)
	if err != nil {
		return "", err
	}
	tbl := metrics.NewTable(index, "key")
	for _, entry := range page.Entries {
		tbl.AddRow(entry.Value, entry.Key)
	}
	tbl.Render(w)
	if page.Next != "" {
		fmt.Fprintf(w, "next page: %s\n", page.Next)
	}
	return page.Next, nil
}
