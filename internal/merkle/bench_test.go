package merkle

import (
	"fmt"
	"testing"
)

func BenchmarkRootOf(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("leaves=%d", n), func(b *testing.B) {
			l := leaves(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				RootOf(l)
			}
		})
	}
}

func BenchmarkProveAndVerify(b *testing.B) {
	l := leaves(1000)
	tr := New(l)
	root := tr.Root()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proof, err := tr.Prove(i % 1000)
		if err != nil {
			b.Fatal(err)
		}
		if !Verify(root, l[i%1000], proof) {
			b.Fatal("proof failed")
		}
	}
}
