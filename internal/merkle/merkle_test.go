package merkle

import (
	"fmt"
	"testing"
	"testing/quick"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestRootDeterministic(t *testing.T) {
	a := RootOf(leaves(7))
	b := RootOf(leaves(7))
	if a != b {
		t.Fatal("same leaves, different roots")
	}
}

func TestRootSensitiveToContent(t *testing.T) {
	l := leaves(4)
	a := RootOf(l)
	l[2] = []byte("tampered")
	if RootOf(l) == a {
		t.Fatal("tampering did not change root")
	}
}

func TestRootSensitiveToOrder(t *testing.T) {
	l := leaves(4)
	a := RootOf(l)
	l[0], l[1] = l[1], l[0]
	if RootOf(l) == a {
		t.Fatal("reorder did not change root")
	}
}

func TestEmptyTreeDefined(t *testing.T) {
	a := RootOf(nil)
	b := RootOf(nil)
	if a != b {
		t.Fatal("empty root unstable")
	}
	tr := New(nil)
	if tr.NumLeaves() != 1 {
		t.Fatalf("empty tree has %d leaves", tr.NumLeaves())
	}
}

func TestProofsVerifyAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		l := leaves(n)
		tr := New(l)
		root := tr.Root()
		for i := 0; i < n; i++ {
			proof, err := tr.Prove(i)
			if err != nil {
				t.Fatalf("n=%d Prove(%d): %v", n, i, err)
			}
			if !Verify(root, l[i], proof) {
				t.Fatalf("n=%d proof %d failed", n, i)
			}
		}
	}
}

func TestProofRejectsWrongLeaf(t *testing.T) {
	l := leaves(8)
	tr := New(l)
	proof, _ := tr.Prove(3)
	if Verify(tr.Root(), []byte("not-the-leaf"), proof) {
		t.Fatal("proof verified wrong leaf")
	}
}

func TestProofRejectsWrongRoot(t *testing.T) {
	l := leaves(8)
	tr := New(l)
	proof, _ := tr.Prove(3)
	other := New(leaves(9)).Root()
	if Verify(other, l[3], proof) {
		t.Fatal("proof verified under wrong root")
	}
}

func TestProveOutOfRange(t *testing.T) {
	tr := New(leaves(4))
	if _, err := tr.Prove(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := tr.Prove(4); err == nil {
		t.Fatal("overflow index accepted")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	// A single leaf's root must differ from the hash of a 2-leaf tree whose
	// combined children encode the same bytes (guard against second
	// preimage via level confusion).
	single := RootOf([][]byte{[]byte("ab")})
	double := RootOf([][]byte{[]byte("a"), []byte("b")})
	if single == double {
		t.Fatal("leaf/interior domains collide")
	}
}

func TestPropertyProofsAlwaysVerify(t *testing.T) {
	err := quick.Check(func(data [][]byte, pick uint8) bool {
		if len(data) == 0 {
			return true
		}
		tr := New(data)
		i := int(pick) % len(data)
		proof, err := tr.Prove(i)
		if err != nil {
			return false
		}
		return Verify(tr.Root(), data[i], proof)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
