// Package merkle implements a binary Merkle tree with inclusion proofs. The
// ledger uses it to compute the data hash of each block over its
// transactions, and the query engine uses proofs to demonstrate that a
// retrieved metadata record is part of a committed block.
package merkle

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// leafPrefix and nodePrefix domain-separate leaf and interior hashes so a
// leaf can never be confused with an interior node (second-preimage guard).
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

func hashLeaf(data []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func hashNode(l, r [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Tree is an immutable Merkle tree over a sequence of leaves.
type Tree struct {
	levels [][][32]byte // levels[0] = leaf hashes, last level = [root]
}

// New builds a tree over the given leaves. An empty leaf set produces a
// well-defined root (the hash of an empty leaf).
func New(leaves [][]byte) *Tree {
	if len(leaves) == 0 {
		leaves = [][]byte{nil}
	}
	level := make([][32]byte, len(leaves))
	for i, l := range leaves {
		level[i] = hashLeaf(l)
	}
	t := &Tree{levels: [][][32]byte{level}}
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashNode(level[i], level[i+1]))
			} else {
				// Odd node is promoted by pairing with itself.
				next = append(next, hashNode(level[i], level[i]))
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

// Root returns the Merkle root.
func (t *Tree) Root() [32]byte {
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// RootOf is a convenience that builds a tree and returns its root.
func RootOf(leaves [][]byte) [32]byte { return New(leaves).Root() }

// NumLeaves returns the number of leaves in the tree.
func (t *Tree) NumLeaves() int { return len(t.levels[0]) }

// ProofStep is one sibling hash on the path from a leaf to the root.
type ProofStep struct {
	Hash  [32]byte
	Right bool // sibling is the right child
}

// Proof is an inclusion proof for one leaf.
type Proof struct {
	Index int
	Steps []ProofStep
}

// Prove returns the inclusion proof for leaf index i.
func (t *Tree) Prove(i int) (Proof, error) {
	if i < 0 || i >= len(t.levels[0]) {
		return Proof{}, fmt.Errorf("merkle: leaf index %d out of range [0,%d)", i, len(t.levels[0]))
	}
	p := Proof{Index: i}
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		var sib int
		right := false
		if idx%2 == 0 {
			sib = idx + 1
			right = true
			if sib >= len(level) {
				sib = idx // odd promotion pairs with itself
			}
		} else {
			sib = idx - 1
		}
		p.Steps = append(p.Steps, ProofStep{Hash: level[sib], Right: right})
		idx /= 2
	}
	return p, nil
}

// Verify checks that leaf data is included under root via proof.
func Verify(root [32]byte, leaf []byte, proof Proof) bool {
	h := hashLeaf(leaf)
	for _, step := range proof.Steps {
		if step.Right {
			h = hashNode(h, step.Hash)
		} else {
			h = hashNode(step.Hash, h)
		}
	}
	return h == root
}

// ErrEmptyTree is returned by operations that need at least one real leaf.
var ErrEmptyTree = errors.New("merkle: empty tree")
