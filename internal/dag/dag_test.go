package dag

import (
	"bytes"
	"testing"
	"testing/quick"

	"socialchain/internal/cid"
	"socialchain/internal/sim"
)

// memStore is a minimal in-memory node store for tests.
type memStore struct {
	nodes map[cid.Cid]*Node
}

func newMemStore() *memStore { return &memStore{nodes: make(map[cid.Cid]*Node)} }

func (m *memStore) PutNode(n *Node) (cid.Cid, error) {
	c := n.Cid()
	m.nodes[c] = n
	return c, nil
}

func (m *memStore) GetNode(c cid.Cid) (*Node, error) {
	n, ok := m.nodes[c]
	if !ok {
		return nil, cidNotFound(c)
	}
	return n, nil
}

type cidNotFound cid.Cid

func (e cidNotFound) Error() string { return "node not found: " + cid.Cid(e).String() }

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	child := cid.SumRaw([]byte("child"))
	n := &Node{
		Data: []byte("payload"),
		Links: []Link{
			{Name: "a", Size: 7, Cid: child},
			{Name: "", Size: 0, Cid: cid.SumRaw([]byte("x"))},
		},
	}
	got, err := Decode(n.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, n.Data) {
		t.Fatal("data lost")
	}
	if len(got.Links) != 2 || got.Links[0].Name != "a" || got.Links[0].Size != 7 || !got.Links[0].Cid.Equals(child) {
		t.Fatalf("links lost: %+v", got.Links)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, {5, 'a'}} {
		if _, err := Decode(b); err == nil {
			t.Errorf("Decode(%v) accepted", b)
		}
	}
	// Trailing bytes must be rejected.
	n := &Node{Data: []byte("d")}
	enc := append(n.Encode(), 0)
	if _, err := Decode(enc); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestNodePropertyRoundTrip(t *testing.T) {
	err := quick.Check(func(data []byte, names []string) bool {
		n := &Node{Data: data}
		for _, name := range names {
			if bytes.ContainsRune([]byte(name), 0) {
				continue
			}
			n.Links = append(n.Links, Link{Name: name, Size: uint64(len(name)), Cid: cid.SumRaw([]byte(name))})
		}
		got, err := Decode(n.Encode())
		if err != nil {
			return false
		}
		if !bytes.Equal(got.Data, n.Data) {
			return false
		}
		if len(got.Links) != len(n.Links) {
			return false
		}
		for i := range n.Links {
			if got.Links[i] != n.Links[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleChunkFileIsRawLeaf(t *testing.T) {
	store := newMemStore()
	data := []byte("single-chunk")
	root, size, err := BuildFile(store, [][]byte{data})
	if err != nil {
		t.Fatal(err)
	}
	if size != uint64(len(data)) {
		t.Fatalf("size = %d", size)
	}
	if root.Codec() != cid.CodecRaw {
		t.Fatalf("single-chunk root codec %#x, want raw", root.Codec())
	}
	if !root.Equals(cid.SumRaw(data)) {
		t.Fatal("single-chunk CID is not the content hash")
	}
}

func TestBuildAndReassembleMultiLevel(t *testing.T) {
	store := newMemStore()
	rng := sim.NewRNG(5)
	var chunks [][]byte
	var want []byte
	for i := 0; i < 20; i++ {
		c := rng.Bytes(1000 + i)
		chunks = append(chunks, c)
		want = append(want, c...)
	}
	root, size, err := BuildFileFanout(store, chunks, 4) // forces 3 levels
	if err != nil {
		t.Fatal(err)
	}
	if size != uint64(len(want)) {
		t.Fatalf("size = %d, want %d", size, len(want))
	}
	got, err := Reassemble(store, root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("reassembly mismatch")
	}
}

func TestBuildDeterministicAcrossStores(t *testing.T) {
	chunks := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	r1, _, _ := BuildFile(newMemStore(), chunks)
	r2, _, _ := BuildFile(newMemStore(), chunks)
	if !r1.Equals(r2) {
		t.Fatal("same chunks, different roots")
	}
}

func TestEmptyFile(t *testing.T) {
	store := newMemStore()
	root, size, err := BuildFile(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if size != 0 {
		t.Fatalf("empty size %d", size)
	}
	got, err := Reassemble(store, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file reassembled to %d bytes", len(got))
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	store := newMemStore()
	chunks := make([][]byte, 10)
	for i := range chunks {
		chunks[i] = []byte{byte(i)}
	}
	root, _, err := BuildFileFanout(store, chunks, 3)
	if err != nil {
		t.Fatal(err)
	}
	cids, err := AllCids(store, root)
	if err != nil {
		t.Fatal(err)
	}
	// 10 leaves + interior nodes; every stored node must be reachable.
	if len(cids) != len(store.nodes) {
		t.Fatalf("walk found %d nodes, store has %d", len(cids), len(store.nodes))
	}
	seen := make(map[cid.Cid]bool)
	for _, c := range cids {
		if seen[c] {
			t.Fatalf("walk visited %s twice", c)
		}
		seen[c] = true
	}
}

func TestReassembleMissingNode(t *testing.T) {
	store := newMemStore()
	chunks := [][]byte{bytes.Repeat([]byte("a"), 100), bytes.Repeat([]byte("b"), 100)}
	root, _, err := BuildFileFanout(store, chunks, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Remove a leaf.
	delete(store.nodes, cid.SumRaw(chunks[1]))
	if _, err := Reassemble(store, root); err == nil {
		t.Fatal("reassembly with missing node succeeded")
	}
}

func TestPropertyBuildReassemble(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	err := quick.Check(func(seed int64, nChunks uint8, fanout uint8) bool {
		store := newMemStore()
		rng := sim.NewRNG(seed)
		n := int(nChunks)%30 + 1
		f := int(fanout)%8 + 2
		var chunks [][]byte
		var want []byte
		for i := 0; i < n; i++ {
			c := rng.Bytes(rng.Intn(500) + 1)
			chunks = append(chunks, c)
			want = append(want, c...)
		}
		root, size, err := BuildFileFanout(store, chunks, f)
		if err != nil || size != uint64(len(want)) {
			return false
		}
		got, err := Reassemble(store, root)
		return err == nil && bytes.Equal(got, want)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTotalSize(t *testing.T) {
	leaf := &Node{Data: []byte("12345")}
	if leaf.TotalSize() != 5 {
		t.Fatalf("leaf size %d", leaf.TotalSize())
	}
	interior := &Node{Links: []Link{{Size: 3}, {Size: 4}}}
	if interior.TotalSize() != 7 {
		t.Fatalf("interior size %d", interior.TotalSize())
	}
}
