// Package dag implements the Merkle DAG layer of the off-chain store: nodes
// with links addressed by CID, a deterministic binary codec so hashing is
// stable, and a balanced file builder equivalent to the UnixFS importer.
package dag

import (
	"encoding/binary"
	"errors"
	"fmt"

	"socialchain/internal/cid"
)

// Link points from a node to a child by CID, carrying the cumulative size
// of the subtree for traversal planning.
type Link struct {
	Name string
	Size uint64 // total payload bytes reachable through this link
	Cid  cid.Cid
}

// Node is a Merkle DAG node: optional inline data plus ordered links.
// Leaves carry data and no links; interior nodes carry links and no data.
type Node struct {
	Data  []byte
	Links []Link
}

// maxField bounds decoded field lengths to guard against corrupt input.
const maxField = 64 << 20

// Encode serialises the node deterministically:
//
//	uvarint(len(data)) data
//	uvarint(numLinks) { uvarint(len(name)) name uvarint(size) uvarint(len(cid)) cidBytes }*
func (n *Node) Encode() []byte {
	size := binary.MaxVarintLen64 + len(n.Data) + binary.MaxVarintLen64
	for _, l := range n.Links {
		size += 3*binary.MaxVarintLen64 + len(l.Name) + len(l.Cid.Bytes())
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(n.Data)))
	buf = append(buf, n.Data...)
	buf = binary.AppendUvarint(buf, uint64(len(n.Links)))
	for _, l := range n.Links {
		buf = binary.AppendUvarint(buf, uint64(len(l.Name)))
		buf = append(buf, l.Name...)
		buf = binary.AppendUvarint(buf, l.Size)
		cb := l.Cid.Bytes()
		buf = binary.AppendUvarint(buf, uint64(len(cb)))
		buf = append(buf, cb...)
	}
	return buf
}

// Decode parses a node encoded with Encode.
func Decode(b []byte) (*Node, error) {
	r := reader{b: b}
	dataLen, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dag: decode data length: %w", err)
	}
	if dataLen > maxField {
		return nil, errors.New("dag: data field too large")
	}
	data, err := r.take(int(dataLen))
	if err != nil {
		return nil, fmt.Errorf("dag: decode data: %w", err)
	}
	numLinks, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dag: decode link count: %w", err)
	}
	if numLinks > maxField {
		return nil, errors.New("dag: link count too large")
	}
	n := &Node{}
	if dataLen > 0 {
		n.Data = append([]byte(nil), data...)
	}
	for i := uint64(0); i < numLinks; i++ {
		nameLen, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("dag: link %d name length: %w", i, err)
		}
		name, err := r.take(int(nameLen))
		if err != nil {
			return nil, fmt.Errorf("dag: link %d name: %w", i, err)
		}
		sz, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("dag: link %d size: %w", i, err)
		}
		cidLen, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("dag: link %d cid length: %w", i, err)
		}
		cidBytes, err := r.take(int(cidLen))
		if err != nil {
			return nil, fmt.Errorf("dag: link %d cid: %w", i, err)
		}
		c, err := cid.Cast(cidBytes)
		if err != nil {
			return nil, fmt.Errorf("dag: link %d cid: %w", i, err)
		}
		n.Links = append(n.Links, Link{Name: string(name), Size: sz, Cid: c})
	}
	if r.remaining() != 0 {
		return nil, errors.New("dag: trailing bytes after node")
	}
	return n, nil
}

// Cid returns the CID of the encoded node.
func (n *Node) Cid() cid.Cid {
	if len(n.Links) == 0 {
		// Leaves are addressed as raw blocks so a single-chunk file's CID is
		// just the hash of its bytes.
		return cid.SumRaw(n.Data)
	}
	return cid.SumDagNode(n.Encode())
}

// TotalSize returns the number of payload bytes reachable from this node.
func (n *Node) TotalSize() uint64 {
	if len(n.Links) == 0 {
		return uint64(len(n.Data))
	}
	var sum uint64
	for _, l := range n.Links {
		sum += l.Size
	}
	return sum
}

type reader struct {
	b   []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errors.New("bad uvarint")
	}
	r.off += n
	return v, nil
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, errors.New("truncated input")
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) remaining() int { return len(r.b) - r.off }
