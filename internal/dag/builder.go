package dag

import (
	"fmt"

	"socialchain/internal/cid"
)

// DefaultFanout is the maximum number of links per interior node, matching
// the UnixFS importer's default layout width of 174... trimmed to a rounder
// value; the exact constant only affects tree depth, not correctness.
const DefaultFanout = 174

// NodeGetter resolves a CID to its node. The blockstore-backed store and
// the bitswap session both implement it.
type NodeGetter interface {
	GetNode(c cid.Cid) (*Node, error)
}

// NodePutter persists nodes. Put must store the node retrievable by its CID.
type NodePutter interface {
	PutNode(n *Node) (cid.Cid, error)
}

// BuildFile assembles a balanced Merkle DAG over the given chunks, storing
// every node through put, and returns the root CID plus total payload size.
// A single chunk yields a raw leaf whose CID is the hash of the bytes, so
// small files have minimal overhead.
func BuildFile(put NodePutter, chunks [][]byte) (cid.Cid, uint64, error) {
	return BuildFileFanout(put, chunks, DefaultFanout)
}

// BuildFileFanout is BuildFile with an explicit interior-node fanout.
func BuildFileFanout(put NodePutter, chunks [][]byte, fanout int) (cid.Cid, uint64, error) {
	if fanout < 2 {
		fanout = 2
	}
	if len(chunks) == 0 {
		chunks = [][]byte{nil}
	}
	// Level 0: leaves.
	level := make([]Link, 0, len(chunks))
	var total uint64
	for i, chunk := range chunks {
		leaf := &Node{Data: chunk}
		c, err := put.PutNode(leaf)
		if err != nil {
			return cid.Undef, 0, fmt.Errorf("dag: store leaf %d: %w", i, err)
		}
		level = append(level, Link{Size: uint64(len(chunk)), Cid: c})
		total += uint64(len(chunk))
	}
	// Collapse levels until a single root remains.
	for len(level) > 1 {
		next := make([]Link, 0, (len(level)+fanout-1)/fanout)
		for i := 0; i < len(level); i += fanout {
			j := i + fanout
			if j > len(level) {
				j = len(level)
			}
			n := &Node{Links: append([]Link(nil), level[i:j]...)}
			c, err := put.PutNode(n)
			if err != nil {
				return cid.Undef, 0, fmt.Errorf("dag: store interior node: %w", err)
			}
			next = append(next, Link{Size: n.TotalSize(), Cid: c})
		}
		level = next
	}
	return level[0].Cid, total, nil
}

// Reassemble walks the DAG rooted at c depth-first and concatenates leaf
// data, reproducing the original payload.
func Reassemble(get NodeGetter, c cid.Cid) ([]byte, error) {
	root, err := get.GetNode(c)
	if err != nil {
		return nil, err
	}
	if len(root.Links) == 0 {
		return append([]byte(nil), root.Data...), nil
	}
	out := make([]byte, 0, root.TotalSize())
	for _, l := range root.Links {
		part, err := Reassemble(get, l.Cid)
		if err != nil {
			return nil, fmt.Errorf("dag: reassemble link %s: %w", l.Cid, err)
		}
		out = append(out, part...)
	}
	return out, nil
}

// Walk visits every node reachable from c (pre-order), calling fn with each
// CID and node. fn returning an error aborts the walk.
func Walk(get NodeGetter, c cid.Cid, fn func(cid.Cid, *Node) error) error {
	n, err := get.GetNode(c)
	if err != nil {
		return err
	}
	if err := fn(c, n); err != nil {
		return err
	}
	for _, l := range n.Links {
		if err := Walk(get, l.Cid, fn); err != nil {
			return err
		}
	}
	return nil
}

// AllCids collects every CID reachable from root, including root itself.
func AllCids(get NodeGetter, root cid.Cid) ([]cid.Cid, error) {
	var out []cid.Cid
	err := Walk(get, root, func(c cid.Cid, _ *Node) error {
		out = append(out, c)
		return nil
	})
	return out, err
}
