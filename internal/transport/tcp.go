package transport

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// TCP transport defaults.
const (
	DefaultDialTimeout = 2 * time.Second
	DefaultBackoffBase = 25 * time.Millisecond
	DefaultBackoffMax  = time.Second
	DefaultQueueLen    = 1024
)

// helloStream carries the handshake: the first frame on every connection,
// in both directions, is a hello on this stream.
const helloStream = "@hello"

// hello is the handshake payload: the dialer announces which cluster it
// belongs to and who it is; the acceptor verifies the cluster and replies
// in kind so the dialer can verify it reached the node it meant to.
type hello struct {
	Cluster string `json:"cluster"`
	From    string `json:"from"`
}

// TCPConfig configures one TCP endpoint.
type TCPConfig struct {
	// ID is this node's identity, announced in the handshake.
	ID string
	// Cluster names the deployment; both handshake sides must agree, so a
	// process from the wrong deployment (or a stray port scan) is rejected
	// before any message is dispatched.
	Cluster string
	// Listen is the listen address ("127.0.0.1:0" picks a port). Empty
	// means a client-only endpoint: it dials out and receives replies on
	// its outbound connections.
	Listen string
	// Peers is the static peer book: node ID -> dial address. An empty
	// address registers a peer we expect to dial *us* (sends to it ride
	// its inbound connection). Peers can also be added later with AddPeer.
	Peers map[string]string
	// DialTimeout bounds one dial + handshake attempt.
	DialTimeout time.Duration
	// BackoffBase and BackoffMax shape the exponential reconnect backoff:
	// base, 2*base, 4*base, ... capped at max.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// QueueLen bounds each peer's send queue in frames; a full queue
	// returns ErrBackpressure from Send.
	QueueLen int
	// MaxFrame bounds one wire message; oversized or corrupt frames tear
	// down the connection that carried them.
	MaxFrame int
}

func (c *TCPConfig) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = c.BackoffBase
	}
	if c.QueueLen <= 0 {
		c.QueueLen = DefaultQueueLen
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
}

// TCP is a socket-backed Transport. Each known peer has a bounded send
// queue drained by a dedicated write pump, which (re)dials with exponential
// backoff when the peer has a dial address and otherwise waits to adopt the
// peer's next inbound connection. Every connection — dialed or accepted —
// gets a read loop that verifies frames and dispatches handlers.
type TCP struct {
	cfg TCPConfig
	ln  net.Listener

	mu       sync.RWMutex
	handlers map[string]Handler
	peers    map[string]*tcpPeer
	conns    map[net.Conn]struct{}
	closed   bool

	done chan struct{}
	wg   sync.WaitGroup
	ctr  Counters
}

type tcpPeer struct {
	id    string
	queue chan []byte
	kick  chan struct{} // signaled when an inbound conn is adopted

	mu   sync.Mutex
	addr string
	conn net.Conn
}

// NewTCP creates the endpoint, binds the listener (if any) and starts the
// write pumps for the configured peer book.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg.fill()
	if cfg.ID == "" {
		return nil, fmt.Errorf("transport: tcp endpoint needs an ID")
	}
	t := &TCP{
		cfg:      cfg,
		handlers: make(map[string]Handler),
		peers:    make(map[string]*tcpPeer),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	for id, addr := range cfg.Peers {
		if id != cfg.ID {
			t.AddPeer(id, addr)
		}
	}
	return t, nil
}

// ID implements Transport.
func (t *TCP) ID() string { return t.cfg.ID }

// Counters implements Transport.
func (t *TCP) Counters() *Counters { return &t.ctr }

// Addr returns the bound listen address ("" for client-only endpoints);
// useful when Listen was ":0".
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Handle implements Transport.
func (t *TCP) Handle(stream string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[stream] = h
}

// Peers implements Transport.
func (t *TCP) Peers() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AddPeer registers a peer (id -> dial address, empty for inbound-only) and
// starts its write pump. Adding an existing peer updates its address.
func (t *TCP) AddPeer(id, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || id == t.cfg.ID {
		return
	}
	if p, ok := t.peers[id]; ok {
		p.mu.Lock()
		p.addr = addr
		p.mu.Unlock()
		return
	}
	p := &tcpPeer{id: id, addr: addr, queue: make(chan []byte, t.cfg.QueueLen), kick: make(chan struct{}, 1)}
	t.peers[id] = p
	t.wg.Add(1)
	go t.writePump(p)
}

// Send implements Transport.
func (t *TCP) Send(to, stream string, payload []byte) error {
	frame, err := EncodeFrame(stream, payload)
	if err != nil {
		return err
	}
	t.mu.RLock()
	p, ok := t.peers[to]
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return ErrUnknownPeer
	}
	select {
	case p.queue <- frame:
		return nil
	default:
		t.ctr.Drops.Inc()
		return fmt.Errorf("%w (peer %s)", ErrBackpressure, to)
	}
}

// Close implements Transport. It stops the listener, the pumps and every
// connection, then waits for their goroutines.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	close(t.done)
	if t.ln != nil {
		t.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return nil
}

// trackConn registers a live connection so Close can tear it down; it
// reports false (and closes the conn) when the endpoint is already closing.
func (t *TCP) trackConn(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		conn.Close()
		return false
	}
	t.conns[conn] = struct{}{}
	return true
}

// --- write path ---

// writePump drains one peer's send queue. Each frame is written to the
// current connection, (re)establishing it first if needed; a failed write
// tears the connection down and the frame is retried on the next one, so a
// restarting peer sees the stream resume where it broke (modulo the frames
// the kernel already accepted — the protocol layers tolerate duplicates).
func (t *TCP) writePump(p *tcpPeer) {
	defer t.wg.Done()
	for {
		var frame []byte
		select {
		case <-t.done:
			return
		case frame = <-p.queue:
		}
		for {
			conn := t.acquire(p)
			if conn == nil {
				return // endpoint closed
			}
			if _, err := conn.Write(frame); err != nil {
				t.dropConn(p, conn)
				continue
			}
			t.ctr.FramesSent.Inc()
			t.ctr.BytesSent.Add(int64(len(frame)))
			break
		}
	}
}

// acquire returns a live connection to p, dialing with exponential backoff
// when p has an address and otherwise waiting for an inbound connection to
// adopt. Returns nil only when the endpoint is closing.
func (t *TCP) acquire(p *tcpPeer) net.Conn {
	backoff := t.cfg.BackoffBase
	for attempt := 0; ; attempt++ {
		p.mu.Lock()
		conn, addr := p.conn, p.addr
		p.mu.Unlock()
		if conn != nil {
			return conn
		}
		select {
		case <-t.done:
			return nil
		default:
		}
		if addr != "" {
			if conn, err := t.dial(addr, p.id); err == nil {
				if !t.trackConn(conn) {
					return nil
				}
				adopted := false
				p.mu.Lock()
				if p.conn != nil { // an inbound conn won the race
					stale := conn
					conn = p.conn
					p.mu.Unlock()
					t.dropConn(p, stale)
				} else {
					p.conn = conn
					adopted = true
					p.mu.Unlock()
				}
				if adopted {
					t.ctr.Reconnects.Inc()
					t.wg.Add(1)
					go t.readLoop(conn, p)
				}
				return conn
			}
		}
		select {
		case <-t.done:
			return nil
		case <-p.kick: // inbound conn adopted; retry immediately
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > t.cfg.BackoffMax {
			backoff = t.cfg.BackoffMax
		}
	}
}

// dial connects, sends our hello and verifies the peer's reply: right
// cluster, and the node we meant to reach.
func (t *TCP) dial(addr, expect string) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(t.cfg.DialTimeout)
	conn.SetDeadline(deadline)
	if err := t.sendHello(conn); err != nil {
		conn.Close()
		return nil, err
	}
	peer, err := t.readHello(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if peer != expect {
		conn.Close()
		return nil, fmt.Errorf("transport: dialed %s for peer %s but reached %s", addr, expect, peer)
	}
	conn.SetDeadline(time.Time{})
	return conn, nil
}

func (t *TCP) sendHello(conn net.Conn) error {
	body, err := json.Marshal(hello{Cluster: t.cfg.Cluster, From: t.cfg.ID})
	if err != nil {
		return err
	}
	frame, err := EncodeFrame(helloStream, body)
	if err != nil {
		return err
	}
	_, err = conn.Write(frame)
	return err
}

func (t *TCP) readHello(conn net.Conn) (string, error) {
	stream, body, err := ReadFrame(conn, t.cfg.MaxFrame)
	if err != nil {
		return "", err
	}
	if stream != helloStream {
		return "", fmt.Errorf("%w: expected hello, got stream %q", ErrFrameCorrupt, stream)
	}
	var h hello
	if err := json.Unmarshal(body, &h); err != nil {
		return "", fmt.Errorf("%w: bad hello: %v", ErrFrameCorrupt, err)
	}
	if h.Cluster != t.cfg.Cluster {
		return "", fmt.Errorf("transport: cluster mismatch: %q dialed %q", h.Cluster, t.cfg.Cluster)
	}
	if h.From == "" {
		return "", fmt.Errorf("%w: hello without node id", ErrFrameCorrupt)
	}
	return h.From, nil
}

// dropConn closes conn, untracks it, and clears it from p if still current.
func (t *TCP) dropConn(p *tcpPeer, conn net.Conn) {
	conn.Close()
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
	}
	p.mu.Unlock()
}

// --- read path ---

// acceptLoop handshakes inbound connections and attaches them to their
// peer: always as a read source, and as the send path too when we have no
// dial address for that peer (client endpoints reach us this way).
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		conn.SetDeadline(time.Now().Add(t.cfg.DialTimeout))
		peerID, err := t.readHello(conn)
		if err != nil {
			t.ctr.Drops.Inc()
			conn.Close()
			continue
		}
		if err := t.sendHello(conn); err != nil {
			conn.Close()
			continue
		}
		conn.SetDeadline(time.Time{})

		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		p, ok := t.peers[peerID]
		if !ok {
			p = &tcpPeer{id: peerID, queue: make(chan []byte, t.cfg.QueueLen), kick: make(chan struct{}, 1)}
			t.peers[peerID] = p
			t.wg.Add(1)
			go t.writePump(p)
		}
		t.mu.Unlock()

		if !t.trackConn(conn) {
			return
		}
		p.mu.Lock()
		if p.addr == "" { // adopt as the send path; retire any stale one
			if p.conn != nil && p.conn != conn {
				p.conn.Close()
			}
			p.conn = conn
			select {
			case p.kick <- struct{}{}:
			default:
			}
		}
		p.mu.Unlock()

		t.wg.Add(1)
		go t.readLoop(conn, p)
	}
}

// readLoop verifies and dispatches frames from one connection until it
// breaks; any framing error fails closed by tearing the connection down.
func (t *TCP) readLoop(conn net.Conn, p *tcpPeer) {
	defer t.wg.Done()
	defer t.dropConn(p, conn)
	for {
		stream, body, err := ReadFrame(conn, t.cfg.MaxFrame)
		if err != nil {
			return
		}
		t.ctr.FramesRecv.Inc()
		t.ctr.BytesRecv.Add(int64(frameHeaderLen + 1 + len(stream) + len(body)))
		t.mu.RLock()
		h := t.handlers[stream]
		t.mu.RUnlock()
		if h == nil {
			t.ctr.Drops.Inc()
			continue
		}
		if err := h(p.id, body); err != nil {
			t.ctr.Drops.Inc()
		}
	}
}
