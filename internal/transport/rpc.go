package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// RPCStream is the stream all request/response traffic multiplexes over.
const RPCStream = "@rpc"

// ErrRPCTimeout reports a call that got no response in time (lost request
// or response, slow or dead peer).
var ErrRPCTimeout = errors.New("transport: rpc timeout")

// CodedError carries a machine-readable error code across the wire, so
// typed sentinel errors (ordering backlog, commit timeout, ...) survive
// serialization: the server wraps them in a code, the client maps the code
// back to the sentinel.
type CodedError struct {
	Code string
	Msg  string
}

// Error implements error.
func (e *CodedError) Error() string { return e.Msg }

// ErrCode extracts the wire code of err ("" if none).
func ErrCode(err error) string {
	var ce *CodedError
	if errors.As(err, &ce) {
		return ce.Code
	}
	return ""
}

// rpcWire is one multiplexed request or response frame body.
type rpcWire struct {
	ID     uint64 `json:"id"`
	Method string `json:"m,omitempty"`
	Body   []byte `json:"b,omitempty"`
	Resp   bool   `json:"r,omitempty"`
	Err    string `json:"e,omitempty"`
	Code   string `json:"c,omitempty"`
}

// RPCHandler serves one method; the returned bytes become the response
// body. Returning a *CodedError preserves its code across the wire.
type RPCHandler func(from string, req []byte) ([]byte, error)

// RPC layers request/response calls over a Transport's ordered streams.
// Requests dispatch to per-method handlers in their own goroutines (they
// may block); responses ride back over the transport to the waiting
// caller. There are no retries at this layer — a lost message surfaces as
// ErrRPCTimeout for the caller to handle.
type RPC struct {
	t Transport

	mu       sync.Mutex
	next     uint64
	pending  map[uint64]chan *rpcWire
	handlers map[string]RPCHandler
}

// NewRPC attaches an RPC layer to t, claiming the RPCStream stream.
func NewRPC(t Transport) *RPC {
	r := &RPC{
		t:        t,
		pending:  make(map[uint64]chan *rpcWire),
		handlers: make(map[string]RPCHandler),
	}
	t.Handle(RPCStream, r.onFrame)
	return r
}

// Handle registers the handler for one method.
func (r *RPC) Handle(method string, fn RPCHandler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers[method] = fn
}

// Call sends a request to peer `to` and waits up to timeout for its
// response. Transport-level send failures (backpressure, unknown peer,
// closed) return immediately; a server-side error returns as a *CodedError
// when the server supplied a code, else a plain error.
func (r *RPC) Call(to, method string, req []byte, timeout time.Duration) ([]byte, error) {
	r.mu.Lock()
	r.next++
	id := r.next
	ch := make(chan *rpcWire, 1)
	r.pending[id] = ch
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.pending, id)
		r.mu.Unlock()
	}()

	body, err := json.Marshal(rpcWire{ID: id, Method: method, Body: req})
	if err != nil {
		return nil, err
	}
	if err := r.t.Send(to, RPCStream, body); err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	select {
	case w := <-ch:
		if w.Err != "" {
			if w.Code != "" {
				return nil, &CodedError{Code: w.Code, Msg: w.Err}
			}
			return nil, errors.New(w.Err)
		}
		return w.Body, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("%w: %s to %s after %s", ErrRPCTimeout, method, to, timeout)
	}
}

// CallJSON marshals req, calls, and unmarshals the response into resp
// (which may be nil for empty responses).
func (r *RPC) CallJSON(to, method string, req, resp any, timeout time.Duration) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	out, err := r.Call(to, method, body, timeout)
	if err != nil {
		return err
	}
	if resp == nil || len(out) == 0 {
		return nil
	}
	return json.Unmarshal(out, resp)
}

func (r *RPC) onFrame(from string, payload []byte) error {
	var w rpcWire
	if err := json.Unmarshal(payload, &w); err != nil {
		return fmt.Errorf("%w: bad rpc frame: %v", ErrFrameCorrupt, err)
	}
	if w.Resp {
		r.mu.Lock()
		ch := r.pending[w.ID]
		r.mu.Unlock()
		if ch != nil {
			select {
			case ch <- &w:
			default:
			}
		}
		return nil
	}
	r.mu.Lock()
	fn := r.handlers[w.Method]
	r.mu.Unlock()
	go r.serve(from, &w, fn)
	return nil
}

func (r *RPC) serve(from string, w *rpcWire, fn RPCHandler) {
	resp := rpcWire{ID: w.ID, Resp: true}
	if fn == nil {
		resp.Err = fmt.Sprintf("transport: no handler for rpc method %q", w.Method)
		resp.Code = "nomethod"
	} else if out, err := fn(from, w.Body); err != nil {
		resp.Err = err.Error()
		var ce *CodedError
		if errors.As(err, &ce) {
			resp.Code = ce.Code
		}
	} else {
		resp.Body = out
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return
	}
	// Best effort: if the response cannot be queued the caller times out.
	_ = r.t.Send(from, RPCStream, body)
}
