package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func mustFrame(t *testing.T, stream string, body []byte) []byte {
	t.Helper()
	f, err := EncodeFrame(stream, body)
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	return f
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		stream string
		body   []byte
	}{
		{"cns/main", []byte("hello")},
		{"@rpc", nil},
		{"", []byte{0, 1, 2, 255}},
		{"x", bytes.Repeat([]byte{0xAB}, 100_000)},
	}
	for _, c := range cases {
		frame := mustFrame(t, c.stream, c.body)
		stream, body, err := ReadFrame(bytes.NewReader(frame), 0)
		if err != nil {
			t.Fatalf("ReadFrame(%q): %v", c.stream, err)
		}
		if stream != c.stream || !bytes.Equal(body, c.body) {
			t.Fatalf("round trip mismatch: got (%q, %d bytes)", stream, len(body))
		}
		stream, body, n, err := DecodeFrame(frame, 0)
		if err != nil || n != len(frame) || stream != c.stream || !bytes.Equal(body, c.body) {
			t.Fatalf("DecodeFrame mismatch: (%q, %d bytes, next %d, err %v)", stream, len(body), n, err)
		}
	}
}

func TestFrameStreamNameTooLong(t *testing.T) {
	if _, err := EncodeFrame(string(bytes.Repeat([]byte{'s'}, 256)), nil); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("256-byte stream name: got %v", err)
	}
}

// TestFrameTruncationSweep truncates a valid frame at every length and
// asserts the reader rejects every prefix — no partial payload ever
// surfaces. Mirrors the PR-5 WAL torn-tail sweeps.
func TestFrameTruncationSweep(t *testing.T) {
	frame := mustFrame(t, "cns/main", []byte("the quick brown fox jumps over the lazy dog"))
	for cut := 0; cut < len(frame); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(frame[:cut]), 0)
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(frame))
		}
		if cut > 0 && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) &&
			!errors.Is(err, ErrFrameTooLarge) && !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
		if _, _, _, err := DecodeFrame(frame[:cut], 0); err == nil {
			t.Fatalf("DecodeFrame accepted truncation at %d/%d", cut, len(frame))
		}
	}
	// Zero bytes is a clean EOF (connection closed at a frame boundary).
	if _, _, err := ReadFrame(bytes.NewReader(nil), 0); !errors.Is(err, io.EOF) {
		t.Fatalf("empty reader: want io.EOF, got %v", err)
	}
}

// TestFrameCorruptionSweep flips one byte at every offset of a valid frame
// and asserts the reader never hands the damaged payload to a handler. A
// corrupted length field may surface as too-large/truncated instead of a
// CRC mismatch; what matters is that nothing parses as valid with the
// wrong bytes.
func TestFrameCorruptionSweep(t *testing.T) {
	const stream, body = "cns/main", "payload under test 0123456789"
	frame := mustFrame(t, stream, []byte(body))
	for off := 0; off < len(frame); off++ {
		bad := bytes.Clone(frame)
		bad[off] ^= 0xFF
		gotStream, gotBody, err := ReadFrame(bytes.NewReader(bad), len(frame)*2)
		if err == nil && gotStream == stream && string(gotBody) == string(body) {
			t.Fatalf("flip at %d went unnoticed", off)
		}
		if err == nil {
			t.Fatalf("flip at %d accepted with altered content (%q, %q)", off, gotStream, gotBody)
		}
	}
}

// TestFrameOversizeRejected verifies the reader refuses a length field
// beyond the bound before allocating for it.
func TestFrameOversizeRejected(t *testing.T) {
	frame := mustFrame(t, "s", bytes.Repeat([]byte{1}, 1024))
	if _, _, err := ReadFrame(bytes.NewReader(frame), 64); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

// TestFrameBackToBack reads two frames off one stream, confirming framing
// is self-delimiting.
func TestFrameBackToBack(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(mustFrame(t, "a", []byte("one")))
	buf.Write(mustFrame(t, "b", []byte("two")))
	s1, b1, err1 := ReadFrame(&buf, 0)
	s2, b2, err2 := ReadFrame(&buf, 0)
	if err1 != nil || err2 != nil || s1 != "a" || s2 != "b" || string(b1) != "one" || string(b2) != "two" {
		t.Fatalf("back-to-back read: (%q,%q,%v) (%q,%q,%v)", s1, b1, err1, s2, b2, err2)
	}
	if _, _, err := ReadFrame(&buf, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF after last frame, got %v", err)
	}
}
