// Package transport is the message-passing seam of the deployment: every
// byte that crosses between peers — consensus votes, ordering delivery,
// endorsement/gateway RPC, bitswap and DHT traffic — moves through the
// Transport interface. Two implementations exist:
//
//   - InProc: deterministic in-process delivery over sim latency injection,
//     the default test harness. Function calls, no serialization beyond the
//     caller's own encoding, directed-link fault injection (Cut/Heal).
//   - TCP: real sockets. Length-prefixed CRC-framed messages (the walframe
//     layout), a hello handshake carrying cluster + node identity, one
//     write pump per peer over a bounded send queue, and reconnect with
//     exponential backoff.
//
// Messages to one peer on one transport are ordered; messages are not
// acknowledged. A full send queue surfaces as ErrBackpressure rather than
// blocking — loss-tolerant protocols (consensus) drop, request/response
// callers (RPC) time out and retry. Byte/frame/reconnect/drop counts are
// exposed per endpoint via metrics counters.
package transport

import (
	"errors"
	"fmt"

	"socialchain/internal/metrics"
)

// Kind names a transport implementation; it is the value of the fabric and
// core config transport knobs.
type Kind string

const (
	// KindInProc is deterministic in-process delivery (the default).
	KindInProc Kind = "inproc"
	// KindTCP is real sockets on localhost or beyond.
	KindTCP Kind = "tcp"
)

// ParseKind validates a transport knob value. The empty string resolves to
// KindInProc so untouched configs keep today's behavior.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case "", KindInProc:
		return KindInProc, nil
	case KindTCP:
		return KindTCP, nil
	default:
		return "", fmt.Errorf("transport: unknown kind %q (valid: inproc, tcp)", s)
	}
}

// Typed transport errors. Callers branch with errors.Is.
var (
	// ErrBackpressure reports a full bounded send queue (TCP) or a full
	// receiver inbox (InProc handlers may return it). The message was
	// dropped, not queued.
	ErrBackpressure = errors.New("transport: send queue full")
	// ErrUnknownPeer reports a destination absent from the peer set.
	ErrUnknownPeer = errors.New("transport: unknown peer")
	// ErrClosed reports use of a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrFrameTooLarge reports a frame exceeding the configured bound; the
	// connection that produced it is torn down.
	ErrFrameTooLarge = errors.New("transport: frame too large")
	// ErrFrameCorrupt reports a CRC mismatch or malformed envelope; the
	// connection that produced it is torn down.
	ErrFrameCorrupt = errors.New("transport: frame corrupt")
)

// Handler consumes one inbound message on a stream. Handlers run on the
// delivery path (the reader goroutine for TCP, the sender's goroutine for
// zero-latency InProc) and must be fast and non-blocking; hand off to a
// channel or goroutine for real work. A handler returning ErrBackpressure
// tells the transport the message was dropped at the receiver.
type Handler func(from string, payload []byte) error

// Transport moves opaque payloads between named peers over named streams.
// Per (peer, stream) delivery is ordered; loss is possible (backpressure,
// connection churn) and left to the protocol above to tolerate.
type Transport interface {
	// ID returns this endpoint's node identity.
	ID() string
	// Handle registers the handler for one stream, replacing any previous
	// one. Messages on streams with no handler are dropped (counted).
	Handle(stream string, h Handler)
	// Send enqueues payload for delivery to peer `to` on `stream`. It does
	// not block: a full queue returns ErrBackpressure, an unknown peer
	// ErrUnknownPeer, a closed endpoint ErrClosed.
	Send(to, stream string, payload []byte) error
	// Peers lists the currently known remote peer IDs.
	Peers() []string
	// Counters exposes this endpoint's traffic counters.
	Counters() *Counters
	// Close shuts the endpoint down and releases its connections.
	Close() error
}

// Counters is the per-endpoint traffic accounting: bytes and frames in each
// direction, (re)connect events, and messages dropped (backpressure, cuts,
// missing handlers, torn connections).
type Counters struct {
	BytesSent  metrics.Counter
	BytesRecv  metrics.Counter
	FramesSent metrics.Counter
	FramesRecv metrics.Counter
	Reconnects metrics.Counter
	Drops      metrics.Counter
}
