package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRPCRoundTripInProc(t *testing.T) {
	net := NewInProcNet(nil, nil)
	a, b := net.Node("a"), net.Node("b")
	ra, rb := NewRPC(a), NewRPC(b)

	rb.Handle("echo", func(from string, req []byte) ([]byte, error) {
		return append([]byte(from+":"), req...), nil
	})
	out, err := ra.Call("b", "echo", []byte("ping"), time.Second)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if string(out) != "a:ping" {
		t.Fatalf("response: %q", out)
	}
}

func TestRPCCodedErrorSurvivesWire(t *testing.T) {
	net := NewInProcNet(nil, nil)
	ra, rb := NewRPC(net.Node("a")), NewRPC(net.Node("b"))
	rb.Handle("fail", func(string, []byte) ([]byte, error) {
		return nil, &CodedError{Code: "backlog", Msg: "ordering queue full"}
	})
	_, err := ra.Call("b", "fail", nil, time.Second)
	if err == nil || ErrCode(err) != "backlog" || err.Error() != "ordering queue full" {
		t.Fatalf("coded error lost: %v (code %q)", err, ErrCode(err))
	}
}

func TestRPCNoMethod(t *testing.T) {
	net := NewInProcNet(nil, nil)
	ra := NewRPC(net.Node("a"))
	NewRPC(net.Node("b"))
	_, err := ra.Call("b", "nope", nil, time.Second)
	if err == nil || ErrCode(err) != "nomethod" {
		t.Fatalf("want nomethod code, got %v", err)
	}
}

func TestRPCTimeoutTyped(t *testing.T) {
	net := NewInProcNet(nil, nil)
	ra, rb := NewRPC(net.Node("a")), NewRPC(net.Node("b"))
	rb.Handle("slow", func(string, []byte) ([]byte, error) {
		time.Sleep(200 * time.Millisecond)
		return nil, nil
	})
	_, err := ra.Call("b", "slow", nil, 20*time.Millisecond)
	if !errors.Is(err, ErrRPCTimeout) {
		t.Fatalf("want ErrRPCTimeout, got %v", err)
	}
}

func TestRPCConcurrentCallsOverTCP(t *testing.T) {
	srv, err := NewTCP(TCPConfig{ID: "srv", Cluster: "c", Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewTCP(TCPConfig{ID: "cli", Cluster: "c", Peers: map[string]string{"srv": srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rs := NewRPC(srv)
	rc := NewRPC(cli)
	rs.Handle("double", func(_ string, req []byte) ([]byte, error) {
		var n int
		if err := json.Unmarshal(req, &n); err != nil {
			return nil, err
		}
		return json.Marshal(2 * n)
	})

	const calls = 64
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			var out int
			if err := rc.CallJSON("srv", "double", n, &out, 5*time.Second); err != nil {
				errs <- err
				return
			}
			if out != 2*n {
				errs <- fmt.Errorf("call %d: got %d", n, out)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
