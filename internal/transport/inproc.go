package transport

import (
	"sync"

	"socialchain/internal/sim"
)

// InProcNet is the hub of an in-process deployment: every endpoint created
// with Node shares it, and delivery is a function call into the receiver's
// handler — today's deterministic sim-latency semantics, kept as the
// default test harness. Directed links can be cut and healed for fault
// injection, mirroring the consensus network's partition model.
type InProcNet struct {
	mu      sync.RWMutex
	latency sim.LatencyModel
	clock   sim.Clock
	nodes   map[string]*InProc
	cut     map[string]map[string]bool // cut[a][b]: drop messages a->b
}

// NewInProcNet creates an in-process transport hub. A nil latency model
// delivers immediately; a nil clock uses wall time for delayed delivery.
func NewInProcNet(latency sim.LatencyModel, clock sim.Clock) *InProcNet {
	if latency == nil {
		latency = sim.ZeroLatency{}
	}
	if clock == nil {
		clock = sim.RealClock{}
	}
	return &InProcNet{
		latency: latency,
		clock:   clock,
		nodes:   make(map[string]*InProc),
		cut:     make(map[string]map[string]bool),
	}
}

// Node returns the endpoint for id, creating it on first use. A closed
// endpoint's id can be re-registered (peer restart).
func (n *InProcNet) Node(id string) *InProc {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.nodes[id]; ok {
		return p
	}
	p := &InProc{net: n, id: id, handlers: make(map[string]Handler)}
	n.nodes[id] = p
	return p
}

// Cut severs the directed link from a to b: sends are silently dropped
// (counted on the sender), matching real-partition semantics where the
// sender cannot tell.
func (n *InProcNet) Cut(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cut[a] == nil {
		n.cut[a] = make(map[string]bool)
	}
	n.cut[a][b] = true
}

// Heal restores the directed link from a to b.
func (n *InProcNet) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cut[a] != nil {
		delete(n.cut[a], b)
	}
}

// InProc is one endpoint of an InProcNet. It implements Transport.
type InProc struct {
	net *InProcNet
	id  string

	mu       sync.RWMutex
	handlers map[string]Handler
	closed   bool
	ctr      Counters
}

// ID implements Transport.
func (p *InProc) ID() string { return p.id }

// Counters implements Transport.
func (p *InProc) Counters() *Counters { return &p.ctr }

// Handle implements Transport.
func (p *InProc) Handle(stream string, h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handlers[stream] = h
}

// Peers implements Transport.
func (p *InProc) Peers() []string {
	p.net.mu.RLock()
	defer p.net.mu.RUnlock()
	out := make([]string, 0, len(p.net.nodes)-1)
	for id := range p.net.nodes {
		if id != p.id {
			out = append(out, id)
		}
	}
	return out
}

// Close implements Transport. The endpoint deregisters from the hub;
// messages in flight to it are dropped.
func (p *InProc) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.net.mu.Lock()
	if p.net.nodes[p.id] == p {
		delete(p.net.nodes, p.id)
	}
	p.net.mu.Unlock()
	return nil
}

// Send implements Transport. Zero-latency delivery is a synchronous call
// into the receiver's handler, so a handler's ErrBackpressure propagates to
// the sender; delayed delivery happens on a goroutine after the simulated
// latency, and failures there are counted as drops (the sender has already
// moved on, exactly like a wire).
func (p *InProc) Send(to, stream string, payload []byte) error {
	p.mu.RLock()
	closed := p.closed
	p.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	p.net.mu.RLock()
	dst, ok := p.net.nodes[to]
	cutoff := p.net.cut[p.id][to]
	p.net.mu.RUnlock()
	if !ok {
		return ErrUnknownPeer
	}
	if cutoff {
		p.ctr.Drops.Inc()
		return nil
	}
	p.ctr.FramesSent.Inc()
	p.ctr.BytesSent.Add(int64(len(payload)))
	if d := p.net.latency.Delay(p.id, to); d > 0 {
		go func() {
			p.net.clock.Sleep(d)
			if err := dst.deliver(p.id, stream, payload); err != nil {
				p.ctr.Drops.Inc()
			}
		}()
		return nil
	}
	return dst.deliver(p.id, stream, payload)
}

func (p *InProc) deliver(from, stream string, payload []byte) error {
	p.mu.RLock()
	h := p.handlers[stream]
	closed := p.closed
	p.mu.RUnlock()
	if closed || h == nil {
		p.ctr.Drops.Inc()
		return nil
	}
	p.ctr.FramesRecv.Inc()
	p.ctr.BytesRecv.Add(int64(len(payload)))
	if err := h(from, payload); err != nil {
		p.ctr.Drops.Inc()
		return err
	}
	return nil
}
