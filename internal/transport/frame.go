package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire framing: one message is one frame in the walframe layout,
//
//	[4B big-endian payload length][4B IEEE CRC32 of payload][payload]
//
// where the payload is a stream envelope,
//
//	[1B stream-name length][stream name][body]
//
// The CRC covers the whole envelope, so a torn or bit-flipped frame fails
// closed: the reader rejects it and tears down the connection rather than
// dispatching a damaged message. The layout is deliberately the same as the
// durable logs' (internal/walframe) so there is exactly one framing format
// in the system.

// frameHeaderLen is the fixed length+CRC header size.
const frameHeaderLen = 8

// DefaultMaxFrame bounds one wire message (header + envelope). Large enough
// for a full ordering batch (2 MiB cutter default plus JSON overhead) with
// headroom; small enough that a corrupt length field cannot ask the reader
// to allocate gigabytes.
const DefaultMaxFrame = 16 << 20

// EncodeFrame seals a stream envelope into a single wire frame.
func EncodeFrame(stream string, body []byte) ([]byte, error) {
	if len(stream) > 255 {
		return nil, fmt.Errorf("%w: stream name %d bytes (max 255)", ErrFrameCorrupt, len(stream))
	}
	frame := make([]byte, frameHeaderLen+1+len(stream)+len(body))
	frame[frameHeaderLen] = byte(len(stream))
	copy(frame[frameHeaderLen+1:], stream)
	copy(frame[frameHeaderLen+1+len(stream):], body)
	payload := frame[frameHeaderLen:]
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return frame, nil
}

// decodeEnvelope splits a CRC-verified payload into stream name and body.
func decodeEnvelope(payload []byte) (stream string, body []byte, err error) {
	if len(payload) < 1 {
		return "", nil, fmt.Errorf("%w: empty envelope", ErrFrameCorrupt)
	}
	n := int(payload[0])
	if len(payload)-1 < n {
		return "", nil, fmt.Errorf("%w: envelope shorter than stream name", ErrFrameCorrupt)
	}
	return string(payload[1 : 1+n]), payload[1+n:], nil
}

// ReadFrame reads and verifies one frame from r, returning the stream name
// and message body. Errors are terminal for the connection: io.EOF at a
// frame boundary is a clean shutdown, io.ErrUnexpectedEOF a truncation,
// ErrFrameTooLarge / ErrFrameCorrupt a protocol violation.
func ReadFrame(r io.Reader, maxFrame int) (stream string, body []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return "", nil, fmt.Errorf("transport: truncated frame header: %w", err)
		}
		return "", nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[0:4]))
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if n > maxFrame-frameHeaderLen {
		return "", nil, fmt.Errorf("%w: payload %d bytes (max %d)", ErrFrameTooLarge, n, maxFrame-frameHeaderLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return "", nil, fmt.Errorf("transport: truncated frame body: %w", io.ErrUnexpectedEOF)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return "", nil, fmt.Errorf("%w: crc mismatch", ErrFrameCorrupt)
	}
	return decodeEnvelope(payload)
}

// DecodeFrame parses one frame from the front of data, returning the stream
// name, body, and the offset just past the frame. It is the slice-oriented
// twin of ReadFrame used by tests to sweep corruption offsets.
func DecodeFrame(data []byte, maxFrame int) (stream string, body []byte, next int, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(data) < frameHeaderLen {
		return "", nil, 0, fmt.Errorf("transport: truncated frame header: %w", io.ErrUnexpectedEOF)
	}
	n := int(binary.BigEndian.Uint32(data[0:4]))
	sum := binary.BigEndian.Uint32(data[4:8])
	if n > maxFrame-frameHeaderLen {
		return "", nil, 0, fmt.Errorf("%w: payload %d bytes (max %d)", ErrFrameTooLarge, n, maxFrame-frameHeaderLen)
	}
	if len(data)-frameHeaderLen < n {
		return "", nil, 0, fmt.Errorf("transport: truncated frame body: %w", io.ErrUnexpectedEOF)
	}
	payload := data[frameHeaderLen : frameHeaderLen+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return "", nil, 0, fmt.Errorf("%w: crc mismatch", ErrFrameCorrupt)
	}
	stream, body, err = decodeEnvelope(payload)
	if err != nil {
		return "", nil, 0, err
	}
	return stream, body, frameHeaderLen + n, nil
}
