package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"socialchain/internal/sim"
)

func TestInProcDelivery(t *testing.T) {
	net := NewInProcNet(nil, nil)
	a, b := net.Node("a"), net.Node("b")
	var got []string
	b.Handle("s", func(from string, payload []byte) error {
		got = append(got, from+":"+string(payload))
		return nil
	})
	if err := a.Send("b", "s", []byte("m1")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := a.Send("b", "s", []byte("m2")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if len(got) != 2 || got[0] != "a:m1" || got[1] != "a:m2" {
		t.Fatalf("delivery order: %v", got)
	}
	if a.Counters().FramesSent.Load() != 2 || b.Counters().FramesRecv.Load() != 2 {
		t.Fatalf("counters: sent=%d recv=%d", a.Counters().FramesSent.Load(), b.Counters().FramesRecv.Load())
	}
}

func TestInProcUnknownPeerAndClosed(t *testing.T) {
	net := NewInProcNet(nil, nil)
	a := net.Node("a")
	if err := a.Send("ghost", "s", nil); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("unknown peer: got %v", err)
	}
	a.Close()
	if err := a.Send("a", "s", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed: got %v", err)
	}
	// The id is free again after close (peer restart).
	a2 := net.Node("a")
	if a2 == a {
		t.Fatal("closed endpoint not replaced on re-registration")
	}
}

func TestInProcPartitionHeal(t *testing.T) {
	net := NewInProcNet(nil, nil)
	a, b := net.Node("a"), net.Node("b")
	var n int
	b.Handle("s", func(string, []byte) error { n++; return nil })

	net.Cut("a", "b")
	if err := a.Send("b", "s", []byte("x")); err != nil {
		t.Fatalf("cut send should be silent loss, got %v", err)
	}
	if n != 0 {
		t.Fatal("message crossed a cut link")
	}
	if a.Counters().Drops.Load() == 0 {
		t.Fatal("cut drop not counted")
	}
	// The cut is directed: b -> a still works.
	var back int
	a.Handle("s", func(string, []byte) error { back++; return nil })
	if err := b.Send("a", "s", []byte("y")); err != nil || back != 1 {
		t.Fatalf("reverse direction: err=%v delivered=%d", err, back)
	}

	net.Heal("a", "b")
	if err := a.Send("b", "s", []byte("z")); err != nil || n != 1 {
		t.Fatalf("after heal: err=%v delivered=%d", err, n)
	}
}

// TestInProcBackpressurePropagates: with zero latency, delivery is a
// synchronous call, so a receiver that reports backpressure is heard by
// the sender — the property consensus relies on for typed drop accounting.
func TestInProcBackpressurePropagates(t *testing.T) {
	net := NewInProcNet(nil, nil)
	a, b := net.Node("a"), net.Node("b")
	full := make(chan []byte, 1)
	b.Handle("s", func(from string, payload []byte) error {
		select {
		case full <- payload:
			return nil
		default:
			return ErrBackpressure
		}
	})
	if err := a.Send("b", "s", []byte("1")); err != nil {
		t.Fatalf("first send: %v", err)
	}
	if err := a.Send("b", "s", []byte("2")); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("want ErrBackpressure, got %v", err)
	}
}

func TestInProcLatencyAsync(t *testing.T) {
	net := NewInProcNet(sim.FixedLatency{D: time.Millisecond}, nil)
	a, b := net.Node("a"), net.Node("b")
	var mu sync.Mutex
	var got []string
	b.Handle("s", func(from string, payload []byte) error {
		mu.Lock()
		got = append(got, string(payload))
		mu.Unlock()
		return nil
	})
	if err := a.Send("b", "s", []byte("later")); err != nil {
		t.Fatalf("send: %v", err)
	}
	mu.Lock()
	early := len(got)
	mu.Unlock()
	if early != 0 {
		t.Fatal("latency-delayed message delivered synchronously")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("delayed message never delivered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestInProcNoHandlerDrops(t *testing.T) {
	net := NewInProcNet(nil, nil)
	a, b := net.Node("a"), net.Node("b")
	if err := a.Send("b", "nope", []byte("x")); err != nil {
		t.Fatalf("send to unhandled stream: %v", err)
	}
	if b.Counters().Drops.Load() != 1 {
		t.Fatalf("unhandled stream not counted as drop: %d", b.Counters().Drops.Load())
	}
}
