package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// collect returns a handler appending payload copies to a shared slice.
func collect(mu *sync.Mutex, out *[][]byte) Handler {
	return func(from string, payload []byte) error {
		mu.Lock()
		*out = append(*out, bytes.Clone(payload))
		mu.Unlock()
		return nil
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// tcpPair builds two connected endpoints a<->b on loopback.
func tcpPair(t *testing.T, cluster string) (*TCP, *TCP) {
	t.Helper()
	a, err := NewTCP(TCPConfig{ID: "a", Cluster: cluster, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("NewTCP a: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := NewTCP(TCPConfig{ID: "b", Cluster: cluster, Listen: "127.0.0.1:0", Peers: map[string]string{"a": a.Addr()}})
	if err != nil {
		t.Fatalf("NewTCP b: %v", err)
	}
	t.Cleanup(func() { b.Close() })
	a.AddPeer("b", b.Addr())
	return a, b
}

func TestTCPOrderedDelivery(t *testing.T) {
	a, b := tcpPair(t, "test")
	var mu sync.Mutex
	var got [][]byte
	b.Handle("s", collect(&mu, &got))
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send("b", "s", []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, "all frames", func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == n })
	mu.Lock()
	defer mu.Unlock()
	for i, p := range got {
		if len(p) != 1 || p[0] != byte(i) {
			t.Fatalf("frame %d out of order: % x", i, p)
		}
	}
	if a.Counters().FramesSent.Load() != n || b.Counters().FramesRecv.Load() != n {
		t.Fatalf("counters: sent=%d recv=%d", a.Counters().FramesSent.Load(), b.Counters().FramesRecv.Load())
	}
}

func TestTCPBidirectionalAndClientOnly(t *testing.T) {
	srv, err := NewTCP(TCPConfig{ID: "srv", Cluster: "c", Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Client endpoint: no listener; replies must ride its outbound conn.
	cli, err := NewTCP(TCPConfig{ID: "cli", Cluster: "c", Peers: map[string]string{"srv": srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var mu sync.Mutex
	var atCli [][]byte
	cli.Handle("pong", collect(&mu, &atCli))
	srv.Handle("ping", func(from string, payload []byte) error {
		return srv.Send(from, "pong", append([]byte("re:"), payload...))
	})

	if err := cli.Send("srv", "ping", []byte("hi")); err != nil {
		t.Fatalf("client send: %v", err)
	}
	waitFor(t, "reply on outbound conn", func() bool { mu.Lock(); defer mu.Unlock(); return len(atCli) == 1 })
	mu.Lock()
	if string(atCli[0]) != "re:hi" {
		t.Fatalf("reply: %q", atCli[0])
	}
	mu.Unlock()
}

func TestTCPClusterMismatchRejected(t *testing.T) {
	srv, err := NewTCP(TCPConfig{ID: "srv", Cluster: "right", Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	bad, err := NewTCP(TCPConfig{
		ID: "bad", Cluster: "wrong", Peers: map[string]string{"srv": srv.Addr()},
		DialTimeout: 300 * time.Millisecond, BackoffBase: 10 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()

	var mu sync.Mutex
	var got [][]byte
	srv.Handle("s", collect(&mu, &got))
	if err := bad.Send("srv", "s", []byte("x")); err != nil {
		t.Fatalf("send enqueues: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 0 {
		t.Fatal("frame crossed a cluster-mismatched handshake")
	}
}

// TestTCPBackpressureTyped fills a tiny send queue against a peer that
// never answers and asserts the typed error, not a block or a panic.
func TestTCPBackpressureTyped(t *testing.T) {
	// Dead address: nothing listens, so the pump can never drain.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr().String()
	dead.Close()

	a, err := NewTCP(TCPConfig{
		ID: "a", Cluster: "c", Peers: map[string]string{"slow": addr},
		QueueLen: 4, DialTimeout: 50 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var sawBackpressure bool
	for i := 0; i < 64; i++ {
		if err := a.Send("slow", "s", []byte("x")); err != nil {
			if !errors.Is(err, ErrBackpressure) {
				t.Fatalf("want ErrBackpressure, got %v", err)
			}
			sawBackpressure = true
			break
		}
	}
	if !sawBackpressure {
		t.Fatal("queue of 4 never filled after 64 sends to a dead peer")
	}
	if a.Counters().Drops.Load() == 0 {
		t.Fatal("backpressure drop not counted")
	}
}

// TestTCPReconnectAfterRestart kills one endpoint mid-conversation,
// restarts it on the same address, and asserts traffic resumes over a
// fresh connection — the peer-restart story the daemon depends on.
func TestTCPReconnectAfterRestart(t *testing.T) {
	a, err := NewTCP(TCPConfig{
		ID: "a", Cluster: "c", Listen: "127.0.0.1:0",
		DialTimeout: 200 * time.Millisecond, BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	mkB := func(listen string) (*TCP, *sync.Mutex, *[][]byte) {
		b, err := NewTCP(TCPConfig{ID: "b", Cluster: "c", Listen: listen, Peers: map[string]string{"a": a.Addr()}})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var got [][]byte
		b.Handle("s", collect(&mu, &got))
		return b, &mu, &got
	}

	b1, mu1, got1 := mkB("127.0.0.1:0")
	addr := b1.Addr()
	a.AddPeer("b", addr)
	if err := a.Send("b", "s", []byte("before")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pre-restart delivery", func() bool { mu1.Lock(); defer mu1.Unlock(); return len(*got1) == 1 })

	b1.Close()
	// A send while b is down sits in the queue or is retried by the pump —
	// unless the kernel had already accepted its bytes on the dying
	// connection, in which case it is the one frame a restart can lose.
	if err := a.Send("b", "s", []byte("during")); err != nil {
		t.Fatal(err)
	}

	b2, mu2, got2 := mkB(addr) // same address: a's pump redials it
	defer b2.Close()
	if err := a.Send("b", "s", []byte("after")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-restart delivery", func() bool {
		mu2.Lock()
		defer mu2.Unlock()
		return len(*got2) >= 1 && string((*got2)[len(*got2)-1]) == "after"
	})
	if a.Counters().Reconnects.Load() < 2 {
		t.Fatalf("reconnect counter %d, want >= 2", a.Counters().Reconnects.Load())
	}
}

// TestTCPGarbageTearsConnDown feeds raw garbage and a CRC-flipped frame to
// a listener and asserts the connection is dropped without dispatch, while
// a well-formed session still works afterwards.
func TestTCPGarbageTearsConnDown(t *testing.T) {
	srv, err := NewTCP(TCPConfig{ID: "srv", Cluster: "c", Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var mu sync.Mutex
	var got [][]byte
	srv.Handle("s", collect(&mu, &got))

	// Raw socket, no handshake: garbage bytes.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	buf := make([]byte, 1)
	raw.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server kept a garbage connection open")
	}
	raw.Close()

	// Handshake then a corrupted frame: conn must die at the bad frame.
	raw2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	helloFrame := mustFrame(t, helloStream, []byte(`{"cluster":"c","from":"evil"}`))
	raw2.Write(helloFrame)
	if _, _, err := ReadFrame(raw2, 0); err != nil { // server's hello reply
		t.Fatalf("handshake reply: %v", err)
	}
	good := mustFrame(t, "s", []byte("ok"))
	raw2.Write(good)
	bad := bytes.Clone(good)
	bad[len(bad)-1] ^= 0xFF
	raw2.Write(bad)
	raw2.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := raw2.Read(buf); err == nil {
		t.Fatal("server kept reading after a corrupt frame")
	}
	raw2.Close()

	waitFor(t, "the one good frame", func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 1 })
	mu.Lock()
	if string(got[0]) != "ok" {
		t.Fatalf("dispatched %q", got[0])
	}
	mu.Unlock()

	// A proper peer still gets through.
	ok, err := NewTCP(TCPConfig{ID: "ok", Cluster: "c", Peers: map[string]string{"srv": srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Close()
	if err := ok.Send("srv", "s", []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-garbage delivery", func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 2 })
}

func TestTCPSendToUnknownAndClosed(t *testing.T) {
	a, err := NewTCP(TCPConfig{ID: "a", Cluster: "c", Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("ghost", "s", nil); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("unknown peer: %v", err)
	}
	a.Close()
	if err := a.Send("ghost", "s", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
