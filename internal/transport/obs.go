package transport

import "socialchain/internal/obs"

// Register publishes the endpoint's traffic counters into an obs registry,
// so the per-test accounting that already existed becomes scrapeable at
// /metrics. The counters stay where they are — the registry samples them.
func (c *Counters) Register(reg *obs.Registry) {
	if c == nil {
		return
	}
	reg.CounterFunc("transport_bytes_sent_total", "Bytes written to the wire.", c.BytesSent.Load)
	reg.CounterFunc("transport_bytes_recv_total", "Bytes read from the wire.", c.BytesRecv.Load)
	reg.CounterFunc("transport_frames_sent_total", "Frames written to the wire.", c.FramesSent.Load)
	reg.CounterFunc("transport_frames_recv_total", "Frames read from the wire.", c.FramesRecv.Load)
	reg.CounterFunc("transport_reconnects_total", "Connections (re)established to peers.", c.Reconnects.Load)
	reg.CounterFunc("transport_drops_total", "Messages dropped: backpressure, missing handlers, torn connections.", c.Drops.Load)
}

// QueueDepths samples every peer's send-queue depth in frames — the
// backpressure picture /statusz reports.
func (t *TCP) QueueDepths() map[string]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]int, len(t.peers))
	for id, p := range t.peers {
		out[id] = len(p.queue)
	}
	return out
}

// ConnectedPeers counts peers with a live connection right now, the
// /healthz connectivity signal.
func (t *TCP) ConnectedPeers() int {
	t.mu.RLock()
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.RUnlock()
	n := 0
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			n++
		}
		p.mu.Unlock()
	}
	return n
}
