package chunker

// buzTable is a fixed table of 256 pseudo-random 32-bit values used by the
// buzhash rolling hash. Generated once from a xorshift32 stream seeded with
// 0x9e3779b9 so the chunker is fully deterministic across runs.
var buzTable = func() [256]uint32 {
	var t [256]uint32
	s := uint32(0x9e3779b9)
	for i := range t {
		// xorshift32
		s ^= s << 13
		s ^= s >> 17
		s ^= s << 5
		t[i] = s
	}
	return t
}()
