package chunker

import (
	"bytes"
	"testing"

	"socialchain/internal/sim"
)

func BenchmarkFixedChunker(b *testing.B) {
	data := sim.NewRNG(1).Bytes(4 << 20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ChunkAll(NewFixed(bytes.NewReader(data), DefaultChunkSize)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuzhashChunker(b *testing.B) {
	data := sim.NewRNG(1).Bytes(4 << 20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ChunkAll(NewBuzhash(bytes.NewReader(data))); err != nil {
			b.Fatal(err)
		}
	}
}
