package chunker

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"socialchain/internal/sim"
)

func reassemble(chunks [][]byte) []byte {
	var out []byte
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

func TestFixedExactMultiple(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 1024)
	chunks, err := ChunkAll(NewFixed(bytes.NewReader(data), 256))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 4 {
		t.Fatalf("got %d chunks, want 4", len(chunks))
	}
	for i, c := range chunks {
		if len(c) != 256 {
			t.Fatalf("chunk %d has %d bytes", i, len(c))
		}
	}
	if !bytes.Equal(reassemble(chunks), data) {
		t.Fatal("reassembly mismatch")
	}
}

func TestFixedShortTail(t *testing.T) {
	data := bytes.Repeat([]byte("y"), 1000)
	chunks, err := ChunkAll(NewFixed(bytes.NewReader(data), 256))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 4 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	if len(chunks[3]) != 1000-3*256 {
		t.Fatalf("tail chunk %d bytes", len(chunks[3]))
	}
}

func TestFixedEmptyInput(t *testing.T) {
	chunks, err := ChunkAll(NewFixed(bytes.NewReader(nil), 256))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 0 {
		t.Fatalf("empty input produced %d chunks", len(chunks))
	}
}

func TestFixedDefaultSize(t *testing.T) {
	c := NewFixed(bytes.NewReader(make([]byte, DefaultChunkSize+1)), 0)
	chunks, err := ChunkAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 || len(chunks[0]) != DefaultChunkSize {
		t.Fatalf("default size not applied: %d chunks, first %d bytes", len(chunks), len(chunks[0]))
	}
}

func TestFixedEOFAfterDone(t *testing.T) {
	c := NewFixed(bytes.NewReader([]byte("abc")), 2)
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatal("EOF not sticky")
	}
}

func TestFixedPropertyReassembly(t *testing.T) {
	err := quick.Check(func(data []byte, sizeSeed uint16) bool {
		size := int(sizeSeed)%1024 + 1
		chunks, err := ChunkAll(NewFixed(bytes.NewReader(data), size))
		if err != nil {
			return false
		}
		return bytes.Equal(reassemble(chunks), data)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuzhashReassembly(t *testing.T) {
	rng := sim.NewRNG(42)
	data := rng.Bytes(3 << 20) // 3 MiB
	chunks, err := ChunkAll(NewBuzhash(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("3 MiB produced only %d chunks", len(chunks))
	}
	if !bytes.Equal(reassemble(chunks), data) {
		t.Fatal("buzhash reassembly mismatch")
	}
}

func TestBuzhashRespectsBounds(t *testing.T) {
	rng := sim.NewRNG(7)
	data := rng.Bytes(4 << 20)
	min, max := 16*1024, 64*1024
	chunks, err := ChunkAll(NewBuzhashParams(bytes.NewReader(data), min, max, 1<<13-1))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range chunks {
		if i < len(chunks)-1 && len(c) < min {
			t.Fatalf("chunk %d below min: %d", i, len(c))
		}
		if len(c) > max {
			t.Fatalf("chunk %d above max: %d", i, len(c))
		}
	}
}

func TestBuzhashDeterministic(t *testing.T) {
	rng := sim.NewRNG(1)
	data := rng.Bytes(1 << 20)
	a, _ := ChunkAll(NewBuzhash(bytes.NewReader(data)))
	b, _ := ChunkAll(NewBuzhash(bytes.NewReader(data)))
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("chunk %d differs", i)
		}
	}
}

func TestBuzhashBoundaryStability(t *testing.T) {
	// Content-defined chunking: appending data must not change earlier
	// chunk boundaries (the property fixed-size chunking lacks).
	rng := sim.NewRNG(3)
	base := rng.Bytes(2 << 20)
	extended := append(append([]byte(nil), base...), rng.Bytes(512*1024)...)
	a, _ := ChunkAll(NewBuzhash(bytes.NewReader(base)))
	b, _ := ChunkAll(NewBuzhash(bytes.NewReader(extended)))
	if len(a) < 3 {
		t.Skip("not enough chunks to compare")
	}
	// All but the last chunk of the base should reappear unchanged.
	for i := 0; i < len(a)-1; i++ {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("boundary %d shifted after append", i)
		}
	}
}

func TestBuzhashSmallInput(t *testing.T) {
	data := []byte("tiny")
	chunks, err := ChunkAll(NewBuzhash(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 || !bytes.Equal(chunks[0], data) {
		t.Fatalf("small input mangled: %v", chunks)
	}
}

func TestBuzhashPropertyReassembly(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(seed int64, sizeSeed uint32) bool {
		size := int(sizeSeed % (1 << 20))
		data := sim.NewRNG(seed).Bytes(size)
		chunks, err := ChunkAll(NewBuzhashParams(bytes.NewReader(data), 4096, 16384, 1<<11-1))
		if err != nil {
			return false
		}
		return bytes.Equal(reassemble(chunks), data)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
