// Package chunker splits payload streams into blocks before they enter the
// Merkle DAG, matching IPFS's import pipeline. Two strategies are provided:
// fixed-size (IPFS's default 256 KiB splitter) and buzhash content-defined
// chunking, which resists boundary shift when data is edited.
package chunker

import (
	"errors"
	"io"
)

// DefaultChunkSize mirrors the IPFS default splitter size (256 KiB).
const DefaultChunkSize = 256 * 1024

// Chunker produces successive chunks of an input stream. Next returns
// io.EOF after the final chunk.
type Chunker interface {
	Next() ([]byte, error)
}

// Fixed is a fixed-size chunker.
type Fixed struct {
	r    io.Reader
	size int
	done bool
}

// NewFixed returns a chunker emitting size-byte chunks (last may be short).
// A non-positive size falls back to DefaultChunkSize.
func NewFixed(r io.Reader, size int) *Fixed {
	if size <= 0 {
		size = DefaultChunkSize
	}
	return &Fixed{r: r, size: size}
}

// Next implements Chunker.
func (c *Fixed) Next() ([]byte, error) {
	if c.done {
		return nil, io.EOF
	}
	buf := make([]byte, c.size)
	n, err := io.ReadFull(c.r, buf)
	switch {
	case err == io.EOF:
		c.done = true
		return nil, io.EOF
	case err == io.ErrUnexpectedEOF:
		c.done = true
		return buf[:n], nil
	case err != nil:
		return nil, err
	}
	return buf, nil
}

// Buzhash implements content-defined chunking with a 32-byte rolling hash
// window. Chunk boundaries are declared where the rolling hash matches a
// mask, with minimum and maximum chunk sizes as guard rails, following the
// go-ipfs buzhash chunker's structure.
type Buzhash struct {
	r    io.Reader
	min  int
	max  int
	mask uint32
	buf  []byte
	done bool
}

// Buzhash parameters equivalent to the IPFS defaults.
const (
	buzMin  = 128 * 1024
	buzMax  = 512 * 1024
	buzMask = 1<<17 - 1 // average chunk ~128 KiB past min
)

// NewBuzhash returns a content-defined chunker with default parameters.
func NewBuzhash(r io.Reader) *Buzhash {
	return NewBuzhashParams(r, buzMin, buzMax, buzMask)
}

// NewBuzhashParams returns a content-defined chunker with explicit minimum
// and maximum chunk sizes and boundary mask.
func NewBuzhashParams(r io.Reader, min, max int, mask uint32) *Buzhash {
	if min < 64 {
		min = 64
	}
	if max < min {
		max = min * 2
	}
	return &Buzhash{r: r, min: min, max: max, mask: mask}
}

// Next implements Chunker.
func (c *Buzhash) Next() ([]byte, error) {
	if c.done && len(c.buf) == 0 {
		return nil, io.EOF
	}
	// Fill the buffer up to max bytes.
	for !c.done && len(c.buf) < c.max {
		tmp := make([]byte, c.max-len(c.buf))
		n, err := c.r.Read(tmp)
		c.buf = append(c.buf, tmp[:n]...)
		if err == io.EOF {
			c.done = true
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if len(c.buf) == 0 {
		return nil, io.EOF
	}
	if len(c.buf) <= c.min {
		out := c.buf
		c.buf = nil
		return out, nil
	}
	cut := c.findBoundary()
	out := c.buf[:cut:cut]
	c.buf = c.buf[cut:]
	return out, nil
}

const buzWindow = 32

// findBoundary scans for the first rolling-hash match past the minimum
// size; it returns the buffer length when no boundary is found.
func (c *Buzhash) findBoundary() int {
	b := c.buf
	end := len(b)
	if end > c.max {
		end = c.max
	}
	start := c.min
	if start < buzWindow {
		start = buzWindow
	}
	if start >= end {
		return end
	}
	var h uint32
	for i := start - buzWindow; i < start; i++ {
		h = rotl(h, 1) ^ buzTable[b[i]]
	}
	for i := start; i < end; i++ {
		if h&c.mask == 0 {
			return i
		}
		h = rotl(h, 1) ^ rotl(buzTable[b[i-buzWindow]], buzWindow) ^ buzTable[b[i]]
	}
	return end
}

func rotl(v uint32, n uint) uint32 { return v<<(n%32) | v>>(32-n%32) }

// ChunkAll drains a chunker into a slice of chunks.
func ChunkAll(c Chunker) ([][]byte, error) {
	var out [][]byte
	for {
		chunk, err := c.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if len(chunk) > 0 {
			out = append(out, chunk)
		}
	}
}
