package query

import (
	"container/list"
	"sync"

	"socialchain/internal/metrics"
	"socialchain/internal/obs"
)

// payloadCache is a size-bounded, CID-keyed LRU over verified payloads.
// The retrieval pipeline reads through it: a hit skips the whole IPFS
// executor (DHT lookup, bitswap, DAG reassembly); only payloads that
// passed hash verification are admitted, so a hit can serve bytes without
// re-fetching while the caller still re-verifies against the on-chain
// hash it resolved for this transaction. Payloads larger than the cache
// capacity are never admitted (they would evict everything for one entry).
type payloadCache struct {
	mu       sync.Mutex
	capBytes int
	size     int
	order    *list.List // front = most recently used
	items    map[string]*list.Element

	hits      metrics.Counter
	misses    metrics.Counter
	evictions metrics.Counter
}

type cacheEntry struct {
	cid     string
	payload []byte
}

// newPayloadCache returns a cache bounded to capBytes of payload.
func newPayloadCache(capBytes int) *payloadCache {
	return &payloadCache{
		capBytes: capBytes,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the cached payload for cid, promoting it to most recently
// used. The returned slice is shared: callers must not mutate it.
func (c *payloadCache) get(cid string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[cid]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).payload, true
}

// put admits a payload, evicting least-recently-used entries to fit.
func (c *payloadCache) put(cid string, payload []byte) {
	if len(payload) > c.capBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[cid]; ok {
		// Same CID means same content (it is a hash); just promote.
		c.order.MoveToFront(el)
		return
	}
	for c.size+len(payload) > c.capBytes {
		back := c.order.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.items, victim.cid)
		c.size -= len(victim.payload)
		c.evictions.Inc()
	}
	c.items[cid] = c.order.PushFront(&cacheEntry{cid: cid, payload: payload})
	c.size += len(payload)
}

// CacheStats reports payload-cache effectiveness.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Bytes is the current cached payload volume; Entries the entry count.
	Bytes   int
	Entries int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// RegisterObs publishes the payload cache's counters and hit rate into an
// obs registry (no-op without a configured cache), so retrieval cache
// effectiveness shows up at /metrics beside the write-path series.
func (e *Engine) RegisterObs(reg *obs.Registry) {
	c := e.cache
	if c == nil {
		return
	}
	reg.CounterFunc("payload_cache_hits_total", "Payload retrievals served from the verified LRU cache.", c.hits.Load)
	reg.CounterFunc("payload_cache_misses_total", "Payload retrievals that went through the IPFS executor.", c.misses.Load)
	reg.CounterFunc("payload_cache_evictions_total", "Payloads evicted from the cache.", c.evictions.Load)
	reg.GaugeFunc("payload_cache_bytes", "Current cached payload volume in bytes.", func() float64 {
		return float64(e.CacheStats().Bytes)
	})
}

func (c *payloadCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     c.size,
		Entries:   len(c.items),
	}
}
