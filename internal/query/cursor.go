package query

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
)

// Cursor is a resumable position in a cross-channel indexed retrieval: the
// channel the iteration is currently on and the statedb index token within
// that channel's world state. Cursors make pagination opaque to callers —
// a client pages through "all records with label X" without knowing how
// many channels hold them or where one channel's index ends and the next
// begins. The zero Cursor (channel 0, empty token) is the start of the
// iteration and encodes to the empty string, so single-channel pagination
// tokens stay as cheap as they were before sharding.
type Cursor struct {
	// Channel is the index of the channel being iterated (engine gateway
	// order, which follows fabric.Network channel order).
	Channel int
	// Token is the statedb.IterIndex continuation token within that
	// channel ("" = start of the channel's index).
	Token string
}

// Encode renders the cursor as an opaque URL-safe string. The zero cursor
// encodes to "".
func (c Cursor) Encode() string {
	if c.Channel == 0 && c.Token == "" {
		return ""
	}
	return base64.RawURLEncoding.EncodeToString([]byte(strconv.Itoa(c.Channel) + "|" + c.Token))
}

// DecodeCursor parses an encoded cursor. "" is the zero cursor; anything
// else must round-trip through Cursor.Encode.
func DecodeCursor(s string) (Cursor, error) {
	if s == "" {
		return Cursor{}, nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return Cursor{}, fmt.Errorf("query: bad cursor: %w", err)
	}
	chStr, token, ok := strings.Cut(string(raw), "|")
	if !ok {
		return Cursor{}, fmt.Errorf("query: bad cursor %q: no channel separator", s)
	}
	ch, err := strconv.Atoi(chStr)
	if err != nil || ch < 0 {
		return Cursor{}, fmt.Errorf("query: bad cursor %q: invalid channel %q", s, chStr)
	}
	return Cursor{Channel: ch, Token: token}, nil
}
