// Package query implements the paper's query engine (Figure 1, steps A-D):
// a query processor that routes requests to the blockchain query executor
// (on-chain metadata, provenance, conditional queries) and the database
// query executor (raw payloads from IPFS by CID), and verifies every
// retrieved payload against its on-chain hash before returning it.
package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"socialchain/internal/cid"
	"socialchain/internal/contracts"
	"socialchain/internal/fabric"
	"socialchain/internal/ipfs"
	"socialchain/internal/provenance"
	"socialchain/internal/statedb"
)

// Engine couples a blockchain gateway with an IPFS node.
type Engine struct {
	gw    *fabric.Gateway
	store *ipfs.Node
	// cache is the optional CID-keyed read-through payload cache.
	cache *payloadCache
	// workers bounds GetMany's fan-out (DefaultFetchWorkers when 0).
	workers int
}

// DefaultFetchWorkers bounds GetMany's concurrent fetches when the engine
// was not configured with WithWorkers.
const DefaultFetchWorkers = 8

// NewEngine builds a query engine.
func NewEngine(gw *fabric.Gateway, store *ipfs.Node) *Engine {
	return &Engine{gw: gw, store: store}
}

// WithPayloadCache enables a read-through payload cache bounded to
// capBytes: retrievals of a CID already fetched and verified skip the
// IPFS executor entirely. Returns the engine for chaining.
func (e *Engine) WithPayloadCache(capBytes int) *Engine {
	if capBytes > 0 {
		e.cache = newPayloadCache(capBytes)
	}
	return e
}

// WithWorkers sets the GetMany worker-pool bound. Returns the engine for
// chaining.
func (e *Engine) WithWorkers(n int) *Engine {
	e.workers = n
	return e
}

// CacheStats reports payload-cache effectiveness (zero value when no
// cache is configured).
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// Kind routes a Request.
type Kind int

// Request kinds, one per executor path.
const (
	// ByTxID fetches one record and its payload.
	ByTxID Kind = iota
	// ByLabel lists records whose primary label matches.
	ByLabel
	// BySource lists records submitted by one source.
	BySource
	// ByCamera lists records captured by one camera.
	ByCamera
	// BySelector runs a rich JSON selector over records.
	BySelector
	// ProvenanceOf walks a record's source chain.
	ProvenanceOf
)

// Request is a parsed query for the processor.
type Request struct {
	Kind     Kind
	Value    string           // tx id, label, source or camera
	Selector statedb.Selector // for BySelector
	// FetchPayload also retrieves and verifies raw bytes from IPFS (only
	// meaningful for ByTxID).
	FetchPayload bool
}

// Timing breaks a query's latency into its executor components, the
// quantities Figure 6 plots.
type Timing struct {
	// Blockchain is time spent in the blockchain query executor.
	Blockchain time.Duration
	// IPFS is time spent in the database (IPFS) query executor.
	IPFS time.Duration
	// Verify is hash-integrity checking time.
	Verify time.Duration
}

// Total returns the summed latency.
func (t Timing) Total() time.Duration { return t.Blockchain + t.IPFS + t.Verify }

// Result is the processor's answer.
type Result struct {
	Records []contracts.DataRecord
	// Payload is the verified raw data (ByTxID with FetchPayload).
	Payload []byte
	// Verified reports that the payload matched its on-chain hash.
	Verified bool
	Timing   Timing
}

// Execute routes a request to its executors, as the paper's query processor
// does.
func (e *Engine) Execute(req Request) (*Result, error) {
	switch req.Kind {
	case ByTxID:
		if req.FetchPayload {
			return e.Data(req.Value)
		}
		rec, timing, err := e.metadataTimed(req.Value)
		if err != nil {
			return nil, err
		}
		return &Result{Records: []contracts.DataRecord{rec}, Timing: timing}, nil
	case ByLabel:
		return e.listQuery("queryByLabel", req.Value)
	case BySource:
		return e.listQuery("queryBySource", req.Value)
	case ByCamera:
		return e.listQuery("queryByCamera", req.Value)
	case BySelector:
		sel, err := json.Marshal(req.Selector)
		if err != nil {
			return nil, err
		}
		return e.listQuery("querySelector", string(sel))
	case ProvenanceOf:
		recs, err := e.Provenance(req.Value)
		if err != nil {
			return nil, err
		}
		return &Result{Records: recs}, nil
	default:
		return nil, fmt.Errorf("query: unknown request kind %d", req.Kind)
	}
}

// Metadata fetches one on-chain record (blockchain executor only).
func (e *Engine) Metadata(txID string) (contracts.DataRecord, error) {
	rec, _, err := e.metadataTimed(txID)
	return rec, err
}

func (e *Engine) metadataTimed(txID string) (contracts.DataRecord, Timing, error) {
	var timing Timing
	start := time.Now()
	raw, err := e.gw.Evaluate(contracts.DataCC, "getData", []byte(txID))
	timing.Blockchain = time.Since(start)
	if err != nil {
		return contracts.DataRecord{}, timing, err
	}
	var rec contracts.DataRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return contracts.DataRecord{}, timing, fmt.Errorf("query: corrupt record: %w", err)
	}
	return rec, timing, nil
}

// Data fetches a record's metadata from the blockchain, its payload from
// IPFS, and verifies the payload hash — the full retrieval path of
// Figure 1 (steps A-D).
func (e *Engine) Data(txID string) (*Result, error) {
	rec, timing, err := e.metadataTimed(txID)
	if err != nil {
		return nil, err
	}
	payload, _, verr, err := e.fetchVerified(&rec, &timing)
	if err != nil {
		return nil, err
	}
	if verr != nil {
		return &Result{Records: []contracts.DataRecord{rec}, Payload: payload, Verified: false, Timing: timing}, verr
	}
	return &Result{Records: []contracts.DataRecord{rec}, Payload: payload, Verified: true, Timing: timing}, nil
}

// fetchVerified runs the database (IPFS) executor for one record through
// the payload cache: a hit serves the bytes without touching IPFS; a miss
// fetches and, when the hash checks out, admits the payload. Verification
// against the record's on-chain hash always runs. verr reports a hash
// mismatch (payload still returned); err reports fetch failure.
func (e *Engine) fetchVerified(rec *contracts.DataRecord, timing *Timing) (payload []byte, cached bool, verr, err error) {
	c, err := cid.Parse(rec.CID)
	if err != nil {
		return nil, false, nil, fmt.Errorf("query: record %s carries bad cid: %w", rec.TxID, err)
	}
	start := time.Now()
	if e.cache != nil {
		payload, cached = e.cache.get(rec.CID)
	}
	if !cached {
		payload, err = e.store.Get(c)
	}
	timing.IPFS = time.Since(start)
	if err != nil {
		return nil, false, nil, fmt.Errorf("query: ipfs fetch for %s: %w", rec.TxID, err)
	}
	start = time.Now()
	verr = provenance.VerifyPayload(rec, payload)
	timing.Verify = time.Since(start)
	if verr == nil && !cached && e.cache != nil {
		e.cache.put(rec.CID, payload)
	}
	return payload, cached, verr, nil
}

// BatchItem is one element of a GetMany response. Err carries the item's
// failure (metadata lookup, fetch, or ErrNotVerified on hash mismatch);
// the batch itself never fails as a whole.
type BatchItem struct {
	TxID     string
	Record   contracts.DataRecord
	Payload  []byte
	Verified bool
	// FromCache marks payloads served by the read-through cache.
	FromCache bool
	Timing    Timing
	Err       error
}

// GetMany runs the full retrieval path for a batch of transaction IDs,
// fanning metadata lookup, payload fetch and hash verification across a
// bounded worker pool — the batch counterpart of Data. workers <= 0 uses
// the engine's configured bound (WithWorkers, default DefaultFetchWorkers);
// results are positionally aligned with txIDs.
func (e *Engine) GetMany(txIDs []string, workers int) []BatchItem {
	if workers <= 0 {
		workers = e.workers
	}
	if workers <= 0 {
		workers = DefaultFetchWorkers
	}
	if workers > len(txIDs) {
		workers = len(txIDs)
	}
	out := make([]BatchItem, len(txIDs))
	if len(txIDs) == 0 {
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = e.getOne(txIDs[i])
			}
		}()
	}
	for i := range txIDs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// getOne is one worker's retrieval of one transaction.
func (e *Engine) getOne(txID string) BatchItem {
	item := BatchItem{TxID: txID}
	rec, timing, err := e.metadataTimed(txID)
	item.Timing = timing
	if err != nil {
		item.Err = err
		return item
	}
	item.Record = rec
	payload, cached, verr, err := e.fetchVerified(&rec, &item.Timing)
	if err != nil {
		item.Err = err
		return item
	}
	item.Payload = payload
	item.FromCache = cached
	if verr != nil {
		item.Err = fmt.Errorf("%w: %v", ErrNotVerified, verr)
		return item
	}
	item.Verified = true
	return item
}

// PageResult is one page of an indexed metadata query.
type PageResult struct {
	Records []contracts.DataRecord
	// Next resumes the following page; empty when exhausted.
	Next   string
	Timing Timing
}

// Paged runs one page of a secondary-index query against the data
// chaincode (contracts.IndexLabel and friends): records whose indexed
// value begins with value, in (value, key) order, at most limit per page.
// Pass the previous page's Next as token to continue.
func (e *Engine) Paged(index, value string, limit int, token string) (*PageResult, error) {
	start := time.Now()
	raw, err := e.gw.Evaluate(contracts.DataCC, "queryPage",
		[]byte(index), []byte(value), []byte(strconv.Itoa(limit)), []byte(token))
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	var page contracts.RecordPage
	if err := json.Unmarshal(raw, &page); err != nil {
		return nil, fmt.Errorf("query: corrupt page: %w", err)
	}
	out := &PageResult{Next: page.Next, Timing: Timing{Blockchain: elapsed}}
	out.Records = make([]contracts.DataRecord, 0, len(page.Records))
	for _, r := range page.Records {
		var rec contracts.DataRecord
		if err := json.Unmarshal(r, &rec); err != nil {
			return nil, fmt.Errorf("query: corrupt record in page: %w", err)
		}
		out.Records = append(out.Records, rec)
	}
	return out, nil
}

// listQuery runs a list-returning chaincode query.
func (e *Engine) listQuery(fn, arg string) (*Result, error) {
	start := time.Now()
	raw, err := e.gw.Evaluate(contracts.DataCC, fn, []byte(arg))
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	var rawRecs []json.RawMessage
	if err := json.Unmarshal(raw, &rawRecs); err != nil {
		return nil, fmt.Errorf("query: corrupt list: %w", err)
	}
	recs := make([]contracts.DataRecord, 0, len(rawRecs))
	for _, r := range rawRecs {
		var rec contracts.DataRecord
		if err := json.Unmarshal(r, &rec); err != nil {
			return nil, fmt.Errorf("query: corrupt record in list: %w", err)
		}
		recs = append(recs, rec)
	}
	return &Result{Records: recs, Timing: Timing{Blockchain: elapsed}}, nil
}

// Provenance fetches and verifies a record's source chain (newest first).
func (e *Engine) Provenance(txID string) ([]contracts.DataRecord, error) {
	raw, err := e.gw.Evaluate(contracts.DataCC, "getProvenance", []byte(txID))
	if err != nil {
		return nil, err
	}
	var rawRecs []json.RawMessage
	if err := json.Unmarshal(raw, &rawRecs); err != nil {
		return nil, err
	}
	chain := make([]contracts.DataRecord, 0, len(rawRecs))
	for _, r := range rawRecs {
		var rec contracts.DataRecord
		if err := json.Unmarshal(r, &rec); err != nil {
			return nil, err
		}
		chain = append(chain, rec)
	}
	if err := provenance.VerifyChain(chain); err != nil {
		return chain, err
	}
	return chain, nil
}

// ErrNotVerified marks retrievals whose payload failed the integrity check.
var ErrNotVerified = errors.New("query: retrieved payload failed verification")
