// Package query implements the paper's query engine (Figure 1, steps A-D):
// a query processor that routes requests to the blockchain query executor
// (on-chain metadata, provenance, conditional queries) and the database
// query executor (raw payloads from IPFS by CID), and verifies every
// retrieved payload against its on-chain hash before returning it.
package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"socialchain/internal/cid"
	"socialchain/internal/contracts"
	"socialchain/internal/fabric"
	"socialchain/internal/ipfs"
	"socialchain/internal/provenance"
	"socialchain/internal/statedb"
)

// Engine couples a blockchain gateway with an IPFS node.
type Engine struct {
	gw    *fabric.Gateway
	store *ipfs.Node
}

// NewEngine builds a query engine.
func NewEngine(gw *fabric.Gateway, store *ipfs.Node) *Engine {
	return &Engine{gw: gw, store: store}
}

// Kind routes a Request.
type Kind int

// Request kinds, one per executor path.
const (
	// ByTxID fetches one record and its payload.
	ByTxID Kind = iota
	// ByLabel lists records whose primary label matches.
	ByLabel
	// BySource lists records submitted by one source.
	BySource
	// ByCamera lists records captured by one camera.
	ByCamera
	// BySelector runs a rich JSON selector over records.
	BySelector
	// ProvenanceOf walks a record's source chain.
	ProvenanceOf
)

// Request is a parsed query for the processor.
type Request struct {
	Kind     Kind
	Value    string           // tx id, label, source or camera
	Selector statedb.Selector // for BySelector
	// FetchPayload also retrieves and verifies raw bytes from IPFS (only
	// meaningful for ByTxID).
	FetchPayload bool
}

// Timing breaks a query's latency into its executor components, the
// quantities Figure 6 plots.
type Timing struct {
	// Blockchain is time spent in the blockchain query executor.
	Blockchain time.Duration
	// IPFS is time spent in the database (IPFS) query executor.
	IPFS time.Duration
	// Verify is hash-integrity checking time.
	Verify time.Duration
}

// Total returns the summed latency.
func (t Timing) Total() time.Duration { return t.Blockchain + t.IPFS + t.Verify }

// Result is the processor's answer.
type Result struct {
	Records []contracts.DataRecord
	// Payload is the verified raw data (ByTxID with FetchPayload).
	Payload []byte
	// Verified reports that the payload matched its on-chain hash.
	Verified bool
	Timing   Timing
}

// Execute routes a request to its executors, as the paper's query processor
// does.
func (e *Engine) Execute(req Request) (*Result, error) {
	switch req.Kind {
	case ByTxID:
		if req.FetchPayload {
			return e.Data(req.Value)
		}
		rec, timing, err := e.metadataTimed(req.Value)
		if err != nil {
			return nil, err
		}
		return &Result{Records: []contracts.DataRecord{rec}, Timing: timing}, nil
	case ByLabel:
		return e.listQuery("queryByLabel", req.Value)
	case BySource:
		return e.listQuery("queryBySource", req.Value)
	case ByCamera:
		return e.listQuery("queryByCamera", req.Value)
	case BySelector:
		sel, err := json.Marshal(req.Selector)
		if err != nil {
			return nil, err
		}
		return e.listQuery("querySelector", string(sel))
	case ProvenanceOf:
		recs, err := e.Provenance(req.Value)
		if err != nil {
			return nil, err
		}
		return &Result{Records: recs}, nil
	default:
		return nil, fmt.Errorf("query: unknown request kind %d", req.Kind)
	}
}

// Metadata fetches one on-chain record (blockchain executor only).
func (e *Engine) Metadata(txID string) (contracts.DataRecord, error) {
	rec, _, err := e.metadataTimed(txID)
	return rec, err
}

func (e *Engine) metadataTimed(txID string) (contracts.DataRecord, Timing, error) {
	var timing Timing
	start := time.Now()
	raw, err := e.gw.Evaluate(contracts.DataCC, "getData", []byte(txID))
	timing.Blockchain = time.Since(start)
	if err != nil {
		return contracts.DataRecord{}, timing, err
	}
	var rec contracts.DataRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return contracts.DataRecord{}, timing, fmt.Errorf("query: corrupt record: %w", err)
	}
	return rec, timing, nil
}

// Data fetches a record's metadata from the blockchain, its payload from
// IPFS, and verifies the payload hash — the full retrieval path of
// Figure 1 (steps A-D).
func (e *Engine) Data(txID string) (*Result, error) {
	rec, timing, err := e.metadataTimed(txID)
	if err != nil {
		return nil, err
	}
	c, err := cid.Parse(rec.CID)
	if err != nil {
		return nil, fmt.Errorf("query: record %s carries bad cid: %w", txID, err)
	}
	start := time.Now()
	payload, err := e.store.Get(c)
	timing.IPFS = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("query: ipfs fetch for %s: %w", txID, err)
	}
	start = time.Now()
	verr := provenance.VerifyPayload(&rec, payload)
	timing.Verify = time.Since(start)
	if verr != nil {
		return &Result{Records: []contracts.DataRecord{rec}, Payload: payload, Verified: false, Timing: timing}, verr
	}
	return &Result{Records: []contracts.DataRecord{rec}, Payload: payload, Verified: true, Timing: timing}, nil
}

// listQuery runs a list-returning chaincode query.
func (e *Engine) listQuery(fn, arg string) (*Result, error) {
	start := time.Now()
	raw, err := e.gw.Evaluate(contracts.DataCC, fn, []byte(arg))
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	var rawRecs []json.RawMessage
	if err := json.Unmarshal(raw, &rawRecs); err != nil {
		return nil, fmt.Errorf("query: corrupt list: %w", err)
	}
	recs := make([]contracts.DataRecord, 0, len(rawRecs))
	for _, r := range rawRecs {
		var rec contracts.DataRecord
		if err := json.Unmarshal(r, &rec); err != nil {
			return nil, fmt.Errorf("query: corrupt record in list: %w", err)
		}
		recs = append(recs, rec)
	}
	return &Result{Records: recs, Timing: Timing{Blockchain: elapsed}}, nil
}

// Provenance fetches and verifies a record's source chain (newest first).
func (e *Engine) Provenance(txID string) ([]contracts.DataRecord, error) {
	raw, err := e.gw.Evaluate(contracts.DataCC, "getProvenance", []byte(txID))
	if err != nil {
		return nil, err
	}
	var rawRecs []json.RawMessage
	if err := json.Unmarshal(raw, &rawRecs); err != nil {
		return nil, err
	}
	chain := make([]contracts.DataRecord, 0, len(rawRecs))
	for _, r := range rawRecs {
		var rec contracts.DataRecord
		if err := json.Unmarshal(r, &rec); err != nil {
			return nil, err
		}
		chain = append(chain, rec)
	}
	if err := provenance.VerifyChain(chain); err != nil {
		return chain, err
	}
	return chain, nil
}

// ErrNotVerified marks retrievals whose payload failed the integrity check.
var ErrNotVerified = errors.New("query: retrieved payload failed verification")
