// Package query implements the paper's query engine (Figure 1, steps A-D):
// a query processor that routes requests to the blockchain query executor
// (on-chain metadata, provenance, conditional queries) and the database
// query executor (raw payloads from IPFS by CID), and verifies every
// retrieved payload against its on-chain hash before returning it.
//
// On a multi-channel (sharded) deployment the engine holds one gateway per
// channel and scatter-gathers: point lookups probe channels until the
// owning one answers, list queries fan out over every channel and merge,
// and indexed pagination walks the channels in order behind an opaque
// Cursor that encodes both the channel and the index position within it.
// A single-gateway engine reduces exactly to the pre-sharding behaviour.
package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"socialchain/internal/cid"
	"socialchain/internal/contracts"
	"socialchain/internal/fabric"
	"socialchain/internal/ipfs"
	"socialchain/internal/provenance"
	"socialchain/internal/statedb"
)

// Engine couples one blockchain gateway per channel with an IPFS node.
type Engine struct {
	gws   []*fabric.Gateway
	store *ipfs.Node
	// cache is the optional CID-keyed read-through payload cache.
	cache *payloadCache
	// workers bounds GetMany's fan-out (DefaultFetchWorkers when 0).
	workers int
}

// DefaultFetchWorkers bounds GetMany's concurrent fetches when the engine
// was not configured with WithWorkers.
const DefaultFetchWorkers = 8

// NewEngine builds a single-channel query engine.
func NewEngine(gw *fabric.Gateway, store *ipfs.Node) *Engine {
	return &Engine{gws: []*fabric.Gateway{gw}, store: store}
}

// NewShardedEngine builds a query engine over one gateway per channel (in
// channel order — cursors encode positions by that order). Point lookups
// probe the channels, list queries scatter-gather across all of them.
// At least one gateway is required.
func NewShardedEngine(gws []*fabric.Gateway, store *ipfs.Node) (*Engine, error) {
	if len(gws) == 0 {
		return nil, errors.New("query: sharded engine needs at least one gateway")
	}
	return &Engine{gws: append([]*fabric.Gateway(nil), gws...), store: store}, nil
}

// Channels returns how many channels the engine spans.
func (e *Engine) Channels() int { return len(e.gws) }

// WithPayloadCache enables a read-through payload cache bounded to
// capBytes: retrievals of a CID already fetched and verified skip the
// IPFS executor entirely. Returns the engine for chaining.
func (e *Engine) WithPayloadCache(capBytes int) *Engine {
	if capBytes > 0 {
		e.cache = newPayloadCache(capBytes)
	}
	return e
}

// WithWorkers sets the GetMany worker-pool bound. Returns the engine for
// chaining.
func (e *Engine) WithWorkers(n int) *Engine {
	e.workers = n
	return e
}

// CacheStats reports payload-cache effectiveness (zero value when no
// cache is configured).
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// Kind routes a Request.
type Kind int

// Request kinds, one per executor path.
const (
	// ByTxID fetches one record and its payload.
	ByTxID Kind = iota
	// ByLabel lists records whose primary label matches.
	ByLabel
	// BySource lists records submitted by one source.
	BySource
	// ByCamera lists records captured by one camera.
	ByCamera
	// BySelector runs a rich JSON selector over records.
	BySelector
	// ProvenanceOf walks a record's source chain.
	ProvenanceOf
	// ByIndex pages through a statedb secondary index (Request.Index,
	// Limit, Cursor); Result.Next resumes the following page across
	// channel boundaries.
	ByIndex
	// ByTxIDs runs the batch retrieval path (Request.Values) and returns
	// per-item results in Result.Items.
	ByTxIDs
)

// Request is a parsed query for the processor.
type Request struct {
	Kind     Kind
	Value    string           // tx id, label, source or camera
	Selector statedb.Selector // for BySelector
	// FetchPayload also retrieves and verifies raw bytes from IPFS (only
	// meaningful for ByTxID).
	FetchPayload bool
	// Values are the transaction IDs of a ByTxIDs batch request.
	Values []string
	// Index names the statedb secondary index of a ByIndex request
	// (contracts.IndexLabel and friends); Value narrows it by prefix.
	Index string
	// Limit bounds a ByIndex page (default 100).
	Limit int
	// Cursor resumes a ByIndex iteration from a previous Result.Next
	// ("" = start). Cursors are opaque; they encode the channel and the
	// index position within it.
	Cursor string
}

// Timing breaks a query's latency into its executor components, the
// quantities Figure 6 plots.
type Timing struct {
	// Blockchain is time spent in the blockchain query executor.
	Blockchain time.Duration
	// IPFS is time spent in the database (IPFS) query executor.
	IPFS time.Duration
	// Verify is hash-integrity checking time.
	Verify time.Duration
}

// Total returns the summed latency.
func (t Timing) Total() time.Duration { return t.Blockchain + t.IPFS + t.Verify }

// Result is the processor's answer.
type Result struct {
	Records []contracts.DataRecord
	// Payload is the verified raw data (ByTxID with FetchPayload).
	Payload []byte
	// Verified reports that the payload matched its on-chain hash.
	Verified bool
	// Items are the per-transaction results of a ByTxIDs batch request.
	Items []BatchItem
	// Next resumes the following page of a ByIndex request; empty when
	// the iteration is exhausted across every channel.
	Next   string
	Timing Timing
}

// Execute routes a request to its executors, as the paper's query processor
// does.
func (e *Engine) Execute(req Request) (*Result, error) {
	switch req.Kind {
	case ByTxID:
		if req.FetchPayload {
			return e.Data(req.Value)
		}
		rec, timing, err := e.metadataTimed(req.Value)
		if err != nil {
			return nil, err
		}
		return &Result{Records: []contracts.DataRecord{rec}, Timing: timing}, nil
	case ByLabel:
		return e.listQuery("queryByLabel", req.Value)
	case BySource:
		return e.listQuery("queryBySource", req.Value)
	case ByCamera:
		return e.listQuery("queryByCamera", req.Value)
	case BySelector:
		sel, err := json.Marshal(req.Selector)
		if err != nil {
			return nil, err
		}
		return e.listQuery("querySelector", string(sel))
	case ProvenanceOf:
		recs, err := e.Provenance(req.Value)
		if err != nil {
			return nil, err
		}
		return &Result{Records: recs}, nil
	case ByIndex:
		page, err := e.Page(req.Index, req.Value, req.Limit, req.Cursor)
		if err != nil {
			return nil, err
		}
		return &Result{Records: page.Records, Next: page.Next, Timing: page.Timing}, nil
	case ByTxIDs:
		return &Result{Items: e.GetMany(req.Values, 0)}, nil
	default:
		return nil, fmt.Errorf("query: unknown request kind %d", req.Kind)
	}
}

// Metadata fetches one on-chain record (blockchain executor only).
func (e *Engine) Metadata(txID string) (contracts.DataRecord, error) {
	rec, _, err := e.metadataTimed(txID)
	return rec, err
}

// metadataTimed probes the channels for a record. A record lives on
// exactly one channel (its writer's home channel), but transaction IDs are
// random nonces that carry no routing information, so the lookup asks each
// channel in turn and keeps the first answer. Timing accumulates over the
// probes — that cost is what the channel-scoped write path avoids.
func (e *Engine) metadataTimed(txID string) (contracts.DataRecord, Timing, error) {
	var timing Timing
	var lastErr error
	for _, gw := range e.gws {
		start := time.Now()
		raw, err := gw.Evaluate(contracts.DataCC, "getData", []byte(txID))
		timing.Blockchain += time.Since(start)
		if err != nil {
			lastErr = err
			continue
		}
		var rec contracts.DataRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return contracts.DataRecord{}, timing, fmt.Errorf("query: corrupt record: %w", err)
		}
		return rec, timing, nil
	}
	return contracts.DataRecord{}, timing, lastErr
}

// Data fetches a record's metadata from the blockchain, its payload from
// IPFS, and verifies the payload hash — the full retrieval path of
// Figure 1 (steps A-D).
func (e *Engine) Data(txID string) (*Result, error) {
	rec, timing, err := e.metadataTimed(txID)
	if err != nil {
		return nil, err
	}
	payload, _, verr, err := e.fetchVerified(&rec, &timing)
	if err != nil {
		return nil, err
	}
	if verr != nil {
		return &Result{Records: []contracts.DataRecord{rec}, Payload: payload, Verified: false, Timing: timing}, verr
	}
	return &Result{Records: []contracts.DataRecord{rec}, Payload: payload, Verified: true, Timing: timing}, nil
}

// fetchVerified runs the database (IPFS) executor for one record through
// the payload cache: a hit serves the bytes without touching IPFS; a miss
// fetches and, when the hash checks out, admits the payload. Verification
// against the record's on-chain hash always runs. verr reports a hash
// mismatch (payload still returned); err reports fetch failure.
func (e *Engine) fetchVerified(rec *contracts.DataRecord, timing *Timing) (payload []byte, cached bool, verr, err error) {
	c, err := cid.Parse(rec.CID)
	if err != nil {
		return nil, false, nil, fmt.Errorf("query: record %s carries bad cid: %w", rec.TxID, err)
	}
	start := time.Now()
	if e.cache != nil {
		payload, cached = e.cache.get(rec.CID)
	}
	if !cached {
		payload, err = e.store.Get(c)
	}
	timing.IPFS = time.Since(start)
	if err != nil {
		return nil, false, nil, fmt.Errorf("query: ipfs fetch for %s: %w", rec.TxID, err)
	}
	start = time.Now()
	verr = provenance.VerifyPayload(rec, payload)
	timing.Verify = time.Since(start)
	if verr == nil && !cached && e.cache != nil {
		e.cache.put(rec.CID, payload)
	}
	return payload, cached, verr, nil
}

// BatchItem is one element of a GetMany response. Err carries the item's
// failure (metadata lookup, fetch, or ErrNotVerified on hash mismatch);
// the batch itself never fails as a whole.
type BatchItem struct {
	TxID     string
	Record   contracts.DataRecord
	Payload  []byte
	Verified bool
	// FromCache marks payloads served by the read-through cache.
	FromCache bool
	Timing    Timing
	Err       error
}

// GetMany runs the full retrieval path for a batch of transaction IDs,
// fanning metadata lookup (channel probe, on sharded engines), payload
// fetch and hash verification across a bounded worker pool — the batch
// counterpart of Data. workers <= 0 uses the engine's configured bound
// (WithWorkers, default DefaultFetchWorkers); results are positionally
// aligned with txIDs.
func (e *Engine) GetMany(txIDs []string, workers int) []BatchItem {
	if workers <= 0 {
		workers = e.workers
	}
	if workers <= 0 {
		workers = DefaultFetchWorkers
	}
	if workers > len(txIDs) {
		workers = len(txIDs)
	}
	out := make([]BatchItem, len(txIDs))
	if len(txIDs) == 0 {
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = e.getOne(txIDs[i])
			}
		}()
	}
	for i := range txIDs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// getOne is one worker's retrieval of one transaction.
func (e *Engine) getOne(txID string) BatchItem {
	item := BatchItem{TxID: txID}
	rec, timing, err := e.metadataTimed(txID)
	item.Timing = timing
	if err != nil {
		item.Err = err
		return item
	}
	item.Record = rec
	payload, cached, verr, err := e.fetchVerified(&rec, &item.Timing)
	if err != nil {
		item.Err = err
		return item
	}
	item.Payload = payload
	item.FromCache = cached
	if verr != nil {
		item.Err = fmt.Errorf("%w: %v", ErrNotVerified, verr)
		return item
	}
	item.Verified = true
	return item
}

// PageResult is one page of an indexed metadata query.
type PageResult struct {
	Records []contracts.DataRecord
	// Next resumes the following page; empty when exhausted. On a sharded
	// engine the cursor carries the iteration across channel boundaries —
	// callers just keep passing it back.
	Next   string
	Timing Timing
}

// Page runs one page of a secondary-index query (contracts.IndexLabel and
// friends): records whose indexed value begins with value, in (value, key)
// order within each channel, at most limit per page (default 100). cursor
// resumes from a previous page's Next; the empty cursor starts at the
// first channel. When one channel's index is exhausted the iteration
// moves to the next channel, so a page near a boundary may come back
// short with Next still set — only an empty Next ends the iteration.
func (e *Engine) Page(index, value string, limit int, cursor string) (*PageResult, error) {
	if limit <= 0 {
		limit = 100
	}
	cur, err := DecodeCursor(cursor)
	if err != nil {
		return nil, err
	}
	if cur.Channel >= len(e.gws) {
		return nil, fmt.Errorf("query: cursor channel %d out of range (%d channels)", cur.Channel, len(e.gws))
	}
	out := &PageResult{}
	for {
		start := time.Now()
		raw, err := e.gws[cur.Channel].Evaluate(contracts.DataCC, "queryPage",
			[]byte(index), []byte(value), []byte(strconv.Itoa(limit)), []byte(cur.Token))
		out.Timing.Blockchain += time.Since(start)
		if err != nil {
			return nil, err
		}
		var page contracts.RecordPage
		if err := json.Unmarshal(raw, &page); err != nil {
			return nil, fmt.Errorf("query: corrupt page: %w", err)
		}
		for _, r := range page.Records {
			var rec contracts.DataRecord
			if err := json.Unmarshal(r, &rec); err != nil {
				return nil, fmt.Errorf("query: corrupt record in page: %w", err)
			}
			out.Records = append(out.Records, rec)
		}
		if page.Next != "" {
			// More of this channel's index remains.
			out.Next = Cursor{Channel: cur.Channel, Token: page.Next}.Encode()
			return out, nil
		}
		// This channel is exhausted; hand the cursor to the next one. An
		// empty page from an empty channel keeps scanning forward so
		// callers never see a no-progress page with a non-empty cursor.
		if cur.Channel+1 >= len(e.gws) {
			out.Next = ""
			return out, nil
		}
		cur = Cursor{Channel: cur.Channel + 1}
		if len(out.Records) > 0 {
			out.Next = cur.Encode()
			return out, nil
		}
	}
}

// Paged runs one page of a secondary-index query against the data
// chaincode. It is the pre-sharding name for Page; token is an opaque
// cursor from a previous page's Next.
//
// Deprecated: use Page (or Execute with a ByIndex Request), which this
// forwards to.
func (e *Engine) Paged(index, value string, limit int, token string) (*PageResult, error) {
	return e.Page(index, value, limit, token)
}

// listQuery runs a list-returning chaincode query, fanning out over every
// channel and concatenating the per-channel answers in channel order.
func (e *Engine) listQuery(fn, arg string) (*Result, error) {
	type chanResult struct {
		recs []contracts.DataRecord
		err  error
	}
	start := time.Now()
	results := make([]chanResult, len(e.gws))
	var wg sync.WaitGroup
	for i, gw := range e.gws {
		wg.Add(1)
		go func(i int, gw *fabric.Gateway) {
			defer wg.Done()
			raw, err := gw.Evaluate(contracts.DataCC, fn, []byte(arg))
			if err != nil {
				results[i].err = err
				return
			}
			var rawRecs []json.RawMessage
			if err := json.Unmarshal(raw, &rawRecs); err != nil {
				results[i].err = fmt.Errorf("query: corrupt list: %w", err)
				return
			}
			recs := make([]contracts.DataRecord, 0, len(rawRecs))
			for _, r := range rawRecs {
				var rec contracts.DataRecord
				if err := json.Unmarshal(r, &rec); err != nil {
					results[i].err = fmt.Errorf("query: corrupt record in list: %w", err)
					return
				}
				recs = append(recs, rec)
			}
			results[i].recs = recs
		}(i, gw)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var recs []contracts.DataRecord
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		recs = append(recs, r.recs...)
	}
	if recs == nil {
		recs = []contracts.DataRecord{}
	}
	return &Result{Records: recs, Timing: Timing{Blockchain: elapsed}}, nil
}

// Provenance fetches and verifies a record's source chain (newest first).
// A source's whole chain lives on its home channel, so the lookup probes
// channels like metadataTimed does and verifies the first answer.
func (e *Engine) Provenance(txID string) ([]contracts.DataRecord, error) {
	var lastErr error
	for _, gw := range e.gws {
		raw, err := gw.Evaluate(contracts.DataCC, "getProvenance", []byte(txID))
		if err != nil {
			lastErr = err
			continue
		}
		var rawRecs []json.RawMessage
		if err := json.Unmarshal(raw, &rawRecs); err != nil {
			return nil, err
		}
		chain := make([]contracts.DataRecord, 0, len(rawRecs))
		for _, r := range rawRecs {
			var rec contracts.DataRecord
			if err := json.Unmarshal(r, &rec); err != nil {
				return nil, err
			}
			chain = append(chain, rec)
		}
		if err := provenance.VerifyChain(chain); err != nil {
			return chain, err
		}
		return chain, nil
	}
	return nil, lastErr
}

// ErrNotVerified marks retrievals whose payload failed the integrity check.
var ErrNotVerified = errors.New("query: retrieved payload failed verification")
