package query_test

import (
	"bytes"
	"testing"

	"socialchain/internal/contracts"
	"socialchain/internal/query"
)

func TestGetManyMatchesSerialData(t *testing.T) {
	fx := newQueryFixture(t, 4)
	for _, workers := range []int{1, 3, 8} {
		items := fx.client.Query().GetMany(fx.txIDs, workers)
		if len(items) != len(fx.txIDs) {
			t.Fatalf("workers=%d: %d items for %d ids", workers, len(items), len(fx.txIDs))
		}
		for i, item := range items {
			if item.Err != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, item.Err)
			}
			if item.TxID != fx.txIDs[i] || item.Record.TxID != fx.txIDs[i] {
				t.Fatalf("workers=%d item %d misaligned: %s vs %s", workers, i, item.TxID, fx.txIDs[i])
			}
			if !item.Verified {
				t.Fatalf("workers=%d item %d not verified", workers, i)
			}
			if !bytes.Equal(item.Payload, fx.frames[i].Data) {
				t.Fatalf("workers=%d item %d payload mismatch", workers, i)
			}
		}
	}
}

func TestGetManyReportsPerItemErrors(t *testing.T) {
	fx := newQueryFixture(t, 2)
	ids := []string{fx.txIDs[0], "no-such-tx", fx.txIDs[1]}
	items := fx.client.Query().GetMany(ids, 2)
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("good items errored: %v / %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Fatal("missing tx did not error")
	}
	if items[1].Verified || items[1].Payload != nil {
		t.Fatalf("failed item carries data: %+v", items[1])
	}
}

func TestGetManyEmpty(t *testing.T) {
	fx := newQueryFixture(t, 1)
	if items := fx.client.Query().GetMany(nil, 4); len(items) != 0 {
		t.Fatalf("empty batch returned %d items", len(items))
	}
}

func TestPayloadCacheReadThrough(t *testing.T) {
	fx := newQueryFixture(t, 3)
	qe := query.NewEngine(fx.fw.AdminGateway(), fx.fw.Cluster.Node(0)).WithPayloadCache(1 << 20)

	first := qe.GetMany(fx.txIDs, 2)
	for i, item := range first {
		if item.Err != nil {
			t.Fatalf("first pass item %d: %v", i, item.Err)
		}
		if item.FromCache {
			t.Fatalf("first pass item %d served from cold cache", i)
		}
	}
	second := qe.GetMany(fx.txIDs, 2)
	for i, item := range second {
		if item.Err != nil {
			t.Fatalf("second pass item %d: %v", i, item.Err)
		}
		if !item.FromCache {
			t.Fatalf("second pass item %d missed the cache", i)
		}
		if !item.Verified || !bytes.Equal(item.Payload, fx.frames[i].Data) {
			t.Fatalf("cached item %d wrong payload", i)
		}
	}
	stats := qe.CacheStats()
	if stats.Hits != int64(len(fx.txIDs)) || stats.Misses != int64(len(fx.txIDs)) {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", stats.HitRate())
	}
	if stats.Entries != len(fx.txIDs) || stats.Bytes <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPayloadCacheEvictsUnderPressure(t *testing.T) {
	fx := newQueryFixture(t, 3)
	// Capacity fits roughly one 4KB-ish payload: pass three through and
	// the cache must evict rather than grow.
	qe := query.NewEngine(fx.fw.AdminGateway(), fx.fw.Cluster.Node(0)).WithPayloadCache(len(fx.frames[0].Data) + 1)
	qe.GetMany(fx.txIDs, 1)
	stats := qe.CacheStats()
	if stats.Bytes > len(fx.frames[0].Data)+1 {
		t.Fatalf("cache over capacity: %+v", stats)
	}
	if stats.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", stats)
	}
}

func TestPagedIndexQuery(t *testing.T) {
	fx := newQueryFixture(t, 5)
	qe := fx.client.Query()
	var got []string
	token := ""
	for {
		page, err := qe.Paged(contracts.IndexSource, fx.client.Identity().ID(), 2, token)
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Records) > 2 {
			t.Fatalf("page over limit: %d", len(page.Records))
		}
		for _, rec := range page.Records {
			got = append(got, rec.TxID)
		}
		if page.Next == "" {
			break
		}
		token = page.Next
	}
	if len(got) != 5 {
		t.Fatalf("paged through %d records, want 5", len(got))
	}
	seen := make(map[string]bool)
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate record %s across pages", id)
		}
		seen[id] = true
	}
	// The submitted index pages the whole namespace in time order.
	page, err := qe.Paged(contracts.IndexSubmitted, "", 100, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Records) != 5 {
		t.Fatalf("submitted index returned %d records", len(page.Records))
	}
	for i := 1; i < len(page.Records); i++ {
		if page.Records[i].Submitted.Before(page.Records[i-1].Submitted) {
			t.Fatal("submitted index not time-ordered")
		}
	}
	// Records carry the denormalised label the label index serves.
	pageL, err := qe.Paged(contracts.IndexLabel, fx.labels[0], 100, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(pageL.Records) == 0 {
		t.Fatal("label page empty")
	}
	for _, rec := range pageL.Records {
		if rec.Label != fx.labels[0] {
			t.Fatalf("record %s label %q, want %q", rec.TxID, rec.Label, fx.labels[0])
		}
	}
}

func TestPagedUnknownIndex(t *testing.T) {
	fx := newQueryFixture(t, 1)
	if _, err := fx.client.Query().Paged("bogus", "", 10, ""); err == nil {
		t.Fatal("unknown index accepted")
	}
}
