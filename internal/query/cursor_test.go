package query

import "testing"

func TestCursorZeroEncodesEmpty(t *testing.T) {
	if got := (Cursor{}).Encode(); got != "" {
		t.Fatalf("zero cursor encodes to %q, want \"\"", got)
	}
	c, err := DecodeCursor("")
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if c != (Cursor{}) {
		t.Fatalf("decode empty = %+v, want zero cursor", c)
	}
}

func TestCursorRoundTrip(t *testing.T) {
	cases := []Cursor{
		{Channel: 0, Token: "abc"},
		{Channel: 1, Token: ""},
		{Channel: 3, Token: "idx|key\x00weird|token"},
		{Channel: 12, Token: "cGFnZS10b2tlbg"},
	}
	for _, want := range cases {
		enc := want.Encode()
		if enc == "" {
			t.Fatalf("non-zero cursor %+v encoded to empty string", want)
		}
		got, err := DecodeCursor(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip %+v -> %q -> %+v", want, enc, got)
		}
	}
}

func TestCursorDecodeRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"not base64!!",
		"YWJj",        // valid base64 but no separator
		"eHw",         // "x|" -> invalid channel "x"
		"LTF8dG9rZW4", // "-1|token" -> negative channel
	} {
		if _, err := DecodeCursor(s); err == nil {
			t.Fatalf("DecodeCursor(%q) accepted garbage", s)
		}
	}
}
