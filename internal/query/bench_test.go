package query_test

import (
	"fmt"
	"testing"
	"time"

	"socialchain/internal/core"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/query"
	"socialchain/internal/sim"
)

// benchFixture stores n payloads and returns the framework plus tx ids.
func benchFixture(b *testing.B, n int) (*core.Framework, []string) {
	b.Helper()
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers: 4,
			Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
		},
		IPFSNodes: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	cam, err := msp.NewSigner("city", "bench-cam", msp.RoleTrustedSource)
	if err != nil {
		fw.Close()
		b.Fatal(err)
	}
	if err := fw.RegisterSource(cam.Identity, true); err != nil {
		fw.Close()
		b.Fatal(err)
	}
	client := fw.Client(cam, 0)
	det := detect.NewDetector(1)
	rng := sim.NewRNG(1)
	txIDs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		frame := &detect.Frame{
			ID:       detect.FrameIDFor(fmt.Sprintf("bench-%d", i), i),
			VideoID:  fmt.Sprintf("bench-%d", i),
			CameraID: "bench-cam",
			Index:    i,
			Platform: detect.PlatformStatic,
			Encoding: detect.EncodingJPEG,
			Width:    1280, Height: 720,
			Data:       rng.Bytes(8 * 1024),
			Timestamp:  time.Now(),
			LightLevel: 1,
		}
		meta, _ := det.ExtractMetadata(frame)
		receipt, err := client.StoreFrame(frame, meta)
		if err != nil {
			fw.Close()
			b.Fatal(err)
		}
		txIDs = append(txIDs, receipt.TxID)
	}
	return fw, txIDs
}

// BenchmarkGetMany compares serial and concurrent batch retrieval over a
// remote IPFS node; sub-runs are the worker-pool bound.
func BenchmarkGetMany(b *testing.B) {
	fw, txIDs := benchFixture(b, 8)
	defer fw.Close()
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := query.NewEngine(fw.AdminGateway(), fw.Cluster.Node(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				items := eng.GetMany(txIDs, workers)
				for _, item := range items {
					if item.Err != nil {
						b.Fatal(item.Err)
					}
				}
			}
		})
	}
}

// BenchmarkGetManyCached measures the payload-cache hit path.
func BenchmarkGetManyCached(b *testing.B) {
	fw, txIDs := benchFixture(b, 8)
	defer fw.Close()
	eng := query.NewEngine(fw.AdminGateway(), fw.Cluster.Node(1)).WithPayloadCache(64 << 20)
	eng.GetMany(txIDs, 8) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := eng.GetMany(txIDs, 8)
		for _, item := range items {
			if item.Err != nil {
				b.Fatal(item.Err)
			}
		}
	}
}
