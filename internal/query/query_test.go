package query_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"socialchain/internal/core"
	"socialchain/internal/dataset"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/query"
)

// queryFixture spins up a framework with a handful of stored records.
type queryFixture struct {
	fw     *core.Framework
	client *core.Client
	txIDs  []string
	frames []*detect.Frame
	labels []string
}

func newQueryFixture(t *testing.T, n int) *queryFixture {
	t.Helper()
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers: 4,
			Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 5 * time.Millisecond},
		},
		IPFSNodes: 2,
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(fw.Close)
	cam, err := msp.NewSigner("city", "qcam", msp.RoleTrustedSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.RegisterSource(cam.Identity, true); err != nil {
		t.Fatal(err)
	}
	client := fw.Client(cam, 0)
	fx := &queryFixture{fw: fw, client: client}
	det := detect.NewDetector(500)
	corpus := dataset.Generate(dataset.Config{Seed: 500, NumVideos: 1, FramesPerVideo: n, NumDroneFlights: 1, FramesPerFlight: 1, MeanFrameKB: 4})
	for i := 0; i < n; i++ {
		frame := &corpus.Static[0].Frames[i]
		meta, _ := det.ExtractMetadata(frame)
		receipt, err := client.StoreFrame(frame, meta)
		if err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		fx.txIDs = append(fx.txIDs, receipt.TxID)
		fx.frames = append(fx.frames, frame)
		fx.labels = append(fx.labels, meta.PrimaryLabel())
	}
	return fx
}

func TestExecuteByTxIDWithPayload(t *testing.T) {
	fx := newQueryFixture(t, 2)
	res, err := fx.client.Query().Execute(query.Request{Kind: query.ByTxID, Value: fx.txIDs[0], FetchPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("payload not verified")
	}
	if !bytes.Equal(res.Payload, fx.frames[0].Data) {
		t.Fatal("payload mismatch")
	}
	if res.Timing.Blockchain <= 0 || res.Timing.IPFS <= 0 {
		t.Fatalf("timing not recorded: %+v", res.Timing)
	}
	if res.Timing.Total() < res.Timing.Blockchain {
		t.Fatal("total < component")
	}
}

func TestExecuteMetadataOnly(t *testing.T) {
	fx := newQueryFixture(t, 1)
	res, err := fx.client.Query().Execute(query.Request{Kind: query.ByTxID, Value: fx.txIDs[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Payload) != 0 {
		t.Fatal("metadata-only query fetched payload")
	}
	if len(res.Records) != 1 || res.Records[0].TxID != fx.txIDs[0] {
		t.Fatalf("records = %+v", res.Records)
	}
	if res.Timing.IPFS != 0 {
		t.Fatal("metadata-only query hit IPFS")
	}
}

func TestExecuteByLabel(t *testing.T) {
	fx := newQueryFixture(t, 3)
	res, err := fx.client.Query().Execute(query.Request{Kind: query.ByLabel, Value: fx.labels[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("label query empty")
	}
	for _, rec := range res.Records {
		var meta detect.MetadataRecord
		if err := json.Unmarshal(rec.Metadata, &meta); err != nil {
			t.Fatal(err)
		}
		if meta.PrimaryLabel() != fx.labels[0] {
			t.Fatalf("record %s label %q", rec.TxID, meta.PrimaryLabel())
		}
	}
}

func TestExecuteProvenance(t *testing.T) {
	fx := newQueryFixture(t, 3)
	res, err := fx.client.Query().Execute(query.Request{Kind: query.ProvenanceOf, Value: fx.txIDs[2]})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 3 {
		t.Fatalf("chain = %d", len(res.Records))
	}
}

func TestExecuteSelector(t *testing.T) {
	fx := newQueryFixture(t, 2)
	res, err := fx.client.Query().Execute(query.Request{
		Kind:     query.BySelector,
		Selector: map[string]any{"source": fx.client.Identity().ID()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("selector = %d records", len(res.Records))
	}
}

func TestUnknownTxID(t *testing.T) {
	fx := newQueryFixture(t, 1)
	if _, err := fx.client.Query().Data("no-such-tx"); err == nil {
		t.Fatal("unknown tx returned data")
	}
}

func TestTamperedPayloadDetected(t *testing.T) {
	fx := newQueryFixture(t, 1)
	// Corrupt the payload in every IPFS node's blockstore by deleting the
	// content, then re-adding different bytes under a different CID; the
	// on-chain CID now points at missing content.
	node := fx.fw.Cluster.Node(0)
	for _, k := range node.Blockstore().AllKeys() {
		if err := node.Blockstore().Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	node1 := fx.fw.Cluster.Node(1)
	for _, k := range node1.Blockstore().AllKeys() {
		if err := node1.Blockstore().Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fx.client.Query().Data(fx.txIDs[0]); err == nil {
		t.Fatal("retrieval succeeded with destroyed content")
	}
}

func TestUnknownRequestKind(t *testing.T) {
	fx := newQueryFixture(t, 1)
	if _, err := fx.client.Query().Execute(query.Request{Kind: query.Kind(99)}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
