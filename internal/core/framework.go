// Package core assembles the paper's framework: a permissioned blockchain
// (fabric) holding metadata, CIDs, trust scores and provenance, an IPFS
// cluster holding raw payloads, and the client pipelines of Figure 1 —
// store (validate, upload to IPFS, log metadata on-chain) and retrieve
// (metadata from the chain, payload from IPFS, integrity verification).
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"socialchain/internal/contracts"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/ingest"
	"socialchain/internal/ipfs"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/query"
	"socialchain/internal/sim"
	"socialchain/internal/storage"
	"socialchain/internal/trust"
)

// Config assembles a framework instance.
type Config struct {
	// Fabric configures the blockchain network (peer count, latency,
	// byzantine behaviours, batching).
	Fabric fabric.Config
	// IPFSNodes sizes the off-chain cluster (default 2, as in §IV).
	IPFSNodes int
	// IPFSOptions configure chunking/DAG construction.
	IPFSOptions ipfs.Options
	// IPFSLatency models the off-chain network (nil = zero).
	IPFSLatency sim.LatencyModel
	// TrustParams tune the trust engine (zero value = defaults).
	TrustParams trust.Params
	// EnableAnomalyDetection turns on the client-side anomaly detectors
	// (duplicate payloads, bursts, confidence outliers, teleports) — the
	// paper's future-work trust extension. Submissions whose anomaly
	// penalty reaches AnomalyRejectThreshold are rejected and reported.
	EnableAnomalyDetection bool
	// AnomalyRejectThreshold defaults to 0.6.
	AnomalyRejectThreshold float64
	// AdminID names the bootstrap administrator (default "gov/admin").
	AdminOrg  string
	AdminName string
	// StorageEngine selects the key-value engine behind every peer's world
	// state ("single", "sharded" or "persist"; default sharded). It is
	// copied into Fabric.StateEngine unless that field is already set,
	// giving benchmarks one knob for engine comparisons.
	StorageEngine storage.Engine
	// DataDir, when non-empty, makes the whole deployment durable: peers
	// persist under DataDir/fabric (world state + block logs) and the IPFS
	// cluster's blockstores and pin sets under DataDir/ipfs. Building a
	// framework over a directory with previous data recovers it — peers
	// replay their block logs, lagging peers sync from the freshest, IPFS
	// nodes re-announce recovered content — and the bootstrap
	// (admin enrollment, trust parameters) is skipped when the recovered
	// chain already carries it. A killed and restarted deployment therefore
	// resumes with its canonical state intact.
	DataDir string
	// ConsensusOverlap, when > 0, lets consensus run up to this many rounds
	// ahead of block execution (copied into Fabric.ConsensusOverlap unless
	// that field is already set). 0 keeps the lockstep default; the
	// canonical chain state is identical either way — overlap changes only
	// when execution happens, never its order.
	ConsensusOverlap int
}

func (c *Config) fill() {
	if c.IPFSNodes <= 0 {
		c.IPFSNodes = 2
	}
	if c.AdminOrg == "" {
		c.AdminOrg = "gov"
	}
	if c.AdminName == "" {
		c.AdminName = "admin"
	}
	if c.TrustParams == (trust.Params{}) {
		c.TrustParams = trust.DefaultParams()
	}
	if c.AnomalyRejectThreshold <= 0 {
		c.AnomalyRejectThreshold = 0.6
	}
	if c.Fabric.StateEngine == "" {
		c.Fabric.StateEngine = c.StorageEngine
	}
	if c.Fabric.StateIndexes == nil {
		c.Fabric.StateIndexes = contracts.DataIndexes()
	}
	if c.DataDir != "" && c.Fabric.DataDir == "" {
		c.Fabric.DataDir = filepath.Join(c.DataDir, "fabric")
	}
	if c.Fabric.ConsensusOverlap == 0 {
		c.Fabric.ConsensusOverlap = c.ConsensusOverlap
	}
}

// Framework is a running instance of the paper's system.
type Framework struct {
	cfg     Config
	Net     *fabric.Network
	Cluster *ipfs.Cluster
	Admin   *msp.Signer

	adminGW  *fabric.Gateway
	closeErr error

	anomalyMu sync.Mutex
	anomaly   map[string]*trust.AnomalyDetector
}

// New builds and starts a framework: blockchain network with the five
// chaincodes deployed, IPFS cluster, enrolled bootstrap admin and
// initialised trust parameters.
func New(cfg Config) (*Framework, error) {
	cfg.fill()
	net, err := fabric.NewNetwork(cfg.Fabric)
	if err != nil {
		return nil, fmt.Errorf("core: fabric: %w", err)
	}
	for _, cc := range contracts.All() {
		if err := net.Deploy(cc); err != nil {
			return nil, fmt.Errorf("core: deploy %s: %w", cc.Name(), err)
		}
	}
	ipfsDir := ""
	if cfg.DataDir != "" {
		ipfsDir = filepath.Join(cfg.DataDir, "ipfs")
	}
	cluster, err := ipfs.NewCluster(ipfs.ClusterConfig{
		Nodes:       cfg.IPFSNodes,
		Latency:     cfg.IPFSLatency,
		NodeOptions: cfg.IPFSOptions,
		DataDir:     ipfsDir,
	})
	if err != nil {
		net.Close()
		return nil, fmt.Errorf("core: ipfs: %w", err)
	}
	admin, err := msp.NewSigner(cfg.AdminOrg, cfg.AdminName, msp.RoleAdmin)
	if err != nil {
		net.Close()
		cluster.Close()
		return nil, fmt.Errorf("core: admin signer: %w", err)
	}
	fw := &Framework{
		cfg:     cfg,
		Net:     net,
		Cluster: cluster,
		Admin:   admin,
		anomaly: make(map[string]*trust.AnomalyDetector),
	}
	net.Start()
	fw.adminGW = net.Gateway(admin)

	// Bootstrap: enroll the admin and install trust parameters. On a
	// recovered durable deployment the enrollment is skipped when the
	// chain already carries it (enrollAdmin rejects duplicates), but
	// initParams always runs — it is an idempotent overwrite, and gating
	// it on the *first* bootstrap step would silently leave default trust
	// parameters if a crash landed between the two transactions.
	enrolled := false
	if cfg.DataDir != "" {
		if raw, err := fw.adminGW.Evaluate(contracts.AdminCC, "adminExists", []byte(admin.Identity.ID())); err == nil && string(raw) == "true" {
			enrolled = true
		}
	}
	if !enrolled {
		if res, err := fw.adminGW.Submit(contracts.AdminCC, "enrollAdmin", []byte(admin.Identity.ID())); err != nil {
			fw.Close()
			return nil, fmt.Errorf("core: enroll admin: %w", err)
		} else if res.Err() != nil {
			fw.Close()
			return nil, fmt.Errorf("core: enroll admin: %w", res.Err())
		}
	}
	params, err := json.Marshal(cfg.TrustParams)
	if err != nil {
		fw.Close()
		return nil, err
	}
	if res, err := fw.adminGW.Submit(contracts.TrustCC, "initParams", params); err != nil {
		fw.Close()
		return nil, fmt.Errorf("core: init trust params: %w", err)
	} else if res.Err() != nil {
		fw.Close()
		return nil, fmt.Errorf("core: init trust params: %w", res.Err())
	}
	return fw, nil
}

// Close shuts the framework down, flushing and closing every durable
// store (peer state, block logs, IPFS blockstores). A durable deployment
// must be closed before its DataDir is reopened; close errors are
// retrievable via CloseErr.
func (f *Framework) Close() {
	err := f.Net.Close()
	if cerr := f.Cluster.Close(); err == nil {
		err = cerr
	}
	f.closeErr = err
}

// CloseErr reports the first error the last Close encountered (nil before
// Close and after a clean one).
func (f *Framework) CloseErr() error { return f.closeErr }

// AdminGateway returns the bootstrap admin's gateway.
func (f *Framework) AdminGateway() *fabric.Gateway { return f.adminGW }

// RegisterSource registers a data source on-chain. Trusted sources (traffic
// cameras, drones) bypass the trust gate; untrusted sources (mobile users,
// social media) are scored. Re-registering an already-registered source ID
// is a no-op: a restarted durable deployment re-runs its setup and the
// chain's registration (keyed by source ID) must win.
func (f *Framework) RegisterSource(id msp.Identity, trusted bool) error {
	if f.cfg.DataDir != "" {
		if raw, err := f.adminGW.Evaluate(contracts.UsersCC, "userExists", []byte(id.ID())); err == nil && string(raw) == "true" {
			return nil
		}
	}
	role := "untrusted-source"
	if trusted {
		role = "trusted-source"
	}
	rec := contracts.UserRecord{
		UserID: id.ID(),
		Role:   role,
		PubKey: id.PubKey,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	res, err := f.adminGW.Submit(contracts.UsersCC, "registerUser", b)
	if err != nil {
		return fmt.Errorf("core: register %s: %w", id.ID(), err)
	}
	return res.Err()
}

// EnrollAdmin enrolls an additional administrator.
func (f *Framework) EnrollAdmin(adminID string) error {
	res, err := f.adminGW.Submit(contracts.AdminCC, "enrollAdmin", []byte(adminID))
	if err != nil {
		return err
	}
	return res.Err()
}

// TrustScore reads a source's current on-chain trust state.
func (f *Framework) TrustScore(sourceID string) (trust.State, error) {
	raw, err := f.adminGW.Evaluate(contracts.TrustCC, "getTrust", []byte(sourceID))
	if err != nil {
		return trust.State{}, err
	}
	return trust.UnmarshalState(raw)
}

// QueryEngine returns a query engine bound to the admin gateway and the
// given IPFS node (0 <= node < cluster size).
func (f *Framework) QueryEngine(node int) *query.Engine {
	return query.NewEngine(f.adminGW, f.Cluster.Node(node))
}

// Client binds a source identity to the framework: it talks to the
// blockchain through its own gateway and to a designated IPFS node.
type Client struct {
	fw     *Framework
	signer *msp.Signer
	gw     *fabric.Gateway
	store  *ipfs.Node
	qe     *query.Engine
}

// Client creates a client for a registered source, attached to IPFS node i.
func (f *Framework) Client(signer *msp.Signer, ipfsNode int) *Client {
	gw := f.Net.Gateway(signer)
	store := f.Cluster.Node(ipfsNode)
	return &Client{fw: f, signer: signer, gw: gw, store: store, qe: query.NewEngine(gw, store)}
}

// Identity returns the client's identity.
func (c *Client) Identity() msp.Identity { return c.signer.Identity }

// Gateway exposes the client's blockchain gateway (the ingest pipeline
// and tests drive the transaction lifecycle through it directly).
func (c *Client) Gateway() *fabric.Gateway { return c.gw }

// IPFS exposes the client's off-chain storage node.
func (c *Client) IPFS() *ipfs.Node { return c.store }

// Pipeline builds an ingest pipeline bound to this client's gateway and
// IPFS node — the batched, pipelined counterpart of StoreData for bulk
// social workloads. The caller owns the pipeline lifecycle
// (Start/Submit/Drain, or Run).
func (c *Client) Pipeline(cfg ingest.Config) *ingest.Pipeline {
	return ingest.New(c.gw, c.store, cfg)
}

// StoreFrames ingests a slice of frames and their metadata through the
// pipelined write path, returning per-record results in input order.
func (c *Client) StoreFrames(frames []*detect.Frame, metas []detect.MetadataRecord, cfg ingest.Config) ([]ingest.Result, error) {
	if len(frames) != len(metas) {
		return nil, fmt.Errorf("core: %d frames but %d metadata records", len(frames), len(metas))
	}
	records := make([]ingest.Record, len(frames))
	for i, f := range frames {
		records[i] = ingest.Record{Signed: msp.NewSignedMessage(c.signer, f.Data), Meta: metas[i]}
	}
	return c.Pipeline(cfg).Run(records), nil
}

// StoreTiming splits the store pipeline's latency, the quantities Figure 5
// plots (IPFS alone vs. blockchain overhead).
type StoreTiming struct {
	Validate   time.Duration
	IPFS       time.Duration
	Blockchain time.Duration
}

// Total returns the end-to-end store latency.
func (t StoreTiming) Total() time.Duration { return t.Validate + t.IPFS + t.Blockchain }

// StoreReceipt reports a successful store.
type StoreReceipt struct {
	TxID     string
	CID      string
	BlockNum uint64
	Size     int
	Timing   StoreTiming
}

// ErrValidationFailed wraps client-side validation rejections.
var ErrValidationFailed = errors.New("core: validation failed")

// StoreData runs the paper's store pipeline (Figure 1, steps 1-7) for a
// payload and its extracted metadata:
//
//  1. The source's signature over the payload is verified;
//  2. the validation chaincode pre-checks source authentication and schema
//     (read-only, so a rejection costs no IPFS storage);
//  3. the payload is added to IPFS (chunked, hashed, provided);
//  4. the CID + metadata are committed on-chain through BFT consensus,
//     re-validating on every endorser and updating the trust score.
//
// A validation failure is reported to the trust chaincode so the source's
// historical reliability reflects it.
func (c *Client) StoreData(signed msp.SignedMessage, meta detect.MetadataRecord) (*StoreReceipt, error) {
	var timing StoreTiming

	if !signed.Verify() {
		return nil, fmt.Errorf("%w: bad payload signature", ErrValidationFailed)
	}
	if signed.Creator.ID() != c.signer.Identity.ID() {
		return nil, fmt.Errorf("%w: payload signed by %s, client is %s", ErrValidationFailed, signed.Creator.ID(), c.signer.Identity.ID())
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}

	// Client-side pre-validation via the read-only chaincode path. The
	// payload hash is recomputed here so a metadata record whose data_hash
	// does not match the actual payload is rejected before touching IPFS.
	sum := sha256.Sum256(signed.Payload)
	actualHash := hex.EncodeToString(sum[:])
	start := time.Now()
	if anomalies := c.fw.observeAnomalies(c.signer.Identity.ID(), meta, actualHash); len(anomalies) > 0 {
		if trust.PenaltyOf(anomalies) >= c.fw.cfg.AnomalyRejectThreshold {
			timing.Validate = time.Since(start)
			c.fw.reportViolation(c.signer.Identity.ID())
			trust.SortAnomalies(anomalies)
			return nil, fmt.Errorf("%w: anomaly detected: %s (%s)", ErrValidationFailed, anomalies[0].Kind, anomalies[0].Detail)
		}
	}
	_, verr := c.gw.Evaluate(contracts.ValidationCC, "checkTransaction", metaJSON, []byte(actualHash))
	timing.Validate = time.Since(start)
	if verr != nil {
		// Report the failed submission so the trust score drops; the
		// framework (admin) files the report, not the offender.
		c.fw.reportViolation(c.signer.Identity.ID())
		return nil, fmt.Errorf("%w: %v", ErrValidationFailed, verr)
	}

	// Off-chain storage.
	start = time.Now()
	root, err := c.store.Add(signed.Payload)
	timing.IPFS = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("core: ipfs add: %w", err)
	}

	// On-chain metadata + CID.
	start = time.Now()
	res, err := c.gw.Submit(contracts.DataCC, "addData", []byte(root.String()), metaJSON)
	timing.Blockchain = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("core: addData: %w", err)
	}
	if res.Err() != nil {
		return nil, res.Err()
	}
	return &StoreReceipt{
		TxID:     res.TxID,
		CID:      root.String(),
		BlockNum: res.BlockNum,
		Size:     len(signed.Payload),
		Timing:   timing,
	}, nil
}

// StoreFrame extracts nothing: the caller provides the frame and its
// already-extracted metadata record; this signs the payload and stores it.
func (c *Client) StoreFrame(frame *detect.Frame, meta detect.MetadataRecord) (*StoreReceipt, error) {
	signed := msp.NewSignedMessage(c.signer, frame.Data)
	return c.StoreData(signed, meta)
}

// RetrieveResult reports a verified retrieval.
type RetrieveResult struct {
	Record   contracts.DataRecord
	Payload  []byte
	Verified bool
	Timing   query.Timing
}

// RetrieveData runs the retrieve pipeline (Figure 1, steps A-D): metadata
// from the blockchain, payload from IPFS by CID, hash verification.
func (c *Client) RetrieveData(txID string) (*RetrieveResult, error) {
	res, err := c.qe.Data(txID)
	if err != nil {
		return nil, err
	}
	return &RetrieveResult{
		Record:   res.Records[0],
		Payload:  res.Payload,
		Verified: res.Verified,
		Timing:   res.Timing,
	}, nil
}

// Query exposes the client's query engine for conditional retrieval.
func (c *Client) Query() *query.Engine { return c.qe }

// reportViolation files a failed-validation observation against a source.
func (f *Framework) reportViolation(sourceID string) {
	// Best effort: a scoring hiccup must not mask the original error.
	_, _ = f.adminGW.Submit(contracts.TrustCC, "observe",
		[]byte(sourceID), []byte("0"), []byte(strconv.FormatFloat(0, 'f', 1, 64)))
}

// observeAnomalies runs the optional anomaly detectors over a submission.
// Returns nil when detection is disabled.
func (f *Framework) observeAnomalies(sourceID string, meta detect.MetadataRecord, payloadHash string) []trust.Anomaly {
	if !f.cfg.EnableAnomalyDetection {
		return nil
	}
	confidence := 0.0
	if len(meta.Detections) > 0 {
		confidence = meta.Detections[0].Confidence
	}
	sub := trust.Submission{
		At:         meta.CapturedAt,
		Label:      meta.PrimaryLabel(),
		Confidence: confidence,
		Latitude:   meta.Location.Latitude,
		Longitude:  meta.Location.Longitude,
		DataHash:   payloadHash,
		SizeBytes:  meta.SizeBytes,
	}
	f.anomalyMu.Lock()
	defer f.anomalyMu.Unlock()
	det, ok := f.anomaly[sourceID]
	if !ok {
		det = trust.NewAnomalyDetector(trust.AnomalyDetectorConfig{})
		f.anomaly[sourceID] = det
	}
	return det.Observe(sub)
}

// LedgerStats aggregates chain statistics across peers (they agree when
// the network is healthy).
func (f *Framework) LedgerStats() ledger.Stats {
	return f.Net.Peer(0).Ledger().Stats()
}
