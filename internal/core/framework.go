// Package core assembles the paper's framework: a permissioned blockchain
// (fabric) holding metadata, CIDs, trust scores and provenance, an IPFS
// cluster holding raw payloads, and the client pipelines of Figure 1 —
// store (validate, upload to IPFS, log metadata on-chain) and retrieve
// (metadata from the chain, payload from IPFS, integrity verification).
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"socialchain/internal/contracts"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/ingest"
	"socialchain/internal/ipfs"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/query"
	"socialchain/internal/sim"
	"socialchain/internal/storage"
	"socialchain/internal/transport"
	"socialchain/internal/trust"
)

// Config assembles a framework instance.
type Config struct {
	// Fabric configures the blockchain network (peer count, latency,
	// byzantine behaviours, batching).
	Fabric fabric.Config
	// IPFSNodes sizes the off-chain cluster (default 2, as in §IV).
	IPFSNodes int
	// IPFSOptions configure chunking/DAG construction.
	IPFSOptions ipfs.Options
	// IPFSLatency models the off-chain network (nil = zero).
	IPFSLatency sim.LatencyModel
	// TrustParams tune the trust engine (zero value = defaults).
	TrustParams trust.Params
	// EnableAnomalyDetection turns on the client-side anomaly detectors
	// (duplicate payloads, bursts, confidence outliers, teleports) — the
	// paper's future-work trust extension. Submissions whose anomaly
	// penalty reaches AnomalyRejectThreshold are rejected and reported.
	EnableAnomalyDetection bool
	// AnomalyRejectThreshold defaults to 0.6.
	AnomalyRejectThreshold float64
	// AdminID names the bootstrap administrator (default "gov/admin").
	AdminOrg  string
	AdminName string
	// NumChannels shards the ledger across this many independent fabric
	// channels (default 1). Each source's data, trust state and provenance
	// live on its home channel — fabric.RouteKey over the source ID — and
	// the framework's clients and query engines route and scatter-gather
	// accordingly. Setting both this and Fabric.NumChannels to different
	// values is a configuration conflict (see Resolve).
	NumChannels int
	// TrustRollupInterval, when > 0, starts a background roll-up that
	// periodically lists every channel's trust scores and merges them into
	// a global view (TrustView). 0 computes the view on demand only.
	TrustRollupInterval time.Duration
	// StorageEngine selects the key-value engine behind every peer's world
	// state ("single", "sharded" or "persist"; default sharded). It is
	// copied into Fabric.StateEngine by Resolve; setting both knobs to
	// different engines is a configuration conflict.
	StorageEngine storage.Engine
	// StorageDurability selects the persist engine's fsync policy ("none",
	// "batch" or "always"; default none — page-cache writes, process-crash
	// safe). It is copied into Fabric.StateDurability by Resolve; setting
	// both knobs to different policies is a configuration conflict. Only
	// meaningful with a DataDir.
	StorageDurability storage.Durability
	// DataDir, when non-empty, makes the whole deployment durable: peers
	// persist under DataDir/fabric (world state + block logs) and the IPFS
	// cluster's blockstores and pin sets under DataDir/ipfs. Building a
	// framework over a directory with previous data recovers it — peers
	// replay their block logs, lagging peers sync from the freshest, IPFS
	// nodes re-announce recovered content — and the bootstrap
	// (admin enrollment, trust parameters) is skipped when the recovered
	// chain already carries it. A killed and restarted deployment therefore
	// resumes with its canonical state intact.
	DataDir string
	// ConsensusOverlap, when > 0, lets consensus run up to this many rounds
	// ahead of block execution (copied into Fabric.ConsensusOverlap unless
	// that field is already set). 0 keeps the lockstep default; the
	// canonical chain state is identical either way — overlap changes only
	// when execution happens, never its order.
	ConsensusOverlap int
	// Transport selects how consensus traffic moves between the framework's
	// validators: "inproc" (default — deterministic in-process delivery) or
	// "tcp" (framed localhost sockets). Copied into Fabric.Transport by
	// Resolve; setting both knobs to different kinds is a configuration
	// conflict, and an unknown kind is rejected here rather than at network
	// build time.
	Transport string
	// TransportListenAddrs optionally pins each peer's TCP listen address
	// (index i is peer i). Only meaningful with Transport "tcp".
	TransportListenAddrs []string
	// TransportSendQueue bounds each TCP link's outbound frame queue; a full
	// queue surfaces as typed backpressure, never an unbounded buffer.
	// Must be >= 0 (0 selects the transport default).
	TransportSendQueue int
	// TransportDialTimeout, TransportDialBackoffBase and
	// TransportDialBackoffMax tune the TCP dialer and its reconnect loop.
	// All must be >= 0, and a non-zero backoff base must not exceed a
	// non-zero backoff cap.
	TransportDialTimeout     time.Duration
	TransportDialBackoffBase time.Duration
	TransportDialBackoffMax  time.Duration
}

func (c *Config) fill() {
	if c.IPFSNodes <= 0 {
		c.IPFSNodes = 2
	}
	if c.AdminOrg == "" {
		c.AdminOrg = "gov"
	}
	if c.AdminName == "" {
		c.AdminName = "admin"
	}
	if c.TrustParams == (trust.Params{}) {
		c.TrustParams = trust.DefaultParams()
	}
	if c.AnomalyRejectThreshold <= 0 {
		c.AnomalyRejectThreshold = 0.6
	}
}

// Resolve merges the framework-level deployment knobs (StorageEngine,
// DataDir, ConsensusOverlap, NumChannels) into the fabric configuration
// and returns the result. It replaces the old silent copy-if-unset chain:
// setting a knob at both levels to different values is now an error
// instead of one level quietly winning.
func (c *Config) Resolve() (fabric.Config, error) {
	fc := c.Fabric
	if c.StorageEngine != "" {
		if fc.StateEngine != "" && fc.StateEngine != c.StorageEngine {
			return fabric.Config{}, fmt.Errorf(
				"core: conflicting storage engines: Config.StorageEngine=%q but Config.Fabric.StateEngine=%q",
				c.StorageEngine, fc.StateEngine)
		}
		fc.StateEngine = c.StorageEngine
	}
	if c.StorageDurability != "" {
		if fc.StateDurability != "" && fc.StateDurability != c.StorageDurability {
			return fabric.Config{}, fmt.Errorf(
				"core: conflicting durability: Config.StorageDurability=%q but Config.Fabric.StateDurability=%q",
				c.StorageDurability, fc.StateDurability)
		}
		fc.StateDurability = c.StorageDurability
	}
	if c.DataDir != "" {
		derived := filepath.Join(c.DataDir, "fabric")
		if fc.DataDir != "" && fc.DataDir != derived {
			return fabric.Config{}, fmt.Errorf(
				"core: conflicting data directories: Config.DataDir=%q implies fabric dir %q but Config.Fabric.DataDir=%q",
				c.DataDir, derived, fc.DataDir)
		}
		fc.DataDir = derived
	}
	if c.ConsensusOverlap > 0 {
		if fc.ConsensusOverlap > 0 && fc.ConsensusOverlap != c.ConsensusOverlap {
			return fabric.Config{}, fmt.Errorf(
				"core: conflicting consensus overlap: Config.ConsensusOverlap=%d but Config.Fabric.ConsensusOverlap=%d",
				c.ConsensusOverlap, fc.ConsensusOverlap)
		}
		fc.ConsensusOverlap = c.ConsensusOverlap
	}
	if c.NumChannels > 0 {
		if fc.NumChannels > 0 && fc.NumChannels != c.NumChannels {
			return fabric.Config{}, fmt.Errorf(
				"core: conflicting channel counts: Config.NumChannels=%d but Config.Fabric.NumChannels=%d",
				c.NumChannels, fc.NumChannels)
		}
		fc.NumChannels = c.NumChannels
	}
	if err := c.resolveTransport(&fc); err != nil {
		return fabric.Config{}, err
	}
	if fc.StateIndexes == nil {
		fc.StateIndexes = contracts.DataIndexes()
	}
	return fc, nil
}

// resolveTransport merges and validates the transport knobs. Kind strings
// are parsed here so a typo'd Transport fails Resolve with the full list of
// valid kinds instead of surfacing later from fabric.NewNetwork, and
// nonsensical tunings (negative bounds, backoff base above its cap) are
// configuration errors rather than latent runtime behaviour.
func (c *Config) resolveTransport(fc *fabric.Config) error {
	if c.Transport != "" {
		kind, err := transport.ParseKind(c.Transport)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if fc.Transport != "" {
			fk, err := transport.ParseKind(fc.Transport)
			if err != nil {
				return fmt.Errorf("core: %w", err)
			}
			if fk != kind {
				return fmt.Errorf(
					"core: conflicting transports: Config.Transport=%q but Config.Fabric.Transport=%q",
					c.Transport, fc.Transport)
			}
		}
		fc.Transport = string(kind)
	}
	if len(c.TransportListenAddrs) > 0 {
		if len(fc.ListenAddrs) > 0 {
			return fmt.Errorf(
				"core: listen addresses set at both levels: Config.TransportListenAddrs and Config.Fabric.ListenAddrs")
		}
		fc.ListenAddrs = c.TransportListenAddrs
	}
	if c.TransportSendQueue < 0 {
		return fmt.Errorf("core: Config.TransportSendQueue must be >= 0, got %d", c.TransportSendQueue)
	}
	if c.TransportSendQueue > 0 {
		if fc.SendQueue > 0 && fc.SendQueue != c.TransportSendQueue {
			return fmt.Errorf(
				"core: conflicting send queue bounds: Config.TransportSendQueue=%d but Config.Fabric.SendQueue=%d",
				c.TransportSendQueue, fc.SendQueue)
		}
		fc.SendQueue = c.TransportSendQueue
	}
	type durKnob struct {
		name string
		v    time.Duration
		dst  *time.Duration
	}
	for _, k := range []durKnob{
		{"TransportDialTimeout", c.TransportDialTimeout, &fc.DialTimeout},
		{"TransportDialBackoffBase", c.TransportDialBackoffBase, &fc.DialBackoffBase},
		{"TransportDialBackoffMax", c.TransportDialBackoffMax, &fc.DialBackoffMax},
	} {
		if k.v < 0 {
			return fmt.Errorf("core: Config.%s must be >= 0, got %v", k.name, k.v)
		}
		if k.v > 0 {
			if *k.dst > 0 && *k.dst != k.v {
				return fmt.Errorf(
					"core: conflicting dial tunings: Config.%s=%v but Config.Fabric side is %v",
					k.name, k.v, *k.dst)
			}
			*k.dst = k.v
		}
	}
	if fc.DialBackoffBase > 0 && fc.DialBackoffMax > 0 && fc.DialBackoffBase > fc.DialBackoffMax {
		return fmt.Errorf(
			"core: dial backoff base %v exceeds its cap %v",
			fc.DialBackoffBase, fc.DialBackoffMax)
	}
	return nil
}

// Framework is a running instance of the paper's system.
type Framework struct {
	cfg     Config
	Net     *fabric.Network
	Cluster *ipfs.Cluster
	Admin   *msp.Signer

	// adminGWs holds one admin gateway per channel (channel order);
	// adminGW aliases adminGWs[0] for the single-channel paths.
	adminGWs []*fabric.Gateway
	adminGW  *fabric.Gateway
	closeErr error

	anomalyMu sync.Mutex
	anomaly   map[string]*trust.AnomalyDetector

	rollupMu   sync.Mutex
	rollupView *trust.GlobalView
	rollupStop chan struct{}
	rollupDone chan struct{}
}

// New builds and starts a framework: blockchain network with the five
// chaincodes deployed, IPFS cluster, enrolled bootstrap admin and
// initialised trust parameters.
func New(cfg Config) (*Framework, error) {
	cfg.fill()
	fabricCfg, err := cfg.Resolve()
	if err != nil {
		return nil, err
	}
	net, err := fabric.NewNetwork(fabricCfg)
	if err != nil {
		return nil, fmt.Errorf("core: fabric: %w", err)
	}
	for _, cc := range contracts.All() {
		if err := net.Deploy(cc); err != nil {
			return nil, fmt.Errorf("core: deploy %s: %w", cc.Name(), err)
		}
	}
	ipfsDir := ""
	if cfg.DataDir != "" {
		ipfsDir = filepath.Join(cfg.DataDir, "ipfs")
	}
	cluster, err := ipfs.NewCluster(ipfs.ClusterConfig{
		Nodes:       cfg.IPFSNodes,
		Latency:     cfg.IPFSLatency,
		NodeOptions: cfg.IPFSOptions,
		DataDir:     ipfsDir,
	})
	if err != nil {
		net.Close()
		return nil, fmt.Errorf("core: ipfs: %w", err)
	}
	admin, err := msp.NewSigner(cfg.AdminOrg, cfg.AdminName, msp.RoleAdmin)
	if err != nil {
		net.Close()
		cluster.Close()
		return nil, fmt.Errorf("core: admin signer: %w", err)
	}
	fw := &Framework{
		cfg:     cfg,
		Net:     net,
		Cluster: cluster,
		Admin:   admin,
		anomaly: make(map[string]*trust.AnomalyDetector),
	}
	net.Start()
	for _, ch := range net.Channels() {
		fw.adminGWs = append(fw.adminGWs, ch.Gateway(admin))
	}
	fw.adminGW = fw.adminGWs[0]

	// Bootstrap every channel: enroll the admin and install trust
	// parameters. Each channel carries its own admin enrollment and trust
	// parameters because chaincode state never crosses channels. On a
	// recovered durable deployment the enrollment is skipped when the
	// channel's chain already carries it (enrollAdmin rejects duplicates),
	// but initParams always runs — it is an idempotent overwrite, and
	// gating it on the *first* bootstrap step would silently leave default
	// trust parameters if a crash landed between the two transactions.
	params, err := json.Marshal(cfg.TrustParams)
	if err != nil {
		fw.Close()
		return nil, err
	}
	for _, gw := range fw.adminGWs {
		enrolled := false
		if cfg.DataDir != "" {
			if raw, err := gw.Evaluate(contracts.AdminCC, "adminExists", []byte(admin.Identity.ID())); err == nil && string(raw) == "true" {
				enrolled = true
			}
		}
		if !enrolled {
			if res, err := gw.Submit(contracts.AdminCC, "enrollAdmin", []byte(admin.Identity.ID())); err != nil {
				fw.Close()
				return nil, fmt.Errorf("core: enroll admin on %s: %w", gw.Channel().Name(), err)
			} else if res.Err() != nil {
				fw.Close()
				return nil, fmt.Errorf("core: enroll admin on %s: %w", gw.Channel().Name(), res.Err())
			}
		}
		if res, err := gw.Submit(contracts.TrustCC, "initParams", params); err != nil {
			fw.Close()
			return nil, fmt.Errorf("core: init trust params on %s: %w", gw.Channel().Name(), err)
		} else if res.Err() != nil {
			fw.Close()
			return nil, fmt.Errorf("core: init trust params on %s: %w", gw.Channel().Name(), res.Err())
		}
	}
	if cfg.TrustRollupInterval > 0 {
		fw.rollupStop = make(chan struct{})
		fw.rollupDone = make(chan struct{})
		go fw.rollupLoop(cfg.TrustRollupInterval)
	}
	return fw, nil
}

// Close shuts the framework down, flushing and closing every durable
// store (peer state, block logs, IPFS blockstores). A durable deployment
// must be closed before its DataDir is reopened; close errors are
// retrievable via CloseErr.
func (f *Framework) Close() {
	if f.rollupStop != nil {
		close(f.rollupStop)
		<-f.rollupDone
		f.rollupStop = nil
	}
	err := f.Net.Close()
	if cerr := f.Cluster.Close(); err == nil {
		err = cerr
	}
	f.closeErr = err
}

// CloseErr reports the first error the last Close encountered (nil before
// Close and after a clean one).
func (f *Framework) CloseErr() error { return f.closeErr }

// AdminGateway returns the bootstrap admin's gateway on the default
// channel.
func (f *Framework) AdminGateway() *fabric.Gateway { return f.adminGW }

// AdminGatewayOn returns the bootstrap admin's gateway on channel i.
func (f *Framework) AdminGatewayOn(i int) *fabric.Gateway { return f.adminGWs[i] }

// adminGWFor returns the admin gateway on a source's home channel — the
// channel holding that source's registration, trust state and data.
func (f *Framework) adminGWFor(sourceID string) *fabric.Gateway {
	return f.adminGWs[fabric.RouteKey(sourceID, len(f.adminGWs))]
}

// RegisterSource registers a data source on-chain. Trusted sources (traffic
// cameras, drones) bypass the trust gate; untrusted sources (mobile users,
// social media) are scored. Re-registering an already-registered source ID
// is a no-op: a restarted durable deployment re-runs its setup and the
// chain's registration (keyed by source ID) must win.
func (f *Framework) RegisterSource(id msp.Identity, trusted bool) error {
	gw := f.adminGWFor(id.ID())
	if f.cfg.DataDir != "" {
		if raw, err := gw.Evaluate(contracts.UsersCC, "userExists", []byte(id.ID())); err == nil && string(raw) == "true" {
			return nil
		}
	}
	role := "untrusted-source"
	if trusted {
		role = "trusted-source"
	}
	rec := contracts.UserRecord{
		UserID: id.ID(),
		Role:   role,
		PubKey: id.PubKey,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	res, err := gw.Submit(contracts.UsersCC, "registerUser", b)
	if err != nil {
		return fmt.Errorf("core: register %s: %w", id.ID(), err)
	}
	return res.Err()
}

// EnrollAdmin enrolls an additional administrator on every channel, so the
// new administrator can act wherever the bootstrap admin can.
func (f *Framework) EnrollAdmin(adminID string) error {
	for _, gw := range f.adminGWs {
		res, err := gw.Submit(contracts.AdminCC, "enrollAdmin", []byte(adminID))
		if err != nil {
			return err
		}
		if err := res.Err(); err != nil {
			return err
		}
	}
	return nil
}

// TrustScore reads a source's current on-chain trust state from its home
// channel.
func (f *Framework) TrustScore(sourceID string) (trust.State, error) {
	raw, err := f.adminGWFor(sourceID).Evaluate(contracts.TrustCC, "getTrust", []byte(sourceID))
	if err != nil {
		return trust.State{}, err
	}
	return trust.UnmarshalState(raw)
}

// RollupTrust lists every channel's trust scores and merges them into one
// global view (newest state wins per source). The view is cached for
// TrustView; with TrustRollupInterval set it also refreshes periodically
// in the background.
func (f *Framework) RollupTrust() (trust.GlobalView, error) {
	perChannel := make([][]trust.State, 0, len(f.adminGWs))
	for _, gw := range f.adminGWs {
		raw, err := gw.Evaluate(contracts.TrustCC, "listScores")
		if err != nil {
			return trust.GlobalView{}, fmt.Errorf("core: list scores on %s: %w", gw.Channel().Name(), err)
		}
		var states []trust.State
		if err := json.Unmarshal(raw, &states); err != nil {
			return trust.GlobalView{}, fmt.Errorf("core: corrupt scores on %s: %w", gw.Channel().Name(), err)
		}
		perChannel = append(perChannel, states)
	}
	view := trust.Rollup(perChannel, time.Now())
	f.rollupMu.Lock()
	f.rollupView = &view
	f.rollupMu.Unlock()
	return view, nil
}

// TrustView returns the latest trust roll-up, computing one on demand when
// no background roll-up has run yet.
func (f *Framework) TrustView() (trust.GlobalView, error) {
	f.rollupMu.Lock()
	cached := f.rollupView
	f.rollupMu.Unlock()
	if cached != nil {
		return *cached, nil
	}
	return f.RollupTrust()
}

// rollupLoop refreshes the global trust view every interval until Close.
func (f *Framework) rollupLoop(interval time.Duration) {
	defer close(f.rollupDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-f.rollupStop:
			return
		case <-ticker.C:
			// Best effort: a roll-up hiccup (e.g. during shutdown) keeps
			// the previous view.
			_, _ = f.RollupTrust()
		}
	}
}

// QueryEngine returns a query engine bound to the admin gateways (one per
// channel) and the given IPFS node (0 <= node < cluster size).
func (f *Framework) QueryEngine(node int) *query.Engine {
	eng, err := query.NewShardedEngine(f.adminGWs, f.Cluster.Node(node))
	if err != nil {
		// Unreachable: a framework always has at least one channel.
		panic(err)
	}
	return eng
}

// Client binds a source identity to the framework: it talks to the
// blockchain through its own gateway and to a designated IPFS node.
type Client struct {
	fw     *Framework
	signer *msp.Signer
	gw     *fabric.Gateway
	store  *ipfs.Node
	qe     *query.Engine
}

// Client creates a client for a registered source, attached to IPFS node i.
// The client writes through its home channel's gateway (fabric.RouteKey
// over its identity ID) and reads through a sharded query engine spanning
// every channel, so retrieval works no matter which channel holds a record.
func (f *Framework) Client(signer *msp.Signer, ipfsNode int) *Client {
	store := f.Cluster.Node(ipfsNode)
	channels := f.Net.Channels()
	gws := make([]*fabric.Gateway, len(channels))
	for i, ch := range channels {
		gws[i] = ch.Gateway(signer)
	}
	home := fabric.RouteKey(signer.Identity.ID(), len(channels))
	qe, err := query.NewShardedEngine(gws, store)
	if err != nil {
		panic(err) // unreachable: a network always has at least one channel
	}
	return &Client{fw: f, signer: signer, gw: gws[home], store: store, qe: qe}
}

// Identity returns the client's identity.
func (c *Client) Identity() msp.Identity { return c.signer.Identity }

// Gateway exposes the client's blockchain gateway (the ingest pipeline
// and tests drive the transaction lifecycle through it directly).
func (c *Client) Gateway() *fabric.Gateway { return c.gw }

// IPFS exposes the client's off-chain storage node.
func (c *Client) IPFS() *ipfs.Node { return c.store }

// Pipeline builds an ingest pipeline bound to this client's gateway and
// IPFS node — the batched, pipelined counterpart of StoreData for bulk
// social workloads. The caller owns the pipeline lifecycle
// (Start/Submit/Drain, or Run).
func (c *Client) Pipeline(cfg ingest.Config) *ingest.Pipeline {
	return ingest.New(c.gw, c.store, cfg)
}

// StoreFrames ingests a slice of frames and their metadata through the
// pipelined write path, returning per-record results in input order.
func (c *Client) StoreFrames(frames []*detect.Frame, metas []detect.MetadataRecord, cfg ingest.Config) ([]ingest.Result, error) {
	if len(frames) != len(metas) {
		return nil, fmt.Errorf("core: %d frames but %d metadata records", len(frames), len(metas))
	}
	records := make([]ingest.Record, len(frames))
	for i, f := range frames {
		records[i] = ingest.Record{Signed: msp.NewSignedMessage(c.signer, f.Data), Meta: metas[i]}
	}
	return c.Pipeline(cfg).Run(records), nil
}

// StoreTiming splits the store pipeline's latency, the quantities Figure 5
// plots (IPFS alone vs. blockchain overhead).
type StoreTiming struct {
	Validate   time.Duration
	IPFS       time.Duration
	Blockchain time.Duration
}

// Total returns the end-to-end store latency.
func (t StoreTiming) Total() time.Duration { return t.Validate + t.IPFS + t.Blockchain }

// StoreReceipt reports a successful store.
type StoreReceipt struct {
	TxID     string
	CID      string
	BlockNum uint64
	Size     int
	Timing   StoreTiming
}

// ErrValidationFailed wraps client-side validation rejections.
var ErrValidationFailed = errors.New("core: validation failed")

// StoreData runs the paper's store pipeline (Figure 1, steps 1-7) for a
// payload and its extracted metadata:
//
//  1. The source's signature over the payload is verified;
//  2. the validation chaincode pre-checks source authentication and schema
//     (read-only, so a rejection costs no IPFS storage);
//  3. the payload is added to IPFS (chunked, hashed, provided);
//  4. the CID + metadata are committed on-chain through BFT consensus,
//     re-validating on every endorser and updating the trust score.
//
// A validation failure is reported to the trust chaincode so the source's
// historical reliability reflects it.
func (c *Client) StoreData(signed msp.SignedMessage, meta detect.MetadataRecord) (*StoreReceipt, error) {
	var timing StoreTiming

	if !signed.Verify() {
		return nil, fmt.Errorf("%w: bad payload signature", ErrValidationFailed)
	}
	if signed.Creator.ID() != c.signer.Identity.ID() {
		return nil, fmt.Errorf("%w: payload signed by %s, client is %s", ErrValidationFailed, signed.Creator.ID(), c.signer.Identity.ID())
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}

	// Client-side pre-validation via the read-only chaincode path. The
	// payload hash is recomputed here so a metadata record whose data_hash
	// does not match the actual payload is rejected before touching IPFS.
	sum := sha256.Sum256(signed.Payload)
	actualHash := hex.EncodeToString(sum[:])
	start := time.Now()
	if anomalies := c.fw.observeAnomalies(c.signer.Identity.ID(), meta, actualHash); len(anomalies) > 0 {
		if trust.PenaltyOf(anomalies) >= c.fw.cfg.AnomalyRejectThreshold {
			timing.Validate = time.Since(start)
			c.fw.reportViolation(c.signer.Identity.ID())
			trust.SortAnomalies(anomalies)
			return nil, fmt.Errorf("%w: anomaly detected: %s (%s)", ErrValidationFailed, anomalies[0].Kind, anomalies[0].Detail)
		}
	}
	_, verr := c.gw.Evaluate(contracts.ValidationCC, "checkTransaction", metaJSON, []byte(actualHash))
	timing.Validate = time.Since(start)
	if verr != nil {
		// Report the failed submission so the trust score drops; the
		// framework (admin) files the report, not the offender.
		c.fw.reportViolation(c.signer.Identity.ID())
		return nil, fmt.Errorf("%w: %v", ErrValidationFailed, verr)
	}

	// Off-chain storage.
	start = time.Now()
	root, err := c.store.Add(signed.Payload)
	timing.IPFS = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("core: ipfs add: %w", err)
	}

	// On-chain metadata + CID.
	start = time.Now()
	res, err := c.gw.Submit(contracts.DataCC, "addData", []byte(root.String()), metaJSON)
	timing.Blockchain = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("core: addData: %w", err)
	}
	if res.Err() != nil {
		return nil, res.Err()
	}
	return &StoreReceipt{
		TxID:     res.TxID,
		CID:      root.String(),
		BlockNum: res.BlockNum,
		Size:     len(signed.Payload),
		Timing:   timing,
	}, nil
}

// StoreFrame extracts nothing: the caller provides the frame and its
// already-extracted metadata record; this signs the payload and stores it.
func (c *Client) StoreFrame(frame *detect.Frame, meta detect.MetadataRecord) (*StoreReceipt, error) {
	signed := msp.NewSignedMessage(c.signer, frame.Data)
	return c.StoreData(signed, meta)
}

// RetrieveResult reports a verified retrieval.
type RetrieveResult struct {
	Record   contracts.DataRecord
	Payload  []byte
	Verified bool
	Timing   query.Timing
}

// RetrieveData runs the retrieve pipeline (Figure 1, steps A-D): metadata
// from the blockchain, payload from IPFS by CID, hash verification.
func (c *Client) RetrieveData(txID string) (*RetrieveResult, error) {
	res, err := c.qe.Data(txID)
	if err != nil {
		return nil, err
	}
	return &RetrieveResult{
		Record:   res.Records[0],
		Payload:  res.Payload,
		Verified: res.Verified,
		Timing:   res.Timing,
	}, nil
}

// Query exposes the client's query engine for conditional retrieval.
func (c *Client) Query() *query.Engine { return c.qe }

// reportViolation files a failed-validation observation against a source
// on its home channel, where its trust state lives.
func (f *Framework) reportViolation(sourceID string) {
	// Best effort: a scoring hiccup must not mask the original error.
	_, _ = f.adminGWFor(sourceID).Submit(contracts.TrustCC, "observe",
		[]byte(sourceID), []byte("0"), []byte(strconv.FormatFloat(0, 'f', 1, 64)))
}

// observeAnomalies runs the optional anomaly detectors over a submission.
// Returns nil when detection is disabled.
func (f *Framework) observeAnomalies(sourceID string, meta detect.MetadataRecord, payloadHash string) []trust.Anomaly {
	if !f.cfg.EnableAnomalyDetection {
		return nil
	}
	confidence := 0.0
	if len(meta.Detections) > 0 {
		confidence = meta.Detections[0].Confidence
	}
	sub := trust.Submission{
		At:         meta.CapturedAt,
		Label:      meta.PrimaryLabel(),
		Confidence: confidence,
		Latitude:   meta.Location.Latitude,
		Longitude:  meta.Location.Longitude,
		DataHash:   payloadHash,
		SizeBytes:  meta.SizeBytes,
	}
	f.anomalyMu.Lock()
	defer f.anomalyMu.Unlock()
	det, ok := f.anomaly[sourceID]
	if !ok {
		det = trust.NewAnomalyDetector(trust.AnomalyDetectorConfig{})
		f.anomaly[sourceID] = det
	}
	return det.Observe(sub)
}

// LedgerStats aggregates chain statistics across every channel (peers of
// one channel agree when the network is healthy; channel heights and
// transaction counts sum into the deployment-wide totals).
func (f *Framework) LedgerStats() ledger.Stats {
	var total ledger.Stats
	for _, ch := range f.Net.Channels() {
		s := ch.Peer(0).Ledger().Stats()
		total.Height += s.Height
		total.TotalTxs += s.TotalTxs
		total.ValidTxs += s.ValidTxs
	}
	return total
}
