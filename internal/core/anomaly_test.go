package core

import (
	"strings"
	"testing"
	"time"

	"socialchain/internal/fabric"
	"socialchain/internal/ordering"
)

func newAnomalyFramework(t *testing.T) *Framework {
	t.Helper()
	fw, err := New(Config{
		Fabric: fabric.Config{
			NumPeers: 4,
			Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 5 * time.Millisecond},
		},
		IPFSNodes:              2,
		EnableAnomalyDetection: true,
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(fw.Close)
	return fw
}

func TestAnomalyDuplicatePayloadRejected(t *testing.T) {
	fw := newAnomalyFramework(t)
	crowd := newSource(t, fw, "crowd", "replayer", false)
	client := fw.Client(crowd, 0)

	frame, meta := sampleFrame(t, 600)
	if _, err := client.StoreFrame(frame, meta); err != nil {
		t.Fatalf("first store: %v", err)
	}
	// Replaying the exact same payload repeatedly must eventually trip the
	// duplicate-payload detector (severity grows with repetition).
	var lastErr error
	for i := 0; i < 4 && lastErr == nil; i++ {
		_, lastErr = client.StoreFrame(frame, meta)
	}
	if lastErr == nil {
		t.Fatal("payload replay never rejected")
	}
	if !strings.Contains(lastErr.Error(), "anomaly") {
		t.Fatalf("unexpected error: %v", lastErr)
	}
	// The rejection also filed a trust violation.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := fw.TrustScore(crowd.Identity.ID())
		if err == nil && st.Rejected >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("anomaly rejection not reflected in trust score")
}

func TestAnomalyTeleportRejected(t *testing.T) {
	fw := newAnomalyFramework(t)
	crowd := newSource(t, fw, "crowd", "jumper", false)
	client := fw.Client(crowd, 0)

	frame, meta := sampleFrame(t, 601)
	if _, err := client.StoreFrame(frame, meta); err != nil {
		t.Fatalf("first store: %v", err)
	}
	frame2, meta2 := sampleFrame(t, 602)
	meta2.Location.Latitude = 40.71 // Bangalore -> New York between frames
	meta2.Location.Longitude = -74.00
	if _, err := client.StoreFrame(frame2, meta2); err == nil {
		t.Fatal("teleporting source accepted")
	}
}

func TestAnomalyDetectionDisabledByDefault(t *testing.T) {
	fw := newFramework(t) // detection off
	crowd := newSource(t, fw, "crowd", "replayer2", false)
	client := fw.Client(crowd, 0)
	frame, meta := sampleFrame(t, 603)
	for i := 0; i < 3; i++ {
		if _, err := client.StoreFrame(frame, meta); err != nil {
			t.Fatalf("store %d rejected with detection disabled: %v", i, err)
		}
	}
}

func TestAnomalyDetectorsArePerSource(t *testing.T) {
	fw := newAnomalyFramework(t)
	a := newSource(t, fw, "crowd", "src-a", false)
	b := newSource(t, fw, "crowd", "src-b", false)
	frame, meta := sampleFrame(t, 604)
	if _, err := fw.Client(a, 0).StoreFrame(frame, meta); err != nil {
		t.Fatal(err)
	}
	// The same payload from a different source is that source's FIRST
	// sighting — not a duplicate for its own detector.
	if _, err := fw.Client(b, 0).StoreFrame(frame, meta); err != nil {
		t.Fatalf("cross-source submission rejected: %v", err)
	}
}
