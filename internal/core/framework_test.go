package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"socialchain/internal/contracts"
	"socialchain/internal/dataset"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/provenance"
	"socialchain/internal/query"
)

// newFramework builds a small, fast framework for tests.
func newFramework(t *testing.T) *Framework {
	t.Helper()
	fw, err := New(Config{
		Fabric: fabric.Config{
			NumPeers: 4,
			Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 5 * time.Millisecond},
		},
		IPFSNodes: 2,
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(fw.Close)
	return fw
}

func newSource(t *testing.T, fw *Framework, org, name string, trusted bool) *msp.Signer {
	t.Helper()
	role := msp.RoleUntrustedSource
	if trusted {
		role = msp.RoleTrustedSource
	}
	s, err := msp.NewSigner(org, name, role)
	if err != nil {
		t.Fatalf("signer: %v", err)
	}
	if err := fw.RegisterSource(s.Identity, trusted); err != nil {
		t.Fatalf("register source: %v", err)
	}
	return s
}

// sampleFrame builds a deterministic frame + extracted metadata whose
// camera id matches the source.
func sampleFrame(t *testing.T, seed int64) (*detect.Frame, detect.MetadataRecord) {
	t.Helper()
	corpus := dataset.Generate(dataset.Config{Seed: seed, NumVideos: 1, FramesPerVideo: 1, NumDroneFlights: 1, FramesPerFlight: 1, MeanFrameKB: 8})
	frame := &corpus.Static[0].Frames[0]
	det := detect.NewDetector(seed)
	meta, _ := det.ExtractMetadata(frame)
	return frame, meta
}

func TestStoreRetrieveRoundTrip(t *testing.T) {
	fw := newFramework(t)
	cam := newSource(t, fw, "city", "cam-001", true)
	client := fw.Client(cam, 0)

	frame, meta := sampleFrame(t, 7)
	receipt, err := client.StoreFrame(frame, meta)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	if receipt.CID == "" || receipt.TxID == "" {
		t.Fatalf("incomplete receipt: %+v", receipt)
	}

	// Retrieve through a different IPFS node: the payload must cross the
	// bitswap wire and still verify.
	reader := fw.Client(cam, 1)
	res, err := reader.RetrieveData(receipt.TxID)
	if err != nil {
		t.Fatalf("retrieve: %v", err)
	}
	if !res.Verified {
		t.Fatal("payload failed verification")
	}
	if !bytes.Equal(res.Payload, frame.Data) {
		t.Fatal("retrieved payload differs from original")
	}
	var gotMeta detect.MetadataRecord
	if err := json.Unmarshal(res.Record.Metadata, &gotMeta); err != nil {
		t.Fatalf("metadata: %v", err)
	}
	if gotMeta.FrameID != frame.ID {
		t.Fatalf("metadata frame id %q != %q", gotMeta.FrameID, frame.ID)
	}
}

func TestUnregisteredSourceRejected(t *testing.T) {
	fw := newFramework(t)
	rogue, err := msp.NewSigner("nowhere", "rogue", msp.RoleUntrustedSource)
	if err != nil {
		t.Fatal(err)
	}
	client := fw.Client(rogue, 0)
	frame, meta := sampleFrame(t, 11)
	_, serr := client.StoreFrame(frame, meta)
	if serr == nil {
		t.Fatal("unregistered source must be rejected")
	}
	if !strings.Contains(serr.Error(), "validation failed") {
		t.Fatalf("unexpected error: %v", serr)
	}
}

func TestCorruptMetadataRejectedAndTrustDrops(t *testing.T) {
	fw := newFramework(t)
	crowd := newSource(t, fw, "crowd", "mobile-7", false)
	client := fw.Client(crowd, 0)

	before, err := fw.TrustScore(crowd.Identity.ID())
	if err != nil {
		t.Fatalf("trust before: %v", err)
	}

	frame, meta := sampleFrame(t, 13)
	meta.DataHash = strings.Repeat("0", 64) // hash mismatch with payload metadata
	meta.Detections[0].Confidence = 1.7     // schema violation too
	if _, err := client.StoreFrame(frame, meta); err == nil {
		t.Fatal("corrupt metadata must be rejected")
	}

	// The violation report must land on-chain and lower the score.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		after, err := fw.TrustScore(crowd.Identity.ID())
		if err == nil && after.Score < before.Score && after.Rejected == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	after, _ := fw.TrustScore(crowd.Identity.ID())
	t.Fatalf("trust score did not drop: before=%.3f after=%.3f rejected=%d", before.Score, after.Score, after.Rejected)
}

func TestTrustGateBlocksLowScoreSource(t *testing.T) {
	fw := newFramework(t)
	crowd := newSource(t, fw, "crowd", "troll-1", false)
	client := fw.Client(crowd, 0)

	// Drive the score below the acceptance gate with repeated violations.
	for i := 0; i < 8; i++ {
		frame, meta := sampleFrame(t, int64(100+i))
		meta.DataHash = strings.Repeat("f", 64)
		if _, err := client.StoreFrame(frame, meta); err == nil {
			t.Fatal("corrupt submission accepted")
		}
	}
	st, err := fw.TrustScore(crowd.Identity.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.Score >= 0.3 {
		t.Fatalf("score %.3f should be below the 0.3 gate after 8 violations", st.Score)
	}
	// Now even a well-formed submission must be rejected by the gate.
	frame, meta := sampleFrame(t, 999)
	if _, err := client.StoreFrame(frame, meta); err == nil {
		t.Fatal("low-trust source must be gated")
	}
}

func TestHonestUntrustedSourceGainsTrust(t *testing.T) {
	fw := newFramework(t)
	crowd := newSource(t, fw, "crowd", "citizen-1", false)
	client := fw.Client(crowd, 0)

	for i := 0; i < 5; i++ {
		frame, meta := sampleFrame(t, int64(200+i))
		if _, err := client.StoreFrame(frame, meta); err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
	}
	st, err := fw.TrustScore(crowd.Identity.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 5 || st.Rejected != 0 {
		t.Fatalf("accepted=%d rejected=%d", st.Accepted, st.Rejected)
	}
	if st.Score <= 0.5 {
		t.Fatalf("score %.3f should exceed the 0.5 initial value after 5 valid submissions", st.Score)
	}
}

func TestProvenanceChain(t *testing.T) {
	fw := newFramework(t)
	cam := newSource(t, fw, "city", "cam-002", true)
	client := fw.Client(cam, 0)

	var lastTx string
	const n = 4
	for i := 0; i < n; i++ {
		frame, meta := sampleFrame(t, int64(300+i))
		receipt, err := client.StoreFrame(frame, meta)
		if err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		lastTx = receipt.TxID
	}
	chain, err := client.Query().Provenance(lastTx)
	if err != nil {
		t.Fatalf("provenance: %v", err)
	}
	if len(chain) != n {
		t.Fatalf("chain length %d, want %d", len(chain), n)
	}
	if err := provenance.VerifyChain(chain); err != nil {
		t.Fatalf("verify chain: %v", err)
	}
	// Ledger inclusion proof for the newest record (wait for peer 0 to
	// catch up with the commit-notifying peer).
	deadline := time.Now().Add(5 * time.Second)
	for !fw.Net.ChannelAt(0).Peer(0).Ledger().HasTx(lastTx) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := provenance.VerifyInclusion(fw.Net.ChannelAt(0).Peer(0).Ledger(), lastTx); err != nil {
		t.Fatalf("inclusion: %v", err)
	}
}

func TestQueryByLabelAndSelector(t *testing.T) {
	fw := newFramework(t)
	cam := newSource(t, fw, "city", "cam-003", true)
	client := fw.Client(cam, 0)

	labels := make(map[string]bool)
	const n = 5
	for i := 0; i < n; i++ {
		frame, meta := sampleFrame(t, int64(400+i))
		if _, err := client.StoreFrame(frame, meta); err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		labels[meta.PrimaryLabel()] = true
	}
	total := 0
	for label := range labels {
		res, err := client.Query().Execute(query.Request{Kind: query.ByLabel, Value: label})
		if err != nil {
			t.Fatalf("label query %q: %v", label, err)
		}
		total += len(res.Records)
		for _, rec := range res.Records {
			var meta detect.MetadataRecord
			if err := json.Unmarshal(rec.Metadata, &meta); err != nil {
				t.Fatal(err)
			}
			if meta.PrimaryLabel() != label {
				t.Fatalf("record %s label %q != %q", rec.TxID, meta.PrimaryLabel(), label)
			}
		}
	}
	if total != n {
		t.Fatalf("label queries cover %d records, want %d", total, n)
	}

	// Selector: every record from this source.
	res, err := client.Query().Execute(query.Request{
		Kind:     query.BySelector,
		Selector: map[string]any{"source": cam.Identity.ID()},
	})
	if err != nil {
		t.Fatalf("selector query: %v", err)
	}
	if len(res.Records) != n {
		t.Fatalf("selector matched %d, want %d", len(res.Records), n)
	}
	// Source index agrees.
	bySource, err := client.Query().Execute(query.Request{Kind: query.BySource, Value: cam.Identity.ID()})
	if err != nil {
		t.Fatal(err)
	}
	if len(bySource.Records) != n {
		t.Fatalf("source index matched %d, want %d", len(bySource.Records), n)
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	fw := newFramework(t)
	cam := newSource(t, fw, "city", "cam-004", true)
	if err := fw.RegisterSource(cam.Identity, true); err == nil {
		t.Fatal("duplicate registration must fail")
	}
}

func TestAdminOnlyRegistration(t *testing.T) {
	fw := newFramework(t)
	mallory, err := msp.NewSigner("crowd", "mallory", msp.RoleUntrustedSource)
	if err != nil {
		t.Fatal(err)
	}
	gw := fw.Net.ChannelAt(0).Gateway(mallory)
	rec, _ := json.Marshal(contracts.UserRecord{UserID: "crowd/mallory", Role: "trusted-source", PubKey: mallory.Identity.PubKey})
	if _, err := gw.Submit(contracts.UsersCC, "registerUser", rec); err == nil {
		t.Fatal("non-admin registration must fail at endorsement")
	}
}

func TestLedgerRecordsEverything(t *testing.T) {
	fw := newFramework(t)
	cam := newSource(t, fw, "city", "cam-005", true)
	client := fw.Client(cam, 0)
	frame, meta := sampleFrame(t, 500)
	if _, err := client.StoreFrame(frame, meta); err != nil {
		t.Fatal(err)
	}
	// enrollAdmin + initParams + registerUser + addData = 4 valid txs.
	// Peer 0 may trail the commit-notifying peer briefly, so poll.
	deadline := time.Now().Add(5 * time.Second)
	for fw.LedgerStats().ValidTxs < 4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if stats := fw.LedgerStats(); stats.ValidTxs < 4 {
		t.Fatalf("expected >=4 valid txs, got %d", stats.ValidTxs)
	}
	if err := fw.Net.ChannelAt(0).Peer(0).Ledger().VerifyChain(); err != nil {
		t.Fatalf("chain verify: %v", err)
	}
}
