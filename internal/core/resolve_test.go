package core

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"socialchain/internal/fabric"
	"socialchain/internal/storage"
)

func TestResolveDerivesFabricKnobs(t *testing.T) {
	cfg := Config{
		StorageEngine:    storage.EnginePersist,
		DataDir:          "/tmp/deploy",
		ConsensusOverlap: 4,
		NumChannels:      3,
	}
	fc, err := cfg.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if fc.StateEngine != storage.EnginePersist {
		t.Fatalf("StateEngine = %q, want persist", fc.StateEngine)
	}
	if want := filepath.Join("/tmp/deploy", "fabric"); fc.DataDir != want {
		t.Fatalf("DataDir = %q, want %q", fc.DataDir, want)
	}
	if fc.ConsensusOverlap != 4 {
		t.Fatalf("ConsensusOverlap = %d, want 4", fc.ConsensusOverlap)
	}
	if fc.NumChannels != 3 {
		t.Fatalf("NumChannels = %d, want 3", fc.NumChannels)
	}
	if fc.StateIndexes == nil {
		t.Fatal("StateIndexes not defaulted to the data indexes")
	}
}

func TestResolveKeepsExplicitFabricValues(t *testing.T) {
	// Matching values at both levels are not a conflict.
	cfg := Config{
		StorageEngine:    storage.EngineSharded,
		ConsensusOverlap: 2,
		NumChannels:      2,
		DataDir:          "/tmp/d",
		Fabric: fabric.Config{
			StateEngine:      storage.EngineSharded,
			ConsensusOverlap: 2,
			NumChannels:      2,
			DataDir:          filepath.Join("/tmp/d", "fabric"),
		},
	}
	if _, err := cfg.Resolve(); err != nil {
		t.Fatalf("matching overrides rejected: %v", err)
	}
	// Fabric-only settings pass through untouched.
	only := Config{Fabric: fabric.Config{StateEngine: storage.EngineSingle, NumChannels: 4, ConsensusOverlap: 8}}
	fc, err := only.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if fc.StateEngine != storage.EngineSingle || fc.NumChannels != 4 || fc.ConsensusOverlap != 8 {
		t.Fatalf("fabric-level settings mangled: %+v", fc)
	}
}

func TestResolveRejectsConflictingOverrides(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			name: "storage engine",
			cfg: Config{
				StorageEngine: storage.EngineSingle,
				Fabric:        fabric.Config{StateEngine: storage.EngineSharded},
			},
			want: "conflicting storage engines",
		},
		{
			name: "data dir",
			cfg: Config{
				DataDir: "/tmp/a",
				Fabric:  fabric.Config{DataDir: "/tmp/elsewhere"},
			},
			want: "conflicting data directories",
		},
		{
			name: "consensus overlap",
			cfg: Config{
				ConsensusOverlap: 2,
				Fabric:           fabric.Config{ConsensusOverlap: 8},
			},
			want: "conflicting consensus overlap",
		},
		{
			name: "channel count",
			cfg: Config{
				NumChannels: 2,
				Fabric:      fabric.Config{NumChannels: 4},
			},
			want: "conflicting channel counts",
		},
		{
			name: "transport kind",
			cfg: Config{
				Transport: "tcp",
				Fabric:    fabric.Config{Transport: "inproc"},
			},
			want: "conflicting transports",
		},
		{
			name: "send queue",
			cfg: Config{
				TransportSendQueue: 64,
				Fabric:             fabric.Config{SendQueue: 128},
			},
			want: "conflicting send queue bounds",
		},
		{
			name: "dial timeout",
			cfg: Config{
				TransportDialTimeout: time.Second,
				Fabric:               fabric.Config{DialTimeout: 2 * time.Second},
			},
			want: "conflicting dial tunings",
		},
		{
			name: "listen addrs",
			cfg: Config{
				TransportListenAddrs: []string{"127.0.0.1:9001"},
				Fabric:               fabric.Config{ListenAddrs: []string{"127.0.0.1:9002"}},
			},
			want: "listen addresses set at both levels",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.cfg.Resolve()
			if err == nil {
				t.Fatalf("Resolve accepted conflicting %s overrides", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// core.New must surface the same conflict instead of building
			// a network over ambiguous knobs.
			if _, err := New(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New error = %v, want %q conflict", err, tc.want)
			}
		})
	}
}

func TestResolveTransportKnobs(t *testing.T) {
	cfg := Config{
		Transport:                "tcp",
		TransportListenAddrs:     []string{"127.0.0.1:9101", "127.0.0.1:9102"},
		TransportSendQueue:       64,
		TransportDialTimeout:     time.Second,
		TransportDialBackoffBase: 10 * time.Millisecond,
		TransportDialBackoffMax:  time.Second,
	}
	fc, err := cfg.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if fc.Transport != "tcp" || fc.SendQueue != 64 || fc.DialTimeout != time.Second {
		t.Fatalf("transport knobs not propagated: %+v", fc)
	}
	if len(fc.ListenAddrs) != 2 || fc.ListenAddrs[0] != "127.0.0.1:9101" {
		t.Fatalf("listen addrs not propagated: %v", fc.ListenAddrs)
	}
	if fc.DialBackoffBase != 10*time.Millisecond || fc.DialBackoffMax != time.Second {
		t.Fatalf("backoff knobs not propagated: %+v", fc)
	}

	// Matching values at both levels are not a conflict.
	both := Config{Transport: "tcp", Fabric: fabric.Config{Transport: "tcp"}}
	if _, err := both.Resolve(); err != nil {
		t.Fatalf("matching transport kinds rejected: %v", err)
	}
}

func TestResolveRejectsBadTransportTunings(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"unknown kind", Config{Transport: "carrier-pigeon"}, "unknown kind"},
		{"unknown fabric kind", Config{Transport: "tcp", Fabric: fabric.Config{Transport: "bogus"}}, "unknown kind"},
		{"negative queue", Config{TransportSendQueue: -1}, "must be >= 0"},
		{"negative timeout", Config{TransportDialTimeout: -time.Second}, "must be >= 0"},
		{
			name: "backoff inversion",
			cfg: Config{
				TransportDialBackoffBase: time.Second,
				TransportDialBackoffMax:  10 * time.Millisecond,
			},
			want: "exceeds its cap",
		},
		{
			name: "cross-level backoff inversion",
			cfg: Config{
				TransportDialBackoffBase: time.Second,
				Fabric:                   fabric.Config{DialBackoffMax: 10 * time.Millisecond},
			},
			want: "exceeds its cap",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.cfg.Resolve(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Resolve error = %v, want %q", err, tc.want)
			}
		})
	}
}
