package core

import (
	"path/filepath"
	"strings"
	"testing"

	"socialchain/internal/fabric"
	"socialchain/internal/storage"
)

func TestResolveDerivesFabricKnobs(t *testing.T) {
	cfg := Config{
		StorageEngine:    storage.EnginePersist,
		DataDir:          "/tmp/deploy",
		ConsensusOverlap: 4,
		NumChannels:      3,
	}
	fc, err := cfg.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if fc.StateEngine != storage.EnginePersist {
		t.Fatalf("StateEngine = %q, want persist", fc.StateEngine)
	}
	if want := filepath.Join("/tmp/deploy", "fabric"); fc.DataDir != want {
		t.Fatalf("DataDir = %q, want %q", fc.DataDir, want)
	}
	if fc.ConsensusOverlap != 4 {
		t.Fatalf("ConsensusOverlap = %d, want 4", fc.ConsensusOverlap)
	}
	if fc.NumChannels != 3 {
		t.Fatalf("NumChannels = %d, want 3", fc.NumChannels)
	}
	if fc.StateIndexes == nil {
		t.Fatal("StateIndexes not defaulted to the data indexes")
	}
}

func TestResolveKeepsExplicitFabricValues(t *testing.T) {
	// Matching values at both levels are not a conflict.
	cfg := Config{
		StorageEngine:    storage.EngineSharded,
		ConsensusOverlap: 2,
		NumChannels:      2,
		DataDir:          "/tmp/d",
		Fabric: fabric.Config{
			StateEngine:      storage.EngineSharded,
			ConsensusOverlap: 2,
			NumChannels:      2,
			DataDir:          filepath.Join("/tmp/d", "fabric"),
		},
	}
	if _, err := cfg.Resolve(); err != nil {
		t.Fatalf("matching overrides rejected: %v", err)
	}
	// Fabric-only settings pass through untouched.
	only := Config{Fabric: fabric.Config{StateEngine: storage.EngineSingle, NumChannels: 4, ConsensusOverlap: 8}}
	fc, err := only.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if fc.StateEngine != storage.EngineSingle || fc.NumChannels != 4 || fc.ConsensusOverlap != 8 {
		t.Fatalf("fabric-level settings mangled: %+v", fc)
	}
}

func TestResolveRejectsConflictingOverrides(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			name: "storage engine",
			cfg: Config{
				StorageEngine: storage.EngineSingle,
				Fabric:        fabric.Config{StateEngine: storage.EngineSharded},
			},
			want: "conflicting storage engines",
		},
		{
			name: "data dir",
			cfg: Config{
				DataDir: "/tmp/a",
				Fabric:  fabric.Config{DataDir: "/tmp/elsewhere"},
			},
			want: "conflicting data directories",
		},
		{
			name: "consensus overlap",
			cfg: Config{
				ConsensusOverlap: 2,
				Fabric:           fabric.Config{ConsensusOverlap: 8},
			},
			want: "conflicting consensus overlap",
		},
		{
			name: "channel count",
			cfg: Config{
				NumChannels: 2,
				Fabric:      fabric.Config{NumChannels: 4},
			},
			want: "conflicting channel counts",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.cfg.Resolve()
			if err == nil {
				t.Fatalf("Resolve accepted conflicting %s overrides", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// core.New must surface the same conflict instead of building
			// a network over ambiguous knobs.
			if _, err := New(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New error = %v, want %q conflict", err, tc.want)
			}
		})
	}
}
