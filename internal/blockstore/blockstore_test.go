package blockstore

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"socialchain/internal/cid"
)

func TestPutGetRoundTrip(t *testing.T) {
	m := NewMem()
	b := NewBlock([]byte("hello"))
	if err := m.Put(b); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(b.Cid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, b.Data) {
		t.Fatal("data mismatch")
	}
	if !m.Has(b.Cid) {
		t.Fatal("Has false after Put")
	}
}

func TestGetMissing(t *testing.T) {
	m := NewMem()
	_, err := m.Get(cid.SumRaw([]byte("absent")))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestPutRejectsCorruptBlock(t *testing.T) {
	m := NewMem()
	b := NewBlock([]byte("data"))
	b.Data = []byte("tampered")
	if err := m.Put(b); err == nil {
		t.Fatal("corrupt block accepted")
	}
	// Undefined CID rejected too.
	if err := m.Put(Block{Data: []byte("x")}); err == nil {
		t.Fatal("undefined cid accepted")
	}
}

func TestPutIdempotent(t *testing.T) {
	m := NewMem()
	b := NewBlock([]byte("once"))
	if err := m.Put(b); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(b); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Put", m.Len())
	}
	if m.SizeBytes() != uint64(len(b.Data)) {
		t.Fatalf("SizeBytes = %d", m.SizeBytes())
	}
}

func TestDelete(t *testing.T) {
	m := NewMem()
	b := NewBlock([]byte("doomed"))
	if err := m.Put(b); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(b.Cid); err != nil {
		t.Fatal(err)
	}
	if m.Has(b.Cid) {
		t.Fatal("block survived delete")
	}
	if m.SizeBytes() != 0 {
		t.Fatalf("SizeBytes = %d after delete", m.SizeBytes())
	}
	// Deleting again is a no-op.
	if err := m.Delete(b.Cid); err != nil {
		t.Fatal(err)
	}
}

func TestAllKeysSorted(t *testing.T) {
	m := NewMem()
	for i := 0; i < 20; i++ {
		if err := m.Put(NewBlock([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	keys := m.AllKeys()
	if len(keys) != 20 {
		t.Fatalf("got %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if !keys[i-1].Less(keys[i]) {
			t.Fatal("keys not sorted")
		}
	}
}

func TestGetReturnsCopy(t *testing.T) {
	m := NewMem()
	b := NewBlock([]byte("immutable"))
	if err := m.Put(b); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Get(b.Cid)
	got.Data[0] = 'X'
	again, _ := m.Get(b.Cid)
	if again.Data[0] == 'X' {
		t.Fatal("internal buffer aliased to caller")
	}
}

func TestPropertyPutGet(t *testing.T) {
	m := NewMem()
	err := quick.Check(func(data []byte) bool {
		b := NewBlock(data)
		if err := m.Put(b); err != nil {
			return false
		}
		got, err := m.Get(b.Cid)
		return err == nil && bytes.Equal(got.Data, data)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPinnerCounts(t *testing.T) {
	p := NewPinner()
	c := cid.SumRaw([]byte("root"))
	if p.IsPinned(c) {
		t.Fatal("fresh pinner has pin")
	}
	p.Pin(c)
	p.Pin(c)
	p.Unpin(c)
	if !p.IsPinned(c) {
		t.Fatal("double-pinned root lost after one unpin")
	}
	p.Unpin(c)
	if p.IsPinned(c) {
		t.Fatal("root still pinned after matching unpins")
	}
	p.Unpin(c) // extra unpin is a no-op
}

func TestPinnerRootsSorted(t *testing.T) {
	p := NewPinner()
	a, b := cid.SumRaw([]byte("a")), cid.SumRaw([]byte("b"))
	p.Pin(b)
	p.Pin(a)
	roots := p.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %d", len(roots))
	}
	if !roots[0].Less(roots[1]) {
		t.Fatal("roots not sorted")
	}
}

func TestGCKeepsPinnedReachable(t *testing.T) {
	m := NewMem()
	pinned := NewBlock([]byte("pinned"))
	child := NewBlock([]byte("child"))
	garbage := NewBlock([]byte("garbage"))
	for _, b := range []Block{pinned, child, garbage} {
		if err := m.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	p := NewPinner()
	p.Pin(pinned.Cid)
	reach := func(root cid.Cid) ([]cid.Cid, error) {
		if root.Equals(pinned.Cid) {
			return []cid.Cid{pinned.Cid, child.Cid}, nil
		}
		return []cid.Cid{root}, nil
	}
	removed, err := GC(m, p, reach)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed %d blocks, want 1", removed)
	}
	if !m.Has(pinned.Cid) || !m.Has(child.Cid) {
		t.Fatal("GC removed reachable blocks")
	}
	if m.Has(garbage.Cid) {
		t.Fatal("GC kept garbage")
	}
}

func TestGCEmptyPinsetClearsStore(t *testing.T) {
	m := NewMem()
	for i := 0; i < 5; i++ {
		if err := m.Put(NewBlock([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := GC(m, NewPinner(), func(cid.Cid) ([]cid.Cid, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if removed != 5 || m.Len() != 0 {
		t.Fatalf("removed=%d len=%d", removed, m.Len())
	}
}
