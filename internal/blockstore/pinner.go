package blockstore

import (
	"encoding/binary"
	"fmt"
	"sync"

	"socialchain/internal/cid"
	"socialchain/internal/storage"
)

// Pinner tracks which root CIDs must survive garbage collection. Pinning is
// recursive: GC keeps everything reachable from a pinned root. Pin counts
// live in a storage.KV engine keyed like the blockstore itself; a small
// mutex serialises only the read-modify-write of a count, while lookups and
// root listing go straight to the engine.
type Pinner struct {
	mu sync.Mutex // guards Pin/Unpin count updates
	kv storage.KV
}

// NewPinner returns an empty pin set on the default engine. It panics if
// the default engine cannot open (broken env override).
func NewPinner() *Pinner {
	p, err := NewPinnerWith(storage.Config{})
	if err != nil {
		panic(err)
	}
	return p
}

// NewPinnerWith returns a pin set on the engine cfg selects, reopening a
// durable config's existing pins.
func NewPinnerWith(cfg storage.Config) (*Pinner, error) {
	kv, err := storage.Open(cfg)
	if err != nil {
		return nil, fmt.Errorf("blockstore: pinner: %w", err)
	}
	return &Pinner{kv: kv}, nil
}

// Sync flushes the pin set to stable storage.
func (p *Pinner) Sync() error { return p.kv.Sync() }

// Close releases the pin set's engine.
func (p *Pinner) Close() error { return p.kv.Close() }

func pinCount(buf []byte, ok bool) uint64 {
	if !ok || len(buf) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(buf)
}

// Pin increments the pin count of root.
func (p *Pinner) Pin(root cid.Cid) {
	key := blockKey(root)
	p.mu.Lock()
	defer p.mu.Unlock()
	n := pinCount(p.kv.Get(key)) + 1
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, n)
	p.kv.Put(key, buf)
}

// Unpin decrements the pin count; the root is forgotten at zero.
func (p *Pinner) Unpin(root cid.Cid) {
	key := blockKey(root)
	p.mu.Lock()
	defer p.mu.Unlock()
	n := pinCount(p.kv.Get(key))
	switch {
	case n <= 1:
		p.kv.Delete(key)
	default:
		buf := make([]byte, 8)
		binary.BigEndian.PutUint64(buf, n-1)
		p.kv.Put(key, buf)
	}
}

// IsPinned reports whether root has a positive pin count.
func (p *Pinner) IsPinned(root cid.Cid) bool {
	return pinCount(p.kv.Get(blockKey(root))) > 0
}

// Roots returns the pinned roots in deterministic order (the engine
// iterates CID binary keys in cid.Less order).
func (p *Pinner) Roots() []cid.Cid {
	var out []cid.Cid
	p.kv.IterPrefix("", func(key string, _ []byte) bool {
		c, err := cid.Cast([]byte(key))
		if err != nil {
			panic("blockstore: undecodable pin key: " + err.Error())
		}
		out = append(out, c)
		return true
	})
	return out
}

// GC removes every block not reachable from a pinned root. reach enumerates
// the CIDs reachable from a root (the DAG walker provides this). It returns
// the number of blocks removed.
func GC(bs Blockstore, p *Pinner, reach func(root cid.Cid) ([]cid.Cid, error)) (int, error) {
	live := make(map[cid.Cid]bool)
	for _, root := range p.Roots() {
		cids, err := reach(root)
		if err != nil {
			return 0, err
		}
		for _, c := range cids {
			live[c] = true
		}
	}
	removed := 0
	for _, c := range bs.AllKeys() {
		if !live[c] {
			if err := bs.Delete(c); err != nil {
				return removed, err
			}
			removed++
		}
	}
	return removed, nil
}
