package blockstore

import (
	"sort"
	"sync"

	"socialchain/internal/cid"
)

// Pinner tracks which root CIDs must survive garbage collection. Pinning is
// recursive: GC keeps everything reachable from a pinned root.
type Pinner struct {
	mu    sync.RWMutex
	roots map[cid.Cid]int // pin count per root
}

// NewPinner returns an empty pin set.
func NewPinner() *Pinner {
	return &Pinner{roots: make(map[cid.Cid]int)}
}

// Pin increments the pin count of root.
func (p *Pinner) Pin(root cid.Cid) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.roots[root]++
}

// Unpin decrements the pin count; the root is forgotten at zero.
func (p *Pinner) Unpin(root cid.Cid) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n, ok := p.roots[root]; ok {
		if n <= 1 {
			delete(p.roots, root)
		} else {
			p.roots[root] = n - 1
		}
	}
}

// IsPinned reports whether root has a positive pin count.
func (p *Pinner) IsPinned(root cid.Cid) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.roots[root] > 0
}

// Roots returns the pinned roots in deterministic order.
func (p *Pinner) Roots() []cid.Cid {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]cid.Cid, 0, len(p.roots))
	for c := range p.roots {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// GC removes every block not reachable from a pinned root. reach enumerates
// the CIDs reachable from a root (the DAG walker provides this). It returns
// the number of blocks removed.
func GC(bs Blockstore, p *Pinner, reach func(root cid.Cid) ([]cid.Cid, error)) (int, error) {
	live := make(map[cid.Cid]bool)
	for _, root := range p.Roots() {
		cids, err := reach(root)
		if err != nil {
			return 0, err
		}
		for _, c := range cids {
			live[c] = true
		}
	}
	removed := 0
	for _, c := range bs.AllKeys() {
		if !live[c] {
			if err := bs.Delete(c); err != nil {
				return removed, err
			}
			removed++
		}
	}
	return removed, nil
}
