// Package blockstore provides CID-addressed block storage for the off-chain
// store, with pin tracking and mark-and-sweep garbage collection. It is the
// persistence layer beneath the DAG and bitswap, standing in for IPFS's
// flatfs datastore. Blocks live in a pluggable storage.KV engine keyed by
// the CID's binary form; with the default sharded engine, concurrent Adds
// and Gets from different clients stripe across independent locks.
package blockstore

import (
	"errors"
	"fmt"
	"sync/atomic"

	"socialchain/internal/cid"
	"socialchain/internal/storage"
)

// ErrNotFound is returned when a block is absent.
var ErrNotFound = errors.New("blockstore: block not found")

// Block is a unit of stored content, addressed by the CID of its bytes.
type Block struct {
	Cid  cid.Cid
	Data []byte
}

// NewBlock constructs a raw block, hashing data.
func NewBlock(data []byte) Block {
	return Block{Cid: cid.SumRaw(data), Data: data}
}

// Blockstore is the storage interface used throughout the off-chain store.
type Blockstore interface {
	Put(b Block) error
	Get(c cid.Cid) (Block, error)
	Has(c cid.Cid) bool
	Delete(c cid.Cid) error
	AllKeys() []cid.Cid
	Len() int
	SizeBytes() uint64
	// Sync flushes to stable storage; Close releases the store. No-ops for
	// in-memory engines.
	Sync() error
	Close() error
}

// Mem is a Blockstore safe for concurrent use, layered over a storage.KV
// engine — in-memory on the default engines, disk-backed (and
// restart-surviving) on the persist engine.
type Mem struct {
	kv    storage.KV
	bytes atomic.Int64
}

// NewMem returns an empty blockstore on the default (sharded) engine. It
// panics if the default engine cannot open (broken env override).
func NewMem() *Mem {
	m, err := NewMemWith(storage.Config{})
	if err != nil {
		panic(err)
	}
	return m
}

// NewMemWith returns a blockstore on the engine cfg selects, reopening
// whatever a durable config's directory already holds; the total-bytes
// counter is rebuilt from the recovered blocks.
func NewMemWith(cfg storage.Config) (*Mem, error) {
	kv, err := storage.Open(cfg)
	if err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	m := &Mem{kv: kv}
	if kv.Len() > 0 {
		var total int64
		kv.IterPrefix("", func(_ string, v []byte) bool {
			total += int64(len(v))
			return true
		})
		m.bytes.Store(total)
	}
	return m, nil
}

// Sync implements Blockstore.
func (m *Mem) Sync() error { return m.kv.Sync() }

// Close implements Blockstore.
func (m *Mem) Close() error { return m.kv.Close() }

// blockKey is the engine key of a block: the CID's binary form, whose
// lexical order equals cid.Cid.Less order, keeping AllKeys deterministic.
func blockKey(c cid.Cid) string { return string(c.Bytes()) }

// Put implements Blockstore. It verifies the block's CID matches its bytes,
// preserving the content-addressing invariant. Re-putting an existing
// block is idempotent.
func (m *Mem) Put(b Block) error {
	if !b.Cid.Defined() {
		return errors.New("blockstore: undefined cid")
	}
	if err := verifyBlock(b); err != nil {
		return err
	}
	key := blockKey(b.Cid)
	if _, ok := m.kv.Get(key); ok {
		return nil // duplicate adds are the common case; skip the copy
	}
	data := append([]byte(nil), b.Data...)
	if m.kv.Put(key, data) {
		m.bytes.Add(int64(len(data)))
	}
	return nil
}

// verifyBlock recomputes the hash under the block's own codec.
func verifyBlock(b Block) error {
	var want cid.Cid
	switch b.Cid.Codec() {
	case cid.CodecRaw:
		want = cid.SumRaw(b.Data)
	case cid.CodecDagNode:
		want = cid.SumDagNode(b.Data)
	default:
		return fmt.Errorf("blockstore: unknown codec %#x", b.Cid.Codec())
	}
	if !want.Equals(b.Cid) {
		return fmt.Errorf("blockstore: block bytes do not match cid %s", b.Cid)
	}
	return nil
}

// Get implements Blockstore.
func (m *Mem) Get(c cid.Cid) (Block, error) {
	d, ok := m.kv.Get(blockKey(c))
	if !ok {
		return Block{}, fmt.Errorf("%w: %s", ErrNotFound, c)
	}
	return Block{Cid: c, Data: append([]byte(nil), d...)}, nil
}

// Has implements Blockstore.
func (m *Mem) Has(c cid.Cid) bool {
	_, ok := m.kv.Get(blockKey(c))
	return ok
}

// Delete implements Blockstore. Deleting an absent block is a no-op.
func (m *Mem) Delete(c cid.Cid) error {
	if prev, ok := m.kv.Delete(blockKey(c)); ok {
		m.bytes.Add(-int64(len(prev)))
	}
	return nil
}

// AllKeys implements Blockstore, returning keys in deterministic order.
func (m *Mem) AllKeys() []cid.Cid {
	var keys []cid.Cid
	m.kv.IterPrefix("", func(key string, _ []byte) bool {
		c, err := cid.Cast([]byte(key))
		if err != nil {
			// Keys are only ever written by Put from a defined CID.
			panic("blockstore: undecodable block key: " + err.Error())
		}
		keys = append(keys, c)
		return true
	})
	return keys
}

// Len implements Blockstore.
func (m *Mem) Len() int {
	return m.kv.Len()
}

// SizeBytes implements Blockstore.
func (m *Mem) SizeBytes() uint64 {
	n := m.bytes.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}
