// Package blockstore provides CID-addressed block storage for the off-chain
// store, with pin tracking and mark-and-sweep garbage collection. It is the
// persistence layer beneath the DAG and bitswap, standing in for IPFS's
// flatfs datastore.
package blockstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"socialchain/internal/cid"
)

// ErrNotFound is returned when a block is absent.
var ErrNotFound = errors.New("blockstore: block not found")

// Block is a unit of stored content, addressed by the CID of its bytes.
type Block struct {
	Cid  cid.Cid
	Data []byte
}

// NewBlock constructs a raw block, hashing data.
func NewBlock(data []byte) Block {
	return Block{Cid: cid.SumRaw(data), Data: data}
}

// Blockstore is the storage interface used throughout the off-chain store.
type Blockstore interface {
	Put(b Block) error
	Get(c cid.Cid) (Block, error)
	Has(c cid.Cid) bool
	Delete(c cid.Cid) error
	AllKeys() []cid.Cid
	Len() int
	SizeBytes() uint64
}

// Mem is an in-memory Blockstore safe for concurrent use.
type Mem struct {
	mu    sync.RWMutex
	data  map[cid.Cid][]byte
	bytes uint64
}

// NewMem returns an empty in-memory blockstore.
func NewMem() *Mem {
	return &Mem{data: make(map[cid.Cid][]byte)}
}

// Put implements Blockstore. It verifies the block's CID matches its bytes,
// preserving the content-addressing invariant.
func (m *Mem) Put(b Block) error {
	if !b.Cid.Defined() {
		return errors.New("blockstore: undefined cid")
	}
	if err := verifyBlock(b); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.data[b.Cid]; ok {
		return nil // idempotent
	}
	m.data[b.Cid] = append([]byte(nil), b.Data...)
	m.bytes += uint64(len(b.Data))
	return nil
}

// verifyBlock recomputes the hash under the block's own codec.
func verifyBlock(b Block) error {
	var want cid.Cid
	switch b.Cid.Codec() {
	case cid.CodecRaw:
		want = cid.SumRaw(b.Data)
	case cid.CodecDagNode:
		want = cid.SumDagNode(b.Data)
	default:
		return fmt.Errorf("blockstore: unknown codec %#x", b.Cid.Codec())
	}
	if !want.Equals(b.Cid) {
		return fmt.Errorf("blockstore: block bytes do not match cid %s", b.Cid)
	}
	return nil
}

// Get implements Blockstore.
func (m *Mem) Get(c cid.Cid) (Block, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.data[c]
	if !ok {
		return Block{}, fmt.Errorf("%w: %s", ErrNotFound, c)
	}
	return Block{Cid: c, Data: append([]byte(nil), d...)}, nil
}

// Has implements Blockstore.
func (m *Mem) Has(c cid.Cid) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.data[c]
	return ok
}

// Delete implements Blockstore. Deleting an absent block is a no-op.
func (m *Mem) Delete(c cid.Cid) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok := m.data[c]; ok {
		m.bytes -= uint64(len(d))
		delete(m.data, c)
	}
	return nil
}

// AllKeys implements Blockstore, returning keys in deterministic order.
func (m *Mem) AllKeys() []cid.Cid {
	m.mu.RLock()
	defer m.mu.RUnlock()
	keys := make([]cid.Cid, 0, len(m.data))
	for c := range m.data {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

// Len implements Blockstore.
func (m *Mem) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// SizeBytes implements Blockstore.
func (m *Mem) SizeBytes() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}
