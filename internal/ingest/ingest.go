// Package ingest implements the pipelined, batched write path of the
// framework: a streaming pipeline that accepts social records, chunks and
// adds their payloads to IPFS over a bounded worker pool, coalesces the
// on-chain metadata commits into batched endorsement proposals (one
// envelope carrying many addData calls, executed on one simulator per
// peer), and overlaps ordering/commit of one batch with preparation of
// the next. It is the counterpart of internal/query's retrieval pipeline
// for the store direction of the paper's Figure 1, scaled for the
// heavy-write social workloads the related work (DECENT, smart-contract
// personal-data stores) identifies as the bottleneck.
//
// Stages and backpressure:
//
//	Submit ──► in (bounded queue) ──► AddWorkers × [verify, hash-check,
//	chunk+IPFS Add] ──► staged ──► batcher [cut at BatchSize or
//	FlushInterval] ──► MaxInFlight × [endorse batch, order, commit]
//
// Every queue is bounded: Submit blocks when the input queue is full, the
// batcher blocks when MaxInFlight batches are awaiting commit, and
// ordering.ErrBacklog from the cutter is retried with a delay. A record
// that fails client-side validation (bad signature, payload/metadata hash
// mismatch) is rejected before it costs IPFS storage, exactly like the
// serial core.Client.StoreData path. A batch whose endorsement fails is
// bisected so one poisoned record cannot sink its batch-mates.
package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/contracts"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/ipfs"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
)

// ErrValidation wraps client-side record rejections (bad payload
// signature, wrong signer, payload hash not matching the metadata).
var ErrValidation = errors.New("ingest: validation failed")

// ErrClosed is returned by Submit after Drain has begun.
var ErrClosed = errors.New("ingest: pipeline closed")

// Record is one social-data submission: a source-signed payload and its
// extracted metadata.
type Record struct {
	Signed msp.SignedMessage
	Meta   detect.MetadataRecord
}

// Result reports the outcome of one record, in Submit order.
type Result struct {
	Index int
	// RecordID is the on-chain record identifier (the sub-transaction ID
	// of the record's call inside its batch envelope); retrieval resolves
	// it exactly like a serial store's transaction ID.
	RecordID string
	CID      string
	BlockNum uint64
	// Latency is Submit-to-commit, including queueing.
	Latency time.Duration
	Err     error
}

// Mode selects a pipeline preset for the serial/batched/pipelined
// ablation. The serial and batched presets define their stage shape and
// force the corresponding Config fields; the pipelined preset only fills
// fields left unset.
type Mode string

const (
	// ModeSerial degenerates the pipeline to the one-record-at-a-time
	// path: one add worker, one record per envelope, one batch in flight.
	ModeSerial Mode = "serial"
	// ModeBatched coalesces endorsement into batch envelopes but keeps a
	// single add worker and a single batch in flight.
	ModeBatched Mode = "batched"
	// ModePipelined batches and overlaps all stages (the default).
	ModePipelined Mode = "pipelined"
)

// Valid reports whether m names a known preset (empty is not valid; the
// zero Config defaults to ModePipelined via fill, but CLIs should reject
// unknown spellings rather than silently running the wrong ablation leg).
func (m Mode) Valid() bool {
	switch m {
	case ModeSerial, ModeBatched, ModePipelined:
		return true
	}
	return false
}

// Config tunes the pipeline.
type Config struct {
	// Mode applies a preset (default pipelined).
	Mode Mode
	// AddWorkers bounds concurrent chunk+IPFS-Add workers.
	AddWorkers int
	// BatchSize is the number of records coalesced into one envelope.
	BatchSize int
	// MaxInFlight bounds batches submitted but not yet committed.
	// Consecutive batches from one source read the provenance head the
	// previous batch wrote, so a second in-flight batch typically pays an
	// MVCC re-endorsement; the gateway retries it automatically.
	MaxInFlight int
	// FlushInterval cuts a partial batch after this delay (default 25ms).
	FlushInterval time.Duration
	// QueueDepth bounds the input queue Submit blocks on
	// (default 2×BatchSize, minimum 64).
	QueueDepth int
}

func (c *Config) fill() {
	if c.Mode == "" {
		c.Mode = ModePipelined
	}
	switch c.Mode {
	case ModeSerial:
		c.AddWorkers, c.BatchSize, c.MaxInFlight = 1, 1, 1
	case ModeBatched:
		c.AddWorkers, c.MaxInFlight = 1, 1
		if c.BatchSize <= 0 {
			c.BatchSize = 64
		}
	default:
		if c.AddWorkers <= 0 {
			c.AddWorkers = 8
		}
		if c.BatchSize <= 0 {
			c.BatchSize = 64
		}
		if c.MaxInFlight <= 0 {
			c.MaxInFlight = 2
		}
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 25 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.BatchSize
		if c.QueueDepth < 64 {
			c.QueueDepth = 64
		}
	}
}

// Stats aggregates a pipeline run.
type Stats struct {
	Submitted int
	Stored    int
	Failed    int
	// Batches counts committed envelopes (bisected halves count once each).
	Batches int
	// ConflictRetries counts whole-batch re-endorsements after committed
	// MVCC invalidations — the price of overlapping batches that share
	// the per-source provenance head.
	ConflictRetries int
	Elapsed         time.Duration
}

// Throughput returns committed records per second.
func (s Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Stored) / s.Elapsed.Seconds()
}

type job struct {
	idx int
	rec Record
	enq time.Time
}

type staged struct {
	idx  int
	cid  string
	call chaincode.BatchCall
	enq  time.Time
}

// Pipeline is a running ingest pipeline bound to one gateway (the
// submitting source) and one IPFS node.
type Pipeline struct {
	gw    *fabric.Gateway
	store *ipfs.Node
	cfg   Config

	in     chan job
	staged chan staged
	slots  chan struct{}

	producers sync.WaitGroup // in-flight Submit sends on p.in
	addWg     sync.WaitGroup
	batchWg   sync.WaitGroup
	subWg     sync.WaitGroup

	mu      sync.Mutex
	started bool
	closed  bool
	startT  time.Time
	results []Result
	stats   Stats
}

// New builds a pipeline; call Start before Submit.
func New(gw *fabric.Gateway, store *ipfs.Node, cfg Config) *Pipeline {
	cfg.fill()
	return &Pipeline{
		gw:     gw,
		store:  store,
		cfg:    cfg,
		in:     make(chan job, cfg.QueueDepth),
		staged: make(chan staged, cfg.BatchSize),
		slots:  make(chan struct{}, cfg.MaxInFlight),
	}
}

// Config returns the effective (preset-resolved) configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Start launches the stage workers. Starting twice is a no-op.
func (p *Pipeline) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return
	}
	p.started = true
	p.startT = time.Now()
	for i := 0; i < p.cfg.AddWorkers; i++ {
		p.addWg.Add(1)
		go p.addWorker()
	}
	p.batchWg.Add(1)
	go p.batcher()
}

// Submit feeds one record into the pipeline, blocking when the input
// queue is full (backpressure to the producer — the open-loop driver in
// cmd/trafficgen measures exactly this).
func (p *Pipeline) Submit(rec Record) error {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return errors.New("ingest: pipeline not started")
	}
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	idx := len(p.results)
	p.results = append(p.results, Result{Index: idx})
	p.stats.Submitted++
	// Registered under the same lock as the closed check, so Drain's
	// producers.Wait() either sees this send or Submit saw closed —
	// close(p.in) can never race an in-flight send.
	p.producers.Add(1)
	p.mu.Unlock()
	p.in <- job{idx: idx, rec: rec, enq: time.Now()}
	p.producers.Done()
	return nil
}

// Drain closes the input, waits for every in-flight record to resolve and
// returns all results in Submit order.
func (p *Pipeline) Drain() []Result {
	p.mu.Lock()
	if !p.started || p.closed {
		defer p.mu.Unlock()
		p.closed = true
		return append([]Result(nil), p.results...)
	}
	p.closed = true
	p.mu.Unlock()
	p.producers.Wait() // add workers keep draining, so blocked Submits finish
	close(p.in)
	p.addWg.Wait()
	close(p.staged)
	p.batchWg.Wait()
	p.subWg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Elapsed = time.Since(p.startT)
	return append([]Result(nil), p.results...)
}

// Run ingests a fixed record set end to end.
func (p *Pipeline) Run(records []Record) []Result {
	p.Start()
	for _, r := range records {
		if err := p.Submit(r); err != nil {
			break
		}
	}
	return p.Drain()
}

// Stats returns the pipeline's aggregate counters (Elapsed is set by
// Drain).
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// addWorker is stage 1: client-side validation, chunking and IPFS Add.
func (p *Pipeline) addWorker() {
	defer p.addWg.Done()
	for j := range p.in {
		s, err := p.prepare(j)
		if err != nil {
			p.fail(j.idx, err)
			continue
		}
		p.staged <- s
	}
}

// prepare validates one record and uploads its payload off-chain; the
// returned staged entry carries the on-chain call for the batcher.
func (p *Pipeline) prepare(j job) (staged, error) {
	if !j.rec.Signed.Verify() {
		return staged{}, fmt.Errorf("%w: bad payload signature", ErrValidation)
	}
	if got, want := j.rec.Signed.Creator.ID(), p.gw.Client().ID(); got != want {
		return staged{}, fmt.Errorf("%w: payload signed by %s, pipeline client is %s", ErrValidation, got, want)
	}
	sum := sha256.Sum256(j.rec.Signed.Payload)
	if actual := hex.EncodeToString(sum[:]); actual != j.rec.Meta.DataHash {
		return staged{}, fmt.Errorf("%w: payload hash %s does not match metadata data_hash", ErrValidation, actual[:12])
	}
	metaJSON, err := json.Marshal(j.rec.Meta)
	if err != nil {
		return staged{}, err
	}
	root, err := p.store.Add(j.rec.Signed.Payload)
	if err != nil {
		return staged{}, fmt.Errorf("ingest: ipfs add: %w", err)
	}
	return staged{
		idx: j.idx,
		cid: root.String(),
		call: chaincode.BatchCall{
			Chaincode: contracts.DataCC,
			Fn:        "addData",
			Args:      [][]byte{[]byte(root.String()), metaJSON},
		},
		enq: j.enq,
	}, nil
}

// batcher is stage 2: cut staged records into batch envelopes at
// BatchSize or FlushInterval, holding at most MaxInFlight batches in the
// commit stage.
func (p *Pipeline) batcher() {
	defer p.batchWg.Done()
	var cur []staged
	var timer <-chan time.Time
	flush := func() {
		if len(cur) == 0 {
			return
		}
		batch := cur
		cur, timer = nil, nil
		p.slots <- struct{}{} // in-flight bound; blocks the cutter
		p.subWg.Add(1)
		go func() {
			defer p.subWg.Done()
			defer func() { <-p.slots }()
			p.commit(batch)
		}()
	}
	for {
		select {
		case s, ok := <-p.staged:
			if !ok {
				flush()
				return
			}
			cur = append(cur, s)
			if len(cur) == 1 {
				timer = time.After(p.cfg.FlushInterval)
			}
			if len(cur) >= p.cfg.BatchSize {
				flush()
			}
		case <-timer:
			flush()
		}
	}
}

// backlogRetries bounds resubmission after ordering backpressure.
const backlogRetries = 20

// conflictRetries bounds whole-batch re-endorsement after a committed
// MVCC invalidation. Consecutive batches from one source both read the
// provenance head, so with MaxInFlight > 1 the loser of each commit round
// must re-endorse against fresh state; commit rounds always admit one
// winner, so a handful of rounds clears any in-flight window. The
// gateway's own mvccRetries sit inside each attempt.
const conflictRetries = 12

// commit is stage 3: endorse the batch as one envelope, order it and wait
// for commit. An endorsement failure on a multi-record batch is bisected
// to isolate the failing record(s).
func (p *Pipeline) commit(items []staged) {
	calls := make([]chaincode.BatchCall, len(items))
	for i, it := range items {
		calls[i] = it.call
	}
	var res *fabric.Result
	var err error
	for attempt := 0; ; attempt++ {
		res, err = p.submitWithBackoff(calls)
		if err == nil && res.Flag == ledger.MVCCConflict && attempt < conflictRetries {
			p.mu.Lock()
			p.stats.ConflictRetries++
			p.mu.Unlock()
			time.Sleep(time.Duration(attempt+1) * 2 * time.Millisecond)
			continue
		}
		break
	}
	if err != nil {
		// Bisection isolates a poisoned record behind an endorsement
		// failure; ordering rejections are batch-agnostic, and splitting
		// would hammer an already-saturated (or stopped) orderer with
		// O(N log N) extra submissions.
		if len(items) > 1 && !errors.Is(err, ordering.ErrBacklog) && !errors.Is(err, ordering.ErrStopped) {
			mid := len(items) / 2
			p.commit(items[:mid])
			p.commit(items[mid:])
			return
		}
		for _, it := range items {
			p.fail(it.idx, err)
		}
		return
	}
	if res.Flag != ledger.Valid {
		ferr := res.Err()
		for _, it := range items {
			p.fail(it.idx, ferr)
		}
		return
	}
	now := time.Now()
	p.mu.Lock()
	p.stats.Batches++
	p.stats.Stored += len(items)
	for i, it := range items {
		p.results[it.idx] = Result{
			Index:    it.idx,
			RecordID: chaincode.SubTxID(res.TxID, i),
			CID:      it.cid,
			BlockNum: res.BlockNum,
			Latency:  now.Sub(it.enq),
		}
	}
	p.mu.Unlock()
}

// submitWithBackoff submits one batch envelope, backing off and retrying
// on ordering backpressure (the cutter's MaxPendingTxs bound).
func (p *Pipeline) submitWithBackoff(calls []chaincode.BatchCall) (*fabric.Result, error) {
	for attempt := 0; ; attempt++ {
		res, err := p.gw.SubmitBatch(calls)
		if err != nil && errors.Is(err, ordering.ErrBacklog) && attempt < backlogRetries {
			time.Sleep(time.Duration(attempt+1) * 2 * time.Millisecond)
			continue
		}
		return res, err
	}
}

func (p *Pipeline) fail(idx int, err error) {
	p.mu.Lock()
	p.results[idx].Err = err
	p.stats.Failed++
	p.mu.Unlock()
}
