package ingest_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"socialchain/internal/contracts"
	"socialchain/internal/core"
	"socialchain/internal/detect"
	"socialchain/internal/fabric"
	"socialchain/internal/ingest"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/sim"
)

// newTestFramework builds a small zero-latency framework with one
// registered trusted camera client.
func newTestFramework(t *testing.T) (*core.Framework, *core.Client, *msp.Signer) {
	t.Helper()
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers: 4,
			Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond},
		},
		IPFSNodes: 2,
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(fw.Close)
	cam, err := msp.NewSigner("city", "ingest-cam", msp.RoleTrustedSource)
	if err != nil {
		t.Fatalf("signer: %v", err)
	}
	if err := fw.RegisterSource(cam.Identity, true); err != nil {
		t.Fatalf("register: %v", err)
	}
	return fw, fw.Client(cam, 0), cam
}

func testRecords(t *testing.T, signer *msp.Signer, seed int64, n, size int) []ingest.Record {
	t.Helper()
	rng := sim.NewRNG(seed)
	det := detect.NewDetector(seed)
	out := make([]ingest.Record, n)
	for i := range out {
		f := &detect.Frame{
			ID:         detect.FrameIDFor(fmt.Sprintf("ingest-%d", i), i),
			VideoID:    fmt.Sprintf("ingest-%d", i),
			CameraID:   "ingest-cam",
			Index:      i,
			Platform:   detect.PlatformStatic,
			Encoding:   detect.EncodingJPEG,
			Width:      1280,
			Height:     720,
			Data:       rng.Bytes(size),
			Timestamp:  time.Now(),
			Location:   detect.GeoPoint{Latitude: 12.97, Longitude: 77.59},
			LightLevel: 1,
		}
		meta, _ := det.ExtractMetadata(f)
		out[i] = ingest.Record{Signed: msp.NewSignedMessage(signer, f.Data), Meta: meta}
	}
	return out
}

// TestIntegrationPipelineModes runs every pipeline mode end to end and
// checks all records commit, are retrievable and keep provenance order.
func TestIntegrationPipelineModes(t *testing.T) {
	for _, cfg := range []ingest.Config{
		{Mode: ingest.ModeSerial},
		{Mode: ingest.ModeBatched, BatchSize: 5},
		{Mode: ingest.ModePipelined, BatchSize: 5, AddWorkers: 4, MaxInFlight: 2},
	} {
		cfg := cfg
		t.Run(string(cfg.Mode), func(t *testing.T) {
			fw, client, cam := newTestFramework(t)
			const n = 12
			records := testRecords(t, cam, 7, n, 2048)
			results := client.Pipeline(cfg).Run(records)
			if len(results) != n {
				t.Fatalf("got %d results for %d records", len(results), n)
			}
			qe := fw.QueryEngine(1)
			for _, r := range results {
				if r.Err != nil {
					t.Fatalf("record %d: %v", r.Index, r.Err)
				}
				if r.RecordID == "" || r.CID == "" {
					t.Fatalf("record %d: empty id/cid: %+v", r.Index, r)
				}
				res, err := qe.Data(r.RecordID)
				if err != nil {
					t.Fatalf("retrieve %s: %v", r.RecordID, err)
				}
				if !res.Verified {
					t.Fatalf("retrieve %s: payload not verified", r.RecordID)
				}
			}
			// Provenance: the source's chain head links back through all
			// n records, whatever order the batches committed in.
			raw, err := client.Gateway().Evaluate(contracts.DataCC, "count")
			if err != nil {
				t.Fatalf("count: %v", err)
			}
			if string(raw) != fmt.Sprint(n) {
				t.Fatalf("on-chain record count = %s, want %d", raw, n)
			}
			st, err := fw.TrustScore(cam.Identity.ID())
			if err != nil {
				t.Fatalf("trust score: %v", err)
			}
			if st.Accepted != n {
				t.Fatalf("trust accepted = %d, want %d", st.Accepted, n)
			}
		})
	}
}

// TestIntegrationPipelineRejectsInvalid checks client-side validation:
// hash mismatches and foreign signatures are rejected before IPFS.
func TestIntegrationPipelineRejectsInvalid(t *testing.T) {
	_, client, cam := newTestFramework(t)
	records := testRecords(t, cam, 11, 3, 1024)
	records[1].Meta.DataHash = strings.Repeat("0", 64)
	results := client.Pipeline(ingest.Config{Mode: ingest.ModeBatched, BatchSize: 3}).Run(records)
	if results[1].Err == nil || !errors.Is(results[1].Err, ingest.ErrValidation) {
		t.Fatalf("corrupt record error = %v, want ErrValidation", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("record %d should commit, got %v", i, results[i].Err)
		}
	}
}

// TestIntegrationPipelineBisectsPoisonedBatch checks that a record that
// passes client-side checks but fails chaincode validation sinks only
// itself, not its batch-mates.
func TestIntegrationPipelineBisectsPoisonedBatch(t *testing.T) {
	_, client, cam := newTestFramework(t)
	records := testRecords(t, cam, 13, 6, 1024)
	records[3].Meta.CameraID = "" // schema-invalid on-chain, invisible to client checks
	results := client.Pipeline(ingest.Config{Mode: ingest.ModeBatched, BatchSize: 6}).Run(records)
	for i, r := range results {
		if i == 3 {
			if r.Err == nil {
				t.Fatalf("poisoned record committed: %+v", r)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("record %d sunk by poisoned batch-mate: %v", i, r.Err)
		}
	}
}

// TestOrderingBackpressureSurfaces checks that a stopped network rejects
// ingest rather than hanging: results carry the typed ordering error.
func TestOrderingBackpressureSurfaces(t *testing.T) {
	fw, client, cam := newTestFramework(t)
	fw.Net.Stop()
	records := testRecords(t, cam, 17, 2, 512)
	results := client.Pipeline(ingest.Config{Mode: ingest.ModeSerial}).Run(records)
	for _, r := range results {
		if r.Err == nil || !errors.Is(r.Err, ordering.ErrStopped) {
			t.Fatalf("record %d error = %v, want ordering.ErrStopped", r.Index, r.Err)
		}
	}
}
