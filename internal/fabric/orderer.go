package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"socialchain/internal/obs"
	"socialchain/internal/ordering"
	"socialchain/internal/transport"
)

// OrdererConfig describes the ordering process of a networked deployment.
type OrdererConfig struct {
	// Listen is the TCP listen address.
	Listen string
	// Peers maps the peer processes' transport IDs to their dial addresses
	// (missing peers are adopted when they dial in).
	Peers map[string]string
	// Net is the deployment-wide network config (same rules as NodeConfig).
	Net Config
}

// Orderer is the deployment's ordering process: it runs one transaction
// cutter (ordering.Service) per channel and hands each cut batch to the
// peer processes' consensus validators by broadcasting a propose RPC —
// consensus deduplicates by digest, so the broadcast reaches whichever
// validator currently leads without the orderer tracking views. Remote
// gateways reach it through the submit RPC; ordering backpressure and
// shutdown map onto ordering.ErrBacklog / ordering.ErrStopped across the
// wire.
type Orderer struct {
	net      Config
	t        *transport.TCP
	rpc      *transport.RPC
	services map[string]*ordering.Service
	order    []string
	peerIDs  []string

	obsReg *obs.Registry
	health *obs.Health
	admin  *obs.AdminServer

	mu      sync.Mutex
	started bool
	closed  bool
}

// NewOrderer builds (but does not start) the ordering process.
func NewOrderer(cfg OrdererConfig) (*Orderer, error) {
	net := cfg.Net
	net.fill()
	if net.IdentitySeed == "" {
		return nil, errors.New("fabric: OrdererConfig.Net.IdentitySeed must be set so every process derives the same identities")
	}
	o := &Orderer{
		net:      net,
		services: make(map[string]*ordering.Service, net.NumChannels),
		obsReg:   obs.NewRegistry(),
		health:   obs.NewHealth(0, nil),
	}
	for i := 0; i < net.NumPeers; i++ {
		s, err := networkSigner(&net, i)
		if err != nil {
			return nil, err
		}
		o.peerIDs = append(o.peerIDs, s.Name)
	}

	tr, err := transport.NewTCP(transport.TCPConfig{
		ID:          OrdererID,
		Cluster:     net.ChannelID,
		Listen:      cfg.Listen,
		Peers:       cfg.Peers,
		QueueLen:    net.SendQueue,
		DialTimeout: net.DialTimeout,
		BackoffBase: net.DialBackoffBase,
		BackoffMax:  net.DialBackoffMax,
	})
	if err != nil {
		return nil, err
	}
	o.t = tr
	o.rpc = transport.NewRPC(tr)
	tr.Counters().Register(o.obsReg)

	for i := 0; i < net.NumChannels; i++ {
		name := net.channelName(i)
		prop := &rpcProposer{rpc: o.rpc, channel: name, peers: o.peerIDs}
		svc := ordering.NewService(net.Cutter, prop, net.Clock)
		svc.Observe(o.obsReg.With(obs.L("channel", name)))
		// The orderer holds no chain, so its health is pure connectivity:
		// it must reach at least one validator to make progress.
		o.health.Register(name, obs.Probe{Peers: o.t.ConnectedPeers, MinPeers: 1})
		o.services[name] = svc
		o.order = append(o.order, name)
	}
	o.rpc.Handle(methodSubmit, o.handleSubmit)
	return o, nil
}

// Addr returns the orderer's bound listen address.
func (o *Orderer) Addr() string { return o.t.Addr() }

// Transport returns the orderer's TCP endpoint (metrics, tests).
func (o *Orderer) Transport() *transport.TCP { return o.t }

// Start launches the per-channel ordering services.
func (o *Orderer) Start() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.started {
		return
	}
	o.started = true
	for _, name := range o.order {
		o.services[name].Start()
	}
}

// Close stops ordering and the transport.
func (o *Orderer) Close() error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil
	}
	o.closed = true
	started := o.started
	o.mu.Unlock()
	o.admin.Close()
	if started {
		for _, name := range o.order {
			o.services[name].Stop()
		}
	}
	return o.t.Close()
}

// rpcProposer hands cut batches to the peer processes' validators.
type rpcProposer struct {
	rpc     *transport.RPC
	channel string
	peers   []string
}

// Propose implements ordering.Proposer by broadcasting the batch to every
// validator concurrently. Lost proposals are re-proposed by nothing at
// this layer — the gateway's commit timeout and MVCC retry own end-to-end
// delivery, matching the loss model of the in-process path.
func (p *rpcProposer) Propose(payload []byte) {
	req := proposeReq{Channel: p.channel, Payload: payload}
	for _, id := range p.peers {
		go func(id string) {
			_ = p.rpc.CallJSON(id, methodPropose, req, nil, 5*time.Second)
		}(id)
	}
}

// handleSubmit feeds a remote gateway's envelope into the channel's cutter,
// mapping the typed ordering errors onto wire codes.
func (o *Orderer) handleSubmit(from string, req []byte) ([]byte, error) {
	var r submitReq
	if err := json.Unmarshal(req, &r); err != nil {
		return nil, err
	}
	svc := o.services[r.Channel]
	if svc == nil {
		return nil, &transport.CodedError{Code: "nochannel", Msg: fmt.Sprintf("fabric: orderer hosts no channel %q", r.Channel)}
	}
	if err := svc.Submit(r.Tx); err != nil {
		code := ""
		switch {
		case errors.Is(err, ordering.ErrBacklog):
			code = codeBacklog
		case errors.Is(err, ordering.ErrStopped):
			code = codeStopped
		}
		if code != "" {
			return nil, &transport.CodedError{Code: code, Msg: err.Error()}
		}
		return nil, err
	}
	return json.Marshal(emptyResp{})
}
