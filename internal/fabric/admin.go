package fabric

import (
	"io/fs"
	"path/filepath"
	"strings"

	"socialchain/internal/obs"
	"socialchain/internal/transport"
)

// TransportStatus is the wire-level slice of a /statusz report: live
// connections, per-peer send-queue depths (the backpressure picture) and
// the endpoint's cumulative traffic counters.
type TransportStatus struct {
	ConnectedPeers int            `json:"connected_peers"`
	QueueDepths    map[string]int `json:"queue_depths"`
	BytesSent      int64          `json:"bytes_sent"`
	BytesRecv      int64          `json:"bytes_recv"`
	FramesSent     int64          `json:"frames_sent"`
	FramesRecv     int64          `json:"frames_recv"`
	Reconnects     int64          `json:"reconnects"`
	Drops          int64          `json:"drops"`
}

func transportStatus(t *transport.TCP) TransportStatus {
	ctr := t.Counters()
	return TransportStatus{
		ConnectedPeers: t.ConnectedPeers(),
		QueueDepths:    t.QueueDepths(),
		BytesSent:      ctr.BytesSent.Load(),
		BytesRecv:      ctr.BytesRecv.Load(),
		FramesSent:     ctr.FramesSent.Load(),
		FramesRecv:     ctr.FramesRecv.Load(),
		Reconnects:     ctr.Reconnects.Load(),
		Drops:          ctr.Drops.Load(),
	}
}

// NodeChannelStatus is one channel's slice of a peer node's /statusz
// report.
type NodeChannelStatus struct {
	Height             uint64  `json:"height"`
	ConsensusBacklog   int     `json:"consensus_backlog"`
	CommitErrors       uint64  `json:"commit_errors"`
	VerifyCacheHits    int64   `json:"verify_cache_hits"`
	VerifyCacheMisses  int64   `json:"verify_cache_misses"`
	VerifyCacheHitRate float64 `json:"verify_cache_hit_rate"`
	WALSegments        int     `json:"wal_segments"`
	// LSM state-engine internals; zero/omitted for in-memory peers and
	// non-LSM engines. Sourced from the world-state store's snapshot.
	SSTables          int   `json:"sstables,omitempty"`
	LSMLevels         int   `json:"lsm_levels,omitempty"`
	CompactionBacklog int   `json:"compaction_backlog,omitempty"`
	Compactions       int64 `json:"compactions,omitempty"`
	CompactedBytes    int64 `json:"compacted_bytes,omitempty"`
	MemtableBytes     int64 `json:"memtable_bytes,omitempty"`
	StallWaits        int64 `json:"stall_waits,omitempty"`
}

// NodeStatus is a peer node's full /statusz report.
type NodeStatus struct {
	ID         string                       `json:"id"`
	Channels   map[string]NodeChannelStatus `json:"channels"`
	Transport  TransportStatus              `json:"transport"`
	SlowTraces []obs.TraceRecord            `json:"slow_traces,omitempty"`
}

// walSegments counts write-ahead-log files (state/history segments and the
// block log) under a peer's durable root; 0 for in-memory peers.
func walSegments(dir string) int {
	if dir == "" {
		return 0
	}
	n := 0
	_ = filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			// A file vanishing mid-walk (compaction) just isn't counted.
			return nil
		}
		name := d.Name()
		if (strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log")) ||
			strings.HasSuffix(name, ".wal") {
			n++
		}
		return nil
	})
	return n
}

// ServeAdmin binds the node's admin/debug HTTP surface (metrics, health,
// statusz, pprof) on addr. Off unless called; Close tears it down.
func (n *Node) ServeAdmin(addr string) error {
	srv, err := obs.ServeAdmin(addr, n.obsReg, n.health, n.statusz)
	if err != nil {
		return err
	}
	n.admin = srv
	return nil
}

// AdminAddr returns the bound admin address ("" when not serving).
func (n *Node) AdminAddr() string { return n.admin.Addr() }

// Obs returns the node's metrics registry.
func (n *Node) Obs() *obs.Registry { return n.obsReg }

// Health returns the node's per-channel health aggregator.
func (n *Node) Health() *obs.Health { return n.health }

// statusz assembles the node's /statusz report.
func (n *Node) statusz() any {
	st := NodeStatus{
		ID:         n.id,
		Channels:   make(map[string]NodeChannelStatus, len(n.order)),
		Transport:  transportStatus(n.t),
		SlowTraces: n.traces.Snapshot(),
	}
	for _, name := range n.order {
		nc := n.channels[name]
		ph, pm := nc.p.VerifyCacheStats()
		vh, vm := nc.v.VerifyCacheStats()
		cs := NodeChannelStatus{
			Height:            nc.p.Height(),
			ConsensusBacklog:  nc.v.Backlog(),
			CommitErrors:      nc.commitErr.Load(),
			VerifyCacheHits:   ph + vh,
			VerifyCacheMisses: pm + vm,
			WALSegments:       walSegments(nc.dataDir),
		}
		if ss, ok := nc.p.State().StorageStats(); ok {
			cs.SSTables = ss.SSTables
			cs.LSMLevels = ss.Levels
			cs.CompactionBacklog = ss.CompactionBacklog
			cs.Compactions = ss.Compactions
			cs.CompactedBytes = ss.CompactedBytes
			cs.MemtableBytes = ss.MemtableBytes
			cs.StallWaits = ss.StallWaits
		}
		if total := cs.VerifyCacheHits + cs.VerifyCacheMisses; total > 0 {
			cs.VerifyCacheHitRate = float64(cs.VerifyCacheHits) / float64(total)
		}
		st.Channels[name] = cs
	}
	return st
}

// OrdererChannelStatus is one channel's slice of the ordering process's
// /statusz report.
type OrdererChannelStatus struct {
	PendingTxs      int `json:"pending_txs"`
	BatchesProposed int `json:"batches_proposed"`
}

// OrdererStatus is the ordering process's full /statusz report.
type OrdererStatus struct {
	Channels  map[string]OrdererChannelStatus `json:"channels"`
	Transport TransportStatus                 `json:"transport"`
}

// ServeAdmin binds the orderer's admin/debug HTTP surface on addr.
func (o *Orderer) ServeAdmin(addr string) error {
	srv, err := obs.ServeAdmin(addr, o.obsReg, o.health, o.statusz)
	if err != nil {
		return err
	}
	o.admin = srv
	return nil
}

// AdminAddr returns the bound admin address ("" when not serving).
func (o *Orderer) AdminAddr() string { return o.admin.Addr() }

// Obs returns the orderer's metrics registry.
func (o *Orderer) Obs() *obs.Registry { return o.obsReg }

// statusz assembles the orderer's /statusz report.
func (o *Orderer) statusz() any {
	st := OrdererStatus{
		Channels:  make(map[string]OrdererChannelStatus, len(o.order)),
		Transport: transportStatus(o.t),
	}
	for _, name := range o.order {
		svc := o.services[name]
		st.Channels[name] = OrdererChannelStatus{
			PendingTxs:      svc.PendingTxs(),
			BatchesProposed: svc.Proposed(),
		}
	}
	return st
}
