package fabric

import (
	"encoding/json"
	"testing"
	"time"

	"socialchain/internal/ledger"
	"socialchain/internal/peer"
	"socialchain/internal/statedb"
)

// proposalT aliases the peer proposal for test readability.
type proposalT = peer.Proposal

func newRawProposal(gw *Gateway, cc, fn string, args [][]byte) (*peer.Proposal, error) {
	return peer.NewProposal(gw.client, gw.ch.name, cc, fn, args, time.Now())
}

// envelopeFrom assembles a signed envelope carrying only the given
// endorsement(s) — used to craft under-endorsed or corrupted transactions.
func envelopeFrom(t *testing.T, gw *Gateway, prop *peer.Proposal, resps ...*peer.ProposalResponse) ledger.Transaction {
	t.Helper()
	if len(resps) == 0 {
		t.Fatal("envelopeFrom needs at least one response")
	}
	var rw statedb.RWSet
	if err := json.Unmarshal(resps[0].RWSetJSON, &rw); err != nil {
		t.Fatalf("decode rwset: %v", err)
	}
	tx := ledger.Transaction{
		ID:        prop.TxID,
		ChannelID: prop.ChannelID,
		Creator:   gw.client.Identity,
		Payload:   ledger.TxPayload{Chaincode: prop.Chaincode, Fn: prop.Fn, Args: prop.Args},
		Response:  resps[0].Response,
		RWSet:     rw,
		Events:    resps[0].Events,
		Timestamp: prop.Timestamp,
	}
	for _, r := range resps {
		tx.Endorsements = append(tx.Endorsements, r.Endorsement)
	}
	tx.Signature = gw.client.Sign(tx.SigningBytes())
	return tx
}
