package fabric

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/consensus"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
)

// kvCC is a minimal chaincode for lifecycle tests.
type kvCC struct{}

func (kvCC) Name() string { return "kv" }

func (kvCC) Invoke(stub chaincode.Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case "put":
		if len(args) != 2 {
			return nil, errors.New("put needs key and value")
		}
		if err := stub.PutState(string(args[0]), args[1]); err != nil {
			return nil, err
		}
		if err := stub.SetEvent("put", args[0]); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	case "get":
		if len(args) != 1 {
			return nil, errors.New("get needs key")
		}
		return stub.GetState(string(args[0]))
	case "increment":
		v, err := stub.GetState(string(args[0]))
		if err != nil {
			return nil, err
		}
		count := 0
		if len(v) > 0 {
			fmt.Sscanf(string(v), "%d", &count)
		}
		count++
		out := []byte(fmt.Sprintf("%d", count))
		return out, stub.PutState(string(args[0]), out)
	case "fail":
		return nil, errors.New("deliberate failure")
	default:
		return nil, fmt.Errorf("unknown fn %q", fn)
	}
}

func newTestNetwork(t *testing.T, cfg Config) *Network {
	t.Helper()
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	net.MustDeploy(kvCC{})
	net.Start()
	t.Cleanup(net.Stop)
	return net
}

func newClient(t *testing.T) *msp.Signer {
	t.Helper()
	s, err := msp.NewSigner("clientorg", "alice", msp.RoleMember)
	if err != nil {
		t.Fatalf("client signer: %v", err)
	}
	return s
}

func TestSubmitAndEvaluateRoundTrip(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4})
	gw := net.Gateway(newClient(t))

	res, err := gw.Submit("kv", "put", []byte("k1"), []byte("v1"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Flag != ledger.Valid {
		t.Fatalf("flag = %s, want VALID", res.Flag)
	}
	got, err := gw.Evaluate("kv", "get", []byte("k1"))
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if string(got) != "v1" {
		t.Fatalf("get = %q, want v1", got)
	}
}

func TestAllPeersConverge(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4})
	gw := net.Gateway(newClient(t))
	const n = 15
	for i := 0; i < n; i++ {
		if _, err := gw.Submit("kv", "put", []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// All peers should reach the same height and identical tip hashes. No
	// submissions are in flight, so everyone converges on the current max.
	var h uint64
	for i := 0; i < 4; i++ {
		if ph := net.Peer(i).Ledger().Height(); ph > h {
			h = ph
		}
	}
	if !net.WaitHeight(h, 5*time.Second) {
		t.Fatal("peers did not converge on height")
	}
	tip := net.Peer(0).Ledger().TipHash()
	for i := 1; i < 4; i++ {
		if net.Peer(i).Ledger().Height() != h {
			t.Fatalf("peer %d height %d != %d", i, net.Peer(i).Ledger().Height(), h)
		}
		if net.Peer(i).Ledger().TipHash() != tip {
			t.Fatalf("peer %d tip hash diverges", i)
		}
		if err := net.Peer(i).Ledger().VerifyChain(); err != nil {
			t.Fatalf("peer %d chain: %v", i, err)
		}
	}
	// World states agree too.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%02d", i)
		for pi := 0; pi < 4; pi++ {
			vv, ok := net.Peer(pi).State().GetState("kv", key)
			if !ok || string(vv.Value) != "v" {
				t.Fatalf("peer %d missing %s", pi, key)
			}
		}
	}
}

func TestChaincodeErrorDoesNotCommit(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4})
	gw := net.Gateway(newClient(t))
	_, err := gw.Submit("kv", "fail")
	if err == nil {
		t.Fatal("expected endorsement failure")
	}
	if net.Peer(0).Ledger().Stats().TotalTxs != 0 {
		t.Fatal("failed proposal must not be ordered")
	}
}

func TestMVCCConflictFlagged(t *testing.T) {
	net := newTestNetwork(t, Config{
		NumPeers: 4,
		Cutter:   ordering.CutterConfig{MaxMessages: 2, BatchTimeout: 200 * time.Millisecond},
	})
	gw := net.Gateway(newClient(t))
	// Seed the counter.
	if _, err := gw.Submit("kv", "put", []byte("ctr"), []byte("0")); err != nil {
		t.Fatalf("seed: %v", err)
	}
	// Two concurrent increments read the same version; batched together,
	// the second must be invalidated with an MVCC conflict.
	id1, w1, err := gw.SubmitAsync("kv", "increment", []byte("ctr"))
	if err != nil {
		t.Fatalf("async1: %v", err)
	}
	id2, w2, err := gw.SubmitAsync("kv", "increment", []byte("ctr"))
	if err != nil {
		t.Fatalf("async2: %v", err)
	}
	if id1 == id2 {
		t.Fatal("duplicate tx ids")
	}
	f1 := <-w1
	f2 := <-w2
	valid, conflict := 0, 0
	for _, f := range []ledger.ValidationCode{f1, f2} {
		switch f {
		case ledger.Valid:
			valid++
		case ledger.MVCCConflict:
			conflict++
		}
	}
	if valid != 1 || conflict != 1 {
		t.Fatalf("flags = %s,%s; want one VALID one MVCC_READ_CONFLICT", f1, f2)
	}
	// Counter must have been incremented exactly once.
	got, err := gw.Evaluate("kv", "get", []byte("ctr"))
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if string(got) != "1" {
		t.Fatalf("ctr = %s, want 1", got)
	}
}

func TestEndorsementPolicyFailureFlagged(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4})
	gw := net.Gateway(newClient(t))

	// Build a valid envelope, then strip endorsements below the 2/3 quorum.
	prop := mustProposal(t, gw, "kv", "put", [][]byte{[]byte("x"), []byte("y")})
	resp, err := net.Peer(0).Endorse(prop)
	if err != nil {
		t.Fatalf("endorse: %v", err)
	}
	tx := envelopeFrom(t, gw, prop, resp)
	res, err := gw.SubmitEnvelope(tx)
	if err != nil {
		t.Fatalf("submit envelope: %v", err)
	}
	if res.Flag != ledger.EndorsementPolicyFailure {
		t.Fatalf("flag = %s, want ENDORSEMENT_POLICY_FAILURE", res.Flag)
	}
	if _, ok := net.Peer(0).State().GetState("kv", "x"); ok {
		t.Fatal("under-endorsed write must not be applied")
	}
}

func TestBadCreatorSignatureFlagged(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4})
	gw := net.Gateway(newClient(t))
	prop := mustProposal(t, gw, "kv", "put", [][]byte{[]byte("x"), []byte("y")})
	var endorsements []*ledger.Transaction
	_ = endorsements
	resp0, err := net.Peer(0).Endorse(prop)
	if err != nil {
		t.Fatal(err)
	}
	tx := envelopeFrom(t, gw, prop, resp0)
	tx.Signature = []byte("garbage")
	res, err := gw.SubmitEnvelope(tx)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Flag != ledger.BadCreatorSignature {
		t.Fatalf("flag = %s, want BAD_CREATOR_SIGNATURE", res.Flag)
	}
}

func TestSubmitWithSilentValidator(t *testing.T) {
	net := newTestNetwork(t, Config{
		NumPeers:         4,
		Behaviors:        map[int]consensus.Behavior{2: consensus.Silent{}},
		ConsensusTimeout: 500 * time.Millisecond,
	})
	gw := net.Gateway(newClient(t))
	res, err := gw.Submit("kv", "put", []byte("a"), []byte("b"))
	if err != nil {
		t.Fatalf("submit with silent validator: %v", err)
	}
	if res.Flag != ledger.Valid {
		t.Fatalf("flag = %s", res.Flag)
	}
}

func TestEventsDelivered(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4})
	gw := net.Gateway(newClient(t))
	events := net.Peer(1).SubscribeEvents(16)
	if _, err := gw.Submit("kv", "put", []byte("ek"), []byte("ev")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case e := <-events:
		if e.Name != "put" || string(e.Payload) != "ek" {
			t.Fatalf("event = %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event delivered")
	}
}

// --- helpers ---

func mustProposal(t *testing.T, gw *Gateway, cc, fn string, args [][]byte) *proposalT {
	t.Helper()
	p, err := newRawProposal(gw, cc, fn, args)
	if err != nil {
		t.Fatalf("proposal: %v", err)
	}
	return p
}
