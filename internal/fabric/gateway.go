package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/obs"
	"socialchain/internal/peer"
	"socialchain/internal/statedb"
)

// ErrCommitTimeout is returned when a submitted transaction does not commit
// within the configured window.
var ErrCommitTimeout = errors.New("fabric: commit timeout")

// Result reports the outcome of a submitted transaction.
type Result struct {
	TxID     string
	Response []byte
	Flag     ledger.ValidationCode
	BlockNum uint64
	// Trace is the lifecycle trace ID minted at proposal time and carried
	// through ordering and commit ("" on pre-trace envelopes).
	Trace string
}

// Err returns a non-nil error when the transaction was committed invalid.
func (r *Result) Err() error {
	if r.Flag == ledger.Valid {
		return nil
	}
	return fmt.Errorf("fabric: tx %s invalidated: %s", r.TxID, r.Flag)
}

// Gateway is the client SDK: it drives the endorse -> order -> commit
// lifecycle on behalf of one signing identity (the paper's "client"),
// scoped to one channel — every transaction it submits or evaluates runs
// against that channel's peers, ordering service and consensus group. The
// same Gateway serves in-process channels and remote ones reached over the
// transport layer (RemoteChannel.Gateway); only the backend differs.
type Gateway struct {
	be     backend
	ch     *Channel // nil for gateways over a remote channel
	client *msp.Signer

	// Client-side lifecycle spans: wall time spent endorsing, handing the
	// envelope to ordering, and waiting for the commit notification. With
	// the peer-side spans (endorse_exec, consensus_decide, validate,
	// commit) they cover the paper's submit -> commit path end to end.
	obsEndorse    *obs.Histogram
	obsOrder      *obs.Histogram
	obsCommitWait *obs.Histogram
}

// newGateway wires a gateway over a backend, caching its stage histograms
// (dangling, cost-free instruments when the backend is uninstrumented).
func newGateway(be backend, ch *Channel, client *msp.Signer) *Gateway {
	reg := be.obsReg()
	const stageHelp = "Per-stage transaction pipeline latency."
	return &Gateway{
		be:            be,
		ch:            ch,
		client:        client,
		obsEndorse:    reg.Histogram("tx_stage_seconds", stageHelp, nil, obs.L("stage", "endorse")),
		obsOrder:      reg.Histogram("tx_stage_seconds", stageHelp, nil, obs.L("stage", "order")),
		obsCommitWait: reg.Histogram("tx_stage_seconds", stageHelp, nil, obs.L("stage", "commit_wait")),
	}
}

// Gateway creates a client bound to this channel.
func (ch *Channel) Gateway(client *msp.Signer) *Gateway {
	return newGateway(ch, ch, client)
}

// Gateway creates a client bound to the network's default channel.
//
// Deprecated: use Network.Channel(name).Gateway (or ChannelFor(key) for
// routed writes) on multi-channel networks. Kept as a thin wrapper over
// the default channel so single-channel code migrates incrementally.
func (n *Network) Gateway(client *msp.Signer) *Gateway {
	return n.DefaultChannel().Gateway(client)
}

// Client returns the gateway's signing identity.
func (g *Gateway) Client() msp.Identity { return g.client.Identity }

// Channel returns the in-process channel this gateway is scoped to, or nil
// when the gateway talks to a remote channel over the transport layer.
func (g *Gateway) Channel() *Channel { return g.ch }

// Evaluate executes a read-only query against a single peer and returns the
// chaincode response without ordering or committing anything, like Fabric's
// EvaluateTransaction. This is the paper's gas-free blockchain read path.
// Among active endorsers it prefers the freshest peer (highest ledger
// height) so reads observe the client's own committed writes.
func (g *Gateway) Evaluate(ccName, fn string, args ...[]byte) ([]byte, error) {
	endorsers := g.be.activeEndorsers()
	if len(endorsers) == 0 {
		return nil, errors.New("fabric: no active endorsers")
	}
	p := endorsers[int(g.be.rrNext())%len(endorsers)]
	best := p.Height()
	for _, cand := range endorsers {
		if h := cand.Height(); h > best {
			best = h
			p = cand
		}
	}
	prop, err := peer.NewProposal(g.client, g.be.chName(), ccName, fn, args, g.be.now())
	if err != nil {
		return nil, err
	}
	g.be.clientDelay(p.ID())
	resp, err := p.Endorse(prop)
	g.be.clientDelay(p.ID())
	if err != nil {
		return nil, err
	}
	return resp.Response, nil
}

// mvccRetries bounds automatic resubmission after an MVCC invalidation.
// A transaction endorsed against peers that had not yet caught up on a
// recent block reads stale versions and is invalidated at commit; as in
// Fabric applications, the client re-endorses against fresh state and
// resubmits.
const mvccRetries = 4

// Submit runs the full transaction lifecycle: endorse on all active peers,
// assemble and sign the envelope, order through BFT consensus, and wait for
// commit. MVCC invalidations caused by stale endorsement state are retried
// with a fresh proposal; other invalidation flags are returned to the
// caller. The returned result may still carry an invalidation flag (e.g. a
// genuine concurrent-writer conflict that persists across retries).
func (g *Gateway) Submit(ccName, fn string, args ...[]byte) (*Result, error) {
	var res *Result
	for attempt := 0; ; attempt++ {
		tx, err := g.endorseAndAssemble(ccName, fn, args)
		if err != nil {
			return nil, err
		}
		res, err = g.SubmitEnvelope(*tx)
		if err != nil {
			return nil, err
		}
		if res.Flag != ledger.MVCCConflict || attempt >= mvccRetries {
			return res, nil
		}
		time.Sleep(time.Duration(attempt+1) * 5 * time.Millisecond)
	}
}

// endorseRetries bounds re-endorsement attempts when peers are momentarily
// out of sync (some have not yet committed a recent block) and split the
// endorsement set across digests.
const endorseRetries = 5

// endorseAndAssemble collects endorsements in parallel, groups them by
// result digest, and assembles a signed envelope from the largest agreeing
// group. If that group cannot satisfy the channel policy it retries after a
// short delay, letting lagging peers catch up.
func (g *Gateway) endorseAndAssemble(ccName, fn string, args [][]byte) (*ledger.Transaction, error) {
	start := time.Now()
	prop, err := peer.NewProposal(g.client, g.be.chName(), ccName, fn, args, g.be.now())
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < endorseRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 10 * time.Millisecond)
		}
		best, err := g.collectEndorsements(func(p Endorser) (*peer.ProposalResponse, error) {
			return p.Endorse(prop)
		})
		if err != nil {
			return nil, err
		}
		payload := ledger.TxPayload{Chaincode: ccName, Fn: fn, Args: args}
		tx, err := assembleSignedEnvelope(g.client, prop.TxID, prop.ChannelID, prop.Trace, payload, prop.Timestamp, best)
		if err != nil {
			return nil, err
		}
		// Pre-check the policy so a transient endorsement split triggers a
		// retry instead of a doomed submission.
		if perr := g.be.chPolicy().Evaluate(tx.Digest(), tx.Endorsements); perr != nil {
			lastErr = perr
			continue
		}
		g.obsEndorse.Observe(time.Since(start))
		return tx, nil
	}
	return nil, fmt.Errorf("fabric: endorsement policy unsatisfiable after %d attempts: %w", endorseRetries, lastErr)
}

// assembleSignedEnvelope builds and signs the transaction envelope from an
// agreeing endorsement group, carrying the proposal's trace ID into the
// envelope so peers can attribute commit-side spans to it.
func assembleSignedEnvelope(client *msp.Signer, txID, channelID, trace string, payload ledger.TxPayload, ts time.Time, group []*peer.ProposalResponse) (*ledger.Transaction, error) {
	var rw statedb.RWSet
	if err := json.Unmarshal(group[0].RWSetJSON, &rw); err != nil {
		return nil, fmt.Errorf("fabric: decode rwset: %w", err)
	}
	tx := &ledger.Transaction{
		ID:        txID,
		ChannelID: channelID,
		Creator:   client.Identity,
		Payload:   payload,
		Response:  group[0].Response,
		RWSet:     rw,
		Events:    group[0].Events,
		Timestamp: ts,
		Trace:     trace,
	}
	for _, r := range group {
		tx.Endorsements = append(tx.Endorsements, r.Endorsement)
	}
	tx.Signature = client.Sign(tx.SigningBytes())
	return tx, nil
}

// SubmitEnvelope orders a pre-assembled transaction envelope and waits for
// commit. Exposed so tests can inject malformed envelopes. Ordering
// backpressure (ordering.ErrBacklog) and post-stop rejection
// (ordering.ErrStopped) surface as errors for the caller to react to.
func (g *Gateway) SubmitEnvelope(tx ledger.Transaction) (*Result, error) {
	entry, waiter, err := g.orderAsync(tx)
	if err != nil {
		return nil, err
	}

	waitStart := time.Now()
	select {
	case flag := <-waiter:
		g.obsCommitWait.Observe(time.Since(waitStart))
		res := &Result{TxID: tx.ID, Response: tx.Response, Flag: flag, Trace: tx.Trace}
		if blockNum, ok := entry.TxBlock(tx.ID); ok {
			res.BlockNum = blockNum
		}
		return res, nil
	case <-time.After(g.be.commitTimeout()):
		return nil, fmt.Errorf("%w: tx %s", ErrCommitTimeout, tx.ID)
	}
}

// orderAsync submits the envelope through a round-robin entry peer, which
// registers a commit waiter before ordering can reject (see
// Endorser.Order).
func (g *Gateway) orderAsync(tx ledger.Transaction) (Endorser, <-chan ledger.ValidationCode, error) {
	entries := g.be.entryEndorsers()
	entry := entries[int(g.be.rrNext())%len(entries)]
	g.be.clientDelay(entry.ID())
	start := time.Now()
	waiter, err := entry.Order(tx)
	if err != nil {
		return nil, nil, fmt.Errorf("fabric: order tx %s: %w", tx.ID, err)
	}
	g.obsOrder.Observe(time.Since(start))
	return entry, waiter, nil
}

// SubmitAsync orders a transaction without waiting for commit; the caller
// can wait on the returned channel. Because it returns before commit, two
// SubmitAsync calls reading the same key race and MVCC validation will
// invalidate the loser.
func (g *Gateway) SubmitAsync(ccName, fn string, args ...[]byte) (string, <-chan ledger.ValidationCode, error) {
	tx, err := g.endorseAndAssemble(ccName, fn, args)
	if err != nil {
		return "", nil, err
	}
	_, waiter, err := g.orderAsync(*tx)
	if err != nil {
		return "", nil, err
	}
	return tx.ID, waiter, nil
}

// SubmitBatch runs the batched transaction lifecycle: every call executes
// on one simulator per endorsing peer (peer.EndorseBatch), the merged
// read/write set is signed once, and the whole batch orders and commits
// atomically as a single envelope. Call i's effects (e.g. the record a
// batched addData stores) live under sub-transaction ID
// chaincode.SubTxID(txID, i); Result.Response is the JSON array of
// per-call responses. MVCC invalidations from stale endorsement state are
// re-endorsed and resubmitted, as in Submit.
func (g *Gateway) SubmitBatch(calls []chaincode.BatchCall) (*Result, error) {
	var res *Result
	for attempt := 0; ; attempt++ {
		tx, err := g.endorseAndAssembleBatch(calls)
		if err != nil {
			return nil, err
		}
		res, err = g.SubmitEnvelope(*tx)
		if err != nil {
			return nil, err
		}
		if res.Flag != ledger.MVCCConflict || attempt >= mvccRetries {
			return res, nil
		}
		time.Sleep(time.Duration(attempt+1) * 5 * time.Millisecond)
	}
}

// SubmitBatchAsync orders a batched envelope without waiting for commit;
// the caller waits on the returned channel. See SubmitAsync for the
// concurrent-submission caveats — they apply per batch here.
func (g *Gateway) SubmitBatchAsync(calls []chaincode.BatchCall) (string, <-chan ledger.ValidationCode, error) {
	tx, err := g.endorseAndAssembleBatch(calls)
	if err != nil {
		return "", nil, err
	}
	_, waiter, err := g.orderAsync(*tx)
	if err != nil {
		return "", nil, err
	}
	return tx.ID, waiter, nil
}

// endorseAndAssembleBatch is endorseAndAssemble for a batch proposal: it
// collects EndorseBatch responses from all active peers in parallel,
// groups them by result digest and assembles a signed batch envelope from
// the largest agreeing group, retrying while lagging peers catch up.
func (g *Gateway) endorseAndAssembleBatch(calls []chaincode.BatchCall) (*ledger.Transaction, error) {
	start := time.Now()
	prop, err := peer.NewBatchProposal(g.client, g.be.chName(), calls, g.be.now())
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < endorseRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 10 * time.Millisecond)
		}
		best, err := g.collectEndorsements(func(p Endorser) (*peer.ProposalResponse, error) {
			return p.EndorseBatch(prop)
		})
		if err != nil {
			return nil, err
		}
		payload := ledger.TxPayload{Batch: make([]ledger.TxPayload, len(calls))}
		for i, c := range calls {
			payload.Batch[i] = ledger.TxPayload{Chaincode: c.Chaincode, Fn: c.Fn, Args: c.Args}
		}
		tx, err := assembleSignedEnvelope(g.client, prop.TxID, g.be.chName(), prop.Trace, payload, prop.Timestamp, best)
		if err != nil {
			return nil, err
		}
		if perr := g.be.chPolicy().Evaluate(tx.Digest(), tx.Endorsements); perr != nil {
			lastErr = perr
			continue
		}
		g.obsEndorse.Observe(time.Since(start))
		return tx, nil
	}
	return nil, fmt.Errorf("fabric: endorsement policy unsatisfiable after %d attempts: %w", endorseRetries, lastErr)
}

// collectEndorsements runs one parallel endorsement round over the active
// endorsers and returns the largest digest-agreeing response group.
func (g *Gateway) collectEndorsements(endorse func(Endorser) (*peer.ProposalResponse, error)) ([]*peer.ProposalResponse, error) {
	endorsers := g.be.activeEndorsers()
	if len(endorsers) == 0 {
		return nil, errors.New("fabric: no active endorsers")
	}
	type endorsement struct {
		resp *peer.ProposalResponse
		err  error
	}
	results := make([]endorsement, len(endorsers))
	var wg sync.WaitGroup
	for i, p := range endorsers {
		wg.Add(1)
		go func(i int, p Endorser) {
			defer wg.Done()
			g.be.clientDelay(p.ID())
			resp, err := endorse(p)
			g.be.clientDelay(p.ID())
			results[i] = endorsement{resp: resp, err: err}
		}(i, p)
	}
	wg.Wait()

	groups := make(map[string][]*peer.ProposalResponse)
	var errs []error
	for _, r := range results {
		if r.err != nil {
			errs = append(errs, r.err)
			continue
		}
		groups[string(r.resp.Endorsement.Digest)] = append(groups[string(r.resp.Endorsement.Digest)], r.resp)
	}
	var best []*peer.ProposalResponse
	for _, grp := range groups {
		if len(grp) > len(best) {
			best = grp
		}
	}
	if len(best) == 0 {
		if len(errs) > 0 {
			return nil, fmt.Errorf("fabric: all endorsements failed: %w", errs[0])
		}
		return nil, errors.New("fabric: no endorsements")
	}
	return best, nil
}
