package fabric

import (
	"time"

	"socialchain/internal/ledger"
	"socialchain/internal/peer"
)

// RPC method names and payloads spoken between the processes of a
// networked deployment: peer nodes (node.go) serve the endorsement, commit
// wait and block-fetch methods, the ordering node (orderer.go) serves
// submit, and remote gateways (remote.go) call both. Every request names
// its channel, since one process hosts every channel of the deployment.
const (
	methodEndorse      = "endorse"
	methodEndorseBatch = "endorsebatch"
	methodWaitCommit   = "waitcommit"
	methodHeight       = "height"
	methodBlocks       = "blocks"
	methodVerifyChain  = "verifychain"
	methodPropose      = "propose"
	methodSubmit       = "submit"
)

// Error codes carried across the wire as transport.CodedError, mapped back
// to this package's (and ordering's) sentinel errors on the client side.
const (
	codeBacklog       = "backlog"
	codeStopped       = "stopped"
	codeCommitTimeout = "committimeout"
)

// maxSyncBlocks caps how many blocks one blocks RPC returns; remote
// sources page through taller gaps.
const maxSyncBlocks = 512

type endorseReq struct {
	Channel  string         `json:"channel"`
	Proposal *peer.Proposal `json:"proposal"`
}

type endorseBatchReq struct {
	Channel  string              `json:"channel"`
	Proposal *peer.BatchProposal `json:"proposal"`
}

type waitCommitReq struct {
	Channel string        `json:"channel"`
	TxID    string        `json:"tx_id"`
	Timeout time.Duration `json:"timeout"`
}

type waitCommitResp struct {
	Flag     ledger.ValidationCode `json:"flag"`
	BlockNum uint64                `json:"block_num"`
}

type channelReq struct {
	Channel string `json:"channel"`
}

type heightResp struct {
	Height uint64 `json:"height"`
}

type blocksReq struct {
	Channel string `json:"channel"`
	From    uint64 `json:"from"`
	Max     int    `json:"max"`
}

type blocksResp struct {
	Blocks []*ledger.Block `json:"blocks"`
}

type proposeReq struct {
	Channel string `json:"channel"`
	Payload []byte `json:"payload"`
}

type submitReq struct {
	Channel string             `json:"channel"`
	Tx      ledger.Transaction `json:"tx"`
}

type emptyResp struct{}
