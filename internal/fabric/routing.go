package fabric

// RouteKey deterministically maps a partition key — a record's user or
// source ID — to one of n channels. The hash is 64-bit FNV-1a, written
// out long-hand so the routing rule is pinned by this file alone: it must
// never change, because a durable multi-channel deployment recovers its
// data by re-deriving the same key→channel assignment after every
// restart, and a changed rule would strand every record on the wrong
// channel. n <= 1 always routes to channel 0, which is what reduces a
// single-channel network to the pre-sharding behaviour.
func RouteKey(key string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(n))
}
