package fabric

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestRouteKeyDeterministic(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		for i := 0; i < 50; i++ {
			key := fmt.Sprintf("org%d/user-%d", i%3, i)
			first := RouteKey(key, n)
			if first < 0 || first >= n {
				t.Fatalf("RouteKey(%q, %d) = %d, out of range", key, n, first)
			}
			for rep := 0; rep < 5; rep++ {
				if got := RouteKey(key, n); got != first {
					t.Fatalf("RouteKey(%q, %d) flapped: %d then %d", key, n, first, got)
				}
			}
		}
	}
}

func TestRouteKeySingleChannelAlwaysZero(t *testing.T) {
	for _, n := range []int{1, 0, -3} {
		for _, key := range []string{"", "a", "gov/admin", "city/cam-007"} {
			if got := RouteKey(key, n); got != 0 {
				t.Fatalf("RouteKey(%q, %d) = %d, want 0", key, n, got)
			}
		}
	}
}

// TestRouteKeyGolden pins the routing rule itself. A durable multi-channel
// deployment re-derives every key→channel assignment after restart, so
// these assignments must never change; if this test fails, the hash in
// RouteKey was altered and existing deployments would strand their data on
// the wrong channels.
func TestRouteKeyGolden(t *testing.T) {
	golden := []struct {
		key           string
		at2, at4, at8 int
	}{
		{"city/cam-000", 1, 3, 3},
		{"city/cam-001", 0, 0, 0},
		{"crowd/mobile-000", 0, 0, 0},
		{"crowd/mobile-001", 1, 3, 3},
		{"gov/admin", 1, 3, 7},
		{"city/ingest-cam", 1, 1, 1},
		{"user-42", 1, 3, 3},
		{"", 1, 1, 5},
	}
	for _, g := range golden {
		if got := RouteKey(g.key, 2); got != g.at2 {
			t.Errorf("RouteKey(%q, 2) = %d, want %d — the pinned routing rule changed", g.key, got, g.at2)
		}
		if got := RouteKey(g.key, 4); got != g.at4 {
			t.Errorf("RouteKey(%q, 4) = %d, want %d — the pinned routing rule changed", g.key, got, g.at4)
		}
		if got := RouteKey(g.key, 8); got != g.at8 {
			t.Errorf("RouteKey(%q, 8) = %d, want %d — the pinned routing rule changed", g.key, got, g.at8)
		}
	}
}

// TestRouteKeyUniformOverZipfPopulation checks the two load properties the
// sharding design needs: distinct users spread near-uniformly over the
// channels, and traffic drawn from a zipf-skewed user popularity stays
// reasonably balanced too (the heavy hitters land on different channels).
func TestRouteKeyUniformOverZipfPopulation(t *testing.T) {
	const users = 10000
	for _, n := range []int{2, 4, 8} {
		byChannel := make([]int, n)
		for i := 0; i < users; i++ {
			byChannel[RouteKey(fmt.Sprintf("crowd/user-%06d", i), n)]++
		}
		fair := float64(users) / float64(n)
		for ch, got := range byChannel {
			if f := float64(got); f < 0.9*fair || f > 1.1*fair {
				t.Fatalf("n=%d: channel %d holds %d of %d users (fair share %.0f ±10%%)", n, ch, got, users, fair)
			}
		}
	}

	// Zipf-weighted traffic: draw 200k submissions from a zipf popularity
	// over the user population and require no channel to exceed twice its
	// fair share of traffic at n=4.
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1, users-1)
	const draws = 200000
	const n = 4
	traffic := make([]int, n)
	for i := 0; i < draws; i++ {
		user := fmt.Sprintf("crowd/user-%06d", zipf.Uint64())
		traffic[RouteKey(user, n)]++
	}
	fair := float64(draws) / float64(n)
	for ch, got := range traffic {
		if float64(got) > 2*fair {
			t.Fatalf("zipf traffic: channel %d got %d of %d draws (fair %.0f) — heavy hitters collide", ch, got, draws, fair)
		}
	}
}
