package fabric

import (
	"time"

	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/obs"
	"socialchain/internal/ordering"
	"socialchain/internal/peer"
)

// Endorser is the Gateway's view of one endorsing peer: somewhere to send
// proposals, order assembled envelopes and wait for commits. Two
// implementations exist — *localEndorser wraps an in-process peer and its
// ordering service (the default), and *remoteEndorser speaks to an
// out-of-process peer over the transport RPC layer (see remote.go). The
// Gateway's endorse/order/commit logic is identical over both, which is
// what keeps the in-process simulation and the networked deployment
// behaviourally equivalent.
type Endorser interface {
	// ID returns the peer's identifier.
	ID() string
	// Height returns the peer's current chain height (freshest-peer reads).
	Height() uint64
	// Endorse simulates a proposal and returns the signed response.
	Endorse(prop *peer.Proposal) (*peer.ProposalResponse, error)
	// EndorseBatch simulates a batch proposal on one simulator.
	EndorseBatch(prop *peer.BatchProposal) (*peer.ProposalResponse, error)
	// Order submits an assembled envelope for ordering and returns a
	// channel that yields the commit validation flag. The commit waiter is
	// registered before ordering can reject, so a fast commit is never
	// missed; a rejected submission (backpressure, stopped service)
	// surfaces as an error with no waiter left behind.
	Order(tx ledger.Transaction) (<-chan ledger.ValidationCode, error)
	// TxBlock reports the block number a committed transaction landed in.
	TxBlock(txID string) (uint64, bool)
}

// backend is the Gateway's view of a whole channel: which endorsers are
// active, which peers accept ordering submissions, and the client-side
// knobs. *Channel implements it in-process; *RemoteChannel implements it
// over the wire.
type backend interface {
	chName() string
	chPolicy() msp.Policy
	commitTimeout() time.Duration
	now() time.Time
	// clientDelay simulates (or is, over TCP) the client<->peer hop.
	clientDelay(peerID string)
	// activeEndorsers returns the endorsers not excluded by misbehaviour.
	activeEndorsers() []Endorser
	// entryEndorsers returns the peers accepting ordering submissions.
	entryEndorsers() []Endorser
	// rrNext advances the channel's shared round-robin counter.
	rrNext() uint64
	// obsReg returns the registry client-side gateway spans record into
	// (nil when the deployment is not instrumented).
	obsReg() *obs.Registry
}

// localEndorser adapts one in-process peer plus its ordering service to
// the Endorser interface.
type localEndorser struct {
	p *peer.Peer
	o *ordering.Service
}

func (e *localEndorser) ID() string     { return e.p.ID() }
func (e *localEndorser) Height() uint64 { return e.p.Height() }
func (e *localEndorser) Endorse(prop *peer.Proposal) (*peer.ProposalResponse, error) {
	return e.p.Endorse(prop)
}
func (e *localEndorser) EndorseBatch(prop *peer.BatchProposal) (*peer.ProposalResponse, error) {
	return e.p.EndorseBatch(prop)
}

func (e *localEndorser) Order(tx ledger.Transaction) (<-chan ledger.ValidationCode, error) {
	waiter := e.p.WaitForCommit(tx.ID)
	if err := e.o.Submit(tx); err != nil {
		// A rejected txID never commits; leaving the waiter registered
		// would leak wait-map entries.
		e.p.CancelWait(tx.ID)
		return nil, err
	}
	return waiter, nil
}

func (e *localEndorser) TxBlock(txID string) (uint64, bool) {
	if _, _, blockNum, err := e.p.Ledger().GetTx(txID); err == nil {
		return blockNum, true
	}
	return 0, false
}

// Channel's backend implementation.

func (ch *Channel) chName() string               { return ch.name }
func (ch *Channel) chPolicy() msp.Policy         { return ch.net.policy }
func (ch *Channel) commitTimeout() time.Duration { return ch.net.cfg.CommitTimeout }
func (ch *Channel) now() time.Time               { return ch.net.cfg.Clock.Now() }

func (ch *Channel) clientDelay(peerID string) {
	cfg := &ch.net.cfg
	if cfg.Latency == nil {
		return
	}
	if d := cfg.Latency.Delay("client", peerID); d > 0 {
		cfg.Clock.Sleep(d)
	}
}

func (ch *Channel) activeEndorsers() []Endorser {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	out := make([]Endorser, 0, len(ch.endorsers))
	for _, e := range ch.endorsers {
		if !ch.excluded[e.ID()] {
			out = append(out, e)
		}
	}
	return out
}

func (ch *Channel) entryEndorsers() []Endorser {
	out := make([]Endorser, len(ch.endorsers))
	for i, e := range ch.endorsers {
		out[i] = e
	}
	return out
}

func (ch *Channel) rrNext() uint64 { return ch.rr.Add(1) }

func (ch *Channel) obsReg() *obs.Registry {
	return ch.net.cfg.Obs.With(obs.L("channel", ch.name))
}
