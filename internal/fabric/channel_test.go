package fabric

import (
	"testing"
	"time"

	"socialchain/internal/ledger"
)

func TestSingleChannelKeepsVerbatimName(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4})
	if got := net.NumChannels(); got != 1 {
		t.Fatalf("NumChannels = %d, want 1", got)
	}
	if got := net.DefaultChannel().Name(); got != "traffic-channel" {
		t.Fatalf("default channel name = %q, want traffic-channel (verbatim at N=1)", got)
	}
	if net.Channel("traffic-channel") != net.DefaultChannel() {
		t.Fatal("Channel(name) did not resolve the default channel")
	}
}

func TestMultiChannelNamesAndLookup(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4, NumChannels: 3})
	if got := net.NumChannels(); got != 3 {
		t.Fatalf("NumChannels = %d, want 3", got)
	}
	want := []string{"traffic-channel-0", "traffic-channel-1", "traffic-channel-2"}
	for i, name := range want {
		ch := net.ChannelAt(i)
		if ch.Name() != name {
			t.Fatalf("channel %d name = %q, want %q", i, ch.Name(), name)
		}
		if net.Channel(name) != ch {
			t.Fatalf("Channel(%q) did not resolve channel %d", name, i)
		}
	}
	if net.Channel("nope") != nil {
		t.Fatal("Channel on unknown name should return nil")
	}
	for _, key := range []string{"a", "gov/admin", "crowd/user-17"} {
		if got, want := net.ChannelFor(key), net.ChannelAt(RouteKey(key, 3)); got != want {
			t.Fatalf("ChannelFor(%q) = %s, want %s", key, got.Name(), want.Name())
		}
	}
}

// TestMultiChannelIsolation proves channels are independent shards: a
// transaction committed on one channel is invisible to the others — their
// world state has no key and their chains gain no block.
func TestMultiChannelIsolation(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4, NumChannels: 3})
	client := newClient(t)

	gw0 := net.ChannelAt(0).Gateway(client)
	res, err := gw0.Submit("kv", "put", []byte("only-on-0"), []byte("v"))
	if err != nil {
		t.Fatalf("submit on channel 0: %v", err)
	}
	if res.Flag != ledger.Valid {
		t.Fatalf("flag = %s, want VALID", res.Flag)
	}

	got, err := gw0.Evaluate("kv", "get", []byte("only-on-0"))
	if err != nil || string(got) != "v" {
		t.Fatalf("channel 0 get = %q, %v; want v", got, err)
	}
	for i := 1; i < 3; i++ {
		gw := net.ChannelAt(i).Gateway(client)
		other, err := gw.Evaluate("kv", "get", []byte("only-on-0"))
		if err != nil {
			t.Fatalf("channel %d evaluate: %v", i, err)
		}
		if len(other) != 0 {
			t.Fatalf("channel %d sees channel 0's key: %q", i, other)
		}
		// Idle channels stay at their genesis block with no transactions.
		if s := net.ChannelAt(i).Peer(0).Ledger().Stats(); s.TotalTxs != 0 {
			t.Fatalf("channel %d carries %d txs, want 0 (no cross-channel commits)", i, s.TotalTxs)
		}
	}
	// Validators deliver independently, so give the inspected peer a
	// moment to apply the commit everywhere on channel 0.
	if !net.ChannelAt(0).WaitHeight(2, 5*time.Second) {
		t.Fatal("channel 0 peers did not all reach the commit")
	}
	if s := net.ChannelAt(0).Peer(0).Ledger().Stats(); s.TotalTxs != 1 {
		t.Fatalf("channel 0 carries %d txs, want 1", s.TotalTxs)
	}
}

// TestDeprecatedGatewayUsesDefaultChannel keeps the pre-sharding client
// surface working: Network.Gateway must behave exactly like a gateway on
// the default channel.
func TestDeprecatedGatewayUsesDefaultChannel(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4, NumChannels: 2})
	client := newClient(t)
	gw := net.Gateway(client)
	if gw.Channel() != net.DefaultChannel() {
		t.Fatal("Network.Gateway is not bound to the default channel")
	}
	if _, err := gw.Submit("kv", "put", []byte("k"), []byte("v")); err != nil {
		t.Fatalf("submit through deprecated gateway: %v", err)
	}
	got, err := net.DefaultChannel().Gateway(client).Evaluate("kv", "get", []byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("default-channel read = %q, %v; want v", got, err)
	}
}
