package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/consensus"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/obs"
	"socialchain/internal/ordering"
	"socialchain/internal/peer"
	"socialchain/internal/storage"
	"socialchain/internal/transport"
)

// OrdererID is the transport identity of the ordering node of a networked
// deployment.
const OrdererID = "orderer"

// DefaultSyncInterval is how often a Node's anti-entropy loop polls the
// other peers' chain heights.
const DefaultSyncInterval = 250 * time.Millisecond

// NodeConfig describes one peer process of a networked deployment: which
// peer index this process hosts, where it listens and where the other
// processes are. Net must be the same Config in every process of the
// deployment (same seed, peer count, channels, cutter...); that is what
// lets the processes derive identical identities and channel layouts
// without a coordination service.
type NodeConfig struct {
	// Index selects which peer (0-based) this process hosts.
	Index int
	// Listen is the TCP listen address for this node.
	Listen string
	// Peers maps the other processes' transport IDs ("peer0".., OrdererID)
	// to their dial addresses. Entries may be missing: peers that dial in
	// are adopted dynamically.
	Peers map[string]string
	// Net is the deployment-wide network config. IdentitySeed must be set.
	Net Config
	// SyncInterval overrides the anti-entropy poll period (default
	// DefaultSyncInterval).
	SyncInterval time.Duration
}

// nodeChannel is one channel's slice of a peer process: the peer and its
// consensus validator.
type nodeChannel struct {
	p         *peer.Peer
	v         *consensus.Validator
	dataDir   string // this peer's durable root on the channel ("" in-memory)
	commitErr atomic.Uint64
}

// Node is one out-of-process peer: it hosts, for every channel of the
// deployment, this peer's world state, block log and consensus validator,
// and serves the endorsement/commit/block-fetch RPC methods that remote
// gateways and lagging peers call. Consensus traffic rides the same TCP
// endpoint (one consensus.Bus per channel). An anti-entropy loop keeps the
// peer converging after partitions or restarts: whenever another peer's
// chain is taller, the gap is fetched over RPC and re-validated through
// the same SyncFrom path in-process recovery uses.
type Node struct {
	cfg      NodeConfig
	net      Config
	id       string
	t        *transport.TCP
	rpc      *transport.RPC
	registry *chaincode.Registry
	policy   msp.Policy
	ids      []string
	channels map[string]*nodeChannel
	order    []string

	// Observability: every node carries a registry, health aggregator and
	// slow-trace ring; the admin HTTP surface over them binds only when
	// ServeAdmin is called.
	obsReg *obs.Registry
	health *obs.Health
	traces *obs.TraceRing
	admin  *obs.AdminServer

	done chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	started bool
	closed  bool
}

// NewNode builds (but does not start) one peer process.
func NewNode(cfg NodeConfig) (*Node, error) {
	net := cfg.Net
	net.fill()
	if net.IdentitySeed == "" {
		return nil, errors.New("fabric: NodeConfig.Net.IdentitySeed must be set so every process derives the same identities")
	}
	if cfg.Index < 0 || cfg.Index >= net.NumPeers {
		return nil, fmt.Errorf("fabric: node index %d out of range (NumPeers %d)", cfg.Index, net.NumPeers)
	}
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = DefaultSyncInterval
	}

	n := &Node{
		cfg:      cfg,
		net:      net,
		registry: chaincode.NewRegistry(),
		channels: make(map[string]*nodeChannel, net.NumChannels),
		done:     make(chan struct{}),
		obsReg:   obs.NewRegistry(),
		health:   obs.NewHealth(0, nil),
		traces:   obs.NewTraceRing(128, 0),
	}
	n.policy = net.Policy
	if n.policy == nil {
		n.policy = msp.TwoThirds(net.NumPeers)
	}

	n.ids = make([]string, net.NumPeers)
	signers := make([]*msp.Signer, net.NumPeers)
	idents := make(map[string]msp.Identity, net.NumPeers)
	for i := 0; i < net.NumPeers; i++ {
		s, err := networkSigner(&net, i)
		if err != nil {
			return nil, err
		}
		n.ids[i] = s.Name
		signers[i] = s
		idents[s.Name] = s.Identity
	}
	n.id = n.ids[cfg.Index]

	tr, err := transport.NewTCP(transport.TCPConfig{
		ID:          n.id,
		Cluster:     net.ChannelID,
		Listen:      cfg.Listen,
		Peers:       cfg.Peers,
		QueueLen:    net.SendQueue,
		DialTimeout: net.DialTimeout,
		BackoffBase: net.DialBackoffBase,
		BackoffMax:  net.DialBackoffMax,
	})
	if err != nil {
		return nil, err
	}
	n.t = tr
	n.rpc = transport.NewRPC(tr)
	tr.Counters().Register(n.obsReg)

	for i := 0; i < net.NumChannels; i++ {
		name := net.channelName(i)
		nc, err := n.buildChannel(name, net.channelDataDir(i), signers, idents)
		if err != nil {
			n.closeChannels()
			tr.Close()
			return nil, fmt.Errorf("fabric: node channel %s: %w", name, err)
		}
		n.channels[name] = nc
		n.order = append(n.order, name)
	}

	n.registerHandlers()
	return n, nil
}

// buildChannel constructs this peer's slice of one channel.
func (n *Node) buildChannel(name, dataDir string, signers []*msp.Signer, idents map[string]msp.Identity) (*nodeChannel, error) {
	net := &n.net
	peerDir := ""
	if dataDir != "" {
		peerDir = channelPeerDir(dataDir, n.id)
	}
	chReg := n.obsReg.With(obs.L("channel", name))
	p, err := peer.New(peer.Config{
		ID:              n.id,
		ChannelID:       name,
		Signer:          signers[n.cfg.Index],
		Registry:        n.registry,
		Policy:          n.policy,
		Watchdog:        peer.NewWatchdog(net.WatchdogThreshold),
		State:           storage.Config{Engine: net.StateEngine, Shards: net.StateShards, Durability: net.StateDurability},
		DataDir:         peerDir,
		Indexes:         net.StateIndexes,
		VerifyCacheSize: net.VerifyCacheSize,
		Obs:             chReg,
		SlowTraces:      n.traces,
	})
	if err != nil {
		return nil, err
	}
	nc := &nodeChannel{p: p, dataDir: peerDir}
	nc.v = consensus.NewValidator(consensus.Config{
		ID:              n.id,
		Validators:      n.ids,
		Signer:          signers[n.cfg.Index],
		Identities:      idents,
		Sender:          consensus.NewBus(n.t, name, n.ids),
		Clock:           net.Clock,
		RequestTimeout:  net.ConsensusTimeout,
		OverlapWindow:   net.ConsensusOverlap,
		VerifyCacheSize: net.VerifyCacheSize,
		Obs:             chReg,
		Deliver: func(seq uint64, payload []byte) {
			batch, err := ordering.DecodeBatch(payload)
			if err != nil {
				nc.commitErr.Add(1)
				return
			}
			if _, err := p.CommitBatch(batch.Txs); err != nil {
				// A restarted or lagging peer misses the heights these
				// batches execute at; the anti-entropy loop closes the gap.
				nc.commitErr.Add(1)
			}
		},
	})
	n.health.Register(name, obs.Probe{
		Height:   p.Height,
		Backlog:  nc.v.Backlog,
		Peers:    n.t.ConnectedPeers,
		MinPeers: 1,
	})
	return nc, nil
}

// Deploy registers a chaincode on this node (all channels). Every process
// of a deployment must deploy the same chaincodes.
func (n *Node) Deploy(cc chaincode.Chaincode) error { return n.registry.Register(cc) }

// MustDeploy registers a chaincode, panicking on duplicates.
func (n *Node) MustDeploy(cc chaincode.Chaincode) {
	if err := n.Deploy(cc); err != nil {
		panic(err)
	}
}

// ID returns the node's transport identity ("peer<Index>").
func (n *Node) ID() string { return n.id }

// Addr returns the node's bound listen address.
func (n *Node) Addr() string { return n.t.Addr() }

// Transport returns the node's TCP endpoint (metrics, tests).
func (n *Node) Transport() *transport.TCP { return n.t }

// Peer returns this node's peer on the named channel (nil if unknown).
func (n *Node) Peer(channel string) *peer.Peer {
	if nc := n.channels[channel]; nc != nil {
		return nc.p
	}
	return nil
}

// CommitErrors sums failed batch commits across channels (restart gaps
// closed by sync show up here).
func (n *Node) CommitErrors() uint64 {
	var total uint64
	for _, nc := range n.channels {
		total += nc.commitErr.Load()
	}
	return total
}

// Start launches the node's validators and its anti-entropy loop.
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	for _, name := range n.order {
		n.channels[name].v.Start()
	}
	n.wg.Add(1)
	go n.syncLoop()
}

// Close stops consensus, the sync loop and the transport, and closes the
// peer's durable stores.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	started := n.started
	n.mu.Unlock()
	n.admin.Close()
	close(n.done)
	n.wg.Wait()
	if started {
		for _, name := range n.order {
			n.channels[name].v.Stop()
		}
	}
	err := n.closeChannels()
	n.t.Close()
	return err
}

func (n *Node) closeChannels() error {
	var first error
	for _, name := range n.order {
		if nc := n.channels[name]; nc != nil {
			if err := nc.p.Close(); first == nil {
				first = err
			}
		}
	}
	return first
}

// syncLoop is the anti-entropy catch-up: whenever another peer's chain is
// taller, the missing blocks are fetched over RPC and re-validated through
// the same SyncFrom path in-process recovery uses.
func (n *Node) syncLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
		}
		for _, name := range n.order {
			select {
			case <-n.done:
				return
			default:
			}
			n.syncChannel(name, n.channels[name])
		}
	}
}

// syncChannel catches this peer up on one channel from the tallest other
// peer, if any is ahead.
func (n *Node) syncChannel(name string, nc *nodeChannel) {
	local := nc.p.Height()
	bestID, bestHeight := "", local
	for _, id := range n.ids {
		if id == n.id {
			continue
		}
		var h heightResp
		if err := n.rpc.CallJSON(id, methodHeight, channelReq{Channel: name}, &h, 2*time.Second); err != nil {
			continue
		}
		if h.Height > bestHeight {
			bestID, bestHeight = id, h.Height
		}
	}
	if bestID == "" {
		return
	}
	src := &remoteBlockSource{rpc: n.rpc, peer: bestID, channel: name, height: bestHeight}
	if _, err := nc.p.SyncFrom(src); err != nil {
		// A torn fetch or a concurrent live commit aborts this round; the
		// next tick retries from the new local height.
		return
	}
}

// remoteBlockSource adapts another process's blocks RPC to peer.BlockSource,
// paging maxSyncBlocks at a time.
type remoteBlockSource struct {
	rpc     *transport.RPC
	peer    string
	channel string
	height  uint64
}

func (s *remoteBlockSource) Height() uint64 { return s.height }

func (s *remoteBlockSource) BlocksFrom(from uint64) ([]*ledger.Block, error) {
	var out []*ledger.Block
	for {
		var resp blocksResp
		req := blocksReq{Channel: s.channel, From: from, Max: maxSyncBlocks}
		if err := s.rpc.CallJSON(s.peer, methodBlocks, req, &resp, 10*time.Second); err != nil {
			return out, err
		}
		out = append(out, resp.Blocks...)
		if len(resp.Blocks) < maxSyncBlocks {
			return out, nil
		}
		from += uint64(len(resp.Blocks))
	}
}

// channelPeerDir is where one peer's durable stores live under a channel's
// data root (matches the in-process layout, so a directory written by an
// in-process network recovers under a Node and vice versa).
func channelPeerDir(dataDir, peerID string) string {
	return filepath.Join(dataDir, peerID)
}

// registerHandlers wires the node's RPC surface.
func (n *Node) registerHandlers() {
	n.rpc.Handle(methodEndorse, n.handleEndorse)
	n.rpc.Handle(methodEndorseBatch, n.handleEndorseBatch)
	n.rpc.Handle(methodWaitCommit, n.handleWaitCommit)
	n.rpc.Handle(methodHeight, n.handleHeight)
	n.rpc.Handle(methodBlocks, n.handleBlocks)
	n.rpc.Handle(methodVerifyChain, n.handleVerifyChain)
	n.rpc.Handle(methodPropose, n.handlePropose)
}

// channel resolves a request's channel or returns a coded error.
func (n *Node) channel(name string) (*nodeChannel, error) {
	if nc := n.channels[name]; nc != nil {
		return nc, nil
	}
	return nil, &transport.CodedError{Code: "nochannel", Msg: fmt.Sprintf("fabric: node %s hosts no channel %q", n.id, name)}
}

func (n *Node) handleEndorse(from string, req []byte) ([]byte, error) {
	var r endorseReq
	if err := json.Unmarshal(req, &r); err != nil {
		return nil, err
	}
	nc, err := n.channel(r.Channel)
	if err != nil {
		return nil, err
	}
	resp, err := nc.p.Endorse(r.Proposal)
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

func (n *Node) handleEndorseBatch(from string, req []byte) ([]byte, error) {
	var r endorseBatchReq
	if err := json.Unmarshal(req, &r); err != nil {
		return nil, err
	}
	nc, err := n.channel(r.Channel)
	if err != nil {
		return nil, err
	}
	resp, err := nc.p.EndorseBatch(r.Proposal)
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

// handleWaitCommit blocks until the transaction commits on this peer (or
// the timeout passes). The waiter is registered first and the ledger
// checked second, so a commit that lands between a client's submit and its
// waitcommit call is never missed.
func (n *Node) handleWaitCommit(from string, req []byte) ([]byte, error) {
	var r waitCommitReq
	if err := json.Unmarshal(req, &r); err != nil {
		return nil, err
	}
	nc, err := n.channel(r.Channel)
	if err != nil {
		return nil, err
	}
	waiter := nc.p.WaitForCommit(r.TxID)
	if _, flag, blockNum, err := nc.p.Ledger().GetTx(r.TxID); err == nil {
		nc.p.CancelWait(r.TxID)
		return json.Marshal(waitCommitResp{Flag: flag, BlockNum: blockNum})
	}
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = n.net.CommitTimeout
	}
	select {
	case flag := <-waiter:
		resp := waitCommitResp{Flag: flag}
		if _, _, blockNum, err := nc.p.Ledger().GetTx(r.TxID); err == nil {
			resp.BlockNum = blockNum
		}
		return json.Marshal(resp)
	case <-time.After(timeout):
		nc.p.CancelWait(r.TxID)
		return nil, &transport.CodedError{Code: codeCommitTimeout, Msg: fmt.Sprintf("fabric: commit timeout: tx %s", r.TxID)}
	case <-n.done:
		nc.p.CancelWait(r.TxID)
		return nil, &transport.CodedError{Code: codeStopped, Msg: "fabric: node shutting down"}
	}
}

func (n *Node) handleHeight(from string, req []byte) ([]byte, error) {
	var r channelReq
	if err := json.Unmarshal(req, &r); err != nil {
		return nil, err
	}
	nc, err := n.channel(r.Channel)
	if err != nil {
		return nil, err
	}
	return json.Marshal(heightResp{Height: nc.p.Height()})
}

func (n *Node) handleBlocks(from string, req []byte) ([]byte, error) {
	var r blocksReq
	if err := json.Unmarshal(req, &r); err != nil {
		return nil, err
	}
	nc, err := n.channel(r.Channel)
	if err != nil {
		return nil, err
	}
	max := r.Max
	if max <= 0 || max > maxSyncBlocks {
		max = maxSyncBlocks
	}
	blocks := nc.p.Ledger().BlocksFrom(r.From)
	if len(blocks) > max {
		blocks = blocks[:max]
	}
	return json.Marshal(blocksResp{Blocks: blocks})
}

func (n *Node) handleVerifyChain(from string, req []byte) ([]byte, error) {
	var r channelReq
	if err := json.Unmarshal(req, &r); err != nil {
		return nil, err
	}
	nc, err := n.channel(r.Channel)
	if err != nil {
		return nil, err
	}
	if err := nc.p.Ledger().VerifyChain(); err != nil {
		return nil, err
	}
	return json.Marshal(heightResp{Height: nc.p.Height()})
}

// handlePropose feeds an ordering batch into this node's validator; the
// ordering node broadcasts each batch to every validator, and consensus
// deduplicates by digest.
func (n *Node) handlePropose(from string, req []byte) ([]byte, error) {
	var r proposeReq
	if err := json.Unmarshal(req, &r); err != nil {
		return nil, err
	}
	nc, err := n.channel(r.Channel)
	if err != nil {
		return nil, err
	}
	nc.v.Propose(r.Payload)
	return json.Marshal(emptyResp{})
}
