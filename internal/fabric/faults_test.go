package fabric

import (
	"errors"
	"testing"
	"time"

	"socialchain/internal/consensus"
	"socialchain/internal/ledger"
	"socialchain/internal/ordering"
	"socialchain/internal/sim"
)

func TestCommitTimeoutWhenOrderingStopped(t *testing.T) {
	net, err := NewNetwork(Config{
		NumPeers:      4,
		CommitTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.MustDeploy(kvCC{})
	net.Start()
	gw := net.Gateway(newClient(t))

	// Endorse while running, then stop the network before ordering.
	tx, err := gw.endorseAndAssemble("kv", "put", [][]byte{[]byte("k"), []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	net.Stop()
	// Re-start only the peers' endorsement side is gone; submit the
	// envelope into a stopped ordering pipeline: the waiter must time out.
	net2, err := NewNetwork(Config{NumPeers: 4, CommitTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	net2.MustDeploy(kvCC{})
	// net2 is never started: orderers are idle, commits can never happen.
	gw2 := net2.Gateway(newClient(t))
	if _, err := gw2.SubmitEnvelope(*tx); !errors.Is(err, ErrCommitTimeout) {
		t.Fatalf("want ErrCommitTimeout, got %v", err)
	}
}

func TestSubmitUnderLatencyModel(t *testing.T) {
	rng := sim.NewRNG(17)
	net := newTestNetwork(t, Config{
		NumPeers: 4,
		Latency:  sim.LANLatency(rng),
		Cutter:   ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 5 * time.Millisecond},
	})
	gw := net.Gateway(newClient(t))
	start := time.Now()
	res, err := gw.Submit("kv", "put", []byte("lk"), []byte("lv"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Flag != ledger.Valid {
		t.Fatalf("flag = %s", res.Flag)
	}
	// The LAN model must add measurable delay (hundreds of messages at
	// 50-300 µs each) but stay well under a second.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("latency model blew up: %v", elapsed)
	}
}

func TestWrongDigestValidatorDoesNotAffectCommits(t *testing.T) {
	net := newTestNetwork(t, Config{
		NumPeers:         4,
		Behaviors:        map[int]consensus.Behavior{3: consensus.WrongDigest{}},
		ConsensusTimeout: 500 * time.Millisecond,
	})
	gw := net.Gateway(newClient(t))
	for i := 0; i < 3; i++ {
		res, err := gw.Submit("kv", "put", []byte{byte('a' + i)}, []byte("v"))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if res.Flag != ledger.Valid {
			t.Fatalf("submit %d flag = %s", i, res.Flag)
		}
	}
}

func TestEvaluatePrefersFreshestPeer(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4})
	gw := net.Gateway(newClient(t))
	if _, err := gw.Submit("kv", "put", []byte("fresh"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Immediately evaluating must see the write even if some peers lag.
	for i := 0; i < 5; i++ {
		got, err := gw.Evaluate("kv", "get", []byte("fresh"))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "1" {
			t.Fatalf("stale read: %q", got)
		}
	}
}

func TestGatewayNoActiveEndorsers(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4, WatchdogThreshold: 1})
	// Flag every peer.
	for _, p := range net.Peers() {
		net.Watchdog().Report(p.ID(), "test")
	}
	gw := net.Gateway(newClient(t))
	if _, err := gw.Submit("kv", "put", []byte("x"), []byte("y")); err == nil {
		t.Fatal("submit succeeded with no active endorsers")
	}
	if _, err := gw.Evaluate("kv", "get", []byte("x")); err == nil {
		t.Fatal("evaluate succeeded with no active endorsers")
	}
}

func TestActiveEndorsersShrinkOnFlag(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4, WatchdogThreshold: 1})
	if got := len(net.ActiveEndorsers()); got != 4 {
		t.Fatalf("active = %d", got)
	}
	net.Watchdog().Report(net.Peer(2).ID(), "endorsed mismatching digest")
	if got := len(net.ActiveEndorsers()); got != 3 {
		t.Fatalf("active after flag = %d", got)
	}
	// The flagged peer is specifically the missing one.
	for _, p := range net.ActiveEndorsers() {
		if p.ID() == net.Peer(2).ID() {
			t.Fatal("flagged peer still active")
		}
	}
}

func TestNetworkStartStopIdempotent(t *testing.T) {
	net, err := NewNetwork(Config{NumPeers: 4})
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	net.Start() // no-op
	net.Stop()
	net.Stop() // no-op
}

func TestDeployDuplicateChaincode(t *testing.T) {
	net, err := NewNetwork(Config{NumPeers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Deploy(kvCC{}); err != nil {
		t.Fatal(err)
	}
	if err := net.Deploy(kvCC{}); err == nil {
		t.Fatal("duplicate deploy accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	net, err := NewNetwork(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumPeers() != 4 {
		t.Fatalf("default peers = %d", net.NumPeers())
	}
	if net.ChannelID() != "traffic-channel" {
		t.Fatalf("default channel = %s", net.ChannelID())
	}
	if net.Policy().Describe() == "" {
		t.Fatal("no default policy")
	}
}
