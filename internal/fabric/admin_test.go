package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"socialchain/internal/ledger"
	"socialchain/internal/ordering"
)

// TestTracePropagationOverWire follows one trace ID across a real TCP RPC
// hop: minted in the client process at proposal time, carried through the
// orderer and consensus inside the transaction envelope, and returned both
// in the commit result and in the block fetched back from a peer process.
func TestTracePropagationOverWire(t *testing.T) {
	net := Config{
		NumPeers:     4,
		IdentitySeed: "trace-wire",
		Cutter:       ordering.CutterConfig{BatchTimeout: 10 * time.Millisecond},
	}
	d := startDeployment(t, net)
	channel := d.remote.ChannelAt(0).Name()
	gw := d.remote.ChannelAt(0).Gateway(newClient(t))

	res, err := gw.Submit("kv", "put", []byte("traced"), []byte("v"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Flag != ledger.Valid {
		t.Fatalf("flag %s", res.Flag)
	}
	if len(res.Trace) != 16 {
		t.Fatalf("result trace %q, want 16 hex chars", res.Trace)
	}

	// The committed transaction on a peer process must carry the same ID.
	for _, n := range d.nodes {
		if !d.waitNodeHeight(n, channel, 1, 10*time.Second) {
			t.Fatalf("node %s never committed", n.ID())
		}
		blocks, err := d.remote.Blocks(channel, n.ID(), 0)
		if err != nil {
			t.Fatalf("blocks from %s: %v", n.ID(), err)
		}
		found := false
		for _, b := range blocks {
			for i := range b.Txs {
				if b.Txs[i].ID == res.TxID {
					found = true
					if b.Txs[i].Trace != res.Trace {
						t.Fatalf("trace on %s = %q, want %q", n.ID(), b.Txs[i].Trace, res.Trace)
					}
				}
			}
		}
		if !found {
			t.Fatalf("tx %s not found on %s", res.TxID, n.ID())
		}
	}
}

// TestNodeAdminSurfaceLive boots a real deployment, serves one node's
// admin surface, pushes traffic and asserts the operational contract CI
// relies on: /metrics exposes the core series, /healthz answers 200 on a
// live chain, and /statusz reports heights, transport traffic and the
// trace ring.
func TestNodeAdminSurfaceLive(t *testing.T) {
	net := Config{
		NumPeers:     4,
		IdentitySeed: "admin-wire",
		Cutter:       ordering.CutterConfig{BatchTimeout: 10 * time.Millisecond},
	}
	d := startDeployment(t, net)
	node := d.nodes[0]
	if err := node.ServeAdmin("127.0.0.1:0"); err != nil {
		t.Fatalf("serve admin: %v", err)
	}
	if err := d.ord.ServeAdmin("127.0.0.1:0"); err != nil {
		t.Fatalf("serve orderer admin: %v", err)
	}
	channel := d.remote.ChannelAt(0).Name()
	gw := d.remote.ChannelAt(0).Gateway(newClient(t))
	const numTx = 4
	for i := 0; i < numTx; i++ {
		res, err := gw.Submit("kv", "put", []byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err != nil || res.Flag != ledger.Valid {
			t.Fatalf("submit %d: %v %v", i, err, res)
		}
	}
	if !d.waitNodeHeight(node, channel, numTx, 10*time.Second) {
		t.Fatal("node did not commit the traffic")
	}

	fetch := func(base, path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, metricsBody := fetch(node.AdminAddr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"transport_bytes_sent_total", "transport_frames_recv_total",
		"verify_cache_hits_total", "chain_height",
		"peer_txs_committed_total", "peer_blocks_committed_total",
		"tx_stage_seconds_bucket", "tx_commit_e2e_seconds_count",
		"consensus_delivered_total", "consensus_backlog",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	// The ISSUE's bar: at least 12 distinct series names on a live peer.
	names := make(map[string]bool)
	for _, line := range strings.Split(metricsBody, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i > 0 {
			name = line[:i]
		}
		names[name] = true
	}
	if len(names) < 12 {
		t.Fatalf("/metrics has %d distinct series names, want >= 12:\n%s", len(names), metricsBody)
	}

	code, healthBody := fetch(node.AdminAddr(), "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", code, healthBody)
	}

	code, statusBody := fetch(node.AdminAddr(), "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var status NodeStatus
	if err := json.Unmarshal([]byte(statusBody), &status); err != nil {
		t.Fatalf("/statusz not NodeStatus JSON: %v\n%s", err, statusBody)
	}
	if status.ID != node.ID() {
		t.Fatalf("/statusz id %q, want %q", status.ID, node.ID())
	}
	if got := status.Channels[channel].Height; got < numTx {
		t.Fatalf("/statusz height %d, want >= %d", got, numTx)
	}
	if status.Transport.BytesSent == 0 || status.Transport.ConnectedPeers == 0 {
		t.Fatalf("/statusz transport idle: %+v", status.Transport)
	}
	if len(status.SlowTraces) == 0 {
		t.Fatal("/statusz has no slow traces after committing traffic")
	}
	if tr := status.SlowTraces[len(status.SlowTraces)-1]; len(tr.Trace) != 16 || tr.Channel != channel {
		t.Fatalf("bad trace record %+v", tr)
	}

	// The ordering process answers the same surface with its own shape.
	code, ordBody := fetch(d.ord.AdminAddr(), "/statusz")
	if code != http.StatusOK {
		t.Fatalf("orderer /statusz status %d", code)
	}
	var ordStatus OrdererStatus
	if err := json.Unmarshal([]byte(ordBody), &ordStatus); err != nil {
		t.Fatalf("orderer /statusz: %v\n%s", err, ordBody)
	}
	if got := ordStatus.Channels[channel].BatchesProposed; got < numTx {
		t.Fatalf("orderer proposed %d batches, want >= %d", got, numTx)
	}
	code, ordMetrics := fetch(d.ord.AdminAddr(), "/metrics")
	if code != http.StatusOK || !strings.Contains(ordMetrics, "ordering_batches_proposed_total") {
		t.Fatalf("orderer /metrics status %d missing ordering series:\n%s", code, ordMetrics)
	}
}
