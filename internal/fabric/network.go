// Package fabric assembles the permissioned blockchain network: peers,
// consensus validators, ordering services and the deployed chaincodes, plus
// the Gateway client through which applications submit and evaluate
// transactions. It corresponds to the channel-level wiring of Hyperledger
// Fabric that the paper's framework builds on.
//
// A network hosts one or more channels (Config.NumChannels). Each channel
// is an independent shard — its own ordering service, consensus group and
// per-peer world state and block log — so aggregate throughput scales with
// the channel count. Clients obtain channel-scoped gateways through
// Network.Channel(name).Gateway or route by partition key through
// Network.ChannelFor; the single-channel Network.Gateway survives as a
// deprecated wrapper over the default channel.
package fabric

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/consensus"
	"socialchain/internal/msp"
	"socialchain/internal/obs"
	"socialchain/internal/ordering"
	"socialchain/internal/peer"
	"socialchain/internal/sim"
	"socialchain/internal/statedb"
	"socialchain/internal/storage"
	"socialchain/internal/transport"
)

// Config describes a network to build.
type Config struct {
	// ChannelID names the channel (default "traffic-channel", the paper's
	// one-channel deployment). With NumChannels > 1 it becomes the base
	// name: channels are "<ChannelID>-0" … "<ChannelID>-<N-1>". With one
	// channel the name is used verbatim, so single-channel deployments are
	// byte-identical to the pre-sharding behaviour.
	ChannelID string
	// NumChannels partitions the ledger across this many independent
	// channels, each with its own ordering service, consensus group and
	// per-peer state and block log (default 1). Keys route to channels
	// deterministically via RouteKey.
	NumChannels int
	// NumPeers is the number of endorsing/validating peers per channel
	// (default 4). The same peer identities join every channel, as Fabric
	// peers do; each channel keeps an independent ledger per peer.
	NumPeers int
	// NumOrgs spreads peers across organisations (default min(NumPeers,3)).
	NumOrgs int
	// Latency models the message delay between nodes (nil = zero).
	Latency sim.LatencyModel
	// Clock defaults to the real clock.
	Clock sim.Clock
	// Cutter configures batching.
	Cutter ordering.CutterConfig
	// ConsensusTimeout is the view-change timeout (default 2s).
	ConsensusTimeout time.Duration
	// Policy is the endorsement policy (nil = the paper's 2/3 quorum).
	Policy msp.Policy
	// Behaviors injects byzantine consensus behaviour per peer index (the
	// behaviour applies to that peer's validator on every channel).
	Behaviors map[int]consensus.Behavior
	// WatchdogThreshold flags an endorser after this many misbehaviour
	// reports (default 3).
	WatchdogThreshold int
	// CommitTimeout bounds how long a Submit waits for commit (default 30s).
	CommitTimeout time.Duration
	// StateEngine selects the key-value engine behind every peer's world
	// state and history ("single", "sharded" or "persist"; default
	// sharded). The single-lock engine is the seed's behaviour, kept for
	// determinism baselines and engine-comparison benchmarks; the persist
	// engine is WAL-backed and survives restarts. Unknown names fail
	// network construction.
	StateEngine storage.Engine
	// StateShards overrides the sharded engine's stripe count (default 16).
	StateShards int
	// StateDurability selects the persist engine's fsync policy ("none",
	// "batch" or "always"; default none). Only meaningful for durable
	// peers — in-memory engines ignore it. Unknown names fail network
	// construction when the peers open their stores.
	StateDurability storage.Durability
	// DataDir, when non-empty, makes every peer durable: with one channel
	// peer i keeps its state engines and block log under DataDir/peer<i>
	// (the pre-sharding layout); with N > 1 channels each channel's peers
	// live under DataDir/<channel-name>/peer<i>. Building a network over a
	// directory with previous data recovers each channel independently —
	// peers replay their block logs and lagging peers sync from the
	// freshest recovered peer of their channel — before consensus starts.
	DataDir string
	// StateIndexes declares the secondary indexes every peer's world state
	// maintains (nil = none). All peers get the same list — index reads
	// feed endorsement results.
	StateIndexes []statedb.IndexSpec
	// ConsensusOverlap, when > 0, overlaps consensus rounds with block
	// execution: each validator hands decided batches to a dedicated
	// executor goroutine and its leader keeps proposing up to this many
	// sequences beyond the last decided one. 0 (default) keeps the
	// lockstep behaviour: a round's block fully commits before the event
	// loop touches the next round's messages.
	ConsensusOverlap int
	// VerifyCacheSize bounds each peer's and validator's signature verify
	// cache (0 selects msp.DefaultVerifyCacheSize). Caches are per-node,
	// never shared, so the in-process simulation measures what separate
	// processes would.
	VerifyCacheSize int
	// Transport selects how consensus traffic moves between this network's
	// validators: "inproc" (default — deterministic function-call delivery
	// honouring Latency, the test harness) or "tcp" (real localhost sockets:
	// the network owns one transport.TCP endpoint per peer and consensus
	// messages are framed, CRC-checked and decoded exactly as they are
	// between separate OS processes). Unknown kinds fail construction.
	Transport string
	// ListenAddrs optionally pins each peer's TCP listen address (index i is
	// peer i; default 127.0.0.1:0). Only meaningful with Transport "tcp".
	ListenAddrs []string
	// SendQueue bounds each TCP peer link's outbound queue (0 selects
	// transport.DefaultQueueLen). A full queue surfaces as message loss to
	// consensus, which BFT tolerates by design.
	SendQueue int
	// DialTimeout, DialBackoffBase and DialBackoffMax tune the TCP dialer
	// and its reconnect backoff (0 selects the transport defaults).
	DialTimeout     time.Duration
	DialBackoffBase time.Duration
	DialBackoffMax  time.Duration
	// IdentitySeed, when non-empty, derives every peer's signing key
	// deterministically from the seed (msp.NewSignerFromSeed), so separate
	// OS processes of one deployment construct identical identities. Empty
	// (default) generates fresh random keys.
	IdentitySeed string
	// Obs, when non-nil, receives every component's metrics: per-peer
	// pipeline histograms and commit counters (labelled channel+peer),
	// ordering queue depths, consensus health and transport traffic. Nil
	// (default) instruments nothing — the nil registry hands out dangling
	// instruments, so hot paths carry only an atomic add either way.
	Obs *obs.Registry
	// SlowTraces, when non-nil, collects end-to-end trace records for
	// committed transactions slower than its threshold (see obs.TraceRing),
	// shared by every peer on every channel.
	SlowTraces *obs.TraceRing
}

func (c *Config) fill() {
	if c.ChannelID == "" {
		c.ChannelID = "traffic-channel"
	}
	if c.NumChannels <= 0 {
		c.NumChannels = 1
	}
	if c.NumPeers <= 0 {
		c.NumPeers = 4
	}
	if c.NumOrgs <= 0 {
		c.NumOrgs = c.NumPeers
		if c.NumOrgs > 3 {
			c.NumOrgs = 3
		}
	}
	if c.Clock == nil {
		c.Clock = sim.RealClock{}
	}
	if c.ConsensusTimeout <= 0 {
		c.ConsensusTimeout = 2 * time.Second
	}
	if c.CommitTimeout <= 0 {
		c.CommitTimeout = 30 * time.Second
	}
	if c.WatchdogThreshold <= 0 {
		c.WatchdogThreshold = 3
	}
}

// channelName returns the name of channel i under this config.
func (c *Config) channelName(i int) string {
	if c.NumChannels == 1 {
		return c.ChannelID
	}
	return fmt.Sprintf("%s-%d", c.ChannelID, i)
}

// channelDataDir returns channel i's durable root ("" when the network is
// in-memory). A single-channel network keeps the flat pre-sharding layout
// so existing data directories recover unchanged.
func (c *Config) channelDataDir(i int) string {
	if c.DataDir == "" {
		return ""
	}
	if c.NumChannels == 1 {
		return c.DataDir
	}
	return filepath.Join(c.DataDir, c.channelName(i))
}

// Network is a running deployment: one or more channels sharing peer
// identities, the endorsement policy and the (stateless) chaincode
// registry.
type Network struct {
	cfg        Config
	channels   []*Channel
	byName     map[string]*Channel
	registry   *chaincode.Registry
	identities *msp.Registry
	policy     msp.Policy

	// Shared peer identity material: the same signers join every channel.
	ids     []string
	signers []*msp.Signer
	idents  map[string]msp.Identity

	// transports holds the per-peer TCP endpoints when cfg.Transport is
	// "tcp" (nil for the in-process default). Endpoint i carries peer i's
	// consensus streams for every channel.
	transports []*transport.TCP

	mu      sync.Mutex
	started bool
}

// NewNetwork builds (but does not start) a network.
func NewNetwork(cfg Config) (*Network, error) {
	cfg.fill()
	kind, err := transport.ParseKind(cfg.Transport)
	if err != nil {
		return nil, fmt.Errorf("fabric: %w", err)
	}
	n := &Network{
		cfg:        cfg,
		registry:   chaincode.NewRegistry(),
		identities: msp.NewRegistry(),
		byName:     make(map[string]*Channel, cfg.NumChannels),
	}
	n.policy = cfg.Policy
	if n.policy == nil {
		n.policy = msp.TwoThirds(cfg.NumPeers)
	}

	n.ids = make([]string, cfg.NumPeers)
	n.signers = make([]*msp.Signer, cfg.NumPeers)
	n.idents = make(map[string]msp.Identity, cfg.NumPeers)
	for i := 0; i < cfg.NumPeers; i++ {
		s, err := networkSigner(&cfg, i)
		if err != nil {
			return nil, err
		}
		// Validators address each other by bare peer name.
		n.ids[i] = s.Name
		n.signers[i] = s
		n.idents[s.Name] = s.Identity
		if err := n.identities.Register(s.Identity); err != nil {
			return nil, err
		}
	}

	if kind == transport.KindTCP {
		if err := n.buildTransports(); err != nil {
			n.closeTransports()
			return nil, err
		}
	}

	for i := 0; i < cfg.NumChannels; i++ {
		ch, err := newChannel(n, cfg.channelName(i), cfg.channelDataDir(i))
		if err != nil {
			n.closePeers()
			n.closeTransports()
			return nil, fmt.Errorf("fabric: channel %s: %w", cfg.channelName(i), err)
		}
		n.channels = append(n.channels, ch)
		n.byName[ch.name] = ch
	}
	return n, nil
}

// networkSigner builds peer i's signing identity for cfg: random keys by
// default, seed-derived when IdentitySeed is set (separate processes of one
// deployment derive identical keys — see NewNode).
func networkSigner(cfg *Config, i int) (*msp.Signer, error) {
	org := fmt.Sprintf("org%d", i%cfg.NumOrgs)
	name := fmt.Sprintf("peer%d", i)
	if cfg.IdentitySeed != "" {
		return msp.NewSignerFromSeed(cfg.IdentitySeed, org, name, msp.RoleMember), nil
	}
	s, err := msp.NewSigner(org, name, msp.RoleMember)
	if err != nil {
		return nil, fmt.Errorf("fabric: signer %s: %w", name, err)
	}
	return s, nil
}

// buildTransports stands up one localhost TCP endpoint per peer and joins
// them into a full mesh. All channels of a peer share its endpoint, exactly
// as a multi-process deployment shares one listener per process.
func (n *Network) buildTransports() error {
	cfg := &n.cfg
	n.transports = make([]*transport.TCP, cfg.NumPeers)
	for i := 0; i < cfg.NumPeers; i++ {
		listen := "127.0.0.1:0"
		if i < len(cfg.ListenAddrs) && cfg.ListenAddrs[i] != "" {
			listen = cfg.ListenAddrs[i]
		}
		tr, err := transport.NewTCP(transport.TCPConfig{
			ID:          n.ids[i],
			Cluster:     cfg.ChannelID,
			Listen:      listen,
			QueueLen:    cfg.SendQueue,
			DialTimeout: cfg.DialTimeout,
			BackoffBase: cfg.DialBackoffBase,
			BackoffMax:  cfg.DialBackoffMax,
		})
		if err != nil {
			return fmt.Errorf("fabric: transport %s: %w", n.ids[i], err)
		}
		tr.Counters().Register(cfg.Obs.With(obs.L("peer", n.ids[i])))
		n.transports[i] = tr
	}
	for i, tr := range n.transports {
		for j, other := range n.transports {
			if i != j {
				tr.AddPeer(n.ids[j], other.Addr())
			}
		}
	}
	return nil
}

// closeTransports closes the per-peer TCP endpoints, if any.
func (n *Network) closeTransports() {
	for _, tr := range n.transports {
		if tr != nil {
			tr.Close()
		}
	}
}

// Transports returns the per-peer TCP endpoints (nil unless Config.
// Transport is "tcp"); index i is peer i. Exposed for wire-level tests and
// metrics collection.
func (n *Network) Transports() []*transport.TCP { return n.transports }

// Start launches validators and ordering services on every channel.
func (n *Network) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	for _, ch := range n.channels {
		ch.start()
	}
}

// Stop shuts the network down (consensus and ordering only; peers'
// durable stores stay open — see Close).
func (n *Network) Stop() {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		return
	}
	n.started = false
	n.mu.Unlock()
	for _, ch := range n.channels {
		ch.stop()
	}
}

// Close stops the network and flushes + closes every peer's durable
// stores on every channel, returning the first close error. A durable
// deployment must Close (not just Stop) before its data directory is
// reopened.
func (n *Network) Close() error {
	n.Stop()
	err := n.closePeers()
	n.closeTransports()
	return err
}

// closePeers closes every constructed peer on every channel, returning
// the first error.
func (n *Network) closePeers() error {
	var first error
	for _, ch := range n.channels {
		if err := ch.closePeers(); first == nil {
			first = err
		}
	}
	return first
}

// Deploy registers a chaincode on every peer of every channel (they share
// the stateless registry; all state flows through per-channel stubs).
func (n *Network) Deploy(cc chaincode.Chaincode) error {
	return n.registry.Register(cc)
}

// MustDeploy registers a chaincode, panicking on duplicates (setup-time
// programming error).
func (n *Network) MustDeploy(cc chaincode.Chaincode) {
	if err := n.Deploy(cc); err != nil {
		panic(err)
	}
}

// Channel returns the named channel, or nil when no such channel exists.
func (n *Network) Channel(name string) *Channel { return n.byName[name] }

// ChannelAt returns the i-th channel (0 <= i < NumChannels).
func (n *Network) ChannelAt(i int) *Channel { return n.channels[i] }

// Channels returns every channel in construction order.
func (n *Network) Channels() []*Channel { return n.channels }

// NumChannels returns the channel count.
func (n *Network) NumChannels() int { return len(n.channels) }

// DefaultChannel returns channel 0, the channel single-channel code talks
// to.
func (n *Network) DefaultChannel() *Channel { return n.channels[0] }

// ChannelFor routes a partition key (a record's user/source ID) to its
// home channel via RouteKey. Every writer and reader applying the same
// rule is what keeps a key's state on exactly one channel.
func (n *Network) ChannelFor(key string) *Channel {
	return n.channels[RouteKey(key, len(n.channels))]
}

// Identities returns the network identity registry (shared by channels).
func (n *Network) Identities() *msp.Registry { return n.identities }

// Policy returns the endorsement policy (shared by channels).
func (n *Network) Policy() msp.Policy { return n.policy }

// ChannelID returns the default channel's name.
//
// Deprecated: use Channel/Channels and Channel.Name on multi-channel
// networks.
func (n *Network) ChannelID() string { return n.channels[0].name }

// Peer returns the default channel's i-th peer.
//
// Deprecated: use ChannelAt(i).Peer on multi-channel networks.
func (n *Network) Peer(i int) *peer.Peer { return n.channels[0].Peer(i) }

// Peers returns the default channel's peers.
//
// Deprecated: use ChannelAt(i).Peers on multi-channel networks.
func (n *Network) Peers() []*peer.Peer { return n.channels[0].Peers() }

// NumPeers returns the per-channel peer count.
func (n *Network) NumPeers() int { return n.channels[0].NumPeers() }

// Validator returns the default channel's i-th consensus validator
// (tests, stats).
//
// Deprecated: use ChannelAt(i).Validator on multi-channel networks.
func (n *Network) Validator(i int) *consensus.Validator { return n.channels[0].Validator(i) }

// Watchdog returns the default channel's misbehaviour tracker.
//
// Deprecated: use ChannelAt(i).Watchdog on multi-channel networks.
func (n *Network) Watchdog() *peer.Watchdog { return n.channels[0].Watchdog() }

// CommitErrors returns the number of batches that failed to commit,
// summed over channels.
func (n *Network) CommitErrors() uint64 {
	var total uint64
	for _, ch := range n.channels {
		total += ch.CommitErrors()
	}
	return total
}

// ActiveEndorsers returns the default channel's peers not excluded by its
// watchdog.
//
// Deprecated: use ChannelAt(i).ActiveEndorsers on multi-channel networks.
func (n *Network) ActiveEndorsers() []*peer.Peer { return n.channels[0].ActiveEndorsers() }

// SyncPeer catches the default channel's peer i up from the freshest peer
// of that channel. It returns the number of blocks applied.
//
// Deprecated: use ChannelAt(i).SyncPeer on multi-channel networks.
func (n *Network) SyncPeer(i int) (int, error) { return n.channels[0].SyncPeer(i) }

// WaitHeight blocks until every peer of the default channel reaches
// height (or timeout), returning whether it was reached. Useful for tests
// and benchmarks.
//
// Deprecated: use ChannelAt(i).WaitHeight on multi-channel networks.
func (n *Network) WaitHeight(height uint64, timeout time.Duration) bool {
	return n.channels[0].WaitHeight(height, timeout)
}
