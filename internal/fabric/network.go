// Package fabric assembles the permissioned blockchain network: peers,
// consensus validators, ordering services and the deployed chaincodes, plus
// the Gateway client through which applications submit and evaluate
// transactions. It corresponds to the channel-level wiring of Hyperledger
// Fabric that the paper's framework builds on.
package fabric

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/consensus"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/peer"
	"socialchain/internal/sim"
	"socialchain/internal/statedb"
	"socialchain/internal/storage"
)

// Config describes a network to build.
type Config struct {
	// ChannelID names the single channel (default "traffic-channel", the
	// paper's one-channel deployment).
	ChannelID string
	// NumPeers is the number of endorsing/validating peers (default 4).
	NumPeers int
	// NumOrgs spreads peers across organisations (default min(NumPeers,3)).
	NumOrgs int
	// Latency models the message delay between nodes (nil = zero).
	Latency sim.LatencyModel
	// Clock defaults to the real clock.
	Clock sim.Clock
	// Cutter configures batching.
	Cutter ordering.CutterConfig
	// ConsensusTimeout is the view-change timeout (default 2s).
	ConsensusTimeout time.Duration
	// Policy is the endorsement policy (nil = the paper's 2/3 quorum).
	Policy msp.Policy
	// Behaviors injects byzantine consensus behaviour per peer index.
	Behaviors map[int]consensus.Behavior
	// WatchdogThreshold flags an endorser after this many misbehaviour
	// reports (default 3).
	WatchdogThreshold int
	// CommitTimeout bounds how long a Submit waits for commit (default 30s).
	CommitTimeout time.Duration
	// StateEngine selects the key-value engine behind every peer's world
	// state and history ("single", "sharded" or "persist"; default
	// sharded). The single-lock engine is the seed's behaviour, kept for
	// determinism baselines and engine-comparison benchmarks; the persist
	// engine is WAL-backed and survives restarts. Unknown names fail
	// network construction.
	StateEngine storage.Engine
	// StateShards overrides the sharded engine's stripe count (default 16).
	StateShards int
	// DataDir, when non-empty, makes every peer durable: peer i keeps its
	// state engines and block log under DataDir/peer<i> (forcing the
	// persist engine regardless of StateEngine). Building a network over a
	// directory with previous data recovers each peer from its block log
	// and then syncs any peer whose log missed the tail from the freshest
	// recovered peer, before consensus starts.
	DataDir string
	// StateIndexes declares the secondary indexes every peer's world state
	// maintains (nil = none). All peers get the same list — index reads
	// feed endorsement results.
	StateIndexes []statedb.IndexSpec
	// ConsensusOverlap, when > 0, overlaps consensus rounds with block
	// execution: each validator hands decided batches to a dedicated
	// executor goroutine and its leader keeps proposing up to this many
	// sequences beyond the last decided one. 0 (default) keeps the
	// lockstep behaviour: a round's block fully commits before the event
	// loop touches the next round's messages.
	ConsensusOverlap int
	// VerifyCacheSize bounds each peer's and validator's signature verify
	// cache (0 selects msp.DefaultVerifyCacheSize). Caches are per-node,
	// never shared, so the in-process simulation measures what separate
	// processes would.
	VerifyCacheSize int
}

func (c *Config) fill() {
	if c.ChannelID == "" {
		c.ChannelID = "traffic-channel"
	}
	if c.NumPeers <= 0 {
		c.NumPeers = 4
	}
	if c.NumOrgs <= 0 {
		c.NumOrgs = c.NumPeers
		if c.NumOrgs > 3 {
			c.NumOrgs = 3
		}
	}
	if c.Clock == nil {
		c.Clock = sim.RealClock{}
	}
	if c.ConsensusTimeout <= 0 {
		c.ConsensusTimeout = 2 * time.Second
	}
	if c.CommitTimeout <= 0 {
		c.CommitTimeout = 30 * time.Second
	}
	if c.WatchdogThreshold <= 0 {
		c.WatchdogThreshold = 3
	}
}

// Network is a running channel: peers + consensus + ordering.
type Network struct {
	cfg        Config
	peers      []*peer.Peer
	validators []*consensus.Validator
	orderers   []*ordering.Service
	consNet    *consensus.Network
	registry   *chaincode.Registry
	identities *msp.Registry
	watchdog   *peer.Watchdog
	policy     msp.Policy

	mu        sync.RWMutex
	excluded  map[string]bool
	rr        atomic.Uint64
	commitErr atomic.Uint64
	started   bool
}

// NewNetwork builds (but does not start) a network.
func NewNetwork(cfg Config) (*Network, error) {
	cfg.fill()
	n := &Network{
		cfg:        cfg,
		consNet:    consensus.NewNetwork(cfg.Latency, cfg.Clock),
		registry:   chaincode.NewRegistry(),
		identities: msp.NewRegistry(),
		watchdog:   peer.NewWatchdog(cfg.WatchdogThreshold),
		excluded:   make(map[string]bool),
	}
	n.policy = cfg.Policy
	if n.policy == nil {
		n.policy = msp.TwoThirds(cfg.NumPeers)
	}
	// Flagged endorsers are removed from the endorser pool.
	n.watchdog.OnFlag(func(id string) {
		n.mu.Lock()
		n.excluded[id] = true
		n.mu.Unlock()
	})

	ids := make([]string, cfg.NumPeers)
	signers := make([]*msp.Signer, cfg.NumPeers)
	idents := make(map[string]msp.Identity, cfg.NumPeers)
	for i := 0; i < cfg.NumPeers; i++ {
		org := fmt.Sprintf("org%d", i%cfg.NumOrgs)
		name := fmt.Sprintf("peer%d", i)
		s, err := msp.NewSigner(org, name, msp.RoleMember)
		if err != nil {
			return nil, fmt.Errorf("fabric: signer %s: %w", name, err)
		}
		// Validators address each other by bare peer name.
		ids[i] = name
		signers[i] = s
		idents[name] = s.Identity
		if err := n.identities.Register(s.Identity); err != nil {
			return nil, err
		}
	}

	for i := 0; i < cfg.NumPeers; i++ {
		dataDir := ""
		if cfg.DataDir != "" {
			dataDir = filepath.Join(cfg.DataDir, ids[i])
		}
		p, err := peer.New(peer.Config{
			ID:              ids[i],
			ChannelID:       cfg.ChannelID,
			Signer:          signers[i],
			Registry:        n.registry,
			Policy:          n.policy,
			Watchdog:        n.watchdog,
			State:           storage.Config{Engine: cfg.StateEngine, Shards: cfg.StateShards},
			DataDir:         dataDir,
			Indexes:         cfg.StateIndexes,
			VerifyCacheSize: cfg.VerifyCacheSize,
		})
		if err != nil {
			n.closePeers()
			return nil, err
		}
		n.peers = append(n.peers, p)
	}
	if cfg.DataDir != "" {
		// Recovered peers whose block log missed the tail (killed before
		// the last blocks were logged) catch up from the freshest peer now,
		// so consensus starts from one height everywhere.
		if err := n.syncRecoveredPeers(); err != nil {
			n.closePeers()
			return nil, err
		}
	}

	for i := 0; i < cfg.NumPeers; i++ {
		p := n.peers[i]
		v := consensus.NewValidator(consensus.Config{
			ID:              ids[i],
			Validators:      ids,
			Signer:          signers[i],
			Identities:      idents,
			Network:         n.consNet,
			Clock:           cfg.Clock,
			RequestTimeout:  cfg.ConsensusTimeout,
			Behavior:        cfg.Behaviors[i],
			OverlapWindow:   cfg.ConsensusOverlap,
			VerifyCacheSize: cfg.VerifyCacheSize,
			Deliver: func(seq uint64, payload []byte) {
				batch, err := ordering.DecodeBatch(payload)
				if err != nil {
					n.commitErr.Add(1)
					return
				}
				if _, err := p.CommitBatch(batch.Txs); err != nil {
					n.commitErr.Add(1)
				}
			},
		})
		n.validators = append(n.validators, v)
		n.orderers = append(n.orderers, ordering.NewService(cfg.Cutter, v, cfg.Clock))
	}
	return n, nil
}

// Start launches validators and ordering services.
func (n *Network) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	for _, v := range n.validators {
		v.Start()
	}
	for _, o := range n.orderers {
		o.Start()
	}
}

// Stop shuts the network down (consensus and ordering only; peers'
// durable stores stay open — see Close).
func (n *Network) Stop() {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		return
	}
	n.started = false
	n.mu.Unlock()
	for _, o := range n.orderers {
		o.Stop()
	}
	for _, v := range n.validators {
		v.Stop()
	}
}

// Close stops the network and flushes + closes every peer's durable
// stores, returning the first close error. A durable deployment must
// Close (not just Stop) before its data directory is reopened.
func (n *Network) Close() error {
	n.Stop()
	return n.closePeers()
}

// closePeers closes every constructed peer, returning the first error.
func (n *Network) closePeers() error {
	var first error
	for _, p := range n.peers {
		if err := p.Close(); first == nil {
			first = err
		}
	}
	return first
}

// syncRecoveredPeers brings every peer up to the freshest recovered
// height through the validating SyncFrom path.
func (n *Network) syncRecoveredPeers() error {
	var freshest *peer.Peer
	for _, p := range n.peers {
		if freshest == nil || p.Ledger().Height() > freshest.Ledger().Height() {
			freshest = p
		}
	}
	for _, p := range n.peers {
		if p == freshest || p.Ledger().Height() >= freshest.Ledger().Height() {
			continue
		}
		if _, err := p.SyncFrom(freshest); err != nil {
			return fmt.Errorf("fabric: recovery sync %s from %s: %w", p.ID(), freshest.ID(), err)
		}
	}
	return nil
}

// Deploy registers a chaincode on every peer (they share the registry).
func (n *Network) Deploy(cc chaincode.Chaincode) error {
	return n.registry.Register(cc)
}

// MustDeploy registers a chaincode, panicking on duplicates (setup-time
// programming error).
func (n *Network) MustDeploy(cc chaincode.Chaincode) {
	if err := n.Deploy(cc); err != nil {
		panic(err)
	}
}

// Peer returns the i-th peer.
func (n *Network) Peer(i int) *peer.Peer { return n.peers[i] }

// Peers returns all peers.
func (n *Network) Peers() []*peer.Peer { return n.peers }

// NumPeers returns the peer count.
func (n *Network) NumPeers() int { return len(n.peers) }

// Validator returns the i-th consensus validator (tests, stats).
func (n *Network) Validator(i int) *consensus.Validator { return n.validators[i] }

// Watchdog returns the shared misbehaviour tracker.
func (n *Network) Watchdog() *peer.Watchdog { return n.watchdog }

// Identities returns the channel identity registry.
func (n *Network) Identities() *msp.Registry { return n.identities }

// Policy returns the channel endorsement policy.
func (n *Network) Policy() msp.Policy { return n.policy }

// ChannelID returns the channel name.
func (n *Network) ChannelID() string { return n.cfg.ChannelID }

// CommitErrors returns the number of batches that failed to commit.
func (n *Network) CommitErrors() uint64 { return n.commitErr.Load() }

// ActiveEndorsers returns peers not excluded by the watchdog.
func (n *Network) ActiveEndorsers() []*peer.Peer {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*peer.Peer, 0, len(n.peers))
	for _, p := range n.peers {
		if !n.excluded[p.ID()] {
			out = append(out, p)
		}
	}
	return out
}

// SyncPeer catches peer i up from the freshest peer in the network (the
// state-transfer path for peers that missed deliveries while partitioned).
// It returns the number of blocks applied.
func (n *Network) SyncPeer(i int) (int, error) {
	target := n.peers[i]
	var freshest *peer.Peer
	for _, p := range n.peers {
		if p == target {
			continue
		}
		if freshest == nil || p.Ledger().Height() > freshest.Ledger().Height() {
			freshest = p
		}
	}
	if freshest == nil || freshest.Ledger().Height() <= target.Ledger().Height() {
		return 0, nil
	}
	return target.SyncFrom(freshest)
}

// WaitHeight blocks until every peer's ledger reaches height (or timeout),
// returning whether it was reached. Useful for tests and benchmarks.
func (n *Network) WaitHeight(height uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		all := true
		for _, p := range n.peers {
			if p.Ledger().Height() < height {
				all = false
				break
			}
		}
		if all {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}
