package fabric

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"socialchain/internal/consensus"
	"socialchain/internal/obs"
	"socialchain/internal/ordering"
	"socialchain/internal/peer"
	"socialchain/internal/storage"
)

// Channel is one independent shard of the network: its own peer set,
// BFT consensus group, ordering services, endorsement watchdog and — per
// peer — world state, history, indexes and block log. Channels share the
// network's identities, endorsement policy and (stateless) chaincode
// registry but no mutable state: a transaction submitted on one channel
// is invisible to every other, which is what lets channels commit in
// parallel. Fabric's own scale-out story works the same way.
type Channel struct {
	net  *Network
	name string

	peers      []*peer.Peer
	endorsers  []*localEndorser
	validators []*consensus.Validator
	orderers   []*ordering.Service
	consNet    *consensus.InProcNet // nil when consensus rides the TCP transports
	watchdog   *peer.Watchdog

	mu        sync.RWMutex
	excluded  map[string]bool
	rr        atomic.Uint64
	commitErr atomic.Uint64
}

// newChannel builds (but does not start) one channel over the network's
// shared signers. dataDir, when non-empty, roots this channel's durable
// peers (peer i under dataDir/peer<i>).
func newChannel(n *Network, name, dataDir string) (*Channel, error) {
	cfg := n.cfg
	ch := &Channel{
		net:      n,
		name:     name,
		watchdog: peer.NewWatchdog(cfg.WatchdogThreshold),
		excluded: make(map[string]bool),
	}
	if n.transports == nil {
		ch.consNet = consensus.NewInProcNet(cfg.Latency, cfg.Clock)
	}
	// Flagged endorsers are removed from this channel's endorser pool.
	ch.watchdog.OnFlag(func(id string) {
		ch.mu.Lock()
		ch.excluded[id] = true
		ch.mu.Unlock()
	})

	for i := 0; i < cfg.NumPeers; i++ {
		peerDir := ""
		if dataDir != "" {
			peerDir = filepath.Join(dataDir, n.ids[i])
		}
		p, err := peer.New(peer.Config{
			ID:              n.ids[i],
			ChannelID:       name,
			Signer:          n.signers[i],
			Registry:        n.registry,
			Policy:          n.policy,
			Watchdog:        ch.watchdog,
			State:           storage.Config{Engine: cfg.StateEngine, Shards: cfg.StateShards, Durability: cfg.StateDurability},
			DataDir:         peerDir,
			Indexes:         cfg.StateIndexes,
			VerifyCacheSize: cfg.VerifyCacheSize,
			Obs:             cfg.Obs.With(obs.L("channel", name), obs.L("peer", n.ids[i])),
			SlowTraces:      cfg.SlowTraces,
		})
		if err != nil {
			ch.closePeers()
			return nil, err
		}
		ch.peers = append(ch.peers, p)
	}
	if dataDir != "" {
		// Recovered peers whose block log missed the tail (killed before
		// the last blocks were logged) catch up from the freshest peer now,
		// so consensus starts from one height everywhere.
		if err := ch.syncRecoveredPeers(); err != nil {
			ch.closePeers()
			return nil, err
		}
	}

	for i := 0; i < cfg.NumPeers; i++ {
		p := ch.peers[i]
		// In-process networks share one InProcNet per channel; TCP networks
		// give each validator a Bus on its peer's endpoint, so consensus
		// messages cross real framed sockets.
		var sender consensus.Sender = ch.consNet
		if n.transports != nil {
			sender = consensus.NewBus(n.transports[i], name, n.ids)
		}
		v := consensus.NewValidator(consensus.Config{
			ID:              n.ids[i],
			Validators:      n.ids,
			Signer:          n.signers[i],
			Identities:      n.idents,
			Sender:          sender,
			Clock:           cfg.Clock,
			RequestTimeout:  cfg.ConsensusTimeout,
			Behavior:        cfg.Behaviors[i],
			OverlapWindow:   cfg.ConsensusOverlap,
			VerifyCacheSize: cfg.VerifyCacheSize,
			Obs:             cfg.Obs.With(obs.L("channel", name), obs.L("peer", n.ids[i])),
			Deliver: func(seq uint64, payload []byte) {
				batch, err := ordering.DecodeBatch(payload)
				if err != nil {
					ch.commitErr.Add(1)
					return
				}
				if _, err := p.CommitBatch(batch.Txs); err != nil {
					ch.commitErr.Add(1)
				}
			},
		})
		ch.validators = append(ch.validators, v)
		o := ordering.NewService(cfg.Cutter, v, cfg.Clock)
		o.Observe(cfg.Obs.With(obs.L("channel", name), obs.L("peer", n.ids[i])))
		ch.orderers = append(ch.orderers, o)
		ch.endorsers = append(ch.endorsers, &localEndorser{p: p, o: o})
	}
	return ch, nil
}

// start launches the channel's validators and ordering services.
func (ch *Channel) start() {
	for _, v := range ch.validators {
		v.Start()
	}
	for _, o := range ch.orderers {
		o.Start()
	}
}

// stop shuts the channel's ordering and consensus down (peers' durable
// stores stay open — see closePeers).
func (ch *Channel) stop() {
	for _, o := range ch.orderers {
		o.Stop()
	}
	for _, v := range ch.validators {
		v.Stop()
	}
}

// closePeers closes every constructed peer, returning the first error.
func (ch *Channel) closePeers() error {
	var first error
	for _, p := range ch.peers {
		if err := p.Close(); first == nil {
			first = err
		}
	}
	return first
}

// syncRecoveredPeers brings every peer up to the freshest recovered
// height through the validating SyncFrom path.
func (ch *Channel) syncRecoveredPeers() error {
	var freshest *peer.Peer
	for _, p := range ch.peers {
		if freshest == nil || p.Ledger().Height() > freshest.Ledger().Height() {
			freshest = p
		}
	}
	for _, p := range ch.peers {
		if p == freshest || p.Ledger().Height() >= freshest.Ledger().Height() {
			continue
		}
		if _, err := p.SyncFrom(freshest); err != nil {
			return fmt.Errorf("fabric: recovery sync %s from %s on %s: %w", p.ID(), freshest.ID(), ch.name, err)
		}
	}
	return nil
}

// Name returns the channel name.
func (ch *Channel) Name() string { return ch.name }

// Network returns the network this channel belongs to.
func (ch *Channel) Network() *Network { return ch.net }

// Peer returns the channel's i-th peer.
func (ch *Channel) Peer(i int) *peer.Peer { return ch.peers[i] }

// Peers returns all of the channel's peers.
func (ch *Channel) Peers() []*peer.Peer { return ch.peers }

// NumPeers returns the channel's peer count.
func (ch *Channel) NumPeers() int { return len(ch.peers) }

// Validator returns the channel's i-th consensus validator (tests, stats).
func (ch *Channel) Validator(i int) *consensus.Validator { return ch.validators[i] }

// Watchdog returns the channel's misbehaviour tracker.
func (ch *Channel) Watchdog() *peer.Watchdog { return ch.watchdog }

// CommitErrors returns the number of batches that failed to commit on
// this channel.
func (ch *Channel) CommitErrors() uint64 { return ch.commitErr.Load() }

// ActiveEndorsers returns the channel's peers not excluded by its
// watchdog.
func (ch *Channel) ActiveEndorsers() []*peer.Peer {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	out := make([]*peer.Peer, 0, len(ch.peers))
	for _, p := range ch.peers {
		if !ch.excluded[p.ID()] {
			out = append(out, p)
		}
	}
	return out
}

// SyncPeer catches peer i up from the freshest peer on the channel (the
// state-transfer path for peers that missed deliveries while partitioned).
// It returns the number of blocks applied.
func (ch *Channel) SyncPeer(i int) (int, error) {
	target := ch.peers[i]
	var freshest *peer.Peer
	for _, p := range ch.peers {
		if p == target {
			continue
		}
		if freshest == nil || p.Ledger().Height() > freshest.Ledger().Height() {
			freshest = p
		}
	}
	if freshest == nil || freshest.Ledger().Height() <= target.Ledger().Height() {
		return 0, nil
	}
	return target.SyncFrom(freshest)
}

// WaitHeight blocks until every peer's ledger on this channel reaches
// height (or timeout), returning whether it was reached.
func (ch *Channel) WaitHeight(height uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		all := true
		for _, p := range ch.peers {
			if p.Ledger().Height() < height {
				all = false
				break
			}
		}
		if all {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}
