package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/ledger"
	"socialchain/internal/ordering"
)

// TestNetworkOverTCPTransport runs a regular in-process network whose
// consensus traffic crosses real framed localhost sockets instead of
// pointer passing.
func TestNetworkOverTCPTransport(t *testing.T) {
	net := newTestNetwork(t, Config{
		NumPeers:  4,
		Transport: "tcp",
		Cutter:    ordering.CutterConfig{BatchTimeout: 10 * time.Millisecond},
	})
	gw := net.DefaultChannel().Gateway(newClient(t))
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		res, err := gw.Submit("kv", "put", []byte(key), []byte("v"))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if res.Flag != ledger.Valid {
			t.Fatalf("submit %d flag %s", i, res.Flag)
		}
	}
	if !net.DefaultChannel().WaitHeight(5, 10*time.Second) {
		t.Fatal("peers did not all reach height 5")
	}
	trs := net.Transports()
	if len(trs) != 4 {
		t.Fatalf("expected 4 transports, got %d", len(trs))
	}
	var bytesSent int64
	for _, tr := range trs {
		bytesSent += tr.Counters().BytesSent.Load()
	}
	if bytesSent == 0 {
		t.Fatal("consensus committed but no bytes crossed the TCP transports")
	}
}

func TestUnknownTransportKindRejected(t *testing.T) {
	if _, err := NewNetwork(Config{Transport: "carrier-pigeon"}); err == nil {
		t.Fatal("expected error for unknown transport kind")
	}
}

// deployment is a full multi-node test fixture: one ordering process and
// NumPeers peer processes (in-process goroutines over real TCP sockets —
// the same code paths cmd/socialchaind runs in separate OS processes).
type deployment struct {
	t      *testing.T
	net    Config
	ord    *Orderer
	nodes  []*Node
	addrs  map[string]string
	remote *Remote
}

func startDeployment(t *testing.T, net Config) *deployment {
	t.Helper()
	d := &deployment{t: t, net: net}
	ord, err := NewOrderer(OrdererConfig{Listen: "127.0.0.1:0", Net: net})
	if err != nil {
		t.Fatalf("orderer: %v", err)
	}
	d.ord = ord
	filled := net
	filled.fill()
	d.nodes = make([]*Node, filled.NumPeers)
	for i := 0; i < filled.NumPeers; i++ {
		d.nodes[i] = d.startNode(i, "127.0.0.1:0")
	}
	d.addrs = map[string]string{OrdererID: ord.Addr()}
	for _, n := range d.nodes {
		d.addrs[n.ID()] = n.Addr()
	}
	d.joinAll()
	ord.Start()

	peers := make(map[string]string)
	for id, addr := range d.addrs {
		if id != OrdererID {
			peers[id] = addr
		}
	}
	remote, err := Dial(RemoteConfig{Net: net, Peers: peers, Orderer: ord.Addr(), RPCTimeout: 3 * time.Second})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	d.remote = remote
	t.Cleanup(func() {
		remote.Close()
		ord.Close()
		for _, n := range d.nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	return d
}

func (d *deployment) startNode(i int, listen string) *Node {
	d.t.Helper()
	n, err := NewNode(NodeConfig{
		Index:        i,
		Listen:       listen,
		Net:          d.net,
		Peers:        d.addrs,
		SyncInterval: 50 * time.Millisecond,
	})
	if err != nil {
		d.t.Fatalf("node %d: %v", i, err)
	}
	n.MustDeploy(kvCC{})
	n.Start()
	return n
}

// joinAll gives every process every other process's address (the test
// equivalent of -join flags with pre-agreed ports).
func (d *deployment) joinAll() {
	for _, n := range d.nodes {
		if n == nil {
			continue
		}
		for id, addr := range d.addrs {
			if id != n.ID() {
				n.Transport().AddPeer(id, addr)
			}
		}
	}
	for id, addr := range d.addrs {
		if id != OrdererID {
			d.ord.Transport().AddPeer(id, addr)
		}
	}
}

// waitNodeHeight waits for one node's peer to reach height on channel.
func (d *deployment) waitNodeHeight(n *Node, channel string, height uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p := n.Peer(channel); p != nil && p.Height() >= height {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// chainJSON fetches a peer's full chain over RPC as canonical JSON.
func (d *deployment) chainJSON(channel, peerID string) []byte {
	d.t.Helper()
	blocks, err := d.remote.Blocks(channel, peerID, 0)
	if err != nil {
		d.t.Fatalf("blocks %s/%s: %v", channel, peerID, err)
	}
	enc, err := json.Marshal(blocks)
	if err != nil {
		d.t.Fatalf("marshal blocks: %v", err)
	}
	return enc
}

func TestRemoteDeploymentLifecycle(t *testing.T) {
	net := Config{
		NumPeers:      4,
		IdentitySeed:  "wire-test",
		Cutter:        ordering.CutterConfig{BatchTimeout: 10 * time.Millisecond},
		CommitTimeout: 20 * time.Second,
	}
	d := startDeployment(t, net)
	channel := d.remote.ChannelAt(0).Name()
	gw := d.remote.ChannelAt(0).Gateway(newClient(t))

	const numTx = 8
	for i := 0; i < numTx; i++ {
		key := fmt.Sprintf("k%d", i)
		res, err := gw.Submit("kv", "put", []byte(key), []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if res.Flag != ledger.Valid {
			t.Fatalf("submit %d flag %s", i, res.Flag)
		}
		if res.BlockNum == 0 && i > 0 {
			t.Fatalf("submit %d reported block 0", i)
		}
	}

	// Reads go through the remote evaluate path.
	got, err := gw.Evaluate("kv", "get", []byte("k3"))
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if string(got) != "v3" {
		t.Fatalf("evaluate k3 = %q, want v3", got)
	}

	// Every process converges to one chain, verified over the wire.
	for _, n := range d.nodes {
		if !d.waitNodeHeight(n, channel, numTx, 15*time.Second) {
			t.Fatalf("node %s stuck at height %d", n.ID(), n.Peer(channel).Height())
		}
		if h, err := d.remote.VerifyChain(channel, n.ID()); err != nil || h < numTx {
			t.Fatalf("verifychain %s: height %d err %v", n.ID(), h, err)
		}
	}
	ref := d.chainJSON(channel, d.nodes[0].ID())
	for _, n := range d.nodes[1:] {
		if got := d.chainJSON(channel, n.ID()); !bytes.Equal(got, ref) {
			t.Fatalf("chain on %s diverges from %s", n.ID(), d.nodes[0].ID())
		}
	}
}

func TestRemoteBatchSubmit(t *testing.T) {
	net := Config{
		NumPeers:     4,
		IdentitySeed: "wire-batch",
		Cutter:       ordering.CutterConfig{BatchTimeout: 10 * time.Millisecond},
	}
	d := startDeployment(t, net)
	gw := d.remote.ChannelAt(0).Gateway(newClient(t))

	calls := []struct{ k, v string }{{"a", "1"}, {"b", "2"}, {"c", "3"}}
	batch := make([]chaincode.BatchCall, 0, len(calls))
	for _, c := range calls {
		batch = append(batch, chaincode.BatchCall{Chaincode: "kv", Fn: "put", Args: [][]byte{[]byte(c.k), []byte(c.v)}})
	}
	res, err := gw.SubmitBatch(batch)
	if err != nil {
		t.Fatalf("submit batch: %v", err)
	}
	if res.Flag != ledger.Valid {
		t.Fatalf("batch flag %s", res.Flag)
	}
	for _, c := range calls {
		got, err := gw.Evaluate("kv", "get", []byte(c.k))
		if err != nil || string(got) != c.v {
			t.Fatalf("get %s = %q err %v, want %q", c.k, got, err, c.v)
		}
	}
}

// TestNodeRestartCatchUp kills one durable peer process mid-run, keeps the
// deployment committing, then restarts the process on the same address and
// waits for anti-entropy to close the gap byte-identically.
func TestNodeRestartCatchUp(t *testing.T) {
	net := Config{
		NumPeers:     4,
		IdentitySeed: "wire-restart",
		Cutter:       ordering.CutterConfig{BatchTimeout: 10 * time.Millisecond},
		DataDir:      t.TempDir(),
	}
	d := startDeployment(t, net)
	channel := d.remote.ChannelAt(0).Name()
	gw := d.remote.ChannelAt(0).Gateway(newClient(t))

	submit := func(i int) {
		t.Helper()
		res, err := gw.Submit("kv", "put", []byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if res.Flag != ledger.Valid {
			t.Fatalf("submit %d flag %s", i, res.Flag)
		}
	}
	for i := 0; i < 3; i++ {
		submit(i)
	}

	// Take peer3 down; 3 of 4 endorsers still satisfy the 2/3 policy.
	victim := d.nodes[3]
	victimAddr := victim.Addr()
	if err := victim.Close(); err != nil {
		t.Fatalf("close victim: %v", err)
	}
	d.nodes[3] = nil
	for i := 3; i < 6; i++ {
		submit(i)
	}

	// Restart on the same address; the other processes' reconnect loops
	// find it again and anti-entropy replays the missed blocks.
	d.nodes[3] = d.startNode(3, victimAddr)
	d.joinAll()
	if !d.waitNodeHeight(d.nodes[3], channel, 6, 20*time.Second) {
		t.Fatalf("restarted node stuck at height %d", d.nodes[3].Peer(channel).Height())
	}
	ref := d.chainJSON(channel, d.nodes[0].ID())
	if got := d.chainJSON(channel, d.nodes[3].ID()); !bytes.Equal(got, ref) {
		t.Fatal("restarted node's chain diverges after catch-up")
	}
}
