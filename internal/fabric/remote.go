package fabric

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/obs"
	"socialchain/internal/ordering"
	"socialchain/internal/peer"
	"socialchain/internal/transport"
)

// RemoteConfig describes how a client process reaches a networked
// deployment.
type RemoteConfig struct {
	// Net is the deployment-wide network config (channel names, peer
	// count, policy, commit timeout). IdentitySeed is not needed — clients
	// bring their own signers.
	Net Config
	// Peers maps peer transport IDs ("peer0"...) to dial addresses.
	// Endorsement and commit-wait RPCs go only to the peers listed here:
	// a client can drive a deployment through any reachable subset that
	// still satisfies the endorsement policy (which counts Net.NumPeers).
	Peers map[string]string
	// Orderer is the ordering process's dial address.
	Orderer string
	// ID optionally pins the client's transport identity (default: a
	// random "client-<hex>", unique per Dial).
	ID string
	// RPCTimeout bounds non-blocking calls (endorse, height; default 15s).
	RPCTimeout time.Duration
	// Obs, when non-nil, receives the client side of the lifecycle spans
	// (endorse / order / commit_wait histograms, per channel) and the
	// client endpoint's transport counters. Nil instruments nothing.
	Obs *obs.Registry
}

// Remote is a client-side connection to an out-of-process deployment. It
// owns one client TCP endpoint (no listener — replies ride its outbound
// connections) and hands out channel-scoped gateways whose backend speaks
// the endorse/submit/waitcommit RPCs instead of calling in-process peers.
// The Gateway logic itself — digest grouping, policy pre-checks, MVCC
// retries — is byte-for-byte the same code the in-process path runs.
type Remote struct {
	cfg      RemoteConfig
	net      Config
	t        *transport.TCP
	rpc      *transport.RPC
	policy   msp.Policy
	peerIDs  []string
	channels map[string]*RemoteChannel
	order    []string
}

// Dial connects to a deployment. It performs no handshake beyond lazily
// dialing peers on first use; a dead peer surfaces as RPC timeouts.
func Dial(cfg RemoteConfig) (*Remote, error) {
	net := cfg.Net
	net.fill()
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 15 * time.Second
	}
	id := cfg.ID
	if id == "" {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("fabric: client id: %w", err)
		}
		id = "client-" + hex.EncodeToString(b[:])
	}
	book := make(map[string]string, len(cfg.Peers)+1)
	for k, v := range cfg.Peers {
		book[k] = v
	}
	if cfg.Orderer != "" {
		book[OrdererID] = cfg.Orderer
	}
	tr, err := transport.NewTCP(transport.TCPConfig{
		ID:          id,
		Cluster:     net.ChannelID,
		Peers:       book,
		QueueLen:    net.SendQueue,
		DialTimeout: net.DialTimeout,
		BackoffBase: net.DialBackoffBase,
		BackoffMax:  net.DialBackoffMax,
	})
	if err != nil {
		return nil, err
	}
	tr.Counters().Register(cfg.Obs.With(obs.L("peer", id)))
	r := &Remote{
		cfg:      cfg,
		net:      net,
		t:        tr,
		rpc:      transport.NewRPC(tr),
		channels: make(map[string]*RemoteChannel, net.NumChannels),
	}
	r.policy = net.Policy
	if r.policy == nil {
		r.policy = msp.TwoThirds(net.NumPeers)
	}
	// Endorse through the peers the client holds addresses for, in a
	// stable order. Routing round-robin entry picks at an unlisted peer
	// would stall every Nth submit on the commit timeout.
	for id := range cfg.Peers {
		r.peerIDs = append(r.peerIDs, id)
	}
	sort.Strings(r.peerIDs)
	for i := 0; i < net.NumChannels; i++ {
		name := net.channelName(i)
		rc := &RemoteChannel{r: r, name: name}
		for _, pid := range r.peerIDs {
			rc.endorsers = append(rc.endorsers, &remoteEndorser{rc: rc, id: pid, committed: make(map[string]uint64)})
		}
		r.channels[name] = rc
		r.order = append(r.order, name)
	}
	return r, nil
}

// Close tears the client endpoint down.
func (r *Remote) Close() error { return r.t.Close() }

// Transport returns the client's TCP endpoint (metrics, tests).
func (r *Remote) Transport() *transport.TCP { return r.t }

// Channel returns the named remote channel, or nil when the deployment
// has no such channel.
func (r *Remote) Channel(name string) *RemoteChannel { return r.channels[name] }

// ChannelAt returns the i-th remote channel.
func (r *Remote) ChannelAt(i int) *RemoteChannel { return r.channels[r.order[i]] }

// NumChannels returns the deployment's channel count.
func (r *Remote) NumChannels() int { return len(r.order) }

// ChannelFor routes a partition key to its home channel with the same
// rule in-process clients use, so routed writes land identically.
func (r *Remote) ChannelFor(key string) *RemoteChannel {
	return r.channels[r.order[RouteKey(key, len(r.order))]]
}

// ChainHeight returns one peer's chain height on a channel.
func (r *Remote) ChainHeight(channel, peerID string) (uint64, error) {
	var h heightResp
	err := r.rpc.CallJSON(peerID, methodHeight, channelReq{Channel: channel}, &h, r.cfg.RPCTimeout)
	return h.Height, err
}

// VerifyChain asks one peer to verify its hash chain on a channel,
// returning the verified height.
func (r *Remote) VerifyChain(channel, peerID string) (uint64, error) {
	var h heightResp
	err := r.rpc.CallJSON(peerID, methodVerifyChain, channelReq{Channel: channel}, &h, r.cfg.RPCTimeout)
	return h.Height, err
}

// Blocks fetches one peer's blocks from height `from` on a channel
// (paged internally), for audits and equivalence checks.
func (r *Remote) Blocks(channel, peerID string, from uint64) ([]*ledger.Block, error) {
	h, err := r.ChainHeight(channel, peerID)
	if err != nil {
		return nil, err
	}
	src := &remoteBlockSource{rpc: r.rpc, peer: peerID, channel: channel, height: h}
	return src.BlocksFrom(from)
}

// RemoteChannel is the client-side handle on one channel of an
// out-of-process deployment; it implements the same gateway backend the
// in-process Channel does.
type RemoteChannel struct {
	r         *Remote
	name      string
	endorsers []*remoteEndorser
	rr        atomic.Uint64
}

// Name returns the channel name.
func (rc *RemoteChannel) Name() string { return rc.name }

// Gateway creates a client bound to this remote channel. Gateway.Channel
// returns nil for remote gateways; everything else behaves as in-process.
func (rc *RemoteChannel) Gateway(client *msp.Signer) *Gateway {
	return newGateway(rc, nil, client)
}

func (rc *RemoteChannel) chName() string               { return rc.name }
func (rc *RemoteChannel) chPolicy() msp.Policy         { return rc.r.policy }
func (rc *RemoteChannel) commitTimeout() time.Duration { return rc.r.net.CommitTimeout }
func (rc *RemoteChannel) now() time.Time               { return rc.r.net.Clock.Now() }

// clientDelay is a no-op: over TCP the network hop is real, not simulated.
func (rc *RemoteChannel) clientDelay(string) {}

func (rc *RemoteChannel) activeEndorsers() []Endorser {
	out := make([]Endorser, len(rc.endorsers))
	for i, e := range rc.endorsers {
		out[i] = e
	}
	return out
}

func (rc *RemoteChannel) entryEndorsers() []Endorser { return rc.activeEndorsers() }

func (rc *RemoteChannel) rrNext() uint64 { return rc.rr.Add(1) }

func (rc *RemoteChannel) obsReg() *obs.Registry {
	return rc.r.cfg.Obs.With(obs.L("channel", rc.name))
}

// remoteEndorser speaks one peer process's RPC surface; the orderer's
// submit is reached through the channel's shared connection.
type remoteEndorser struct {
	rc *RemoteChannel
	id string

	mu        sync.Mutex
	committed map[string]uint64 // txID -> block number from waitcommit replies
}

func (e *remoteEndorser) ID() string { return e.id }

// Height returns the peer's chain height, or 0 when the peer is
// unreachable (it then simply never looks freshest).
func (e *remoteEndorser) Height() uint64 {
	var h heightResp
	if err := e.rc.r.rpc.CallJSON(e.id, methodHeight, channelReq{Channel: e.rc.name}, &h, e.rc.r.cfg.RPCTimeout); err != nil {
		return 0
	}
	return h.Height
}

func (e *remoteEndorser) Endorse(prop *peer.Proposal) (*peer.ProposalResponse, error) {
	var resp peer.ProposalResponse
	req := endorseReq{Channel: e.rc.name, Proposal: prop}
	if err := e.rc.r.rpc.CallJSON(e.id, methodEndorse, req, &resp, e.rc.r.cfg.RPCTimeout); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (e *remoteEndorser) EndorseBatch(prop *peer.BatchProposal) (*peer.ProposalResponse, error) {
	var resp peer.ProposalResponse
	req := endorseBatchReq{Channel: e.rc.name, Proposal: prop}
	if err := e.rc.r.rpc.CallJSON(e.id, methodEndorseBatch, req, &resp, e.rc.r.cfg.RPCTimeout); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Order submits the envelope to the ordering process, then watches this
// peer for the commit. The peer's waitcommit handler registers its waiter
// before consulting the ledger, so a commit landing between the two RPCs
// is still observed.
func (e *remoteEndorser) Order(tx ledger.Transaction) (<-chan ledger.ValidationCode, error) {
	req := submitReq{Channel: e.rc.name, Tx: tx}
	if err := e.rc.r.rpc.CallJSON(OrdererID, methodSubmit, req, nil, e.rc.r.cfg.RPCTimeout); err != nil {
		switch transport.ErrCode(err) {
		case codeBacklog:
			return nil, fmt.Errorf("%w: %s", ordering.ErrBacklog, err)
		case codeStopped:
			return nil, fmt.Errorf("%w: %s", ordering.ErrStopped, err)
		}
		return nil, err
	}
	waiter := make(chan ledger.ValidationCode, 1)
	timeout := e.rc.r.net.CommitTimeout
	go func() {
		var resp waitCommitResp
		wreq := waitCommitReq{Channel: e.rc.name, TxID: tx.ID, Timeout: timeout}
		if err := e.rc.r.rpc.CallJSON(e.id, methodWaitCommit, wreq, &resp, timeout+5*time.Second); err != nil {
			return // the gateway's own commit timeout fires
		}
		e.mu.Lock()
		e.committed[tx.ID] = resp.BlockNum
		e.mu.Unlock()
		waiter <- resp.Flag
	}()
	return waiter, nil
}

func (e *remoteEndorser) TxBlock(txID string) (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	blockNum, ok := e.committed[txID]
	if ok {
		delete(e.committed, txID)
	}
	return blockNum, ok
}
