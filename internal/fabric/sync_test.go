package fabric

import (
	"fmt"
	"testing"
	"time"
)

func TestSyncPeerNoopWhenConverged(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4})
	gw := net.Gateway(newClient(t))
	for i := 0; i < 3; i++ {
		if _, err := gw.Submit("kv", "put", []byte{byte('a' + i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var max uint64
	for i := 0; i < 4; i++ {
		if h := net.Peer(i).Ledger().Height(); h > max {
			max = h
		}
	}
	if !net.WaitHeight(max, 5*time.Second) {
		t.Fatal("no convergence")
	}
	for i := 0; i < 4; i++ {
		n, err := net.SyncPeer(i)
		if err != nil {
			t.Fatalf("sync peer %d: %v", i, err)
		}
		if n != 0 {
			t.Fatalf("converged peer %d synced %d blocks", i, n)
		}
	}
}

func TestSyncPeerCatchesUpManualLaggard(t *testing.T) {
	// Build a network, commit traffic, then construct a fresh network
	// sharing nothing and sync one of its peers directly from the first
	// network's freshest peer (exercising cross-instance catch-up).
	net := newTestNetwork(t, Config{NumPeers: 4})
	gw := net.Gateway(newClient(t))
	for i := 0; i < 4; i++ {
		if _, err := gw.Submit("kv", "put", []byte(fmt.Sprintf("s%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	src := net.Peer(0)
	// Ensure peer 0 is fully caught up first.
	var max uint64
	for i := 0; i < 4; i++ {
		if h := net.Peer(i).Ledger().Height(); h > max {
			max = h
		}
	}
	if !net.WaitHeight(max, 5*time.Second) {
		t.Fatal("no convergence")
	}

	// A brand-new network's peer is at genesis; sync it from src. Note the
	// endorsement policy is TwoThirds(4) in both networks and endorser
	// identities differ, so re-validation must still agree because the
	// synced blocks carry the ORIGINAL endorsements, verified against
	// their embedded identities.
	net2, err := NewNetwork(Config{NumPeers: 4})
	if err != nil {
		t.Fatal(err)
	}
	net2.MustDeploy(kvCC{})
	laggard := net2.Peer(0)
	n, err := laggard.SyncFrom(src)
	if err != nil {
		t.Fatalf("cross-network sync: %v", err)
	}
	if uint64(n) != src.Ledger().Height()-1 {
		t.Fatalf("synced %d blocks, want %d", n, src.Ledger().Height()-1)
	}
	if laggard.Ledger().TipHash() != src.Ledger().TipHash() {
		t.Fatal("laggard tip differs after sync")
	}
	vv, ok := laggard.State().GetState("kv", "s3")
	if !ok || string(vv.Value) != "v" {
		t.Fatal("laggard state incomplete")
	}
}
