package fabric

import (
	"encoding/json"
	"testing"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/ledger"
	"socialchain/internal/ordering"
)

// TestSubmitBatchAtomicLifecycle submits a batched envelope of increments
// on one key and checks the per-call responses, the single-transaction
// commit and the final state on every peer.
func TestSubmitBatchAtomicLifecycle(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4, Cutter: ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond}})
	gw := net.Gateway(newClient(t))

	calls := make([]chaincode.BatchCall, 5)
	for i := range calls {
		calls[i] = chaincode.BatchCall{Chaincode: "kv", Fn: "increment", Args: [][]byte{[]byte("n")}}
	}
	res, err := gw.SubmitBatch(calls)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if res.Flag != ledger.Valid {
		t.Fatalf("batch flagged %s", res.Flag)
	}
	var responses [][]byte
	if err := json.Unmarshal(res.Response, &responses); err != nil {
		t.Fatalf("decode responses: %v", err)
	}
	if len(responses) != 5 || string(responses[4]) != "5" {
		t.Fatalf("responses = %q", responses)
	}
	// Wait for the block that carries the batch, not peer 0's current
	// height: commit confirmation may come from another peer, so peer 0
	// can still be behind when this line runs.
	if !net.WaitHeight(res.BlockNum+1, 5*time.Second) {
		t.Fatal("peers did not converge")
	}
	raw, err := gw.Evaluate("kv", "get", []byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "5" {
		t.Fatalf("n = %s, want 5 (one atomic envelope)", raw)
	}
	// The whole batch is one ledger transaction.
	tx, flag, _, err := net.Peer(0).Ledger().GetTx(res.TxID)
	if err != nil {
		t.Fatal(err)
	}
	if flag != ledger.Valid {
		t.Fatalf("committed flag %s", flag)
	}
	if len(tx.Payload.Batch) != 5 {
		t.Fatalf("payload carries %d batch calls", len(tx.Payload.Batch))
	}
}

// TestSubmitBatchFailingCallRejectsWhole checks all-or-nothing: one
// failing call aborts endorsement and nothing commits.
func TestSubmitBatchFailingCallRejectsWhole(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4, Cutter: ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond}})
	gw := net.Gateway(newClient(t))
	_, err := gw.SubmitBatch([]chaincode.BatchCall{
		{Chaincode: "kv", Fn: "put", Args: [][]byte{[]byte("a"), []byte("1")}},
		{Chaincode: "kv", Fn: "fail"},
	})
	if err == nil {
		t.Fatal("poisoned batch accepted")
	}
	raw, err := gw.Evaluate("kv", "get", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Fatalf("failed batch leaked state: a=%q", raw)
	}
}

// TestSubmitBatchEventsDelivered checks each call's chaincode event is
// delivered to subscribers when the batch envelope commits.
func TestSubmitBatchEventsDelivered(t *testing.T) {
	net := newTestNetwork(t, Config{NumPeers: 4, Cutter: ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 2 * time.Millisecond}})
	gw := net.Gateway(newClient(t))
	events := net.Peer(0).SubscribeEvents(16)
	calls := []chaincode.BatchCall{
		{Chaincode: "kv", Fn: "put", Args: [][]byte{[]byte("k0"), []byte("v0")}},
		{Chaincode: "kv", Fn: "put", Args: [][]byte{[]byte("k1"), []byte("v1")}},
	}
	res, err := gw.SubmitBatch(calls)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		select {
		case e := <-events:
			if e.Name != "put" {
				t.Fatalf("event name %q", e.Name)
			}
			got[string(e.Payload)] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for event %d of batch %s", i, res.TxID)
		}
	}
	if !got["k0"] || !got["k1"] {
		t.Fatalf("events delivered for %v, want k0 and k1", got)
	}
}
