// Package metrics provides the measurement kit used by the benchmark
// harness: streaming statistics, percentiles, histograms, labelled series
// and aligned table output. It stands in for the Grafana / Hyperledger
// Explorer monitoring used in the paper's testbed.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Stats accumulates scalar samples and reports summary statistics. It keeps
// every sample so exact percentiles are available; the evaluation workloads
// are small enough that this is cheap. Stats is safe for concurrent use.
type Stats struct {
	mu      sync.Mutex
	samples []float64
	sum     float64
	sumSq   float64
	min     float64
	max     float64
}

// NewStats returns an empty Stats collector.
func NewStats() *Stats {
	return &Stats{min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one sample.
func (s *Stats) Add(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, v)
	s.sum += v
	s.sumSq += v * v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

// AddDuration records a duration sample in seconds.
func (s *Stats) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of samples.
func (s *Stats) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Mean returns the sample mean, or 0 for an empty collector.
func (s *Stats) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Std returns the population standard deviation, or 0 for fewer than two
// samples.
func (s *Stats) Std() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := float64(len(s.samples))
	if n < 2 {
		return 0
	}
	mean := s.sum / n
	v := s.sumSq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest sample, or 0 when empty.
func (s *Stats) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample, or 0 when empty.
func (s *Stats) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	return s.max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. Returns 0 when empty.
func (s *Stats) Percentile(p float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.samples...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Samples returns a copy of all recorded samples.
func (s *Stats) Samples() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.samples...)
}

// Summary renders a one-line human-readable summary.
func (s *Stats) Summary() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.6g min=%.6g p50=%.6g p95=%.6g max=%.6g",
		s.N(), s.Mean(), s.Std(), s.Min(), s.Percentile(50), s.Percentile(95), s.Max())
}
