package metrics

import "sync/atomic"

// Counter is a monotonically increasing event counter, safe for concurrent
// use. It is the measurement primitive for hit/miss accounting on hot
// paths where a full Stats collector (which retains samples) would cost
// more than the operation it measures.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.n.Load() }
