package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// Histogram counts samples into fixed-width buckets over [Lo, Hi); samples
// outside the range land in the first or last bucket. It is used to render
// the confidence-score distributions of Figure 3 as text.
type Histogram struct {
	mu      sync.Mutex
	lo, hi  float64
	width   float64
	buckets []int
	total   int
}

// NewHistogram creates a histogram with n equal buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]int, n)}
}

// Add records a sample.
func (h *Histogram) Add(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := int((v - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.total++
}

// Counts returns a copy of per-bucket counts.
func (h *Histogram) Counts() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int(nil), h.buckets...)
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Render draws the histogram as rows of "lo-hi | #### count". maxBar sets
// the width of the longest bar.
func (h *Histogram) Render(maxBar int) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if maxBar <= 0 {
		maxBar = 40
	}
	peak := 0
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.buckets {
		lo := h.lo + float64(i)*h.width
		hi := lo + h.width
		bar := 0
		if peak > 0 {
			bar = c * maxBar / peak
		}
		fmt.Fprintf(&b, "%8.3f-%-8.3f |%-*s %d\n", lo, hi, maxBar, strings.Repeat("#", bar), c)
	}
	return b.String()
}
