package metrics

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("count = %d", c.Load())
	}
	c.Add(42)
	if c.Load() != 8042 {
		t.Fatalf("count = %d", c.Load())
	}
}
