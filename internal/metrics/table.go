package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table renders rows of strings with aligned columns; the benchmark harness
// uses it to print the per-figure series the paper plots.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// Series is a labelled sequence of (x, y) points, e.g. one line of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// WriteCSV emits the series as "label,x,y" lines, convenient for replotting.
func (s *Series) WriteCSV(w io.Writer) {
	for i := range s.X {
		fmt.Fprintf(w, "%s,%g,%g\n", s.Label, s.X[i], s.Y[i])
	}
}
