package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestStatsBasic(t *testing.T) {
	s := NewStats()
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 3 {
		t.Fatalf("Mean = %f", got)
	}
	if got := s.Min(); got != 1 {
		t.Fatalf("Min = %f", got)
	}
	if got := s.Max(); got != 5 {
		t.Fatalf("Max = %f", got)
	}
	if got := s.Std(); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("Std = %f, want sqrt(2)", got)
	}
}

func TestStatsEmpty(t *testing.T) {
	s := NewStats()
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty stats must report zeros")
	}
}

func TestStatsPercentiles(t *testing.T) {
	s := NewStats()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 100}, {50, 50.5},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %f, want %f", c.p, got, c.want)
		}
	}
}

func TestStatsPercentileMonotonic(t *testing.T) {
	err := quick.Check(func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewStats()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		last := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			cur := s.Percentile(p)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsMinLEMeanLEMax(t *testing.T) {
	err := quick.Check(func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewStats()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
			s.Add(v)
		}
		return s.Min() <= s.Mean()+1e-6 && s.Mean() <= s.Max()+1e-6
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsAddDuration(t *testing.T) {
	s := NewStats()
	s.AddDuration(2 * time.Second)
	if s.Mean() != 2 {
		t.Fatalf("duration recorded as %f seconds", s.Mean())
	}
}

func TestStatsSummaryString(t *testing.T) {
	s := NewStats()
	s.Add(1)
	out := s.Summary()
	if !strings.Contains(out, "n=1") || !strings.Contains(out, "mean=1") {
		t.Fatalf("summary %q", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for _, v := range []float64{0.05, 0.15, 0.15, 0.95, -5, 5} {
		h.Add(v)
	}
	counts := h.Counts()
	if counts[0] != 2 { // 0.05 and the clamped -5
		t.Fatalf("bucket 0 = %d", counts[0])
	}
	if counts[1] != 2 {
		t.Fatalf("bucket 1 = %d", counts[1])
	}
	if counts[9] != 2 { // 0.95 and the clamped 5
		t.Fatalf("bucket 9 = %d", counts[9])
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0.1)
	h.Add(0.1)
	h.Add(0.6)
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Fatal("render lacks bars")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatal("render should have 4 rows")
	}
}

func TestHistogramDegenerateConfig(t *testing.T) {
	h := NewHistogram(5, 5, 0) // hi<=lo and n<=0 must be corrected
	h.Add(5)
	if h.Total() != 1 {
		t.Fatal("degenerate histogram dropped sample")
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("size_kb", "time_s")
	tbl.AddRow(16.0, 0.001)
	tbl.AddRow(1024.0, 0.25)
	var b strings.Builder
	tbl.Render(&b)
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("table has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "size_kb") {
		t.Fatalf("header line %q", lines[0])
	}
}

func TestSeriesCSV(t *testing.T) {
	s := Series{Label: "ipfs"}
	s.Append(16, 0.001)
	s.Append(32, 0.002)
	var b strings.Builder
	s.WriteCSV(&b)
	want := "ipfs,16,0.001\nipfs,32,0.002\n"
	if b.String() != want {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestStatsConcurrentAdd(t *testing.T) {
	s := NewStats()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				s.Add(1)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s.N() != 8000 {
		t.Fatalf("N = %d, want 8000", s.N())
	}
}
