package peer

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
)

func batchPropose(t *testing.T, client *msp.Signer, calls ...chaincode.BatchCall) *BatchProposal {
	t.Helper()
	bp, err := NewBatchProposal(client, "ch", calls, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

// batchEnvelope assembles a signed tx from a batch endorsement.
func batchEnvelope(t *testing.T, client *msp.Signer, bp *BatchProposal, resps ...*ProposalResponse) ledger.Transaction {
	t.Helper()
	payload := ledger.TxPayload{Batch: make([]ledger.TxPayload, len(bp.Calls))}
	for i, c := range bp.Calls {
		payload.Batch[i] = ledger.TxPayload{Chaincode: c.Chaincode, Fn: c.Fn, Args: c.Args}
	}
	tx := ledger.Transaction{
		ID:        bp.TxID,
		ChannelID: bp.ChannelID,
		Creator:   client.Identity,
		Payload:   payload,
		Response:  resps[0].Response,
		Events:    resps[0].Events,
		Timestamp: bp.Timestamp,
	}
	if err := jsonUnmarshal(resps[0].RWSetJSON, &tx.RWSet); err != nil {
		t.Fatal(err)
	}
	for _, r := range resps {
		tx.Endorsements = append(tx.Endorsements, r.Endorsement)
	}
	tx.Signature = client.Sign(tx.SigningBytes())
	return tx
}

// TestEndorseBatchMergedRWSetCommits endorses three incr calls on one key
// as a single batch envelope and commits it: the merged read/write set
// must land the final counter value in one valid transaction.
func TestEndorseBatchMergedRWSetCommits(t *testing.T) {
	p, client := newTestPeer(t)
	bp := batchPropose(t, client,
		chaincode.BatchCall{Chaincode: "counter", Fn: "incr", Args: [][]byte{[]byte("k")}},
		chaincode.BatchCall{Chaincode: "counter", Fn: "incr", Args: [][]byte{[]byte("k")}},
		chaincode.BatchCall{Chaincode: "counter", Fn: "incr", Args: [][]byte{[]byte("k")}},
	)
	resp, err := p.EndorseBatch(bp)
	if err != nil {
		t.Fatalf("EndorseBatch: %v", err)
	}
	var responses [][]byte
	if err := json.Unmarshal(resp.Response, &responses); err != nil {
		t.Fatalf("decode batch responses: %v", err)
	}
	if len(responses) != 3 || string(responses[2]) != "3" {
		t.Fatalf("responses = %q", responses)
	}
	block, err := p.CommitBatch([]ledger.Transaction{batchEnvelope(t, client, bp, resp)})
	if err != nil {
		t.Fatal(err)
	}
	if block.Metadata.Flags[0] != ledger.Valid {
		t.Fatalf("batch tx flagged %s", block.Metadata.Flags[0])
	}
	vv, ok := p.State().GetState("counter", "k")
	if !ok || string(vv.Value) != "3" {
		t.Fatalf("counter = %q ok=%v, want 3", vv.Value, ok)
	}
}

// TestEndorseBatchRejectsBadSignature checks tampered batch proposals are
// refused.
func TestEndorseBatchRejectsBadSignature(t *testing.T) {
	p, client := newTestPeer(t)
	bp := batchPropose(t, client, chaincode.BatchCall{Chaincode: "counter", Fn: "incr", Args: [][]byte{[]byte("k")}})
	bp.Calls = append(bp.Calls, chaincode.BatchCall{Chaincode: "counter", Fn: "incr", Args: [][]byte{[]byte("other")}})
	if _, err := p.EndorseBatch(bp); err == nil {
		t.Fatal("tampered batch proposal endorsed")
	}
}

// TestEndorseBatchFailingCallAborts checks a failing call rejects the
// whole endorsement.
func TestEndorseBatchFailingCallAborts(t *testing.T) {
	p, client := newTestPeer(t)
	bp := batchPropose(t, client,
		chaincode.BatchCall{Chaincode: "counter", Fn: "incr", Args: [][]byte{[]byte("k")}},
		chaincode.BatchCall{Chaincode: "counter", Fn: "boom"},
	)
	if _, err := p.EndorseBatch(bp); err == nil {
		t.Fatal("poisoned batch endorsed")
	}
	if _, ok := p.State().GetState("counter", "k"); ok {
		t.Fatal("failed endorsement leaked state")
	}
}

// TestCommitBatchParallelValidation commits a wide block (forcing the
// worker-pool stateless phase under raised GOMAXPROCS) mixing valid
// transactions, a bad creator signature and an intra-block MVCC conflict,
// and checks flags and final state match the serial rules.
func TestCommitBatchParallelValidation(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	p, client := newTestPeer(t)
	var txs []ledger.Transaction
	// 8 independent counters: all valid.
	for i := 0; i < 8; i++ {
		prop := propose(t, client, "incr", []byte(fmt.Sprintf("k%d", i)))
		resp, err := p.Endorse(prop)
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, envelope(t, client, prop, resp))
	}
	// Tampered signature.
	badProp := propose(t, client, "incr", []byte("bad"))
	badResp, err := p.Endorse(badProp)
	if err != nil {
		t.Fatal(err)
	}
	badTx := envelope(t, client, badProp, badResp)
	badTx.Signature = []byte("garbage")
	txs = append(txs, badTx)
	// Two txs reading/writing the same key: the second must flag MVCC.
	c1 := propose(t, client, "incr", []byte("shared"))
	r1, err := p.Endorse(c1)
	if err != nil {
		t.Fatal(err)
	}
	c2 := propose(t, client, "incr", []byte("shared"))
	r2, err := p.Endorse(c2)
	if err != nil {
		t.Fatal(err)
	}
	txs = append(txs, envelope(t, client, c1, r1), envelope(t, client, c2, r2))

	block, err := p.CommitBatch(txs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if block.Metadata.Flags[i] != ledger.Valid {
			t.Fatalf("tx %d flagged %s", i, block.Metadata.Flags[i])
		}
	}
	if block.Metadata.Flags[8] != ledger.BadCreatorSignature {
		t.Fatalf("tampered tx flagged %s", block.Metadata.Flags[8])
	}
	if block.Metadata.Flags[9] != ledger.Valid || block.Metadata.Flags[10] != ledger.MVCCConflict {
		t.Fatalf("conflict pair flagged %s / %s", block.Metadata.Flags[9], block.Metadata.Flags[10])
	}
	vv, ok := p.State().GetState("counter", "shared")
	if !ok || string(vv.Value) != "1" {
		t.Fatalf("shared counter = %q, want 1", vv.Value)
	}
	if _, ok := p.State().GetState("counter", "bad"); ok {
		t.Fatal("invalid tx wrote state")
	}
}
