package peer

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
)

// counterCC increments a named counter; used to exercise RWSets and MVCC.
type counterCC struct{}

func (counterCC) Name() string { return "counter" }

func (counterCC) Invoke(stub chaincode.Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case "incr":
		key := string(args[0])
		raw, err := stub.GetState(key)
		if err != nil {
			return nil, err
		}
		n := 0
		if len(raw) > 0 {
			fmt.Sscanf(string(raw), "%d", &n)
		}
		n++
		out := []byte(fmt.Sprintf("%d", n))
		if err := stub.PutState(key, out); err != nil {
			return nil, err
		}
		if err := stub.SetEvent("incremented", []byte(key)); err != nil {
			return nil, err
		}
		return out, nil
	case "boom":
		return nil, errors.New("chaincode failure")
	default:
		return nil, fmt.Errorf("unknown fn %q", fn)
	}
}

func newTestPeer(t *testing.T) (*Peer, *msp.Signer) {
	t.Helper()
	signer, err := msp.NewSigner("org1", "peer0", msp.RoleMember)
	if err != nil {
		t.Fatal(err)
	}
	reg := chaincode.NewRegistry()
	if err := reg.Register(counterCC{}); err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		ID:        "peer0",
		ChannelID: "ch",
		Signer:    signer,
		Registry:  reg,
		Policy:    msp.AnyValid{},
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := msp.NewSigner("clientorg", "alice", msp.RoleMember)
	if err != nil {
		t.Fatal(err)
	}
	return p, client
}

func propose(t *testing.T, client *msp.Signer, fn string, args ...[]byte) *Proposal {
	t.Helper()
	prop, err := NewProposal(client, "ch", "counter", fn, args, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	return prop
}

// envelope assembles a signed tx from an endorsement.
func envelope(t *testing.T, client *msp.Signer, prop *Proposal, resps ...*ProposalResponse) ledger.Transaction {
	t.Helper()
	tx := ledger.Transaction{
		ID:        prop.TxID,
		ChannelID: prop.ChannelID,
		Creator:   client.Identity,
		Payload:   ledger.TxPayload{Chaincode: prop.Chaincode, Fn: prop.Fn, Args: prop.Args},
		Response:  resps[0].Response,
		Events:    resps[0].Events,
		Timestamp: prop.Timestamp,
	}
	if err := jsonUnmarshal(resps[0].RWSetJSON, &tx.RWSet); err != nil {
		t.Fatal(err)
	}
	for _, r := range resps {
		tx.Endorsements = append(tx.Endorsements, r.Endorsement)
	}
	tx.Signature = client.Sign(tx.SigningBytes())
	return tx
}

func TestGenesisBlock(t *testing.T) {
	p, _ := newTestPeer(t)
	if p.Ledger().Height() != 1 {
		t.Fatalf("height = %d, want 1 (genesis)", p.Ledger().Height())
	}
	if err := p.Ledger().VerifyChain(); err != nil {
		t.Fatal(err)
	}
}

func TestEndorseProducesVerifiableEndorsement(t *testing.T) {
	p, client := newTestPeer(t)
	resp, err := p.Endorse(propose(t, client, "incr", []byte("ctr")))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Response) != "1" {
		t.Fatalf("response %q", resp.Response)
	}
	if !resp.Endorsement.Verify() {
		t.Fatal("endorsement signature invalid")
	}
	if len(resp.Events) != 1 || resp.Events[0].Name != "incremented" {
		t.Fatalf("events = %+v", resp.Events)
	}
	// Simulation must not touch committed state.
	if _, ok := p.State().GetState("counter", "ctr"); ok {
		t.Fatal("endorsement wrote state")
	}
}

func TestEndorseRejectsBadProposalSignature(t *testing.T) {
	p, client := newTestPeer(t)
	prop := propose(t, client, "incr", []byte("ctr"))
	prop.Signature = []byte("junk")
	if _, err := p.Endorse(prop); err == nil {
		t.Fatal("bad proposal signature endorsed")
	}
}

func TestEndorseUnknownChaincode(t *testing.T) {
	p, client := newTestPeer(t)
	prop, err := NewProposal(client, "ch", "ghost", "fn", nil, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Endorse(prop); err == nil {
		t.Fatal("unknown chaincode endorsed")
	}
}

func TestEndorseChaincodeError(t *testing.T) {
	p, client := newTestPeer(t)
	if _, err := p.Endorse(propose(t, client, "boom")); err == nil {
		t.Fatal("chaincode error not propagated")
	}
}

func TestCommitAppliesValidTx(t *testing.T) {
	p, client := newTestPeer(t)
	prop := propose(t, client, "incr", []byte("ctr"))
	resp, err := p.Endorse(prop)
	if err != nil {
		t.Fatal(err)
	}
	tx := envelope(t, client, prop, resp)
	waiter := p.WaitForCommit(tx.ID)
	block, err := p.CommitBatch([]ledger.Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	if block.Metadata.Flags[0] != ledger.Valid {
		t.Fatalf("flag = %s", block.Metadata.Flags[0])
	}
	vv, ok := p.State().GetState("counter", "ctr")
	if !ok || string(vv.Value) != "1" {
		t.Fatalf("state = %v %q", ok, vv.Value)
	}
	select {
	case flag := <-waiter:
		if flag != ledger.Valid {
			t.Fatalf("waiter flag = %s", flag)
		}
	default:
		t.Fatal("commit waiter not notified")
	}
	// History recorded.
	hist := p.History().Get("counter", "ctr")
	if len(hist) != 1 || hist[0].TxID != tx.ID {
		t.Fatalf("history = %+v", hist)
	}
}

func TestCommitFlagsMVCCConflictWithinBlock(t *testing.T) {
	p, client := newTestPeer(t)
	prop1 := propose(t, client, "incr", []byte("ctr"))
	resp1, err := p.Endorse(prop1)
	if err != nil {
		t.Fatal(err)
	}
	prop2 := propose(t, client, "incr", []byte("ctr"))
	resp2, err := p.Endorse(prop2)
	if err != nil {
		t.Fatal(err)
	}
	block, err := p.CommitBatch([]ledger.Transaction{
		envelope(t, client, prop1, resp1),
		envelope(t, client, prop2, resp2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if block.Metadata.Flags[0] != ledger.Valid {
		t.Fatalf("first flag = %s", block.Metadata.Flags[0])
	}
	if block.Metadata.Flags[1] != ledger.MVCCConflict {
		t.Fatalf("second flag = %s", block.Metadata.Flags[1])
	}
	vv, _ := p.State().GetState("counter", "ctr")
	if string(vv.Value) != "1" {
		t.Fatalf("double increment applied: %q", vv.Value)
	}
}

func TestCommitFlagsStaleReadAcrossBlocks(t *testing.T) {
	p, client := newTestPeer(t)
	prop1 := propose(t, client, "incr", []byte("ctr"))
	resp1, _ := p.Endorse(prop1)
	staleProp := propose(t, client, "incr", []byte("ctr"))
	staleResp, _ := p.Endorse(staleProp) // endorsed against pre-commit state
	if _, err := p.CommitBatch([]ledger.Transaction{envelope(t, client, prop1, resp1)}); err != nil {
		t.Fatal(err)
	}
	block, err := p.CommitBatch([]ledger.Transaction{envelope(t, client, staleProp, staleResp)})
	if err != nil {
		t.Fatal(err)
	}
	if block.Metadata.Flags[0] != ledger.MVCCConflict {
		t.Fatalf("stale read flag = %s", block.Metadata.Flags[0])
	}
}

func TestCommitFlagsBadCreatorSignature(t *testing.T) {
	p, client := newTestPeer(t)
	prop := propose(t, client, "incr", []byte("x"))
	resp, _ := p.Endorse(prop)
	tx := envelope(t, client, prop, resp)
	tx.Signature = []byte("forged")
	block, err := p.CommitBatch([]ledger.Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	if block.Metadata.Flags[0] != ledger.BadCreatorSignature {
		t.Fatalf("flag = %s", block.Metadata.Flags[0])
	}
}

func TestCommitEndorsementPolicy(t *testing.T) {
	// Build a peer whose policy demands 2 endorsers; a single endorsement
	// must be flagged.
	signer, _ := msp.NewSigner("org1", "peerX", msp.RoleMember)
	reg := chaincode.NewRegistry()
	_ = reg.Register(counterCC{})
	p, err := New(Config{ID: "peerX", ChannelID: "ch", Signer: signer, Registry: reg,
		Policy: msp.QuorumPolicy{Threshold: 2, Total: 2}})
	if err != nil {
		t.Fatal(err)
	}
	client, _ := msp.NewSigner("c", "c", msp.RoleMember)
	prop, _ := NewProposal(client, "ch", "counter", "incr", [][]byte{[]byte("k")}, time.Now())
	resp, err := p.Endorse(prop)
	if err != nil {
		t.Fatal(err)
	}
	tx := envelope(t, client, prop, resp)
	block, err := p.CommitBatch([]ledger.Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	if block.Metadata.Flags[0] != ledger.EndorsementPolicyFailure {
		t.Fatalf("flag = %s", block.Metadata.Flags[0])
	}
}

func TestEventsOnlyForValidTxs(t *testing.T) {
	p, client := newTestPeer(t)
	events := p.SubscribeEvents(8)
	prop := propose(t, client, "incr", []byte("ek"))
	resp, _ := p.Endorse(prop)
	tx := envelope(t, client, prop, resp)
	tx.Signature = []byte("broken") // will be invalidated
	if _, err := p.CommitBatch([]ledger.Transaction{tx}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-events:
		t.Fatalf("event %v delivered for invalid tx", e)
	default:
	}
	// Now a valid one.
	prop2 := propose(t, client, "incr", []byte("ek"))
	resp2, _ := p.Endorse(prop2)
	if _, err := p.CommitBatch([]ledger.Transaction{envelope(t, client, prop2, resp2)}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-events:
		if e.Name != "incremented" {
			t.Fatalf("event = %+v", e)
		}
	default:
		t.Fatal("no event for valid tx")
	}
}

func TestWatchdogFlagsAfterThreshold(t *testing.T) {
	wd := NewWatchdog(2)
	var flagged []string
	wd.OnFlag(func(id string) { flagged = append(flagged, id) })
	wd.Report("peer9", "bad digest")
	if wd.IsFlagged("peer9") {
		t.Fatal("flagged below threshold")
	}
	wd.Report("peer9", "bad digest again")
	if !wd.IsFlagged("peer9") {
		t.Fatal("not flagged at threshold")
	}
	if len(flagged) != 1 || flagged[0] != "peer9" {
		t.Fatalf("callbacks = %v", flagged)
	}
	// More reports do not re-fire the callback.
	wd.Report("peer9", "still bad")
	if len(flagged) != 1 {
		t.Fatal("callback re-fired")
	}
	if wd.Reports("peer9") != 3 {
		t.Fatalf("reports = %d", wd.Reports("peer9"))
	}
	if got := wd.Flagged(); len(got) != 1 || got[0] != "peer9" {
		t.Fatalf("Flagged() = %v", got)
	}
}

func TestCommitReportsMismatchedEndorser(t *testing.T) {
	p, client := newTestPeer(t)
	prop := propose(t, client, "incr", []byte("wk"))
	resp, _ := p.Endorse(prop)

	// A second "endorser" signs a different digest: valid signature, wrong
	// result — the watchdog must record it.
	liar, _ := msp.NewSigner("org2", "liar", msp.RoleMember)
	wrongDigest := []byte("some-other-result")
	lie := msp.Endorsement{Endorser: liar.Identity, Digest: wrongDigest, Signature: liar.Sign(wrongDigest)}

	tx := envelope(t, client, prop, resp)
	tx.Endorsements = append(tx.Endorsements, lie)
	if _, err := p.CommitBatch([]ledger.Transaction{tx}); err != nil {
		t.Fatal(err)
	}
	if p.Watchdog().Reports("org2/liar") != 1 {
		t.Fatalf("liar reports = %d", p.Watchdog().Reports("org2/liar"))
	}
}

func TestNilPolicyRejected(t *testing.T) {
	signer, _ := msp.NewSigner("o", "p", msp.RoleMember)
	if _, err := New(Config{ID: "p", Signer: signer, Registry: chaincode.NewRegistry()}); err == nil {
		t.Fatal("nil policy accepted")
	}
}
