// Package peer implements the endorsing peers of the paper's architecture:
// proposal endorsement (chaincode simulation + signed read/write sets),
// block validation (creator signatures, endorsement policy, MVCC) and
// commit (world state + history updates, validation flags, events), plus a
// watchdog that flags peers who endorse invalid results, as §III-A requires
// for validators that act against the consensus rules.
package peer

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/obs"
)

// Proposal is a client's request that a chaincode function be executed and
// endorsed.
type Proposal struct {
	TxID      string       `json:"tx_id"`
	ChannelID string       `json:"channel_id"`
	Chaincode string       `json:"chaincode"`
	Fn        string       `json:"fn"`
	Args      [][]byte     `json:"args"`
	Creator   msp.Identity `json:"creator"`
	Nonce     []byte       `json:"nonce"`
	Timestamp time.Time    `json:"timestamp"`
	Signature []byte       `json:"signature"`
	// Trace is the observability trace ID minted at submission. It rides
	// the proposal across RPC hops but stays outside SigningBytes, so
	// tracing never perturbs signatures.
	Trace string `json:"trace,omitempty"`
}

// SigningBytes returns the canonical bytes a client signs.
func (p *Proposal) SigningBytes() []byte {
	h := sha256.New()
	h.Write([]byte(p.TxID))
	h.Write([]byte{0})
	h.Write([]byte(p.ChannelID))
	h.Write([]byte{0})
	h.Write([]byte(p.Chaincode))
	h.Write([]byte{0})
	h.Write([]byte(p.Fn))
	h.Write([]byte{0})
	for _, a := range p.Args {
		ah := sha256.Sum256(a)
		h.Write(ah[:])
	}
	h.Write(p.Nonce)
	return h.Sum(nil)
}

// NewProposal builds and signs a proposal for the given invocation.
func NewProposal(client *msp.Signer, channelID, ccName, fn string, args [][]byte, now time.Time) (*Proposal, error) {
	nonce := make([]byte, 24)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("peer: nonce: %w", err)
	}
	p := &Proposal{
		TxID:      ledger.NewTxID(client.Identity, nonce),
		ChannelID: channelID,
		Chaincode: ccName,
		Fn:        fn,
		Args:      args,
		Creator:   client.Identity,
		Nonce:     nonce,
		Timestamp: now,
		Trace:     obs.NewTraceID(),
	}
	p.Signature = client.Sign(p.SigningBytes())
	return p, nil
}

// Verify checks the proposal's client signature.
func (p *Proposal) Verify() bool {
	return p.Creator.Verify(p.SigningBytes(), p.Signature)
}

// BatchProposal is a client's request that several chaincode calls be
// executed on one simulator and endorsed as a single atomic envelope — the
// coalesced endorsement unit of the ingest pipeline. Call i runs under
// sub-transaction ID chaincode.SubTxID(TxID, i).
type BatchProposal struct {
	TxID      string                `json:"tx_id"`
	ChannelID string                `json:"channel_id"`
	Calls     []chaincode.BatchCall `json:"calls"`
	Creator   msp.Identity          `json:"creator"`
	Nonce     []byte                `json:"nonce"`
	Timestamp time.Time             `json:"timestamp"`
	Signature []byte                `json:"signature"`
	// Trace is the observability trace ID for the whole batch envelope,
	// outside SigningBytes like the single-proposal one.
	Trace string `json:"trace,omitempty"`
}

// SigningBytes returns the canonical bytes a client signs for a batch.
func (p *BatchProposal) SigningBytes() []byte {
	h := sha256.New()
	h.Write([]byte(p.TxID))
	h.Write([]byte{0})
	h.Write([]byte(p.ChannelID))
	h.Write([]byte{0})
	for _, c := range p.Calls {
		h.Write([]byte(c.Chaincode))
		h.Write([]byte{0})
		h.Write([]byte(c.Fn))
		h.Write([]byte{0})
		for _, a := range c.Args {
			ah := sha256.Sum256(a)
			h.Write(ah[:])
		}
		h.Write([]byte{0xff})
	}
	h.Write(p.Nonce)
	return h.Sum(nil)
}

// NewBatchProposal builds and signs a batch proposal.
func NewBatchProposal(client *msp.Signer, channelID string, calls []chaincode.BatchCall, now time.Time) (*BatchProposal, error) {
	if len(calls) == 0 {
		return nil, fmt.Errorf("peer: empty batch proposal")
	}
	nonce := make([]byte, 24)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("peer: nonce: %w", err)
	}
	p := &BatchProposal{
		TxID:      ledger.NewTxID(client.Identity, nonce),
		ChannelID: channelID,
		Calls:     calls,
		Creator:   client.Identity,
		Nonce:     nonce,
		Timestamp: now,
		Trace:     obs.NewTraceID(),
	}
	p.Signature = client.Sign(p.SigningBytes())
	return p, nil
}

// Verify checks the batch proposal's client signature.
func (p *BatchProposal) Verify() bool {
	return p.Creator.Verify(p.SigningBytes(), p.Signature)
}

// ProposalResponse is a peer's endorsement of a simulated proposal.
type ProposalResponse struct {
	TxID        string          `json:"tx_id"`
	Response    []byte          `json:"response,omitempty"`
	RWSetJSON   []byte          `json:"rw_set"`
	Events      []ledger.Event  `json:"events,omitempty"`
	Endorsement msp.Endorsement `json:"endorsement"`
	Err         string          `json:"err,omitempty"`
}
