package peer

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"socialchain/internal/chaincode"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
)

// durablePeer opens (or reopens) a durable peer over dir. Signer and
// registry are rebuilt each call, exactly like a restarted process.
func durablePeer(t *testing.T, dir string) (*Peer, *msp.Signer) {
	t.Helper()
	p, err := openDurable(dir)
	if err != nil {
		t.Fatalf("open durable peer at %s: %v", dir, err)
	}
	client, err := msp.NewSigner("clientorg", "alice", msp.RoleMember)
	if err != nil {
		t.Fatal(err)
	}
	return p, client
}

// openDurable builds a durable peer over dir, returning open errors.
func openDurable(dir string) (*Peer, error) {
	signer, err := msp.NewSigner("org1", "peer0", msp.RoleMember)
	if err != nil {
		return nil, err
	}
	reg := chaincode.NewRegistry()
	if err := reg.Register(counterCC{}); err != nil {
		return nil, err
	}
	return Open(Config{
		ID:        "peer0",
		ChannelID: "ch",
		Signer:    signer,
		Registry:  reg,
		Policy:    msp.AnyValid{},
		DataDir:   dir,
	})
}

// commitIncr endorses and commits one "incr" transaction as its own block.
func commitIncr(t *testing.T, p *Peer, client *msp.Signer, key string) *ledger.Block {
	t.Helper()
	prop := propose(t, client, "incr", []byte(key))
	resp, err := p.Endorse(prop)
	if err != nil {
		t.Fatal(err)
	}
	block, err := p.CommitBatch([]ledger.Transaction{envelope(t, client, prop, resp)})
	if err != nil {
		t.Fatal(err)
	}
	return block
}

// stateSnapshot captures the canonical byte form of a peer's world state.
func stateSnapshot(t *testing.T, p *Peer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.State().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// copyTree copies a directory recursively (small test trees only).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, werr error) error {
		if werr != nil {
			return werr
		}
		rel, rerr := filepath.Rel(src, path)
		if rerr != nil {
			return rerr
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		return os.WriteFile(target, data, info.Mode())
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenRequiresDataDir(t *testing.T) {
	if _, err := Open(Config{ID: "p", Policy: msp.AnyValid{}}); err == nil {
		t.Fatal("Open without DataDir succeeded")
	}
}

// TestPeerReopenRecoversChainAndState commits blocks on a durable peer,
// closes it, reopens the directory and requires the identical chain
// (height, tip hash, verified linkage), identical canonical state bytes,
// recovered history — and that the reopened peer keeps committing.
func TestPeerReopenRecoversChainAndState(t *testing.T) {
	dir := t.TempDir()
	p, client := durablePeer(t, dir)
	for i := 0; i < 3; i++ {
		commitIncr(t, p, client, "ctr")
	}
	commitIncr(t, p, client, "other")
	wantHeight := p.Ledger().Height()
	wantTip := p.Ledger().TipHash()
	wantState := stateSnapshot(t, p)
	wantHist := len(p.History().Get("counter", "ctr"))
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	re, client2 := durablePeer(t, dir)
	defer re.Close()
	if got := re.Ledger().Height(); got != wantHeight {
		t.Fatalf("reopened height = %d, want %d", got, wantHeight)
	}
	if re.Ledger().TipHash() != wantTip {
		t.Fatal("reopened tip hash differs")
	}
	if err := re.Ledger().VerifyChain(); err != nil {
		t.Fatalf("reopened chain broken: %v", err)
	}
	if got := stateSnapshot(t, re); !bytes.Equal(got, wantState) {
		t.Fatalf("reopened state differs:\nwant %s\n got %s", wantState, got)
	}
	if got := len(re.History().Get("counter", "ctr")); got != wantHist {
		t.Fatalf("reopened history has %d entries, want %d", got, wantHist)
	}
	if vv, ok := re.State().GetState("counter", "ctr"); !ok || string(vv.Value) != "3" {
		t.Fatalf("recovered ctr = %q/%v, want 3", vv.Value, ok)
	}
	// The recovered peer is live: endorse + commit must still work.
	commitIncr(t, re, client2, "ctr")
	if vv, _ := re.State().GetState("counter", "ctr"); string(vv.Value) != "4" {
		t.Fatalf("post-recovery commit produced ctr = %q", vv.Value)
	}
	if re.Ledger().Height() != wantHeight+1 {
		t.Fatalf("post-recovery height = %d", re.Ledger().Height())
	}
}

// TestPeerRecoveryReplaysUnappliedTail simulates the crash window between
// "block appended to the log" and "state batch applied": a directory is
// captured at height 2, then given the block log of height 3. Recovery
// must replay the extra block through validate-then-commit — recorded
// flags cross-checked — and land on exactly the state a crash-free peer
// has.
func TestPeerRecoveryReplaysUnappliedTail(t *testing.T) {
	dir := t.TempDir()
	p, client := durablePeer(t, dir)
	commitIncr(t, p, client, "ctr")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Capture the peer's on-disk state at height 2 (genesis + 1 block).
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)

	// Advance the original by one more block.
	p2, client2 := durablePeer(t, dir)
	commitIncr(t, p2, client2, "ctr")
	wantHeight := p2.Ledger().Height()
	wantState := stateSnapshot(t, p2)
	wantHist := len(p2.History().Get("counter", "ctr"))
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	// Graft the longer block log onto the older state — exactly what disk
	// holds if the process died after logging block 2 but before applying
	// it.
	data, err := os.ReadFile(filepath.Join(dir, "blocks.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(crashDir, "blocks.wal"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, _ := durablePeer(t, crashDir)
	defer re.Close()
	if got := re.Ledger().Height(); got != wantHeight {
		t.Fatalf("recovered height = %d, want %d", got, wantHeight)
	}
	if got := stateSnapshot(t, re); !bytes.Equal(got, wantState) {
		t.Fatalf("replayed state differs from crash-free state:\nwant %s\n got %s", wantState, got)
	}
	if got := len(re.History().Get("counter", "ctr")); got != wantHist {
		t.Fatalf("replayed history has %d entries, want %d (no duplicates, no gaps)", got, wantHist)
	}
	if err := re.Ledger().VerifyChain(); err != nil {
		t.Fatal(err)
	}
}

// TestPeerRecoveryTornLogTail simulates dying mid-append of block 2: the
// log holds blocks 0-1 plus garbage bytes. The peer must come back at
// height 2, catch the lost tail up through SyncFrom (which re-logs it),
// and hold the full chain across one more restart.
func TestPeerRecoveryTornLogTail(t *testing.T) {
	dir := t.TempDir()
	p, client := durablePeer(t, dir)
	commitIncr(t, p, client, "ctr")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	tornDir := t.TempDir()
	copyTree(t, dir, tornDir)

	// The healthy peer advances one more block.
	src, client2 := durablePeer(t, dir)
	commitIncr(t, src, client2, "ctr")
	fullHeight := src.Ledger().Height()
	fullState := stateSnapshot(t, src)

	// Torn append: block 2's record started landing but never completed.
	f, err := os.OpenFile(filepath.Join(tornDir, "blocks.wal"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re, _ := durablePeer(t, tornDir)
	if got := re.Ledger().Height(); got != 2 {
		t.Fatalf("torn-tail peer height = %d, want 2", got)
	}
	if _, err := re.SyncFrom(src); err != nil {
		t.Fatalf("catch-up sync: %v", err)
	}
	if re.Ledger().Height() != fullHeight {
		t.Fatalf("post-sync height = %d, want %d", re.Ledger().Height(), fullHeight)
	}
	if got := stateSnapshot(t, re); !bytes.Equal(got, fullState) {
		t.Fatal("post-sync state differs from source peer")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	// The synced tail was re-logged: one more reopen lands at full height.
	re2, _ := durablePeer(t, tornDir)
	defer re2.Close()
	if re2.Ledger().Height() != fullHeight {
		t.Fatalf("resynced peer reopened at height %d, want %d", re2.Ledger().Height(), fullHeight)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPeerRecoveryGuardsSavepointAheadOfLog: if the block log lost
// COMMITTED records (state savepoint beyond the log's tip — impossible
// under kill/restart, possible under file-level damage), the peer must
// refuse to open rather than run on state it cannot re-derive.
func TestPeerRecoveryGuardsSavepointAheadOfLog(t *testing.T) {
	dir := t.TempDir()
	p, client := durablePeer(t, dir)
	commitIncr(t, p, client, "ctr")
	commitIncr(t, p, client, "ctr")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop the log down mid-record so block 2 disappears while the state
	// savepoint still says 2.
	logPath := filepath.Join(dir, "blocks.wal")
	st, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	if _, err := openDurable(dir); err == nil {
		t.Fatal("peer opened over a block log behind its state savepoint")
	} else if !strings.Contains(err.Error(), "ahead of block log") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestPeerRecoveryGuardsMissingLog: deleting the block log outright while
// the state WAL survives must refuse to open — a fresh genesis over stale
// recovered world state would be silent corruption.
func TestPeerRecoveryGuardsMissingLog(t *testing.T) {
	dir := t.TempDir()
	p, client := durablePeer(t, dir)
	commitIncr(t, p, client, "ctr")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "blocks.wal")); err != nil {
		t.Fatal(err)
	}
	if _, err := openDurable(dir); err == nil {
		t.Fatal("peer opened with a deleted block log over surviving state")
	} else if !strings.Contains(err.Error(), "block log lost") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestPeerRecoveryRejectsTamperedLog flips a byte inside the last logged
// record: the CRC framing must drop it (indistinguishable from a torn
// tail), so recovery never silently commits tampered content — here the
// savepoint guard then refuses the mismatch.
func TestPeerRecoveryRejectsTamperedLog(t *testing.T) {
	dir := t.TempDir()
	p, client := durablePeer(t, dir)
	commitIncr(t, p, client, "ctr")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "blocks.wal")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff // inside block 1's payload
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := openDurable(dir)
	if err != nil {
		if !strings.Contains(err.Error(), "ahead of block log") {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	defer re.Close()
	if h := re.Ledger().Height(); h > 1 {
		t.Fatalf("tampered log recovered to height %d", h)
	}
}

// TestDurableSyncPersistsAcrossRestart: a durable peer that received its
// chain via SyncFrom (not local commits) must survive its own restart.
func TestDurableSyncPersistsAcrossRestart(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, client := durablePeer(t, srcDir)
	commitIncr(t, src, client, "ctr")
	commitIncr(t, src, client, "other")

	dst, _ := durablePeer(t, dstDir)
	if _, err := dst.SyncFrom(src); err != nil {
		t.Fatal(err)
	}
	wantHeight := dst.Ledger().Height()
	wantState := stateSnapshot(t, dst)
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	re, _ := durablePeer(t, dstDir)
	defer re.Close()
	if re.Ledger().Height() != wantHeight {
		t.Fatalf("reopened synced peer at height %d, want %d", re.Ledger().Height(), wantHeight)
	}
	if got := stateSnapshot(t, re); !bytes.Equal(got, wantState) {
		t.Fatal("reopened synced peer state differs")
	}
}
