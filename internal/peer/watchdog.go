package peer

import (
	"sort"
	"sync"
)

// Watchdog tracks endorsement misbehaviour. The paper requires that
// "validators that repeatedly act against the consensus rules (e.g., by
// endorsing invalid transactions) are flagged and removed from the
// validator pool"; committers report endorsers whose signed digests do not
// match the agreed simulation outcome, and once a peer accumulates
// Threshold reports it is flagged. The network assembly removes flagged
// peers from the endorser set.
type Watchdog struct {
	mu        sync.Mutex
	threshold int
	reports   map[string][]string // peer id -> reasons
	flagged   map[string]bool
	onFlag    []func(id string)
}

// NewWatchdog creates a watchdog flagging peers after threshold reports.
func NewWatchdog(threshold int) *Watchdog {
	if threshold <= 0 {
		threshold = 3
	}
	return &Watchdog{
		threshold: threshold,
		reports:   make(map[string][]string),
		flagged:   make(map[string]bool),
	}
}

// OnFlag registers a callback invoked (once per peer) when a peer crosses
// the misbehaviour threshold.
func (w *Watchdog) OnFlag(fn func(id string)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.onFlag = append(w.onFlag, fn)
}

// Report records one misbehaviour observation against a peer.
func (w *Watchdog) Report(id, reason string) {
	w.mu.Lock()
	w.reports[id] = append(w.reports[id], reason)
	shouldFlag := !w.flagged[id] && len(w.reports[id]) >= w.threshold
	if shouldFlag {
		w.flagged[id] = true
	}
	callbacks := append([]func(string){}, w.onFlag...)
	w.mu.Unlock()
	if shouldFlag {
		for _, fn := range callbacks {
			fn(id)
		}
	}
}

// Reports returns the misbehaviour count for a peer.
func (w *Watchdog) Reports(id string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.reports[id])
}

// IsFlagged reports whether a peer has crossed the threshold.
func (w *Watchdog) IsFlagged(id string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flagged[id]
}

// Flagged returns all flagged peer ids, sorted.
func (w *Watchdog) Flagged() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.flagged))
	for id := range w.flagged {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
