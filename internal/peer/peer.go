package peer

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/statedb"
	"socialchain/internal/storage"
)

// Peer is one endorsing/committing node. Every peer holds a full copy of
// the ledger and world state and independently validates every block, as in
// the paper's Figure 1 where all endorsement peers act as validators.
type Peer struct {
	id        string
	channelID string
	signer    *msp.Signer

	ledger   *ledger.Ledger
	state    *statedb.DB
	history  *statedb.HistoryDB
	registry *chaincode.Registry
	policy   msp.Policy
	watchdog *Watchdog

	mu          sync.Mutex
	commitWait  map[string][]chan ledger.ValidationCode
	subscribers []chan chaincode.Event
}

// Config assembles a peer.
type Config struct {
	ID        string
	ChannelID string
	Signer    *msp.Signer
	// Registry is the deployed chaincode set (shared across peers —
	// chaincode instances are stateless; all state flows through the stub).
	Registry *chaincode.Registry
	// Policy validates endorsements at commit; nil panics (the network
	// assembly always supplies one).
	Policy msp.Policy
	// Watchdog records endorsement misbehaviour (may be shared; nil creates
	// a private one).
	Watchdog *Watchdog
	// State selects the key-value engine backing this peer's world state
	// and history database (zero value = the sharded default).
	State storage.Config
	// Indexes declares the secondary indexes the world state maintains
	// (nil = none). Index reads feed endorsement results, so every peer
	// of a channel must run the same list.
	Indexes []statedb.IndexSpec
}

// New creates a peer with an empty ledger anchored by a genesis block.
func New(cfg Config) (*Peer, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("peer %s: nil endorsement policy", cfg.ID)
	}
	wd := cfg.Watchdog
	if wd == nil {
		wd = NewWatchdog(3)
	}
	state, err := statedb.NewIndexedWith(cfg.State, cfg.Indexes...)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", cfg.ID, err)
	}
	p := &Peer{
		id:         cfg.ID,
		channelID:  cfg.ChannelID,
		signer:     cfg.Signer,
		ledger:     ledger.New(),
		state:      state,
		history:    statedb.NewHistoryDBWith(cfg.State),
		registry:   cfg.Registry,
		policy:     cfg.Policy,
		watchdog:   wd,
		commitWait: make(map[string][]chan ledger.ValidationCode),
	}
	// The genesis block is identical on every peer: fixed zero timestamp
	// (the header hash covers only number, prev-hash and data hash, so the
	// chain stays consistent regardless).
	genesis := ledger.NewBlock(0, [32]byte{}, nil, time.Time{})
	if err := p.ledger.Append(genesis); err != nil {
		return nil, fmt.Errorf("peer %s: genesis: %w", cfg.ID, err)
	}
	return p, nil
}

// ID returns the peer's name.
func (p *Peer) ID() string { return p.id }

// Identity returns the peer's signing identity.
func (p *Peer) Identity() msp.Identity { return p.signer.Identity }

// Ledger exposes the peer's chain.
func (p *Peer) Ledger() *ledger.Ledger { return p.ledger }

// State exposes the peer's world state.
func (p *Peer) State() *statedb.DB { return p.state }

// History exposes the peer's history database.
func (p *Peer) History() *statedb.HistoryDB { return p.history }

// Watchdog exposes the misbehaviour tracker.
func (p *Peer) Watchdog() *Watchdog { return p.watchdog }

// Endorse simulates a proposal against this peer's current state and signs
// the resulting read/write set, implementing the paper's "each peer
// executes the smart contract independently".
func (p *Peer) Endorse(prop *Proposal) (*ProposalResponse, error) {
	if !prop.Verify() {
		return nil, fmt.Errorf("peer %s: proposal %s: bad client signature", p.id, prop.TxID)
	}
	cc, ok := p.registry.Get(prop.Chaincode)
	if !ok {
		return nil, fmt.Errorf("peer %s: unknown chaincode %q", p.id, prop.Chaincode)
	}
	sim := chaincode.NewSimulator(chaincode.TxContext{
		TxID:      prop.TxID,
		ChannelID: prop.ChannelID,
		Creator:   prop.Creator,
		Timestamp: prop.Timestamp,
	}, prop.Chaincode, p.state, p.history).WithRegistry(p.registry)
	resp, err := cc.Invoke(sim, prop.Fn, prop.Args)
	if err != nil {
		return nil, fmt.Errorf("peer %s: chaincode %s.%s: %w", p.id, prop.Chaincode, prop.Fn, err)
	}
	return p.respond(prop.TxID, sim, resp)
}

// EndorseBatch is the batch endorsement entrypoint: every call of the
// proposal executes on one simulator (chaincode.InvokeBatch), yielding a
// single merged read/write set that the peer signs once. One endorsement
// round-trip and one signature therefore cover an entire ingest batch,
// instead of one of each per record. The response is the JSON array of
// per-call responses.
func (p *Peer) EndorseBatch(prop *BatchProposal) (*ProposalResponse, error) {
	if len(prop.Calls) == 0 {
		return nil, fmt.Errorf("peer %s: batch proposal %s: empty call list", p.id, prop.TxID)
	}
	if !prop.Verify() {
		return nil, fmt.Errorf("peer %s: batch proposal %s: bad client signature", p.id, prop.TxID)
	}
	sim := chaincode.NewSimulator(chaincode.TxContext{
		TxID:      prop.TxID,
		ChannelID: prop.ChannelID,
		Creator:   prop.Creator,
		Timestamp: prop.Timestamp,
	}, prop.Calls[0].Chaincode, p.state, p.history).WithRegistry(p.registry)
	responses, err := sim.InvokeBatch(prop.Calls)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", p.id, err)
	}
	resp, err := json.Marshal(responses)
	if err != nil {
		return nil, fmt.Errorf("peer %s: marshal batch responses: %w", p.id, err)
	}
	return p.respond(prop.TxID, sim, resp)
}

// respond signs a finished simulation into a proposal response.
func (p *Peer) respond(txID string, sim *chaincode.Simulator, resp []byte) (*ProposalResponse, error) {
	rw := sim.RWSet()
	rwJSON, err := json.Marshal(rw)
	if err != nil {
		return nil, fmt.Errorf("peer %s: marshal rwset: %w", p.id, err)
	}
	digest := rw.Digest(resp)
	var events []ledger.Event
	for _, e := range sim.Events() {
		events = append(events, ledger.Event{Name: e.Name, Payload: e.Payload})
	}
	return &ProposalResponse{
		TxID:      txID,
		Response:  resp,
		RWSetJSON: rwJSON,
		Events:    events,
		Endorsement: msp.Endorsement{
			Endorser:  p.signer.Identity,
			Digest:    digest,
			Signature: p.signer.Sign(digest),
		},
	}, nil
}

// WaitForCommit returns a channel that receives the validation flag when
// txID commits on this peer. The channel is buffered; the caller need not
// drain it before the commit happens.
func (p *Peer) WaitForCommit(txID string) <-chan ledger.ValidationCode {
	ch := make(chan ledger.ValidationCode, 1)
	p.mu.Lock()
	p.commitWait[txID] = append(p.commitWait[txID], ch)
	p.mu.Unlock()
	return ch
}

// CancelWait drops the commit waiters registered for txID — callers whose
// submission was rejected by ordering deregister here so abandoned
// transaction IDs do not accumulate in the wait map.
func (p *Peer) CancelWait(txID string) {
	p.mu.Lock()
	delete(p.commitWait, txID)
	p.mu.Unlock()
}

// SubscribeEvents returns a channel receiving chaincode events of valid
// committed transactions.
func (p *Peer) SubscribeEvents(buffer int) <-chan chaincode.Event {
	if buffer <= 0 {
		buffer = 256
	}
	ch := make(chan chaincode.Event, buffer)
	p.mu.Lock()
	p.subscribers = append(p.subscribers, ch)
	p.mu.Unlock()
	return ch
}

// CommitBatch validates and commits one ordered batch of transactions as
// the next block, in Fabric's validate-then-commit split. The stateless
// checks (client signature, endorsement signatures, policy) are
// independent per transaction and run in parallel over a worker pool; the
// MVCC read-version pass then runs serially in block order — read/write-
// set conflict detection is what keeps the parallel validation
// serializable — and all surviving write sets land in the state engine as
// one block-level batch (statedb.ApplyBlock). It returns the block.
func (p *Peer) CommitBatch(txs []ledger.Transaction) (*ledger.Block, error) {
	number := p.ledger.Height()
	block := ledger.NewBlock(number, p.ledger.TipHash(), txs, time.Now())
	flags, err := p.validateAndApply(number, block.Txs, nil)
	if err != nil {
		return nil, err
	}
	copy(block.Metadata.Flags, flags)
	if err := p.ledger.Append(block); err != nil {
		return nil, fmt.Errorf("peer %s: append block %d: %w", p.id, number, err)
	}
	p.notify(block)
	return block, nil
}

// validateAndApply runs the validate-then-commit split over one block's
// transactions and lands the surviving write sets:
//
//  1. Stateless checks (signatures, policy) fan out over a worker pool.
//  2. MVCC runs serially in block order against committed state plus the
//     in-block write set. Nothing mutates until every transaction is
//     flagged, so each check observes pre-block versions — identical to
//     a serial validate-and-apply interleaving, because a read of any
//     key an earlier in-block transaction wrote is already a conflict.
//     After each transaction is flagged, check (when non-nil) may abort
//     the whole block before any state changes — the sync path's
//     flag-mismatch rejection.
//  3. All valid write sets apply in one engine pass (statedb.ApplyBlock)
//     followed by the history entries.
func (p *Peer) validateAndApply(number uint64, txs []ledger.Transaction, check func(i int, flag ledger.ValidationCode) error) ([]ledger.ValidationCode, error) {
	pre := p.validateStatelessAll(txs)
	flags := make([]ledger.ValidationCode, len(txs))
	blockWrites := make(map[string]bool) // ns\x00key written by earlier valid tx
	updates := make([]statedb.TxUpdate, 0, len(txs))
	validIdx := make([]int, 0, len(txs))
	for i := range txs {
		tx := &txs[i]
		flag := pre[i]
		if flag == ledger.Valid {
			flag = p.validateMVCC(tx, blockWrites)
		}
		if check != nil {
			if err := check(i, flag); err != nil {
				return nil, err
			}
		}
		flags[i] = flag
		if flag != ledger.Valid {
			continue
		}
		batch := statedb.NewUpdateBatch()
		batch.AddRWSetWrites(tx.RWSet)
		updates = append(updates, statedb.TxUpdate{
			Batch:   batch,
			Version: statedb.Version{BlockNum: number, TxNum: uint64(i)},
		})
		validIdx = append(validIdx, i)
		for _, w := range tx.RWSet.Writes {
			blockWrites[w.Namespace+"\x00"+w.Key] = true
		}
	}
	p.state.ApplyBlock(updates)
	for ui, i := range validIdx {
		p.history.RecordBatch(updates[ui].Batch, txs[i].ID, updates[ui].Version, txs[i].Timestamp)
	}
	return flags, nil
}

// validateStatelessAll runs the per-transaction signature/policy checks,
// fanning out over a bounded worker pool when the block carries more than
// one transaction.
func (p *Peer) validateStatelessAll(txs []ledger.Transaction) []ledger.ValidationCode {
	flags := make([]ledger.ValidationCode, len(txs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(txs) {
		workers = len(txs)
	}
	if workers <= 1 {
		for i := range txs {
			flags[i] = p.validateStateless(&txs[i])
		}
		return flags
	}
	var wg sync.WaitGroup
	next := make(chan int, len(txs))
	for i := range txs {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				flags[i] = p.validateStateless(&txs[i])
			}
		}()
	}
	wg.Wait()
	return flags
}

// validateStateless applies the commit-time checks that need no world
// state, in Fabric's order.
func (p *Peer) validateStateless(tx *ledger.Transaction) ledger.ValidationCode {
	// 1. Client envelope signature.
	if !tx.Creator.Verify(tx.SigningBytes(), tx.Signature) {
		return ledger.BadCreatorSignature
	}
	// 2. Endorsement policy over the simulation digest; also feed the
	// watchdog with endorsers who signed a different digest (they endorsed
	// a result that does not match the agreed outcome).
	digest := tx.Digest()
	for _, e := range tx.Endorsements {
		if e.Verify() && !bytesEqual(e.Digest, digest) {
			p.watchdog.Report(e.Endorser.ID(), "endorsed mismatching digest")
		}
	}
	if err := p.policy.Evaluate(digest, tx.Endorsements); err != nil {
		return ledger.EndorsementPolicyFailure
	}
	return ledger.Valid
}

// validateMVCC checks that every read version is still current and that no
// earlier transaction in this block wrote a key this one read.
func (p *Peer) validateMVCC(tx *ledger.Transaction, blockWrites map[string]bool) ledger.ValidationCode {
	for _, r := range tx.RWSet.Reads {
		if blockWrites[r.Namespace+"\x00"+r.Key] {
			return ledger.MVCCConflict
		}
		cur, ok := p.state.GetVersion(r.Namespace, r.Key)
		if ok != r.Exists {
			return ledger.MVCCConflict
		}
		if ok && cur.Compare(r.Version) != 0 {
			return ledger.MVCCConflict
		}
	}
	return ledger.Valid
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// notify wakes commit waiters and event subscribers for a committed block.
func (p *Peer) notify(block *ledger.Block) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range block.Txs {
		tx := &block.Txs[i]
		flag := block.Metadata.Flags[i]
		for _, ch := range p.commitWait[tx.ID] {
			select {
			case ch <- flag:
			default:
			}
		}
		delete(p.commitWait, tx.ID)
		if flag != ledger.Valid {
			continue
		}
		for _, e := range tx.Events {
			for _, sub := range p.subscribers {
				select {
				case sub <- chaincode.Event{TxID: tx.ID, Name: e.Name, Payload: e.Payload}:
				default:
				}
			}
		}
	}
}
